// Reference CPU LADIES implementation (loop-based, no matrix abstraction) —
// the comparator of §8.2.2 ("the reference CPU implementation for LADIES
// takes 43.9 seconds ... for Papers and 3.12 seconds for Protein").
#pragma once

#include <cstdint>

#include "core/sampler.hpp"
#include "graph/graph.hpp"

namespace dms {

struct LadiesCpuResult {
  std::vector<MinibatchSample> samples;
  double seconds = 0.0;  ///< measured wall time for sampling all batches
};

/// Samples all minibatches sequentially on the CPU: per batch, accumulate
/// e_v = |N(v) ∩ batch| by walking adjacency rows, square-normalize, ITS
/// sample s vertices, then collect the batch→sampled edges by a second
/// adjacency walk.
LadiesCpuResult ladies_cpu_reference(const Graph& graph,
                                     const std::vector<std::vector<index_t>>& batches,
                                     index_t s, std::uint64_t seed);

}  // namespace dms
