#include "baselines/ladies_cpu.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/its.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {

LadiesCpuResult ladies_cpu_reference(const Graph& graph,
                                     const std::vector<std::vector<index_t>>& batches,
                                     index_t s, std::uint64_t seed) {
  const index_t n = graph.num_vertices();
  LadiesCpuResult result;
  result.samples.reserve(batches.size());
  Timer total;

  std::vector<value_t> counts(static_cast<std::size_t>(n), 0.0);
  std::vector<index_t> touched;
  // Per-batch ITS scratch hoisted out of the loop (prefix, picked locals,
  // and the chosen flags the scratch-taking its_sample_one overload reuses).
  std::vector<value_t> prefix;
  std::vector<index_t> picked_local;
  std::vector<char> chosen;
  Workspace ws;  // masked-extraction scratch, reused across batches
  for (std::size_t b = 0; b < batches.size(); ++b) {
    const auto& batch = batches[b];

    // e_v = |N(v) ∩ batch| accumulated by walking batch rows.
    touched.clear();
    for (const index_t u : batch) {
      for (const index_t v : graph.adjacency().row_cols(u)) {
        if (counts[static_cast<std::size_t>(v)] == 0.0) touched.push_back(v);
        counts[static_cast<std::size_t>(v)] += 1.0;
      }
    }

    // p_v ∝ e_v², ITS over the touched vertices.
    prefix.assign(1, 0.0);
    prefix.reserve(touched.size() + 1);
    for (const index_t v : touched) {
      const value_t e = counts[static_cast<std::size_t>(v)];
      prefix.push_back(prefix.back() + e * e);
    }
    its_sample_one(prefix, s, derive_seed(seed, static_cast<std::uint64_t>(b), 0, 0),
                   &picked_local, chosen);
    std::vector<index_t> sampled;
    sampled.reserve(picked_local.size());
    for (const index_t idx : picked_local) {
      sampled.push_back(touched[static_cast<std::size_t>(idx)]);
    }
    for (const index_t v : touched) counts[static_cast<std::size_t>(v)] = 0.0;

    // Collect batch→sampled edges. The frontier numbering stays loop-built
    // (batch first, then sampled in pick order), but the edge gather rides
    // the engine's masked extraction A[batch, :][:, sorted(sampled)] — the
    // same kernel the matrix samplers use — instead of a second adjacency
    // walk. The edge set, and hence the output, is unchanged.
    LayerSample layer;
    layer.row_vertices = batch;
    layer.col_vertices = batch;
    std::unordered_map<index_t, index_t> pos;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      pos.emplace(batch[i], static_cast<index_t>(i));
    }
    std::unordered_map<index_t, index_t> sampled_pos;
    for (const index_t v : sampled) {
      auto [it, inserted] = pos.emplace(v, static_cast<index_t>(layer.col_vertices.size()));
      if (inserted) layer.col_vertices.push_back(v);
      sampled_pos.emplace(v, it->second);
    }
    std::vector<index_t> mask = sampled;  // distinct; sort for the mask contract
    std::sort(mask.begin(), mask.end());
    SpgemmOptions mopts;
    mopts.workspace = &ws;
    const CsrMatrix a_s =
        spgemm_masked(extract_rows(graph.adjacency(), batch), mask, mopts);
    CooMatrix coo(static_cast<index_t>(batch.size()),
                  static_cast<index_t>(layer.col_vertices.size()));
    for (index_t r = 0; r < a_s.rows(); ++r) {
      for (const index_t c : a_s.row_cols(r)) {
        coo.push(r, sampled_pos.at(mask[static_cast<std::size_t>(c)]), 1.0);
      }
    }
    layer.adj = CsrMatrix::from_coo(coo);
    for (auto& v : layer.adj.mutable_vals()) v = 1.0;

    MinibatchSample ms;
    ms.batch_vertices = batch;
    ms.layers.push_back(std::move(layer));
    result.samples.push_back(std::move(ms));
  }
  result.seconds = total.seconds();
  return result;
}

}  // namespace dms
