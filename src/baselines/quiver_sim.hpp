// Quiver-sim: the Figure 4/5 baseline (§7.3).
//
// Quiver (distributed PyG) with GPU-only sampling replicates the graph
// topology on every GPU and samples each minibatch individually (no bulk
// amortization), fetching features from a store partitioned across GPUs
// with NVLink p2p inside a node and the interconnect across nodes. It does
// not optimize cross-device feature traffic, which is why it stops scaling
// on dense graphs as p grows (§8.1.1).
//
// The simulated baseline reproduces exactly those properties:
//  - per-minibatch loop-based sampling (classic_sage) with a kernel-launch
//    overhead per layer per batch,
//  - block-partitioned feature store with per-peer α–β gather costs,
//  - the same propagation machinery as our pipeline (identical compute).
// UVA mode (Figure 5) keeps the graph in host DRAM — neighbor reads cross
// PCIe — and serves 80% of features from DRAM with the hottest 20% (by
// degree) cached on-device, as described in §8.1.1.
#pragma once

#include <cstdint>
#include <memory>

#include "comm/cluster.hpp"
#include "graph/dataset.hpp"
#include "nn/model.hpp"

namespace dms {

struct QuiverConfig {
  bool uva = false;            ///< Figure 5: UVA sampling + DRAM features
  double uva_gpu_cache_fraction = 0.2;  ///< features cached on device
  /// Quiver reads remote feature rows individually via zero-copy GPU p2p
  /// (per-row transactions), reaching a fraction of peak link bandwidth;
  /// our pipeline packs rows into bulk NCCL all-to-allv messages. This is
  /// the "does not effectively optimize this communication" of §8.1.1.
  double p2p_efficiency = 0.5;
  /// Zero-copy p2p only exists within a node (NVLink). A feature row on a
  /// GPU in another node is fetched as its own small transfer and pays this
  /// pipelined per-row latency — the mechanism behind both Quiver's 4→8 GPU
  /// slowdown and its failure to scale on dense graphs (§8.1.1: "this
  /// communication volume also increases as p increases").
  double cross_node_row_latency = 2.5e-6;
  /// Fine-grained cross-node reads from many GPUs at once suffer incast
  /// congestion that grows with the node count; coarse-grained bulk
  /// all-to-allv transfers (our pipeline) do not. Effective per-row latency
  /// is cross_node_row_latency * (1 + incast_factor * (nodes - 1)).
  double incast_factor = 0.1;
  index_t batch_size = 64;
  std::vector<index_t> fanouts = {10, 5, 5};
  index_t hidden = 32;
  float lr = 1e-2f;
  std::uint64_t seed = 7;
};

struct QuiverEpochStats {
  double sampling = 0.0;
  double fetch = 0.0;
  double propagation = 0.0;
  double total = 0.0;
  double loss = 0.0;
};

class QuiverSim {
 public:
  QuiverSim(Cluster& cluster, const Dataset& dataset, QuiverConfig config);

  QuiverEpochStats run_epoch(int epoch);

  /// Per-rank device memory: full replicated topology + feature shard.
  std::size_t per_rank_bytes(int rank) const;

 private:
  Cluster& cluster_;
  const Dataset& ds_;
  QuiverConfig cfg_;
  SageModel model_;
  std::unique_ptr<Optimizer> optimizer_;
  std::vector<char> gpu_cached_;  ///< UVA: per-vertex on-device cache flag
};

}  // namespace dms
