#include "baselines/quiver_sim.hpp"

#include <algorithm>
#include <numeric>

#include "baselines/classic_sage.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/minibatch.hpp"
#include "graph/partition.hpp"

namespace dms {

namespace {

ModelConfig make_model_config(const Dataset& ds, const QuiverConfig& cfg) {
  ModelConfig mc;
  mc.in_dim = ds.feature_dim();
  mc.hidden = cfg.hidden;
  mc.num_classes = ds.num_classes;
  mc.num_layers = static_cast<index_t>(cfg.fanouts.size());
  mc.seed = derive_seed(cfg.seed, 0x0de1);
  return mc;
}

}  // namespace

QuiverSim::QuiverSim(Cluster& cluster, const Dataset& dataset, QuiverConfig config)
    : cluster_(cluster),
      ds_(dataset),
      cfg_(std::move(config)),
      model_(make_model_config(dataset, cfg_)) {
  optimizer_ = std::make_unique<Adam>(cfg_.lr);
  if (cfg_.uva) {
    // Cache the hottest vertices (by degree) on device — Quiver's
    // degree-ordered feature cache.
    const index_t n = ds_.num_vertices();
    std::vector<index_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), index_t{0});
    std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
      return ds_.graph.out_degree(a) > ds_.graph.out_degree(b);
    });
    gpu_cached_.assign(static_cast<std::size_t>(n), 0);
    const auto cached =
        static_cast<index_t>(cfg_.uva_gpu_cache_fraction * static_cast<double>(n));
    for (index_t i = 0; i < cached; ++i) {
      gpu_cached_[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 1;
    }
  }
}

QuiverEpochStats QuiverSim::run_epoch(int epoch) {
  cluster_.reset_clock();
  const std::uint64_t epoch_seed =
      derive_seed(cfg_.seed, 0x9f1e, static_cast<std::uint64_t>(epoch));
  const auto batches = make_epoch_batches(ds_.train_idx, cfg_.batch_size, epoch_seed);
  const int p = cluster_.size();
  const CostModel& model = cluster_.cost_model();
  const double launch = model.link().launch_overhead;
  const std::size_t row_bytes =
      static_cast<std::size_t>(ds_.feature_dim()) * sizeof(float);
  const BlockPartition feat_part(ds_.num_vertices(), p);  // quiver.Feature shard
  const std::size_t param_bytes = model_.param_bytes();

  const auto k_total = static_cast<index_t>(batches.size());
  const index_t steps = ceil_div(k_total, p);
  double loss_sum = 0.0;
  index_t seen = 0;

  for (index_t t = 0; t < steps; ++t) {
    // --- Per-rank sampling of one minibatch (no bulk amortization). ---
    double max_sample = 0.0;
    double worst_uva_sampling = 0.0;
    std::size_t uva_graph_bytes = 0;
    std::vector<MinibatchSample> samples(static_cast<std::size_t>(p));
    std::vector<bool> active(static_cast<std::size_t>(p), false);
    for (int r = 0; r < p; ++r) {
      const index_t b = t * p + r;
      if (b >= k_total) continue;
      active[static_cast<std::size_t>(r)] = true;
      Timer timer;
      samples[static_cast<std::size_t>(r)] = classic_sage_sample(
          ds_.graph, batches[static_cast<std::size_t>(b)], cfg_.fanouts, b, epoch_seed);
      max_sample = std::max(max_sample, timer.seconds());
      if (cfg_.uva) {
        // UVA sampling walks adjacency lists resident in host DRAM: every
        // frontier vertex's neighbor list is a separate PCIe transaction
        // (latency-bound) plus the list payload (bandwidth-bound).
        std::size_t rank_bytes = 0;
        std::size_t accesses = 0;
        for (const auto& layer : samples[static_cast<std::size_t>(r)].layers) {
          accesses += layer.row_vertices.size();
          for (const index_t v : layer.row_vertices) {
            rank_bytes += static_cast<std::size_t>(ds_.graph.out_degree(v)) *
                          sizeof(index_t);
          }
        }
        worst_uva_sampling = std::max(
            worst_uva_sampling,
            static_cast<double>(accesses) * model.link().uva_access_latency +
                static_cast<double>(rank_bytes) * model.link().beta_pcie);
        uva_graph_bytes += rank_bytes;
      }
    }
    cluster_.add_compute_irregular("sampling", max_sample);
    // Kernel launches per layer per minibatch — not amortized.
    cluster_.add_overhead("sampling",
                          launch * 4.0 * static_cast<double>(cfg_.fanouts.size()));
    if (cfg_.uva && worst_uva_sampling > 0.0) {
      cluster_.record_comm("sampling", worst_uva_sampling, uva_graph_bytes,
                           static_cast<std::size_t>(p));
    }

    // --- Feature fetching from the partitioned store. ---
    double worst_fetch = 0.0;
    std::size_t fetch_bytes = 0;
    std::vector<DenseF> gathered(static_cast<std::size_t>(p));
    double max_gather_compute = 0.0;
    for (int r = 0; r < p; ++r) {
      if (!active[static_cast<std::size_t>(r)]) continue;
      const auto& input = samples[static_cast<std::size_t>(r)].input_vertices();
      Timer timer;
      DenseF h(static_cast<index_t>(input.size()), ds_.feature_dim());
      double t_fetch = 0.0;
      std::vector<std::size_t> from_peer(static_cast<std::size_t>(p), 0);
      std::size_t pcie_bytes = 0;
      std::size_t pcie_rows = 0;
      std::size_t cross_node_rows = 0;
      for (std::size_t i = 0; i < input.size(); ++i) {
        const index_t v = input[i];
        std::copy(ds_.features.row(v), ds_.features.row(v) + ds_.feature_dim(),
                  h.row(static_cast<index_t>(i)));
        if (cfg_.uva) {
          if (!gpu_cached_[static_cast<std::size_t>(v)]) {
            pcie_bytes += row_bytes;
            ++pcie_rows;
          }
        } else {
          const auto owner = static_cast<int>(feat_part.owner(v));
          if (owner != r) {
            from_peer[static_cast<std::size_t>(owner)] += row_bytes;
            if (!model.same_node(owner, r)) ++cross_node_rows;
          }
        }
      }
      max_gather_compute = std::max(max_gather_compute, timer.seconds());
      if (cfg_.uva) {
        t_fetch = static_cast<double>(pcie_bytes) * model.link().beta_pcie +
                  static_cast<double>(pcie_rows) * model.link().uva_access_latency;
        fetch_bytes += pcie_bytes;
      } else {
        for (int peer = 0; peer < p; ++peer) {
          const std::size_t bytes = from_peer[static_cast<std::size_t>(peer)];
          if (bytes == 0) continue;
          t_fetch += model.link().alpha +
                     static_cast<double>(bytes) * model.beta(peer, r) /
                         cfg_.p2p_efficiency;
          fetch_bytes += bytes;
        }
        // Per-row transfer latency for rows outside the NVLink p2p domain,
        // inflated by incast congestion across the participating nodes.
        const double nodes = std::max(
            1.0, static_cast<double>(p) / model.link().ranks_per_node);
        t_fetch += static_cast<double>(cross_node_rows) *
                   cfg_.cross_node_row_latency *
                   (1.0 + cfg_.incast_factor * (nodes - 1.0));
      }
      worst_fetch = std::max(worst_fetch, t_fetch);
      gathered[static_cast<std::size_t>(r)] = std::move(h);
    }
    cluster_.add_compute("fetch", max_gather_compute);
    cluster_.record_comm("fetch", worst_fetch, fetch_bytes, static_cast<std::size_t>(p));

    // --- Propagation (same machinery as the pipeline). ---
    double max_prop = 0.0;
    int num_active = 0;
    for (int r = 0; r < p; ++r) {
      if (!active[static_cast<std::size_t>(r)]) continue;
      const auto& sample = samples[static_cast<std::size_t>(r)];
      std::vector<int> labels(sample.batch_vertices.size());
      for (std::size_t i = 0; i < labels.size(); ++i) {
        labels[i] = ds_.labels[static_cast<std::size_t>(sample.batch_vertices[i])];
      }
      Timer timer;
      const LossResult res =
          model_.train_step(sample, gathered[static_cast<std::size_t>(r)], labels);
      max_prop = std::max(max_prop, timer.seconds());
      loss_sum += res.loss * static_cast<double>(labels.size());
      seen += static_cast<index_t>(labels.size());
      ++num_active;
    }
    if (num_active > 0) {
      Timer timer;
      model_.scale_grads(1.0f / static_cast<float>(num_active));
      optimizer_->step(model_.params());
      model_.zero_grads();
      cluster_.add_compute("propagation", max_prop + timer.seconds());
      if (p > 1) {
        cluster_.record_comm(
            "propagation",
            model.allreduce(cluster_.grid().all_ranks(), param_bytes),
            param_bytes * static_cast<std::size_t>(p),
            static_cast<std::size_t>(2 * (p - 1)));
      }
    }
  }

  QuiverEpochStats stats;
  stats.sampling = cluster_.phase_time("sampling");
  stats.fetch = cluster_.phase_time("fetch");
  stats.propagation = cluster_.phase_time("propagation");
  stats.total = cluster_.total_time();
  stats.loss = seen > 0 ? loss_sum / static_cast<double>(seen) : 0.0;
  return stats;
}

std::size_t QuiverSim::per_rank_bytes(int rank) const {
  (void)rank;
  const std::size_t shard =
      static_cast<std::size_t>(ceil_div(ds_.num_vertices(), cluster_.size())) *
      static_cast<std::size_t>(ds_.feature_dim()) * sizeof(float);
  return ds_.graph.adjacency().bytes() + shard + model_.param_bytes();
}

}  // namespace dms
