// Loop-based (non-matrix) GraphSAGE neighbor sampler — the classic
// per-vertex implementation used by DGL/PyG/Quiver samplers. Serves as
// (a) the sampling kernel of the Quiver-sim baseline and (b) a semantic
// oracle for the matrix-based sampler's tests (same output *distribution*,
// different RNG path).
#pragma once

#include <cstdint>

#include "core/sampler.hpp"
#include "graph/graph.hpp"

namespace dms {

/// Samples one minibatch layer-by-layer, vertex-by-vertex: each frontier
/// vertex draws min(s, deg) distinct neighbors uniformly (Floyd's
/// algorithm). Output uses the same LayerSample/frontier conventions as the
/// matrix samplers so it can drive the same model.
MinibatchSample classic_sage_sample(const Graph& graph,
                                    const std::vector<index_t>& batch,
                                    const std::vector<index_t>& fanouts,
                                    index_t batch_id, std::uint64_t epoch_seed);

}  // namespace dms
