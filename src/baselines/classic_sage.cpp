#include "baselines/classic_sage.hpp"

#include <unordered_set>

#include "common/rng.hpp"
#include "core/frontier.hpp"

namespace dms {

namespace {

/// Floyd's algorithm: sample `s` distinct indices from [0, m) uniformly.
void sample_distinct(index_t m, index_t s, Pcg32& rng, std::vector<index_t>* out) {
  out->clear();
  if (m <= s) {
    for (index_t i = 0; i < m; ++i) out->push_back(i);
    return;
  }
  std::unordered_set<index_t> chosen;
  for (index_t j = m - s; j < m; ++j) {
    const index_t t = rng.bounded64(j + 1);
    if (chosen.insert(t).second) {
      out->push_back(t);
    } else {
      chosen.insert(j);
      out->push_back(j);
    }
  }
}

}  // namespace

MinibatchSample classic_sage_sample(const Graph& graph,
                                    const std::vector<index_t>& batch,
                                    const std::vector<index_t>& fanouts,
                                    index_t batch_id, std::uint64_t epoch_seed) {
  MinibatchSample out;
  out.batch_vertices = batch;
  std::vector<index_t> frontier = batch;
  std::vector<index_t> picks;
  for (std::size_t l = 0; l < fanouts.size(); ++l) {
    const index_t s = fanouts[l];
    std::vector<std::vector<index_t>> sampled(frontier.size());
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      const index_t v = frontier[i];
      const auto neigh = graph.adjacency().row_cols(v);
      Pcg32 rng(derive_seed(epoch_seed, static_cast<std::uint64_t>(batch_id),
                            static_cast<std::uint64_t>(l), static_cast<std::uint64_t>(i)),
                0xc1a);
      sample_distinct(static_cast<index_t>(neigh.size()), s, rng, &picks);
      for (const index_t idx : picks) {
        sampled[i].push_back(neigh[static_cast<std::size_t>(idx)]);
      }
    }
    LayerSample layer = build_layer_sample(frontier, sampled);
    frontier = layer.col_vertices;
    out.layers.push_back(std::move(layer));
  }
  return out;
}

}  // namespace dms
