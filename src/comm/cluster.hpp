// Bulk-synchronous simulated cluster.
//
// Distributed algorithms in src/dist and src/train are written SPMD-style as
// supersteps over per-rank local state. The Cluster executes every rank's
// body (really running the computation on the host), measures each rank's
// local compute wall-clock, and advances a simulated clock by
//
//     max over ranks of (measured compute / compute_scale)
//
// per superstep. Communication is performed by the caller as direct data
// movement between per-rank structures, with exact volumes reported through
// record_comm()/CostModel. This reproduces the timing structure of a real
// bulk-synchronous GPU pipeline (Figure 3) without GPUs. See DESIGN.md §2.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "comm/costmodel.hpp"
#include "comm/faults.hpp"
#include "comm/grid.hpp"
#include "common/timer.hpp"

namespace dms {

/// Records sub-phase compute times from inside a rank body so the Cluster
/// can attribute the max-over-ranks per phase (Figure 4/7 breakdowns).
class PhaseRecorder {
 public:
  void add(const std::string& phase, double seconds) { times_[phase] += seconds; }
  const std::map<std::string, double>& times() const { return times_; }

 private:
  std::map<std::string, double> times_;
};

/// Aggregate communication statistics per phase.
struct CommStats {
  std::size_t messages = 0;
  std::size_t bytes = 0;
  double seconds = 0.0;
};

class Cluster {
 public:
  Cluster(ProcessGrid grid, CostModel model)
      : grid_(grid), model_(model) {}

  const ProcessGrid& grid() const { return grid_; }
  const CostModel& cost_model() const { return model_; }
  int size() const { return grid_.size(); }

  /// Runs body(rank) for every rank, adding max-over-ranks measured time to
  /// compute phase `phase`.
  void superstep(const std::string& phase, const std::function<void(int)>& body);

  /// Runs body(rank, recorder); each rank attributes its own sub-phase
  /// times. Unattributed time inside the body is *not* counted — use the
  /// recorder for everything that should reach the clock.
  void superstep_recorded(const std::function<void(int, PhaseRecorder&)>& body);

  /// Adds pre-measured compute seconds to a phase (already max-over-ranks).
  void add_compute(const std::string& phase, double seconds);

  /// As add_compute, but for irregular per-vertex kernels (scaled by
  /// irregular_compute_scale instead of compute_scale).
  void add_compute_irregular(const std::string& phase, double seconds);

  /// Records a communication event whose modeled time was computed with the
  /// CostModel. Adds to the simulated clock.
  void record_comm(const std::string& phase, double seconds, std::size_t bytes,
                   std::size_t messages);

  /// Adds a fixed overhead (e.g. per-minibatch kernel-launch cost).
  void add_overhead(const std::string& phase, double seconds);

  /// Credits `seconds` of already-recorded time as hidden behind a stage
  /// that executes concurrently (the staged executor's max(compute, comm)
  /// composition: a prefetched feature fetch runs under propagation, a bulk
  /// sampling round under the previous round's training). Per-phase
  /// breakdowns keep the full stage costs; only total_time() subtracts the
  /// credit. Callers must credit at most min(hidden stage, covering stage),
  /// so the credit can never exceed the recorded clock.
  void credit_overlap(double seconds);

  /// Total simulated seconds credited as overlapped since reset_clock().
  double overlap_credit() const { return overlap_credit_; }

  /// Simulated seconds per compute phase (already scaled by compute_scale).
  const std::map<std::string, double>& compute_time() const { return compute_time_; }
  /// Simulated seconds and volumes per communication phase.
  const std::map<std::string, CommStats>& comm_stats() const { return comm_stats_; }

  double total_compute() const;
  double total_comm() const;
  /// Simulated wall clock: compute + comm minus the overlapped credit.
  double total_time() const {
    return std::max(0.0, total_compute() + total_comm() - overlap_credit_);
  }

  /// Seconds for a single phase across compute + comm tables.
  double phase_time(const std::string& phase) const;

  void reset_clock();

  /// Merges this cluster's compute/comm tables and overlap credit into
  /// `dst`, then clears them here (fault state is untouched on both sides).
  /// Times are moved raw — they were already scaled/faulted when recorded —
  /// and no loss draws replay on `dst`. Used by the disaggregated pipeline:
  /// the sampler-role sub-cluster accumulates a round's phases, then drains
  /// them into the main cluster so one clock covers both roles.
  void drain_into(Cluster& dst);

  // --- Fault injection (DESIGN.md §13) -----------------------------------
  //
  // With a FaultPlan installed, the cluster becomes the single chokepoint
  // where failures enter the simulation: begin_superstep() advances the
  // fault clock and fires scheduled crashes, add_compute applies the
  // superstep's straggler multiplier, and record_comm replays transient
  // loss with bounded-backoff retries. Every draw is keyed by deterministic
  // counters (superstep index, comm-event index), never host timing, so a
  // faulty run is exactly replayable. With no plan installed all paths are
  // bit-identical to the fault-free cluster.

  /// Installs a borrowed fault plan (must outlive the cluster or be cleared)
  /// and resets the fault clock, alive set, and fault accounting.
  void install_faults(const FaultPlan* plan, RecoveryPolicy policy = {});
  void clear_faults();
  bool has_faults() const { return faults_ != nullptr; }

  /// Advances the fault clock by one superstep: fires crashes scheduled for
  /// the new superstep (marking ranks permanently dead) and fixes the
  /// superstep's straggler multiplier (max over alive ranks' draws — the
  /// BSP round is gated by its slowest member). Callers place superstep
  /// boundaries at their natural recovery points (the staged executor uses
  /// bulk-round boundaries). Returns the new superstep index (from 0).
  index_t begin_superstep();
  index_t current_superstep() const { return superstep_ - 1; }

  /// Rank liveness. Every rank is alive until a CrashEvent kills it.
  bool alive(int rank) const {
    return dead_.empty() || dead_[static_cast<std::size_t>(rank)] == 0;
  }
  int num_alive() const;
  std::vector<int> alive_ranks() const;
  /// A process row is alive while at least one of its c replicas is.
  bool row_alive(int row) const;

  /// Cumulative fault/recovery accounting since install_faults (monotonic —
  /// reset_clock does not touch it; callers diff snapshots per epoch).
  const FaultStats& fault_stats() const { return fault_stats_; }

  /// Attributes crash-recovery data movement (survivor fetches,
  /// re-partitioning) to the fault accounting. The caller still records the
  /// actual time/bytes under its phase via record_comm, so the phase tables
  /// and their invariants are unchanged — this is the breakdown overlay.
  void add_fault_redistribution(double seconds, std::size_t bytes);

 private:
  ProcessGrid grid_;
  CostModel model_;
  std::map<std::string, double> compute_time_;
  std::map<std::string, CommStats> comm_stats_;
  double overlap_credit_ = 0.0;
  const FaultPlan* faults_ = nullptr;  ///< borrowed; nullptr = no faults
  RecoveryPolicy recovery_;
  std::vector<char> dead_;             ///< sized on install_faults
  index_t superstep_ = 0;              ///< supersteps begun so far
  std::uint64_t comm_event_ = 0;       ///< deterministic loss-draw counter
  double straggler_factor_ = 1.0;      ///< current superstep's multiplier
  FaultStats fault_stats_;
};

}  // namespace dms
