// Bulk-synchronous simulated cluster.
//
// Distributed algorithms in src/dist and src/train are written SPMD-style as
// supersteps over per-rank local state. The Cluster executes every rank's
// body (really running the computation on the host), measures each rank's
// local compute wall-clock, and advances a simulated clock by
//
//     max over ranks of (measured compute / compute_scale)
//
// per superstep. Communication is performed by the caller as direct data
// movement between per-rank structures, with exact volumes reported through
// record_comm()/CostModel. This reproduces the timing structure of a real
// bulk-synchronous GPU pipeline (Figure 3) without GPUs. See DESIGN.md §2.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "comm/costmodel.hpp"
#include "comm/grid.hpp"
#include "common/timer.hpp"

namespace dms {

/// Records sub-phase compute times from inside a rank body so the Cluster
/// can attribute the max-over-ranks per phase (Figure 4/7 breakdowns).
class PhaseRecorder {
 public:
  void add(const std::string& phase, double seconds) { times_[phase] += seconds; }
  const std::map<std::string, double>& times() const { return times_; }

 private:
  std::map<std::string, double> times_;
};

/// Aggregate communication statistics per phase.
struct CommStats {
  std::size_t messages = 0;
  std::size_t bytes = 0;
  double seconds = 0.0;
};

class Cluster {
 public:
  Cluster(ProcessGrid grid, CostModel model)
      : grid_(grid), model_(model) {}

  const ProcessGrid& grid() const { return grid_; }
  const CostModel& cost_model() const { return model_; }
  int size() const { return grid_.size(); }

  /// Runs body(rank) for every rank, adding max-over-ranks measured time to
  /// compute phase `phase`.
  void superstep(const std::string& phase, const std::function<void(int)>& body);

  /// Runs body(rank, recorder); each rank attributes its own sub-phase
  /// times. Unattributed time inside the body is *not* counted — use the
  /// recorder for everything that should reach the clock.
  void superstep_recorded(const std::function<void(int, PhaseRecorder&)>& body);

  /// Adds pre-measured compute seconds to a phase (already max-over-ranks).
  void add_compute(const std::string& phase, double seconds);

  /// As add_compute, but for irregular per-vertex kernels (scaled by
  /// irregular_compute_scale instead of compute_scale).
  void add_compute_irregular(const std::string& phase, double seconds);

  /// Records a communication event whose modeled time was computed with the
  /// CostModel. Adds to the simulated clock.
  void record_comm(const std::string& phase, double seconds, std::size_t bytes,
                   std::size_t messages);

  /// Adds a fixed overhead (e.g. per-minibatch kernel-launch cost).
  void add_overhead(const std::string& phase, double seconds);

  /// Credits `seconds` of already-recorded time as hidden behind a stage
  /// that executes concurrently (the staged executor's max(compute, comm)
  /// composition: a prefetched feature fetch runs under propagation, a bulk
  /// sampling round under the previous round's training). Per-phase
  /// breakdowns keep the full stage costs; only total_time() subtracts the
  /// credit. Callers must credit at most min(hidden stage, covering stage),
  /// so the credit can never exceed the recorded clock.
  void credit_overlap(double seconds);

  /// Total simulated seconds credited as overlapped since reset_clock().
  double overlap_credit() const { return overlap_credit_; }

  /// Simulated seconds per compute phase (already scaled by compute_scale).
  const std::map<std::string, double>& compute_time() const { return compute_time_; }
  /// Simulated seconds and volumes per communication phase.
  const std::map<std::string, CommStats>& comm_stats() const { return comm_stats_; }

  double total_compute() const;
  double total_comm() const;
  /// Simulated wall clock: compute + comm minus the overlapped credit.
  double total_time() const {
    return std::max(0.0, total_compute() + total_comm() - overlap_credit_);
  }

  /// Seconds for a single phase across compute + comm tables.
  double phase_time(const std::string& phase) const;

  void reset_clock();

 private:
  ProcessGrid grid_;
  CostModel model_;
  std::map<std::string, double> compute_time_;
  std::map<std::string, CommStats> comm_stats_;
  double overlap_credit_ = 0.0;
};

}  // namespace dms
