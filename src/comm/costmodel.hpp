// α–β communication cost model (§2.4) parameterized with the Perlmutter
// numbers from §7.2: NVLink 3.0 at 100 GB/s within a node of 4 GPUs,
// Slingshot 11 at 25 GB/s per NIC across nodes.
//
// This is the substitution for the real NCCL/GPU fabric: collective
// implementations in src/dist count exact bytes/messages and convert them to
// time here. The paper itself analyzes its algorithms in this same model
// (e.g. T_prob = α(p/c² + log c) + β(kbd/c + ckbd/p), §5.2.1).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace dms {

struct LinkParams {
  double alpha = 5e-6;             ///< per-message latency, seconds
  double beta_intra = 1.0 / 100e9; ///< seconds/byte within a node (NVLink 3.0)
  double beta_inter = 1.0 / 25e9;  ///< seconds/byte across nodes (Slingshot 11)
  int ranks_per_node = 4;          ///< Perlmutter: 4 A100s per node

  /// Host-CPU → device compute-throughput ratio for *bulk* kernels
  /// (SpGEMM, SpMM, GEMM, bulk ITS): measured local compute is divided by
  /// this before entering the simulated clock.
  double compute_scale = 1.0;

  /// Separate ratio for *irregular per-vertex* kernels (loop-based
  /// per-minibatch neighbor sampling, as in Quiver/DGL GPU samplers). These
  /// are latency/divergence-bound and do not saturate a device the way bulk
  /// matrix kernels do — which is precisely the paper's motivation for
  /// matrix-based bulk sampling (§1, §4). Keep ≤ compute_scale.
  double irregular_compute_scale = 1.0;

  /// Fixed per-kernel-launch overhead, seconds. This is the per-minibatch
  /// cost that bulk sampling amortizes (§4: "amortizes the overheads of
  /// sampling a minibatch"); the Quiver-sim baseline pays it per batch.
  double launch_overhead = 30e-6;

  /// PCIe bandwidth for the UVA mode of Figure 5 (graph + most features in
  /// host DRAM, accessed over PCIe 4.0 x16 ≈ 25 GB/s with UVA overheads).
  double beta_pcie = 1.0 / 20e9;

  /// Per-row PCIe transaction latency for UVA random accesses (neighbor
  /// lists / feature rows resident in DRAM are touched individually, not
  /// streamed, so each access pays a round-trip amortized over pipelining).
  /// This term — not bandwidth — is what makes UVA sampling slow (§8.1.1).
  double uva_access_latency = 0.3e-6;
};

/// Converts communication events to simulated seconds.
class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(LinkParams link) : link_(link) {}

  const LinkParams& link() const { return link_; }
  LinkParams& mutable_link() { return link_; }

  int node_of(int rank) const { return rank / link_.ranks_per_node; }
  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// β between two specific ranks.
  double beta(int src, int dst) const {
    return same_node(src, dst) ? link_.beta_intra : link_.beta_inter;
  }

  /// Worst-case β within a group of ranks (collectives are gated by their
  /// slowest link).
  double group_beta(const std::vector<int>& ranks) const;

  /// Point-to-point message of `bytes` bytes.
  double p2p(int src, int dst, std::size_t bytes) const {
    return link_.alpha + static_cast<double>(bytes) * beta(src, dst);
  }

  /// Binomial-tree broadcast of `bytes` to a group of size n.
  double broadcast(const std::vector<int>& group, std::size_t bytes) const;

  /// Ring all-reduce of a `bytes`-sized buffer over the group:
  /// 2(n-1) steps of bytes/n each, plus latency.
  double allreduce(const std::vector<int>& group, std::size_t bytes) const;

  /// All-gather where each rank contributes `bytes_per_rank`.
  double allgather(const std::vector<int>& group, std::size_t bytes_per_rank) const;

  /// All-to-allv: send_bytes[i][j] = bytes rank group[i] sends to group[j].
  /// Modeled as max over ranks of sequential sends (pairwise exchange).
  double alltoallv(const std::vector<int>& group,
                   const std::vector<std::vector<std::size_t>>& send_bytes) const;

 private:
  LinkParams link_;
};

}  // namespace dms
