#include "comm/faults.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace dms {

namespace {

// Domain-separation tags for the fault-draw seed derivations.
constexpr std::uint64_t kStragglerTag = 0xfa57a661ULL;
constexpr std::uint64_t kLossTag = 0xfa10bb55ULL;

/// Uniform [0, 1) draw keyed purely by the event coordinates.
double fault_draw(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                  std::uint64_t b) {
  return Pcg32(derive_seed(seed, tag, a, b)).uniform();
}

}  // namespace

double RecoveryPolicy::backoff(int attempt) const {
  double b = base_backoff;
  for (int k = 0; k < attempt; ++k) b *= backoff_factor;
  return std::min(b, max_backoff);
}

FaultStats operator-(const FaultStats& after, const FaultStats& before) {
  FaultStats d;
  d.straggler_seconds = after.straggler_seconds - before.straggler_seconds;
  d.retry_seconds = after.retry_seconds - before.retry_seconds;
  d.redistribution_seconds =
      after.redistribution_seconds - before.redistribution_seconds;
  d.retry_bytes = after.retry_bytes - before.retry_bytes;
  d.retry_messages = after.retry_messages - before.retry_messages;
  d.lost_messages = after.lost_messages - before.lost_messages;
  d.redistribution_bytes =
      after.redistribution_bytes - before.redistribution_bytes;
  d.crashed_ranks = after.crashed_ranks - before.crashed_ranks;
  return d;
}

FaultPlan::FaultPlan(FaultPlanConfig cfg) : cfg_(cfg) {
  check(cfg_.straggler_rate >= 0.0 && cfg_.straggler_rate <= 1.0,
        "FaultPlan: straggler_rate must be in [0, 1]");
  check(cfg_.loss_rate >= 0.0 && cfg_.loss_rate <= 1.0,
        "FaultPlan: loss_rate must be in [0, 1]");
  check(cfg_.straggler_factor >= 1.0,
        "FaultPlan: straggler_factor must be >= 1 (a slowdown)");
  for (const CrashEvent& e : cfg_.crashes) {
    check(e.rank >= 0, "FaultPlan: crash rank must be non-negative");
    check(e.superstep >= 0, "FaultPlan: crash superstep must be non-negative");
  }
}

double FaultPlan::slowdown(index_t superstep, int rank) const {
  if (cfg_.straggler_rate <= 0.0) return 1.0;
  const double u =
      fault_draw(cfg_.seed, kStragglerTag, static_cast<std::uint64_t>(superstep),
                 static_cast<std::uint64_t>(rank));
  return u < cfg_.straggler_rate ? cfg_.straggler_factor : 1.0;
}

bool FaultPlan::lost(std::uint64_t event, int attempt) const {
  if (cfg_.loss_rate <= 0.0) return false;
  const double u = fault_draw(cfg_.seed, kLossTag, event,
                              static_cast<std::uint64_t>(attempt));
  return u < cfg_.loss_rate;
}

std::vector<int> FaultPlan::crashes_at(index_t superstep) const {
  std::vector<int> ranks;
  for (const CrashEvent& e : cfg_.crashes) {
    if (e.superstep == superstep) ranks.push_back(e.rank);
  }
  std::sort(ranks.begin(), ranks.end());
  return ranks;
}

}  // namespace dms
