#include "comm/costmodel.hpp"

#include <algorithm>
#include <cmath>

namespace dms {

double CostModel::group_beta(const std::vector<int>& ranks) const {
  double b = link_.beta_intra;
  for (std::size_t i = 0; i + 1 < ranks.size(); ++i) {
    if (!same_node(ranks[i], ranks[i + 1])) return link_.beta_inter;
  }
  // Also compare first/last (defensive for non-contiguous groups).
  if (ranks.size() >= 2 && !same_node(ranks.front(), ranks.back())) {
    return link_.beta_inter;
  }
  return b;
}

double CostModel::broadcast(const std::vector<int>& group, std::size_t bytes) const {
  const auto n = static_cast<double>(group.size());
  if (n <= 1.0) return 0.0;
  const double steps = std::ceil(std::log2(n));
  return steps * (link_.alpha + static_cast<double>(bytes) * group_beta(group));
}

double CostModel::allreduce(const std::vector<int>& group, std::size_t bytes) const {
  const auto n = static_cast<double>(group.size());
  if (n <= 1.0) return 0.0;
  const double b = group_beta(group);
  return 2.0 * (n - 1.0) * link_.alpha +
         2.0 * (n - 1.0) / n * static_cast<double>(bytes) * b;
}

double CostModel::allgather(const std::vector<int>& group,
                            std::size_t bytes_per_rank) const {
  const auto n = static_cast<double>(group.size());
  if (n <= 1.0) return 0.0;
  const double b = group_beta(group);
  return (n - 1.0) * link_.alpha +
         (n - 1.0) * static_cast<double>(bytes_per_rank) * b;
}

double CostModel::alltoallv(
    const std::vector<int>& group,
    const std::vector<std::vector<std::size_t>>& send_bytes) const {
  double worst = 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    double t = 0.0;
    for (std::size_t j = 0; j < group.size(); ++j) {
      if (i == j) continue;
      const std::size_t bytes = send_bytes[i][j];
      if (bytes == 0) continue;
      t += link_.alpha + static_cast<double>(bytes) * beta(group[i], group[j]);
    }
    worst = std::max(worst, t);
  }
  return worst;
}

}  // namespace dms
