#include "comm/cluster.hpp"

#include <algorithm>

namespace dms {

void Cluster::superstep(const std::string& phase, const std::function<void(int)>& body) {
  double max_t = 0.0;
  for (int r = 0; r < grid_.size(); ++r) {
    if (!alive(r)) continue;  // crashed ranks do no work
    Timer t;
    body(r);
    max_t = std::max(max_t, t.seconds());
  }
  add_compute(phase, max_t);
}

void Cluster::superstep_recorded(const std::function<void(int, PhaseRecorder&)>& body) {
  std::map<std::string, double> max_per_phase;
  for (int r = 0; r < grid_.size(); ++r) {
    if (!alive(r)) continue;
    PhaseRecorder rec;
    body(r, rec);
    for (const auto& [phase, sec] : rec.times()) {
      max_per_phase[phase] = std::max(max_per_phase[phase], sec);
    }
  }
  for (const auto& [phase, sec] : max_per_phase) add_compute(phase, sec);
}

void Cluster::add_compute(const std::string& phase, double seconds) {
  const double scaled = seconds / model_.link().compute_scale;
  compute_time_[phase] += scaled * straggler_factor_;
  if (straggler_factor_ > 1.0) {
    fault_stats_.straggler_seconds += scaled * (straggler_factor_ - 1.0);
  }
}

void Cluster::add_compute_irregular(const std::string& phase, double seconds) {
  const double scaled = seconds / model_.link().irregular_compute_scale;
  compute_time_[phase] += scaled * straggler_factor_;
  if (straggler_factor_ > 1.0) {
    fault_stats_.straggler_seconds += scaled * (straggler_factor_ - 1.0);
  }
}

void Cluster::record_comm(const std::string& phase, double seconds, std::size_t bytes,
                          std::size_t messages) {
  CommStats& s = comm_stats_[phase];
  s.seconds += seconds;
  s.bytes += bytes;
  s.messages += messages;
  if (faults_ == nullptr || !faults_->has_loss()) return;
  // Transient loss: this call is one communication event. Each lost attempt
  // pays a full retransmit plus the policy's backoff; the final allowed
  // attempt always delivers, so the event count and payload stay
  // deterministic. Retry time/volume lands in the phase's comm table (the
  // clock and the accounting invariants see real costs) and is additionally
  // broken out in fault_stats_.
  const std::uint64_t event = comm_event_++;
  for (int attempt = 0; attempt + 1 < recovery_.max_attempts; ++attempt) {
    if (!faults_->lost(event, attempt)) break;
    const double retry = seconds + recovery_.backoff(attempt);
    s.seconds += retry;
    s.bytes += bytes;
    s.messages += messages;
    fault_stats_.retry_seconds += retry;
    fault_stats_.retry_bytes += bytes;
    fault_stats_.retry_messages += messages;
    ++fault_stats_.lost_messages;
  }
}

void Cluster::add_overhead(const std::string& phase, double seconds) {
  compute_time_[phase] += seconds;  // overheads are device-side, not scaled
}

void Cluster::credit_overlap(double seconds) {
  check(seconds >= 0.0, "credit_overlap: negative overlap credit");
  overlap_credit_ += seconds;
}

double Cluster::total_compute() const {
  double t = 0.0;
  for (const auto& [_, sec] : compute_time_) t += sec;
  return t;
}

double Cluster::total_comm() const {
  double t = 0.0;
  for (const auto& [_, s] : comm_stats_) t += s.seconds;
  return t;
}

double Cluster::phase_time(const std::string& phase) const {
  double t = 0.0;
  if (const auto it = compute_time_.find(phase); it != compute_time_.end()) {
    t += it->second;
  }
  if (const auto it = comm_stats_.find(phase); it != comm_stats_.end()) {
    t += it->second.seconds;
  }
  return t;
}

void Cluster::reset_clock() {
  compute_time_.clear();
  comm_stats_.clear();
  overlap_credit_ = 0.0;
  // Fault state (alive set, superstep counter, fault_stats_) deliberately
  // survives: crashes are permanent across epochs, and fault accounting is
  // cumulative like FeatureCacheStats.
}

void Cluster::drain_into(Cluster& dst) {
  check(&dst != this, "drain_into: cannot drain a cluster into itself");
  for (const auto& [phase, sec] : compute_time_) {
    dst.compute_time_[phase] += sec;
  }
  for (const auto& [phase, s] : comm_stats_) {
    CommStats& d = dst.comm_stats_[phase];
    d.seconds += s.seconds;
    d.bytes += s.bytes;
    d.messages += s.messages;
  }
  dst.overlap_credit_ += overlap_credit_;
  compute_time_.clear();
  comm_stats_.clear();
  overlap_credit_ = 0.0;
}

void Cluster::install_faults(const FaultPlan* plan, RecoveryPolicy policy) {
  check(policy.max_attempts >= 1,
        "install_faults: max_attempts must be >= 1");
  check(policy.base_backoff >= 0.0 && policy.max_backoff >= 0.0,
        "install_faults: backoff seconds must be non-negative");
  check(policy.backoff_factor >= 1.0,
        "install_faults: backoff_factor must be >= 1");
  if (plan != nullptr) {
    for (const CrashEvent& e : plan->config().crashes) {
      check(e.rank < grid_.size(),
            "install_faults: crash rank out of range for this grid");
    }
  }
  faults_ = plan;
  recovery_ = policy;
  dead_.assign(static_cast<std::size_t>(grid_.size()), 0);
  superstep_ = 0;
  comm_event_ = 0;
  straggler_factor_ = 1.0;
  fault_stats_ = FaultStats{};
}

void Cluster::clear_faults() {
  faults_ = nullptr;
  dead_.clear();
  straggler_factor_ = 1.0;
}

index_t Cluster::begin_superstep() {
  const index_t idx = superstep_++;
  if (faults_ == nullptr) return idx;
  for (const int r : faults_->crashes_at(idx)) {
    if (dead_[static_cast<std::size_t>(r)] == 0) {
      dead_[static_cast<std::size_t>(r)] = 1;
      ++fault_stats_.crashed_ranks;
    }
  }
  // The round is gated by its slowest member, so one multiplier (the max
  // over alive ranks' draws) covers every compute contribution until the
  // next boundary.
  double f = 1.0;
  if (faults_->has_stragglers()) {
    for (int r = 0; r < grid_.size(); ++r) {
      if (alive(r)) f = std::max(f, faults_->slowdown(idx, r));
    }
  }
  straggler_factor_ = f;
  return idx;
}

int Cluster::num_alive() const {
  if (dead_.empty()) return grid_.size();
  int n = 0;
  for (int r = 0; r < grid_.size(); ++r) n += alive(r) ? 1 : 0;
  return n;
}

std::vector<int> Cluster::alive_ranks() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(grid_.size()));
  for (int r = 0; r < grid_.size(); ++r) {
    if (alive(r)) out.push_back(r);
  }
  return out;
}

void Cluster::add_fault_redistribution(double seconds, std::size_t bytes) {
  check(seconds >= 0.0, "add_fault_redistribution: negative seconds");
  fault_stats_.redistribution_seconds += seconds;
  fault_stats_.redistribution_bytes += bytes;
}

bool Cluster::row_alive(int row) const {
  if (dead_.empty()) return true;
  for (int j = 0; j < grid_.replication(); ++j) {
    if (alive(grid_.rank_of(row, j))) return true;
  }
  return false;
}

}  // namespace dms
