#include "comm/cluster.hpp"

#include <algorithm>

namespace dms {

void Cluster::superstep(const std::string& phase, const std::function<void(int)>& body) {
  double max_t = 0.0;
  for (int r = 0; r < grid_.size(); ++r) {
    Timer t;
    body(r);
    max_t = std::max(max_t, t.seconds());
  }
  add_compute(phase, max_t);
}

void Cluster::superstep_recorded(const std::function<void(int, PhaseRecorder&)>& body) {
  std::map<std::string, double> max_per_phase;
  for (int r = 0; r < grid_.size(); ++r) {
    PhaseRecorder rec;
    body(r, rec);
    for (const auto& [phase, sec] : rec.times()) {
      max_per_phase[phase] = std::max(max_per_phase[phase], sec);
    }
  }
  for (const auto& [phase, sec] : max_per_phase) add_compute(phase, sec);
}

void Cluster::add_compute(const std::string& phase, double seconds) {
  compute_time_[phase] += seconds / model_.link().compute_scale;
}

void Cluster::add_compute_irregular(const std::string& phase, double seconds) {
  compute_time_[phase] += seconds / model_.link().irregular_compute_scale;
}

void Cluster::record_comm(const std::string& phase, double seconds, std::size_t bytes,
                          std::size_t messages) {
  CommStats& s = comm_stats_[phase];
  s.seconds += seconds;
  s.bytes += bytes;
  s.messages += messages;
}

void Cluster::add_overhead(const std::string& phase, double seconds) {
  compute_time_[phase] += seconds;  // overheads are device-side, not scaled
}

void Cluster::credit_overlap(double seconds) {
  check(seconds >= 0.0, "credit_overlap: negative overlap credit");
  overlap_credit_ += seconds;
}

double Cluster::total_compute() const {
  double t = 0.0;
  for (const auto& [_, sec] : compute_time_) t += sec;
  return t;
}

double Cluster::total_comm() const {
  double t = 0.0;
  for (const auto& [_, s] : comm_stats_) t += s.seconds;
  return t;
}

double Cluster::phase_time(const std::string& phase) const {
  double t = 0.0;
  if (const auto it = compute_time_.find(phase); it != compute_time_.end()) {
    t += it->second;
  }
  if (const auto it = comm_stats_.find(phase); it != comm_stats_.end()) {
    t += it->second.seconds;
  }
  return t;
}

void Cluster::reset_clock() {
  compute_time_.clear();
  comm_stats_.clear();
  overlap_credit_ = 0.0;
}

}  // namespace dms
