// Deterministic fault injection for the simulated cluster (DESIGN.md §13).
//
// Production clusters straggle, drop messages, and lose ranks; the simulated
// Cluster makes those failures *replayable*: a FaultPlan is a pure function
// from a seed and deterministic event coordinates — the superstep counter
// for stragglers and crashes, a per-cluster communication-event counter for
// transient loss — to fault outcomes. Nothing is drawn from host timing or
// mutable RNG state, so the same plan against the same workload injects the
// same faults on every run, and tests can assert exact recovery behavior.
//
// Three fault classes, mirroring the real failure taxonomy:
//  - stragglers: a (superstep, rank) draw slows the rank's compute by a
//    constant factor; the BSP round is gated by its slowest member, so the
//    superstep-level multiplier is the max over alive ranks' draws;
//  - transient message loss: a communication event's attempt fails with
//    probability loss_rate; the Cluster retries under a bounded
//    exponential-backoff RecoveryPolicy, paying the retransmit plus the
//    backoff on the simulated clock (the final allowed attempt always
//    delivers, so delivery stays deterministic);
//  - permanent crashes: scheduled (rank, superstep) events; a crashed rank
//    never comes back, and the dist/train layers re-partition its work onto
//    the survivors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dms {

/// A permanent rank failure: `rank` dies at the start of superstep
/// `superstep` (before that superstep's work is assigned).
struct CrashEvent {
  int rank = 0;
  index_t superstep = 0;
};

struct FaultPlanConfig {
  std::uint64_t seed = 0;
  /// Probability that a given (superstep, rank) pair straggles.
  double straggler_rate = 0.0;
  /// Compute-slowdown multiplier applied to a straggling rank (>= 1).
  double straggler_factor = 2.0;
  /// Probability that one attempt of a communication event is lost.
  double loss_rate = 0.0;
  /// Scheduled permanent crashes, replayed on the superstep clock.
  std::vector<CrashEvent> crashes;
};

/// Bounded exponential-backoff retry for transient faults. Attempt k (0-based)
/// that fails costs the retransmit plus backoff(k) of simulated wait; after
/// max_attempts the event is forced through (the transport's reliable-delivery
/// floor), so a FaultPlan can delay communication but never wedge it.
struct RecoveryPolicy {
  int max_attempts = 4;
  double base_backoff = 1e-4;
  double backoff_factor = 2.0;
  double max_backoff = 1e-2;

  /// Simulated seconds of backoff after failed attempt k (0-based), bounded
  /// by max_backoff.
  double backoff(int attempt) const;
};

/// Cumulative fault/recovery accounting on a Cluster (monotonic; callers
/// diff before/after snapshots for per-epoch deltas, like FeatureCacheStats).
struct FaultStats {
  double straggler_seconds = 0.0;      ///< extra compute time from slowdowns
  double retry_seconds = 0.0;          ///< retransmits + backoff waits
  double redistribution_seconds = 0.0; ///< survivor-fetch time after crashes
  std::size_t retry_bytes = 0;
  std::size_t retry_messages = 0;
  std::size_t lost_messages = 0;       ///< attempts the plan dropped
  std::size_t redistribution_bytes = 0;
  std::size_t crashed_ranks = 0;
};

/// Difference of two cumulative snapshots (after - before), for per-epoch
/// attribution in EpochStats.
FaultStats operator-(const FaultStats& after, const FaultStats& before);

class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig cfg);

  const FaultPlanConfig& config() const { return cfg_; }

  /// Compute-slowdown multiplier (>= 1) for `rank` during `superstep`.
  double slowdown(index_t superstep, int rank) const;

  /// Whether attempt `attempt` (0-based) of communication event `event` is
  /// lost. Independent draws per attempt, so retries can fail repeatedly.
  bool lost(std::uint64_t event, int attempt) const;

  /// Ranks scheduled to crash at exactly `superstep`.
  std::vector<int> crashes_at(index_t superstep) const;

  bool has_stragglers() const { return cfg_.straggler_rate > 0.0; }
  bool has_loss() const { return cfg_.loss_rate > 0.0; }

 private:
  FaultPlanConfig cfg_;
};

}  // namespace dms
