#include "comm/grid.hpp"

#include <numeric>

namespace dms {

ProcessGrid::ProcessGrid(int p, int c) : p_(p), c_(c) {
  check(p >= 1 && c >= 1, "ProcessGrid: p and c must be positive");
  check(p % c == 0, "ProcessGrid: replication factor c must divide p");
}

std::vector<int> ProcessGrid::row_ranks(int i) const {
  check(i >= 0 && i < rows(), "ProcessGrid::row_ranks: row out of range");
  std::vector<int> out(static_cast<std::size_t>(c_));
  for (int j = 0; j < c_; ++j) out[static_cast<std::size_t>(j)] = rank_of(i, j);
  return out;
}

std::vector<int> ProcessGrid::col_ranks(int j) const {
  check(j >= 0 && j < c_, "ProcessGrid::col_ranks: column out of range");
  std::vector<int> out(static_cast<std::size_t>(rows()));
  for (int i = 0; i < rows(); ++i) out[static_cast<std::size_t>(i)] = rank_of(i, j);
  return out;
}

std::vector<int> ProcessGrid::all_ranks() const {
  std::vector<int> out(static_cast<std::size_t>(p_));
  std::iota(out.begin(), out.end(), 0);
  return out;
}

}  // namespace dms
