// 1.5D process grid (§5.2, §6): p ranks arranged as (p/c) rows × c columns.
//
// Block row i of a distributed matrix is replicated on the c ranks of
// process row P(i, :). Each process column P(:, j) therefore holds the
// entire matrix, which is what makes the feature all-to-allv column-local.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace dms {

class ProcessGrid {
 public:
  ProcessGrid() = default;

  /// p total ranks, replication factor c. Requires c divides p.
  ProcessGrid(int p, int c);

  int size() const { return p_; }
  int replication() const { return c_; }
  int rows() const { return p_ / c_; }  ///< p/c block rows

  /// Rank at grid position (row i, column j). Column-major layout: the
  /// p/c ranks of a process column are contiguous, so the bulky
  /// column-local traffic (feature all-to-allv of §6.2, A-row sends of
  /// Algorithm 2) stays on intra-node links as much as possible; the
  /// lighter row collectives (partial-sum all-reduce) span nodes.
  int rank_of(int i, int j) const { return j * rows() + i; }
  int row_of(int rank) const { return rank % rows(); }
  int col_of(int rank) const { return rank / rows(); }

  /// Ranks of process row P(i, :) — the c replicas of block row i.
  std::vector<int> row_ranks(int i) const;

  /// Ranks of process column P(:, j) — together hold the whole matrix.
  std::vector<int> col_ranks(int j) const;

  /// All ranks, 0..p-1.
  std::vector<int> all_ranks() const;

 private:
  int p_ = 1;
  int c_ = 1;
};

}  // namespace dms
