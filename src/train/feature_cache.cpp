#include "train/feature_cache.hpp"

#include <algorithm>

namespace dms {

FeatureRowCache::FeatureRowCache(FeatureCacheConfig cfg) : cfg_(cfg) {
  check(cfg_.capacity_rows >= 0, "FeatureRowCache: negative capacity");
}

bool FeatureRowCache::lookup(index_t v) {
  if (!enabled()) return false;
  if (pinned_.count(v) > 0) return true;
  const auto it = pos_.find(v);
  if (it == pos_.end()) return false;
  order_.splice(order_.end(), order_, it->second);  // refresh recency
  return true;
}

void FeatureRowCache::insert(index_t v) {
  if (!enabled() || cfg_.policy != CachePolicy::kLru) return;
  if (pos_.count(v) > 0 || pinned_.count(v) > 0) return;
  if (size() >= cfg_.capacity_rows) {
    if (order_.empty()) return;  // fully pinned: nothing evictable
    pos_.erase(order_.front());
    order_.pop_front();
  }
  pos_.emplace(v, order_.insert(order_.end(), v));
}

void FeatureRowCache::pin(const std::vector<index_t>& rows) {
  if (!enabled()) return;
  for (const index_t v : rows) pinned_.insert(v);
  check(static_cast<index_t>(pinned_.size()) <= cfg_.capacity_rows,
        "FeatureRowCache: pinned set exceeds capacity");
}

std::vector<index_t> FeatureRowCache::lru_order() const {
  return {order_.begin(), order_.end()};
}

std::vector<index_t> FeatureRowCache::pinned_rows() const {
  std::vector<index_t> rows(pinned_.begin(), pinned_.end());
  std::sort(rows.begin(), rows.end());
  return rows;
}

}  // namespace dms
