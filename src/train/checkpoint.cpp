#include "train/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace dms {

namespace {

// "DMSK" little-endian, next to kCsrMagic "DMSC" / kDataMagic "DMSD".
constexpr std::uint32_t kCkptMagic = 0x4b534d44u;
constexpr std::uint32_t kCkptVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is, const char* what) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  check(static_cast<bool>(is), std::string("checkpoint: truncated ") + what);
  return v;
}

std::int64_t read_i64(std::istream& is, const char* what) {
  std::int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  check(static_cast<bool>(is), std::string("checkpoint: truncated ") + what);
  return v;
}

double read_f64(std::istream& is, const char* what) {
  double v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  check(static_cast<bool>(is), std::string("checkpoint: truncated ") + what);
  return v;
}

/// The config fingerprint: every knob that shapes the epoch schedule or the
/// training arithmetic, flattened to i64 fields (floats as raw bits so the
/// comparison is exact). Restoring under a different fingerprint would
/// silently change the remainder of the run — reject instead.
std::vector<std::int64_t> fingerprint(const Pipeline& pipe) {
  const PipelineConfig& cfg = pipe.config();
  const ModelConfig& mc = const_cast<Pipeline&>(pipe).model().config();
  std::uint32_t lr_bits = 0;
  std::memcpy(&lr_bits, &cfg.lr, sizeof(lr_bits));
  std::vector<std::int64_t> fp = {
      static_cast<std::int64_t>(cfg.sampler),
      static_cast<std::int64_t>(cfg.mode),
      cfg.batch_size,
      cfg.bulk_k,
      cfg.hidden,
      static_cast<std::int64_t>(lr_bits),
      cfg.use_adam ? 1 : 0,
      static_cast<std::int64_t>(cfg.seed),
      cfg.overlap ? 1 : 0,
      cfg.prefetch_rounds,
      mc.in_dim,
      mc.hidden,
      mc.num_classes,
      mc.num_layers,
      static_cast<std::int64_t>(cfg.fanouts.size()),
  };
  for (const index_t f : cfg.fanouts) fp.push_back(f);
  return fp;
}

void write_tensor(std::ostream& os, const DenseF& t) {
  write_i64(os, t.rows());
  write_i64(os, t.cols());
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
}

/// Reads a tensor written by write_tensor into `t` in place; the shape must
/// match (the fingerprint already pinned the model dimensions, so a mismatch
/// means a corrupt file).
void read_tensor_into(std::istream& is, DenseF& t) {
  const std::int64_t rows = read_i64(is, "tensor rows");
  const std::int64_t cols = read_i64(is, "tensor cols");
  check(rows == t.rows() && cols == t.cols(),
        "checkpoint: tensor shape mismatch (corrupt file?)");
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  check(static_cast<bool>(is), "checkpoint: truncated tensor data");
}

}  // namespace

void save_checkpoint(Pipeline& pipe, const TrainCursor& cursor,
                     const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  check(os.is_open(), "save_checkpoint: cannot open " + path);

  write_u32(os, kCkptMagic);
  write_u32(os, kCkptVersion);

  const std::vector<std::int64_t> fp = fingerprint(pipe);
  write_i64(os, static_cast<std::int64_t>(fp.size()));
  for (const std::int64_t v : fp) write_i64(os, v);

  write_i64(os, cursor.epoch);
  write_i64(os, cursor.next_round);
  write_i64(os, cursor.total_rounds);
  write_f64(os, cursor.loss_sum);
  write_i64(os, cursor.correct);
  write_i64(os, cursor.seen);

  std::vector<SageLayer>& layers = pipe.model().layers();
  write_i64(os, static_cast<std::int64_t>(layers.size()));
  for (SageLayer& layer : layers) {
    write_tensor(os, layer.w_self());
    write_tensor(os, layer.w_neigh());
    write_tensor(os, layer.bias());
  }

  const std::string kind = pipe.optimizer().kind();
  write_i64(os, static_cast<std::int64_t>(kind.size()));
  os.write(kind.data(), static_cast<std::streamsize>(kind.size()));
  pipe.optimizer().save_state(os);

  check(static_cast<bool>(os), "save_checkpoint: write failed for " + path);
}

TrainCursor load_checkpoint(Pipeline& pipe, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  check(is.is_open(), "load_checkpoint: cannot open " + path);

  check(read_u32(is, "magic") == kCkptMagic,
        "load_checkpoint: " + path + " is not a DMSK checkpoint");
  check(read_u32(is, "version") == kCkptVersion,
        "load_checkpoint: unsupported checkpoint version in " + path);

  const std::vector<std::int64_t> expect = fingerprint(pipe);
  const std::int64_t fp_len = read_i64(is, "fingerprint length");
  check(fp_len == static_cast<std::int64_t>(expect.size()),
        "load_checkpoint: config fingerprint mismatch (different pipeline "
        "config)");
  for (const std::int64_t want : expect) {
    check(read_i64(is, "fingerprint field") == want,
          "load_checkpoint: config fingerprint mismatch (different pipeline "
          "config)");
  }

  TrainCursor cursor;
  cursor.epoch = static_cast<int>(read_i64(is, "cursor epoch"));
  cursor.next_round = read_i64(is, "cursor round");
  cursor.total_rounds = read_i64(is, "cursor total rounds");
  cursor.loss_sum = read_f64(is, "cursor loss sum");
  cursor.correct = read_i64(is, "cursor correct");
  cursor.seen = read_i64(is, "cursor seen");
  check(cursor.next_round >= 0 && cursor.total_rounds >= 0 &&
            cursor.next_round <= cursor.total_rounds && cursor.seen >= 0,
        "load_checkpoint: corrupt cursor in " + path);

  std::vector<SageLayer>& layers = pipe.model().layers();
  const std::int64_t num_layers = read_i64(is, "layer count");
  check(num_layers == static_cast<std::int64_t>(layers.size()),
        "load_checkpoint: layer count mismatch");
  for (SageLayer& layer : layers) {
    read_tensor_into(is, layer.w_self());
    read_tensor_into(is, layer.w_neigh());
    read_tensor_into(is, layer.bias());
  }
  pipe.model().zero_grads();

  const std::int64_t kind_len = read_i64(is, "optimizer kind length");
  check(kind_len >= 0 && kind_len <= 64, "load_checkpoint: corrupt optimizer kind");
  std::string kind(static_cast<std::size_t>(kind_len), '\0');
  is.read(kind.data(), kind_len);
  check(static_cast<bool>(is), "checkpoint: truncated optimizer kind");
  check(kind == pipe.optimizer().kind(),
        "load_checkpoint: optimizer kind mismatch (saved '" + kind +
            "', pipeline has '" + pipe.optimizer().kind() + "')");
  pipe.optimizer().load_state(is);

  return cursor;
}

}  // namespace dms
