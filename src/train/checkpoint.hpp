// Training checkpoint/restore (DESIGN.md §13).
//
// A checkpoint is taken at a bulk-round boundary (Pipeline::run_epoch_partial
// stops at one): gradients are zero there, every sampled minibatch has been
// trained, and the epoch's round schedule is a pure function of the config
// and dataset. Sampling randomness is stateless — derived per (epoch, global
// batch id, layer, row) from the config seed — so no RNG state needs saving.
// Model weights + optimizer state + the TrainCursor therefore fully determine
// the remainder of the run, and a restored pipeline produces bit-identical
// losses to the uninterrupted one (tests/test_checkpoint.cpp kills an epoch
// mid-way and verifies exactly that).
//
// Binary format ("DMSK", versioned like graph/io.cpp): a config fingerprint
// (sampler, mode, fanouts, batch/bulk/overlap shape, seed, optimizer,
// learning rate, model dimensions) guards the restore — loading into a
// pipeline whose config would produce a different schedule or different
// arithmetic is rejected, not silently accepted.
#pragma once

#include <string>

#include "train/pipeline.hpp"

namespace dms {

/// Serializes the pipeline's model weights, optimizer state and `cursor` to
/// `path`. Call at a round boundary (e.g. with run_epoch_partial's cursor).
void save_checkpoint(Pipeline& pipe, const TrainCursor& cursor,
                     const std::string& path);

/// Restores model weights and optimizer state into `pipe` and returns the
/// saved cursor. Throws DmsError if the file is missing/corrupt or was
/// written under an incompatible pipeline config.
TrainCursor load_checkpoint(Pipeline& pipe, const std::string& path);

}  // namespace dms
