// Per-rank cache of remote feature rows (§8.1.2 cost reduction, the
// Quiver-style hot-vertex cache generalized to the 1.5D layout).
//
// The cache tracks *which* vertex rows are resident on a rank — the
// simulator always reads row data from the canonical feature matrix, so
// caching changes only the bytes that cross the all-to-allv, never the
// values a training step sees. Two policies:
//
//  - kLru: rows become resident when fetched and are evicted in
//    least-recently-used order once `capacity_rows` is reached;
//  - kDegreePinned: a static set of rows (the caller pins the top-degree
//    vertices, à la Quiver's hotness cache) is resident for the whole run
//    and nothing else is ever admitted;
//  - kPreSample: like kDegreePinned, but the pinned set is the
//    top-`capacity_rows` rows by *measured* touch count from seeded warmup
//    sampling rounds the pipeline runs before epoch 0 (FGNN's pre-sampling
//    admission, DESIGN.md §14) — degree is a proxy for hotness, warmup
//    sampling measures it.
//
// A zero capacity (or kNone) degenerates to the uncached behavior: every
// remote row is a miss and moves over the wire.
#pragma once

#include <cstddef>
#include <list>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace dms {

enum class CachePolicy { kNone, kLru, kDegreePinned, kPreSample };

struct FeatureCacheConfig {
  CachePolicy policy = CachePolicy::kNone;
  /// Maximum resident rows per rank. 0 disables caching for any policy.
  index_t capacity_rows = 0;
};

/// Aggregate accounting across every fetch a store performed. Every
/// requested row is classified exactly once: resident in the requester's
/// own block row (`local`), resident in its cache (`hits`), or shipped
/// over the all-to-allv (`misses`) — so hits + misses + local == requested.
struct FeatureCacheStats {
  std::size_t requested = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t local = 0;
  /// Subset of `hits` served by the pinned (hotness) set — how much of the
  /// win is attributable to the kDegreePinned / kPreSample admission rather
  /// than LRU recency. Always <= hits.
  std::size_t pinned_hits = 0;
  std::size_t bytes_moved = 0;  ///< payload that crossed the wire
  std::size_t bytes_saved = 0;  ///< payload avoided by cache hits

  /// Per-interval delta between two cumulative snapshots. Counters are
  /// monotone, so the minuend must be the later snapshot — subtracting the
  /// other way used to wrap the unsigned fields into garbage ~2^64 deltas;
  /// now each field is checked before it is subtracted.
  FeatureCacheStats operator-(const FeatureCacheStats& o) const {
    auto sub = [](std::size_t a, std::size_t b, const char* field) {
      check(a >= b, std::string("FeatureCacheStats::operator-: ") + field +
                        " would underflow (the minuend must be the later "
                        "snapshot of the two)");
      return a - b;
    };
    return {sub(requested, o.requested, "requested"),
            sub(hits, o.hits, "hits"),
            sub(misses, o.misses, "misses"),
            sub(local, o.local, "local"),
            sub(pinned_hits, o.pinned_hits, "pinned_hits"),
            sub(bytes_moved, o.bytes_moved, "bytes_moved"),
            sub(bytes_saved, o.bytes_saved, "bytes_saved")};
  }
};

/// Hit percentage over the classified remote rows (hits + misses; local
/// rows are free either way). 0 when nothing remote was requested.
inline double cache_hit_pct(std::size_t hits, std::size_t misses) {
  const std::size_t classified = hits + misses;
  return classified == 0
             ? 0.0
             : 100.0 * static_cast<double>(hits) / static_cast<double>(classified);
}

/// One rank's residency set. Lookup/insert are O(1); the LRU order is an
/// intrusive list so eviction is O(1) too.
class FeatureRowCache {
 public:
  FeatureRowCache() = default;
  explicit FeatureRowCache(FeatureCacheConfig cfg);

  bool enabled() const {
    return cfg_.policy != CachePolicy::kNone && cfg_.capacity_rows > 0;
  }
  index_t capacity() const { return enabled() ? cfg_.capacity_rows : 0; }
  index_t size() const { return static_cast<index_t>(pos_.size() + pinned_.size()); }

  /// True if `v` is resident. LRU: a hit refreshes v's recency.
  bool lookup(index_t v);

  /// True if `v` is in the pinned set (kDegreePinned / kPreSample hotness
  /// accounting; does not touch recency).
  bool pinned(index_t v) const { return pinned_.count(v) > 0; }

  /// Admits `v` after a miss. LRU: evicts the least-recently-used row when
  /// at capacity. Pinned caches are static — insert is a no-op.
  void insert(index_t v);

  /// Pins `rows` as permanently resident (kDegreePinned / kPreSample).
  /// Throws if the pinned set exceeds capacity.
  void pin(const std::vector<index_t>& rows);

  /// Resident non-pinned rows, least-recently-used first.
  std::vector<index_t> lru_order() const;

  /// The pinned set, sorted ascending (tests / the warmup-stability checks).
  std::vector<index_t> pinned_rows() const;

 private:
  FeatureCacheConfig cfg_;
  std::list<index_t> order_;  ///< LRU list, least-recent at front
  std::unordered_map<index_t, std::list<index_t>::iterator> pos_;
  std::unordered_set<index_t> pinned_;
};

}  // namespace dms
