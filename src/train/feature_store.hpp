// 1.5D-partitioned feature matrix H with all-to-allv fetching (§6.2) and an
// optional per-rank row cache.
//
// H is split into p/c block rows; block i is replicated on process row
// P(i,:). Each process column P(:,j) holds the entire H, so a rank only
// exchanges feature rows within its own column — which is why fetch time
// scales with the replication factor c (§8.1.2). With a cache configured
// (FeatureCacheConfig), each rank additionally keeps recently fetched (or
// degree-pinned) remote rows resident, and fetch_all ships only the rows
// that are neither local nor cached; hit/miss/byte accounting is exposed
// through cache_stats().
#pragma once

#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "graph/partition.hpp"
#include "sparse/dense.hpp"
#include "train/feature_cache.hpp"

namespace dms {

struct FeatureStoreOptions {
  FeatureCacheConfig cache;
  /// Copy the feature matrix into the store instead of borrowing it. Use
  /// this whenever the source does not outlive the store (see the lifetime
  /// contract on the constructor).
  bool own_copy = false;
  /// Maps the store's local rank ids onto the ids of a larger cluster for
  /// CostModel purposes only (intra-/inter-node link classification). Empty
  /// means identity. The disaggregated pipeline partitions H over the
  /// *trainer* sub-grid but the trainers occupy global ranks [s, p) of the
  /// full cluster; global_ranks[local] = s + local keeps the modeled
  /// all-to-allv on the links those ranks actually use.
  std::vector<int> global_ranks;
};

class FeatureStore {
 public:
  /// Partitions `features` (n × f) over grid.rows() block rows.
  ///
  /// Lifetime contract: unless `opts.own_copy` is set, the store only
  /// *borrows* `features` — the caller must keep the source alive (and
  /// unmodified in shape) for the store's whole lifetime. In particular,
  /// never pass a temporary with `own_copy == false`. Debug builds guard
  /// the common violations (source destroyed, moved-from, or reshaped) by
  /// checking the source's shape on every fetch.
  FeatureStore(const ProcessGrid& grid, const DenseF& features,
               FeatureStoreOptions opts = {});

  // Non-copyable/non-movable: with own_copy the borrowed pointer targets
  // the store's own matrix, which a defaulted copy/move would leave
  // pointing into the source object.
  FeatureStore(const FeatureStore&) = delete;
  FeatureStore& operator=(const FeatureStore&) = delete;

  index_t num_rows() const { return part_.total(); }
  index_t dim() const { return dim_; }
  const BlockPartition& partition() const { return part_; }
  bool owns_features() const { return opts_.own_copy; }

  /// Bytes a rank in process row i stores.
  std::size_t block_bytes(index_t i) const;

  /// Per-rank bytes of cache capacity (resident rows × row bytes).
  std::size_t cache_bytes() const;

  /// Collective fetch: wanted[r] lists the global vertex ids rank r needs
  /// this training step. Performs the per-column all-to-allv (modeled cost,
  /// real data movement) for the rows that are neither block-local nor
  /// cache-resident on the requester, and returns one gathered
  /// (|wanted[r]| × f) matrix per rank. Records comm + gather compute under
  /// `phase`; classifies every requested row into cache_stats().
  ///
  /// `wanted` is indexed by the *store's* grid (one list per rank of the
  /// grid passed at construction) — under disaggregation that is the trainer
  /// sub-grid, not `cluster.grid()`. Costs are recorded on `cluster` with
  /// ranks translated through FeatureStoreOptions::global_ranks.
  std::vector<DenseF> fetch_all(Cluster& cluster,
                                const std::vector<std::vector<index_t>>& wanted,
                                const std::string& phase = "fetch");

  /// Serving-path gather (DESIGN.md §10): copies the requested rows into
  /// `out` (reshaped to |wanted| × f, reusing its capacity — allocation-free
  /// once grown to the steady-state high-water mark) as rank `rank`, with no
  /// cluster and no collective: remote rows are classified through rank's
  /// cache exactly as fetch_all would (hit / miss / local into
  /// cache_stats(), misses become resident), but only modeled — serving
  /// reads the canonical feature matrix directly. Returns the bytes a real
  /// deployment would have pulled over the wire for this gather (the
  /// miss payload).
  std::size_t gather_rows(int rank, const std::vector<index_t>& wanted,
                          DenseF* out);

  /// Pins `rows` resident in every rank's cache (kDegreePinned policy; the
  /// pipeline pins the top-degree vertices).
  void pin_rows(const std::vector<index_t>& rows);

  /// Cumulative accounting across every fetch_all since construction.
  const FeatureCacheStats& cache_stats() const { return stats_; }

  /// Direct access to rank r's cache (tests).
  const FeatureRowCache& cache(int rank) const {
    return caches_[static_cast<std::size_t>(rank)];
  }

  /// The grid H is partitioned over (the trainer sub-grid under
  /// disaggregation; the full cluster grid otherwise).
  const ProcessGrid& grid() const { return grid_; }

 private:
  const DenseF& source() const;

  ProcessGrid grid_;
  BlockPartition part_;
  index_t dim_ = 0;
  FeatureStoreOptions opts_;
  DenseF owned_;            ///< populated only when opts_.own_copy
  const DenseF* features_;  ///< borrowed unless opts_.own_copy; see contract
  index_t src_rows_ = 0;    ///< shape at construction (debug lifetime guard)
  std::vector<FeatureRowCache> caches_;  ///< one per rank
  FeatureCacheStats stats_;
};

}  // namespace dms
