// 1.5D-partitioned feature matrix H with all-to-allv fetching (§6.2).
//
// H is split into p/c block rows; block i is replicated on process row
// P(i,:). Each process column P(:,j) holds the entire H, so a rank only
// exchanges feature rows within its own column — which is why fetch time
// scales with the replication factor c (§8.1.2).
#pragma once

#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "graph/partition.hpp"
#include "sparse/dense.hpp"

namespace dms {

class FeatureStore {
 public:
  /// Partitions `features` (n × f) over grid.rows() block rows.
  FeatureStore(const ProcessGrid& grid, const DenseF& features);

  index_t num_rows() const { return part_.total(); }
  index_t dim() const { return dim_; }
  const BlockPartition& partition() const { return part_; }

  /// Bytes a rank in process row i stores.
  std::size_t block_bytes(index_t i) const;

  /// Collective fetch: wanted[r] lists the global vertex ids rank r needs
  /// this training step. Performs the per-column all-to-allv (modeled cost,
  /// real data movement) and returns one gathered (|wanted[r]| × f) matrix
  /// per rank. Records comm + gather compute under `phase`.
  std::vector<DenseF> fetch_all(Cluster& cluster,
                                const std::vector<std::vector<index_t>>& wanted,
                                const std::string& phase = "fetch") const;

 private:
  BlockPartition part_;
  index_t dim_ = 0;
  const DenseF* features_;  ///< borrowed; simulator reads rows directly
};

}  // namespace dms
