// End-to-end distributed training pipeline (Figure 3, §6):
//   (1) bulk-sample k minibatches (Graph Replicated §5.1 or Graph
//       Partitioned §5.2),
//   (2) per training step, all-to-allv feature fetching across process
//       columns of the 1.5D feature store,
//   (3) forward/backward propagation + data-parallel gradient all-reduce,
// repeated until every minibatch of the epoch is trained.
//
// Epochs execute through the staged executor (train/staged_pipeline.hpp):
// bulk rounds, feature fetches and propagation are discrete stages, and
// with PipelineConfig::overlap the simulated clock composes concurrent
// stages as max(compute, comm) instead of a sum — fetch t+1 hides under
// propagation t, sampling round g+1 under the training of round g. The
// synchronous path (overlap = false) runs the same arithmetic, so both
// paths produce bit-identical losses.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "core/sampler.hpp"
#include "dist/sampler_factory.hpp"
#include "graph/dataset.hpp"
#include "nn/model.hpp"
#include "train/feature_store.hpp"

namespace dms {

struct PipelineConfig {
  SamplerKind sampler = SamplerKind::kGraphSage;
  DistMode mode = DistMode::kReplicated;
  index_t batch_size = 64;
  /// Per-layer sample counts in sampling order (layer L first). Table 4:
  /// SAGE fanout (15,10,5); LADIES s=512 with one layer.
  std::vector<index_t> fanouts = {10, 5, 5};
  /// Total minibatches sampled per bulk round across all ranks
  /// (the paper's k). 0 = all minibatches of the epoch at once ("k=all").
  index_t bulk_k = 0;
  index_t hidden = 32;
  float lr = 1e-2f;
  bool use_adam = true;
  std::uint64_t seed = 7;
  PartitionedSamplerOptions part_opts;
  /// Staged overlapped executor (DESIGN.md §6): credit prefetched stages —
  /// the feature fetch of step t+1 under the propagation of step t, bulk
  /// sampling round g+1 under the training of round g — on the simulated
  /// clock. false = the original strictly sequential accounting. The
  /// arithmetic is identical either way (losses are bit-identical).
  bool overlap = true;
  /// Overlap mode with bulk_k == 0 ("k=all"): the staged executor still
  /// splits the epoch into this many sampling rounds so rounds 2..G can be
  /// prefetched behind training — a monolithic upfront bulk has nothing to
  /// overlap with. 1 = keep the single bulk. Ignored when bulk_k > 0
  /// (bulk_k sets the round size) or when overlap is off. Round slicing
  /// never changes the samples (the determinism contract), only the clock.
  index_t prefetch_rounds = 4;
  /// Per-rank feature-row cache (policy + capacity in rows). kDegreePinned
  /// pins the capacity_rows highest-out-degree vertices; kPreSample pins
  /// the capacity_rows vertices touched most often by a seeded warmup
  /// sampling pass run once at pipeline construction (DESIGN.md §14).
  FeatureCacheConfig feature_cache;
  /// Warmup bulk rounds for CachePolicy::kPreSample: the warmup pass
  /// samples presample_rounds × p minibatches (drawn from as many fresh
  /// batch permutations as that takes, under a dedicated seed lineage —
  /// never the training epochs') to measure row hotness. The one-time cost is billed to the first trained epoch as
  /// the "warmup" phase.
  index_t presample_rounds = 2;
  /// Sampler/trainer split (mode == kDisaggregated only; defaults
  /// auto-split — see DisaggOptions).
  DisaggOptions disagg;
};

struct EpochStats {
  double sampling = 0.0;      ///< simulated seconds in the sampling step
  double fetch = 0.0;         ///< feature-fetch all-to-allv
  double propagation = 0.0;   ///< fwd/bwd + gradient all-reduce
  double total = 0.0;         ///< wall clock: all phases minus overlap_saved
  double loss = 0.0;
  double train_acc = 0.0;
  /// Simulated seconds of prefetchable work (sampling rounds + feature
  /// fetches) hidden behind concurrent stages by the overlapped executor.
  double overlap_saved = 0.0;
  /// Prefetchable seconds left exposed on the critical path (pipeline fill
  /// plus stalls where the covering stage was too short). For an overlapped
  /// epoch, overlap_saved + stall == sampling + fetch exactly.
  double stall = 0.0;
  /// One-time kPreSample warmup cost, billed to the first trained epoch
  /// (zero afterwards and for every other policy). Part of `total` but not
  /// of `sampling`, so the overlap invariant above is unaffected.
  double warmup = 0.0;
  /// Feature-fetch row classification for the epoch (see FeatureCacheStats):
  /// every requested row is exactly one of hit / miss / local.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_local = 0;
  /// Hits served by the pinned set (<= cache_hits; the whole hit count for
  /// the pinned-only kDegreePinned / kPreSample policies).
  std::size_t cache_pinned_hits = 0;
  std::size_t fetch_bytes = 0;        ///< feature payload that crossed the wire
  std::size_t fetch_bytes_saved = 0;  ///< payload avoided by cache hits
  std::map<std::string, double> compute_phases;  ///< full breakdown
  std::map<std::string, double> comm_phases;
  /// Host wall-clock seconds per sampling-plan op this epoch, keyed
  /// "<plan>/<op label>" (DESIGN.md §9): the per-op stage boundaries inside
  /// the coarse `sampling` phase. Observability only — not part of the
  /// simulated-clock composition the consistency invariants cover.
  std::map<std::string, double> sampler_ops;
  /// Fault/recovery attribution for the epoch (DESIGN.md §13), diffed from
  /// the cluster's cumulative FaultStats. The seconds below are already
  /// *inside* the phase tables above (the clock sees real retry/slowdown
  /// costs); these fields break out how much of each phase was fault-induced.
  /// All zero on a healthy cluster.
  double fault_straggler = 0.0;       ///< extra compute from injected slowdowns
  double fault_retry = 0.0;           ///< retransmit + backoff time of lost messages
  double fault_redistribution = 0.0;  ///< survivor re-fetch time after crashes
  std::size_t retry_bytes = 0;        ///< payload retransmitted after loss
  std::size_t retry_messages = 0;
  std::size_t crashed_ranks = 0;      ///< ranks that died during this epoch
};

/// Epoch/round cursor for checkpoint/restore (DESIGN.md §13). Checkpoints
/// are taken at bulk-round boundaries: gradients are zero there, every
/// sampled batch has been trained, and the round schedule is a pure function
/// of the config and dataset — so model weights + optimizer state + this
/// cursor fully determine the remainder of the epoch. Sampling randomness is
/// stateless (derived per (epoch, batch id, layer, row) from the config
/// seed), which is why no RNG state appears here.
struct TrainCursor {
  int epoch = 0;
  index_t next_round = 0;    ///< first untrained bulk round of `epoch`
  index_t total_rounds = 0;  ///< bulk rounds in the epoch's schedule
  double loss_sum = 0.0;     ///< per-sample loss accumulated so far
  index_t correct = 0;       ///< correct predictions so far
  index_t seen = 0;          ///< training samples consumed so far
  bool finished() const { return next_round >= total_rounds; }
};

class Pipeline {
 public:
  /// The cluster, dataset outlive the pipeline. The model dimension chain is
  /// ds.feature_dim → hidden^(L-1) → ds.num_classes with L = fanouts.size().
  Pipeline(Cluster& cluster, const Dataset& dataset, PipelineConfig config);

  /// Trains one full epoch (all minibatches); returns the simulated-time
  /// breakdown plus training loss/accuracy. Resets the cluster clock first.
  EpochStats run_epoch(int epoch);

  /// Trains `epoch` up to (not including) bulk round `stop_round`, then
  /// stops at the round boundary and returns the cursor to checkpoint
  /// (train/checkpoint.hpp serializes it with the model and optimizer).
  /// stop_round past the schedule trains the whole epoch.
  TrainCursor run_epoch_partial(int epoch, index_t stop_round);

  /// Resumes an epoch at cursor.next_round (after load_checkpoint restored
  /// the model/optimizer) and trains it to completion. The returned stats'
  /// loss/accuracy cover the *whole* epoch — bit-identical to an
  /// uninterrupted run_epoch — while the time breakdown covers only the
  /// resumed segment.
  EpochStats run_epoch_resumed(const TrainCursor& cursor);

  /// Single-node accuracy evaluation with the given evaluation fanouts
  /// (paper §8.1.3 uses test fanout (20,20,20)).
  double evaluate(const std::vector<index_t>& idx,
                  const std::vector<index_t>& eval_fanouts,
                  index_t eval_batch_size = 512);

  SageModel& model() { return model_; }
  const FeatureStore& features() const { return features_; }
  const PipelineConfig& config() const { return cfg_; }
  /// The training optimizer (checkpoint serialization of its state).
  Optimizer& optimizer() { return *optimizer_; }

  /// Approximate per-rank device memory (adjacency + feature block + cache
  /// + model), for reproducing the paper's memory-capped (c, k) choices.
  std::size_t per_rank_bytes(int rank) const;

 private:
  friend class StagedPipeline;  ///< the epoch executor drives the components

  /// kPreSample warmup (construction time): runs presample_rounds seeded
  /// bulk rounds through the sampler, counts per-row touches, and pins the
  /// capacity_rows hottest rows. Stores the one-time cost for the first
  /// epoch to bill as the "warmup" phase.
  void presample_warmup();

  Cluster& cluster_;
  const Dataset& ds_;
  PipelineConfig cfg_;
  /// Role layout when mode == kDisaggregated (value-initialized otherwise).
  /// Declared before features_: the store partitions H over the trainer
  /// sub-grid in that mode.
  DisaggLayout disagg_;
  FeatureStore features_;
  /// Constructed through make_sampler (the factory is the only construction
  /// path for samplers in the pipeline).
  std::unique_ptr<MatrixSampler> sampler_;
  /// Non-owning distributed view of sampler_ when mode != kReplicated (the
  /// disaggregated sampler *is* the algorithm's partitioned form over the
  /// sampler sub-grid).
  PartitionedSamplerBase* partitioned_ = nullptr;
  /// Sampler-role sub-cluster (mode == kDisaggregated): sampling phases
  /// accumulate here and drain into cluster_ every bulk round, so one clock
  /// covers both roles. Same CostModel; the sampler sub-grid's local ranks
  /// coincide with global ranks [0, s), so link classification is exact.
  std::unique_ptr<Cluster> disagg_cluster_;
  SageModel model_;
  std::unique_ptr<Optimizer> optimizer_;
  double warmup_cost_ = 0.0;     ///< measured by presample_warmup()
  bool pending_warmup_ = false;  ///< first run_range consumes + bills it
};

}  // namespace dms
