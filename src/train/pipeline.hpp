// End-to-end distributed training pipeline (Figure 3, §6):
//   (1) bulk-sample k minibatches (Graph Replicated §5.1 or Graph
//       Partitioned §5.2),
//   (2) per training step, all-to-allv feature fetching across process
//       columns of the 1.5D feature store,
//   (3) forward/backward propagation + data-parallel gradient all-reduce,
// repeated bulk-synchronously until every minibatch of the epoch is trained.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "core/sampler.hpp"
#include "dist/sampler_factory.hpp"
#include "graph/dataset.hpp"
#include "nn/model.hpp"
#include "train/feature_store.hpp"

namespace dms {

struct PipelineConfig {
  SamplerKind sampler = SamplerKind::kGraphSage;
  DistMode mode = DistMode::kReplicated;
  index_t batch_size = 64;
  /// Per-layer sample counts in sampling order (layer L first). Table 4:
  /// SAGE fanout (15,10,5); LADIES s=512 with one layer.
  std::vector<index_t> fanouts = {10, 5, 5};
  /// Total minibatches sampled per bulk round across all ranks
  /// (the paper's k). 0 = all minibatches of the epoch at once ("k=all").
  index_t bulk_k = 0;
  index_t hidden = 32;
  float lr = 1e-2f;
  bool use_adam = true;
  std::uint64_t seed = 7;
  PartitionedSamplerOptions part_opts;
};

struct EpochStats {
  double sampling = 0.0;      ///< simulated seconds in the sampling step
  double fetch = 0.0;         ///< feature-fetch all-to-allv
  double propagation = 0.0;   ///< fwd/bwd + gradient all-reduce
  double total = 0.0;
  double loss = 0.0;
  double train_acc = 0.0;
  std::map<std::string, double> compute_phases;  ///< full breakdown
  std::map<std::string, double> comm_phases;
};

class Pipeline {
 public:
  /// The cluster, dataset outlive the pipeline. The model dimension chain is
  /// ds.feature_dim → hidden^(L-1) → ds.num_classes with L = fanouts.size().
  Pipeline(Cluster& cluster, const Dataset& dataset, PipelineConfig config);

  /// Trains one full epoch (all minibatches); returns the simulated-time
  /// breakdown plus training loss/accuracy. Resets the cluster clock first.
  EpochStats run_epoch(int epoch);

  /// Single-node accuracy evaluation with the given evaluation fanouts
  /// (paper §8.1.3 uses test fanout (20,20,20)).
  double evaluate(const std::vector<index_t>& idx,
                  const std::vector<index_t>& eval_fanouts,
                  index_t eval_batch_size = 512);

  SageModel& model() { return model_; }
  const FeatureStore& features() const { return features_; }

  /// Approximate per-rank device memory (adjacency + feature block + model),
  /// for reproducing the paper's memory-capped (c, k) choices.
  std::size_t per_rank_bytes(int rank) const;

 private:
  /// Samples every minibatch of the epoch in bulk rounds, returning each
  /// rank's training queue.
  std::vector<std::vector<MinibatchSample>> sample_epoch(
      const std::vector<std::vector<index_t>>& batches, std::uint64_t epoch_seed);

  Cluster& cluster_;
  const Dataset& ds_;
  PipelineConfig cfg_;
  FeatureStore features_;
  /// Constructed through make_sampler (the factory is the only construction
  /// path for samplers in the pipeline).
  std::unique_ptr<MatrixSampler> sampler_;
  /// Non-owning distributed view of sampler_ when mode == kPartitioned.
  PartitionedSamplerBase* partitioned_ = nullptr;
  SageModel model_;
  std::unique_ptr<Optimizer> optimizer_;
};

}  // namespace dms
