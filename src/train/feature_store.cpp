#include "train/feature_store.hpp"

#include <algorithm>
#include <utility>

#include "common/timer.hpp"

namespace dms {

FeatureStore::FeatureStore(const ProcessGrid& grid, const DenseF& features,
                           FeatureStoreOptions opts)
    : grid_(grid),
      part_(features.rows(), grid.rows()),
      dim_(features.cols()),
      opts_(std::move(opts)),
      src_rows_(features.rows()),
      caches_(static_cast<std::size_t>(grid.size()),
              FeatureRowCache(opts_.cache)) {
  check(opts_.global_ranks.empty() ||
            static_cast<int>(opts_.global_ranks.size()) == grid_.size(),
        "FeatureStore: global_ranks must map every rank of the store's grid");
  if (opts_.own_copy) {
    owned_ = features;
    features_ = &owned_;
  } else {
    features_ = &features;
  }
}

const DenseF& FeatureStore::source() const {
#ifndef NDEBUG
  // A dangling borrow usually shows up as a moved-from or destroyed source
  // whose shape no longer matches the one captured at construction.
  check(features_->rows() == src_rows_ && features_->cols() == dim_,
        "FeatureStore: borrowed feature matrix changed shape — the source "
        "must outlive the store (or construct with own_copy)");
#endif
  return *features_;
}

std::size_t FeatureStore::block_bytes(index_t i) const {
  return static_cast<std::size_t>(part_.size(i)) * static_cast<std::size_t>(dim_) *
         sizeof(float);
}

std::size_t FeatureStore::cache_bytes() const {
  return caches_.empty() ? 0
                         : static_cast<std::size_t>(caches_[0].capacity()) *
                               static_cast<std::size_t>(dim_) * sizeof(float);
}

void FeatureStore::pin_rows(const std::vector<index_t>& rows) {
  for (auto& c : caches_) c.pin(rows);
}

std::size_t FeatureStore::gather_rows(int rank, const std::vector<index_t>& wanted,
                                      DenseF* out) {
  check(out != nullptr, "FeatureStore::gather_rows: output buffer required");
  check(rank >= 0 && static_cast<std::size_t>(rank) < caches_.size(),
        "FeatureStore::gather_rows: rank out of range");
  const DenseF& h = source();
  const std::size_t row_bytes = static_cast<std::size_t>(dim_) * sizeof(float);
  FeatureRowCache& cache = caches_[static_cast<std::size_t>(rank)];
  const index_t my_row = part_.parts() == 0 ? 0 : rank % part_.parts();
  out->resize(static_cast<index_t>(wanted.size()), dim_);
  std::size_t miss_bytes = 0;
  stats_.requested += wanted.size();
  for (std::size_t q = 0; q < wanted.size(); ++q) {
    const index_t v = wanted[q];
    check(v >= 0 && v < part_.total(),
          "FeatureStore::gather_rows: vertex " + std::to_string(v) +
              " out of range");
    std::copy(h.row(v), h.row(v) + dim_, out->row(static_cast<index_t>(q)));
    if (part_.owner(v) == my_row) {
      ++stats_.local;
    } else if (cache.lookup(v)) {
      ++stats_.hits;
      if (cache.pinned(v)) ++stats_.pinned_hits;
      stats_.bytes_saved += row_bytes;
    } else {
      ++stats_.misses;
      miss_bytes += row_bytes;
      cache.insert(v);
    }
  }
  stats_.bytes_moved += miss_bytes;
  return miss_bytes;
}

std::vector<DenseF> FeatureStore::fetch_all(
    Cluster& cluster, const std::vector<std::vector<index_t>>& wanted,
    const std::string& phase) {
  const ProcessGrid& grid = grid_;
  check(static_cast<int>(wanted.size()) == grid.size(),
        "FeatureStore::fetch_all: need one request list per rank of the "
        "store's grid");
  const CostModel& model = cluster.cost_model();
  const DenseF& h = source();
  const std::size_t row_bytes = static_cast<std::size_t>(dim_) * sizeof(float);

  std::vector<DenseF> out(wanted.size());
  double max_gather = 0.0;
  double worst_column_comm = 0.0;
  std::size_t total_bytes = 0;
  std::size_t total_msgs = 0;

  // The all-to-allv is column-local: ranks in column j exchange rows among
  // themselves (each column holds all of H).
  for (int j = 0; j < grid.replication(); ++j) {
    const std::vector<int> col = grid.col_ranks(j);
    const auto nranks = col.size();
    std::vector<std::vector<std::size_t>> send_bytes(
        nranks, std::vector<std::size_t>(nranks, 0));

    for (std::size_t ii = 0; ii < nranks; ++ii) {
      const int rank = col[ii];
      const int my_row = grid.row_of(rank);
      FeatureRowCache& cache = caches_[static_cast<std::size_t>(rank)];
      Timer t;
      const auto& req = wanted[static_cast<std::size_t>(rank)];
      stats_.requested += req.size();
      DenseF gathered(static_cast<index_t>(req.size()), dim_);
      for (std::size_t q = 0; q < req.size(); ++q) {
        const index_t v = req[q];
        check(v >= 0 && v < part_.total(),
              "FeatureStore::fetch_all: vertex " + std::to_string(v) +
                  " out of range [0, " + std::to_string(part_.total()) + ")");
        std::copy(h.row(v), h.row(v) + dim_, gathered.row(static_cast<index_t>(q)));
        const index_t owner_row = part_.owner(v);
        if (owner_row == my_row) {
          ++stats_.local;
        } else if (cache.lookup(v)) {
          ++stats_.hits;
          if (cache.pinned(v)) ++stats_.pinned_hits;
          stats_.bytes_saved += row_bytes;
        } else {
          // Row shipped from (owner_row, j) to (my_row, j); now resident.
          ++stats_.misses;
          send_bytes[static_cast<std::size_t>(owner_row)][ii] += row_bytes;
          cache.insert(v);
        }
      }
      out[static_cast<std::size_t>(rank)] = std::move(gathered);
      max_gather = std::max(max_gather, t.seconds());
    }

    // Cost-model ranks: translate the store's local ranks onto the cluster's
    // ids so link classification (intra/inter node) matches where those
    // ranks actually live (identity when global_ranks is empty).
    std::vector<int> cost_col = col;
    if (!opts_.global_ranks.empty()) {
      for (auto& r : cost_col) {
        r = opts_.global_ranks[static_cast<std::size_t>(r)];
      }
    }
    const double t_col = model.alltoallv(cost_col, send_bytes);
    worst_column_comm = std::max(worst_column_comm, t_col);
    for (const auto& rowvec : send_bytes) {
      for (const std::size_t b : rowvec) {
        if (b > 0) {
          total_bytes += b;
          ++total_msgs;
        }
      }
    }
  }

  stats_.bytes_moved += total_bytes;
  cluster.add_compute(phase, max_gather);
  cluster.record_comm(phase, worst_column_comm, total_bytes, total_msgs);
  return out;
}

}  // namespace dms
