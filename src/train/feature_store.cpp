#include "train/feature_store.hpp"

#include <algorithm>

#include "common/timer.hpp"

namespace dms {

FeatureStore::FeatureStore(const ProcessGrid& grid, const DenseF& features)
    : part_(features.rows(), grid.rows()), dim_(features.cols()), features_(&features) {}

std::size_t FeatureStore::block_bytes(index_t i) const {
  return static_cast<std::size_t>(part_.size(i)) * static_cast<std::size_t>(dim_) *
         sizeof(float);
}

std::vector<DenseF> FeatureStore::fetch_all(
    Cluster& cluster, const std::vector<std::vector<index_t>>& wanted,
    const std::string& phase) const {
  const ProcessGrid& grid = cluster.grid();
  check(static_cast<int>(wanted.size()) == grid.size(),
        "FeatureStore::fetch_all: need one request list per rank");
  const CostModel& model = cluster.cost_model();
  const std::size_t row_bytes = static_cast<std::size_t>(dim_) * sizeof(float);

  std::vector<DenseF> out(wanted.size());
  double max_gather = 0.0;
  double worst_column_comm = 0.0;
  std::size_t total_bytes = 0;
  std::size_t total_msgs = 0;

  // The all-to-allv is column-local: ranks in column j exchange rows among
  // themselves (each column holds all of H).
  for (int j = 0; j < grid.replication(); ++j) {
    const std::vector<int> col = grid.col_ranks(j);
    const auto nranks = col.size();
    std::vector<std::vector<std::size_t>> send_bytes(
        nranks, std::vector<std::size_t>(nranks, 0));

    for (std::size_t ii = 0; ii < nranks; ++ii) {
      const int rank = col[ii];
      const int my_row = grid.row_of(rank);
      Timer t;
      const auto& req = wanted[static_cast<std::size_t>(rank)];
      DenseF gathered(static_cast<index_t>(req.size()), dim_);
      for (std::size_t q = 0; q < req.size(); ++q) {
        const index_t v = req[q];
        std::copy(features_->row(v), features_->row(v) + dim_,
                  gathered.row(static_cast<index_t>(q)));
        const index_t owner_row = part_.owner(v);
        if (owner_row != my_row) {
          // Row shipped from (owner_row, j) to (my_row, j).
          send_bytes[static_cast<std::size_t>(owner_row)][ii] += row_bytes;
        }
      }
      out[static_cast<std::size_t>(rank)] = std::move(gathered);
      max_gather = std::max(max_gather, t.seconds());
    }

    const double t_col = model.alltoallv(col, send_bytes);
    worst_column_comm = std::max(worst_column_comm, t_col);
    for (const auto& rowvec : send_bytes) {
      for (const std::size_t b : rowvec) {
        if (b > 0) {
          total_bytes += b;
          ++total_msgs;
        }
      }
    }
  }

  cluster.add_compute(phase, max_gather);
  cluster.record_comm(phase, worst_column_comm, total_bytes, total_msgs);
  return out;
}

}  // namespace dms
