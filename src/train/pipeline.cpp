#include "train/pipeline.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "core/minibatch.hpp"
#include "graph/partition.hpp"
#include "train/staged_pipeline.hpp"

namespace dms {

namespace {

ModelConfig make_model_config(const Dataset& ds, const PipelineConfig& cfg) {
  ModelConfig mc;
  mc.in_dim = ds.feature_dim();
  mc.hidden = cfg.hidden;
  mc.num_classes = ds.num_classes;
  mc.num_layers = static_cast<index_t>(cfg.fanouts.size());
  mc.seed = derive_seed(cfg.seed, 0x0de1ULL);
  return mc;
}

/// The capacity_rows highest-out-degree vertices (ties broken by lower id),
/// the pinned set of the kDegreePinned cache policy.
std::vector<index_t> top_degree_vertices(const Graph& graph, index_t count) {
  std::vector<index_t> order(static_cast<std::size_t>(graph.num_vertices()));
  std::iota(order.begin(), order.end(), index_t{0});
  count = std::min<index_t>(count, graph.num_vertices());
  std::partial_sort(order.begin(), order.begin() + count, order.end(),
                    [&](index_t a, index_t b) {
                      const index_t da = graph.out_degree(a);
                      const index_t db = graph.out_degree(b);
                      return da != db ? da > db : a < b;
                    });
  order.resize(static_cast<std::size_t>(count));
  return order;
}

}  // namespace

Pipeline::Pipeline(Cluster& cluster, const Dataset& dataset, PipelineConfig config)
    : cluster_(cluster),
      ds_(dataset),
      cfg_(std::move(config)),
      features_(cluster.grid(), dataset.features, FeatureStoreOptions{cfg_.feature_cache, false}),
      model_(make_model_config(dataset, cfg_)) {
  check(!cfg_.fanouts.empty(), "Pipeline: fanouts must be non-empty");
  if (cfg_.feature_cache.policy == CachePolicy::kDegreePinned &&
      cfg_.feature_cache.capacity_rows > 0) {
    features_.pin_rows(
        top_degree_vertices(ds_.graph, cfg_.feature_cache.capacity_rows));
  }
  SamplerContext ctx;
  ctx.config = SamplerConfig{cfg_.fanouts, cfg_.seed};
  ctx.grid = &cluster_.grid();
  ctx.part_opts = cfg_.part_opts;
  // The staged executor drives the cluster-explicit distributed API itself;
  // the binding only ensures that any generic MatrixSampler use of sampler_
  // records its phases on this pipeline's clock rather than an ephemeral one.
  ctx.cluster = &cluster_;
  sampler_ = make_sampler(cfg_.sampler, cfg_.mode, ds_.graph, ctx);
  if (cfg_.mode == DistMode::kPartitioned) {
    partitioned_ = &as_partitioned(*sampler_);
  }
  optimizer_ = cfg_.use_adam
                   ? std::unique_ptr<Optimizer>(std::make_unique<Adam>(cfg_.lr))
                   : std::unique_ptr<Optimizer>(std::make_unique<Sgd>(cfg_.lr, 0.9f));
}

EpochStats Pipeline::run_epoch(int epoch) {
  return StagedPipeline(*this).run(epoch);
}

TrainCursor Pipeline::run_epoch_partial(int epoch, index_t stop_round) {
  check(stop_round >= 0, "run_epoch_partial: stop_round must be >= 0");
  TrainCursor cursor;
  cursor.epoch = epoch;
  StagedPipeline(*this).run_range(epoch, stop_round, &cursor);
  return cursor;
}

EpochStats Pipeline::run_epoch_resumed(const TrainCursor& cursor) {
  TrainCursor resumed = cursor;
  return StagedPipeline(*this).run_range(cursor.epoch, -1, &resumed);
}

double Pipeline::evaluate(const std::vector<index_t>& idx,
                          const std::vector<index_t>& eval_fanouts,
                          index_t eval_batch_size) {
  check(eval_fanouts.size() == cfg_.fanouts.size(),
        "evaluate: eval fanout depth must match the model");
  const SamplerConfig sc{eval_fanouts, derive_seed(cfg_.seed, 0xe1a1)};
  const auto sampler = make_sampler(cfg_.sampler, ds_.graph, sc);
  index_t correct = 0;
  const auto total = static_cast<index_t>(idx.size());
  index_t batch_id = 0;
  for (index_t start = 0; start < total; start += eval_batch_size, ++batch_id) {
    const index_t stop = std::min<index_t>(total, start + eval_batch_size);
    std::vector<index_t> batch(idx.begin() + start, idx.begin() + stop);
    const MinibatchSample sample = sampler->sample_one(batch, batch_id, 0xfeed);
    const auto& input = sample.input_vertices();
    DenseF h(static_cast<index_t>(input.size()), ds_.feature_dim());
    for (std::size_t i = 0; i < input.size(); ++i) {
      std::copy(ds_.features.row(input[i]), ds_.features.row(input[i]) + ds_.feature_dim(),
                h.row(static_cast<index_t>(i)));
    }
    const DenseF logits = model_.forward(sample, h, nullptr);
    for (index_t i = 0; i < logits.rows(); ++i) {
      const float* row = logits.row(i);
      index_t arg = 0;
      for (index_t j = 1; j < logits.cols(); ++j) {
        if (row[j] > row[arg]) arg = j;
      }
      if (static_cast<int>(arg) ==
          ds_.labels[static_cast<std::size_t>(batch[static_cast<std::size_t>(i)])]) {
        ++correct;
      }
    }
  }
  return total > 0 ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

std::size_t Pipeline::per_rank_bytes(int rank) const {
  const ProcessGrid& grid = cluster_.grid();
  std::size_t bytes = model_.param_bytes();
  bytes += features_.block_bytes(grid.row_of(rank));
  bytes += features_.cache_bytes();
  if (partitioned_ != nullptr) {
    bytes += partitioned_->dist_adjacency().block_bytes(grid.row_of(rank));
  } else {
    bytes += ds_.graph.adjacency().bytes();
  }
  return bytes;
}

}  // namespace dms
