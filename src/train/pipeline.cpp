#include "train/pipeline.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/minibatch.hpp"
#include "graph/partition.hpp"
#include "train/staged_pipeline.hpp"

namespace dms {

namespace {

ModelConfig make_model_config(const Dataset& ds, const PipelineConfig& cfg) {
  ModelConfig mc;
  mc.in_dim = ds.feature_dim();
  mc.hidden = cfg.hidden;
  mc.num_classes = ds.num_classes;
  mc.num_layers = static_cast<index_t>(cfg.fanouts.size());
  mc.seed = derive_seed(cfg.seed, 0x0de1ULL);
  return mc;
}

/// The capacity_rows highest-out-degree vertices (ties broken by lower id),
/// the pinned set of the kDegreePinned cache policy.
std::vector<index_t> top_degree_vertices(const Graph& graph, index_t count) {
  std::vector<index_t> order(static_cast<std::size_t>(graph.num_vertices()));
  std::iota(order.begin(), order.end(), index_t{0});
  count = std::min<index_t>(count, graph.num_vertices());
  std::partial_sort(order.begin(), order.begin() + count, order.end(),
                    [&](index_t a, index_t b) {
                      const index_t da = graph.out_degree(a);
                      const index_t db = graph.out_degree(b);
                      return da != db ? da > db : a < b;
                    });
  order.resize(static_cast<std::size_t>(count));
  return order;
}

DisaggLayout layout_for(const PipelineConfig& cfg, const Cluster& cluster) {
  return cfg.mode == DistMode::kDisaggregated
             ? make_disagg_layout(cluster.grid(), cfg.disagg)
             : DisaggLayout{};
}

FeatureStoreOptions feature_store_options(const PipelineConfig& cfg,
                                          const DisaggLayout& layout) {
  FeatureStoreOptions opts;
  opts.cache = cfg.feature_cache;
  if (cfg.mode == DistMode::kDisaggregated) {
    // H lives on the trainer sub-grid; translate its local ranks to the
    // global ids [s, p) so the modeled all-to-allv classifies links by
    // where the trainers actually sit.
    opts.global_ranks.resize(static_cast<std::size_t>(layout.trainers));
    for (int j = 0; j < layout.trainers; ++j) {
      opts.global_ranks[static_cast<std::size_t>(j)] = layout.trainer_rank(j);
    }
  }
  return opts;
}

}  // namespace

Pipeline::Pipeline(Cluster& cluster, const Dataset& dataset, PipelineConfig config)
    : cluster_(cluster),
      ds_(dataset),
      cfg_(std::move(config)),
      disagg_(layout_for(cfg_, cluster)),
      features_(cfg_.mode == DistMode::kDisaggregated ? disagg_.trainer_grid
                                                      : cluster.grid(),
                dataset.features, feature_store_options(cfg_, disagg_)),
      model_(make_model_config(dataset, cfg_)) {
  check(!cfg_.fanouts.empty(), "Pipeline: fanouts must be non-empty");
  check(cfg_.presample_rounds >= 1, "Pipeline: presample_rounds must be >= 1");
  SamplerContext ctx;
  ctx.config = SamplerConfig{cfg_.fanouts, cfg_.seed};
  ctx.grid = &cluster_.grid();
  ctx.part_opts = cfg_.part_opts;
  // The staged executor drives the cluster-explicit distributed API itself;
  // the binding only ensures that any generic MatrixSampler use of sampler_
  // records its phases on this pipeline's clock rather than an ephemeral one.
  ctx.cluster = &cluster_;
  ctx.disagg = cfg_.disagg;
  sampler_ = make_sampler(cfg_.sampler, cfg_.mode, ds_.graph, ctx);
  if (cfg_.mode != DistMode::kReplicated) {
    partitioned_ = &as_partitioned(*sampler_);
  }
  if (cfg_.mode == DistMode::kDisaggregated) {
    disagg_cluster_ =
        std::make_unique<Cluster>(disagg_.sampler_grid, cluster_.cost_model());
    partitioned_->bind_cluster(disagg_cluster_.get());
  }
  optimizer_ = cfg_.use_adam
                   ? std::unique_ptr<Optimizer>(std::make_unique<Adam>(cfg_.lr))
                   : std::unique_ptr<Optimizer>(std::make_unique<Sgd>(cfg_.lr, 0.9f));
  // Cache admission runs after the sampler exists: kPreSample needs it for
  // the warmup pass (kDegreePinned only needs the graph).
  if (cfg_.feature_cache.capacity_rows > 0) {
    if (cfg_.feature_cache.policy == CachePolicy::kDegreePinned) {
      features_.pin_rows(
          top_degree_vertices(ds_.graph, cfg_.feature_cache.capacity_rows));
    } else if (cfg_.feature_cache.policy == CachePolicy::kPreSample) {
      presample_warmup();
    }
  }
}

void Pipeline::presample_warmup() {
  // A dedicated warmup permutation under its own derived seed: hotness is
  // measured on batches the training epochs never see, so pinning cannot
  // leak epoch randomness (and epoch losses stay independent of the policy).
  const std::uint64_t warmup_seed = derive_seed(cfg_.seed, 0x9a3eULL);
  const auto want = static_cast<std::size_t>(cfg_.presample_rounds) *
                    static_cast<std::size_t>(cluster_.size());
  // Draw warmup batches from as many fresh permutations as the round budget
  // asks for — hotness is estimated from sampled neighborhoods, so more
  // (differently-seeded) draws shrink the estimator's noise at the capacity
  // boundary. Batch ids stay globally unique across permutations, which
  // keeps every draw independent under the per-(id, layer, row) randomness.
  std::vector<std::vector<index_t>> chunk;
  for (std::uint64_t rep = 0; chunk.size() < want; ++rep) {
    auto perm = make_epoch_batches(ds_.train_idx, cfg_.batch_size,
                                   derive_seed(warmup_seed, rep));
    if (perm.empty()) break;
    for (auto& b : perm) {
      if (chunk.size() == want) break;
      chunk.push_back(std::move(b));
    }
  }
  const std::size_t n = chunk.size();
  if (n == 0) return;
  std::vector<index_t> ids(n);
  std::iota(ids.begin(), ids.end(), index_t{0});

  // Cost measurement: the distributed modes record the warmup's phases on a
  // cluster (the bound main cluster for kPartitioned — wiped by the first
  // epoch's reset_clock — or the sampler sub-cluster for kDisaggregated);
  // the replicated sampler is host-timed like replicated_round would.
  Cluster* recorder = cfg_.mode == DistMode::kDisaggregated
                          ? disagg_cluster_.get()
                          : cfg_.mode == DistMode::kPartitioned ? &cluster_
                                                                : nullptr;
  const double before =
      recorder ? recorder->total_compute() + recorder->total_comm() : 0.0;
  Timer timer;
  const auto samples = sampler_->sample_bulk(chunk, ids, warmup_seed);
  if (recorder != nullptr) {
    warmup_cost_ = recorder->total_compute() + recorder->total_comm() - before;
  } else {
    const LinkParams& link = cluster_.cost_model().link();
    // One bulk round: measured sampling compute plus its launch overheads
    // (4 kernels per layer, as the staged executor bills a round).
    warmup_cost_ = timer.seconds() / link.compute_scale +
                   link.launch_overhead * 4.0 *
                       static_cast<double>(cfg_.fanouts.size());
  }
  if (disagg_cluster_) disagg_cluster_->reset_clock();

  std::vector<std::uint64_t> counts(
      static_cast<std::size_t>(ds_.graph.num_vertices()), 0);
  for (const MinibatchSample& s : samples) {
    for (const index_t v : s.input_vertices()) {
      ++counts[static_cast<std::size_t>(v)];
    }
  }
  // Hottest first; rows the warmup could not separate (equal touch counts,
  // common near the capacity boundary) fall back to the degree prior that
  // kDegreePinned uses outright, then to the lower id. Measured hotness
  // decides wherever the data speaks, degree only where it is silent.
  std::vector<index_t> order(static_cast<std::size_t>(ds_.graph.num_vertices()));
  std::iota(order.begin(), order.end(), index_t{0});
  const index_t count = std::min<index_t>(cfg_.feature_cache.capacity_rows,
                                          ds_.graph.num_vertices());
  std::partial_sort(order.begin(), order.begin() + count, order.end(),
                    [&](index_t a, index_t b) {
                      const auto ca = counts[static_cast<std::size_t>(a)];
                      const auto cb = counts[static_cast<std::size_t>(b)];
                      if (ca != cb) return ca > cb;
                      const index_t da = ds_.graph.out_degree(a);
                      const index_t db = ds_.graph.out_degree(b);
                      return da != db ? da > db : a < b;
                    });
  order.resize(static_cast<std::size_t>(count));
  features_.pin_rows(order);
  pending_warmup_ = true;
}

EpochStats Pipeline::run_epoch(int epoch) {
  return StagedPipeline(*this).run(epoch);
}

TrainCursor Pipeline::run_epoch_partial(int epoch, index_t stop_round) {
  check(stop_round >= 0, "run_epoch_partial: stop_round must be >= 0");
  TrainCursor cursor;
  cursor.epoch = epoch;
  StagedPipeline(*this).run_range(epoch, stop_round, &cursor);
  return cursor;
}

EpochStats Pipeline::run_epoch_resumed(const TrainCursor& cursor) {
  TrainCursor resumed = cursor;
  return StagedPipeline(*this).run_range(cursor.epoch, -1, &resumed);
}

double Pipeline::evaluate(const std::vector<index_t>& idx,
                          const std::vector<index_t>& eval_fanouts,
                          index_t eval_batch_size) {
  check(eval_fanouts.size() == cfg_.fanouts.size(),
        "evaluate: eval fanout depth must match the model");
  const SamplerConfig sc{eval_fanouts, derive_seed(cfg_.seed, 0xe1a1)};
  const auto sampler = make_sampler(cfg_.sampler, ds_.graph, sc);
  index_t correct = 0;
  const auto total = static_cast<index_t>(idx.size());
  index_t batch_id = 0;
  for (index_t start = 0; start < total; start += eval_batch_size, ++batch_id) {
    const index_t stop = std::min<index_t>(total, start + eval_batch_size);
    std::vector<index_t> batch(idx.begin() + start, idx.begin() + stop);
    const MinibatchSample sample = sampler->sample_one(batch, batch_id, 0xfeed);
    const auto& input = sample.input_vertices();
    DenseF h(static_cast<index_t>(input.size()), ds_.feature_dim());
    for (std::size_t i = 0; i < input.size(); ++i) {
      std::copy(ds_.features.row(input[i]), ds_.features.row(input[i]) + ds_.feature_dim(),
                h.row(static_cast<index_t>(i)));
    }
    const DenseF logits = model_.forward(sample, h, nullptr);
    for (index_t i = 0; i < logits.rows(); ++i) {
      const float* row = logits.row(i);
      index_t arg = 0;
      for (index_t j = 1; j < logits.cols(); ++j) {
        if (row[j] > row[arg]) arg = j;
      }
      if (static_cast<int>(arg) ==
          ds_.labels[static_cast<std::size_t>(batch[static_cast<std::size_t>(i)])]) {
        ++correct;
      }
    }
  }
  return total > 0 ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

std::size_t Pipeline::per_rank_bytes(int rank) const {
  if (cfg_.mode == DistMode::kDisaggregated) {
    // Sampler ranks hold only their adjacency block rows; trainer ranks a
    // model replica, their feature block, and the cache — the memory
    // asymmetry the mode exists to exploit (freed adjacency memory funds a
    // higher trainer replication factor or a larger cache).
    if (rank < disagg_.samplers) {
      return partitioned_->dist_adjacency().block_bytes(
          disagg_.sampler_grid.row_of(rank));
    }
    const int local = rank - disagg_.samplers;
    return model_.param_bytes() +
           features_.block_bytes(disagg_.trainer_grid.row_of(local)) +
           features_.cache_bytes();
  }
  const ProcessGrid& grid = cluster_.grid();
  std::size_t bytes = model_.param_bytes();
  bytes += features_.block_bytes(grid.row_of(rank));
  bytes += features_.cache_bytes();
  if (partitioned_ != nullptr) {
    bytes += partitioned_->dist_adjacency().block_bytes(grid.row_of(rank));
  } else {
    bytes += ds_.graph.adjacency().bytes();
  }
  return bytes;
}

}  // namespace dms
