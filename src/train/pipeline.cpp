#include "train/pipeline.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/minibatch.hpp"
#include "graph/partition.hpp"

namespace dms {

namespace {

/// Kernel launches per layer of the bulk sampling pass (SpGEMM, prefix sum,
/// sample, extract) — the per-call overhead that bulk sampling amortizes.
constexpr double kKernelsPerLayer = 4.0;

ModelConfig make_model_config(const Dataset& ds, const PipelineConfig& cfg) {
  ModelConfig mc;
  mc.in_dim = ds.feature_dim();
  mc.hidden = cfg.hidden;
  mc.num_classes = ds.num_classes;
  mc.num_layers = static_cast<index_t>(cfg.fanouts.size());
  mc.seed = derive_seed(cfg.seed, 0x0de1ULL);
  return mc;
}

}  // namespace

Pipeline::Pipeline(Cluster& cluster, const Dataset& dataset, PipelineConfig config)
    : cluster_(cluster),
      ds_(dataset),
      cfg_(std::move(config)),
      features_(cluster.grid(), dataset.features),
      model_(make_model_config(dataset, cfg_)) {
  check(!cfg_.fanouts.empty(), "Pipeline: fanouts must be non-empty");
  SamplerContext ctx;
  ctx.config = SamplerConfig{cfg_.fanouts, cfg_.seed};
  ctx.grid = &cluster_.grid();
  ctx.part_opts = cfg_.part_opts;
  // sample_epoch drives the cluster-explicit distributed API itself; the
  // binding only ensures that any generic MatrixSampler use of sampler_
  // records its phases on this pipeline's clock rather than an ephemeral one.
  ctx.cluster = &cluster_;
  sampler_ = make_sampler(cfg_.sampler, cfg_.mode, ds_.graph, ctx);
  if (cfg_.mode == DistMode::kPartitioned) {
    partitioned_ = &as_partitioned(*sampler_);
  }
  optimizer_ = cfg_.use_adam
                   ? std::unique_ptr<Optimizer>(std::make_unique<Adam>(cfg_.lr))
                   : std::unique_ptr<Optimizer>(std::make_unique<Sgd>(cfg_.lr, 0.9f));
}

std::vector<std::vector<MinibatchSample>> Pipeline::sample_epoch(
    const std::vector<std::vector<index_t>>& batches, std::uint64_t epoch_seed) {
  const int p = cluster_.size();
  const auto k_total = static_cast<index_t>(batches.size());
  std::vector<std::vector<MinibatchSample>> per_rank(static_cast<std::size_t>(p));
  const double launch = cluster_.cost_model().link().launch_overhead;
  const auto num_layers = static_cast<double>(cfg_.fanouts.size());

  if (cfg_.mode == DistMode::kReplicated) {
    // §5.1/§6.1: each rank samples k/p minibatches with zero communication,
    // in bulk rounds of (bulk_k / p) minibatches.
    const BlockPartition assign(k_total, p);
    const index_t bulk_per_rank =
        cfg_.bulk_k <= 0 ? k_total : std::max<index_t>(1, ceil_div(cfg_.bulk_k, p));
    double max_t = 0.0;
    index_t max_rounds = 0;
    for (int r = 0; r < p; ++r) {
      Timer t;
      index_t rounds = 0;
      for (index_t b0 = assign.begin(r); b0 < assign.end(r); b0 += bulk_per_rank) {
        const index_t b1 = std::min<index_t>(assign.end(r), b0 + bulk_per_rank);
        std::vector<std::vector<index_t>> chunk(batches.begin() + b0,
                                                batches.begin() + b1);
        std::vector<index_t> ids(static_cast<std::size_t>(b1 - b0));
        for (index_t b = b0; b < b1; ++b) ids[static_cast<std::size_t>(b - b0)] = b;
        auto samples = sampler_->sample_bulk(chunk, ids, epoch_seed);
        for (auto& s : samples) per_rank[static_cast<std::size_t>(r)].push_back(std::move(s));
        ++rounds;
      }
      max_t = std::max(max_t, t.seconds());
      max_rounds = std::max(max_rounds, rounds);
    }
    cluster_.add_compute("sampling", max_t);
    // Bulk sampling launches O(L) kernels per *round*, not per minibatch —
    // the amortization of §4.
    cluster_.add_overhead("sampling", launch * kKernelsPerLayer * num_layers *
                                          static_cast<double>(max_rounds));
    return per_rank;
  }

  // Graph Partitioned: batches are owned by process rows; each row's c
  // replicas split its minibatches for training.
  std::vector<index_t> ids(static_cast<std::size_t>(k_total));
  for (index_t b = 0; b < k_total; ++b) ids[static_cast<std::size_t>(b)] = b;
  auto per_row = partitioned_->sample_bulk(cluster_, batches, ids, epoch_seed);
  cluster_.add_overhead(kPhaseSampling,
                        launch * kKernelsPerLayer * num_layers);
  const ProcessGrid& grid = cluster_.grid();
  for (int i = 0; i < grid.rows(); ++i) {
    auto& row_samples = per_row[static_cast<std::size_t>(i)];
    for (std::size_t b = 0; b < row_samples.size(); ++b) {
      const int j = static_cast<int>(b) % grid.replication();
      per_rank[static_cast<std::size_t>(grid.rank_of(i, j))].push_back(
          std::move(row_samples[b]));
    }
  }
  return per_rank;
}

EpochStats Pipeline::run_epoch(int epoch) {
  cluster_.reset_clock();
  const std::uint64_t epoch_seed = derive_seed(cfg_.seed, 0xe90c, static_cast<std::uint64_t>(epoch));
  const auto batches = make_epoch_batches(ds_.train_idx, cfg_.batch_size, epoch_seed);

  auto per_rank = sample_epoch(batches, epoch_seed);

  const int p = cluster_.size();
  std::size_t steps = 0;
  for (const auto& q : per_rank) steps = std::max(steps, q.size());

  double loss_sum = 0.0;
  index_t correct = 0, seen = 0;
  const std::size_t param_bytes = model_.param_bytes();

  for (std::size_t t = 0; t < steps; ++t) {
    // --- Feature fetching: all-to-allv across process columns (§6.2). ---
    std::vector<std::vector<index_t>> wanted(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      if (t < per_rank[static_cast<std::size_t>(r)].size()) {
        wanted[static_cast<std::size_t>(r)] =
            per_rank[static_cast<std::size_t>(r)][t].input_vertices();
      }
    }
    auto gathered = features_.fetch_all(cluster_, wanted, "fetch");

    // --- Propagation: fwd/bwd per rank, then gradient all-reduce. ---
    double max_prop = 0.0;
    int active = 0;
    for (int r = 0; r < p; ++r) {
      if (t >= per_rank[static_cast<std::size_t>(r)].size()) continue;
      const MinibatchSample& sample = per_rank[static_cast<std::size_t>(r)][t];
      std::vector<int> labels(sample.batch_vertices.size());
      for (std::size_t i = 0; i < labels.size(); ++i) {
        labels[i] = ds_.labels[static_cast<std::size_t>(sample.batch_vertices[i])];
      }
      Timer timer;
      const LossResult res =
          model_.train_step(sample, gathered[static_cast<std::size_t>(r)], labels);
      max_prop = std::max(max_prop, timer.seconds());
      loss_sum += res.loss * static_cast<double>(labels.size());
      correct += res.correct;
      seen += static_cast<index_t>(labels.size());
      ++active;
    }
    if (active > 0) {
      // Shared-model gradient accumulation across ranks == all-reduce sum;
      // average and step once (identical to synchronous DDP).
      Timer timer;
      model_.scale_grads(1.0f / static_cast<float>(active));
      optimizer_->step(model_.params());
      model_.zero_grads();
      cluster_.add_compute("propagation", max_prop + timer.seconds());
      if (p > 1) {
        cluster_.record_comm(
            "propagation",
            cluster_.cost_model().allreduce(cluster_.grid().all_ranks(), param_bytes),
            param_bytes * static_cast<std::size_t>(p), static_cast<std::size_t>(2 * (p - 1)));
      }
    }
  }

  EpochStats stats;
  stats.sampling = cluster_.phase_time("sampling") +
                   cluster_.phase_time(kPhaseProbability) +
                   cluster_.phase_time(kPhaseExtraction);
  stats.fetch = cluster_.phase_time("fetch");
  stats.propagation = cluster_.phase_time("propagation");
  stats.total = cluster_.total_time();
  stats.loss = seen > 0 ? loss_sum / static_cast<double>(seen) : 0.0;
  stats.train_acc = seen > 0 ? static_cast<double>(correct) / static_cast<double>(seen) : 0.0;
  stats.compute_phases = cluster_.compute_time();
  for (const auto& [phase, s] : cluster_.comm_stats()) {
    stats.comm_phases[phase] = s.seconds;
  }
  return stats;
}

double Pipeline::evaluate(const std::vector<index_t>& idx,
                          const std::vector<index_t>& eval_fanouts,
                          index_t eval_batch_size) {
  check(eval_fanouts.size() == cfg_.fanouts.size(),
        "evaluate: eval fanout depth must match the model");
  const SamplerConfig sc{eval_fanouts, derive_seed(cfg_.seed, 0xe1a1)};
  const auto sampler = make_sampler(cfg_.sampler, ds_.graph, sc);
  index_t correct = 0;
  const auto total = static_cast<index_t>(idx.size());
  index_t batch_id = 0;
  for (index_t start = 0; start < total; start += eval_batch_size, ++batch_id) {
    const index_t stop = std::min<index_t>(total, start + eval_batch_size);
    std::vector<index_t> batch(idx.begin() + start, idx.begin() + stop);
    const MinibatchSample sample = sampler->sample_one(batch, batch_id, 0xfeed);
    const auto& input = sample.input_vertices();
    DenseF h(static_cast<index_t>(input.size()), ds_.feature_dim());
    for (std::size_t i = 0; i < input.size(); ++i) {
      std::copy(ds_.features.row(input[i]), ds_.features.row(input[i]) + ds_.feature_dim(),
                h.row(static_cast<index_t>(i)));
    }
    const DenseF logits = model_.forward(sample, h, nullptr);
    for (index_t i = 0; i < logits.rows(); ++i) {
      const float* row = logits.row(i);
      index_t arg = 0;
      for (index_t j = 1; j < logits.cols(); ++j) {
        if (row[j] > row[arg]) arg = j;
      }
      if (static_cast<int>(arg) ==
          ds_.labels[static_cast<std::size_t>(batch[static_cast<std::size_t>(i)])]) {
        ++correct;
      }
    }
  }
  return total > 0 ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

std::size_t Pipeline::per_rank_bytes(int rank) const {
  const ProcessGrid& grid = cluster_.grid();
  std::size_t bytes = model_.param_bytes();
  bytes += features_.block_bytes(grid.row_of(rank));
  if (partitioned_ != nullptr) {
    bytes += partitioned_->dist_adjacency().block_bytes(grid.row_of(rank));
  } else {
    bytes += ds_.graph.adjacency().bytes();
  }
  return bytes;
}

}  // namespace dms
