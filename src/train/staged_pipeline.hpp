// The staged, overlapped training executor (DESIGN.md §6, fault recovery
// §13).
//
// One epoch is executed as a sequence of discrete stage units over the
// pipeline's components:
//
//   sample_round(g)  — materialize the minibatches of bulk round g
//                      (the prefetchable unit of src/dist's BulkRound);
//   fetch_step(t)    — the all-to-allv feature fetch for training step t;
//   train_step(t)    — forward/backward + gradient all-reduce for step t.
//
// With PipelineConfig::overlap the executor double-buffers: round g+1 is
// sampled while round g trains, and the fetch for step t+1 is issued while
// step t propagates. The host still runs the stages sequentially — overlap
// lives in the *simulated clock*, which composes concurrent stages as
// max(compute, comm) by crediting the hidden seconds through
// Cluster::credit_overlap. Because only the accounting changes, an
// overlapped epoch performs bit-identical arithmetic to a synchronous one:
// same samples, same gathered features, same optimizer updates, same loss.
//
// Batch placement is an explicit table (batch id → (rank, step)) rather
// than implicit block arithmetic. On a healthy cluster the table reproduces
// the classic block assignment exactly (replicated: contiguous blocks per
// rank; partitioned: contiguous blocks per process row, replicas
// round-robining the block). The table is what makes crash recovery a local
// operation: each bulk-round boundary is a Cluster superstep, and when a
// rank dies there the not-yet-sampled remainder of the epoch is
// re-partitioned onto the survivors and the remaining rounds re-planned
// through plan_bulk_rounds — the degrade-and-continue path. Sample content
// never depends on placement (randomness derives from global batch ids), so
// re-partitioning shifts work, not results.
//
// Accounting invariant (tested): for an overlapped epoch,
//   overlap_saved + stall == sampling + fetch
// (every prefetchable second is either hidden or exposed), and
//   total == sum of phase times − overlap_saved.
#pragma once

#include "dist/dist_sampler.hpp"
#include "train/pipeline.hpp"

namespace dms {

class StagedPipeline {
 public:
  /// Borrows the pipeline's components for one run() call.
  explicit StagedPipeline(Pipeline& pipe) : p_(pipe) {}

  /// Executes one epoch through the staged schedule; returns the stats.
  EpochStats run(int epoch);

  /// Executes bulk rounds [cursor->next_round, end_round) of `epoch`
  /// (end_round < 0 = to the end). `cursor` carries the loss/accuracy
  /// accumulators across segments and is updated to the first unexecuted
  /// round on return — the checkpoint/restore entry point.
  EpochStats run_range(int epoch, index_t end_round, TrainCursor* cursor);

 private:
  /// Where a batch trains: queues_[rank][step].
  struct Placement {
    int rank = -1;
    index_t step = -1;
  };

  /// (Re)builds the placement table: batches with ids in `remaining` are
  /// block-assigned to the currently-alive ranks/rows with steps starting
  /// at `boundary`. Initial call: boundary 0, all ids.
  void assign_batches(const std::vector<index_t>& remaining, index_t boundary);

  /// At a bulk-round boundary, advances the fault superstep and — if ranks
  /// died — re-partitions every batch of rounds >= g onto the survivors and
  /// re-plans the remaining rounds. Returns true if the schedule changed.
  bool recover_at_boundary(std::size_t g);

  /// Samples the minibatches covering `round`'s training steps into the
  /// per-rank queues; returns the simulated seconds the round cost.
  double sample_round(const BulkRound& round, std::uint64_t epoch_seed);
  double replicated_round(const BulkRound& round, std::uint64_t epoch_seed);
  double partitioned_round(const BulkRound& round, std::uint64_t epoch_seed);
  /// kDisaggregated: samples on the sampler-role sub-cluster, drains its
  /// clock into the main one, and streams the materialized samples to their
  /// trainers as the modeled "handoff" comm phase.
  double disaggregated_round(const BulkRound& round, std::uint64_t epoch_seed);

  /// Issues the feature fetch for step t; returns the simulated seconds.
  double fetch_step(index_t t, std::vector<DenseF>& gathered);

  /// Propagation + optimizer for step t (accumulates loss/accuracy and
  /// releases the trained samples); returns the simulated seconds.
  double train_step(index_t t, const std::vector<DenseF>& gathered);

  /// Uncredited simulated clock (compute + comm), for per-stage deltas.
  double clock() const;

  Pipeline& p_;
  const std::vector<std::vector<index_t>>* batches_ = nullptr;
  std::vector<Placement> placement_;  ///< global batch id → (rank, step)
  /// step_batches_[r][t]: the global batch id rank r trains at step t, or
  /// -1. The inverse of placement_, rebuilt on every (re)assignment.
  std::vector<std::vector<index_t>> step_batches_;
  std::vector<BulkRound> rounds_;  ///< epoch schedule; re-planned on crash
  index_t steps_ = 0;              ///< per-rank training steps in the epoch
  index_t bulk_steps_ = 0;         ///< round stride for (re)planning
  std::vector<char> alive_;        ///< alive flags at the last boundary
  /// queues_[r][t]: the sample rank r trains at step t (empty batch_vertices
  /// = no work for r at t). Rounds fill step ranges; train_step drains them.
  std::vector<std::vector<MinibatchSample>> queues_;
  double loss_sum_ = 0.0;
  index_t correct_ = 0;
  index_t seen_ = 0;
};

}  // namespace dms
