// The staged, overlapped training executor (DESIGN.md §6).
//
// One epoch is executed as a sequence of discrete stage units over the
// pipeline's components:
//
//   sample_round(g)  — materialize the minibatches of bulk round g
//                      (the prefetchable unit of src/dist's BulkRound);
//   fetch_step(t)    — the all-to-allv feature fetch for training step t;
//   train_step(t)    — forward/backward + gradient all-reduce for step t.
//
// With PipelineConfig::overlap the executor double-buffers: round g+1 is
// sampled while round g trains, and the fetch for step t+1 is issued while
// step t propagates. The host still runs the stages sequentially — overlap
// lives in the *simulated clock*, which composes concurrent stages as
// max(compute, comm) by crediting the hidden seconds through
// Cluster::credit_overlap. Because only the accounting changes, an
// overlapped epoch performs bit-identical arithmetic to a synchronous one:
// same samples, same gathered features, same optimizer updates, same loss.
//
// Accounting invariant (tested): for an overlapped epoch,
//   overlap_saved + stall == sampling + fetch
// (every prefetchable second is either hidden or exposed), and
//   total == sum of phase times − overlap_saved.
#pragma once

#include "dist/dist_sampler.hpp"
#include "train/pipeline.hpp"

namespace dms {

class StagedPipeline {
 public:
  /// Borrows the pipeline's components for one run() call.
  explicit StagedPipeline(Pipeline& pipe) : p_(pipe) {}

  /// Executes one epoch through the staged schedule; returns the stats.
  EpochStats run(int epoch);

 private:
  /// Samples the minibatches covering `round`'s training steps into the
  /// per-rank queues; returns the simulated seconds the round cost.
  double sample_round(const BulkRound& round, std::uint64_t epoch_seed);
  double replicated_round(const BulkRound& round, std::uint64_t epoch_seed);
  double partitioned_round(const BulkRound& round, std::uint64_t epoch_seed);

  /// Issues the feature fetch for step t; returns the simulated seconds.
  double fetch_step(index_t t, std::vector<DenseF>& gathered);

  /// Propagation + optimizer for step t (accumulates loss/accuracy and
  /// releases the trained samples); returns the simulated seconds.
  double train_step(index_t t, const std::vector<DenseF>& gathered);

  /// Uncredited simulated clock (compute + comm), for per-stage deltas.
  double clock() const;

  Pipeline& p_;
  const std::vector<std::vector<index_t>>* batches_ = nullptr;
  BlockPartition rank_assign_;  ///< replicated: global batch id → rank
  BlockPartition row_assign_;   ///< partitioned: global batch id → process row
  index_t steps_ = 0;           ///< per-rank training steps in the epoch
  /// queues_[r][t]: the sample rank r trains at step t (empty batch_vertices
  /// = no work for r at t). Rounds fill step ranges; train_step drains them.
  std::vector<std::vector<MinibatchSample>> queues_;
  double loss_sum_ = 0.0;
  index_t correct_ = 0;
  index_t seen_ = 0;
};

}  // namespace dms
