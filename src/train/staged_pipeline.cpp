#include "train/staged_pipeline.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/minibatch.hpp"
#include "graph/partition.hpp"

namespace dms {

namespace {

/// Kernel launches per layer of the bulk sampling pass (SpGEMM, prefix sum,
/// sample, extract) — the per-call overhead that bulk sampling amortizes.
constexpr double kKernelsPerLayer = 4.0;

bool has_sample(const MinibatchSample& s) { return !s.batch_vertices.empty(); }

}  // namespace

double StagedPipeline::clock() const {
  return p_.cluster_.total_compute() + p_.cluster_.total_comm();
}

EpochStats StagedPipeline::run(int epoch) {
  Cluster& cluster = p_.cluster_;
  const PipelineConfig& cfg = p_.cfg_;
  cluster.reset_clock();
  const std::uint64_t epoch_seed =
      derive_seed(cfg.seed, 0xe90c, static_cast<std::uint64_t>(epoch));
  const auto batches = make_epoch_batches(p_.ds_.train_idx, cfg.batch_size, epoch_seed);
  batches_ = &batches;

  const int p = cluster.size();
  const auto k_total = static_cast<index_t>(batches.size());
  if (cfg.mode == DistMode::kReplicated) {
    // §5.1/§6.1: minibatches block-assigned to ranks; rank r trains its
    // block in order, so its step count is its block size.
    rank_assign_ = BlockPartition(k_total, p);
    steps_ = k_total == 0 ? 0 : rank_assign_.size(0);
  } else {
    // §5.2: minibatches block-assigned to process rows; each row's c
    // replicas round-robin its block, so step t trains local index t*c+j.
    row_assign_ = BlockPartition(k_total, cluster.grid().rows());
    steps_ = k_total == 0 ? 0
                          : ceil_div(row_assign_.size(0),
                                     static_cast<index_t>(cluster.grid().replication()));
  }
  queues_.assign(static_cast<std::size_t>(p),
                 std::vector<MinibatchSample>(static_cast<std::size_t>(steps_)));

  // Bulk rounds: cfg.bulk_k minibatches across all ranks per round. With
  // k=all, the overlapped executor still slices the epoch into
  // prefetch_rounds rounds — a monolithic bulk would leave nothing to
  // double-buffer (the sync path keeps the single bulk of §6.1).
  check(cfg.prefetch_rounds >= 1, "Pipeline: prefetch_rounds must be >= 1");
  index_t bulk_steps = 0;
  if (cfg.bulk_k > 0) {
    bulk_steps = std::max<index_t>(1, ceil_div(cfg.bulk_k, p));
  } else if (cfg.overlap && cfg.prefetch_rounds > 1 && steps_ > 0) {
    bulk_steps = std::max<index_t>(1, ceil_div(steps_, cfg.prefetch_rounds));
  }
  const std::vector<BulkRound> rounds = plan_bulk_rounds(steps_, bulk_steps);

  const FeatureCacheStats cache_before = p_.features_.cache_stats();
  // Plan-op breakdown: the executor's table is cumulative, so diff the
  // epoch's delta below.
  const std::map<std::string, double> ops_before =
      p_.sampler_->op_time_breakdown();
  loss_sum_ = 0.0;
  correct_ = seen_ = 0;
  double stall = 0.0;
  double prev_round_unhidden = 0.0;
  // Hoisted per-step fetch buffer: move-assigned by fetch_step each step, so
  // the container itself is reused across the epoch (the samplers' Workspace
  // arenas cover the sampling-side scratch the same way).
  std::vector<DenseF> gathered;

  for (std::size_t g = 0; g < rounds.size(); ++g) {
    const double s_cost = sample_round(rounds[g], epoch_seed);
    if (cfg.overlap) {
      // Round g is sampled while round g-1 trains; round 0 is pipeline fill.
      const double hid =
          g == 0 ? 0.0 : std::min(s_cost, prev_round_unhidden);
      cluster.credit_overlap(hid);
      stall += s_cost - hid;
    }

    double round_unhidden = 0.0;
    double prev_prop = -1.0;  // <0: no propagation yet in this round
    for (index_t t = rounds[g].step_begin; t < rounds[g].step_end; ++t) {
      const double f_cost = fetch_step(t, gathered);
      const double p_cost = train_step(t, gathered);
      if (cfg.overlap) {
        // The fetch for step t is issued during the propagation of step
        // t-1; the round's first fetch has no propagation to hide under.
        const double hid = prev_prop < 0.0 ? 0.0 : std::min(f_cost, prev_prop);
        cluster.credit_overlap(hid);
        stall += f_cost - hid;
        round_unhidden += (f_cost - hid) + p_cost;
      }
      prev_prop = p_cost;
    }
    prev_round_unhidden = round_unhidden;
  }

  EpochStats stats;
  stats.sampling = cluster.phase_time(kPhaseSampling) +
                   cluster.phase_time(kPhaseProbability) +
                   cluster.phase_time(kPhaseExtraction);
  stats.fetch = cluster.phase_time("fetch");
  stats.propagation = cluster.phase_time("propagation");
  stats.total = cluster.total_time();
  stats.loss = seen_ > 0 ? loss_sum_ / static_cast<double>(seen_) : 0.0;
  stats.train_acc =
      seen_ > 0 ? static_cast<double>(correct_) / static_cast<double>(seen_) : 0.0;
  stats.overlap_saved = cluster.overlap_credit();
  stats.stall = cfg.overlap ? stall : 0.0;
  const FeatureCacheStats d = p_.features_.cache_stats() - cache_before;
  stats.cache_hits = d.hits;
  stats.cache_misses = d.misses;
  stats.cache_local = d.local;
  stats.fetch_bytes = d.bytes_moved;
  stats.fetch_bytes_saved = d.bytes_saved;
  stats.compute_phases = cluster.compute_time();
  for (const auto& [phase, s] : cluster.comm_stats()) {
    stats.comm_phases[phase] = s.seconds;
  }
  for (const auto& [op, seconds] : p_.sampler_->op_time_breakdown()) {
    const auto it = ops_before.find(op);
    stats.sampler_ops[op] =
        seconds - (it == ops_before.end() ? 0.0 : it->second);
  }
  batches_ = nullptr;
  return stats;
}

double StagedPipeline::sample_round(const BulkRound& round,
                                    std::uint64_t epoch_seed) {
  return p_.cfg_.mode == DistMode::kReplicated
             ? replicated_round(round, epoch_seed)
             : partitioned_round(round, epoch_seed);
}

double StagedPipeline::replicated_round(const BulkRound& round,
                                        std::uint64_t epoch_seed) {
  Cluster& cluster = p_.cluster_;
  const double before = clock();
  const int p = cluster.size();
  const double launch = cluster.cost_model().link().launch_overhead;
  const auto num_layers = static_cast<double>(p_.cfg_.fanouts.size());

  // Each rank samples this round's slice of its block with zero
  // communication; the round costs the max over ranks.
  double max_t = 0.0;
  for (int r = 0; r < p; ++r) {
    const index_t b0 = rank_assign_.begin(r) + round.step_begin;
    const index_t b1 =
        std::min(rank_assign_.end(r), rank_assign_.begin(r) + round.step_end);
    if (b0 >= b1) continue;
    Timer t;
    const std::vector<std::vector<index_t>> chunk(batches_->begin() + b0,
                                                  batches_->begin() + b1);
    std::vector<index_t> ids(static_cast<std::size_t>(b1 - b0));
    for (index_t b = b0; b < b1; ++b) ids[static_cast<std::size_t>(b - b0)] = b;
    auto samples = p_.sampler_->sample_bulk(chunk, ids, epoch_seed);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      queues_[static_cast<std::size_t>(r)]
             [static_cast<std::size_t>(round.step_begin) + i] =
          std::move(samples[i]);
    }
    max_t = std::max(max_t, t.seconds());
  }
  cluster.add_compute(kPhaseSampling, max_t);
  // Bulk sampling launches O(L) kernels per *round*, not per minibatch —
  // the amortization of §4.
  cluster.add_overhead(kPhaseSampling, launch * kKernelsPerLayer * num_layers);
  return clock() - before;
}

double StagedPipeline::partitioned_round(const BulkRound& round,
                                         std::uint64_t epoch_seed) {
  Cluster& cluster = p_.cluster_;
  const double before = clock();
  const ProcessGrid& grid = cluster.grid();
  const auto c = static_cast<index_t>(grid.replication());
  const double launch = cluster.cost_model().link().launch_overhead;
  const auto num_layers = static_cast<double>(p_.cfg_.fanouts.size());

  // The round needs, for every process row, the batches whose queue step
  // falls in [step_begin, step_end): local indices [step_begin*c,
  // step_end*c) of the row's block. Sample content is independent of which
  // row materializes a batch (the determinism contract derives randomness
  // from global batch ids), so the sub-epoch can be re-partitioned freely.
  std::vector<std::vector<index_t>> sub_batches;
  std::vector<index_t> sub_ids;
  for (index_t i = 0; i < row_assign_.parts(); ++i) {
    const index_t lo = row_assign_.begin(i) + round.step_begin * c;
    const index_t hi =
        std::min(row_assign_.end(i), row_assign_.begin(i) + round.step_end * c);
    for (index_t b = lo; b < hi; ++b) {
      sub_batches.push_back((*batches_)[static_cast<std::size_t>(b)]);
      sub_ids.push_back(b);
    }
  }
  if (sub_batches.empty()) return 0.0;

  auto per_row = p_.partitioned_->sample_bulk(cluster, sub_batches, sub_ids,
                                              epoch_seed);
  cluster.add_overhead(kPhaseSampling, launch * kKernelsPerLayer * num_layers);

  // Concatenating the per-row results restores sub-batch order; place each
  // sample at its canonical queue position (rank (i, m%c), step m/c).
  std::size_t q = 0;
  for (auto& row_samples : per_row) {
    for (auto& ms : row_samples) {
      const index_t b = sub_ids[q++];
      const index_t i = row_assign_.owner(b);
      const index_t m = b - row_assign_.begin(i);
      const int rank = grid.rank_of(static_cast<int>(i), static_cast<int>(m % c));
      queues_[static_cast<std::size_t>(rank)][static_cast<std::size_t>(m / c)] =
          std::move(ms);
    }
  }
  return clock() - before;
}

double StagedPipeline::fetch_step(index_t t, std::vector<DenseF>& gathered) {
  Cluster& cluster = p_.cluster_;
  const double before = clock();
  const int p = cluster.size();
  // Feature fetching: all-to-allv across process columns (§6.2).
  std::vector<std::vector<index_t>> wanted(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const MinibatchSample& s =
        queues_[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)];
    if (has_sample(s)) wanted[static_cast<std::size_t>(r)] = s.input_vertices();
  }
  gathered = p_.features_.fetch_all(cluster, wanted, "fetch");
  return clock() - before;
}

double StagedPipeline::train_step(index_t t, const std::vector<DenseF>& gathered) {
  Cluster& cluster = p_.cluster_;
  const double before = clock();
  const int p = cluster.size();
  const std::size_t param_bytes = p_.model_.param_bytes();

  // Propagation: fwd/bwd per rank, then gradient all-reduce.
  double max_prop = 0.0;
  int active = 0;
  for (int r = 0; r < p; ++r) {
    MinibatchSample& sample =
        queues_[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)];
    if (!has_sample(sample)) continue;
    std::vector<int> labels(sample.batch_vertices.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = p_.ds_.labels[static_cast<std::size_t>(sample.batch_vertices[i])];
    }
    Timer timer;
    const LossResult res =
        p_.model_.train_step(sample, gathered[static_cast<std::size_t>(r)], labels);
    max_prop = std::max(max_prop, timer.seconds());
    loss_sum_ += res.loss * static_cast<double>(labels.size());
    correct_ += res.correct;
    seen_ += static_cast<index_t>(labels.size());
    ++active;
    sample = MinibatchSample{};  // trained — release the round's memory
  }
  if (active > 0) {
    // Shared-model gradient accumulation across ranks == all-reduce sum;
    // average and step once (identical to synchronous DDP).
    Timer timer;
    p_.model_.scale_grads(1.0f / static_cast<float>(active));
    p_.optimizer_->step(p_.model_.params());
    p_.model_.zero_grads();
    cluster.add_compute("propagation", max_prop + timer.seconds());
    if (p > 1) {
      cluster.record_comm(
          "propagation",
          cluster.cost_model().allreduce(cluster.grid().all_ranks(), param_bytes),
          param_bytes * static_cast<std::size_t>(p),
          static_cast<std::size_t>(2 * (p - 1)));
    }
  }
  return clock() - before;
}

}  // namespace dms
