#include "train/staged_pipeline.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/minibatch.hpp"
#include "graph/partition.hpp"

namespace dms {

namespace {

/// Kernel launches per layer of the bulk sampling pass (SpGEMM, prefix sum,
/// sample, extract) — the per-call overhead that bulk sampling amortizes.
constexpr double kKernelsPerLayer = 4.0;

bool has_sample(const MinibatchSample& s) { return !s.batch_vertices.empty(); }

/// Payload of one materialized minibatch crossing the sampler → trainer
/// boundary: batch ids plus every layer's sampled adjacency and its
/// row/column vertex maps — exactly what train_step consumes.
std::size_t sample_bytes(const MinibatchSample& s) {
  std::size_t b = s.batch_vertices.size() * sizeof(index_t);
  for (const LayerSample& l : s.layers) {
    b += l.adj.bytes();
    b += l.row_vertices.size() * sizeof(index_t);
    b += l.col_vertices.size() * sizeof(index_t);
  }
  return b;
}

}  // namespace

double StagedPipeline::clock() const {
  return p_.cluster_.total_compute() + p_.cluster_.total_comm();
}

void StagedPipeline::assign_batches(const std::vector<index_t>& remaining,
                                    index_t boundary) {
  Cluster& cluster = p_.cluster_;
  const ProcessGrid& grid = cluster.grid();
  const int p = cluster.size();
  const auto n = static_cast<index_t>(remaining.size());
  index_t max_steps = boundary;

  if (p_.cfg_.mode != DistMode::kPartitioned) {
    // §5.1/§6.1: minibatches block-assigned to the alive ranks; each rank
    // trains its block in order. With every rank alive this is exactly the
    // classic BlockPartition(k, p) assignment. kDisaggregated inherits this
    // branch unchanged: its p *logical slots* carry the replicated
    // placement (same step grouping, same accumulation order — the source
    // of its loss bit-identity to kReplicated), and only the physical
    // execution maps slots onto trainer ranks (DESIGN.md §14).
    const std::vector<int> alive = cluster.alive_ranks();
    check(!alive.empty() || n == 0,
          "StagedPipeline: every rank has crashed — cannot continue the epoch");
    const BlockPartition bp(n, static_cast<index_t>(std::max<std::size_t>(
                                   1, alive.size())));
    for (std::size_t a = 0; a < alive.size(); ++a) {
      const index_t lo = bp.begin(static_cast<index_t>(a));
      const index_t hi = bp.end(static_cast<index_t>(a));
      for (index_t m = lo; m < hi; ++m) {
        placement_[static_cast<std::size_t>(remaining[static_cast<std::size_t>(m)])] =
            Placement{alive[a], boundary + (m - lo)};
      }
      max_steps = std::max(max_steps, boundary + (hi - lo));
    }
  } else {
    // §5.2: minibatches block-assigned to the alive process rows; each
    // row's surviving replicas round-robin its block. All rows/columns
    // alive reproduces rank (i, m%c), step m/c exactly.
    const index_t rows = grid.rows();
    const int c = grid.replication();
    std::vector<std::vector<int>> row_ranks;  // alive ranks per alive row
    std::vector<index_t> alive_rows;
    for (index_t i = 0; i < rows; ++i) {
      std::vector<int> ranks;
      for (int j = 0; j < c; ++j) {
        const int r = grid.rank_of(static_cast<int>(i), j);
        if (cluster.alive(r)) ranks.push_back(r);
      }
      if (!ranks.empty()) {
        alive_rows.push_back(i);
        row_ranks.push_back(std::move(ranks));
      }
    }
    check(!alive_rows.empty() || n == 0,
          "StagedPipeline: every process row has crashed — cannot continue "
          "the epoch");
    const BlockPartition bp(
        n, static_cast<index_t>(std::max<std::size_t>(1, alive_rows.size())));
    for (std::size_t a = 0; a < alive_rows.size(); ++a) {
      const std::vector<int>& ranks = row_ranks[a];
      const auto nc = static_cast<index_t>(ranks.size());
      const index_t lo = bp.begin(static_cast<index_t>(a));
      const index_t hi = bp.end(static_cast<index_t>(a));
      for (index_t m = lo; m < hi; ++m) {
        const index_t local = m - lo;
        placement_[static_cast<std::size_t>(remaining[static_cast<std::size_t>(m)])] =
            Placement{ranks[static_cast<std::size_t>(local % nc)],
                      boundary + local / nc};
      }
      if (hi > lo) {
        max_steps = std::max(max_steps, boundary + ceil_div(hi - lo, nc));
      }
    }
  }

  steps_ = max_steps;
  step_batches_.assign(static_cast<std::size_t>(p),
                       std::vector<index_t>(static_cast<std::size_t>(steps_), -1));
  for (std::size_t b = 0; b < placement_.size(); ++b) {
    const Placement& pl = placement_[b];
    if (pl.rank >= 0 && pl.step < steps_) {
      step_batches_[static_cast<std::size_t>(pl.rank)]
                   [static_cast<std::size_t>(pl.step)] =
          static_cast<index_t>(b);
    }
  }
  queues_.resize(static_cast<std::size_t>(p));
  for (auto& q : queues_) q.resize(static_cast<std::size_t>(steps_));
}

bool StagedPipeline::recover_at_boundary(std::size_t g) {
  Cluster& cluster = p_.cluster_;
  cluster.begin_superstep();
  if (!cluster.has_faults()) return false;
  const int p = cluster.size();
  bool changed = false;
  for (int r = 0; r < p; ++r) {
    if (alive_[static_cast<std::size_t>(r)] != (cluster.alive(r) ? 1 : 0)) {
      changed = true;
      break;
    }
  }
  if (!changed) return false;
  // Crash recovery is not supported across disaggregated roles: a dead
  // sampler row loses adjacency blocks and a dead trainer its feature
  // block, and neither re-partitioning is implemented. Transient loss and
  // stragglers still apply (they never reach this path).
  check(p_.cfg_.mode != DistMode::kDisaggregated,
        "StagedPipeline: rank crash in disaggregated mode — crash recovery "
        "requires a colocated (replicated/partitioned) pipeline");
  for (int r = 0; r < p; ++r) {
    alive_[static_cast<std::size_t>(r)] = cluster.alive(r) ? 1 : 0;
  }

  // Degrade-and-continue: everything at or past this boundary is not yet
  // sampled (rounds train to completion before the next boundary), so the
  // whole remainder re-partitions onto the survivors and the remaining
  // rounds are re-planned — the sub-epoch re-partitioning of
  // plan_bulk_rounds. Sample content is placement-independent, so only the
  // schedule changes.
  const index_t boundary =
      g < rounds_.size() ? rounds_[g].step_begin : steps_;
  std::vector<index_t> remaining;
  for (std::size_t b = 0; b < placement_.size(); ++b) {
    if (placement_[b].step >= boundary) {
      remaining.push_back(static_cast<index_t>(b));
    }
  }
  assign_batches(remaining, boundary);
  rounds_.resize(g);
  for (const BulkRound& r : plan_bulk_rounds(steps_ - boundary, bulk_steps_)) {
    rounds_.push_back({boundary + r.step_begin, boundary + r.step_end});
  }
  return true;
}

EpochStats StagedPipeline::run(int epoch) {
  TrainCursor cursor;
  cursor.epoch = epoch;
  return run_range(epoch, -1, &cursor);
}

EpochStats StagedPipeline::run_range(int epoch, index_t end_round,
                                     TrainCursor* cursor) {
  Cluster& cluster = p_.cluster_;
  const PipelineConfig& cfg = p_.cfg_;
  check(cursor != nullptr, "StagedPipeline::run_range: cursor required");
  check(cursor->epoch == epoch,
        "StagedPipeline::run_range: cursor belongs to a different epoch");
  cluster.reset_clock();
  if (p_.disagg_cluster_) p_.disagg_cluster_->reset_clock();
  if (p_.pending_warmup_) {
    // The kPreSample warmup bills its one-time cost to the first trained
    // epoch as its own overhead phase: it reaches total_time() and the
    // breakdown, but stays outside `sampling`, so the overlap invariant
    // (overlap_saved + stall == sampling + fetch) is untouched.
    cluster.add_overhead("warmup", p_.warmup_cost_);
    p_.pending_warmup_ = false;
  }
  const std::uint64_t epoch_seed =
      derive_seed(cfg.seed, 0xe90c, static_cast<std::uint64_t>(epoch));
  const auto batches = make_epoch_batches(p_.ds_.train_idx, cfg.batch_size, epoch_seed);
  batches_ = &batches;

  const int p = cluster.size();
  const auto k_total = static_cast<index_t>(batches.size());
  placement_.assign(static_cast<std::size_t>(k_total), Placement{});
  alive_.resize(static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    alive_[static_cast<std::size_t>(r)] = cluster.alive(r) ? 1 : 0;
  }
  std::vector<index_t> all_ids(static_cast<std::size_t>(k_total));
  std::iota(all_ids.begin(), all_ids.end(), index_t{0});
  assign_batches(all_ids, 0);

  // Bulk rounds: cfg.bulk_k minibatches across all ranks per round. With
  // k=all, the overlapped executor still slices the epoch into
  // prefetch_rounds rounds — a monolithic bulk would leave nothing to
  // double-buffer (the sync path keeps the single bulk of §6.1).
  check(cfg.prefetch_rounds >= 1, "Pipeline: prefetch_rounds must be >= 1");
  bulk_steps_ = 0;
  const int active = std::max(1, cluster.num_alive());
  if (cfg.bulk_k > 0) {
    bulk_steps_ = std::max<index_t>(1, ceil_div(cfg.bulk_k, active));
  } else if (cfg.overlap && cfg.prefetch_rounds > 1 && steps_ > 0) {
    bulk_steps_ = std::max<index_t>(1, ceil_div(steps_, cfg.prefetch_rounds));
  }
  rounds_ = plan_bulk_rounds(steps_, bulk_steps_);
  const auto begin_round = static_cast<std::size_t>(cursor->next_round);
  check(begin_round <= rounds_.size(),
        "StagedPipeline::run_range: cursor round past the epoch schedule");

  const FeatureCacheStats cache_before = p_.features_.cache_stats();
  const FaultStats fault_before = cluster.fault_stats();
  // Plan-op breakdown: the executor's table is cumulative, so diff the
  // epoch's delta below.
  const std::map<std::string, double> ops_before =
      p_.sampler_->op_time_breakdown();
  loss_sum_ = cursor->loss_sum;
  correct_ = cursor->correct;
  seen_ = cursor->seen;
  double stall = 0.0;
  double prev_round_unhidden = 0.0;
  // Hoisted per-step fetch buffer: move-assigned by fetch_step each step, so
  // the container itself is reused across the epoch (the samplers' Workspace
  // arenas cover the sampling-side scratch the same way).
  std::vector<DenseF> gathered;

  std::size_t g = begin_round;
  for (; g < rounds_.size(); ++g) {
    if (end_round >= 0 && static_cast<index_t>(g) >= end_round) break;
    // Every bulk-round boundary is a fault superstep: crashes land here,
    // and the remainder of the epoch re-partitions onto the survivors.
    recover_at_boundary(g);
    if (g >= rounds_.size()) break;  // re-plan can only shrink past the end

    const double s_cost = sample_round(rounds_[g], epoch_seed);
    if (cfg.overlap) {
      // Round g is sampled while round g-1 trains; round 0 is pipeline fill.
      const double hid =
          g == begin_round ? 0.0 : std::min(s_cost, prev_round_unhidden);
      cluster.credit_overlap(hid);
      stall += s_cost - hid;
    }

    double round_unhidden = 0.0;
    double prev_prop = -1.0;  // <0: no propagation yet in this round
    for (index_t t = rounds_[g].step_begin; t < rounds_[g].step_end; ++t) {
      const double f_cost = fetch_step(t, gathered);
      const double p_cost = train_step(t, gathered);
      if (cfg.overlap) {
        // The fetch for step t is issued during the propagation of step
        // t-1; the round's first fetch has no propagation to hide under.
        const double hid = prev_prop < 0.0 ? 0.0 : std::min(f_cost, prev_prop);
        cluster.credit_overlap(hid);
        stall += f_cost - hid;
        round_unhidden += (f_cost - hid) + p_cost;
      }
      prev_prop = p_cost;
    }
    prev_round_unhidden = round_unhidden;
  }

  cursor->next_round = static_cast<index_t>(g);
  cursor->total_rounds = static_cast<index_t>(rounds_.size());
  cursor->loss_sum = loss_sum_;
  cursor->correct = correct_;
  cursor->seen = seen_;

  EpochStats stats;
  // The sampler → trainer handoff is part of every disaggregated round's
  // cost (inside s_cost), so it belongs to the prefetchable `sampling` side
  // of the overlap invariant.
  stats.sampling = cluster.phase_time(kPhaseSampling) +
                   cluster.phase_time(kPhaseProbability) +
                   cluster.phase_time(kPhaseExtraction) +
                   cluster.phase_time("handoff");
  stats.warmup = cluster.phase_time("warmup");
  stats.fetch = cluster.phase_time("fetch");
  stats.propagation = cluster.phase_time("propagation");
  stats.total = cluster.total_time();
  stats.loss = seen_ > 0 ? loss_sum_ / static_cast<double>(seen_) : 0.0;
  stats.train_acc =
      seen_ > 0 ? static_cast<double>(correct_) / static_cast<double>(seen_) : 0.0;
  stats.overlap_saved = cluster.overlap_credit();
  stats.stall = cfg.overlap ? stall : 0.0;
  const FeatureCacheStats d = p_.features_.cache_stats() - cache_before;
  stats.cache_hits = d.hits;
  stats.cache_misses = d.misses;
  stats.cache_local = d.local;
  stats.cache_pinned_hits = d.pinned_hits;
  stats.fetch_bytes = d.bytes_moved;
  stats.fetch_bytes_saved = d.bytes_saved;
  stats.compute_phases = cluster.compute_time();
  for (const auto& [phase, s] : cluster.comm_stats()) {
    stats.comm_phases[phase] = s.seconds;
  }
  for (const auto& [op, seconds] : p_.sampler_->op_time_breakdown()) {
    const auto it = ops_before.find(op);
    stats.sampler_ops[op] =
        seconds - (it == ops_before.end() ? 0.0 : it->second);
  }
  const FaultStats fd = cluster.fault_stats() - fault_before;
  stats.fault_straggler = fd.straggler_seconds;
  stats.fault_retry = fd.retry_seconds;
  stats.fault_redistribution = fd.redistribution_seconds;
  stats.retry_bytes = fd.retry_bytes;
  stats.retry_messages = fd.retry_messages;
  stats.crashed_ranks = fd.crashed_ranks;
  batches_ = nullptr;
  return stats;
}

double StagedPipeline::sample_round(const BulkRound& round,
                                    std::uint64_t epoch_seed) {
  switch (p_.cfg_.mode) {
    case DistMode::kReplicated:
      return replicated_round(round, epoch_seed);
    case DistMode::kPartitioned:
      return partitioned_round(round, epoch_seed);
    case DistMode::kDisaggregated:
      return disaggregated_round(round, epoch_seed);
  }
  return 0.0;
}

double StagedPipeline::replicated_round(const BulkRound& round,
                                        std::uint64_t epoch_seed) {
  Cluster& cluster = p_.cluster_;
  const double before = clock();
  const int p = cluster.size();
  const double launch = cluster.cost_model().link().launch_overhead;
  const auto num_layers = static_cast<double>(p_.cfg_.fanouts.size());

  // Each rank samples this round's slice of its assigned batches with zero
  // communication; the round costs the max over ranks.
  double max_t = 0.0;
  for (int r = 0; r < p; ++r) {
    std::vector<std::vector<index_t>> chunk;
    std::vector<index_t> ids;
    for (index_t t = round.step_begin; t < round.step_end; ++t) {
      const index_t b =
          step_batches_[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)];
      if (b < 0) continue;
      chunk.push_back((*batches_)[static_cast<std::size_t>(b)]);
      ids.push_back(b);
    }
    if (ids.empty()) continue;
    Timer t;
    auto samples = p_.sampler_->sample_bulk(chunk, ids, epoch_seed);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      const Placement& pl = placement_[static_cast<std::size_t>(ids[i])];
      queues_[static_cast<std::size_t>(pl.rank)][static_cast<std::size_t>(pl.step)] =
          std::move(samples[i]);
    }
    max_t = std::max(max_t, t.seconds());
  }
  cluster.add_compute(kPhaseSampling, max_t);
  // Bulk sampling launches O(L) kernels per *round*, not per minibatch —
  // the amortization of §4.
  cluster.add_overhead(kPhaseSampling, launch * kKernelsPerLayer * num_layers);
  return clock() - before;
}

double StagedPipeline::partitioned_round(const BulkRound& round,
                                         std::uint64_t epoch_seed) {
  Cluster& cluster = p_.cluster_;
  const double before = clock();
  const ProcessGrid& grid = cluster.grid();
  const index_t rows = grid.rows();
  const int c = grid.replication();
  const double launch = cluster.cost_model().link().launch_overhead;
  const auto num_layers = static_cast<double>(p_.cfg_.fanouts.size());

  // The round needs, for every process row, the batches placed at steps
  // [step_begin, step_end) on the row's ranks. Sample content is
  // independent of which row materializes a batch (the determinism contract
  // derives randomness from global batch ids), so the sub-epoch can be
  // re-partitioned freely.
  std::vector<std::vector<index_t>> sub_batches;
  std::vector<index_t> sub_ids;
  for (index_t i = 0; i < rows; ++i) {
    for (index_t t = round.step_begin; t < round.step_end; ++t) {
      for (int j = 0; j < c; ++j) {
        const int r = grid.rank_of(static_cast<int>(i), j);
        const index_t b = step_batches_[static_cast<std::size_t>(r)]
                                       [static_cast<std::size_t>(t)];
        if (b < 0) continue;
        sub_batches.push_back((*batches_)[static_cast<std::size_t>(b)]);
        sub_ids.push_back(b);
      }
    }
  }
  if (sub_batches.empty()) return 0.0;

  auto per_row = p_.partitioned_->sample_bulk(cluster, sub_batches, sub_ids,
                                              epoch_seed);
  cluster.add_overhead(kPhaseSampling, launch * kKernelsPerLayer * num_layers);

  // Concatenating the per-row results restores sub-batch order; place each
  // sample at its queue position from the placement table.
  std::size_t q = 0;
  for (auto& row_samples : per_row) {
    for (auto& ms : row_samples) {
      const Placement& pl = placement_[static_cast<std::size_t>(sub_ids[q++])];
      queues_[static_cast<std::size_t>(pl.rank)][static_cast<std::size_t>(pl.step)] =
          std::move(ms);
    }
  }
  return clock() - before;
}

double StagedPipeline::disaggregated_round(const BulkRound& round,
                                           std::uint64_t epoch_seed) {
  Cluster& cluster = p_.cluster_;
  Cluster& sub = *p_.disagg_cluster_;
  const DisaggLayout& layout = p_.disagg_;
  const double before = clock();
  const int p = cluster.size();
  const double launch = cluster.cost_model().link().launch_overhead;
  const auto num_layers = static_cast<double>(p_.cfg_.fanouts.size());

  // The round's batches in (step, slot) order — the same logical schedule
  // the replicated path trains; which sampler row materializes a batch is
  // irrelevant to its content (the determinism contract).
  std::vector<std::vector<index_t>> sub_batches;
  std::vector<index_t> sub_ids;
  for (index_t t = round.step_begin; t < round.step_end; ++t) {
    for (int r = 0; r < p; ++r) {
      const index_t b = step_batches_[static_cast<std::size_t>(r)]
                                     [static_cast<std::size_t>(t)];
      if (b < 0) continue;
      sub_batches.push_back((*batches_)[static_cast<std::size_t>(b)]);
      sub_ids.push_back(b);
    }
  }
  if (sub_batches.empty()) return 0.0;

  // Sampler role: the partitioned algorithm runs over the sampler sub-grid
  // and records on the sub-cluster, whose tables then drain raw into the
  // main clock — one clock covers both roles.
  auto per_row = p_.partitioned_->sample_bulk(sub, sub_batches, sub_ids,
                                              epoch_seed);
  sub.drain_into(cluster);
  cluster.add_overhead(kPhaseSampling, launch * kKernelsPerLayer * num_layers);

  // Handoff: each materialized sample streams from the sampler row that
  // produced it to the trainer executing its slot. A trainer receives its
  // samples serially (sum of p2p times); trainers receive concurrently
  // (max). record_comm on the main cluster means transient-loss fault
  // plans retry the handoff like any other modeled message.
  const CostModel& model = cluster.cost_model();
  std::vector<double> per_trainer(static_cast<std::size_t>(layout.trainers),
                                  0.0);
  std::size_t total_bytes = 0;
  std::size_t total_msgs = 0;
  std::size_t q = 0;
  int row_i = 0;
  for (auto& row_samples : per_row) {
    const int src = layout.sampler_rank(layout.sampler_grid.rank_of(row_i, 0));
    for (auto& ms : row_samples) {
      const Placement& pl = placement_[static_cast<std::size_t>(sub_ids[q++])];
      const int tj = layout.trainer_of_slot(pl.rank);  // pl.rank is the slot
      const std::size_t bytes = sample_bytes(ms);
      per_trainer[static_cast<std::size_t>(tj)] +=
          model.p2p(src, layout.trainer_rank(tj), bytes);
      total_bytes += bytes;
      ++total_msgs;
      queues_[static_cast<std::size_t>(pl.rank)][static_cast<std::size_t>(pl.step)] =
          std::move(ms);
    }
    ++row_i;
  }
  const double worst =
      *std::max_element(per_trainer.begin(), per_trainer.end());
  cluster.record_comm("handoff", worst, total_bytes, total_msgs);
  return clock() - before;
}

double StagedPipeline::fetch_step(index_t t, std::vector<DenseF>& gathered) {
  Cluster& cluster = p_.cluster_;
  const double before = clock();
  const int p = cluster.size();
  if (p_.cfg_.mode != DistMode::kDisaggregated) {
    // Feature fetching: all-to-allv across process columns (§6.2).
    std::vector<std::vector<index_t>> wanted(static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) {
      const MinibatchSample& s =
          queues_[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)];
      if (has_sample(s)) wanted[static_cast<std::size_t>(r)] = s.input_vertices();
    }
    gathered = p_.features_.fetch_all(cluster, wanted, "fetch");
    return clock() - before;
  }

  // Disaggregated: the store spans only the t trainer ranks, and each
  // trainer executes the p/t slots mapped to it sequentially — so step t's
  // fetch runs as ceil(p/t) waves of the trainer-grid all-to-allv, wave w
  // covering slots [w*t, w*t + t), one per trainer. Gathered matrices stay
  // slot-indexed for train_step.
  const DisaggLayout& layout = p_.disagg_;
  const int trainers = layout.trainers;
  std::vector<DenseF> slot_gathered(static_cast<std::size_t>(p));
  for (int w = 0; w * trainers < p; ++w) {
    std::vector<std::vector<index_t>> wanted(
        static_cast<std::size_t>(trainers));
    bool any = false;
    for (int j = 0; j < trainers; ++j) {
      const int slot = w * trainers + j;
      if (slot >= p) break;
      const MinibatchSample& s =
          queues_[static_cast<std::size_t>(slot)][static_cast<std::size_t>(t)];
      if (has_sample(s)) {
        wanted[static_cast<std::size_t>(j)] = s.input_vertices();
        any = true;
      }
    }
    if (!any) continue;
    auto wave = p_.features_.fetch_all(cluster, wanted, "fetch");
    for (int j = 0; j < trainers; ++j) {
      const int slot = w * trainers + j;
      if (slot >= p) break;
      slot_gathered[static_cast<std::size_t>(slot)] =
          std::move(wave[static_cast<std::size_t>(j)]);
    }
  }
  gathered = std::move(slot_gathered);
  return clock() - before;
}

double StagedPipeline::train_step(index_t t, const std::vector<DenseF>& gathered) {
  Cluster& cluster = p_.cluster_;
  const double before = clock();
  const int p = cluster.size();
  const std::size_t param_bytes = p_.model_.param_bytes();
  const bool disagg = p_.cfg_.mode == DistMode::kDisaggregated;

  // Propagation: fwd/bwd per rank, then gradient all-reduce. The slot loop
  // (order, accumulation, averaging) is identical in every mode — that is
  // the disaggregated loss bit-identity. Only the *timing* differs under
  // disaggregation: a trainer executes its slots serially (sum), trainers
  // run concurrently (max over trainers instead of max over slots).
  std::vector<double> trainer_prop(
      disagg ? static_cast<std::size_t>(p_.disagg_.trainers) : 0, 0.0);
  double max_prop = 0.0;
  int active = 0;
  for (int r = 0; r < p; ++r) {
    MinibatchSample& sample =
        queues_[static_cast<std::size_t>(r)][static_cast<std::size_t>(t)];
    if (!has_sample(sample)) continue;
    std::vector<int> labels(sample.batch_vertices.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = p_.ds_.labels[static_cast<std::size_t>(sample.batch_vertices[i])];
    }
    Timer timer;
    const LossResult res =
        p_.model_.train_step(sample, gathered[static_cast<std::size_t>(r)], labels);
    if (disagg) {
      trainer_prop[static_cast<std::size_t>(p_.disagg_.trainer_of_slot(r))] +=
          timer.seconds();
    } else {
      max_prop = std::max(max_prop, timer.seconds());
    }
    loss_sum_ += res.loss * static_cast<double>(labels.size());
    correct_ += res.correct;
    seen_ += static_cast<index_t>(labels.size());
    ++active;
    sample = MinibatchSample{};  // trained — release the round's memory
  }
  if (active > 0) {
    if (disagg) {
      max_prop = *std::max_element(trainer_prop.begin(), trainer_prop.end());
    }
    // Shared-model gradient accumulation across ranks == all-reduce sum;
    // average and step once (identical to synchronous DDP). Only surviving
    // ranks participate in the all-reduce — under disaggregation that is
    // the trainer ranks [s, p): samplers hold no model replica.
    Timer timer;
    p_.model_.scale_grads(1.0f / static_cast<float>(active));
    p_.optimizer_->step(p_.model_.params());
    p_.model_.zero_grads();
    cluster.add_compute("propagation", max_prop + timer.seconds());
    std::vector<int> group;
    if (disagg) {
      group.reserve(static_cast<std::size_t>(p_.disagg_.trainers));
      for (int j = 0; j < p_.disagg_.trainers; ++j) {
        group.push_back(p_.disagg_.trainer_rank(j));
      }
    } else {
      group = cluster.alive_ranks();
    }
    if (group.size() > 1) {
      cluster.record_comm(
          "propagation",
          cluster.cost_model().allreduce(group, param_bytes),
          param_bytes * group.size(),
          2 * (group.size() - 1));
    }
  }
  return clock() - before;
}

}  // namespace dms
