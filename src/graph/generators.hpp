// Synthetic graph generators used to stand in for the paper's datasets
// (Table 3). R-MAT reproduces the skewed degree distributions of real
// web/citation/protein graphs; planted-partition provides labeled structure
// for the accuracy experiments (§8.1.3).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace dms {

/// R-MAT (recursive matrix) generator parameters.
struct RmatParams {
  int scale = 14;              ///< n = 2^scale vertices
  double edge_factor = 16.0;   ///< directed edges per vertex (before dedup)
  double a = 0.57, b = 0.19, c = 0.19;  ///< quadrant probabilities (d = 1-a-b-c)
  bool remove_self_loops = true;
  std::uint64_t seed = 1;
};

/// Generates an R-MAT graph. Duplicate edges are combined, so the realized
/// average degree is slightly below edge_factor on skewed settings.
Graph generate_rmat(const RmatParams& params);

/// Erdős–Rényi G(n, m) with m ≈ n*avg_degree directed edges.
Graph generate_erdos_renyi(index_t n, double avg_degree, std::uint64_t seed);

/// Planted-partition (stochastic block model) graph: n vertices split evenly
/// into num_classes blocks; each vertex draws ~avg_degree neighbors, a
/// fraction p_intra of them inside its own block. Labels are recoverable
/// from structure, so a GNN can be trained to high accuracy.
Graph generate_planted_partition(index_t n, int num_classes, double avg_degree,
                                 double p_intra, std::uint64_t seed);

}  // namespace dms
