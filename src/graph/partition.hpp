// Block-row partitioning helpers shared by the distributed matrices and the
// 1.5D feature store (§5, §6).
#pragma once

#include <vector>

#include "common/types.hpp"

namespace dms {

/// Describes a 1D block-row partition of `total` rows into `parts` blocks.
/// Blocks are contiguous; the first (total % parts) blocks get one extra row
/// — the standard balanced block distribution.
class BlockPartition {
 public:
  BlockPartition() = default;
  BlockPartition(index_t total, index_t parts);

  /// Irregular partition from explicit offsets (offsets[0] == 0, ascending).
  static BlockPartition from_offsets(std::vector<index_t> offsets);

  index_t total() const { return total_; }
  index_t parts() const { return parts_; }

  index_t begin(index_t part) const { return offsets_[static_cast<std::size_t>(part)]; }
  index_t end(index_t part) const { return offsets_[static_cast<std::size_t>(part) + 1]; }
  index_t size(index_t part) const { return end(part) - begin(part); }

  /// Which block owns global row g. O(log parts).
  index_t owner(index_t g) const;

  /// Local index of global row g within its owner block.
  index_t local(index_t g) const { return g - begin(owner(g)); }

  const std::vector<index_t>& offsets() const { return offsets_; }

 private:
  index_t total_ = 0;
  index_t parts_ = 0;
  std::vector<index_t> offsets_;  // parts+1 entries
};

}  // namespace dms
