#include "graph/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace dms {

namespace {

/// Random fp32 features in [-1, 1] (performance datasets; Protein's features
/// were random in the paper as well).
DenseF random_features(index_t n, int f, std::uint64_t seed) {
  DenseF feats(n, f);
  Pcg32 rng(seed, 0x5ee);
  for (index_t i = 0; i < n; ++i) {
    float* row = feats.row(i);
    for (int j = 0; j < f; ++j) row[j] = static_cast<float>(2.0 * rng.uniform() - 1.0);
  }
  return feats;
}

/// Random labels + split for performance datasets (accuracy not meaningful).
void finish_performance_dataset(Dataset& ds, int num_classes, double train_fraction,
                                std::uint64_t seed) {
  const index_t n = ds.num_vertices();
  ds.num_classes = num_classes;
  ds.labels.resize(static_cast<std::size_t>(n));
  Pcg32 rng(seed, 0xab1);
  for (index_t i = 0; i < n; ++i) {
    ds.labels[static_cast<std::size_t>(i)] = static_cast<int>(rng.bounded(num_classes));
  }
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  for (index_t i = n - 1; i > 0; --i) {
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(rng.bounded64(i + 1))]);
  }
  const auto train_n = static_cast<index_t>(train_fraction * static_cast<double>(n));
  const index_t val_n = train_n / 4;
  ds.train_idx.assign(perm.begin(), perm.begin() + train_n);
  ds.val_idx.assign(perm.begin() + train_n, perm.begin() + train_n + val_n);
  ds.test_idx.assign(perm.begin() + train_n + val_n, perm.end());
  std::sort(ds.train_idx.begin(), ds.train_idx.end());
  std::sort(ds.val_idx.begin(), ds.val_idx.end());
  std::sort(ds.test_idx.begin(), ds.test_idx.end());
}

}  // namespace

Dataset make_products_sim(const StandInConfig& cfg) {
  RmatParams p;
  p.scale = 15 + cfg.scale_shift;  // 32768 vertices by default
  p.edge_factor = 53.0;            // paper: avg degree 53
  p.a = 0.55; p.b = 0.2; p.c = 0.2;
  p.seed = cfg.seed;
  Dataset ds;
  ds.name = "products-sim";
  ds.graph = generate_rmat(p);
  ds.features = random_features(ds.num_vertices(), cfg.feature_dim,
                                derive_seed(cfg.seed, 1));
  // Train fraction chosen so the minibatch count tracks the paper's 196
  // batches (relative to Papers' 1172 and Protein's 1024).
  finish_performance_dataset(ds, 47, 2.0 * cfg.train_fraction, derive_seed(cfg.seed, 2));
  return ds;
}

Dataset make_papers_sim(const StandInConfig& cfg) {
  RmatParams p;
  p.scale = 16 + cfg.scale_shift;  // 65536 vertices by default
  p.edge_factor = 29.0;            // paper: avg degree 29
  p.a = 0.57; p.b = 0.19; p.c = 0.19;
  p.seed = derive_seed(cfg.seed, 10);
  Dataset ds;
  ds.name = "papers-sim";
  ds.graph = generate_rmat(p);
  ds.features = random_features(ds.num_vertices(), cfg.feature_dim,
                                derive_seed(cfg.seed, 11));
  // ~2x Products' batch count at the default scale shift (paper: 1172 vs 196,
  // tempered by CPU feasibility).
  finish_performance_dataset(ds, 172, 2.0 * cfg.train_fraction, derive_seed(cfg.seed, 12));
  return ds;
}

Dataset make_protein_sim(const StandInConfig& cfg) {
  RmatParams p;
  p.scale = 14 + cfg.scale_shift;  // 16384 vertices by default
  p.edge_factor = 120.0;           // densest dataset (paper: 241)
  p.a = 0.5; p.b = 0.22; p.c = 0.22;
  p.seed = derive_seed(cfg.seed, 20);
  Dataset ds;
  ds.name = "protein-sim";
  ds.graph = generate_rmat(p);
  ds.features = random_features(ds.num_vertices(), cfg.feature_dim,
                                derive_seed(cfg.seed, 21));
  // Protein has few vertices but the paper's second-highest batch count
  // (1024): use half the vertex set as training vertices.
  finish_performance_dataset(ds, 16, 5.0 * cfg.train_fraction, derive_seed(cfg.seed, 22));
  return ds;
}

Dataset make_planted_dataset(index_t n, int num_classes, int feature_dim,
                             double avg_degree, double p_intra, std::uint64_t seed) {
  Dataset ds;
  ds.name = "planted";
  ds.graph = generate_planted_partition(n, num_classes, avg_degree, p_intra, seed);
  ds.num_classes = num_classes;
  const index_t block = ceil_div(n, num_classes);

  // Class-correlated features: per-class Gaussian centroid + noise.
  Pcg32 rng(derive_seed(seed, 100), 0xfe1);
  DenseF centroids(num_classes, feature_dim);
  for (int cls = 0; cls < num_classes; ++cls) {
    float* row = centroids.row(cls);
    for (int j = 0; j < feature_dim; ++j) row[j] = static_cast<float>(rng.normal());
  }
  ds.features = DenseF(n, feature_dim);
  ds.labels.resize(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    const auto cls = static_cast<int>(std::min<index_t>(v / block, num_classes - 1));
    ds.labels[static_cast<std::size_t>(v)] = cls;
    float* row = ds.features.row(v);
    const float* cen = centroids.row(cls);
    for (int j = 0; j < feature_dim; ++j) {
      row[j] = cen[j] + static_cast<float>(0.8 * rng.normal());
    }
  }

  // 50/25/25 split, stratified by construction (vertices are class-ordered,
  // and we stride so every class appears in every split).
  for (index_t v = 0; v < n; ++v) {
    switch (v % 4) {
      case 0:
      case 1: ds.train_idx.push_back(v); break;
      case 2: ds.val_idx.push_back(v); break;
      default: ds.test_idx.push_back(v); break;
    }
  }
  return ds;
}

Dataset make_standin_by_name(const std::string& name, const StandInConfig& cfg) {
  if (name == "products") return make_products_sim(cfg);
  if (name == "papers") return make_papers_sim(cfg);
  if (name == "protein") return make_protein_sim(cfg);
  throw DmsError("unknown dataset stand-in: " + name);
}

}  // namespace dms
