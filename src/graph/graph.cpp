#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

namespace dms {

Graph::Graph(CsrMatrix adjacency) : adj_(std::move(adjacency)) {
  check(adj_.rows() == adj_.cols(), "Graph: adjacency matrix must be square");
}

index_t Graph::max_degree() const {
  index_t m = 0;
  for (index_t v = 0; v < num_vertices(); ++v) m = std::max(m, out_degree(v));
  return m;
}

std::string Graph::summary(const std::string& name) const {
  std::ostringstream os;
  os << name << ": |V|=" << num_vertices() << " |E|=" << num_edges()
     << " avg_deg=" << avg_degree() << " max_deg=" << max_degree();
  return os.str();
}

}  // namespace dms
