// Binary serialization for graphs and datasets, plus Matrix Market export.
//
// Generating the Table 3 stand-ins takes seconds, but real deployments load
// preprocessed graphs from disk (DistDGL/Quiver both ship partitioned
// binary formats); this module provides the equivalent so examples and
// downstream users can persist datasets between runs.
#pragma once

#include <string>

#include "graph/dataset.hpp"
#include "sparse/csr.hpp"

namespace dms {

/// Writes a CSR matrix in a little-endian binary format (magic "DMSC").
void save_csr(const CsrMatrix& m, const std::string& path);

/// Reads a matrix written by save_csr; validates the result. Throws
/// DmsError on malformed input.
CsrMatrix load_csr(const std::string& path);

/// Writes a full dataset (graph, features, labels, splits; magic "DMSD").
void save_dataset(const Dataset& ds, const std::string& path);

Dataset load_dataset(const std::string& path);

/// Exports the sparsity pattern in MatrixMarket coordinate format for
/// inspection with external tools.
void write_matrix_market(const CsrMatrix& m, const std::string& path);

}  // namespace dms
