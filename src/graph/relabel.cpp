#include "graph/relabel.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/types.hpp"

namespace dms {

void VertexRelabeling::map_inplace(std::vector<index_t>& ids) const {
  for (index_t& v : ids) v = map(v);
}

void VertexRelabeling::unmap_inplace(std::vector<index_t>& ids) const {
  for (index_t& v : ids) v = unmap(v);
}

VertexRelabeling degree_sorted_relabeling(const CsrMatrix& adj) {
  check(adj.rows() == adj.cols(), "degree_sorted_relabeling: adjacency not square");
  const index_t n = adj.rows();
  VertexRelabeling r;
  r.to_old.resize(static_cast<std::size_t>(n));
  std::iota(r.to_old.begin(), r.to_old.end(), index_t{0});
  std::sort(r.to_old.begin(), r.to_old.end(), [&](index_t a, index_t b) {
    const nnz_t da = adj.row_nnz(a), db = adj.row_nnz(b);
    if (da != db) return da > db;
    return a < b;  // degree ties keep original order (determinism)
  });
  r.to_new.resize(static_cast<std::size_t>(n));
  for (index_t nu = 0; nu < n; ++nu) {
    r.to_new[static_cast<std::size_t>(r.to_old[static_cast<std::size_t>(nu)])] = nu;
  }
  return r;
}

CsrMatrix relabel_adjacency(const CsrMatrix& adj, const VertexRelabeling& r) {
  check(adj.rows() == adj.cols(), "relabel_adjacency: adjacency not square");
  check(r.size() == adj.rows(), "relabel_adjacency: permutation size mismatch");
  const index_t n = adj.rows();
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> colidx;
  std::vector<value_t> vals;
  colidx.reserve(static_cast<std::size_t>(adj.nnz()));
  vals.reserve(static_cast<std::size_t>(adj.nnz()));
  std::vector<std::pair<index_t, value_t>> row;
  for (index_t nu = 0; nu < n; ++nu) {
    const index_t old_v = r.unmap(nu);
    const auto cols = adj.row_cols(old_v);
    const auto rvals = adj.row_vals(old_v);
    row.clear();
    for (std::size_t k = 0; k < cols.size(); ++k) {
      row.emplace_back(r.map(cols[k]), rvals[k]);
    }
    // Mapping a strictly-increasing column list through a permutation breaks
    // the ordering; re-sort to restore the CSR invariant (ids stay distinct).
    std::sort(row.begin(), row.end());
    for (const auto& [c, v] : row) {
      colidx.push_back(c);
      vals.push_back(v);
    }
    rowptr[static_cast<std::size_t>(nu) + 1] = static_cast<nnz_t>(colidx.size());
  }
  return CsrMatrix(n, n, std::move(rowptr), std::move(colidx), std::move(vals));
}

}  // namespace dms
