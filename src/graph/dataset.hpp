// Node-classification datasets: graph + features + labels + splits, plus a
// registry of scaled-down stand-ins for the paper's Table 3 datasets.
//
// Paper datasets:        Products (2.4M V, 126M E, 196 batches, f=100)
//                        Protein  (8.7M V, 1.3B E, 1024 batches, f=128)
//                        Papers   (111M V, 1.6B E, 1172 batches, f=128)
// The stand-ins match each dataset's *average degree* (the property §8.1.1
// attributes performance differences to: Protein 241 ≫ Products 53 ≫
// Papers 29) and the *relative* batch counts, at CPU-feasible scale.
// Protein's features were random in the paper too (§7.1).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sparse/dense.hpp"

namespace dms {

struct Dataset {
  std::string name;
  Graph graph;
  DenseF features;              ///< n × f, fp32
  std::vector<int> labels;      ///< n entries; class id or -1 (unlabeled)
  int num_classes = 0;
  std::vector<index_t> train_idx;
  std::vector<index_t> val_idx;
  std::vector<index_t> test_idx;

  index_t num_vertices() const { return graph.num_vertices(); }
  index_t feature_dim() const { return features.cols(); }

  /// Number of size-b minibatches in one training epoch.
  index_t num_batches(index_t batch_size) const {
    return ceil_div(static_cast<index_t>(train_idx.size()), batch_size);
  }
};

/// Parameters for the synthetic performance stand-ins. `scale_shift`
/// shrinks (negative) or grows (positive) the vertex count by powers of two
/// so examples/tests can run tiny versions of the same dataset.
struct StandInConfig {
  int scale_shift = 0;
  int feature_dim = 32;       ///< paper: 100-128; scaled for CPU
  double train_fraction = 0.10;
  std::uint64_t seed = 42;
};

/// OGB products stand-in: R-MAT, avg degree ≈ 50, moderately skewed.
Dataset make_products_sim(const StandInConfig& cfg = {});

/// OGB papers100M stand-in: R-MAT, avg degree ≈ 28, many vertices (the
/// "high vertex count, low density" regime of §8.1.1).
Dataset make_papers_sim(const StandInConfig& cfg = {});

/// HipMCL protein stand-in: R-MAT, avg degree ≈ 120 (densest of the three,
/// like the paper's Protein at 241), random features.
Dataset make_protein_sim(const StandInConfig& cfg = {});

/// Planted-partition dataset with class-correlated Gaussian features for the
/// accuracy experiments (§8.1.3): a GNN must reach high test accuracy.
Dataset make_planted_dataset(index_t n, int num_classes, int feature_dim,
                             double avg_degree, double p_intra,
                             std::uint64_t seed);

/// Lookup by name ("products", "papers", "protein"); throws on unknown name.
Dataset make_standin_by_name(const std::string& name, const StandInConfig& cfg = {});

}  // namespace dms
