#include "graph/partition.hpp"

#include <algorithm>

namespace dms {

BlockPartition::BlockPartition(index_t total, index_t parts)
    : total_(total), parts_(parts) {
  check(total >= 0 && parts > 0, "BlockPartition: bad arguments");
  offsets_.resize(static_cast<std::size_t>(parts) + 1);
  const index_t base = total / parts;
  const index_t extra = total % parts;
  offsets_[0] = 0;
  for (index_t p = 0; p < parts; ++p) {
    offsets_[static_cast<std::size_t>(p) + 1] =
        offsets_[static_cast<std::size_t>(p)] + base + (p < extra ? 1 : 0);
  }
}

BlockPartition BlockPartition::from_offsets(std::vector<index_t> offsets) {
  check(!offsets.empty() && offsets.front() == 0, "from_offsets: must start at 0");
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    check(offsets[i] <= offsets[i + 1], "from_offsets: offsets must be ascending");
  }
  BlockPartition p;
  p.total_ = offsets.back();
  p.parts_ = static_cast<index_t>(offsets.size()) - 1;
  p.offsets_ = std::move(offsets);
  return p;
}

index_t BlockPartition::owner(index_t g) const {
  check(g >= 0 && g < total_, "BlockPartition::owner: row out of range");
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), g);
  return static_cast<index_t>(it - offsets_.begin()) - 1;
}

}  // namespace dms
