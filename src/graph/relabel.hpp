// Degree-sorted vertex relabeling (the FlashMob layout idea, adapted):
// renumber vertices in descending out-degree order so the hottest adjacency
// rows — the high-degree vertices that random walks visit most often —
// occupy a dense, cache-resident prefix of the CSR arrays. Walk-shaped
// workloads touch rows with probability proportional to in-walk visit
// frequency, which on power-law graphs concentrates on the few hub
// vertices; after relabeling those rows share cache lines instead of being
// scattered across the full edge array.
//
// The pass is generic — any consumer (the walk engine, a future feature
// cache layout, samplers with their own staging) can relabel a graph,
// operate in the new id space, and map results back. Ties in degree break
// by original id, so the permutation is a pure function of the adjacency
// (deterministic across runs and thread counts).
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace dms {

/// A vertex renumbering: a bijection between original ("old") and relabeled
/// ("new") vertex ids.
struct VertexRelabeling {
  std::vector<index_t> to_new;  ///< old id → new id
  std::vector<index_t> to_old;  ///< new id → old id

  index_t size() const { return static_cast<index_t>(to_new.size()); }
  index_t map(index_t old_id) const {
    return to_new[static_cast<std::size_t>(old_id)];
  }
  index_t unmap(index_t new_id) const {
    return to_old[static_cast<std::size_t>(new_id)];
  }

  /// In-place map/unmap of id lists (frontiers, visited sets, walk roots).
  void map_inplace(std::vector<index_t>& ids) const;
  void unmap_inplace(std::vector<index_t>& ids) const;
};

/// Builds the descending-out-degree permutation of `adj` (a square CSR
/// adjacency). Equal degrees order by original id, making the relabeling a
/// deterministic function of the graph.
VertexRelabeling degree_sorted_relabeling(const CsrMatrix& adj);

/// Applies `r` to both dimensions of `adj`: row new_v of the result is the
/// adjacency row of r.unmap(new_v) with every column id mapped to its new
/// id and the row re-sorted to restore the CSR column invariant. The result
/// is the same graph under the new numbering (relabel → unmap round-trips
/// to the original edge set).
CsrMatrix relabel_adjacency(const CsrMatrix& adj, const VertexRelabeling& r);

}  // namespace dms
