// Graph wrapper over a square CSR adjacency matrix plus degree statistics.
//
// Convention (matching the paper): A(i, j) = 1 iff edge i→j exists; row i of
// A is the out-neighborhood of vertex i, which is what Qˡ·A aggregates.
#pragma once

#include <string>

#include "sparse/csr.hpp"

namespace dms {

class Graph {
 public:
  Graph() = default;

  /// Takes a square 0/1 adjacency matrix. Throws if not square.
  explicit Graph(CsrMatrix adjacency);

  index_t num_vertices() const { return adj_.rows(); }
  nnz_t num_edges() const { return adj_.nnz(); }

  const CsrMatrix& adjacency() const { return adj_; }

  index_t out_degree(index_t v) const { return adj_.row_nnz(v); }

  double avg_degree() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / static_cast<double>(num_vertices());
  }

  index_t max_degree() const;

  /// Human-readable one-line summary (vertices / edges / avg degree).
  std::string summary(const std::string& name = "graph") const;

 private:
  CsrMatrix adj_;
};

}  // namespace dms
