#include "graph/io.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>

namespace dms {

namespace {

constexpr std::uint32_t kCsrMagic = 0x43534d44;   // "DMSC"
constexpr std::uint32_t kDataMagic = 0x44534d44;  // "DMSD"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ofstream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_i64(std::ofstream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
void write_vec(std::ofstream& os, const std::vector<T>& v) {
  write_i64(os, static_cast<std::int64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
}

std::uint32_t read_u32(std::ifstream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  check(is.good(), "io: truncated file");
  return v;
}

std::int64_t read_i64(std::ifstream& is) {
  std::int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  check(is.good(), "io: truncated file");
  return v;
}

template <typename T>
std::vector<T> read_vec(std::ifstream& is) {
  const std::int64_t n = read_i64(is);
  check(n >= 0, "io: negative array length");
  std::vector<T> v(static_cast<std::size_t>(n));
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  check(is.good() || n == 0, "io: truncated array");
  return v;
}

void save_csr_body(std::ofstream& os, const CsrMatrix& m) {
  write_i64(os, m.rows());
  write_i64(os, m.cols());
  write_vec(os, m.rowptr());
  write_vec(os, m.colidx());
  write_vec(os, m.vals());
}

CsrMatrix load_csr_body(std::ifstream& is) {
  const index_t rows = read_i64(is);
  const index_t cols = read_i64(is);
  auto rowptr = read_vec<nnz_t>(is);
  auto colidx = read_vec<index_t>(is);
  auto vals = read_vec<value_t>(is);
  CsrMatrix m(rows, cols, std::move(rowptr), std::move(colidx), std::move(vals));
  m.validate();
  return m;
}

}  // namespace

void save_csr(const CsrMatrix& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  check(os.good(), "save_csr: cannot open " + path);
  write_u32(os, kCsrMagic);
  write_u32(os, kVersion);
  save_csr_body(os, m);
  check(os.good(), "save_csr: write failed for " + path);
}

CsrMatrix load_csr(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  check(is.good(), "load_csr: cannot open " + path);
  check(read_u32(is) == kCsrMagic, "load_csr: bad magic in " + path);
  check(read_u32(is) == kVersion, "load_csr: unsupported version in " + path);
  return load_csr_body(is);
}

void save_dataset(const Dataset& ds, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  check(os.good(), "save_dataset: cannot open " + path);
  write_u32(os, kDataMagic);
  write_u32(os, kVersion);
  write_i64(os, static_cast<std::int64_t>(ds.name.size()));
  os.write(ds.name.data(), static_cast<std::streamsize>(ds.name.size()));
  save_csr_body(os, ds.graph.adjacency());
  write_i64(os, ds.features.rows());
  write_i64(os, ds.features.cols());
  os.write(reinterpret_cast<const char*>(ds.features.data()),
           static_cast<std::streamsize>(ds.features.size() * sizeof(float)));
  write_vec(os, ds.labels);
  write_u32(os, static_cast<std::uint32_t>(ds.num_classes));
  write_vec(os, ds.train_idx);
  write_vec(os, ds.val_idx);
  write_vec(os, ds.test_idx);
  check(os.good(), "save_dataset: write failed for " + path);
}

Dataset load_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  check(is.good(), "load_dataset: cannot open " + path);
  check(read_u32(is) == kDataMagic, "load_dataset: bad magic in " + path);
  check(read_u32(is) == kVersion, "load_dataset: unsupported version in " + path);
  Dataset ds;
  const std::int64_t name_len = read_i64(is);
  check(name_len >= 0 && name_len < (1 << 20), "load_dataset: bad name length");
  ds.name.resize(static_cast<std::size_t>(name_len));
  is.read(ds.name.data(), name_len);
  ds.graph = Graph(load_csr_body(is));
  const index_t frows = read_i64(is);
  const index_t fcols = read_i64(is);
  check(frows == ds.graph.num_vertices(), "load_dataset: feature row mismatch");
  ds.features = DenseF(frows, fcols);
  is.read(reinterpret_cast<char*>(ds.features.data()),
          static_cast<std::streamsize>(ds.features.size() * sizeof(float)));
  ds.labels = read_vec<int>(is);
  ds.num_classes = static_cast<int>(read_u32(is));
  ds.train_idx = read_vec<index_t>(is);
  ds.val_idx = read_vec<index_t>(is);
  ds.test_idx = read_vec<index_t>(is);
  check(is.good(), "load_dataset: truncated file " + path);
  check(ds.labels.size() == static_cast<std::size_t>(ds.num_vertices()),
        "load_dataset: label count mismatch");
  return ds;
}

void write_matrix_market(const CsrMatrix& m, const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  check(os.good(), "write_matrix_market: cannot open " + path);
  os << "%%MatrixMarket matrix coordinate real general\n";
  os << m.rows() << " " << m.cols() << " " << m.nnz() << "\n";
  for (index_t r = 0; r < m.rows(); ++r) {
    const auto cols = m.row_cols(r);
    const auto vals = m.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      os << (r + 1) << " " << (cols[i] + 1) << " " << vals[i] << "\n";
    }
  }
  check(os.good(), "write_matrix_market: write failed for " + path);
}

}  // namespace dms
