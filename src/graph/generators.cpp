#include "graph/generators.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "sparse/coo.hpp"

namespace dms {

Graph generate_rmat(const RmatParams& params) {
  check(params.scale >= 1 && params.scale < 31, "rmat: scale out of range");
  check(params.a > 0 && params.b >= 0 && params.c >= 0 &&
            params.a + params.b + params.c < 1.0 + 1e-12,
        "rmat: invalid quadrant probabilities");
  const index_t n = index_t{1} << params.scale;
  const auto target_edges =
      static_cast<nnz_t>(params.edge_factor * static_cast<double>(n));
  Pcg32 rng(params.seed, 0x7d5a);

  CooMatrix coo(n, n);
  coo.reserve(target_edges);
  for (nnz_t e = 0; e < target_edges; ++e) {
    index_t r = 0, c = 0;
    for (int level = 0; level < params.scale; ++level) {
      const double u = rng.uniform();
      r <<= 1;
      c <<= 1;
      if (u < params.a) {
        // top-left quadrant
      } else if (u < params.a + params.b) {
        c |= 1;
      } else if (u < params.a + params.b + params.c) {
        r |= 1;
      } else {
        r |= 1;
        c |= 1;
      }
    }
    if (params.remove_self_loops && r == c) continue;
    coo.push(r, c, 1.0);
  }
  CsrMatrix adj = CsrMatrix::from_coo(coo);
  // Duplicate edges were summed; clamp pattern values back to 1.
  for (auto& v : adj.mutable_vals()) v = 1.0;
  return Graph(std::move(adj));
}

Graph generate_erdos_renyi(index_t n, double avg_degree, std::uint64_t seed) {
  check(n > 0 && avg_degree >= 0, "erdos_renyi: bad parameters");
  const auto target_edges = static_cast<nnz_t>(avg_degree * static_cast<double>(n));
  Pcg32 rng(seed, 0x1c3f);
  CooMatrix coo(n, n);
  coo.reserve(target_edges);
  for (nnz_t e = 0; e < target_edges; ++e) {
    const index_t r = rng.bounded64(n);
    const index_t c = rng.bounded64(n);
    if (r == c) continue;
    coo.push(r, c, 1.0);
  }
  CsrMatrix adj = CsrMatrix::from_coo(coo);
  for (auto& v : adj.mutable_vals()) v = 1.0;
  return Graph(std::move(adj));
}

Graph generate_planted_partition(index_t n, int num_classes, double avg_degree,
                                 double p_intra, std::uint64_t seed) {
  check(n > 0 && num_classes > 0 && num_classes <= n, "planted_partition: bad sizes");
  check(p_intra >= 0.0 && p_intra <= 1.0, "planted_partition: p_intra out of [0,1]");
  Pcg32 rng(seed, 0x33aa);
  const index_t block = ceil_div(n, num_classes);
  CooMatrix coo(n, n);
  coo.reserve(static_cast<nnz_t>(avg_degree * static_cast<double>(n)));
  for (index_t v = 0; v < n; ++v) {
    const index_t my_class = v / block;
    const index_t class_lo = my_class * block;
    const index_t class_hi = std::min<index_t>(n, class_lo + block);
    const auto degree = static_cast<index_t>(avg_degree);
    for (index_t d = 0; d < degree; ++d) {
      index_t u;
      if (rng.uniform() < p_intra) {
        u = class_lo + rng.bounded64(class_hi - class_lo);
      } else {
        u = rng.bounded64(n);
      }
      if (u == v) continue;
      coo.push(v, u, 1.0);
      coo.push(u, v, 1.0);  // symmetric: message passing sees both directions
    }
  }
  CsrMatrix adj = CsrMatrix::from_coo(coo);
  for (auto& v : adj.mutable_vals()) v = 1.0;
  return Graph(std::move(adj));
}

}  // namespace dms
