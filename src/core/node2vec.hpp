// Matrix-based node2vec sampler (Grover & Leskovec 2016), compiled to a
// walk-shaped sampling plan (DESIGN.md §9, §11).
//
// node2vec is GraphSAINT-RW with a second-order transition kernel: before
// normalization, each candidate next-vertex is reweighted by 1/p when it is
// the walker's previous vertex (return), 1 when it neighbors the previous
// vertex (BFS-like), and 1/q otherwise (DFS-like). In the plan IR that is
// one extra op — kWalkBias between the probability SpGEMM and NORM — plus a
// persistent prev slot that kWalkAdvance maintains. Everything else
// (seeding, ITS with s = 1, the induced-subgraph epilogue) is the saint_rw
// machinery, so with p = q = 1 the sampler reproduces GraphSAINT's walks
// bit-for-bit. Replicated runs fuse through the walk engine (src/walk);
// partitioned runs lower like every other plan.
#pragma once

#include "common/workspace.hpp"
#include "core/sampler.hpp"
#include "plan/executor.hpp"

namespace dms {

struct Node2VecConfig {
  index_t walk_length = 2;   ///< steps per random walk
  index_t model_layers = 1;  ///< how many (identical) layers to emit
  value_t p = 1.0;           ///< return parameter (1/p on backtracking)
  value_t q = 1.0;           ///< in-out parameter (1/q on non-neighbors)
  std::uint64_t seed = 1;
};

class Node2VecSampler : public MatrixSampler {
 public:
  Node2VecSampler(const Graph& graph, Node2VecConfig config);

  /// batches[i] holds the walk roots of minibatch i; the sample covers the
  /// induced vertex set of the biased walks (the saint_rw convention).
  std::vector<MinibatchSample> sample_bulk(
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids,
      std::uint64_t epoch_seed) const override;

  const SamplerConfig& config() const override { return exec_.config(); }
  std::map<std::string, double> op_time_breakdown() const override {
    return exec_.op_seconds();
  }
  Workspace* scratch_workspace() const override { return &ws_; }
  const Node2VecConfig& node2vec_config() const { return config_; }

  /// Fused walk-engine controls (forwarded to the executor; takes effect on
  /// the next sample_bulk).
  void set_walk_options(const WalkEngineOptions& opts) {
    exec_.set_walk_options(opts);
  }
  const PlanExecutor& executor() const { return exec_; }

  /// The compiled plan (tests / docs).
  const SamplePlan& plan() const { return exec_.plan(); }

 private:
  const Graph& graph_;
  Node2VecConfig config_;
  PlanExecutor exec_;
  mutable Workspace ws_;
};

}  // namespace dms
