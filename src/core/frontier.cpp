#include "core/frontier.hpp"

#include <algorithm>
#include <unordered_map>

#include "sparse/coo.hpp"

namespace dms {

LayerSample build_layer_sample(const std::vector<index_t>& row_vertices,
                               const std::vector<std::vector<index_t>>& sampled_per_row) {
  check(row_vertices.size() == sampled_per_row.size(),
        "build_layer_sample: row count mismatch");
  LayerSample out;
  out.row_vertices = row_vertices;
  out.col_vertices = row_vertices;  // frontier leads with the row vertices
  std::unordered_map<index_t, index_t> pos;
  pos.reserve(row_vertices.size() * 2);
  for (std::size_t i = 0; i < row_vertices.size(); ++i) {
    pos.emplace(row_vertices[i], static_cast<index_t>(i));
  }
  CooMatrix coo(static_cast<index_t>(row_vertices.size()), 0);
  for (std::size_t r = 0; r < sampled_per_row.size(); ++r) {
    for (const index_t v : sampled_per_row[r]) {
      auto [it, inserted] = pos.emplace(v, static_cast<index_t>(out.col_vertices.size()));
      if (inserted) out.col_vertices.push_back(v);
      coo.push(static_cast<index_t>(r), it->second, 1.0);
    }
  }
  coo.cols = static_cast<index_t>(out.col_vertices.size());
  out.adj = CsrMatrix::from_coo(coo);
  // Pattern matrix: duplicate (row, col) pairs would have been summed.
  for (auto& v : out.adj.mutable_vals()) v = 1.0;
  return out;
}

FrontierStack stack_frontiers(const std::vector<std::vector<index_t>>& frontiers) {
  FrontierStack stack;
  stack.offsets.reserve(frontiers.size() + 1);
  stack.offsets.push_back(0);
  for (const auto& f : frontiers) {
    stack.vertices.insert(stack.vertices.end(), f.begin(), f.end());
    stack.offsets.push_back(static_cast<index_t>(stack.vertices.size()));
  }
  return stack;
}

}  // namespace dms
