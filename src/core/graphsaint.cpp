#include "core/graphsaint.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/rng.hpp"
#include "core/its.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {

GraphSaintSampler::GraphSaintSampler(const Graph& graph, GraphSaintConfig config)
    : graph_(graph), config_(config) {
  check(config_.walk_length >= 1, "GraphSaintSampler: walk_length must be >= 1");
  check(config_.model_layers >= 1, "GraphSaintSampler: model_layers must be >= 1");
  sampler_config_.fanouts.assign(static_cast<std::size_t>(config_.model_layers), 1);
  sampler_config_.seed = config_.seed;
}

std::vector<MinibatchSample> GraphSaintSampler::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  const index_t k = static_cast<index_t>(batches.size());
  const index_t n = graph_.num_vertices();

  // visited[i]: growing vertex set of minibatch i; walker[i]: current walk
  // frontier (one row per root, exactly one nonzero — dead walks drop out).
  std::vector<std::vector<index_t>> visited(static_cast<std::size_t>(k));
  std::vector<std::vector<index_t>> walker(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    visited[static_cast<std::size_t>(i)] = batches[static_cast<std::size_t>(i)];
    walker[static_cast<std::size_t>(i)] = batches[static_cast<std::size_t>(i)];
  }

  for (index_t step = 0; step < config_.walk_length; ++step) {
    // Stack all walkers (Eq. 1 bulk form) and advance one step:
    // P ← Q·A, NORM, Q' ← SAMPLE(P, 1).
    std::vector<index_t> stacked;
    std::vector<index_t> offset(static_cast<std::size_t>(k) + 1, 0);
    for (index_t i = 0; i < k; ++i) {
      const auto& w = walker[static_cast<std::size_t>(i)];
      stacked.insert(stacked.end(), w.begin(), w.end());
      offset[static_cast<std::size_t>(i) + 1] = static_cast<index_t>(stacked.size());
    }
    if (stacked.empty()) break;
    const CsrMatrix q = CsrMatrix::one_nonzero_per_row(n, stacked);
    SpgemmOptions sopts;
    sopts.workspace = &ws_;
    CsrMatrix p = spgemm(q, graph_.adjacency(), sopts);
    normalize_rows(p);

    std::vector<index_t> row_batch(stacked.size());
    for (index_t i = 0; i < k; ++i) {
      for (index_t r = offset[static_cast<std::size_t>(i)];
           r < offset[static_cast<std::size_t>(i) + 1]; ++r) {
        row_batch[static_cast<std::size_t>(r)] = i;
      }
    }
    const CsrMatrix qs = its_sample_rows(
        p, 1,
        [&](index_t row) {
          const index_t i = row_batch[static_cast<std::size_t>(row)];
          const index_t local = row - offset[static_cast<std::size_t>(i)];
          return derive_seed(
              epoch_seed,
              static_cast<std::uint64_t>(batch_ids[static_cast<std::size_t>(i)]),
              static_cast<std::uint64_t>(step) + 0x5a17,
              static_cast<std::uint64_t>(local));
        },
        &ws_);

    for (index_t i = 0; i < k; ++i) {
      std::vector<index_t> next;
      for (index_t r = offset[static_cast<std::size_t>(i)];
           r < offset[static_cast<std::size_t>(i) + 1]; ++r) {
        const auto cols = qs.row_cols(r);
        if (!cols.empty()) {
          next.push_back(cols[0]);
          visited[static_cast<std::size_t>(i)].push_back(cols[0]);
        }
        // Empty row: the walk hit a sink vertex and terminates.
      }
      walker[static_cast<std::size_t>(i)] = std::move(next);
    }
  }

  // Induced subgraphs: A_s = A[V_s, V_s] via row extraction + the engine's
  // masked column extraction (values pass through, so this is bit-identical
  // to the old extract_columns path).
  std::vector<MinibatchSample> out(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    auto& vs = visited[static_cast<std::size_t>(i)];
    std::sort(vs.begin(), vs.end());
    vs.erase(std::unique(vs.begin(), vs.end()), vs.end());

    const CsrMatrix rows = extract_rows(graph_.adjacency(), vs);
    SpgemmOptions mopts;
    mopts.workspace = &ws_;
    const CsrMatrix induced = spgemm_masked(rows, vs, mopts);

    LayerSample layer;
    layer.adj = induced;
    layer.row_vertices = vs;
    layer.col_vertices = vs;

    MinibatchSample ms;
    ms.batch_vertices = vs;
    for (index_t l = 0; l < config_.model_layers; ++l) ms.layers.push_back(layer);
    out[static_cast<std::size_t>(i)] = std::move(ms);
  }
  return out;
}

}  // namespace dms
