#include "core/graphsaint.hpp"

#include "plan/builders.hpp"

namespace dms {

SamplerConfig GraphSaintSampler::adapter_config(const GraphSaintConfig& config) {
  // MatrixSampler-interface adapter: one unit fanout per model layer (the
  // walk length is the plan's explicit round count, not a fanout).
  SamplerConfig cfg;
  cfg.fanouts.assign(static_cast<std::size_t>(config.model_layers), 1);
  cfg.seed = config.seed;
  return cfg;
}

GraphSaintSampler::GraphSaintSampler(const Graph& graph, GraphSaintConfig config)
    : graph_(graph),
      config_(config),
      exec_(build_saint_plan(config.walk_length, config.model_layers),
            adapter_config(config)) {}

std::vector<MinibatchSample> GraphSaintSampler::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  return exec_.run(graph_, batches, batch_ids, epoch_seed, &ws_);
}

}  // namespace dms
