// LABOR sampler (Balin & Çatalyürek 2023, "Layer-Neighbor Sampling —
// Defusing Neighborhood Explosion in GNNs"), the first sampler defined
// purely as a plan: build_labor_plan() is the entire algorithm and this
// class adds nothing but config validation (DESIGN.md §9).
//
// LABOR-0 semantics: per layer, vertex u enters the sample of frontier
// vertex v iff r_u < s / deg(v), where r_u ~ U[0,1) is drawn once per
// (batch, layer, vertex) and shared by every v of the batch. Per vertex
// the expected sample size matches GraphSAGE's fanout s (each neighbor is
// kept with probability min(1, s/deg)), but because the r_u are shared, a
// vertex admitted by one row is admitted by every row that reaches it —
// the union frontier (and hence the feature-fetch volume) shrinks relative
// to independent per-row sampling.
//
// Determinism: r_u = uniform(derive_seed(epoch, global batch id, layer,
// u)) depends only on logical coordinates, so LABOR obeys the same
// bit-identity contract as every other plan — replicated and partitioned
// runs agree for every grid shape and thread count.
#pragma once

#include "common/workspace.hpp"
#include "core/sampler.hpp"
#include "plan/executor.hpp"

namespace dms {

class LaborSampler : public MatrixSampler {
 public:
  /// The graph must outlive the sampler. fanouts[l] is the expected
  /// per-vertex sample count of layer l (the Poisson rate).
  LaborSampler(const Graph& graph, SamplerConfig config);

  std::vector<MinibatchSample> sample_bulk(
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids,
      std::uint64_t epoch_seed) const override;

  const SamplerConfig& config() const override { return exec_.config(); }
  std::map<std::string, double> op_time_breakdown() const override {
    return exec_.op_seconds();
  }
  Workspace* scratch_workspace() const override { return &ws_; }

  /// The compiled plan (tests / docs).
  const SamplePlan& plan() const { return exec_.plan(); }

 private:
  const Graph& graph_;
  PlanExecutor exec_;
  /// Scratch arena reused across layers/bulks/epochs (see graphsage.hpp).
  mutable Workspace ws_;
};

}  // namespace dms
