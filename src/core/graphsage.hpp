// Matrix-based GraphSAGE sampler (§4.1).
//
// Per layer (Algorithm 1 with the GraphSAGE constructions):
//   Q     one nonzero per row, column = frontier vertex id        (§4.1.1)
//   P     ← Q·A (SpGEMM), then NORM = row normalization → 1/|N(v)|
//   Qˡ⁻¹  ← SAMPLE(P, s) via ITS, s distinct neighbors per vertex (§4.1.2)
//   Aˡ    ← per-batch extraction (remove empty columns / renumber) (§4.1.3)
// Bulk sampling stacks the per-batch blocks vertically (Eq. 1) and runs the
// identical matrix operations on the stacked matrices (§4.1.4).
#pragma once

#include "core/sampler.hpp"

namespace dms {

class GraphSageSampler : public MatrixSampler {
 public:
  /// The graph must outlive the sampler (topology is borrowed, mirroring the
  /// on-device adjacency of the replicated algorithm).
  GraphSageSampler(const Graph& graph, SamplerConfig config);

  std::vector<MinibatchSample> sample_bulk(
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids,
      std::uint64_t epoch_seed) const override;

  const SamplerConfig& config() const override { return config_; }

 private:
  const Graph& graph_;
  SamplerConfig config_;
};

}  // namespace dms
