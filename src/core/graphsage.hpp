// Matrix-based GraphSAGE sampler (§4.1), compiled to a sampling plan
// (DESIGN.md §9).
//
// Per layer (Algorithm 1 with the GraphSAGE constructions):
//   Q     one nonzero per row, column = frontier vertex id        (§4.1.1)
//   P     ← Q·A (SpGEMM), then NORM = row normalization → 1/|N(v)|
//   Qˡ⁻¹  ← SAMPLE(P, s) via ITS, s distinct neighbors per vertex (§4.1.2)
//   Aˡ    ← per-batch extraction (remove empty columns / renumber) (§4.1.3)
// Bulk sampling stacks the per-batch blocks vertically (Eq. 1) and runs the
// identical matrix operations on the stacked matrices (§4.1.4).
//
// The sequence above IS the plan built by build_sage_plan(); this class is
// the SamplerConfig validation plus a PlanExecutor delegation. The Graph
// Partitioned variant (src/dist) runs the dist-lowered copy of the same
// plan, which is what makes both modes bit-identical by construction.
#pragma once

#include <cstdint>

#include "common/workspace.hpp"
#include "core/frontier.hpp"
#include "core/its.hpp"
#include "core/sampler.hpp"
#include "plan/executor.hpp"

namespace dms {

/// Row-seed function for ITS over a stacked P (shared verbatim with the
/// plan executor so every execution mode samples bit-identically):
/// maps a stacked row back to (batch, local row) and derives the (epoch,
/// global batch id, layer, local row) seed. `first_batch` is the global
/// index of the stack's first batch within `batch_ids` (0 single-node; the
/// process row's block start distributed). Inputs are copied into the
/// returned closure, so it may outlive them.
RowSeedFn sage_row_seed_fn(const FrontierStack& stack,
                           const std::vector<index_t>& batch_ids,
                           index_t first_batch, index_t layer,
                           std::uint64_t epoch_seed);

/// EXTRACT for one batch of a stacked SAGE sample (§4.1.3): gathers the
/// sampled columns of stacked rows [offsets[b], offsets[b+1]) of qs and
/// renumbers them into a LayerSample over `frontier_b` (the batch's current
/// frontier). The kFrontierUnion/kNeighborRows op of the plan executor.
LayerSample sage_extract_layer(const CsrMatrix& qs, const FrontierStack& stack,
                               std::size_t b,
                               const std::vector<index_t>& frontier_b);

class GraphSageSampler : public MatrixSampler {
 public:
  /// The graph must outlive the sampler (topology is borrowed, mirroring the
  /// on-device adjacency of the replicated algorithm).
  GraphSageSampler(const Graph& graph, SamplerConfig config);

  std::vector<MinibatchSample> sample_bulk(
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids,
      std::uint64_t epoch_seed) const override;

  const SamplerConfig& config() const override { return exec_.config(); }
  std::map<std::string, double> op_time_breakdown() const override {
    return exec_.op_seconds();
  }
  Workspace* scratch_workspace() const override { return &ws_; }

  /// The compiled plan (tests / docs).
  const SamplePlan& plan() const { return exec_.plan(); }

 private:
  const Graph& graph_;
  PlanExecutor exec_;
  /// Scratch arena reused across layers, bulks, and epochs (steady-state
  /// sampling allocates only its outputs). Makes concurrent sample_bulk
  /// calls on one sampler instance unsupported — the pipeline drives
  /// samplers sequentially.
  mutable Workspace ws_;
};

}  // namespace dms
