#include "core/ladies.hpp"

#include <unordered_map>

#include "common/rng.hpp"
#include "core/its.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {

CsrMatrix ladies_indicator_rows(index_t n,
                                const std::vector<std::vector<index_t>>& sets) {
  CooMatrix coo(static_cast<index_t>(sets.size()), n);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (const index_t v : sets[i]) coo.push(static_cast<index_t>(i), v, 1.0);
  }
  return CsrMatrix::from_coo(coo);
}

void ladies_norm(CsrMatrix& p) {
  for (auto& v : p.mutable_vals()) v = v * v;
  normalize_rows(p);
}

CsrMatrix ladies_column_extractor(index_t n, const std::vector<index_t>& sampled) {
  CooMatrix coo(n, static_cast<index_t>(sampled.size()));
  for (std::size_t j = 0; j < sampled.size(); ++j) {
    coo.push(sampled[j], static_cast<index_t>(j), 1.0);
  }
  return CsrMatrix::from_coo(coo);
}

LayerSample ladies_assemble_layer(const std::vector<index_t>& rows,
                                  const std::vector<index_t>& sampled,
                                  const CsrMatrix& a_s) {
  LayerSample layer;
  layer.row_vertices = rows;
  layer.col_vertices = rows;
  std::unordered_map<index_t, index_t> pos;
  pos.reserve(rows.size() + sampled.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    pos.emplace(rows[i], static_cast<index_t>(i));
  }
  std::vector<index_t> col_map(sampled.size());
  for (std::size_t j = 0; j < sampled.size(); ++j) {
    auto [it, inserted] =
        pos.emplace(sampled[j], static_cast<index_t>(layer.col_vertices.size()));
    if (inserted) layer.col_vertices.push_back(sampled[j]);
    col_map[j] = it->second;
  }
  CooMatrix coo(a_s.rows(), static_cast<index_t>(layer.col_vertices.size()));
  for (index_t r = 0; r < a_s.rows(); ++r) {
    for (const index_t c : a_s.row_cols(r)) {
      coo.push(r, col_map[static_cast<std::size_t>(c)], 1.0);
    }
  }
  layer.adj = CsrMatrix::from_coo(coo);
  for (auto& v : layer.adj.mutable_vals()) v = 1.0;
  return layer;
}

LadiesSampler::LadiesSampler(const Graph& graph, SamplerConfig config)
    : graph_(graph), config_(std::move(config)) {
  check(!config_.fanouts.empty(), "LadiesSampler: fanouts must be non-empty");
}

std::vector<value_t> LadiesSampler::probability_vector(
    const std::vector<index_t>& batch) const {
  const index_t n = graph_.num_vertices();
  const CsrMatrix q = ladies_indicator_rows(n, {batch});
  CsrMatrix p = spgemm(q, graph_.adjacency());
  ladies_norm(p);
  std::vector<value_t> dense(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < p.row_nnz(0); ++i) {
    dense[static_cast<std::size_t>(p.colidx()[static_cast<std::size_t>(i)])] =
        p.vals()[static_cast<std::size_t>(i)];
  }
  return dense;
}

std::vector<MinibatchSample> LadiesSampler::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  const index_t k = static_cast<index_t>(batches.size());
  const index_t n = graph_.num_vertices();
  const index_t num_layers = config_.num_layers();

  std::vector<MinibatchSample> out(static_cast<std::size_t>(k));
  std::vector<std::vector<index_t>> current(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    out[static_cast<std::size_t>(i)].batch_vertices = batches[static_cast<std::size_t>(i)];
    current[static_cast<std::size_t>(i)] = batches[static_cast<std::size_t>(i)];
  }

  for (index_t l = 0; l < num_layers; ++l) {
    const index_t s = config_.fanouts[static_cast<std::size_t>(l)];

    // --- Probability generation on the stacked Q (one row per batch). ---
    const CsrMatrix q = ladies_indicator_rows(n, current);
    SpgemmOptions popts;
    popts.workspace = &ws_;
    CsrMatrix p = spgemm(q, graph_.adjacency(), popts);
    ladies_norm(p);

    // --- SAMPLE: s vertices per batch row. ---
    const CsrMatrix qs = its_sample_rows(
        p, s,
        [&](index_t row) {
          return derive_seed(
              epoch_seed,
              static_cast<std::uint64_t>(batch_ids[static_cast<std::size_t>(row)]),
              static_cast<std::uint64_t>(l), 0);
        },
        &ws_);

    // --- EXTRACT: per-batch fused masked extraction A_S = (Qᵣ·A)[:, S]
    // (§4.2.4 / §8.2.2). The engine's masked kernel computes only the s
    // sampled columns, so the full row-extraction product Aᵣ·A is never
    // materialized; the pattern (all the layer uses) is identical to the
    // old product-then-slice. The sampled ids come from a CSR row, so they
    // are sorted and duplicate-free as the mask contract requires. ---
    for (index_t i = 0; i < k; ++i) {
      const auto& rows = current[static_cast<std::size_t>(i)];
      std::vector<index_t> sampled(qs.row_cols(i).begin(), qs.row_cols(i).end());
      const CsrMatrix qr = CsrMatrix::one_nonzero_per_row(n, rows);
      SpgemmOptions mopts;
      mopts.column_mask = &sampled;
      mopts.workspace = &ws_;
      const CsrMatrix a_s = spgemm(qr, graph_.adjacency(), mopts);
      LayerSample layer = ladies_assemble_layer(rows, sampled, a_s);
      current[static_cast<std::size_t>(i)] = layer.col_vertices;
      out[static_cast<std::size_t>(i)].layers.push_back(std::move(layer));
    }
  }
  return out;
}

}  // namespace dms
