#include "core/ladies.hpp"

#include <unordered_map>

#include "plan/builders.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {

CsrMatrix ladies_indicator_rows(index_t n,
                                const std::vector<std::vector<index_t>>& sets) {
  CooMatrix coo(static_cast<index_t>(sets.size()), n);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    for (const index_t v : sets[i]) coo.push(static_cast<index_t>(i), v, 1.0);
  }
  return CsrMatrix::from_coo(coo);
}

void ladies_norm(CsrMatrix& p) {
  for (auto& v : p.mutable_vals()) v = v * v;
  normalize_rows(p);
}

CsrMatrix ladies_column_extractor(index_t n, const std::vector<index_t>& sampled) {
  CooMatrix coo(n, static_cast<index_t>(sampled.size()));
  for (std::size_t j = 0; j < sampled.size(); ++j) {
    coo.push(sampled[j], static_cast<index_t>(j), 1.0);
  }
  return CsrMatrix::from_coo(coo);
}

LayerSample ladies_assemble_layer(const std::vector<index_t>& rows,
                                  const std::vector<index_t>& sampled,
                                  const CsrMatrix& a_s) {
  LayerSample layer;
  layer.row_vertices = rows;
  layer.col_vertices = rows;
  std::unordered_map<index_t, index_t> pos;
  pos.reserve(rows.size() + sampled.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    pos.emplace(rows[i], static_cast<index_t>(i));
  }
  std::vector<index_t> col_map(sampled.size());
  for (std::size_t j = 0; j < sampled.size(); ++j) {
    auto [it, inserted] =
        pos.emplace(sampled[j], static_cast<index_t>(layer.col_vertices.size()));
    if (inserted) layer.col_vertices.push_back(sampled[j]);
    col_map[j] = it->second;
  }
  CooMatrix coo(a_s.rows(), static_cast<index_t>(layer.col_vertices.size()));
  for (index_t r = 0; r < a_s.rows(); ++r) {
    for (const index_t c : a_s.row_cols(r)) {
      coo.push(r, col_map[static_cast<std::size_t>(c)], 1.0);
    }
  }
  layer.adj = CsrMatrix::from_coo(coo);
  for (auto& v : layer.adj.mutable_vals()) v = 1.0;
  return layer;
}

LadiesSampler::LadiesSampler(const Graph& graph, SamplerConfig config)
    : graph_(graph), exec_(build_ladies_plan(), std::move(config)) {
  check(!exec_.config().fanouts.empty(), "LadiesSampler: fanouts must be non-empty");
}

std::vector<value_t> LadiesSampler::probability_vector(
    const std::vector<index_t>& batch) const {
  const index_t n = graph_.num_vertices();
  const CsrMatrix q = ladies_indicator_rows(n, {batch});
  CsrMatrix p = spgemm(q, graph_.adjacency());
  ladies_norm(p);
  std::vector<value_t> dense(static_cast<std::size_t>(n), 0.0);
  for (index_t i = 0; i < p.row_nnz(0); ++i) {
    dense[static_cast<std::size_t>(p.colidx()[static_cast<std::size_t>(i)])] =
        p.vals()[static_cast<std::size_t>(i)];
  }
  return dense;
}

std::vector<MinibatchSample> LadiesSampler::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  return exec_.run(graph_, batches, batch_ids, epoch_seed, &ws_);
}

}  // namespace dms
