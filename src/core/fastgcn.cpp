#include "core/fastgcn.hpp"

#include "plan/builders.hpp"

namespace dms {

std::vector<value_t> fastgcn_importance(const Graph& graph) {
  std::vector<value_t> importance(
      static_cast<std::size_t>(graph.num_vertices()), 0.0);
  for (const index_t c : graph.adjacency().colidx()) {
    importance[static_cast<std::size_t>(c)] += 1.0;
  }
  for (auto& v : importance) v = v * v;
  return importance;
}

std::vector<value_t> fastgcn_importance_prefix(
    const std::vector<value_t>& importance) {
  std::vector<value_t> prefix(1, 0.0);
  prefix.reserve(importance.size() + 1);
  for (const value_t v : importance) prefix.push_back(prefix.back() + v);
  return prefix;
}

std::vector<value_t> fastgcn_importance_prefix(const Graph& graph) {
  return fastgcn_importance_prefix(fastgcn_importance(graph));
}

FastGcnSampler::FastGcnSampler(const Graph& graph, SamplerConfig config)
    : graph_(graph),
      exec_(build_fastgcn_plan(), std::move(config)),
      importance_(fastgcn_importance(graph)),
      importance_prefix_(fastgcn_importance_prefix(importance_)) {
  check(!exec_.config().fanouts.empty(),
        "FastGcnSampler: fanouts must be non-empty");
}

std::vector<MinibatchSample> FastGcnSampler::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  return exec_.run(graph_, batches, batch_ids, epoch_seed, &ws_,
                   &importance_prefix_);
}

}  // namespace dms
