#include "core/fastgcn.hpp"

#include <unordered_map>
#include <unordered_set>

#include "common/rng.hpp"
#include "core/its.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {

FastGcnSampler::FastGcnSampler(const Graph& graph, SamplerConfig config)
    : graph_(graph), config_(std::move(config)) {
  check(!config_.fanouts.empty(), "FastGcnSampler: fanouts must be non-empty");
  const index_t n = graph_.num_vertices();
  importance_.assign(static_cast<std::size_t>(n), 0.0);
  for (const index_t c : graph_.adjacency().colidx()) {
    importance_[static_cast<std::size_t>(c)] += 1.0;
  }
  for (auto& v : importance_) v = v * v;
  importance_prefix_.assign(1, 0.0);
  importance_prefix_.reserve(static_cast<std::size_t>(n) + 1);
  for (const value_t v : importance_) {
    importance_prefix_.push_back(importance_prefix_.back() + v);
  }
}

std::vector<MinibatchSample> FastGcnSampler::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  const index_t k = static_cast<index_t>(batches.size());
  const index_t n = graph_.num_vertices();
  const index_t num_layers = config_.num_layers();

  std::vector<MinibatchSample> out(static_cast<std::size_t>(k));
  std::vector<std::vector<index_t>> current(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    out[static_cast<std::size_t>(i)].batch_vertices = batches[static_cast<std::size_t>(i)];
    current[static_cast<std::size_t>(i)] = batches[static_cast<std::size_t>(i)];
  }

  ws_.ensure_slots(1);
  std::vector<index_t> sampled;
  for (index_t l = 0; l < num_layers; ++l) {
    const index_t s = config_.fanouts[static_cast<std::size_t>(l)];
    for (index_t i = 0; i < k; ++i) {
      // SAMPLE from the shared importance distribution; the chosen-flags
      // scratch lives in the workspace so the per-batch loop is
      // allocation-free.
      its_sample_one(importance_prefix_, s,
                     derive_seed(epoch_seed,
                                 static_cast<std::uint64_t>(batch_ids[static_cast<std::size_t>(i)]),
                                 static_cast<std::uint64_t>(l), 1),
                     &sampled, ws_.slot(0).flags);

      // EXTRACT: edges between the current set and the sampled set, via the
      // same fused masked-extraction SpGEMM as LADIES (§4.2.3). The engine
      // computes only the sampled columns of Qᵣ·A; its_sample_one returns
      // ascending distinct ids, satisfying the mask contract, and column j
      // of A_S maps to sampled[j] exactly as the old Q_C product did.
      const auto& rows = current[static_cast<std::size_t>(i)];
      const CsrMatrix qr = CsrMatrix::one_nonzero_per_row(n, rows);
      SpgemmOptions mopts;
      mopts.column_mask = &sampled;
      mopts.workspace = &ws_;
      const CsrMatrix a_s = spgemm(qr, graph_.adjacency(), mopts);

      // Assemble: frontier = rows ∪ sampled (rows lead; see sampler.hpp).
      LayerSample layer;
      layer.row_vertices = rows;
      layer.col_vertices = rows;
      std::unordered_map<index_t, index_t> pos;
      for (std::size_t j = 0; j < rows.size(); ++j) {
        pos.emplace(rows[j], static_cast<index_t>(j));
      }
      std::vector<index_t> col_map(sampled.size());
      for (std::size_t j = 0; j < sampled.size(); ++j) {
        auto [it, inserted] =
            pos.emplace(sampled[j], static_cast<index_t>(layer.col_vertices.size()));
        if (inserted) layer.col_vertices.push_back(sampled[j]);
        col_map[j] = it->second;
      }
      CooMatrix coo(a_s.rows(), static_cast<index_t>(layer.col_vertices.size()));
      for (index_t r = 0; r < a_s.rows(); ++r) {
        for (const index_t c : a_s.row_cols(r)) {
          coo.push(r, col_map[static_cast<std::size_t>(c)], 1.0);
        }
      }
      layer.adj = CsrMatrix::from_coo(coo);
      for (auto& v : layer.adj.mutable_vals()) v = 1.0;

      current[static_cast<std::size_t>(i)] = layer.col_vertices;
      out[static_cast<std::size_t>(i)].layers.push_back(std::move(layer));
    }
  }
  return out;
}

}  // namespace dms
