#include "core/node2vec.hpp"

#include "core/graphsaint.hpp"  // walk_adapter_config
#include "plan/builders.hpp"

namespace dms {

Node2VecSampler::Node2VecSampler(const Graph& graph, Node2VecConfig config)
    : graph_(graph),
      config_(config),
      exec_(build_node2vec_plan(config.walk_length, config.model_layers,
                                config.p, config.q),
            walk_adapter_config(config.model_layers, config.seed)) {}

std::vector<MinibatchSample> Node2VecSampler::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  return exec_.run(graph_, batches, batch_ids, epoch_seed, &ws_);
}

}  // namespace dms
