// PinSAGE-style importance sampling (Ying et al. 2018) as a pure plan.
//
// PinSAGE defines a vertex's neighborhood not by adjacency but by visit
// importance: short random walks from v score every vertex they touch, and
// the top-T visited vertices become v's (weighted) neighbors. Here that is
// a *construction-time* transform — pinsage_importance_graph simulates the
// walks once and emits a weighted adjacency whose row v holds the top-T
// visited vertices with weights proportional to visit counts — and the
// sampler is then literally the GraphSAGE plan (build_pinsage_plan) run
// against that graph: the probability SpGEMM reads the importance weights,
// NORM turns them into a distribution, and ITS draws the weighted fanout.
// No new op kinds, so the plan lowers to the 1.5D collectives unchanged and
// the partitioned sampler exists for free.
//
// Each Q row has a single nonzero, so every probability entry is a
// single-term product — no reduction-order sensitivity, and the partitioned
// run is bit-identical to the replicated one (the determinism contract).
#pragma once

#include "common/workspace.hpp"
#include "core/sampler.hpp"
#include "plan/executor.hpp"

namespace dms {

struct PinSageConfig {
  index_t num_walks = 16;     ///< simulated walks per vertex
  index_t walk_length = 2;    ///< steps per simulated walk
  index_t top_neighbors = 8;  ///< T: visited vertices kept per row
  std::uint64_t seed = 1;
};

/// The walk-derived importance graph: row v holds the top-T vertices by
/// visit count (ties broken by ascending id, v itself excluded) over
/// num_walks simulated walks of walk_length uniform steps from v, with
/// weights count / total over the kept set, columns ascending. Rows whose
/// walks visit nothing (isolated vertices) are empty. Deterministic in
/// cfg.seed.
Graph pinsage_importance_graph(const Graph& graph, const PinSageConfig& cfg);

class PinSageSampler : public MatrixSampler {
 public:
  /// `config` supplies the per-layer fanouts (like GraphSAGE); `pcfg` the
  /// walk simulation. The weighted graph is built once here and owned.
  PinSageSampler(const Graph& graph, SamplerConfig config,
                 PinSageConfig pcfg = {});

  std::vector<MinibatchSample> sample_bulk(
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids,
      std::uint64_t epoch_seed) const override;

  const SamplerConfig& config() const override { return exec_.config(); }
  std::map<std::string, double> op_time_breakdown() const override {
    return exec_.op_seconds();
  }
  Workspace* scratch_workspace() const override { return &ws_; }
  const PinSageConfig& pinsage_config() const { return config_; }

  /// The owned importance graph the plan samples from (tests / docs).
  const Graph& importance_graph() const { return weighted_; }
  const SamplePlan& plan() const { return exec_.plan(); }

 private:
  Graph weighted_;
  PinSageConfig config_;
  PlanExecutor exec_;
  mutable Workspace ws_;
};

}  // namespace dms
