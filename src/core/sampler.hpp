// Sampler framework types (Algorithm 1): the output structures shared by
// every matrix-based sampler, and the abstract sampler interface.
//
// A sampled minibatch is a chain of bipartite sampled adjacency matrices
// A^L ... A^1 (paper notation: layer L holds the batch vertices, layer 1 the
// vertices furthest from the batch). Our layers[] vector stores them in
// sampling order: layers[0] is the layer-L adjacency (batch rows), and
// layers.back() is the furthest layer whose columns index the input-feature
// frontier.
//
// Frontier convention: the column space of each layer's adjacency is
// [row vertices..., newly sampled vertices...] — row vertices are included
// so a GraphSAGE-style model can read its "self" embedding from the same
// frontier (the standard src-includes-dst convention). The pure paper
// extraction (drop empty columns only) is available in sparse/ops and
// exercised by tests; training needs the self-inclusive form.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sparse/csr.hpp"

namespace dms {

class Workspace;

/// One sampled layer of one minibatch.
struct LayerSample {
  /// Bipartite adjacency: rows are this layer's output vertices, columns are
  /// indexed against `col_vertices` (the next frontier). 0/1 values.
  CsrMatrix adj;
  /// Global vertex id of each row.
  std::vector<index_t> row_vertices;
  /// Global vertex id of each column (frontier; row vertices lead).
  std::vector<index_t> col_vertices;
};

/// A fully sampled minibatch: the list of per-layer adjacencies.
struct MinibatchSample {
  std::vector<index_t> batch_vertices;  ///< the layer-L seed vertices
  std::vector<LayerSample> layers;      ///< [0]=layer L ... [L-1]=layer 1

  /// Global vertex ids whose input features are needed (the last frontier).
  /// Throws DmsError if no layers have been sampled yet.
  const std::vector<index_t>& input_vertices() const {
    if (layers.empty()) {
      throw DmsError("MinibatchSample::input_vertices: no sampled layers");
    }
    return layers.back().col_vertices;
  }
  index_t num_layers() const { return static_cast<index_t>(layers.size()); }
};

/// Hyperparameters shared by all samplers.
struct SamplerConfig {
  /// Per-layer sample counts, sampling order (first entry = layer L).
  /// GraphSAGE: fanout per vertex. LADIES/FastGCN: vertices per layer.
  std::vector<index_t> fanouts;
  std::uint64_t seed = 1;

  index_t num_layers() const { return static_cast<index_t>(fanouts.size()); }
};

/// Abstract matrix-based bulk sampler (the paper's §4 framework).
///
/// sample_bulk() samples k minibatches at once using stacked matrices
/// (Eq. 1); implementations perform Algorithm 1 on the stacked Q/P/A
/// matrices. Randomness is derived per (batch id, layer, row) so results are
/// independent of k and of the process count.
class MatrixSampler {
 public:
  virtual ~MatrixSampler() = default;

  /// Samples the given minibatches (each a list of batch vertex ids) in one
  /// bulk pass. epoch_seed distinguishes epochs; batch ids are the global
  /// minibatch indices (for stream derivation).
  virtual std::vector<MinibatchSample> sample_bulk(
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const = 0;

  /// Single-minibatch convenience wrapper (bulk of size 1).
  MinibatchSample sample_one(const std::vector<index_t>& batch, index_t batch_id,
                             std::uint64_t epoch_seed) const {
    return sample_bulk({batch}, {batch_id}, epoch_seed).front();
  }

  virtual const SamplerConfig& config() const = 0;

  /// Cumulative per-op wall-clock breakdown of the sampler's plan, keyed
  /// "<plan>/<op label>" (DESIGN.md §9 accounting contract). Plan-backed
  /// samplers report their executor's table; the default is empty. The
  /// staged pipeline diffs this across an epoch into
  /// EpochStats::sampler_ops.
  virtual std::map<std::string, double> op_time_breakdown() const { return {}; }

  /// The sampler's private scratch arena, when it owns one (every
  /// plan-backed sampler does). The serve engine (DESIGN.md §10) warms it
  /// on representative requests and then freezes it, making steady-state
  /// request handling allocation-free. nullptr = no reusable arena.
  virtual Workspace* scratch_workspace() const { return nullptr; }
};

}  // namespace dms
