// Frontier construction: converts per-row sampled vertex lists into a
// LayerSample whose column space is [row vertices..., new samples...]
// (see sampler.hpp for the convention).
#pragma once

#include <vector>

#include "core/sampler.hpp"

namespace dms {

/// Builds one LayerSample. sampled_per_row[i] lists the global vertex ids
/// sampled for row vertex row_vertices[i] (duplicates across rows are
/// merged into one frontier column).
LayerSample build_layer_sample(const std::vector<index_t>& row_vertices,
                               const std::vector<std::vector<index_t>>& sampled_per_row);

/// The stacked row construction of Eq. 1: per-batch vertex lists
/// concatenated, with offsets[b] = first stacked row of batch b. Shared by
/// the single-node and Graph Partitioned samplers so both execution modes
/// stack identically (part of the bit-identity determinism contract).
struct FrontierStack {
  std::vector<index_t> vertices;  ///< concatenated per-batch vertex ids
  std::vector<index_t> offsets;   ///< batches+1 block offsets
};

FrontierStack stack_frontiers(const std::vector<std::vector<index_t>>& frontiers);

}  // namespace dms
