// Frontier construction: converts per-row sampled vertex lists into a
// LayerSample whose column space is [row vertices..., new samples...]
// (see sampler.hpp for the convention).
#pragma once

#include <vector>

#include "core/sampler.hpp"

namespace dms {

/// Builds one LayerSample. sampled_per_row[i] lists the global vertex ids
/// sampled for row vertex row_vertices[i] (duplicates across rows are
/// merged into one frontier column).
LayerSample build_layer_sample(const std::vector<index_t>& row_vertices,
                               const std::vector<std::vector<index_t>>& sampled_per_row);

}  // namespace dms
