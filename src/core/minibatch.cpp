#include "core/minibatch.hpp"

#include "common/rng.hpp"

namespace dms {

std::vector<std::vector<index_t>> make_epoch_batches(
    const std::vector<index_t>& train_idx, index_t batch_size,
    std::uint64_t epoch_seed) {
  check(batch_size > 0, "make_epoch_batches: batch_size must be positive");
  std::vector<index_t> perm = train_idx;
  Pcg32 rng(derive_seed(epoch_seed, 0x6a7c), 0x91);
  for (index_t i = static_cast<index_t>(perm.size()) - 1; i > 0; --i) {
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(rng.bounded64(i + 1))]);
  }
  std::vector<std::vector<index_t>> batches;
  const auto total = static_cast<index_t>(perm.size());
  for (index_t start = 0; start < total; start += batch_size) {
    const index_t stop = std::min<index_t>(total, start + batch_size);
    batches.emplace_back(perm.begin() + start, perm.begin() + stop);
  }
  return batches;
}

}  // namespace dms
