// Matrix-based FastGCN sampler (Chen et al. 2018) — the simplest layer-wise
// algorithm (§2.2.2), included as the framework-extension the paper's
// conclusion calls for ("we hope to express additional sampling algorithms
// in this framework").
//
// FastGCN samples s vertices per layer from a *batch-independent*
// distribution q_v ∝ ‖A(:,v)‖² (squared in-degree for a 0/1 adjacency);
// edges between consecutive layers are kept via the same Q_R·A·Q_C
// extraction as LADIES. Because every row of P is the same distribution,
// the implementation shares one prefix sum across all batches instead of
// materializing the k×n P matrix (an optimization the matrix framework
// permits; semantics are identical).
#pragma once

#include "common/workspace.hpp"
#include "core/sampler.hpp"

namespace dms {

class FastGcnSampler : public MatrixSampler {
 public:
  FastGcnSampler(const Graph& graph, SamplerConfig config);

  std::vector<MinibatchSample> sample_bulk(
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids,
      std::uint64_t epoch_seed) const override;

  const SamplerConfig& config() const override { return config_; }

  /// The global FastGCN distribution q (unnormalized: squared in-degrees).
  const std::vector<value_t>& importance() const { return importance_; }

 private:
  const Graph& graph_;
  SamplerConfig config_;
  std::vector<value_t> importance_;         // q_v ∝ in_deg(v)²
  std::vector<value_t> importance_prefix_;  // shared ITS prefix sum
  /// Scratch arena reused across layers/bulks/epochs (see graphsage.hpp).
  mutable Workspace ws_;
};

}  // namespace dms
