// Matrix-based FastGCN sampler (Chen et al. 2018) — the simplest layer-wise
// algorithm (§2.2.2), included as the framework-extension the paper's
// conclusion calls for — compiled to a sampling plan (DESIGN.md §9).
//
// FastGCN samples s vertices per layer from a *batch-independent*
// distribution q_v ∝ ‖A(:,v)‖² (squared in-degree for a 0/1 adjacency);
// edges between consecutive layers are kept via the same masked extraction
// as LADIES. Because every row of P is the same distribution, the plan
// samples from one shared prefix sum bound as the executor's global
// weights instead of materializing the k×n P matrix (an optimization the
// matrix framework permits; semantics are identical). The plan has no
// probability kSpgemm; under the dist lowering pass the sampling stays
// row-local and only the masked extraction becomes a 1.5D collective —
// which is why the partitioned FastGCN of src/dist comes for free.
#pragma once

#include "common/workspace.hpp"
#include "core/sampler.hpp"
#include "plan/executor.hpp"

namespace dms {

/// The global FastGCN importance q_v ∝ in_deg(v)² (unnormalized).
std::vector<value_t> fastgcn_importance(const Graph& graph);

/// Prefix sum of an importance vector (size n+1), the ITS input shared by
/// the replicated and partitioned samplers.
std::vector<value_t> fastgcn_importance_prefix(const std::vector<value_t>& importance);

/// Convenience: prefix sum of fastgcn_importance(graph).
std::vector<value_t> fastgcn_importance_prefix(const Graph& graph);

class FastGcnSampler : public MatrixSampler {
 public:
  FastGcnSampler(const Graph& graph, SamplerConfig config);

  std::vector<MinibatchSample> sample_bulk(
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids,
      std::uint64_t epoch_seed) const override;

  const SamplerConfig& config() const override { return exec_.config(); }
  std::map<std::string, double> op_time_breakdown() const override {
    return exec_.op_seconds();
  }
  Workspace* scratch_workspace() const override { return &ws_; }

  /// The compiled plan (tests / docs).
  const SamplePlan& plan() const { return exec_.plan(); }

  /// The global FastGCN distribution q (unnormalized: squared in-degrees).
  const std::vector<value_t>& importance() const { return importance_; }

 private:
  const Graph& graph_;
  PlanExecutor exec_;
  std::vector<value_t> importance_;         // q_v ∝ in_deg(v)²
  std::vector<value_t> importance_prefix_;  // shared ITS prefix sum
  /// Scratch arena reused across layers/bulks/epochs (see graphsage.hpp).
  mutable Workspace ws_;
};

}  // namespace dms
