#include "core/pinsage.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "plan/builders.hpp"

namespace dms {

Graph pinsage_importance_graph(const Graph& graph, const PinSageConfig& cfg) {
  check(cfg.num_walks >= 1, "pinsage_importance_graph: num_walks must be >= 1");
  check(cfg.walk_length >= 1,
        "pinsage_importance_graph: walk_length must be >= 1");
  check(cfg.top_neighbors >= 1,
        "pinsage_importance_graph: top_neighbors must be >= 1");
  const CsrMatrix& adj = graph.adjacency();
  const index_t n = adj.rows();
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  std::vector<index_t> count(static_cast<std::size_t>(n), 0);
  std::vector<index_t> touched;
  for (index_t v = 0; v < n; ++v) {
    touched.clear();
    for (index_t w = 0; w < cfg.num_walks; ++w) {
      // One independent uniform walk per (v, w), seeded like every other
      // sampler (never from the layout), so the graph is reproducible.
      Pcg32 rng(derive_seed(cfg.seed, static_cast<std::uint64_t>(v),
                            static_cast<std::uint64_t>(w), 0x9157),
                0x915);
      index_t cur = v;
      for (index_t s = 0; s < cfg.walk_length; ++s) {
        const auto deg = static_cast<index_t>(adj.row_nnz(cur));
        if (deg == 0) break;  // sink: the walk terminates
        cur = adj.row_cols(cur)[static_cast<std::size_t>(rng.bounded64(deg))];
        if (cur == v) continue;  // importance of v to itself is implicit
        if (count[static_cast<std::size_t>(cur)]++ == 0) touched.push_back(cur);
      }
    }
    // Top-T by (visit count desc, id asc) — the deterministic tie-break.
    std::sort(touched.begin(), touched.end(), [&](index_t a, index_t b) {
      const index_t ca = count[static_cast<std::size_t>(a)];
      const index_t cb = count[static_cast<std::size_t>(b)];
      return ca != cb ? ca > cb : a < b;
    });
    const std::size_t keep = std::min(
        touched.size(), static_cast<std::size_t>(cfg.top_neighbors));
    value_t total = 0.0;
    for (std::size_t i = 0; i < keep; ++i) {
      total += static_cast<value_t>(count[static_cast<std::size_t>(touched[i])]);
    }
    std::sort(touched.begin(), touched.begin() + static_cast<std::ptrdiff_t>(keep));
    for (std::size_t i = 0; i < keep; ++i) {
      cols.push_back(touched[i]);
      vals.push_back(
          static_cast<value_t>(count[static_cast<std::size_t>(touched[i])]) /
          total);
    }
    rowptr[static_cast<std::size_t>(v) + 1] = static_cast<nnz_t>(cols.size());
    for (const index_t t : touched) count[static_cast<std::size_t>(t)] = 0;
  }
  return Graph(CsrMatrix(n, n, std::move(rowptr), std::move(cols),
                         std::move(vals)));
}

PinSageSampler::PinSageSampler(const Graph& graph, SamplerConfig config,
                               PinSageConfig pcfg)
    : weighted_(pinsage_importance_graph(graph, pcfg)),
      config_(pcfg),
      exec_(build_pinsage_plan(), std::move(config)) {}

std::vector<MinibatchSample> PinSageSampler::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  return exec_.run(weighted_, batches, batch_ids, epoch_seed, &ws_);
}

}  // namespace dms
