// Minibatch scheduling: deterministic per-epoch permutation of the training
// set, partitioned into size-b batches (§6.1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dms {

/// Produces the minibatches of one epoch: a seeded Fisher–Yates shuffle of
/// train_idx split into ceil(|train|/b) batches (last batch may be short).
std::vector<std::vector<index_t>> make_epoch_batches(
    const std::vector<index_t>& train_idx, index_t batch_size,
    std::uint64_t epoch_seed);

}  // namespace dms
