#include "core/its.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace dms {

namespace {

/// Draws one index from the prefix-sum distribution via binary search:
/// the index i such that prefix[i] <= u < prefix[i+1].
index_t draw(const std::vector<value_t>& prefix, Pcg32& rng) {
  const value_t total = prefix.back();
  const value_t u = static_cast<value_t>(rng.uniform()) * total;
  const auto it = std::upper_bound(prefix.begin() + 1, prefix.end(), u);
  const auto idx = static_cast<index_t>(it - prefix.begin()) - 1;
  return std::min<index_t>(idx, static_cast<index_t>(prefix.size()) - 2);
}

}  // namespace

void its_sample_one(const std::vector<value_t>& prefix, index_t s,
                    std::uint64_t seed, std::vector<index_t>* out) {
  out->clear();
  const auto m = static_cast<index_t>(prefix.size()) - 1;
  if (m <= 0 || prefix.back() <= 0.0) return;
  if (m <= s) {  // take everything with positive mass
    for (index_t i = 0; i < m; ++i) {
      if (prefix[static_cast<std::size_t>(i) + 1] > prefix[static_cast<std::size_t>(i)]) {
        out->push_back(i);
      }
    }
    return;
  }
  Pcg32 rng(seed, 0x175);
  std::vector<char> chosen(static_cast<std::size_t>(m), 0);
  index_t found = 0;
  // Redraw-on-duplicate, as §4.1.2 describes. The attempt cap guards
  // pathological weight skew; the deterministic sweep below completes the
  // sample in that case.
  const index_t max_attempts = 64 * s + 64;
  for (index_t attempt = 0; attempt < max_attempts && found < s; ++attempt) {
    const index_t idx = draw(prefix, rng);
    if (!chosen[static_cast<std::size_t>(idx)]) {
      chosen[static_cast<std::size_t>(idx)] = 1;
      ++found;
    }
  }
  for (index_t i = 0; i < m && found < s; ++i) {
    const bool has_mass =
        prefix[static_cast<std::size_t>(i) + 1] > prefix[static_cast<std::size_t>(i)];
    if (has_mass && !chosen[static_cast<std::size_t>(i)]) {
      chosen[static_cast<std::size_t>(i)] = 1;
      ++found;
    }
  }
  for (index_t i = 0; i < m; ++i) {
    if (chosen[static_cast<std::size_t>(i)]) out->push_back(i);
  }
}

CsrMatrix its_sample_rows(const CsrMatrix& p, index_t s, const RowSeedFn& row_seed) {
  check(s >= 0, "its_sample_rows: negative s");
  const index_t rows = p.rows();
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(rows) + 1, 0);
  std::vector<index_t> colidx;
  std::vector<value_t> vals;
  std::vector<value_t> prefix;
  std::vector<index_t> picked;
  for (index_t r = 0; r < rows; ++r) {
    const auto rvals = p.row_vals(r);
    const auto rcols = p.row_cols(r);
    prefix.assign(1, 0.0);
    prefix.reserve(rvals.size() + 1);
    for (const value_t v : rvals) prefix.push_back(prefix.back() + std::max(v, 0.0));
    its_sample_one(prefix, s, row_seed(r), &picked);
    for (const index_t local : picked) {
      colidx.push_back(rcols[static_cast<std::size_t>(local)]);
      vals.push_back(1.0);
    }
    rowptr[static_cast<std::size_t>(r) + 1] = static_cast<nnz_t>(colidx.size());
  }
  return CsrMatrix(rows, p.cols(), std::move(rowptr), std::move(colidx), std::move(vals));
}

CsrMatrix its_sample_rows(const CsrMatrix& p, index_t s, std::uint64_t seed) {
  return its_sample_rows(p, s, [seed](index_t row) { return derive_seed(seed, static_cast<std::uint64_t>(row)); });
}

}  // namespace dms
