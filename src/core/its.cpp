#include "core/its.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {

namespace {

/// Draws one index from the prefix-sum distribution via binary search:
/// the index i such that prefix[i] <= u < prefix[i+1].
index_t draw(const std::vector<value_t>& prefix, Pcg32& rng) {
  const value_t total = prefix.back();
  const value_t u = static_cast<value_t>(rng.uniform()) * total;
  const auto it = std::upper_bound(prefix.begin() + 1, prefix.end(), u);
  const auto idx = static_cast<index_t>(it - prefix.begin()) - 1;
  return std::min<index_t>(idx, static_cast<index_t>(prefix.size()) - 2);
}

}  // namespace

void its_sample_one(const std::vector<value_t>& prefix, index_t s,
                    std::uint64_t seed, std::vector<index_t>* out,
                    std::vector<char>& chosen) {
  out->clear();
  const auto m = static_cast<index_t>(prefix.size()) - 1;
  if (m <= 0 || prefix.back() <= 0.0) return;
  if (m <= s) {  // take everything with positive mass
    for (index_t i = 0; i < m; ++i) {
      if (prefix[static_cast<std::size_t>(i) + 1] > prefix[static_cast<std::size_t>(i)]) {
        out->push_back(i);
      }
    }
    return;
  }
  Pcg32 rng(seed, 0x175);
  chosen.assign(static_cast<std::size_t>(m), 0);
  index_t found = 0;
  // Redraw-on-duplicate, as §4.1.2 describes. The attempt cap guards
  // pathological weight skew; the deterministic sweep below completes the
  // sample in that case.
  const index_t max_attempts = 64 * s + 64;
  for (index_t attempt = 0; attempt < max_attempts && found < s; ++attempt) {
    const index_t idx = draw(prefix, rng);
    if (!chosen[static_cast<std::size_t>(idx)]) {
      chosen[static_cast<std::size_t>(idx)] = 1;
      ++found;
    }
  }
  for (index_t i = 0; i < m && found < s; ++i) {
    const bool has_mass =
        prefix[static_cast<std::size_t>(i) + 1] > prefix[static_cast<std::size_t>(i)];
    if (has_mass && !chosen[static_cast<std::size_t>(i)]) {
      chosen[static_cast<std::size_t>(i)] = 1;
      ++found;
    }
  }
  for (index_t i = 0; i < m; ++i) {
    if (chosen[static_cast<std::size_t>(i)]) out->push_back(i);
  }
}

CsrMatrix its_sample_rows(const CsrMatrix& p, index_t s, const RowSeedFn& row_seed,
                          Workspace* ws_opt) {
  check(s >= 0, "its_sample_rows: negative s");
  const index_t rows = p.rows();
  Workspace local;
  Workspace& ws = ws_opt != nullptr ? *ws_opt : local;

  // The engine's work-balanced decomposition over the nnz prefix (a row's
  // sampling cost is dominated by its O(row nnz) prefix build, and a CSR
  // rowptr is exactly that work prefix).
  const std::vector<index_t> bounds = work_balanced_bounds(
      p.rowptr(), rows, ThreadPool::global().size());
  const auto nblocks = static_cast<index_t>(bounds.size()) - 1;
  ws.ensure_slots(static_cast<std::size_t>(nblocks));

  // Pass 1 (count + stage): sample every row into its block's staging slot
  // — prefix sum in slot.vals, picked locals in slot.touched, chosen flags
  // in slot.flags, mapped global columns appended to slot.colidx — and
  // record the per-row sample count. Per-row seeds make the result
  // independent of this decomposition.
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(rows) + 1, 0);
  auto sample_block = [&](index_t blk) {
    WorkspaceSlot& slot = ws.slot(static_cast<std::size_t>(blk));
    slot.colidx.clear();
    for (index_t r = bounds[static_cast<std::size_t>(blk)];
         r < bounds[static_cast<std::size_t>(blk) + 1]; ++r) {
      const auto rvals = p.row_vals(r);
      const auto rcols = p.row_cols(r);
      if (s == 1) {
        // Single uniform draw (the walk-advance shape): skip the prefix
        // vector and redraw machinery — accumulate the total, draw once,
        // and scan back to the chosen entry. The accumulation and the
        // scan repeat the exact float ops of the prefix build, and the
        // scan's first acc > u index equals the prefix upper_bound, so
        // the pick is bit-identical to the general path.
        slot.touched.clear();
        const auto m = static_cast<index_t>(rvals.size());
        value_t total = 0.0;
        for (const value_t v : rvals) total += std::max(v, 0.0);
        if (m > 0 && total > 0.0) {
          if (m == 1) {
            slot.touched.push_back(0);
          } else {
            Pcg32 rng(row_seed(r), 0x175);
            const value_t u = static_cast<value_t>(rng.uniform()) * total;
            value_t acc = 0.0;
            index_t idx = m - 1;
            for (index_t k = 0; k < m; ++k) {
              acc += std::max(rvals[static_cast<std::size_t>(k)], 0.0);
              if (acc > u) {
                idx = k;
                break;
              }
            }
            slot.touched.push_back(idx);
          }
        }
      } else {
        slot.vals.clear();
        slot.vals.push_back(0.0);
        for (const value_t v : rvals) {
          slot.vals.push_back(slot.vals.back() + std::max(v, 0.0));
        }
        its_sample_one(slot.vals, s, row_seed(r), &slot.touched, slot.flags);
      }
      for (const index_t local : slot.touched) {
        slot.colidx.push_back(rcols[static_cast<std::size_t>(local)]);
      }
      rowptr[static_cast<std::size_t>(r) + 1] =
          static_cast<nnz_t>(slot.touched.size());
    }
  };
  if (nblocks <= 1) {
    if (nblocks == 1) sample_block(0);
  } else {
    ThreadPool::global().parallel_for(nblocks, sample_block);
  }

  // Serial prefix sum: per-row counts → CSR row offsets.
  for (index_t r = 0; r < rows; ++r) {
    rowptr[static_cast<std::size_t>(r) + 1] += rowptr[static_cast<std::size_t>(r)];
  }
  const nnz_t total = rowptr[static_cast<std::size_t>(rows)];

  // Pass 2 (fill): copy each block's staged columns to its final offset.
  std::vector<index_t> colidx(static_cast<std::size_t>(total));
  std::vector<value_t> vals(static_cast<std::size_t>(total), 1.0);
  auto fill_block = [&](index_t blk) {
    const WorkspaceSlot& slot = ws.slot(static_cast<std::size_t>(blk));
    const nnz_t dst = rowptr[static_cast<std::size_t>(
        bounds[static_cast<std::size_t>(blk)])];
    std::copy(slot.colidx.begin(), slot.colidx.end(),
              colidx.begin() + static_cast<std::ptrdiff_t>(dst));
  };
  if (nblocks <= 1) {
    if (nblocks == 1) fill_block(0);
  } else {
    ThreadPool::global().parallel_for(nblocks, fill_block);
  }

  return CsrMatrix(rows, p.cols(), std::move(rowptr), std::move(colidx),
                   std::move(vals));
}

CsrMatrix its_sample_rows(const CsrMatrix& p, index_t s, std::uint64_t seed,
                          Workspace* ws) {
  return its_sample_rows(
      p, s,
      [seed](index_t row) { return derive_seed(seed, static_cast<std::uint64_t>(row)); },
      ws);
}

}  // namespace dms
