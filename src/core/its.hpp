// Inverse Transform Sampling (ITS) from the rows of a probability matrix —
// the SAMPLE step of Algorithm 1 (§4.1.2).
//
// For each row of P: build a prefix sum of the row's values, draw s uniform
// randoms, binary-search each into the prefix sum, and redraw duplicates so
// the s selected nonzero columns are distinct (sampling without
// replacement). Rows with ≤ s nonzeros contribute all their nonzeros.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sparse/csr.hpp"

namespace dms {

/// Per-row seed callback: must return the same seed for the same logical row
/// regardless of how rows are distributed across ranks. This is what makes a
/// p-rank run reproduce a 1-rank run sample-for-sample.
using RowSeedFn = std::function<std::uint64_t(index_t row)>;

/// Samples up to s distinct nonzero columns from each row of P proportional
/// to the row's values. Returns a 0/1 matrix Q of the same shape with
/// min(s, row_nnz) nonzeros per row (sorted column order).
CsrMatrix its_sample_rows(const CsrMatrix& p, index_t s, const RowSeedFn& row_seed);

/// Convenience overload: seeds derived as derive_seed(seed, row).
CsrMatrix its_sample_rows(const CsrMatrix& p, index_t s, std::uint64_t seed);

/// Samples s distinct indices from `weights` (size m, nonnegative, not all
/// zero unless m == 0), writing ascending indices to `out`. Exposed for
/// direct reuse by the loop-based baselines and for unit testing.
void its_sample_one(const std::vector<value_t>& prefix, index_t s,
                    std::uint64_t seed, std::vector<index_t>* out);

}  // namespace dms
