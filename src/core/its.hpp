// Inverse Transform Sampling (ITS) from the rows of a probability matrix —
// the SAMPLE step of Algorithm 1 (§4.1.2).
//
// For each row of P: build a prefix sum of the row's values, draw s uniform
// randoms, binary-search each into the prefix sum, and redraw duplicates so
// the s selected nonzero columns are distinct (sampling without
// replacement). Rows with ≤ s nonzeros contribute all their nonzeros.
//
// Execution: rows are embarrassingly parallel — every row's randomness comes
// only from its own seed — so its_sample_rows runs a two-pass count-then-fill
// scheme over nnz-balanced contiguous row blocks (DESIGN.md §7): pass 1
// samples each block's rows into per-block workspace staging (recording
// per-row counts), a serial prefix sum lays out the CSR rowptr, and pass 2
// copies each block's staged columns to its final offset. The result is
// bit-identical to the serial row loop at every thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/workspace.hpp"
#include "sparse/csr.hpp"

namespace dms {

/// Per-row seed callback: must return the same seed for the same logical row
/// regardless of how rows are distributed across ranks. This is what makes a
/// p-rank run reproduce a 1-rank run sample-for-sample.
using RowSeedFn = std::function<std::uint64_t(index_t row)>;

/// Samples up to s distinct nonzero columns from each row of P proportional
/// to the row's values. Returns a 0/1 matrix Q of the same shape with
/// min(s, row_nnz) nonzeros per row (sorted column order). `ws` (optional)
/// provides reusable scratch so steady-state calls allocate only the result.
CsrMatrix its_sample_rows(const CsrMatrix& p, index_t s, const RowSeedFn& row_seed,
                          Workspace* ws = nullptr);

/// Convenience overload: seeds derived as derive_seed(seed, row).
CsrMatrix its_sample_rows(const CsrMatrix& p, index_t s, std::uint64_t seed,
                          Workspace* ws = nullptr);

/// Samples s distinct indices from `weights` (size m, nonnegative, not all
/// zero unless m == 0), writing ascending indices to `out`. Exposed for
/// direct reuse by the loop-based baselines and for unit testing.
/// `chosen` is caller-provided scratch (resized/cleared here), so repeated
/// calls reuse one allocation (the workspace-arena contract; the historical
/// no-scratch shim is gone — every caller passes its own scratch).
void its_sample_one(const std::vector<value_t>& prefix, index_t s,
                    std::uint64_t seed, std::vector<index_t>* out,
                    std::vector<char>& chosen);

}  // namespace dms
