#include "core/labor.hpp"

#include "plan/builders.hpp"

namespace dms {

LaborSampler::LaborSampler(const Graph& graph, SamplerConfig config)
    : graph_(graph), exec_(build_labor_plan(), std::move(config)) {
  check(!exec_.config().fanouts.empty(), "LaborSampler: fanouts must be non-empty");
  for (const index_t f : exec_.config().fanouts) {
    check(f > 0, "LaborSampler: fanouts must be positive");
  }
}

std::vector<MinibatchSample> LaborSampler::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  return exec_.run(graph_, batches, batch_ids, epoch_seed, &ws_);
}

}  // namespace dms
