// Matrix-based LADIES sampler (§4.2) — the paper's layer-wise example and,
// distributed, the first fully distributed LADIES implementation (§1) —
// compiled to a sampling plan (DESIGN.md §9).
//
// Per layer (Algorithm 1 with the LADIES constructions):
//   Q     one row per batch with |S| nonzeros (indicator of the batch /
//         current layer set), §4.2.1
//   P     ← Q·A; NORM squares each entry and row-normalizes, giving
//         p_v = e_v² / Σ_u e_u²  (Zou et al. 2019)
//   Qˡ⁻¹  ← SAMPLE(P, s): s vertices per batch via ITS, §4.2.2
//   Aˡ    ← the fused masked extraction (Q_R·A)[:, S], §4.2.3/§8.2.2
// This sequence IS build_ladies_plan(); the class is validation plus a
// PlanExecutor delegation, and the partitioned variant runs the
// dist-lowered copy of the same plan.
#pragma once

#include "common/workspace.hpp"
#include "core/sampler.hpp"
#include "plan/executor.hpp"

namespace dms {

// Deterministic LADIES building blocks, shared verbatim with the plan
// executor so every execution mode produces bit-identical minibatches (the
// determinism contract of the dist tests).

/// The LADIES Q matrix: one row per batch, indicator of that batch's current
/// vertex set (§4.2.1).
CsrMatrix ladies_indicator_rows(index_t n,
                                const std::vector<std::vector<index_t>>& sets);

/// NORM for LADIES: square every value, then row-normalize (p_v ∝ e_v²).
void ladies_norm(CsrMatrix& p);

/// Column-extraction matrix Q_C ∈ {0,1}^{n×s}: one nonzero per column at the
/// row index of each vertex to extract (§4.2.3).
CsrMatrix ladies_column_extractor(index_t n, const std::vector<index_t>& sampled);

/// Assembles the LayerSample for one batch from the extracted A_S (rows =
/// current set, columns = sampled order). The kFrontierUnion/kSampledSets
/// op of the plan executor (also FastGCN's assembly).
LayerSample ladies_assemble_layer(const std::vector<index_t>& rows,
                                  const std::vector<index_t>& sampled,
                                  const CsrMatrix& a_s);

class LadiesSampler : public MatrixSampler {
 public:
  LadiesSampler(const Graph& graph, SamplerConfig config);

  std::vector<MinibatchSample> sample_bulk(
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids,
      std::uint64_t epoch_seed) const override;

  const SamplerConfig& config() const override { return exec_.config(); }
  std::map<std::string, double> op_time_breakdown() const override {
    return exec_.op_seconds();
  }
  Workspace* scratch_workspace() const override { return &ws_; }

  /// The compiled plan (tests / docs).
  const SamplePlan& plan() const { return exec_.plan(); }

  /// The LADIES probability vector for one batch over all n vertices:
  /// p_v = e_v² / Σ e_u² where e_v = |N(v) ∩ batch|. Exposed for tests
  /// (it is the distribution of Figure 1's example).
  std::vector<value_t> probability_vector(const std::vector<index_t>& batch) const;

 private:
  const Graph& graph_;
  PlanExecutor exec_;
  /// Scratch arena reused across layers/bulks/epochs (see graphsage.hpp).
  mutable Workspace ws_;
};

}  // namespace dms
