// Matrix-based GraphSAINT-RW sampler — a *graph-wise* sampling algorithm
// (the third taxonomy of §2.2, which the paper leaves to future work:
// "we hope to express additional sampling algorithms in this framework").
//
// GraphSAINT (Zeng et al. 2020) builds each minibatch as the subgraph
// induced by the union of short random walks from the batch roots. In the
// matrix framework every step is an existing primitive:
//   walk step:     P ← Q·A, NORM(P), Q' ← SAMPLE(P, 1)   (ITS with s=1)
//   subgraph:      V_s = ∪ visited;  A_s = rows/columns of A on V_s
//                  (row extraction + column extraction, §4.2.3)
// An L-layer model trains on the same induced adjacency at every layer, so
// the emitted MinibatchSample repeats A_s L times with rows == columns ==
// V_s (consistent with the frontier convention of sampler.hpp).
#pragma once

#include "common/workspace.hpp"
#include "core/sampler.hpp"

namespace dms {

struct GraphSaintConfig {
  index_t walk_length = 2;   ///< steps per random walk
  index_t model_layers = 1;  ///< how many (identical) layers to emit
  std::uint64_t seed = 1;
};

class GraphSaintSampler : public MatrixSampler {
 public:
  GraphSaintSampler(const Graph& graph, GraphSaintConfig config);

  /// batches[i] holds the walk roots of minibatch i. The sample's
  /// batch_vertices are the full induced vertex set V_s (GraphSAINT trains
  /// on every labeled vertex of the subgraph).
  std::vector<MinibatchSample> sample_bulk(
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids,
      std::uint64_t epoch_seed) const override;

  const SamplerConfig& config() const override { return sampler_config_; }
  const GraphSaintConfig& saint_config() const { return config_; }

 private:
  const Graph& graph_;
  GraphSaintConfig config_;
  SamplerConfig sampler_config_;  // adapter for the MatrixSampler interface
  /// Scratch arena reused across walk steps/bulks/epochs (see graphsage.hpp).
  mutable Workspace ws_;
};

}  // namespace dms
