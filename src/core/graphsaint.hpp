// Matrix-based GraphSAINT-RW sampler — a *graph-wise* sampling algorithm
// (the third taxonomy of §2.2, which the paper leaves to future work) —
// compiled to a walk-shaped sampling plan (DESIGN.md §9).
//
// GraphSAINT (Zeng et al. 2020) builds each minibatch as the subgraph
// induced by the union of short random walks from the batch roots. In the
// plan IR every step is an existing op:
//   walk round:    kBuildQ → kSpgemm → kNormalize → kItsSample(s=1)
//                  → kWalkAdvance (dead walks drop out, visited grows)
//   epilogue:      kInducedLayers — V_s = ∪ visited, A_s = A[V_s, V_s]
//                  (row extraction + masked column extraction, §4.2.3)
// An L-layer model trains on the same induced adjacency at every layer, so
// the epilogue emits A_s L times with rows == columns == V_s (consistent
// with the frontier convention of sampler.hpp). The walk length is the
// plan's explicit round count — independent of the model depth.
#pragma once

#include "common/workspace.hpp"
#include "core/sampler.hpp"
#include "plan/executor.hpp"

namespace dms {

struct GraphSaintConfig {
  index_t walk_length = 2;   ///< steps per random walk
  index_t model_layers = 1;  ///< how many (identical) layers to emit
  std::uint64_t seed = 1;
};

/// MatrixSampler-interface adapter shared by the walk samplers (GraphSAINT,
/// node2vec, and their partitioned forms): one unit fanout per model layer —
/// the walk length is the plan's explicit round count, not a fanout.
SamplerConfig walk_adapter_config(index_t model_layers, std::uint64_t seed);

class GraphSaintSampler : public MatrixSampler {
 public:
  GraphSaintSampler(const Graph& graph, GraphSaintConfig config);

  /// batches[i] holds the walk roots of minibatch i. The sample's
  /// batch_vertices are the full induced vertex set V_s (GraphSAINT trains
  /// on every labeled vertex of the subgraph).
  std::vector<MinibatchSample> sample_bulk(
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids,
      std::uint64_t epoch_seed) const override;

  const SamplerConfig& config() const override { return exec_.config(); }
  std::map<std::string, double> op_time_breakdown() const override {
    return exec_.op_seconds();
  }
  Workspace* scratch_workspace() const override { return &ws_; }
  const GraphSaintConfig& saint_config() const { return config_; }

  /// Fused walk-engine controls (forwarded to the executor; takes effect on
  /// the next sample_bulk). set_walk_options({.fused = false}) forces the
  /// op-by-op matrix path — bit-identical, used by tests and micro_walk.
  void set_walk_options(const WalkEngineOptions& opts) {
    exec_.set_walk_options(opts);
  }
  const PlanExecutor& executor() const { return exec_; }

  /// The compiled plan (tests / docs).
  const SamplePlan& plan() const { return exec_.plan(); }

 private:
  const Graph& graph_;
  GraphSaintConfig config_;
  PlanExecutor exec_;
  /// Scratch arena reused across walk steps/bulks/epochs (see graphsage.hpp).
  mutable Workspace ws_;
};

}  // namespace dms
