#include "core/graphsage.hpp"

#include "common/rng.hpp"
#include "core/frontier.hpp"
#include "core/its.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {

RowSeedFn sage_row_seed_fn(const FrontierStack& stack,
                           const std::vector<index_t>& batch_ids,
                           index_t first_batch, index_t layer,
                           std::uint64_t epoch_seed) {
  // Stacked row -> per-row seed, precomputed so the closure owns its state
  // (no borrowed references — the caller may store the function).
  std::vector<std::uint64_t> row_seed(stack.vertices.size());
  for (std::size_t b = 0; b + 1 < stack.offsets.size(); ++b) {
    const index_t g = first_batch + static_cast<index_t>(b);
    const auto id = static_cast<std::uint64_t>(batch_ids[static_cast<std::size_t>(g)]);
    for (index_t r = stack.offsets[b]; r < stack.offsets[b + 1]; ++r) {
      row_seed[static_cast<std::size_t>(r)] =
          derive_seed(epoch_seed, id, static_cast<std::uint64_t>(layer),
                      static_cast<std::uint64_t>(r - stack.offsets[b]));
    }
  }
  return [row_seed = std::move(row_seed)](index_t row) {
    return row_seed[static_cast<std::size_t>(row)];
  };
}

LayerSample sage_extract_layer(const CsrMatrix& qs, const FrontierStack& stack,
                               std::size_t b,
                               const std::vector<index_t>& frontier_b) {
  const index_t r0 = stack.offsets[b];
  const index_t r1 = stack.offsets[b + 1];
  std::vector<std::vector<index_t>> sampled(static_cast<std::size_t>(r1 - r0));
  for (index_t r = r0; r < r1; ++r) {
    const auto cols = qs.row_cols(r);
    sampled[static_cast<std::size_t>(r - r0)].assign(cols.begin(), cols.end());
  }
  return build_layer_sample(frontier_b, sampled);
}

GraphSageSampler::GraphSageSampler(const Graph& graph, SamplerConfig config)
    : graph_(graph), config_(std::move(config)) {
  check(!config_.fanouts.empty(), "GraphSageSampler: fanouts must be non-empty");
  for (const index_t f : config_.fanouts) {
    check(f > 0, "GraphSageSampler: fanouts must be positive");
  }
}

std::vector<MinibatchSample> GraphSageSampler::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  const index_t k = static_cast<index_t>(batches.size());
  const index_t n = graph_.num_vertices();
  const index_t num_layers = config_.num_layers();

  std::vector<MinibatchSample> out(static_cast<std::size_t>(k));
  std::vector<std::vector<index_t>> frontier(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    out[static_cast<std::size_t>(i)].batch_vertices = batches[static_cast<std::size_t>(i)];
    frontier[static_cast<std::size_t>(i)] = batches[static_cast<std::size_t>(i)];
  }

  for (index_t l = 0; l < num_layers; ++l) {
    const index_t s = config_.fanouts[static_cast<std::size_t>(l)];

    // --- Stack the per-batch Q blocks (Eq. 1): one nonzero per row. ---
    const FrontierStack stack = stack_frontiers(frontier);
    const CsrMatrix q = CsrMatrix::one_nonzero_per_row(n, stack.vertices);

    // --- Generate probability distributions: P ← Q·A, NORM(P). ---
    SpgemmOptions sopts;
    sopts.workspace = &ws_;
    CsrMatrix p = spgemm(q, graph_.adjacency(), sopts);
    normalize_rows(p);

    // --- SAMPLE(P, b, s) with ITS; seeds keyed by (epoch, batch, layer,
    // local row) so results do not depend on k or the rank layout. ---
    const CsrMatrix qs = its_sample_rows(
        p, s, sage_row_seed_fn(stack, batch_ids, 0, l, epoch_seed), &ws_);

    // --- EXTRACT per batch block: renumber sampled columns into the new
    // frontier (row vertices lead, §4.1.3). ---
    for (index_t i = 0; i < k; ++i) {
      LayerSample layer = sage_extract_layer(qs, stack, static_cast<std::size_t>(i),
                                             frontier[static_cast<std::size_t>(i)]);
      frontier[static_cast<std::size_t>(i)] = layer.col_vertices;
      out[static_cast<std::size_t>(i)].layers.push_back(std::move(layer));
    }
  }
  return out;
}

}  // namespace dms
