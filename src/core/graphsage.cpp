#include "core/graphsage.hpp"

#include "common/rng.hpp"
#include "core/frontier.hpp"
#include "core/its.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm.hpp"

namespace dms {

GraphSageSampler::GraphSageSampler(const Graph& graph, SamplerConfig config)
    : graph_(graph), config_(std::move(config)) {
  check(!config_.fanouts.empty(), "GraphSageSampler: fanouts must be non-empty");
  for (const index_t f : config_.fanouts) {
    check(f > 0, "GraphSageSampler: fanouts must be positive");
  }
}

std::vector<MinibatchSample> GraphSageSampler::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  const index_t k = static_cast<index_t>(batches.size());
  const index_t n = graph_.num_vertices();
  const index_t num_layers = config_.num_layers();

  std::vector<MinibatchSample> out(static_cast<std::size_t>(k));
  std::vector<std::vector<index_t>> frontier(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    out[static_cast<std::size_t>(i)].batch_vertices = batches[static_cast<std::size_t>(i)];
    frontier[static_cast<std::size_t>(i)] = batches[static_cast<std::size_t>(i)];
  }

  for (index_t l = 0; l < num_layers; ++l) {
    const index_t s = config_.fanouts[static_cast<std::size_t>(l)];

    // --- Stack the per-batch Q blocks (Eq. 1): one nonzero per row. ---
    std::vector<index_t> stacked;
    std::vector<index_t> block_offset(static_cast<std::size_t>(k) + 1, 0);
    for (index_t i = 0; i < k; ++i) {
      const auto& f = frontier[static_cast<std::size_t>(i)];
      stacked.insert(stacked.end(), f.begin(), f.end());
      block_offset[static_cast<std::size_t>(i) + 1] = static_cast<index_t>(stacked.size());
    }
    const CsrMatrix q = CsrMatrix::one_nonzero_per_row(n, stacked);

    // --- Generate probability distributions: P ← Q·A, NORM(P). ---
    CsrMatrix p = spgemm(q, graph_.adjacency());
    normalize_rows(p);

    // --- SAMPLE(P, b, s) with ITS; seeds keyed by (epoch, batch, layer,
    // local row) so results do not depend on k or the rank layout. ---
    // Map stacked row -> (batch index, local row) for the seed function.
    std::vector<index_t> row_batch(static_cast<std::size_t>(stacked.size()));
    for (index_t i = 0; i < k; ++i) {
      for (index_t r = block_offset[static_cast<std::size_t>(i)];
           r < block_offset[static_cast<std::size_t>(i) + 1]; ++r) {
        row_batch[static_cast<std::size_t>(r)] = i;
      }
    }
    const CsrMatrix qs = its_sample_rows(p, s, [&](index_t row) {
      const index_t i = row_batch[static_cast<std::size_t>(row)];
      const index_t local = row - block_offset[static_cast<std::size_t>(i)];
      return derive_seed(epoch_seed,
                         static_cast<std::uint64_t>(batch_ids[static_cast<std::size_t>(i)]),
                         static_cast<std::uint64_t>(l),
                         static_cast<std::uint64_t>(local));
    });

    // --- EXTRACT per batch block: renumber sampled columns into the new
    // frontier (row vertices lead, §4.1.3). ---
    for (index_t i = 0; i < k; ++i) {
      const index_t r0 = block_offset[static_cast<std::size_t>(i)];
      const index_t r1 = block_offset[static_cast<std::size_t>(i) + 1];
      std::vector<std::vector<index_t>> sampled(static_cast<std::size_t>(r1 - r0));
      for (index_t r = r0; r < r1; ++r) {
        const auto cols = qs.row_cols(r);
        sampled[static_cast<std::size_t>(r - r0)].assign(cols.begin(), cols.end());
      }
      LayerSample layer =
          build_layer_sample(frontier[static_cast<std::size_t>(i)], sampled);
      frontier[static_cast<std::size_t>(i)] = layer.col_vertices;
      out[static_cast<std::size_t>(i)].layers.push_back(std::move(layer));
    }
  }
  return out;
}

}  // namespace dms
