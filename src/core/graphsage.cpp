#include "core/graphsage.hpp"

#include "common/rng.hpp"
#include "plan/builders.hpp"
#include "sparse/ops.hpp"

namespace dms {

RowSeedFn sage_row_seed_fn(const FrontierStack& stack,
                           const std::vector<index_t>& batch_ids,
                           index_t first_batch, index_t layer,
                           std::uint64_t epoch_seed) {
  // Stacked row -> per-row seed, precomputed so the closure owns its state
  // (no borrowed references — the caller may store the function).
  std::vector<std::uint64_t> row_seed(stack.vertices.size());
  for (std::size_t b = 0; b + 1 < stack.offsets.size(); ++b) {
    const index_t g = first_batch + static_cast<index_t>(b);
    const auto id = static_cast<std::uint64_t>(batch_ids[static_cast<std::size_t>(g)]);
    for (index_t r = stack.offsets[b]; r < stack.offsets[b + 1]; ++r) {
      row_seed[static_cast<std::size_t>(r)] =
          derive_seed(epoch_seed, id, static_cast<std::uint64_t>(layer),
                      static_cast<std::uint64_t>(r - stack.offsets[b]));
    }
  }
  return [row_seed = std::move(row_seed)](index_t row) {
    return row_seed[static_cast<std::size_t>(row)];
  };
}

LayerSample sage_extract_layer(const CsrMatrix& qs, const FrontierStack& stack,
                               std::size_t b,
                               const std::vector<index_t>& frontier_b) {
  const index_t r0 = stack.offsets[b];
  const index_t r1 = stack.offsets[b + 1];
  std::vector<std::vector<index_t>> sampled(static_cast<std::size_t>(r1 - r0));
  for (index_t r = r0; r < r1; ++r) {
    const auto cols = qs.row_cols(r);
    sampled[static_cast<std::size_t>(r - r0)].assign(cols.begin(), cols.end());
  }
  return build_layer_sample(frontier_b, sampled);
}

GraphSageSampler::GraphSageSampler(const Graph& graph, SamplerConfig config)
    : graph_(graph), exec_(build_sage_plan(), std::move(config)) {
  check(!exec_.config().fanouts.empty(),
        "GraphSageSampler: fanouts must be non-empty");
  for (const index_t f : exec_.config().fanouts) {
    check(f > 0, "GraphSageSampler: fanouts must be positive");
  }
}

std::vector<MinibatchSample> GraphSageSampler::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  return exec_.run(graph_, batches, batch_ids, epoch_seed, &ws_);
}

}  // namespace dms
