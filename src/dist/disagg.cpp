#include "dist/disagg.hpp"

#include <algorithm>
#include <string>

namespace dms {

namespace {

/// Largest divisor of n that is <= cap (n >= 1, cap >= 1).
int largest_divisor_at_most(int n, int cap) {
  for (int d = std::min(n, cap); d >= 1; --d) {
    if (n % d == 0) return d;
  }
  return 1;
}

}  // namespace

DisaggLayout make_disagg_layout(const ProcessGrid& full,
                                const DisaggOptions& opts) {
  const int p = full.size();
  check(p >= 2, "make_disagg_layout: disaggregation needs at least 2 ranks "
                "(1 sampler + 1 trainer)");
  check(opts.sampler_ranks >= 0 && opts.sampler_c >= 0 && opts.trainer_c >= 0,
        "make_disagg_layout: sampler_ranks / sampler_c / trainer_c must be "
        ">= 0 (0 = auto)");
  const int s = opts.sampler_ranks > 0 ? opts.sampler_ranks : std::max(1, p / 4);
  check(s >= 1 && s < p,
        "make_disagg_layout: sampler_ranks must be in [1, p): got " +
            std::to_string(s) + " of " + std::to_string(p));
  const int t = p - s;
  const int cs = opts.sampler_c > 0 ? opts.sampler_c : 1;
  check(s % cs == 0, "make_disagg_layout: sampler_c must divide sampler_ranks");
  const int ct = opts.trainer_c > 0
                     ? opts.trainer_c
                     : largest_divisor_at_most(t, full.replication());
  check(t % ct == 0, "make_disagg_layout: trainer_c must divide the trainer "
                     "count (p - sampler_ranks)");
  DisaggLayout layout;
  layout.total = p;
  layout.samplers = s;
  layout.trainers = t;
  layout.sampler_grid = ProcessGrid(s, cs);
  layout.trainer_grid = ProcessGrid(t, ct);
  return layout;
}

}  // namespace dms
