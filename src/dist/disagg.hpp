// Disaggregated sampler/trainer rank roles (DESIGN.md §14, the FGNN-style
// split of ROADMAP item 1).
//
// DistMode::kDisaggregated divides the p ranks of the pipeline's cluster
// into two roles: global ranks [0, s) are *sampler* ranks and
// [s, p) are *trainer* ranks. Each role runs its own 1.5D sub-grid:
//
//  - the sampler grid (s ranks, replication c_s) owns the block-row
//    distributed adjacency; the dist lowering pass places every plan op on
//    these ranks (the partitioned sampler is simply constructed over this
//    sub-grid, so lower_to_dist needs no new rewrite);
//  - the trainer grid (t = p - s ranks, replication c_t) owns the 1.5D
//    feature store, the model replicas, and the gradient all-reduce.
//    Trainers hold no adjacency, which is what frees the memory that funds
//    a higher feature replication factor or a larger feature cache than a
//    colocated run of the same per-rank budget could afford.
//
// The *logical* training schedule is inherited unchanged from kReplicated:
// batches occupy p logical slots (the same BlockPartition(k, p), the same
// grouping of batches into optimizer steps, the same accumulation order),
// and each trainer executes the p/t slots that map to it per step. That
// inheritance is what makes kDisaggregated losses bit-identical to
// kReplicated for every SamplerKind — the §9 determinism contract extended
// across rank roles. Completed bulk rounds stream sampler → trainer through
// Cluster::record_comm (the "handoff" phase), so transient-loss fault plans
// retry the handoff exactly like any other modeled message.
#pragma once

#include "comm/grid.hpp"
#include "common/types.hpp"

namespace dms {

struct DisaggOptions {
  /// Sampler ranks s. 0 = auto: max(1, p/4) — one sampler per four ranks,
  /// matching FGNN's typical 1:3 provisioning.
  int sampler_ranks = 0;
  /// Sampler-grid replication c_s. 0 = auto: 1 (every sampler rank is its
  /// own block row, maximizing parallel bulk rounds — replication would
  /// idle samplers, since bulk batches are assigned per process *row*).
  int sampler_c = 0;
  /// Trainer-grid replication c_t. 0 = auto: the largest divisor of t that
  /// is <= the full grid's replication factor. Higher c_t = fewer block
  /// rows = more feature rows local to each trainer and a smaller
  /// all-to-allv column — the fetch-side win the freed adjacency memory
  /// pays for.
  int trainer_c = 0;
};

struct DisaggLayout {
  int total = 0;     ///< p: all ranks of the pipeline's cluster
  int samplers = 0;  ///< s: global ranks [0, s)
  int trainers = 0;  ///< t = p - s: global ranks [s, p)
  ProcessGrid sampler_grid;  ///< (s, c_s)
  ProcessGrid trainer_grid;  ///< (t, c_t)

  /// Global rank of sampler-grid rank i / trainer-grid rank j.
  int sampler_rank(int i) const { return i; }
  int trainer_rank(int j) const { return samplers + j; }

  /// Which trainer executes logical slot `slot` (slots 0..p-1 carry the
  /// kReplicated batch placement). Slots are dealt in waves of t: wave w
  /// covers slots [w*t, w*t + t), one per trainer, so per-step load stays
  /// balanced whenever t divides p.
  int trainer_of_slot(index_t slot) const {
    return static_cast<int>(slot) % trainers;
  }
};

/// Splits `full` (the pipeline cluster's grid) into sampler/trainer roles.
/// Throws DmsError unless 1 <= s < p, c_s divides s, and c_t divides t.
DisaggLayout make_disagg_layout(const ProcessGrid& full,
                                const DisaggOptions& opts = {});

}  // namespace dms
