#include "dist/spgemm_15d.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {

DistBlockRowMatrix::DistBlockRowMatrix(const ProcessGrid& grid, const CsrMatrix& global)
    : part_(global.rows(), grid.rows()), cols_(global.cols()) {
  blocks_.reserve(static_cast<std::size_t>(part_.parts()));
  for (index_t i = 0; i < part_.parts(); ++i) {
    blocks_.push_back(row_slice(global, part_.begin(i), part_.end(i)));
  }
}

CsrMatrix DistBlockRowMatrix::gather() const { return vstack(blocks_); }

std::vector<CsrMatrix> spgemm_15d(Cluster& cluster,
                                  const std::vector<CsrMatrix>& q_blocks,
                                  const DistBlockRowMatrix& a,
                                  const Spgemm15dOptions& opts, Spgemm15dStats* stats) {
  const ProcessGrid& grid = cluster.grid();
  const CostModel& cm = cluster.cost_model();
  const index_t rows = grid.rows();
  const int c = grid.replication();
  check(a.num_blocks() == rows, "spgemm_15d: A distributed over a different grid shape");
  check(static_cast<index_t>(q_blocks.size()) == rows,
        "spgemm_15d: need one Q block per process row");
  for (const CsrMatrix& q : q_blocks) {
    check(q.cols() == a.rows(), "spgemm_15d: Q block columns must equal A rows");
  }

  // A column mask would renumber each panel product into mask space while
  // the empty-panel shortcut and the cross-panel reduction still assume the
  // full a.cols() column space — reject it up front.
  check(opts.local.column_mask == nullptr,
        "spgemm_15d: local SpgemmOptions must not carry a column_mask");

  const BlockPartition& apart = a.partition();
  // Block rows of A are split among the c ranks of every process row: rank
  // (i, j) multiplies against the A blocks of chunk j, one per round.
  const BlockPartition chunks(rows, c);
  index_t num_rounds = 0;
  for (index_t j = 0; j < c; ++j) num_rounds = std::max(num_rounds, chunks.size(j));

  // contrib[i][k] = Qˡ_ik · A_k, computed on rank (i, owner column of k).
  std::vector<std::vector<CsrMatrix>> contrib(static_cast<std::size_t>(rows));
  for (auto& row : contrib) row.resize(static_cast<std::size_t>(rows));

  for (index_t round = 0; round < num_rounds; ++round) {
    std::vector<double> rank_sec(static_cast<std::size_t>(grid.size()), 0.0);
    double comm_sec = 0.0;
    std::size_t comm_bytes = 0, comm_msgs = 0;

    for (int j = 0; j < c; ++j) {
      if (round >= chunks.size(j)) continue;
      const index_t k = chunks.begin(j) + round;
      const CsrMatrix& ak = a.block(k);
      const index_t c0 = apart.begin(k), c1 = apart.end(k);
      double col_comm = 0.0;

      if (!opts.sparsity_aware && rows > 1) {
        // Oblivious round: the owner broadcasts its whole block row down the
        // process column (Koanantakool et al.). Each of the rows-1 receivers
        // gets the payload once, so the link volume is payload*(rows-1) —
        // the same per-destination accounting as the sparsity-aware path.
        const std::size_t payload =
            ak.bytes() * static_cast<std::size_t>(rows - 1);
        col_comm += cm.broadcast(grid.col_ranks(j), ak.bytes());
        comm_bytes += payload;
        comm_msgs += static_cast<std::size_t>(rows - 1);
        if (stats != nullptr) stats->row_data_bytes += payload;
      }

      for (index_t i = 0; i < rows; ++i) {
        const int dst = grid.rank_of(static_cast<int>(i), j);
        const int src = grid.rank_of(static_cast<int>(k), j);
        if (!opts.sparsity_aware || i == k) {
          // Full-block multiply (the block is local when i == k).
          Timer t;
          const CsrMatrix panel = column_window(q_blocks[static_cast<std::size_t>(i)], c0, c1);
          contrib[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] =
              spgemm(panel, ak, opts.local);
          rank_sec[static_cast<std::size_t>(dst)] += t.seconds();
          continue;
        }
        // Sparsity-aware round (Algorithm 2 lines 4-9): request only the
        // A-rows that NnzCols(Qˡ_ik) touches.
        Timer t_dst;
        const CsrMatrix panel = column_window(q_blocks[static_cast<std::size_t>(i)], c0, c1);
        const std::vector<index_t> needed = nonzero_columns(panel);
        rank_sec[static_cast<std::size_t>(dst)] += t_dst.seconds();
        if (needed.empty()) {
          contrib[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] =
              CsrMatrix(panel.rows(), a.cols());
          continue;
        }
        Timer t_src;  // row extraction happens on the owner rank
        const CsrMatrix a_sub = extract_rows(ak, needed);
        rank_sec[static_cast<std::size_t>(src)] += t_src.seconds();
        Timer t_mul;
        const CsrMatrix panel_sub = extract_columns(panel, needed);
        contrib[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] =
            spgemm(panel_sub, a_sub, opts.local);
        rank_sec[static_cast<std::size_t>(dst)] += t_mul.seconds();

        const std::size_t id_bytes = needed.size() * sizeof(index_t);
        const std::size_t row_bytes = a_sub.bytes();
        col_comm += cm.p2p(dst, src, id_bytes) + cm.p2p(src, dst, row_bytes);
        comm_bytes += id_bytes + row_bytes;
        comm_msgs += 2;
        if (stats != nullptr) {
          stats->id_bytes += id_bytes;
          stats->row_data_bytes += row_bytes;
        }
      }
      // Columns communicate concurrently; the round is gated by the slowest.
      comm_sec = std::max(comm_sec, col_comm);
    }

    cluster.add_compute(opts.phase,
                        *std::max_element(rank_sec.begin(), rank_sec.end()));
    if (comm_msgs > 0) cluster.record_comm(opts.phase, comm_sec, comm_bytes, comm_msgs);
    if (stats != nullptr) {
      stats->messages += comm_msgs;
      ++stats->rounds;
    }
  }

  // Local reduction of partial products, folded in ascending k so the
  // per-entry accumulation order is independent of the grid shape.
  std::vector<CsrMatrix> result(static_cast<std::size_t>(rows));
  double reduce_max = 0.0;
  for (index_t i = 0; i < rows; ++i) {
    Timer t;
    CsrMatrix acc = std::move(contrib[static_cast<std::size_t>(i)][0]);
    for (index_t k = 1; k < rows; ++k) {
      acc = csr_add(acc, contrib[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]);
    }
    result[static_cast<std::size_t>(i)] = std::move(acc);
    reduce_max = std::max(reduce_max, t.seconds());
  }
  cluster.add_compute(opts.phase, reduce_max);

  // All-reduce of the partials across each process row (Algorithm 2 line
  // 14); every row reduces concurrently, so the clock advances by the max.
  if (c > 1) {
    double allreduce_max = 0.0;
    std::size_t allreduce_bytes = 0;
    for (index_t i = 0; i < rows; ++i) {
      const std::size_t bytes = result[static_cast<std::size_t>(i)].bytes();
      allreduce_max =
          std::max(allreduce_max,
                   cm.allreduce(grid.row_ranks(static_cast<int>(i)), bytes));
      allreduce_bytes += bytes * static_cast<std::size_t>(c - 1);
    }
    const auto allreduce_msgs = static_cast<std::size_t>(rows) *
                                static_cast<std::size_t>(2 * (c - 1));
    cluster.record_comm(opts.phase, allreduce_max, allreduce_bytes, allreduce_msgs);
    if (stats != nullptr) {
      stats->allreduce_bytes += allreduce_bytes;
      stats->messages += allreduce_msgs;
    }
  }
  return result;
}

}  // namespace dms
