#include "dist/spgemm_15d.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {

DistBlockRowMatrix::DistBlockRowMatrix(const ProcessGrid& grid, const CsrMatrix& global)
    : part_(global.rows(), grid.rows()), cols_(global.cols()) {
  blocks_.reserve(static_cast<std::size_t>(part_.parts()));
  for (index_t i = 0; i < part_.parts(); ++i) {
    blocks_.push_back(row_slice(global, part_.begin(i), part_.end(i)));
  }
}

CsrMatrix DistBlockRowMatrix::gather() const { return vstack(blocks_); }

std::vector<CsrMatrix> spgemm_15d(Cluster& cluster,
                                  const std::vector<CsrMatrix>& q_blocks,
                                  const DistBlockRowMatrix& a,
                                  const Spgemm15dOptions& opts, Spgemm15dStats* stats) {
  const ProcessGrid& grid = cluster.grid();
  const CostModel& cm = cluster.cost_model();
  const index_t rows = grid.rows();
  const int c = grid.replication();
  check(a.num_blocks() == rows, "spgemm_15d: A distributed over a different grid shape");
  check(static_cast<index_t>(q_blocks.size()) == rows,
        "spgemm_15d: need one Q block per process row");
  for (const CsrMatrix& q : q_blocks) {
    check(q.cols() == a.rows(), "spgemm_15d: Q block columns must equal A rows");
  }

  // A column mask would renumber each panel product into mask space while
  // the empty-panel shortcut and the cross-panel reduction still assume the
  // full a.cols() column space — reject it up front.
  check(opts.local.column_mask == nullptr,
        "spgemm_15d: local SpgemmOptions must not carry a column_mask");

  const BlockPartition& apart = a.partition();
  // Block rows of A are split among the c ranks of every process row: rank
  // (i, j) multiplies against the A blocks of chunk j, one per round.
  const BlockPartition chunks(rows, c);
  index_t num_rounds = 0;
  for (index_t j = 0; j < c; ++j) num_rounds = std::max(num_rounds, chunks.size(j));

  // contrib[i][k] = Qˡ_ik · A_k, computed on rank (i, owner column of k).
  std::vector<std::vector<CsrMatrix>> contrib(static_cast<std::size_t>(rows));
  for (auto& row : contrib) row.resize(static_cast<std::size_t>(rows));

  // Crash recovery (DESIGN.md §13): a dead rank's per-chunk work degrades
  // onto a surviving replica of its process row (block rows are replicated
  // across the row's c ranks), and a dead owner's A block is fetched from a
  // survivor in another column. The arithmetic — panels, products, fold
  // order — is untouched, so results stay bit-identical to the healthy run;
  // only attribution and the extra survivor-fetch communication change.
  // A block row with *no* surviving replica is unrecoverable if anyone
  // still needs it.
  const auto first_alive_in_row = [&](index_t row) -> int {
    for (int j2 = 0; j2 < c; ++j2) {
      const int r = grid.rank_of(static_cast<int>(row), j2);
      if (cluster.alive(r)) return r;
    }
    return -1;
  };
  const auto first_alive_in_col = [&](int j) -> int {
    for (const int r : grid.col_ranks(j)) {
      if (cluster.alive(r)) return r;
    }
    return -1;
  };

  for (index_t round = 0; round < num_rounds; ++round) {
    std::vector<double> rank_sec(static_cast<std::size_t>(grid.size()), 0.0);
    double comm_sec = 0.0;
    std::size_t comm_bytes = 0, comm_msgs = 0;
    double redist_sec = 0.0;
    std::size_t redist_bytes = 0;

    for (int j = 0; j < c; ++j) {
      if (round >= chunks.size(j)) continue;
      const index_t k = chunks.begin(j) + round;
      const CsrMatrix& ak = a.block(k);
      const index_t c0 = apart.begin(k), c1 = apart.end(k);
      double col_comm = 0.0;
      const int owner = grid.rank_of(static_cast<int>(k), j);
      const int src = cluster.alive(owner) ? owner : first_alive_in_row(k);
      const bool src_degraded = src != owner;

      if (!opts.sparsity_aware && rows > 1) {
        // Oblivious round: the owner broadcasts its whole block row down the
        // process column (Koanantakool et al.). Each alive receiver gets the
        // payload once, so the link volume is payload * receivers — the
        // same per-destination accounting as the sparsity-aware path.
        std::size_t receivers = 0;
        for (const int r : grid.col_ranks(j)) {
          if (r != src && cluster.alive(r)) ++receivers;
        }
        if (src != -1 && receivers > 0) {
          const std::size_t payload =
              ak.bytes() * static_cast<std::size_t>(receivers);
          double t_bcast = cm.broadcast(grid.col_ranks(j), ak.bytes());
          if (src_degraded) {
            // The survivor first ships the block into the column before the
            // broadcast can run — the degrade-and-continue re-fetch.
            const int entry = first_alive_in_col(j);
            if (entry != -1) t_bcast += cm.p2p(entry, src, ak.bytes());
            redist_sec += t_bcast;
            redist_bytes += payload + ak.bytes();
          }
          col_comm += t_bcast;
          comm_bytes += payload;
          comm_msgs += receivers;
          if (stats != nullptr) stats->row_data_bytes += payload;
        }
      }

      for (index_t i = 0; i < rows; ++i) {
        const int dst_pref = grid.rank_of(static_cast<int>(i), j);
        const int dst =
            cluster.alive(dst_pref) ? dst_pref : first_alive_in_row(i);
        auto& slot =
            contrib[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)];
        if (dst == -1) {
          // Process row i lost every replica; its Q block must already be
          // empty (the training layer assigns batches to alive rows only).
          check(q_blocks[static_cast<std::size_t>(i)].nnz() == 0,
                "spgemm_15d: process row " + std::to_string(i) +
                    " crashed entirely but still owns Q rows — unrecoverable");
          slot = CsrMatrix(q_blocks[static_cast<std::size_t>(i)].rows(), a.cols());
          continue;
        }
        if (src == -1) {
          // Block row k is gone from the cluster: survivable only for
          // panels that never touch it.
          const CsrMatrix panel =
              column_window(q_blocks[static_cast<std::size_t>(i)], c0, c1);
          check(panel.nnz() == 0,
                "spgemm_15d: block row " + std::to_string(k) +
                    " lost (all replicas crashed) but is still referenced — "
                    "unrecoverable");
          slot = CsrMatrix(panel.rows(), a.cols());
          continue;
        }
        if (!opts.sparsity_aware || i == k) {
          // Full-block multiply (the block is row-local when i == k).
          Timer t;
          const CsrMatrix panel = column_window(q_blocks[static_cast<std::size_t>(i)], c0, c1);
          slot = spgemm(panel, ak, opts.local);
          rank_sec[static_cast<std::size_t>(dst)] += t.seconds();
          continue;
        }
        // Sparsity-aware round (Algorithm 2 lines 4-9): request only the
        // A-rows that NnzCols(Qˡ_ik) touches.
        Timer t_dst;
        const CsrMatrix panel = column_window(q_blocks[static_cast<std::size_t>(i)], c0, c1);
        const std::vector<index_t> needed = nonzero_columns(panel);
        rank_sec[static_cast<std::size_t>(dst)] += t_dst.seconds();
        if (needed.empty()) {
          slot = CsrMatrix(panel.rows(), a.cols());
          continue;
        }
        Timer t_src;  // row extraction happens on the owner (or survivor) rank
        const CsrMatrix a_sub = extract_rows(ak, needed);
        rank_sec[static_cast<std::size_t>(src)] += t_src.seconds();
        Timer t_mul;
        const CsrMatrix panel_sub = extract_columns(panel, needed);
        slot = spgemm(panel_sub, a_sub, opts.local);
        rank_sec[static_cast<std::size_t>(dst)] += t_mul.seconds();

        const std::size_t id_bytes = needed.size() * sizeof(index_t);
        const std::size_t row_bytes = a_sub.bytes();
        const double t_xfer =
            cm.p2p(dst, src, id_bytes) + cm.p2p(src, dst, row_bytes);
        col_comm += t_xfer;
        comm_bytes += id_bytes + row_bytes;
        comm_msgs += 2;
        if (src_degraded || dst != dst_pref) {
          redist_sec += t_xfer;
          redist_bytes += id_bytes + row_bytes;
        }
        if (stats != nullptr) {
          stats->id_bytes += id_bytes;
          stats->row_data_bytes += row_bytes;
        }
      }
      // Columns communicate concurrently; the round is gated by the slowest.
      comm_sec = std::max(comm_sec, col_comm);
    }

    cluster.add_compute(opts.phase,
                        *std::max_element(rank_sec.begin(), rank_sec.end()));
    if (comm_msgs > 0) cluster.record_comm(opts.phase, comm_sec, comm_bytes, comm_msgs);
    if (redist_sec > 0.0 || redist_bytes > 0) {
      cluster.add_fault_redistribution(redist_sec, redist_bytes);
    }
    if (stats != nullptr) {
      stats->messages += comm_msgs;
      ++stats->rounds;
      stats->redistribution_bytes += redist_bytes;
    }
  }

  // Local reduction of partial products, folded in ascending k so the
  // per-entry accumulation order is independent of the grid shape.
  std::vector<CsrMatrix> result(static_cast<std::size_t>(rows));
  double reduce_max = 0.0;
  for (index_t i = 0; i < rows; ++i) {
    Timer t;
    CsrMatrix acc = std::move(contrib[static_cast<std::size_t>(i)][0]);
    for (index_t k = 1; k < rows; ++k) {
      acc = csr_add(acc, contrib[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)]);
    }
    result[static_cast<std::size_t>(i)] = std::move(acc);
    reduce_max = std::max(reduce_max, t.seconds());
  }
  cluster.add_compute(opts.phase, reduce_max);

  // All-reduce of the partials across each process row (Algorithm 2 line
  // 14); every row reduces concurrently, so the clock advances by the max.
  // Only surviving replicas participate — a row reduced to one rank (or
  // zero) has nothing to exchange.
  if (c > 1) {
    double allreduce_max = 0.0;
    std::size_t allreduce_bytes = 0;
    std::size_t allreduce_msgs = 0;
    for (index_t i = 0; i < rows; ++i) {
      std::vector<int> group;
      for (const int r : grid.row_ranks(static_cast<int>(i))) {
        if (cluster.alive(r)) group.push_back(r);
      }
      if (group.size() < 2) continue;
      const std::size_t bytes = result[static_cast<std::size_t>(i)].bytes();
      allreduce_max = std::max(allreduce_max, cm.allreduce(group, bytes));
      allreduce_bytes += bytes * (group.size() - 1);
      allreduce_msgs += 2 * (group.size() - 1);
    }
    if (allreduce_msgs > 0) {
      cluster.record_comm(opts.phase, allreduce_max, allreduce_bytes,
                          allreduce_msgs);
    }
    if (stats != nullptr) {
      stats->allreduce_bytes += allreduce_bytes;
      stats->messages += allreduce_msgs;
    }
  }
  return result;
}

}  // namespace dms
