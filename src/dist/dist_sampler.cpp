#include "dist/dist_sampler.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/frontier.hpp"
#include "core/graphsage.hpp"
#include "core/its.hpp"
#include "core/ladies.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {

namespace {

/// Runs body(i) for every process row, advancing the cluster clock by the
/// max measured time. Replicas of a process row perform identical (seeded)
/// work, so per-row time equals per-rank time.
template <typename Fn>
void timed_rows(Cluster& cluster, const char* phase, index_t rows, Fn&& body) {
  double max_t = 0.0;
  for (index_t i = 0; i < rows; ++i) {
    Timer t;
    body(i);
    max_t = std::max(max_t, t.seconds());
  }
  cluster.add_compute(phase, max_t);
}

/// A_S = ar_b · Q_C for the sampled columns, via the engine's masked
/// extraction. The mask replaces both the Q_C product and the §8.2.2
/// chunking: no intermediate CSR is ever materialized, and because each A_S
/// entry is a single pass-through value (the sampled ids are distinct and
/// sorted, coming from a CSR row), the result is bitwise identical to the
/// chunked product-then-slice this supersedes.
CsrMatrix extract_sampled_columns(const CsrMatrix& ar_b,
                                  const std::vector<index_t>& sampled,
                                  Workspace* ws) {
  SpgemmOptions opts;
  opts.workspace = ws;
  return spgemm_masked(ar_b, sampled, opts);
}

}  // namespace

std::vector<BulkRound> plan_bulk_rounds(index_t steps_per_rank, index_t bulk_steps) {
  check(steps_per_rank >= 0, "plan_bulk_rounds: negative step count");
  if (steps_per_rank == 0) return {};
  const index_t stride =
      bulk_steps <= 0 ? steps_per_rank : std::min(bulk_steps, steps_per_rank);
  std::vector<BulkRound> rounds;
  for (index_t s = 0; s < steps_per_rank; s += stride) {
    rounds.push_back({s, std::min<index_t>(steps_per_rank, s + stride)});
  }
  return rounds;
}

PartitionedSamplerBase::PartitionedSamplerBase(const Graph& graph,
                                               const ProcessGrid& grid,
                                               SamplerConfig config,
                                               PartitionedSamplerOptions opts,
                                               const std::string& name)
    : graph_(graph),
      grid_(grid),
      config_(std::move(config)),
      opts_(opts),
      dist_adj_(grid, graph.adjacency()) {
  check(!config_.fanouts.empty(), name + ": fanouts must be non-empty");
  for (const index_t f : config_.fanouts) {
    check(f > 0, name + ": fanouts must be positive");
  }
  check(opts_.ladies_extract_chunk > 0,
        name + ": ladies_extract_chunk must be positive");
}

std::vector<std::vector<MinibatchSample>> PartitionedSamplerBase::sample_bulk(
    Cluster& cluster, const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  check(cluster.grid().rows() == grid_.rows() &&
            cluster.grid().replication() == grid_.replication(),
        "sample_bulk: cluster grid does not match the sampler's grid");
  const BlockPartition assign(static_cast<index_t>(batches.size()), grid_.rows());
  return sample_rows(cluster, assign, batches, batch_ids, epoch_seed);
}

std::vector<MinibatchSample> PartitionedSamplerBase::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  std::vector<std::vector<MinibatchSample>> per_row;
  if (bound_cluster_ != nullptr) {
    per_row = sample_bulk(*bound_cluster_, batches, batch_ids, epoch_seed);
  } else {
    Cluster ephemeral(grid_, CostModel(LinkParams{}));
    per_row = sample_bulk(ephemeral, batches, batch_ids, epoch_seed);
  }
  std::vector<MinibatchSample> flat;
  flat.reserve(batches.size());
  for (auto& row : per_row) {
    for (auto& ms : row) flat.push_back(std::move(ms));
  }
  return flat;
}

PartitionedSageSampler::PartitionedSageSampler(const Graph& graph,
                                               const ProcessGrid& grid,
                                               SamplerConfig config,
                                               PartitionedSamplerOptions opts)
    : PartitionedSamplerBase(graph, grid, std::move(config), opts,
                             "PartitionedSageSampler") {}

std::vector<std::vector<MinibatchSample>> PartitionedSageSampler::sample_rows(
    Cluster& cluster, const BlockPartition& assign,
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  const index_t rows = grid_.rows();
  const index_t n = graph_.num_vertices();
  const index_t num_layers = config_.num_layers();

  std::vector<std::vector<MinibatchSample>> out(static_cast<std::size_t>(rows));
  // frontier[i][b]: the current frontier of process row i's b-th minibatch.
  std::vector<std::vector<std::vector<index_t>>> frontier(
      static_cast<std::size_t>(rows));
  for (index_t i = 0; i < rows; ++i) {
    for (index_t g = assign.begin(i); g < assign.end(i); ++g) {
      MinibatchSample ms;
      ms.batch_vertices = batches[static_cast<std::size_t>(g)];
      out[static_cast<std::size_t>(i)].push_back(std::move(ms));
      frontier[static_cast<std::size_t>(i)].push_back(
          batches[static_cast<std::size_t>(g)]);
    }
  }

  for (index_t l = 0; l < num_layers; ++l) {
    const index_t s = config_.fanouts[static_cast<std::size_t>(l)];

    // --- Probability generation: per-row stacked Q (Eq. 1) via the shared
    // SAGE stacking, then the 1.5D SpGEMM and NORM. ---
    std::vector<CsrMatrix> q_blocks(static_cast<std::size_t>(rows));
    std::vector<FrontierStack> stacks(static_cast<std::size_t>(rows));
    timed_rows(cluster, kPhaseProbability, rows, [&](index_t i) {
      stacks[static_cast<std::size_t>(i)] =
          stack_frontiers(frontier[static_cast<std::size_t>(i)]);
      q_blocks[static_cast<std::size_t>(i)] = CsrMatrix::one_nonzero_per_row(
          n, stacks[static_cast<std::size_t>(i)].vertices);
    });
    Spgemm15dOptions sopts;
    sopts.sparsity_aware = opts_.sparsity_aware;
    sopts.phase = kPhaseProbability;
    sopts.local = opts_.local_spgemm;
    sopts.local.workspace = &ws_;
    auto p_blocks = spgemm_15d(cluster, q_blocks, dist_adj_, sopts);
    timed_rows(cluster, kPhaseProbability, rows, [&](index_t i) {
      normalize_rows(p_blocks[static_cast<std::size_t>(i)]);
    });

    // --- SAMPLE: ITS with the shared (epoch, global batch id, layer, local
    // row) seed derivation, independent of the rank layout. ---
    std::vector<CsrMatrix> qs(static_cast<std::size_t>(rows));
    timed_rows(cluster, kPhaseSampling, rows, [&](index_t i) {
      qs[static_cast<std::size_t>(i)] = its_sample_rows(
          p_blocks[static_cast<std::size_t>(i)], s,
          sage_row_seed_fn(stacks[static_cast<std::size_t>(i)], batch_ids,
                           assign.begin(i), l, epoch_seed),
          &ws_);
    });

    // --- EXTRACT: renumber sampled columns into the next frontier (the
    // shared §4.1.3 extraction). ---
    timed_rows(cluster, kPhaseExtraction, rows, [&](index_t i) {
      auto& row_front = frontier[static_cast<std::size_t>(i)];
      for (std::size_t b = 0; b < row_front.size(); ++b) {
        LayerSample layer = sage_extract_layer(
            qs[static_cast<std::size_t>(i)], stacks[static_cast<std::size_t>(i)], b,
            row_front[b]);
        row_front[b] = layer.col_vertices;
        out[static_cast<std::size_t>(i)][b].layers.push_back(std::move(layer));
      }
    });
  }
  return out;
}

PartitionedLadiesSampler::PartitionedLadiesSampler(const Graph& graph,
                                                   const ProcessGrid& grid,
                                                   SamplerConfig config,
                                                   PartitionedSamplerOptions opts)
    : PartitionedSamplerBase(graph, grid, std::move(config), opts,
                             "PartitionedLadiesSampler") {}

std::vector<std::vector<MinibatchSample>> PartitionedLadiesSampler::sample_rows(
    Cluster& cluster, const BlockPartition& assign,
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  const index_t rows = grid_.rows();
  const index_t n = graph_.num_vertices();
  const index_t num_layers = config_.num_layers();

  std::vector<std::vector<MinibatchSample>> out(static_cast<std::size_t>(rows));
  // current[i][b]: the current vertex set of process row i's b-th minibatch.
  std::vector<std::vector<std::vector<index_t>>> current(
      static_cast<std::size_t>(rows));
  for (index_t i = 0; i < rows; ++i) {
    for (index_t g = assign.begin(i); g < assign.end(i); ++g) {
      MinibatchSample ms;
      ms.batch_vertices = batches[static_cast<std::size_t>(g)];
      out[static_cast<std::size_t>(i)].push_back(std::move(ms));
      current[static_cast<std::size_t>(i)].push_back(
          batches[static_cast<std::size_t>(g)]);
    }
  }

  for (index_t l = 0; l < num_layers; ++l) {
    const index_t s = config_.fanouts[static_cast<std::size_t>(l)];

    // --- Probability generation: indicator Q (one row per batch), 1.5D
    // SpGEMM, then the LADIES NORM (p_v ∝ e_v²). ---
    std::vector<CsrMatrix> q_blocks(static_cast<std::size_t>(rows));
    timed_rows(cluster, kPhaseProbability, rows, [&](index_t i) {
      q_blocks[static_cast<std::size_t>(i)] =
          ladies_indicator_rows(n, current[static_cast<std::size_t>(i)]);
    });
    Spgemm15dOptions sopts;
    sopts.sparsity_aware = opts_.sparsity_aware;
    sopts.phase = kPhaseProbability;
    sopts.local = opts_.local_spgemm;
    sopts.local.workspace = &ws_;
    auto p_blocks = spgemm_15d(cluster, q_blocks, dist_adj_, sopts);
    timed_rows(cluster, kPhaseProbability, rows, [&](index_t i) {
      ladies_norm(p_blocks[static_cast<std::size_t>(i)]);
    });

    // --- SAMPLE: s vertices per batch row. ---
    std::vector<CsrMatrix> qs(static_cast<std::size_t>(rows));
    timed_rows(cluster, kPhaseSampling, rows, [&](index_t i) {
      qs[static_cast<std::size_t>(i)] = its_sample_rows(
          p_blocks[static_cast<std::size_t>(i)], s,
          [&](index_t row) {
            const index_t g = assign.begin(i) + row;
            return derive_seed(
                epoch_seed,
                static_cast<std::uint64_t>(batch_ids[static_cast<std::size_t>(g)]),
                static_cast<std::uint64_t>(l), 0);
          },
          &ws_);
    });

    // --- EXTRACT: distributed row-extraction SpGEMM on the stacked Q_R,
    // then per-batch chunked column extraction (§4.2.3, §8.2.2). ---
    std::vector<CsrMatrix> qr_blocks(static_cast<std::size_t>(rows));
    std::vector<FrontierStack> stacks(static_cast<std::size_t>(rows));
    timed_rows(cluster, kPhaseExtraction, rows, [&](index_t i) {
      stacks[static_cast<std::size_t>(i)] =
          stack_frontiers(current[static_cast<std::size_t>(i)]);
      qr_blocks[static_cast<std::size_t>(i)] = CsrMatrix::one_nonzero_per_row(
          n, stacks[static_cast<std::size_t>(i)].vertices);
    });
    Spgemm15dOptions xopts;
    xopts.sparsity_aware = opts_.sparsity_aware;
    xopts.phase = kPhaseExtraction;
    xopts.local = opts_.local_spgemm;
    xopts.local.workspace = &ws_;
    const auto ar_blocks = spgemm_15d(cluster, qr_blocks, dist_adj_, xopts);
    timed_rows(cluster, kPhaseExtraction, rows, [&](index_t i) {
      const auto& off = stacks[static_cast<std::size_t>(i)].offsets;
      auto& row_cur = current[static_cast<std::size_t>(i)];
      for (std::size_t b = 0; b < row_cur.size(); ++b) {
        const auto cols =
            qs[static_cast<std::size_t>(i)].row_cols(static_cast<index_t>(b));
        const std::vector<index_t> sampled(cols.begin(), cols.end());
        const CsrMatrix ar_b =
            row_slice(ar_blocks[static_cast<std::size_t>(i)], off[b], off[b + 1]);
        const CsrMatrix a_s = extract_sampled_columns(ar_b, sampled, &ws_);
        LayerSample layer = ladies_assemble_layer(row_cur[b], sampled, a_s);
        row_cur[b] = layer.col_vertices;
        out[static_cast<std::size_t>(i)][b].layers.push_back(std::move(layer));
      }
    });
  }
  return out;
}

}  // namespace dms
