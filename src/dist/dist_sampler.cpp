#include "dist/dist_sampler.hpp"

#include <algorithm>

#include "core/fastgcn.hpp"  // fastgcn_importance_prefix (shared weights)
#include "plan/builders.hpp"

namespace dms {

std::vector<BulkRound> plan_bulk_rounds(index_t steps_per_rank, index_t bulk_steps) {
  check(steps_per_rank >= 0, "plan_bulk_rounds: negative step count");
  if (steps_per_rank == 0) return {};
  const index_t stride =
      bulk_steps <= 0 ? steps_per_rank : std::min(bulk_steps, steps_per_rank);
  std::vector<BulkRound> rounds;
  for (index_t s = 0; s < steps_per_rank; s += stride) {
    rounds.push_back({s, std::min<index_t>(steps_per_rank, s + stride)});
  }
  return rounds;
}

PartitionedSamplerBase::PartitionedSamplerBase(const Graph& graph,
                                               const ProcessGrid& grid,
                                               SamplerConfig config,
                                               PartitionedSamplerOptions opts,
                                               SamplePlan plan,
                                               const std::string& name)
    : graph_(graph),
      grid_(grid),
      opts_(opts),
      dist_adj_(grid, graph.adjacency()),
      exec_(lower_to_dist(plan), std::move(config)) {
  check(!exec_.config().fanouts.empty(), name + ": fanouts must be non-empty");
  for (const index_t f : exec_.config().fanouts) {
    check(f > 0, name + ": fanouts must be positive");
  }
  if (exec_.plan().needs_global_weights) {
    global_weights_ = fastgcn_importance_prefix(graph);
  }
}

std::vector<std::vector<MinibatchSample>> PartitionedSamplerBase::sample_bulk(
    Cluster& cluster, const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  check(batches.size() == batch_ids.size(), "sample_bulk: ids/batches mismatch");
  check(cluster.grid().rows() == grid_.rows() &&
            cluster.grid().replication() == grid_.replication(),
        "sample_bulk: cluster grid does not match the sampler's grid");
  // Batches are block-assigned to *alive* process rows (a row is alive while
  // any of its c replicas is). With no crashes this reproduces the balanced
  // BlockPartition exactly; after a crash the dead rows get zero-width
  // blocks and the survivors split the batches — sample content is
  // unchanged either way, because randomness derives from global batch ids,
  // never from the row assignment (the determinism contract).
  const auto n = static_cast<index_t>(batches.size());
  const index_t rows = grid_.rows();
  std::vector<char> alive_row(static_cast<std::size_t>(rows), 1);
  index_t num_alive_rows = rows;
  if (cluster.has_faults()) {
    num_alive_rows = 0;
    for (index_t i = 0; i < rows; ++i) {
      alive_row[static_cast<std::size_t>(i)] =
          cluster.row_alive(static_cast<int>(i)) ? 1 : 0;
      num_alive_rows += alive_row[static_cast<std::size_t>(i)];
    }
    check(num_alive_rows > 0 || n == 0,
          "sample_bulk: every process row has crashed — nothing can sample");
  }
  std::vector<index_t> offsets(static_cast<std::size_t>(rows) + 1, 0);
  index_t placed = 0, alive_seen = 0;
  for (index_t i = 0; i < rows; ++i) {
    index_t width = 0;
    if (alive_row[static_cast<std::size_t>(i)] != 0 && num_alive_rows > 0) {
      width = n / num_alive_rows + (alive_seen < n % num_alive_rows ? 1 : 0);
      ++alive_seen;
    }
    placed += width;
    offsets[static_cast<std::size_t>(i) + 1] = placed;
  }
  const BlockPartition assign = BlockPartition::from_offsets(std::move(offsets));
  return exec_.run_partitioned(
      cluster, dist_adj_, assign, batches, batch_ids, epoch_seed, &ws_,
      opts_.local_spgemm, opts_.sparsity_aware,
      global_weights_.empty() ? nullptr : &global_weights_);
}

std::vector<MinibatchSample> PartitionedSamplerBase::sample_bulk(
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const {
  std::vector<std::vector<MinibatchSample>> per_row;
  if (bound_cluster_ != nullptr) {
    per_row = sample_bulk(*bound_cluster_, batches, batch_ids, epoch_seed);
  } else {
    Cluster ephemeral(grid_, CostModel(LinkParams{}));
    per_row = sample_bulk(ephemeral, batches, batch_ids, epoch_seed);
  }
  std::vector<MinibatchSample> flat;
  flat.reserve(batches.size());
  for (auto& row : per_row) {
    for (auto& ms : row) flat.push_back(std::move(ms));
  }
  return flat;
}

PartitionedSageSampler::PartitionedSageSampler(const Graph& graph,
                                               const ProcessGrid& grid,
                                               SamplerConfig config,
                                               PartitionedSamplerOptions opts)
    : PartitionedSamplerBase(graph, grid, std::move(config), opts,
                             build_sage_plan(), "PartitionedSageSampler") {}

PartitionedLadiesSampler::PartitionedLadiesSampler(const Graph& graph,
                                                   const ProcessGrid& grid,
                                                   SamplerConfig config,
                                                   PartitionedSamplerOptions opts)
    : PartitionedSamplerBase(graph, grid, std::move(config), opts,
                             build_ladies_plan(), "PartitionedLadiesSampler") {}

PartitionedFastGcnSampler::PartitionedFastGcnSampler(
    const Graph& graph, const ProcessGrid& grid, SamplerConfig config,
    PartitionedSamplerOptions opts)
    : PartitionedSamplerBase(graph, grid, std::move(config), opts,
                             build_fastgcn_plan(),
                             "PartitionedFastGcnSampler") {}

PartitionedLaborSampler::PartitionedLaborSampler(const Graph& graph,
                                                 const ProcessGrid& grid,
                                                 SamplerConfig config,
                                                 PartitionedSamplerOptions opts)
    : PartitionedSamplerBase(graph, grid, std::move(config), opts,
                             build_labor_plan(), "PartitionedLaborSampler") {}

PartitionedSaintSampler::PartitionedSaintSampler(const Graph& graph,
                                                 const ProcessGrid& grid,
                                                 GraphSaintConfig config,
                                                 PartitionedSamplerOptions opts)
    : PartitionedSamplerBase(
          graph, grid, walk_adapter_config(config.model_layers, config.seed),
          opts, build_saint_plan(config.walk_length, config.model_layers),
          "PartitionedSaintSampler"),
      saint_config_(config) {}

PartitionedNode2VecSampler::PartitionedNode2VecSampler(
    const Graph& graph, const ProcessGrid& grid, Node2VecConfig config,
    PartitionedSamplerOptions opts)
    : PartitionedSamplerBase(
          graph, grid, walk_adapter_config(config.model_layers, config.seed),
          opts,
          build_node2vec_plan(config.walk_length, config.model_layers, config.p,
                              config.q),
          "PartitionedNode2VecSampler"),
      n2v_config_(config) {}

PartitionedPinSageSampler::PartitionedPinSageSampler(
    const Graph& graph, const ProcessGrid& grid, SamplerConfig config,
    PinSageConfig pcfg, PartitionedSamplerOptions opts)
    // The holder base is initialized first, so the weighted graph exists
    // before PartitionedSamplerBase partitions and borrows it.
    : PinSageGraphHolder{pinsage_importance_graph(graph, pcfg)},
      PartitionedSamplerBase(this->weighted, grid, std::move(config), opts,
                             build_pinsage_plan(),
                             "PartitionedPinSageSampler"),
      pinsage_config_(pcfg) {}

}  // namespace dms
