#include "dist/sampler_factory.hpp"

#include <algorithm>

#include "core/fastgcn.hpp"
#include "core/graphsage.hpp"
#include "core/graphsaint.hpp"
#include "core/labor.hpp"
#include "core/ladies.hpp"
#include "core/node2vec.hpp"
#include "core/pinsage.hpp"

namespace dms {

std::string to_string(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kGraphSage:
      return "graphsage";
    case SamplerKind::kLadies:
      return "ladies";
    case SamplerKind::kFastGcn:
      return "fastgcn";
    case SamplerKind::kLabor:
      return "labor";
    case SamplerKind::kGraphSaint:
      return "graphsaint";
    case SamplerKind::kNode2Vec:
      return "node2vec";
    case SamplerKind::kPinSage:
      return "pinsage";
  }
  return "unknown";
}

std::string to_string(DistMode mode) {
  switch (mode) {
    case DistMode::kReplicated:
      return "replicated";
    case DistMode::kPartitioned:
      return "partitioned";
    case DistMode::kDisaggregated:
      return "disaggregated";
  }
  return "unknown";
}

namespace {

const ProcessGrid& require_grid(const SamplerContext& ctx, const char* what) {
  check(ctx.grid != nullptr,
        std::string("make_sampler: ") + what + " requires SamplerContext::grid");
  return *ctx.grid;
}

template <typename Partitioned>
std::unique_ptr<MatrixSampler> make_partitioned(const Graph& graph,
                                                const SamplerContext& ctx,
                                                const char* what) {
  auto sampler = std::make_unique<Partitioned>(graph, require_grid(ctx, what),
                                               ctx.config, ctx.part_opts);
  sampler->bind_cluster(ctx.cluster);
  return sampler;
}

// The walk samplers take algorithm-specific configs; the factory maps the
// shared SamplerContext onto them (model depth from num_layers(), walk
// parameters from ctx.walk).
GraphSaintConfig saint_config_from(const SamplerContext& ctx) {
  GraphSaintConfig cfg;
  cfg.walk_length = ctx.walk.walk_length;
  cfg.model_layers = std::max<index_t>(1, ctx.config.num_layers());
  cfg.seed = ctx.config.seed;
  return cfg;
}

Node2VecConfig node2vec_config_from(const SamplerContext& ctx) {
  Node2VecConfig cfg;
  cfg.walk_length = ctx.walk.walk_length;
  cfg.model_layers = std::max<index_t>(1, ctx.config.num_layers());
  cfg.p = ctx.walk.p;
  cfg.q = ctx.walk.q;
  cfg.seed = ctx.config.seed;
  return cfg;
}

PinSageConfig pinsage_config_from(const SamplerContext& ctx) {
  PinSageConfig cfg;
  cfg.num_walks = ctx.walk.pinsage_walks;
  cfg.walk_length = ctx.walk.walk_length;
  cfg.top_neighbors = ctx.walk.pinsage_top;
  cfg.seed = ctx.config.seed;
  return cfg;
}

}  // namespace

SamplerRegistry::SamplerRegistry() {
  register_creator(SamplerKind::kGraphSage, DistMode::kReplicated,
                   [](const Graph& g, const SamplerContext& ctx) {
                     return std::make_unique<GraphSageSampler>(g, ctx.config);
                   });
  register_creator(SamplerKind::kLadies, DistMode::kReplicated,
                   [](const Graph& g, const SamplerContext& ctx) {
                     return std::make_unique<LadiesSampler>(g, ctx.config);
                   });
  register_creator(SamplerKind::kFastGcn, DistMode::kReplicated,
                   [](const Graph& g, const SamplerContext& ctx) {
                     return std::make_unique<FastGcnSampler>(g, ctx.config);
                   });
  register_creator(SamplerKind::kGraphSage, DistMode::kPartitioned,
                   [](const Graph& g, const SamplerContext& ctx) {
                     return make_partitioned<PartitionedSageSampler>(
                         g, ctx, "partitioned graphsage");
                   });
  register_creator(SamplerKind::kLadies, DistMode::kPartitioned,
                   [](const Graph& g, const SamplerContext& ctx) {
                     return make_partitioned<PartitionedLadiesSampler>(
                         g, ctx, "partitioned ladies");
                   });
  register_creator(SamplerKind::kLabor, DistMode::kReplicated,
                   [](const Graph& g, const SamplerContext& ctx) {
                     return std::make_unique<LaborSampler>(g, ctx.config);
                   });
  // The plan IR closed the historical gaps: partitioned FastGCN (its
  // batch-independent sampling is row-local; only its masked extraction
  // lowers to the 1.5D collective, which the lowering pass provides) and
  // LABOR in both modes from day one.
  register_creator(SamplerKind::kFastGcn, DistMode::kPartitioned,
                   [](const Graph& g, const SamplerContext& ctx) {
                     return make_partitioned<PartitionedFastGcnSampler>(
                         g, ctx, "partitioned fastgcn");
                   });
  register_creator(SamplerKind::kLabor, DistMode::kPartitioned,
                   [](const Graph& g, const SamplerContext& ctx) {
                     return make_partitioned<PartitionedLaborSampler>(
                         g, ctx, "partitioned labor");
                   });
  // Walk-based kinds (DESIGN.md §11): graph-wise GraphSAINT, second-order
  // node2vec, and PinSAGE importance sampling — all pure plans, so both
  // modes come from the same definitions.
  register_creator(SamplerKind::kGraphSaint, DistMode::kReplicated,
                   [](const Graph& g, const SamplerContext& ctx) {
                     return std::make_unique<GraphSaintSampler>(
                         g, saint_config_from(ctx));
                   });
  register_creator(
      SamplerKind::kGraphSaint, DistMode::kPartitioned,
      [](const Graph& g, const SamplerContext& ctx) {
        auto sampler = std::make_unique<PartitionedSaintSampler>(
            g, require_grid(ctx, "partitioned graphsaint"),
            saint_config_from(ctx), ctx.part_opts);
        sampler->bind_cluster(ctx.cluster);
        return sampler;
      });
  register_creator(SamplerKind::kNode2Vec, DistMode::kReplicated,
                   [](const Graph& g, const SamplerContext& ctx) {
                     return std::make_unique<Node2VecSampler>(
                         g, node2vec_config_from(ctx));
                   });
  register_creator(
      SamplerKind::kNode2Vec, DistMode::kPartitioned,
      [](const Graph& g, const SamplerContext& ctx) {
        auto sampler = std::make_unique<PartitionedNode2VecSampler>(
            g, require_grid(ctx, "partitioned node2vec"),
            node2vec_config_from(ctx), ctx.part_opts);
        sampler->bind_cluster(ctx.cluster);
        return sampler;
      });
  register_creator(SamplerKind::kPinSage, DistMode::kReplicated,
                   [](const Graph& g, const SamplerContext& ctx) {
                     return std::make_unique<PinSageSampler>(
                         g, ctx.config, pinsage_config_from(ctx));
                   });
  register_creator(
      SamplerKind::kPinSage, DistMode::kPartitioned,
      [](const Graph& g, const SamplerContext& ctx) {
        auto sampler = std::make_unique<PartitionedPinSageSampler>(
            g, require_grid(ctx, "partitioned pinsage"), ctx.config,
            pinsage_config_from(ctx), ctx.part_opts);
        sampler->bind_cluster(ctx.cluster);
        return sampler;
      });
  // Disaggregated sampler/trainer roles (DESIGN.md §14): the sampling side
  // is the algorithm's partitioned form built over the *sampler sub-grid* of
  // the disaggregated layout — one creator shape covers every kind, and a
  // runtime re-registration of a (kind, kPartitioned) slot is picked up by
  // the disaggregated mode automatically. ctx.cluster is dropped: its grid
  // is the full cluster's, so it cannot be bound to the sub-grid sampler
  // (the pipeline binds its sampler-role sub-cluster after construction).
  for (const SamplerKind kind :
       {SamplerKind::kGraphSage, SamplerKind::kLadies, SamplerKind::kFastGcn,
        SamplerKind::kLabor, SamplerKind::kGraphSaint, SamplerKind::kNode2Vec,
        SamplerKind::kPinSage}) {
    register_creator(kind, DistMode::kDisaggregated,
                     [kind](const Graph& g, const SamplerContext& ctx) {
                       const DisaggLayout layout = make_disagg_layout(
                           require_grid(ctx, "disaggregated"), ctx.disagg);
                       SamplerContext sub = ctx;
                       sub.grid = &layout.sampler_grid;
                       sub.cluster = nullptr;
                       return SamplerRegistry::instance().create(
                           kind, DistMode::kPartitioned, g, sub);
                     });
  }
}

SamplerRegistry& SamplerRegistry::instance() {
  static SamplerRegistry registry;
  return registry;
}

SamplerCreator SamplerRegistry::register_creator(SamplerKind kind, DistMode mode,
                                                 SamplerCreator creator) {
  // An empty creator unregisters the slot, so restoring a previously-empty
  // creator returned by this function round-trips cleanly.
  if (!creator) {
    const auto it = creators_.find({kind, mode});
    if (it == creators_.end()) return {};
    SamplerCreator previous = std::move(it->second);
    creators_.erase(it);
    return previous;
  }
  auto& slot = creators_[{kind, mode}];
  SamplerCreator previous = std::move(slot);
  slot = std::move(creator);
  return previous;
}

void SamplerRegistry::unregister(SamplerKind kind, DistMode mode) {
  creators_.erase({kind, mode});
}

bool SamplerRegistry::contains(SamplerKind kind, DistMode mode) const {
  return creators_.count({kind, mode}) > 0;
}

std::vector<std::pair<SamplerKind, DistMode>> SamplerRegistry::registered() const {
  std::vector<std::pair<SamplerKind, DistMode>> out;
  out.reserve(creators_.size());
  for (const auto& [key, _] : creators_) out.push_back(key);
  return out;
}

std::unique_ptr<MatrixSampler> SamplerRegistry::create(
    SamplerKind kind, DistMode mode, const Graph& graph,
    const SamplerContext& ctx) const {
  const auto it = creators_.find({kind, mode});
  check(it != creators_.end(), "make_sampler: no sampler registered for (" +
                                   to_string(kind) + ", " + to_string(mode) + ")");
  return it->second(graph, ctx);
}

std::unique_ptr<MatrixSampler> make_sampler(SamplerKind kind, DistMode mode,
                                            const Graph& graph,
                                            const SamplerContext& ctx) {
  return SamplerRegistry::instance().create(kind, mode, graph, ctx);
}

std::unique_ptr<MatrixSampler> make_sampler(SamplerKind kind, const Graph& graph,
                                            const SamplerConfig& config) {
  SamplerContext ctx;
  ctx.config = config;
  return make_sampler(kind, DistMode::kReplicated, graph, ctx);
}

PartitionedSamplerBase& as_partitioned(MatrixSampler& sampler) {
  auto* part = dynamic_cast<PartitionedSamplerBase*>(&sampler);
  check(part != nullptr, "as_partitioned: sampler is not a partitioned sampler");
  return *part;
}

}  // namespace dms
