// Graph Partitioned plan samplers (§5.2): the adjacency is block-row
// partitioned over a 1.5D process grid (it no longer needs to fit on one
// device) and the sampler's *plan* (src/plan) runs through the partitioned
// executor — every kSpgemm/kMaskedExtract op was rewritten by the
// lower_to_dist pass to its 1.5D collective form (Algorithm 2's block-row
// fetch/exchange + all-reduce), while row-local ops (NORM, ITS, thinning,
// assembly) run per process row. There is no per-sampler distributed
// sampling logic here: one lowering pass + one executor serve every
// algorithm, which is why partitioned FastGCN and LABOR exist at all.
//
// Determinism contract: randomness is derived per (epoch, global batch id,
// layer, local row), never from the rank layout, so a Graph Partitioned run
// produces bit-identical minibatches to the single-node sampler of src/core
// for every grid shape, chunk size, and sparsity mode. (All probability
// values are exact small-integer arithmetic before normalization, so the
// distributed reduction order cannot perturb them.) The dist tests sweep
// grids to enforce this.
//
// Phase accounting matches Figure 7: every plan op records its
// kPhaseProbability / kPhaseSampling / kPhaseExtraction compute and the
// collectives their communication on the Cluster.
#pragma once

#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "core/graphsaint.hpp"  // GraphSaintConfig / walk_adapter_config
#include "core/node2vec.hpp"    // Node2VecConfig
#include "core/pinsage.hpp"     // PinSageConfig / pinsage_importance_graph
#include "core/sampler.hpp"
#include "dist/spgemm_15d.hpp"
#include "plan/executor.hpp"

namespace dms {

/// A bulk sampling round: the contiguous range [step_begin, step_end) of
/// per-rank training-step indices whose minibatches the round materializes.
/// Rounds are the prefetchable unit of the staged training executor — round
/// g+1 can be sampled while the steps of round g train — and the granularity
/// at which bulk sampling amortizes kernel launches (the paper's k, §4).
struct BulkRound {
  index_t step_begin = 0;
  index_t step_end = 0;
  index_t steps() const { return step_end - step_begin; }
};

/// Splits an epoch of `steps_per_rank` training steps into rounds of
/// `bulk_steps` steps each (the last round may be short). bulk_steps <= 0
/// yields one round covering the whole epoch ("k=all").
std::vector<BulkRound> plan_bulk_rounds(index_t steps_per_rank, index_t bulk_steps);

struct PartitionedSamplerOptions {
  /// Use the sparsity-aware 1.5D SpGEMM variant (§5.2.1; Ballard et al.)
  /// instead of broadcasting whole A block rows.
  bool sparsity_aware = true;
  /// Engine options threaded into the 1.5D SpGEMM's local panel multiplies
  /// (Spgemm15dOptions::local). kAuto picks kernels per panel; all choices
  /// are bit-identical, preserving the grid-shape equivalence contract.
  SpgemmOptions local_spgemm;
};

/// A Graph Partitioned sampler: any SamplePlan, dist-lowered at
/// construction and executed by the partitioned PlanExecutor. Handles
/// batch-to-process-row assignment, the distributed adjacency, and the
/// MatrixSampler conformance that lets the factory treat partitioned
/// samplers uniformly. Historically this was an abstract base with
/// per-algorithm subclasses; the plan IR made it concrete.
class PartitionedSamplerBase : public MatrixSampler {
 public:
  /// The graph must outlive the sampler (topology is borrowed; the
  /// distributed block rows are materialized once at construction).
  /// `plan` is the *unlowered* single-node plan — the constructor runs the
  /// dist lowering pass. Plans needing bound global weights (FastGCN) get
  /// them computed by `make_global_weights` below.
  PartitionedSamplerBase(const Graph& graph, const ProcessGrid& grid,
                         SamplerConfig config, PartitionedSamplerOptions opts,
                         SamplePlan plan, const std::string& name);

  /// Distributed bulk sampling. Minibatches are assigned to process rows in
  /// contiguous blocks (BlockPartition of the batch list); the return value
  /// holds each process row's samples, so concatenating the rows restores
  /// global batch order. Phase times and communication volumes are recorded
  /// on `cluster`, whose grid must match the grid this sampler was built for.
  std::vector<std::vector<MinibatchSample>> sample_bulk(
      Cluster& cluster, const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed) const;

  /// MatrixSampler conformance: runs the distributed algorithm on the bound
  /// cluster (see bind_cluster) or an ephemeral one, and flattens the
  /// per-row results back to global batch order. By the determinism
  /// contract the output equals the single-node sampler's.
  std::vector<MinibatchSample> sample_bulk(
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids,
      std::uint64_t epoch_seed) const override;

  const SamplerConfig& config() const override { return exec_.config(); }
  std::map<std::string, double> op_time_breakdown() const override {
    return exec_.op_seconds();
  }
  Workspace* scratch_workspace() const override { return &ws_; }
  const ProcessGrid& grid() const { return grid_; }
  const PartitionedSamplerOptions& options() const { return opts_; }

  /// The dist-lowered plan this sampler executes (tests / docs).
  const SamplePlan& plan() const { return exec_.plan(); }

  /// The block-row distributed adjacency (per-rank memory accounting).
  const DistBlockRowMatrix& dist_adjacency() const { return dist_adj_; }

  /// Binds a long-lived cluster that the MatrixSampler-interface
  /// sample_bulk records phases on (factory wiring). nullptr unbinds; an
  /// ephemeral cluster of the sampler's grid is then used instead.
  void bind_cluster(Cluster* cluster) { bound_cluster_ = cluster; }

 protected:
  const Graph& graph_;
  ProcessGrid grid_;
  PartitionedSamplerOptions opts_;
  DistBlockRowMatrix dist_adj_;
  PlanExecutor exec_;
  /// Bound ITS weights for kGlobalWeights plans (empty otherwise).
  std::vector<value_t> global_weights_;
  Cluster* bound_cluster_ = nullptr;
  /// Scratch arena shared by every kernel this sampler drives — the 1.5D
  /// SpGEMM's sequential local panel products, ITS, and the masked
  /// extractions — and reused across layers/rounds/epochs. Serializes
  /// sample_bulk per sampler instance (the pipeline is sequential).
  mutable Workspace ws_;
};

/// Graph Partitioned GraphSAGE (§5.2): the dist-lowered build_sage_plan.
class PartitionedSageSampler : public PartitionedSamplerBase {
 public:
  PartitionedSageSampler(const Graph& graph, const ProcessGrid& grid,
                         SamplerConfig config, PartitionedSamplerOptions opts = {});
};

/// Graph Partitioned LADIES (§5.2) — per the paper, the first fully
/// distributed LADIES implementation: the dist-lowered build_ladies_plan.
class PartitionedLadiesSampler : public PartitionedSamplerBase {
 public:
  PartitionedLadiesSampler(const Graph& graph, const ProcessGrid& grid,
                           SamplerConfig config,
                           PartitionedSamplerOptions opts = {});
};

/// Graph Partitioned FastGCN: the dist-lowered build_fastgcn_plan. Its
/// plan has no probability SpGEMM (the global importance is precomputed);
/// sampling is row-local and only the masked extraction lowers to the
/// 1.5D collective — a combination the hand-written dist samplers never
/// supported.
class PartitionedFastGcnSampler : public PartitionedSamplerBase {
 public:
  PartitionedFastGcnSampler(const Graph& graph, const ProcessGrid& grid,
                            SamplerConfig config,
                            PartitionedSamplerOptions opts = {});
};

/// Graph Partitioned LABOR: the dist-lowered build_labor_plan — a sampler
/// that ran in every execution mode on the day it was defined.
class PartitionedLaborSampler : public PartitionedSamplerBase {
 public:
  PartitionedLaborSampler(const Graph& graph, const ProcessGrid& grid,
                          SamplerConfig config,
                          PartitionedSamplerOptions opts = {});
};

/// Graph Partitioned GraphSAINT-RW: the dist-lowered build_saint_plan. The
/// walk ops are row-local; the induced-subgraph epilogue assembles visited
/// rows from their owner blocks (intra-column fetches, accounted).
class PartitionedSaintSampler : public PartitionedSamplerBase {
 public:
  PartitionedSaintSampler(const Graph& graph, const ProcessGrid& grid,
                          GraphSaintConfig config,
                          PartitionedSamplerOptions opts = {});

  const GraphSaintConfig& saint_config() const { return saint_config_; }

 private:
  GraphSaintConfig saint_config_;
};

/// Graph Partitioned node2vec: the dist-lowered build_node2vec_plan (the
/// kWalkBias membership test fetches prev rows from their owner blocks).
class PartitionedNode2VecSampler : public PartitionedSamplerBase {
 public:
  PartitionedNode2VecSampler(const Graph& graph, const ProcessGrid& grid,
                             Node2VecConfig config,
                             PartitionedSamplerOptions opts = {});

  const Node2VecConfig& node2vec_config() const { return n2v_config_; }

 private:
  Node2VecConfig n2v_config_;
};

/// Owns the walk-derived importance graph so it is constructed before (and
/// outlives) the PartitionedSamplerBase that borrows it.
struct PinSageGraphHolder {
  Graph weighted;
};

/// Graph Partitioned PinSAGE: the dist-lowered build_pinsage_plan over the
/// walk-derived weighted adjacency (built once at construction, block-row
/// partitioned like any other graph).
class PartitionedPinSageSampler : private PinSageGraphHolder,
                                  public PartitionedSamplerBase {
 public:
  PartitionedPinSageSampler(const Graph& graph, const ProcessGrid& grid,
                            SamplerConfig config, PinSageConfig pcfg = {},
                            PartitionedSamplerOptions opts = {});

  const PinSageConfig& pinsage_config() const { return pinsage_config_; }
  const Graph& importance_graph() const { return weighted; }

 private:
  PinSageConfig pinsage_config_;
};

}  // namespace dms
