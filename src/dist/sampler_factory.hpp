// Unified sampler construction: one factory surface over every sampling
// algorithm (SamplerKind) × execution mode (DistMode) combination.
//
// Call sites — the training pipeline, benches, and examples — never name a
// concrete sampler class; they ask the registry for (kind, mode) and get a
// MatrixSampler. Partitioned samplers conform to the same interface (the
// determinism contract makes a partitioned run substitutable for a
// single-node one), and call sites that drive the distributed API directly
// downcast through as_partitioned().
//
// The registry is extensible at runtime: a new algorithm or execution mode
// registers a creator under its (kind, mode) key and every call site picks
// it up without modification (the samgraph/fgnn-style uniform construction
// surface).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/sampler.hpp"
#include "dist/disagg.hpp"
#include "dist/dist_sampler.hpp"

namespace dms {

enum class SamplerKind {
  kGraphSage,
  kLadies,
  kFastGcn,
  kLabor,
  kGraphSaint,
  kNode2Vec,
  kPinSage,
};
/// kDisaggregated: sampler/trainer rank roles (DESIGN.md §14). The factory
/// builds the algorithm's partitioned form over the *sampler sub-grid* of
/// make_disagg_layout(ctx.grid, ctx.disagg) — the dist lowering pass thereby
/// places every plan op on the sampler ranks; the training pipeline runs the
/// trainer role on the remaining ranks.
enum class DistMode { kReplicated, kPartitioned, kDisaggregated };

std::string to_string(SamplerKind kind);
std::string to_string(DistMode mode);

/// Walk-sampler parameters threaded through the factory. Only the walk
/// kinds (kGraphSaint / kNode2Vec / kPinSage) read them; the walk samplers
/// take their model depth from SamplerConfig::num_layers() and their seed
/// from SamplerConfig::seed.
struct WalkParams {
  index_t walk_length = 2;     ///< rounds per random walk
  value_t p = 1.0;             ///< node2vec return parameter
  value_t q = 1.0;             ///< node2vec in-out parameter
  index_t pinsage_walks = 16;  ///< simulated walks per vertex (kPinSage)
  index_t pinsage_top = 8;     ///< importance neighbors kept per vertex
};

/// Everything a sampler creator may need beyond the graph.
struct SamplerContext {
  SamplerConfig config;
  /// Partitioned modes: the process grid to partition over (required). For
  /// kDisaggregated this is the *full* cluster grid; the creator derives the
  /// sampler sub-grid from it via make_disagg_layout(grid, disagg).
  const ProcessGrid* grid = nullptr;
  PartitionedSamplerOptions part_opts;
  /// Optional long-lived cluster bound to partitioned samplers so their
  /// MatrixSampler::sample_bulk records phases on it. Ignored by the
  /// kDisaggregated creators (the bound cluster's grid must match the
  /// sampler's sub-grid — the pipeline binds its sampler-role sub-cluster
  /// after construction instead).
  Cluster* cluster = nullptr;
  /// Walk-sampler parameters (walk kinds only).
  WalkParams walk;
  /// Sampler/trainer split (kDisaggregated only; defaults auto-split).
  DisaggOptions disagg;
};

using SamplerCreator = std::function<std::unique_ptr<MatrixSampler>(
    const Graph& graph, const SamplerContext& ctx)>;

/// Registry mapping (kind, mode) → creator, seeded with the built-in
/// samplers — every SamplerKind in both modes, since the plan IR gives
/// each algorithm its partitioned form through one lowering pass.
class SamplerRegistry {
 public:
  static SamplerRegistry& instance();

  /// Registers (or replaces) the creator for a combination; returns the
  /// previous creator so callers can restore it (empty if none). Passing an
  /// empty creator unregisters the combination, so restoring an empty
  /// previous creator round-trips.
  SamplerCreator register_creator(SamplerKind kind, DistMode mode,
                                  SamplerCreator creator);

  /// Removes a combination (no-op if absent).
  void unregister(SamplerKind kind, DistMode mode);

  bool contains(SamplerKind kind, DistMode mode) const;

  /// Registered combinations, deterministic order.
  std::vector<std::pair<SamplerKind, DistMode>> registered() const;

  /// Constructs a sampler; throws DmsError for unregistered combinations
  /// (e.g. partitioned FastGCN) or a missing grid in partitioned modes.
  std::unique_ptr<MatrixSampler> create(SamplerKind kind, DistMode mode,
                                        const Graph& graph,
                                        const SamplerContext& ctx) const;

 private:
  SamplerRegistry();
  std::map<std::pair<SamplerKind, DistMode>, SamplerCreator> creators_;
};

/// The single construction surface for every sampler in the system.
std::unique_ptr<MatrixSampler> make_sampler(SamplerKind kind, DistMode mode,
                                            const Graph& graph,
                                            const SamplerContext& ctx);

/// Replicated (single-device) convenience overload.
std::unique_ptr<MatrixSampler> make_sampler(SamplerKind kind, const Graph& graph,
                                            const SamplerConfig& config);

/// Downcast for call sites that drive the distributed bulk API or need
/// per-rank memory accounting; throws DmsError if `sampler` is not a
/// partitioned sampler.
PartitionedSamplerBase& as_partitioned(MatrixSampler& sampler);

}  // namespace dms
