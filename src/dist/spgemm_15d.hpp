// 1.5D distributed SpGEMM (Algorithm 2, §5.2): P ← Q·A where both operands
// are block-row partitioned over the p/c process rows of a 1.5D grid and
// block row i is replicated on the c ranks of process row P(i, :).
//
// The p/c block rows of A are processed in chunked rounds: the c ranks of a
// process row split the block rows among themselves (each rank handles
// ⌈(p/c)/c⌉ rounds), receive the A block assigned to the current round from
// its owner inside their process column, multiply it against the matching
// column panel of their local Q block, and finally all-reduce the partial
// products across the process row — the T_prob = α(p/c² + log c) +
// β(kbd/c + ckbd/p) structure of §5.2.1.
//
// Two data-movement variants are provided (§5.2.1):
//  - sparsity-oblivious (Koanantakool et al.): whole A block rows are
//    broadcast down each process column;
//  - sparsity-aware (Ballard et al.): each rank first sends the list
//    NnzCols(Qˡ_ik) of A-rows its panel actually touches, and the owner
//    replies with exactly those rows.
// Both variants produce bit-identical products (the per-entry accumulation
// order is unchanged); only the communication volume differs.
#pragma once

#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "graph/partition.hpp"
#include "sparse/csr.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {

/// Block-row distributed sparse matrix: rows split into grid.rows() balanced
/// contiguous blocks; block i lives on (is replicated over) process row
/// P(i, :), so each process column holds the entire matrix.
class DistBlockRowMatrix {
 public:
  /// Partitions `global` into grid.rows() block rows.
  DistBlockRowMatrix(const ProcessGrid& grid, const CsrMatrix& global);

  index_t rows() const { return part_.total(); }
  index_t cols() const { return cols_; }
  index_t num_blocks() const { return part_.parts(); }
  const BlockPartition& partition() const { return part_; }

  /// Local block of process row i (rows partition().begin(i)..end(i)).
  const CsrMatrix& block(index_t i) const {
    return blocks_[static_cast<std::size_t>(i)];
  }

  /// Bytes a rank in process row i stores for this matrix.
  std::size_t block_bytes(index_t i) const {
    return blocks_[static_cast<std::size_t>(i)].bytes();
  }

  /// Reassembles the global matrix (tests / debugging).
  CsrMatrix gather() const;

 private:
  BlockPartition part_;
  index_t cols_ = 0;
  std::vector<CsrMatrix> blocks_;
};

struct Spgemm15dOptions {
  /// Ship only the A-rows that nonzero columns of each Q panel touch
  /// (Algorithm 2 line 4) instead of broadcasting whole block rows.
  bool sparsity_aware = true;
  /// Phase name under which compute/comm time is recorded on the Cluster.
  std::string phase = "spgemm_15d";
  /// Engine options for the per-panel local multiplies Qˡ_ik·A_k. The
  /// default kAuto dispatch picks a kernel per panel from the symbolic
  /// phase's flop estimate (the sparsity-aware panels are exactly the
  /// sparse-rows-over-wide-matrix shape the hash kernel targets); every
  /// kernel choice yields bit-identical partial products, so the grid-shape
  /// equivalence contract is unaffected.
  SpgemmOptions local;
};

/// Exact communication volumes of one spgemm_15d call (Figure 7 analysis
/// and the sparsity-aware ablation).
struct Spgemm15dStats {
  std::size_t row_data_bytes = 0;   ///< A-row payload shipped between ranks
  std::size_t id_bytes = 0;         ///< row-id request lists (aware only)
  std::size_t allreduce_bytes = 0;  ///< partial-product reduction volume
  std::size_t messages = 0;
  std::size_t rounds = 0;           ///< chunked broadcast rounds executed
  /// Bytes moved only because a crashed rank's block/work was re-fetched
  /// from a surviving replica (degrade-and-continue, DESIGN.md §13). Always
  /// 0 on a healthy cluster.
  std::size_t redistribution_bytes = 0;
};

/// Computes P = Q·A on the cluster. q_blocks[i] is process row i's block of
/// Q (any row count, cols == a.rows()); the result is returned in the same
/// block-row layout (result[i] replicated on process row i). Compute and
/// communication time/volume are recorded on `cluster` under opts.phase.
std::vector<CsrMatrix> spgemm_15d(Cluster& cluster,
                                  const std::vector<CsrMatrix>& q_blocks,
                                  const DistBlockRowMatrix& a,
                                  const Spgemm15dOptions& opts = {},
                                  Spgemm15dStats* stats = nullptr);

}  // namespace dms
