// The accounted plan executor (DESIGN.md §9): binds a SamplePlan's symbolic
// slots to concrete CSR/frontier buffers and runs its ops through the
// existing kernel machinery — the adaptive SpGEMM engine, its_sample_rows,
// and the Workspace arena in replicated mode; the 1.5D collectives plus
// per-process-row local kernels in partitioned mode.
//
// Accounting: every op is wall-clock timed into a per-op table (keyed
// "<plan>/<label>"; surfaced through MatrixSampler::op_time_breakdown and
// EpochStats::sampler_ops), and in partitioned mode its time additionally
// reaches the Cluster under the op's canonical phase tag — max over process
// rows for row-local ops, via the 1.5D collective's own compute/comm
// recording for kSpgemm15d/kMaskedExtract15d. The canonical phases keep
// EpochStats and the Figure 7 breakdowns identical to the pre-IR samplers.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "common/workspace.hpp"
#include "core/sampler.hpp"
#include "dist/spgemm_15d.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "plan/plan.hpp"
#include "walk/walk_engine.hpp"

namespace dms {

/// Cumulative per-op execution statistics (host wall-clock).
struct PlanOpStats {
  double seconds = 0.0;
  std::uint64_t calls = 0;
};

/// Construction-time knobs. By default the plan is run through the optimizer
/// pass pipeline (plan/optimize.hpp) via the process-wide PlanCache, so
/// executors over the same plan shape + fanouts share one optimized plan.
struct PlanExecOptions {
  bool optimize = true;
};

class PlanExecutor {
 public:
  /// Validates the plan, then (unless opts.optimize is off) swaps it for the
  /// cached optimized form. `config` supplies the per-round fanouts (and
  /// must outlast nothing — it is copied).
  PlanExecutor(SamplePlan plan, SamplerConfig config, PlanExecOptions opts = {});

  /// The plan actually executed (the optimized form by default — possibly
  /// shared with other executors through PlanCache).
  const SamplePlan& plan() const { return *plan_; }
  const SamplerConfig& config() const { return config_; }

  /// Replicated / single-node execution: runs the (unlowered) plan against
  /// `graph`'s adjacency. `ws` is the caller's scratch arena (required);
  /// `global_weights` binds the prefix-sum distribution of
  /// kItsSample/kGlobalWeights plans (FastGCN). One run at a time per
  /// executor (the Workspace contract).
  std::vector<MinibatchSample> run(
      const Graph& graph, const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed,
      Workspace* ws, const std::vector<value_t>* global_weights = nullptr) const;

  /// Partitioned execution of a lowered plan: batches are pre-assigned to
  /// process rows by `assign`; ops run per process row with row-local time
  /// recorded max-over-rows on `cluster`, and the lowered collectives run
  /// through spgemm_15d with `local_spgemm` threading the per-panel engine
  /// options. Returns per-process-row samples (concatenation restores
  /// global batch order).
  std::vector<std::vector<MinibatchSample>> run_partitioned(
      Cluster& cluster, const DistBlockRowMatrix& adj, const BlockPartition& assign,
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed,
      Workspace* ws, const SpgemmOptions& local_spgemm, bool sparsity_aware,
      const std::vector<value_t>* global_weights = nullptr) const;

  /// Cumulative per-op stats since construction / reset, keyed
  /// "<plan>/<label>".
  const std::map<std::string, PlanOpStats>& op_stats() const { return stats_; }
  /// op_stats() projected to seconds (the MatrixSampler breakdown surface).
  std::map<std::string, double> op_seconds() const;
  void reset_stats() const {
    stats_.clear();
    walk_steps_ = 0;
  }

  /// Fused walk-engine controls (DESIGN.md §11). Takes effect on the next
  /// run: the cached engine is dropped and rebuilt under the new options.
  /// Only replicated runs of a walk-shaped plan (match_walk_plan) fuse;
  /// everything else ignores these options.
  void set_walk_options(const WalkEngineOptions& opts) {
    walk_opts_ = opts;
    engine_.reset();
    engine_adj_ = nullptr;
  }
  const WalkEngineOptions& walk_options() const { return walk_opts_; }
  /// Whether replicated runs of this plan take the fused walk path.
  bool walk_fusable() const { return walk_shape_.matched && walk_opts_.fused; }
  /// Walk steps (surviving walker × round) advanced since construction /
  /// reset_stats, on both the fused and the matrix path — the edges/s
  /// numerator of bench/micro_walk.
  std::uint64_t walk_steps() const { return walk_steps_; }

 private:
  std::shared_ptr<const SamplePlan> plan_;
  SamplerConfig config_;
  /// Per-op accounting. Samplers drive their executor sequentially (the
  /// Workspace ownership contract), so mutation from const runs is safe.
  mutable std::map<std::string, PlanOpStats> stats_;
  // Fused walk engine (replicated walk-shaped plans). The engine holds a
  // relabeled adjacency copy, so it is cached keyed on the bound adjacency
  // and rebuilt only when the caller switches graphs.
  WalkEngineOptions walk_opts_;
  WalkPlanShape walk_shape_;
  mutable std::unique_ptr<WalkEngine> engine_;
  mutable const CsrMatrix* engine_adj_ = nullptr;
  mutable std::uint64_t walk_steps_ = 0;
};

}  // namespace dms
