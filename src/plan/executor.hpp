// The accounted plan executor (DESIGN.md §9): binds a SamplePlan's symbolic
// slots to concrete CSR/frontier buffers and runs its ops through the
// existing kernel machinery — the adaptive SpGEMM engine, its_sample_rows,
// and the Workspace arena in replicated mode; the 1.5D collectives plus
// per-process-row local kernels in partitioned mode.
//
// Accounting: every op is wall-clock timed into a per-op table (keyed
// "<plan>/<label>"; surfaced through MatrixSampler::op_time_breakdown and
// EpochStats::sampler_ops), and in partitioned mode its time additionally
// reaches the Cluster under the op's canonical phase tag — max over process
// rows for row-local ops, via the 1.5D collective's own compute/comm
// recording for kSpgemm15d/kMaskedExtract15d. The canonical phases keep
// EpochStats and the Figure 7 breakdowns identical to the pre-IR samplers.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "common/workspace.hpp"
#include "core/sampler.hpp"
#include "dist/spgemm_15d.hpp"
#include "graph/graph.hpp"
#include "graph/partition.hpp"
#include "plan/plan.hpp"

namespace dms {

/// Cumulative per-op execution statistics (host wall-clock).
struct PlanOpStats {
  double seconds = 0.0;
  std::uint64_t calls = 0;
};

class PlanExecutor {
 public:
  /// Validates and stores the plan. `config` supplies the per-round fanouts
  /// (and must outlast nothing — it is copied).
  PlanExecutor(SamplePlan plan, SamplerConfig config);

  const SamplePlan& plan() const { return plan_; }
  const SamplerConfig& config() const { return config_; }

  /// Replicated / single-node execution: runs the (unlowered) plan against
  /// `graph`'s adjacency. `ws` is the caller's scratch arena (required);
  /// `global_weights` binds the prefix-sum distribution of
  /// kItsSample/kGlobalWeights plans (FastGCN). One run at a time per
  /// executor (the Workspace contract).
  std::vector<MinibatchSample> run(
      const Graph& graph, const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed,
      Workspace* ws, const std::vector<value_t>* global_weights = nullptr) const;

  /// Partitioned execution of a lowered plan: batches are pre-assigned to
  /// process rows by `assign`; ops run per process row with row-local time
  /// recorded max-over-rows on `cluster`, and the lowered collectives run
  /// through spgemm_15d with `local_spgemm` threading the per-panel engine
  /// options. Returns per-process-row samples (concatenation restores
  /// global batch order).
  std::vector<std::vector<MinibatchSample>> run_partitioned(
      Cluster& cluster, const DistBlockRowMatrix& adj, const BlockPartition& assign,
      const std::vector<std::vector<index_t>>& batches,
      const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed,
      Workspace* ws, const SpgemmOptions& local_spgemm, bool sparsity_aware,
      const std::vector<value_t>* global_weights = nullptr) const;

  /// Cumulative per-op stats since construction / reset, keyed
  /// "<plan>/<label>".
  const std::map<std::string, PlanOpStats>& op_stats() const { return stats_; }
  /// op_stats() projected to seconds (the MatrixSampler breakdown surface).
  std::map<std::string, double> op_seconds() const;
  void reset_stats() const { stats_.clear(); }

 private:
  SamplePlan plan_;
  SamplerConfig config_;
  /// Per-op accounting. Samplers drive their executor sequentially (the
  /// Workspace ownership contract), so mutation from const runs is safe.
  mutable std::map<std::string, PlanOpStats> stats_;
};

}  // namespace dms
