// Sampling-plan IR (DESIGN.md §9): every sampler in the library is a small
// matrix-op program — a SamplePlan — over symbolic matrix slots, executed by
// one accounted PlanExecutor (plan/executor.hpp).
//
// The paper's framework (§4) expresses GraphSAGE, LADIES and FastGCN as
// compositions of the same primitives: probability-generation SpGEMM, NORM,
// ITS sampling, and extraction SpGEMMs. The IR makes that algebra explicit:
// a plan's *body* is run once per sampled layer (round), reading and writing
// typed slots (sparse matrices, per-batch frontiers, per-batch sampled
// sets); an optional *epilogue* runs after the last round (GraphSAINT's
// induced-subgraph emission). Two slots persist across rounds — the frontier
// and, for walk-based plans, the visited set — everything else is
// recomputed each round.
//
// Execution modes share one plan definition. The replicated executor runs
// ops through the single-node kernels (spgemm_engine, its_sample_rows); the
// partitioned executor runs a *lowered* plan (lower_to_dist) in which every
// kSpgemm has been rewritten to the collective kSpgemm15d and every
// kMaskedExtract to kMaskedExtract15d — the stacked 1.5D row-extraction
// product plus per-batch masked slicing, whose internal fetch/exchange steps
// carry the communication accounting. Because every kernel obeys the
// engine's bit-identity contract and all randomness is derived from (epoch,
// global batch id, round, row) seeds, a plan produces bit-identical
// minibatches in every mode, grid shape, and thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sparse/spgemm_cost.hpp"

namespace dms {

// Phase names under which plan ops account compute/comm time on a Cluster
// (Figure 7 breakdowns). Formerly defined by dist/dist_sampler.hpp; they
// live here because every op of the IR carries one.
inline constexpr const char* kPhaseProbability = "probability";
inline constexpr const char* kPhaseSampling = "sampling";
inline constexpr const char* kPhaseExtraction = "extraction";

/// Symbolic slot handle. Slots are typed at execution time: a slot holds a
/// sparse matrix, per-batch vertex lists (frontiers / sampled sets), a
/// per-batch matrix list, or a frontier stack (Eq. 1 row offsets).
using SlotId = int;
inline constexpr SlotId kNoSlot = -1;

enum class PlanOpKind {
  /// frontiers → Q. kOnePerVertex stacks the per-batch lists (Eq. 1) and
  /// emits one nonzero per row plus the FrontierStack (out2); kIndicator
  /// emits one indicator row per batch (§4.2.1).
  kBuildQ,
  /// out = in · A, the probability-generation / row-extraction product
  /// against the bound adjacency. Lowered to kSpgemm15d for partitioned
  /// execution.
  kSpgemm,
  /// In-place NORM on a matrix slot: kRow row-normalizes (§4.1.1); kLadies
  /// squares entries first (p_v ∝ e_v², Zou et al. 2019).
  kNormalize,
  /// SAMPLE via inverse transform sampling (§4.1.2). kMatrixRows samples s
  /// distinct columns from each row of a probability matrix; kGlobalWeights
  /// samples per batch from a bound global weight prefix (FastGCN's
  /// batch-independent distribution) into a sampled-set slot.
  kItsSample,
  /// LABOR-style per-vertex Poisson thinning: keep entry (r, u) of the
  /// row-normalized P iff the shared per-vertex uniform r_u — derived from
  /// (epoch, batch, round, u), identical across rows of one batch — is
  /// below s·P(r, u). Correlated inclusion minimizes the union frontier.
  kPoissonThin,
  /// Per-batch row read of a matrix slot into a sampled-set slot
  /// (row b → the sampled vertex ids of batch b).
  kSlice,
  /// Fused masked extraction A_S = (Q_R·A)[:, S] per batch (§4.2.3,
  /// §8.2.2): rows from the frontier, columns from a sampled-set slot.
  /// Lowered to kMaskedExtract15d for partitioned execution.
  kMaskedExtract,
  /// EXTRACT + frontier advance: assembles one LayerSample per batch and
  /// replaces the frontier with the new column space (rows lead, see
  /// sampler.hpp). kNeighborRows renumbers sampled Q rows (GraphSAGE
  /// §4.1.3); kSampledSets unions rows ∪ sampled over a masked-extraction
  /// result (LADIES / FastGCN).
  kFrontierUnion,
  /// Random-walk step: frontier[b] ← sampled next vertex per walker (dead
  /// walks drop out), appending survivors to the visited slot. Plans with a
  /// prev slot also record each survivor's previous vertex (second-order
  /// walks).
  kWalkAdvance,
  /// node2vec second-order bias (Grover & Leskovec 2016): scales each entry
  /// of the probability matrix (in, modified in place; in2 = the round's
  /// frontier stack) by 1/p when the candidate is the walker's previous
  /// vertex, 1 when it neighbors it, 1/q otherwise. Reads the plan's prev
  /// slot; a walker with no previous step yet (round 0) is left unbiased.
  /// Row-local in partitioned mode (prev rows are fetched from their owner
  /// block, with the fetch accounted as intra-column p2p).
  kWalkBias,
  /// Epilogue op: per batch, the subgraph induced on the (sorted, deduped)
  /// visited set, emitted `copies` times (GraphSAINT trains an L-layer
  /// model on one induced adjacency). Replaces batch_vertices with V_s.
  kInducedLayers,
  // --- dist-lowered forms (produced by lower_to_dist; executed only by the
  // partitioned executor) ---
  /// kSpgemm lowered to the 1.5D collective (Algorithm 2): per-process-row
  /// Q blocks, chunked A-row fetch/exchange, all-reduce of partials.
  kSpgemm15d,
  /// kMaskedExtract lowered to the distributed form: stacked Q_R through
  /// the 1.5D collective, then per-batch row_slice + masked extraction.
  kMaskedExtract15d,
};

enum class QMode { kOnePerVertex, kIndicator };
enum class NormMode { kRow, kLadies };
enum class SampleSource { kMatrixRows, kGlobalWeights };
enum class AssembleMode { kNeighborRows, kSampledSets };

/// Fourth derive_seed argument of a sampling op's per-row seed.
enum class SeedRowTerm { kLocalRow, kZero, kOne };

/// Randomness of one sampling op: seed = derive_seed(epoch_seed, global
/// batch id, round + layer_salt, row term). Derived per (batch, round, row)
/// — never from the rank layout or thread count — which is what makes every
/// execution mode reproduce the same samples (the determinism contract).
struct SeedRule {
  std::uint64_t layer_salt = 0;
  SeedRowTerm row = SeedRowTerm::kZero;
};

struct PlanOp {
  PlanOpKind kind = PlanOpKind::kBuildQ;
  /// Per-op accounting label (EpochStats::sampler_ops key is
  /// "<plan>/<label>").
  std::string label;
  /// Cluster phase this op's time is recorded under (kPhase*).
  const char* phase = kPhaseProbability;
  SlotId in = kNoSlot;   ///< primary input slot
  SlotId in2 = kNoSlot;  ///< secondary input (stack / sampled sets)
  SlotId out = kNoSlot;  ///< primary output slot
  SlotId out2 = kNoSlot; ///< secondary output (kBuildQ's FrontierStack)
  QMode qmode = QMode::kOnePerVertex;
  NormMode norm = NormMode::kRow;
  SampleSource source = SampleSource::kMatrixRows;
  SeedRule seed;
  AssembleMode assemble = AssembleMode::kNeighborRows;
  /// Per-round sample count override (GraphSAINT walks use s = 1); < 0
  /// reads SamplerConfig::fanouts[round].
  index_t fixed_s = -1;
  /// kInducedLayers: how many identical layers to emit.
  index_t copies = 1;
  /// kWalkBias: the node2vec return (p) and in-out (q) parameters.
  value_t bias_p = 1.0;
  value_t bias_q = 1.0;
  // --- optimizer stamps (plan/optimize.hpp; builders never set these) ---
  /// kSpgemm/kSpgemm15d: apply `norm` to the product (the adjacent
  /// kNormalize this op absorbed). Replicated execution runs it as the
  /// engine's fused per-block epilogue; the 1.5D form normalizes after the
  /// all-reduce (partials must sum first). Bit-identical either way.
  bool fused_norm = false;
  /// kMaskedExtract/kMaskedExtract15d: `in` holds the sampled-columns
  /// MATRIX (the absorbed kSlice's input); the op reads its per-batch
  /// sampled sets from that matrix's rows and also writes them to `out2`
  /// (the absorbed kSlice's output slot) for downstream readers.
  bool slice_fused = false;
  /// Stamped analysis: this op is the only reader of `in`, so its executor
  /// may move the slot value instead of copying (recomputed at run time
  /// when unstamped — an unoptimized plan behaves identically).
  bool sole_reader_in = false;
  /// kSpgemm/kSpgemm15d kAuto dispatch cost model, threaded into
  /// SpgemmOptions by the executor. Defaults reproduce the engine's
  /// historical threshold; kernel choice never affects result bits.
  SpgemmCostModel cost{};
};

/// A compiled sampler: the op program plus its slot/loop structure.
struct SamplePlan {
  std::string name;
  index_t num_slots = 0;
  /// Persistent slot holding the per-batch frontier; bound to the batch
  /// vertex lists when a run starts.
  SlotId frontier_slot = kNoSlot;
  /// Persistent visited-set slot for walk plans (kNoSlot otherwise).
  SlotId visited_slot = kNoSlot;
  /// Persistent previous-vertex slot for second-order walk plans
  /// (node2vec): written by kWalkAdvance, read by kWalkBias the next round.
  SlotId prev_slot = kNoSlot;
  /// true: rounds = SamplerConfig::fanouts.size(); false: explicit_rounds
  /// (GraphSAINT's walk length is independent of the model depth).
  bool rounds_from_fanouts = true;
  index_t explicit_rounds = 0;
  /// Stop the round loop early when kBuildQ stacks an empty frontier
  /// (GraphSAINT: every walk hit a sink).
  bool stop_on_empty_frontier = false;
  /// Plan samples from a bound global weight prefix (FastGCN).
  bool needs_global_weights = false;
  /// Set by lower_to_dist: kSpgemm/kMaskedExtract have been rewritten to
  /// their collective forms and the plan is executable only by the
  /// partitioned executor.
  bool distributed = false;
  std::vector<PlanOp> body;      ///< run once per round
  std::vector<PlanOp> epilogue;  ///< run once after the last round

  SlotId add_slot() { return num_slots++; }
};

/// Structural validation: every op reads only slots that are bound (the
/// frontier/visited slots) or were written earlier in the program, operand
/// slots required by the op kind are present and in range, and dist-only op
/// kinds appear only in lowered plans. Throws DmsError ("unbound slot",
/// "missing operand", ...) on the first violation.
void validate_plan(const SamplePlan& plan);

/// The dist lowering pass (§5.2): returns a copy of `plan` with every
/// kSpgemm rewritten to kSpgemm15d and every kMaskedExtract to
/// kMaskedExtract15d (which insert the block-row fetch/exchange and
/// all-reduce steps of Algorithm 2 when executed), and `distributed` set.
/// Row-local ops are unchanged — including kWalkBias and kInducedLayers,
/// whose partitioned executors assemble the adjacency rows they need from
/// the owner blocks (the fetches are accounted as intra-column p2p).
SamplePlan lower_to_dist(const SamplePlan& plan);

std::string to_string(PlanOpKind kind);

/// True iff `op` is the only op in the plan reading slot `op.in` — then its
/// executor may move the value out instead of copying (the slot's producer
/// precedes any reader in program order, so the next round re-fills it
/// before it is read again). The optimizer stamps this onto
/// PlanOp::sole_reader_in; unstamped ops recompute it per run.
bool sole_reader_of_input(const SamplePlan& plan, const PlanOp& op);

/// Human-readable program listing (one op per line), for docs and tests.
/// Optimizer stamps show up as `+norm(...)` / `+slice` markers.
std::string describe(const SamplePlan& plan);

}  // namespace dms
