#include "plan/builders.hpp"

namespace dms {

namespace {

PlanOp op(PlanOpKind kind, const char* label, const char* phase) {
  PlanOp o;
  o.kind = kind;
  o.label = label;
  o.phase = phase;
  return o;
}

}  // namespace

SamplePlan build_sage_plan() {
  SamplePlan p;
  p.name = "sage";
  const SlotId frontier = p.frontier_slot = p.add_slot();
  const SlotId q = p.add_slot();
  const SlotId stack = p.add_slot();
  const SlotId prob = p.add_slot();
  const SlotId qs = p.add_slot();

  PlanOp build = op(PlanOpKind::kBuildQ, "build_q", kPhaseProbability);
  build.qmode = QMode::kOnePerVertex;
  build.in = frontier;
  build.out = q;
  build.out2 = stack;
  p.body.push_back(build);

  PlanOp mul = op(PlanOpKind::kSpgemm, "spgemm", kPhaseProbability);
  mul.in = q;
  mul.out = prob;
  p.body.push_back(mul);

  PlanOp norm = op(PlanOpKind::kNormalize, "normalize", kPhaseProbability);
  norm.norm = NormMode::kRow;
  norm.in = prob;
  p.body.push_back(norm);

  PlanOp its = op(PlanOpKind::kItsSample, "its_sample", kPhaseSampling);
  its.in = prob;
  its.in2 = stack;
  its.out = qs;
  its.seed = {0, SeedRowTerm::kLocalRow};
  p.body.push_back(its);

  PlanOp extract = op(PlanOpKind::kFrontierUnion, "extract", kPhaseExtraction);
  extract.assemble = AssembleMode::kNeighborRows;
  extract.in = qs;
  extract.in2 = stack;
  p.body.push_back(extract);
  return p;
}

SamplePlan build_ladies_plan() {
  SamplePlan p;
  p.name = "ladies";
  const SlotId frontier = p.frontier_slot = p.add_slot();
  const SlotId q = p.add_slot();
  const SlotId prob = p.add_slot();
  const SlotId qs = p.add_slot();
  const SlotId sampled = p.add_slot();
  const SlotId a_s = p.add_slot();

  PlanOp build = op(PlanOpKind::kBuildQ, "build_q", kPhaseProbability);
  build.qmode = QMode::kIndicator;
  build.in = frontier;
  build.out = q;
  p.body.push_back(build);

  PlanOp mul = op(PlanOpKind::kSpgemm, "spgemm", kPhaseProbability);
  mul.in = q;
  mul.out = prob;
  p.body.push_back(mul);

  PlanOp norm = op(PlanOpKind::kNormalize, "normalize", kPhaseProbability);
  norm.norm = NormMode::kLadies;
  norm.in = prob;
  p.body.push_back(norm);

  PlanOp its = op(PlanOpKind::kItsSample, "its_sample", kPhaseSampling);
  its.in = prob;  // one row per batch: seeds keyed by batch id alone
  its.out = qs;
  its.seed = {0, SeedRowTerm::kZero};
  p.body.push_back(its);

  PlanOp slice = op(PlanOpKind::kSlice, "slice", kPhaseExtraction);
  slice.in = qs;
  slice.out = sampled;
  p.body.push_back(slice);

  PlanOp mask = op(PlanOpKind::kMaskedExtract, "masked_extract", kPhaseExtraction);
  mask.in = sampled;
  mask.out = a_s;
  p.body.push_back(mask);

  PlanOp assemble = op(PlanOpKind::kFrontierUnion, "assemble", kPhaseExtraction);
  assemble.assemble = AssembleMode::kSampledSets;
  assemble.in = a_s;
  assemble.in2 = sampled;
  p.body.push_back(assemble);
  return p;
}

SamplePlan build_fastgcn_plan() {
  SamplePlan p;
  p.name = "fastgcn";
  p.needs_global_weights = true;
  p.frontier_slot = p.add_slot();
  const SlotId sampled = p.add_slot();
  const SlotId a_s = p.add_slot();

  PlanOp its = op(PlanOpKind::kItsSample, "its_global", kPhaseSampling);
  its.source = SampleSource::kGlobalWeights;
  its.out = sampled;
  its.seed = {0, SeedRowTerm::kOne};
  p.body.push_back(its);

  PlanOp mask = op(PlanOpKind::kMaskedExtract, "masked_extract", kPhaseExtraction);
  mask.in = sampled;
  mask.out = a_s;
  p.body.push_back(mask);

  PlanOp assemble = op(PlanOpKind::kFrontierUnion, "assemble", kPhaseExtraction);
  assemble.assemble = AssembleMode::kSampledSets;
  assemble.in = a_s;
  assemble.in2 = sampled;
  p.body.push_back(assemble);
  return p;
}

SamplePlan build_labor_plan() {
  SamplePlan p;
  p.name = "labor";
  const SlotId frontier = p.frontier_slot = p.add_slot();
  const SlotId q = p.add_slot();
  const SlotId stack = p.add_slot();
  const SlotId prob = p.add_slot();
  const SlotId qs = p.add_slot();

  PlanOp build = op(PlanOpKind::kBuildQ, "build_q", kPhaseProbability);
  build.qmode = QMode::kOnePerVertex;
  build.in = frontier;
  build.out = q;
  build.out2 = stack;
  p.body.push_back(build);

  PlanOp mul = op(PlanOpKind::kSpgemm, "spgemm", kPhaseProbability);
  mul.in = q;
  mul.out = prob;
  p.body.push_back(mul);

  PlanOp norm = op(PlanOpKind::kNormalize, "normalize", kPhaseProbability);
  norm.norm = NormMode::kRow;  // P(v, u) = 1/deg(v): thin at rate s/deg(v)
  norm.in = prob;
  p.body.push_back(norm);

  PlanOp thin = op(PlanOpKind::kPoissonThin, "poisson_thin", kPhaseSampling);
  thin.in = prob;
  thin.in2 = stack;
  thin.out = qs;
  thin.seed = {0x1ab0, SeedRowTerm::kZero};  // r_u keyed (epoch, batch, round, u)
  p.body.push_back(thin);

  PlanOp extract = op(PlanOpKind::kFrontierUnion, "extract", kPhaseExtraction);
  extract.assemble = AssembleMode::kNeighborRows;
  extract.in = qs;
  extract.in2 = stack;
  p.body.push_back(extract);
  return p;
}

SamplePlan build_saint_plan(index_t walk_length, index_t model_layers) {
  check(walk_length >= 1, "build_saint_plan: walk_length must be >= 1");
  check(model_layers >= 1, "build_saint_plan: model_layers must be >= 1");
  SamplePlan p;
  p.name = "saint_rw";
  p.rounds_from_fanouts = false;
  p.explicit_rounds = walk_length;
  p.stop_on_empty_frontier = true;
  const SlotId walker = p.frontier_slot = p.add_slot();
  p.visited_slot = p.add_slot();
  const SlotId q = p.add_slot();
  const SlotId stack = p.add_slot();
  const SlotId prob = p.add_slot();
  const SlotId qs = p.add_slot();

  PlanOp build = op(PlanOpKind::kBuildQ, "build_q", kPhaseProbability);
  build.qmode = QMode::kOnePerVertex;
  build.in = walker;
  build.out = q;
  build.out2 = stack;
  p.body.push_back(build);

  PlanOp mul = op(PlanOpKind::kSpgemm, "spgemm", kPhaseProbability);
  mul.in = q;
  mul.out = prob;
  p.body.push_back(mul);

  PlanOp norm = op(PlanOpKind::kNormalize, "normalize", kPhaseProbability);
  norm.norm = NormMode::kRow;
  norm.in = prob;
  p.body.push_back(norm);

  PlanOp its = op(PlanOpKind::kItsSample, "its_sample", kPhaseSampling);
  its.in = prob;
  its.in2 = stack;
  its.out = qs;
  its.fixed_s = 1;                            // one next vertex per walker
  its.seed = {0x5a17, SeedRowTerm::kLocalRow};  // the pre-IR walk seeds
  p.body.push_back(its);

  PlanOp advance = op(PlanOpKind::kWalkAdvance, "walk_advance", kPhaseExtraction);
  advance.in = qs;
  advance.in2 = stack;
  p.body.push_back(advance);

  PlanOp induced = op(PlanOpKind::kInducedLayers, "induced", kPhaseExtraction);
  induced.copies = model_layers;
  p.epilogue.push_back(induced);
  return p;
}

SamplePlan build_node2vec_plan(index_t walk_length, index_t model_layers,
                               value_t p_ret, value_t q_io) {
  check(walk_length >= 1, "build_node2vec_plan: walk_length must be >= 1");
  check(model_layers >= 1, "build_node2vec_plan: model_layers must be >= 1");
  check(p_ret > 0.0 && q_io > 0.0,
        "build_node2vec_plan: p and q must be positive");
  SamplePlan p;
  p.name = "node2vec";
  p.rounds_from_fanouts = false;
  p.explicit_rounds = walk_length;
  p.stop_on_empty_frontier = true;
  const SlotId walker = p.frontier_slot = p.add_slot();
  p.visited_slot = p.add_slot();
  p.prev_slot = p.add_slot();
  const SlotId q = p.add_slot();
  const SlotId stack = p.add_slot();
  const SlotId prob = p.add_slot();
  const SlotId qs = p.add_slot();

  PlanOp build = op(PlanOpKind::kBuildQ, "build_q", kPhaseProbability);
  build.qmode = QMode::kOnePerVertex;
  build.in = walker;
  build.out = q;
  build.out2 = stack;
  p.body.push_back(build);

  PlanOp mul = op(PlanOpKind::kSpgemm, "spgemm", kPhaseProbability);
  mul.in = q;
  mul.out = prob;
  p.body.push_back(mul);

  PlanOp bias = op(PlanOpKind::kWalkBias, "walk_bias", kPhaseProbability);
  bias.in = prob;
  bias.in2 = stack;
  bias.bias_p = p_ret;
  bias.bias_q = q_io;
  p.body.push_back(bias);

  PlanOp norm = op(PlanOpKind::kNormalize, "normalize", kPhaseProbability);
  norm.norm = NormMode::kRow;
  norm.in = prob;
  p.body.push_back(norm);

  PlanOp its = op(PlanOpKind::kItsSample, "its_sample", kPhaseSampling);
  its.in = prob;
  its.in2 = stack;
  its.out = qs;
  its.fixed_s = 1;
  // Same walk seeds as saint_rw: with p = q = 1 the bias multiplies every
  // entry by exactly 1.0 and the walks reproduce saint_rw bit-for-bit.
  its.seed = {0x5a17, SeedRowTerm::kLocalRow};
  p.body.push_back(its);

  PlanOp advance = op(PlanOpKind::kWalkAdvance, "walk_advance", kPhaseExtraction);
  advance.in = qs;
  advance.in2 = stack;
  p.body.push_back(advance);

  PlanOp induced = op(PlanOpKind::kInducedLayers, "induced", kPhaseExtraction);
  induced.copies = model_layers;
  p.epilogue.push_back(induced);
  return p;
}

SamplePlan build_pinsage_plan() {
  // The GraphSAGE op program verbatim — the PinSAGE semantics come entirely
  // from binding the walk-derived weighted adjacency (core/pinsage.hpp):
  // NORM turns the visit counts into importance probabilities and ITS draws
  // the weighted fanout.
  SamplePlan p = build_sage_plan();
  p.name = "pinsage";
  return p;
}

}  // namespace dms
