// The built-in sampler plans (DESIGN.md §9): each sampling algorithm is a
// ~20-line plan definition over the shared op vocabulary. The same plan
// serves every execution mode — the replicated executor runs it directly,
// the partitioned samplers run lower_to_dist(plan).
#pragma once

#include "common/types.hpp"
#include "plan/plan.hpp"

namespace dms {

/// GraphSAGE (§4.1): stack → Q·A → NORM → ITS(s per vertex) → extract.
SamplePlan build_sage_plan();

/// LADIES (§4.2): indicator Q → Q·A → NORM(e²) → ITS(s per batch) →
/// masked extraction (Q_R·A)[:, S] → union assembly.
SamplePlan build_ladies_plan();

/// FastGCN (Chen et al. 2018): batch-independent global-importance ITS →
/// masked extraction → union assembly. Needs bound global weights (the
/// squared-in-degree prefix, fastgcn_importance_prefix).
SamplePlan build_fastgcn_plan();

/// LABOR (Balin & Çatalyürek 2023, layer-neighbor sampling): stack → Q·A →
/// NORM → per-vertex Poisson thinning with batch-shared randoms → extract.
/// The fanout s is the expected per-vertex sample count; the correlated
/// thinning minimizes the union frontier relative to GraphSAGE at equal s.
SamplePlan build_labor_plan();

/// GraphSAINT-RW (Zeng et al. 2020): walk_length rounds of
/// stack → Q·A → NORM → ITS(1) → walk advance, then an induced-subgraph
/// epilogue emitting model_layers identical layers. Dist-lowerable (the
/// partitioned kInducedLayers assembles rows from the owner blocks); on the
/// replicated path the walk rounds run fused through the walk engine
/// (src/walk) when it matches the plan shape.
SamplePlan build_saint_plan(index_t walk_length, index_t model_layers);

/// node2vec (Grover & Leskovec 2016): the GraphSAINT walk shape with a
/// kWalkBias op between the probability SpGEMM and NORM — candidates are
/// reweighted 1/p (return), 1 (neighbor of the previous vertex), or 1/q —
/// plus a persistent prev slot maintained by kWalkAdvance. Uses the same
/// walk seeds as GraphSAINT, so p = q = 1 reproduces saint_rw's walks
/// bit-for-bit.
SamplePlan build_node2vec_plan(index_t walk_length, index_t model_layers,
                               value_t p, value_t q);

/// PinSAGE-style importance sampling (Ying et al. 2018): the GraphSAGE plan
/// shape run against a walk-derived weighted adjacency — short simulated
/// walks per vertex score its neighborhood, the top-T visited vertices
/// become weighted edges (core/pinsage.hpp builds that graph), and the
/// plan's NORM → ITS then draws a weighted fanout per row. Pure plan: the
/// probability SpGEMM reads the weights, so the op program needs nothing
/// new and lowers to the 1.5D collectives unchanged.
SamplePlan build_pinsage_plan();

}  // namespace dms
