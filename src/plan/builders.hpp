// The built-in sampler plans (DESIGN.md §9): each sampling algorithm is a
// ~20-line plan definition over the shared op vocabulary. The same plan
// serves every execution mode — the replicated executor runs it directly,
// the partitioned samplers run lower_to_dist(plan).
#pragma once

#include "common/types.hpp"
#include "plan/plan.hpp"

namespace dms {

/// GraphSAGE (§4.1): stack → Q·A → NORM → ITS(s per vertex) → extract.
SamplePlan build_sage_plan();

/// LADIES (§4.2): indicator Q → Q·A → NORM(e²) → ITS(s per batch) →
/// masked extraction (Q_R·A)[:, S] → union assembly.
SamplePlan build_ladies_plan();

/// FastGCN (Chen et al. 2018): batch-independent global-importance ITS →
/// masked extraction → union assembly. Needs bound global weights (the
/// squared-in-degree prefix, fastgcn_importance_prefix).
SamplePlan build_fastgcn_plan();

/// LABOR (Balin & Çatalyürek 2023, layer-neighbor sampling): stack → Q·A →
/// NORM → per-vertex Poisson thinning with batch-shared randoms → extract.
/// The fanout s is the expected per-vertex sample count; the correlated
/// thinning minimizes the union frontier relative to GraphSAGE at equal s.
SamplePlan build_labor_plan();

/// GraphSAINT-RW (Zeng et al. 2020): walk_length rounds of
/// stack → Q·A → NORM → ITS(1) → walk advance, then an induced-subgraph
/// epilogue emitting model_layers identical layers. Not dist-lowerable
/// (kInducedLayers); single-node execution only.
SamplePlan build_saint_plan(index_t walk_length, index_t model_layers);

}  // namespace dms
