#include "plan/executor.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/frontier.hpp"
#include "core/graphsage.hpp"  // sage_extract_layer (shared EXTRACT, §4.1.3)
#include "core/its.hpp"
#include "core/ladies.hpp"  // ladies_indicator_rows / ladies_norm / assemble
#include "plan/optimize.hpp"  // PlanCache
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {

namespace {

/// Concrete value bound to a symbolic slot during one run.
struct PlanValue {
  enum class Kind { kUnset, kMatrix, kLists, kMatrixList, kStack };
  Kind kind = Kind::kUnset;
  CsrMatrix m;
  std::vector<std::vector<index_t>> lists;  ///< frontiers or sampled sets
  std::vector<CsrMatrix> mats;              ///< per-batch extraction results
  FrontierStack stack;
};

/// Per-process-row execution state (replicated mode is the 1-row case).
struct RowState {
  std::vector<PlanValue> slots;
  std::vector<MinibatchSample> out;
  index_t first_batch = 0;  ///< global index of this row's first batch
  bool stopped = false;     ///< stop_on_empty_frontier tripped (walk plans)
};

struct RunCtx {
  RunCtx(const SamplePlan& p, const SamplerConfig& c) : plan(p), config(c) {}
  const SamplePlan& plan;
  const SamplerConfig& config;
  index_t n = 0;                             ///< vertex count / column space
  const CsrMatrix* adj = nullptr;            ///< replicated adjacency
  const DistBlockRowMatrix* dadj = nullptr;  ///< partitioned adjacency
  Cluster* cluster = nullptr;                ///< partitioned accounting
  const std::vector<index_t>* batch_ids = nullptr;
  std::uint64_t epoch_seed = 0;
  Workspace* ws = nullptr;
  const std::vector<value_t>* weights = nullptr;  ///< kGlobalWeights prefix
  SpgemmOptions local;  ///< per-panel engine options (partitioned)
  bool sparsity_aware = true;
  // Fused walk execution (replicated walk-shaped plans, DESIGN.md §11).
  const WalkEngine* walk_engine = nullptr;
  const WalkPlanShape* walk_shape = nullptr;
  std::uint64_t* walk_steps = nullptr;  ///< surviving walker × round counter
  std::vector<RowState> rows;
};

std::string op_where(const RunCtx& ctx, const PlanOp& op) {
  return "plan '" + ctx.plan.name + "' op '" + op.label + "'";
}

PlanValue& slot_ref(RunCtx& ctx, RowState& r, SlotId s, const PlanOp& op) {
  check(s != kNoSlot, op_where(ctx, op) + ": missing operand slot");
  return r.slots[static_cast<std::size_t>(s)];
}

CsrMatrix& as_matrix(RunCtx& ctx, RowState& r, SlotId s, const PlanOp& op) {
  PlanValue& v = slot_ref(ctx, r, s, op);
  check(v.kind == PlanValue::Kind::kMatrix,
        op_where(ctx, op) + ": type mismatch, slot " + std::to_string(s) +
            " does not hold a matrix");
  return v.m;
}

std::vector<std::vector<index_t>>& as_lists(RunCtx& ctx, RowState& r, SlotId s,
                                            const PlanOp& op) {
  PlanValue& v = slot_ref(ctx, r, s, op);
  check(v.kind == PlanValue::Kind::kLists,
        op_where(ctx, op) + ": type mismatch, slot " + std::to_string(s) +
            " does not hold per-batch vertex lists");
  return v.lists;
}

FrontierStack& as_stack(RunCtx& ctx, RowState& r, SlotId s, const PlanOp& op) {
  PlanValue& v = slot_ref(ctx, r, s, op);
  check(v.kind == PlanValue::Kind::kStack,
        op_where(ctx, op) + ": type mismatch, slot " + std::to_string(s) +
            " does not hold a frontier stack");
  return v.stack;
}

std::vector<CsrMatrix>& as_matrix_list(RunCtx& ctx, RowState& r, SlotId s,
                                       const PlanOp& op) {
  PlanValue& v = slot_ref(ctx, r, s, op);
  check(v.kind == PlanValue::Kind::kMatrixList,
        op_where(ctx, op) + ": type mismatch, slot " + std::to_string(s) +
            " does not hold a per-batch matrix list");
  return v.mats;
}

/// Runs body(row, i) for every non-stopped process row, recording the
/// max-over-rows wall-clock on the cluster under op.phase (partitioned
/// mode; replicas of a row do identical seeded work, so per-row time equals
/// per-rank time — the timed_rows convention of the pre-IR dist samplers).
template <typename Fn>
void rows_op(RunCtx& ctx, const PlanOp& op, Fn&& body) {
  double max_t = 0.0;
  for (std::size_t i = 0; i < ctx.rows.size(); ++i) {
    if (ctx.rows[i].stopped) continue;
    Timer t;
    body(ctx.rows[i], i);
    max_t = std::max(max_t, t.seconds());
  }
  if (ctx.cluster != nullptr) ctx.cluster->add_compute(op.phase, max_t);
}

/// The op's per-round sample count: its override or fanouts[round].
index_t round_s(const RunCtx& ctx, const PlanOp& op, index_t round) {
  if (op.fixed_s >= 0) return op.fixed_s;
  check(round < ctx.config.num_layers(),
        op_where(ctx, op) + ": round " + std::to_string(round) +
            " has no fanout (plan rounds exceed fanouts)");
  return ctx.config.fanouts[static_cast<std::size_t>(round)];
}

/// Uniform in [0, 1) from a derived seed (LABOR's shared per-vertex r_u).
double seed_uniform(std::uint64_t seed) {
  return static_cast<double>(seed >> 11) * (1.0 / 9007199254740992.0);
}

/// Per-row ITS seed function (the shared determinism contract): seed =
/// derive_seed(epoch, global batch id, round + salt, row term). With a
/// stack, rows map back to (batch, local row) via the offsets — delegated
/// to sage_row_seed_fn, the single implementation of that derivation;
/// without one, row index == batch index.
RowSeedFn make_row_seed(const FrontierStack* stack,
                        const std::vector<index_t>& batch_ids, index_t first,
                        std::uint64_t epoch_seed, std::uint64_t round_term,
                        SeedRowTerm term) {
  const std::uint64_t fixed = term == SeedRowTerm::kOne ? 1u : 0u;
  if (stack == nullptr) {
    return [&batch_ids, first, epoch_seed, round_term, fixed](index_t row) {
      const auto id = static_cast<std::uint64_t>(
          batch_ids[static_cast<std::size_t>(first + row)]);
      return derive_seed(epoch_seed, id, round_term, fixed);
    };
  }
  if (term == SeedRowTerm::kLocalRow) {
    return sage_row_seed_fn(*stack, batch_ids, first,
                            static_cast<index_t>(round_term), epoch_seed);
  }
  // Stacked rows with a fixed row term: all rows of one batch share a seed.
  std::vector<std::uint64_t> row_seed(stack->vertices.size());
  for (std::size_t b = 0; b + 1 < stack->offsets.size(); ++b) {
    const auto id = static_cast<std::uint64_t>(
        batch_ids[static_cast<std::size_t>(first) + b]);
    for (index_t r = stack->offsets[b]; r < stack->offsets[b + 1]; ++r) {
      row_seed[static_cast<std::size_t>(r)] =
          derive_seed(epoch_seed, id, round_term, fixed);
    }
  }
  return [row_seed = std::move(row_seed)](index_t row) {
    return row_seed[static_cast<std::size_t>(row)];
  };
}

/// Adjacency row (columns) of global vertex g in either mode. Partitioned
/// execution reads the owner block directly — every process column stores
/// whole block rows, so the read models an intra-column fetch whose cost is
/// accounted separately (model_dist_row_fetch).
std::span<const index_t> adj_row_cols(const RunCtx& ctx, index_t g) {
  if (ctx.adj != nullptr) return ctx.adj->row_cols(g);
  const BlockPartition& part = ctx.dadj->partition();
  const index_t owner = part.owner(g);
  return ctx.dadj->block(owner).row_cols(g - part.begin(owner));
}

/// Models the remote-row fetches of a row-local op in partitioned mode:
/// process row i requests the adjacency rows of `verts` (sorted, deduped)
/// from their owner blocks within its own process column — the ids-up /
/// rows-back p2p shape of the 1.5D collective's sparsity-aware fetch, one
/// message pair per remote owner. Returns row i's modeled comm seconds;
/// volumes accumulate into bytes/msgs.
double model_dist_row_fetch(const RunCtx& ctx, std::size_t i,
                            const std::vector<index_t>& verts, bool with_vals,
                            std::size_t* bytes, std::size_t* msgs) {
  const BlockPartition& part = ctx.dadj->partition();
  const ProcessGrid& grid = ctx.cluster->grid();
  const CostModel& cm = ctx.cluster->cost_model();
  const std::size_t per_edge =
      sizeof(index_t) + (with_vals ? sizeof(value_t) : 0);
  double sec = 0.0;
  std::size_t k0 = 0;
  while (k0 < verts.size()) {
    const index_t owner = part.owner(verts[k0]);
    std::size_t k1 = k0;
    std::size_t row_edges = 0;
    while (k1 < verts.size() && part.owner(verts[k1]) == owner) {
      row_edges += adj_row_cols(ctx, verts[k1]).size();
      ++k1;
    }
    if (owner != static_cast<index_t>(i)) {
      const int dst = grid.rank_of(static_cast<int>(i), 0);
      const int src = grid.rank_of(static_cast<int>(owner), 0);
      const std::size_t id_bytes = (k1 - k0) * sizeof(index_t);
      const std::size_t row_bytes =
          row_edges * per_edge + (k1 - k0 + 1) * sizeof(nnz_t);
      sec += cm.p2p(dst, src, id_bytes) + cm.p2p(src, dst, row_bytes);
      *bytes += id_bytes + row_bytes;
      *msgs += 2;
    }
    k0 = k1;
  }
  return sec;
}

void exec_build_q(RunCtx& ctx, const PlanOp& op) {
  rows_op(ctx, op, [&](RowState& r, std::size_t) {
    const auto& fr = as_lists(ctx, r, op.in, op);
    PlanValue& out = slot_ref(ctx, r, op.out, op);
    if (op.qmode == QMode::kOnePerVertex) {
      PlanValue& stk = slot_ref(ctx, r, op.out2, op);
      stk.kind = PlanValue::Kind::kStack;
      stk.stack = stack_frontiers(fr);
      if (ctx.plan.stop_on_empty_frontier && stk.stack.vertices.empty()) {
        r.stopped = true;  // every walk terminated — skip the rest
        return;
      }
      out.kind = PlanValue::Kind::kMatrix;
      out.m = CsrMatrix::one_nonzero_per_row(ctx.n, stk.stack.vertices);
    } else {
      out.kind = PlanValue::Kind::kMatrix;
      out.m = ladies_indicator_rows(ctx.n, fr);
    }
  });
}

void exec_spgemm(RunCtx& ctx, const PlanOp& op) {
  check(ctx.adj != nullptr,
        op_where(ctx, op) + ": kSpgemm needs a replicated adjacency "
                            "(partitioned runs require a lowered plan)");
  rows_op(ctx, op, [&](RowState& r, std::size_t) {
    const CsrMatrix& q = as_matrix(ctx, r, op.in, op);
    check(q.cols() == ctx.adj->rows(),
          op_where(ctx, op) + ": shape mismatch, Q cols " +
              std::to_string(q.cols()) + " vs adjacency rows " +
              std::to_string(ctx.adj->rows()));
    SpgemmOptions sopts;
    sopts.workspace = ctx.ws;
    sopts.cost = op.cost;
    if (op.fused_norm) {
      // Absorbed kNormalize runs as the engine's per-block epilogue: the
      // same per-row arithmetic, but parallel across blocks on
      // cache-resident rows instead of a serial pass over the stitched
      // product.
      sopts.epilogue = op.norm == NormMode::kRow
                           ? SpgemmEpilogue::kRowNormalize
                           : SpgemmEpilogue::kLadiesNormalize;
    }
    PlanValue& out = slot_ref(ctx, r, op.out, op);
    out.kind = PlanValue::Kind::kMatrix;
    out.m = spgemm(q, *ctx.adj, sopts);
  });
}

void exec_spgemm_15d(RunCtx& ctx, const PlanOp& op) {
  check(ctx.cluster != nullptr && ctx.dadj != nullptr,
        op_where(ctx, op) + ": kSpgemm15d requires partitioned execution");
  const auto rows = ctx.rows.size();
  const bool can_move = op.sole_reader_in || sole_reader_of_input(ctx.plan, op);
  std::vector<CsrMatrix> blocks(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    // A stopped process row (walk plans: every walk terminated) contributes
    // an empty Q — its input slot holds a stale or moved-out value.
    if (ctx.rows[i].stopped) {
      blocks[i] = CsrMatrix(0, ctx.n);
      continue;
    }
    // Move when this op is the slot's only reader (the common case —
    // avoids an O(nnz) copy per process row per round on the hot path).
    CsrMatrix& q = as_matrix(ctx, ctx.rows[i], op.in, op);
    if (can_move) {
      blocks[i] = std::move(q);
    } else {
      blocks[i] = q;
    }
  }
  Spgemm15dOptions sopts;
  sopts.sparsity_aware = ctx.sparsity_aware;
  sopts.phase = op.phase;
  sopts.local = ctx.local;
  sopts.local.workspace = ctx.ws;
  sopts.local.cost = op.cost;
  auto products = spgemm_15d(*ctx.cluster, blocks, *ctx.dadj, sopts);
  for (std::size_t i = 0; i < rows; ++i) {
    if (ctx.rows[i].stopped) continue;
    PlanValue& out = slot_ref(ctx, ctx.rows[i], op.out, op);
    out.kind = PlanValue::Kind::kMatrix;
    out.m = std::move(products[i]);
  }
  if (op.fused_norm) {
    // The 1.5D product's per-panel partials must all-reduce before any
    // normalization (a row's sum spans panels), so the absorbed kNormalize
    // runs here as a post-pass — same arithmetic, same bits.
    double max_t = 0.0;
    for (std::size_t i = 0; i < rows; ++i) {
      if (ctx.rows[i].stopped) continue;
      Timer t;
      CsrMatrix& m = as_matrix(ctx, ctx.rows[i], op.out, op);
      if (op.norm == NormMode::kRow) {
        normalize_rows(m);
      } else {
        ladies_norm(m);
      }
      max_t = std::max(max_t, t.seconds());
    }
    ctx.cluster->add_compute(op.phase, max_t);
  }
}

void exec_normalize(RunCtx& ctx, const PlanOp& op) {
  rows_op(ctx, op, [&](RowState& r, std::size_t) {
    CsrMatrix& m = as_matrix(ctx, r, op.in, op);
    if (op.norm == NormMode::kRow) {
      normalize_rows(m);
    } else {
      ladies_norm(m);
    }
  });
}

void exec_its_sample(RunCtx& ctx, const PlanOp& op, index_t round) {
  const index_t s = round_s(ctx, op, round);
  const std::uint64_t round_term =
      static_cast<std::uint64_t>(round) + op.seed.layer_salt;
  if (op.source == SampleSource::kMatrixRows) {
    rows_op(ctx, op, [&](RowState& r, std::size_t) {
      const CsrMatrix& p = as_matrix(ctx, r, op.in, op);
      const FrontierStack* stack =
          op.in2 == kNoSlot ? nullptr : &as_stack(ctx, r, op.in2, op);
      const RowSeedFn fn =
          make_row_seed(stack, *ctx.batch_ids, r.first_batch, ctx.epoch_seed,
                        round_term, op.seed.row);
      PlanValue& out = slot_ref(ctx, r, op.out, op);
      out.kind = PlanValue::Kind::kMatrix;
      out.m = its_sample_rows(p, s, fn, ctx.ws);
    });
    return;
  }
  // kGlobalWeights: per-batch ITS over the bound prefix-sum distribution
  // (FastGCN §2.2.2); the chosen-flags scratch lives in the workspace so
  // the loop is allocation-free.
  check(ctx.weights != nullptr,
        op_where(ctx, op) + ": plan needs global weights but none were bound");
  rows_op(ctx, op, [&](RowState& r, std::size_t) {
    ctx.ws->ensure_slots(1);
    PlanValue& out = slot_ref(ctx, r, op.out, op);
    out.kind = PlanValue::Kind::kLists;
    out.lists.assign(r.out.size(), {});
    const std::uint64_t fixed = op.seed.row == SeedRowTerm::kOne ? 1u : 0u;
    for (std::size_t b = 0; b < r.out.size(); ++b) {
      const auto id = static_cast<std::uint64_t>(
          (*ctx.batch_ids)[static_cast<std::size_t>(r.first_batch) + b]);
      its_sample_one(*ctx.weights, s,
                     derive_seed(ctx.epoch_seed, id, round_term, fixed),
                     &out.lists[b], ctx.ws->slot(0).flags);
    }
  });
}

void exec_poisson_thin(RunCtx& ctx, const PlanOp& op, index_t round) {
  const index_t s = round_s(ctx, op, round);
  const std::uint64_t round_term =
      static_cast<std::uint64_t>(round) + op.seed.layer_salt;
  rows_op(ctx, op, [&](RowState& r, std::size_t) {
    const CsrMatrix& p = as_matrix(ctx, r, op.in, op);
    const FrontierStack& stack = as_stack(ctx, r, op.in2, op);
    // Keep entry (row, u) iff r_u < s·P(row, u), with r_u shared by every
    // row of one batch (LABOR's correlated inclusion: a vertex admitted by
    // one row is likely admitted by all, shrinking the union frontier).
    std::vector<nnz_t> rowptr(static_cast<std::size_t>(p.rows()) + 1, 0);
    std::vector<index_t> cols;
    for (std::size_t b = 0; b + 1 < stack.offsets.size(); ++b) {
      const auto id = static_cast<std::uint64_t>(
          (*ctx.batch_ids)[static_cast<std::size_t>(r.first_batch) + b]);
      for (index_t row = stack.offsets[b]; row < stack.offsets[b + 1]; ++row) {
        const auto rcols = p.row_cols(row);
        const auto rvals = p.row_vals(row);
        for (std::size_t k = 0; k < rcols.size(); ++k) {
          const index_t u = rcols[k];
          const double ru = seed_uniform(derive_seed(
              ctx.epoch_seed, id, round_term, static_cast<std::uint64_t>(u)));
          if (ru < static_cast<double>(s) * rvals[k]) cols.push_back(u);
        }
        rowptr[static_cast<std::size_t>(row) + 1] =
            static_cast<nnz_t>(cols.size());
      }
    }
    PlanValue& out = slot_ref(ctx, r, op.out, op);
    out.kind = PlanValue::Kind::kMatrix;
    std::vector<value_t> vals(cols.size(), 1.0);
    out.m = CsrMatrix(p.rows(), p.cols(), std::move(rowptr), std::move(cols),
                      std::move(vals));
  });
}

void exec_slice(RunCtx& ctx, const PlanOp& op) {
  rows_op(ctx, op, [&](RowState& r, std::size_t) {
    const CsrMatrix& m = as_matrix(ctx, r, op.in, op);
    check(static_cast<std::size_t>(m.rows()) == r.out.size(),
          op_where(ctx, op) + ": shape mismatch, matrix rows " +
              std::to_string(m.rows()) + " vs " + std::to_string(r.out.size()) +
              " batches");
    PlanValue& out = slot_ref(ctx, r, op.out, op);
    out.kind = PlanValue::Kind::kLists;
    out.lists.assign(r.out.size(), {});
    for (std::size_t b = 0; b < r.out.size(); ++b) {
      const auto cols = m.row_cols(static_cast<index_t>(b));
      out.lists[b].assign(cols.begin(), cols.end());
    }
  });
}

/// The per-batch sampled sets a masked extraction reads. Plain ops read them
/// from the sets slot (op.in); a slice_fused op (optimizer pass 2) reads the
/// sampled-columns matrix instead and materializes the sets into the
/// absorbed kSlice's output slot (op.out2) — exactly the lists exec_slice
/// would have produced, so downstream readers see identical values.
const std::vector<std::vector<index_t>>& resolve_sampled_sets(RunCtx& ctx,
                                                              RowState& r,
                                                              const PlanOp& op) {
  if (!op.slice_fused) return as_lists(ctx, r, op.in, op);
  const CsrMatrix& m = as_matrix(ctx, r, op.in, op);
  check(static_cast<std::size_t>(m.rows()) == r.out.size(),
        op_where(ctx, op) + ": shape mismatch, matrix rows " +
            std::to_string(m.rows()) + " vs " + std::to_string(r.out.size()) +
            " batches");
  PlanValue& sets = slot_ref(ctx, r, op.out2, op);
  sets.kind = PlanValue::Kind::kLists;
  sets.lists.assign(r.out.size(), {});
  for (std::size_t b = 0; b < r.out.size(); ++b) {
    const auto cols = m.row_cols(static_cast<index_t>(b));
    sets.lists[b].assign(cols.begin(), cols.end());
  }
  return sets.lists;
}

void exec_masked_extract(RunCtx& ctx, const PlanOp& op) {
  check(ctx.adj != nullptr,
        op_where(ctx, op) + ": kMaskedExtract needs a replicated adjacency "
                            "(partitioned runs require a lowered plan)");
  rows_op(ctx, op, [&](RowState& r, std::size_t) {
    const auto& frontier = as_lists(ctx, r, ctx.plan.frontier_slot, op);
    const auto& sets = resolve_sampled_sets(ctx, r, op);
    PlanValue& out = slot_ref(ctx, r, op.out, op);
    out.kind = PlanValue::Kind::kMatrixList;
    out.mats.assign(r.out.size(), CsrMatrix());
    for (std::size_t b = 0; b < r.out.size(); ++b) {
      // Fused A_S = (Q_R·A)[:, S]: the engine's masked kernel computes only
      // the sampled columns; sampled ids come from a CSR row / ascending
      // ITS output, satisfying the sorted-and-distinct mask contract.
      const CsrMatrix qr = CsrMatrix::one_nonzero_per_row(ctx.n, frontier[b]);
      SpgemmOptions mopts;
      mopts.column_mask = &sets[b];
      mopts.workspace = ctx.ws;
      out.mats[b] = spgemm(qr, *ctx.adj, mopts);
    }
  });
}

void exec_masked_extract_15d(RunCtx& ctx, const PlanOp& op) {
  check(ctx.cluster != nullptr && ctx.dadj != nullptr,
        op_where(ctx, op) + ": kMaskedExtract15d requires partitioned execution");
  const auto rows = ctx.rows.size();
  // Stage 1 (row-local, timed): stack each row's frontiers into Q_R.
  std::vector<FrontierStack> stacks(rows);
  std::vector<CsrMatrix> qr_blocks(rows);
  rows_op(ctx, op, [&](RowState& r, std::size_t i) {
    stacks[i] = stack_frontiers(as_lists(ctx, r, ctx.plan.frontier_slot, op));
    qr_blocks[i] = CsrMatrix::one_nonzero_per_row(ctx.n, stacks[i].vertices);
  });
  // Stage 2 (collective): the distributed row-extraction SpGEMM.
  Spgemm15dOptions xopts;
  xopts.sparsity_aware = ctx.sparsity_aware;
  xopts.phase = op.phase;
  xopts.local = ctx.local;
  xopts.local.workspace = ctx.ws;
  const auto ar_blocks = spgemm_15d(*ctx.cluster, qr_blocks, *ctx.dadj, xopts);
  // Stage 3 (row-local, timed): per-batch slice + masked column extraction.
  rows_op(ctx, op, [&](RowState& r, std::size_t i) {
    const auto& off = stacks[i].offsets;
    const auto& sets = resolve_sampled_sets(ctx, r, op);
    PlanValue& out = slot_ref(ctx, r, op.out, op);
    out.kind = PlanValue::Kind::kMatrixList;
    out.mats.assign(r.out.size(), CsrMatrix());
    for (std::size_t b = 0; b < r.out.size(); ++b) {
      const CsrMatrix ar_b = row_slice(ar_blocks[i], off[b], off[b + 1]);
      SpgemmOptions mopts;
      mopts.workspace = ctx.ws;
      out.mats[b] = spgemm_masked(ar_b, sets[b], mopts);
    }
  });
}

void exec_frontier_union(RunCtx& ctx, const PlanOp& op) {
  rows_op(ctx, op, [&](RowState& r, std::size_t) {
    auto& frontier = as_lists(ctx, r, ctx.plan.frontier_slot, op);
    if (op.assemble == AssembleMode::kNeighborRows) {
      const CsrMatrix& qs = as_matrix(ctx, r, op.in, op);
      const FrontierStack& stack = as_stack(ctx, r, op.in2, op);
      for (std::size_t b = 0; b < r.out.size(); ++b) {
        LayerSample layer = sage_extract_layer(qs, stack, b, frontier[b]);
        frontier[b] = layer.col_vertices;
        r.out[b].layers.push_back(std::move(layer));
      }
    } else {
      const auto& mats = as_matrix_list(ctx, r, op.in, op);
      const auto& sets = as_lists(ctx, r, op.in2, op);
      for (std::size_t b = 0; b < r.out.size(); ++b) {
        LayerSample layer =
            ladies_assemble_layer(frontier[b], sets[b], mats[b]);
        frontier[b] = layer.col_vertices;
        r.out[b].layers.push_back(std::move(layer));
      }
    }
  });
}

void exec_walk_bias(RunCtx& ctx, const PlanOp& op) {
  // node2vec second-order reweighting (Grover & Leskovec 2016), in place on
  // the probability rows: candidate == previous vertex → ×1/p, a neighbor
  // of it → ×1, else ×1/q. The prev slot holds one entry per walker; a
  // batch with no history yet (round 0) stays unbiased.
  std::size_t comm_bytes = 0, comm_msgs = 0;
  double comm_sec = 0.0;
  rows_op(ctx, op, [&](RowState& r, std::size_t i) {
    CsrMatrix& m = as_matrix(ctx, r, op.in, op);
    const FrontierStack& stack = as_stack(ctx, r, op.in2, op);
    const auto& prev = as_lists(ctx, r, ctx.plan.prev_slot, op);
    if (ctx.cluster != nullptr) {
      // The membership test reads the previous vertices' adjacency rows;
      // remote ones are modeled as intra-column owner-block fetches
      // (columns only — no values cross).
      std::vector<index_t> pv;
      for (const auto& pb : prev) pv.insert(pv.end(), pb.begin(), pb.end());
      std::sort(pv.begin(), pv.end());
      pv.erase(std::unique(pv.begin(), pv.end()), pv.end());
      comm_sec = std::max(comm_sec, model_dist_row_fetch(ctx, i, pv, false,
                                                         &comm_bytes, &comm_msgs));
    }
    auto& vals = m.mutable_vals();
    for (std::size_t b = 0; b + 1 < stack.offsets.size(); ++b) {
      if (prev[b].empty()) continue;  // no previous step yet
      for (index_t row = stack.offsets[b]; row < stack.offsets[b + 1]; ++row) {
        const index_t pv =
            prev[b][static_cast<std::size_t>(row - stack.offsets[b])];
        const auto prev_row = adj_row_cols(ctx, pv);
        const auto cols = m.row_cols(row);
        for (nnz_t k = m.row_begin(row); k < m.row_end(row); ++k) {
          vals[static_cast<std::size_t>(k)] *= node2vec_bias_factor(
              cols[static_cast<std::size_t>(k - m.row_begin(row))], pv,
              prev_row, op.bias_p, op.bias_q);
        }
      }
    }
  });
  if (ctx.cluster != nullptr && comm_msgs > 0) {
    ctx.cluster->record_comm(op.phase, comm_sec, comm_bytes, comm_msgs);
  }
}

void exec_walk_advance(RunCtx& ctx, const PlanOp& op) {
  rows_op(ctx, op, [&](RowState& r, std::size_t) {
    const CsrMatrix& qs = as_matrix(ctx, r, op.in, op);
    const FrontierStack& stack = as_stack(ctx, r, op.in2, op);
    auto& walker = as_lists(ctx, r, ctx.plan.frontier_slot, op);
    auto& visited = as_lists(ctx, r, ctx.plan.visited_slot, op);
    auto* prev = ctx.plan.prev_slot == kNoSlot
                     ? nullptr
                     : &as_lists(ctx, r, ctx.plan.prev_slot, op);
    for (std::size_t b = 0; b + 1 < stack.offsets.size(); ++b) {
      auto& wb = walker[b];
      if (prev != nullptr) (*prev)[b].resize(wb.size());
      // In-place forward compaction (write index <= read index): survivors
      // keep their order, dead walks drop out, no per-batch allocation.
      std::size_t j = 0;
      for (index_t row = stack.offsets[b]; row < stack.offsets[b + 1]; ++row) {
        const auto cols = qs.row_cols(row);
        // Empty row: the walk hit a sink vertex and terminates.
        if (cols.empty()) continue;
        const index_t from = wb[static_cast<std::size_t>(row - stack.offsets[b])];
        wb[j] = cols[0];
        if (prev != nullptr) (*prev)[b][j] = from;
        visited[b].push_back(cols[0]);
        if (ctx.walk_steps != nullptr) ++*ctx.walk_steps;
        ++j;
      }
      wb.resize(j);
      if (prev != nullptr) (*prev)[b].resize(j);
    }
  });
}

/// extract_rows against the partitioned adjacency: assembles the rows of
/// `vs` from their owner blocks (values pass through — block rows are
/// slices of the global matrix, so the result is bit-identical to the
/// replicated extraction).
CsrMatrix extract_rows_dist(const RunCtx& ctx, const std::vector<index_t>& vs) {
  const BlockPartition& part = ctx.dadj->partition();
  std::vector<nnz_t> rowptr(vs.size() + 1, 0);
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    const index_t owner = part.owner(vs[i]);
    const CsrMatrix& blk = ctx.dadj->block(owner);
    const index_t lr = vs[i] - part.begin(owner);
    const auto rc = blk.row_cols(lr);
    const auto rv = blk.row_vals(lr);
    cols.insert(cols.end(), rc.begin(), rc.end());
    vals.insert(vals.end(), rv.begin(), rv.end());
    rowptr[i + 1] = static_cast<nnz_t>(cols.size());
  }
  return CsrMatrix(static_cast<index_t>(vs.size()), ctx.n, std::move(rowptr),
                   std::move(cols), std::move(vals));
}

void exec_induced_layers(RunCtx& ctx, const PlanOp& op) {
  std::size_t comm_bytes = 0, comm_msgs = 0;
  double comm_sec = 0.0;
  rows_op(ctx, op, [&](RowState& r, std::size_t i) {
    auto& visited = as_lists(ctx, r, ctx.plan.visited_slot, op);
    double row_sec = 0.0;
    for (std::size_t b = 0; b < r.out.size(); ++b) {
      auto& vs = visited[b];
      std::sort(vs.begin(), vs.end());
      vs.erase(std::unique(vs.begin(), vs.end()), vs.end());
      // Induced subgraph A[V_s, V_s]: row extraction + the engine's masked
      // column extraction (values pass through — bit-identical to slicing).
      CsrMatrix rows_m;
      if (ctx.adj != nullptr) {
        rows_m = extract_rows(*ctx.adj, vs);
      } else {
        rows_m = extract_rows_dist(ctx, vs);
        row_sec += model_dist_row_fetch(ctx, i, vs, true, &comm_bytes,
                                        &comm_msgs);
      }
      SpgemmOptions mopts;
      mopts.workspace = ctx.ws;
      const CsrMatrix induced = spgemm_masked(rows_m, vs, mopts);
      LayerSample layer;
      layer.adj = induced;
      layer.row_vertices = vs;
      layer.col_vertices = vs;
      r.out[b].batch_vertices = vs;  // train on every subgraph vertex
      r.out[b].layers.clear();
      for (index_t l = 0; l < op.copies; ++l) r.out[b].layers.push_back(layer);
    }
    comm_sec = std::max(comm_sec, row_sec);
  });
  if (ctx.cluster != nullptr && comm_msgs > 0) {
    ctx.cluster->record_comm(op.phase, comm_sec, comm_bytes, comm_msgs);
  }
}

/// Peephole fusion (replicated path): a kMaskedExtract immediately consumed
/// by a kFrontierUnion/kSampledSets runs per batch as extract→assemble
/// without materializing the per-batch matrix list — the allocation/live-set
/// profile of the hand-written samplers the IR replaced (micro_plan gates
/// the executor overhead this keeps near zero). Results are identical to
/// the unfused ops; only op-stat attribution is computed from the two
/// accumulated timers.
bool fusable_masked_union(const RunCtx& ctx, const PlanOp& op, const PlanOp& next) {
  // The union must read the same sets the extraction used: the sets slot
  // itself, or — when a kSlice was absorbed (slice_fused) — the slot the
  // extraction re-materializes them into (op.out2).
  return ctx.cluster == nullptr && op.kind == PlanOpKind::kMaskedExtract &&
         next.kind == PlanOpKind::kFrontierUnion &&
         next.assemble == AssembleMode::kSampledSets && next.in == op.out &&
         next.in2 == (op.slice_fused ? op.out2 : op.in);
}

void exec_masked_union_fused(RunCtx& ctx, const PlanOp& mask_op,
                             double* mask_seconds, double* union_seconds) {
  check(ctx.adj != nullptr,
        op_where(ctx, mask_op) + ": kMaskedExtract needs a replicated adjacency");
  for (RowState& r : ctx.rows) {
    if (r.stopped) continue;
    auto& frontier = as_lists(ctx, r, ctx.plan.frontier_slot, mask_op);
    Timer tr;
    const auto& sets = resolve_sampled_sets(ctx, r, mask_op);
    *mask_seconds += tr.seconds();
    // The out slot stays bound (empty) so downstream reads still type-check.
    PlanValue& out = slot_ref(ctx, r, mask_op.out, mask_op);
    out.kind = PlanValue::Kind::kMatrixList;
    out.mats.clear();
    for (std::size_t b = 0; b < r.out.size(); ++b) {
      Timer tm;
      const CsrMatrix qr = CsrMatrix::one_nonzero_per_row(ctx.n, frontier[b]);
      SpgemmOptions mopts;
      mopts.column_mask = &sets[b];
      mopts.workspace = ctx.ws;
      const CsrMatrix a_s = spgemm(qr, *ctx.adj, mopts);
      *mask_seconds += tm.seconds();
      Timer tu;
      LayerSample layer = ladies_assemble_layer(frontier[b], sets[b], a_s);
      frontier[b] = layer.col_vertices;
      r.out[b].layers.push_back(std::move(layer));
      *union_seconds += tu.seconds();
    }
  }
}

void exec_op(RunCtx& ctx, const PlanOp& op, index_t round) {
  switch (op.kind) {
    case PlanOpKind::kBuildQ: return exec_build_q(ctx, op);
    case PlanOpKind::kSpgemm: return exec_spgemm(ctx, op);
    case PlanOpKind::kSpgemm15d: return exec_spgemm_15d(ctx, op);
    case PlanOpKind::kNormalize: return exec_normalize(ctx, op);
    case PlanOpKind::kItsSample: return exec_its_sample(ctx, op, round);
    case PlanOpKind::kPoissonThin: return exec_poisson_thin(ctx, op, round);
    case PlanOpKind::kSlice: return exec_slice(ctx, op);
    case PlanOpKind::kMaskedExtract: return exec_masked_extract(ctx, op);
    case PlanOpKind::kMaskedExtract15d: return exec_masked_extract_15d(ctx, op);
    case PlanOpKind::kFrontierUnion: return exec_frontier_union(ctx, op);
    case PlanOpKind::kWalkAdvance: return exec_walk_advance(ctx, op);
    case PlanOpKind::kWalkBias: return exec_walk_bias(ctx, op);
    case PlanOpKind::kInducedLayers: return exec_induced_layers(ctx, op);
  }
  throw DmsError(op_where(ctx, op) + ": unknown op kind");
}

}  // namespace

PlanExecutor::PlanExecutor(SamplePlan plan, SamplerConfig config,
                           PlanExecOptions opts)
    : config_(std::move(config)) {
  validate_plan(plan);
  if (opts.optimize) {
    // Optimized form, shared process-wide: every executor over the same
    // plan shape + fanouts (training epochs, coalesced serving batches,
    // replica engines) reuses one immutable SamplePlan.
    plan_ = PlanCache::global().get_or_optimize(plan, config_);
  } else {
    plan_ = std::make_shared<const SamplePlan>(std::move(plan));
  }
  walk_shape_ = match_walk_plan(*plan_);
}

std::map<std::string, double> PlanExecutor::op_seconds() const {
  std::map<std::string, double> out;
  for (const auto& [label, s] : stats_) out[label] = s.seconds;
  return out;
}

namespace {

void init_row(RunCtx& ctx, RowState& r, index_t first,
              const std::vector<std::vector<index_t>>& batches, index_t count) {
  r.slots.assign(static_cast<std::size_t>(ctx.plan.num_slots), PlanValue{});
  r.first_batch = first;
  r.out.resize(static_cast<std::size_t>(count));
  // Walk plans check pooled per-batch list buffers out of the Workspace
  // into their persistent slots (frontier / visited / prev), returned by
  // recycle_walk_lists when the run ends — steady-state walk epochs
  // allocate only results.
  const bool pooled = ctx.plan.visited_slot != kNoSlot;
  WalkScratch* sc = pooled ? &ctx.ws->walk_scratch() : nullptr;
  PlanValue& fr = r.slots[static_cast<std::size_t>(ctx.plan.frontier_slot)];
  fr.kind = PlanValue::Kind::kLists;
  fr.lists.resize(static_cast<std::size_t>(count));
  for (index_t b = 0; b < count; ++b) {
    const auto& batch = batches[static_cast<std::size_t>(first + b)];
    for (const index_t v : batch) {
      check(v >= 0 && v < ctx.n,
            "PlanExecutor: batch vertex " + std::to_string(v) +
                " out of range [0, " + std::to_string(ctx.n) + ")");
    }
    r.out[static_cast<std::size_t>(b)].batch_vertices = batch;
    auto& fl = fr.lists[static_cast<std::size_t>(b)];
    if (pooled) fl = sc->take_list();
    fl.assign(batch.begin(), batch.end());
  }
  if (ctx.plan.visited_slot != kNoSlot) {
    PlanValue& vis = r.slots[static_cast<std::size_t>(ctx.plan.visited_slot)];
    vis.kind = PlanValue::Kind::kLists;
    vis.lists.resize(static_cast<std::size_t>(count));
    for (index_t b = 0; b < count; ++b) {
      auto& vl = vis.lists[static_cast<std::size_t>(b)];
      vl = sc->take_list();
      const auto& fl = fr.lists[static_cast<std::size_t>(b)];
      vl.assign(fl.begin(), fl.end());  // walks start visited = roots
    }
  }
  if (ctx.plan.prev_slot != kNoSlot) {
    PlanValue& pp = r.slots[static_cast<std::size_t>(ctx.plan.prev_slot)];
    pp.kind = PlanValue::Kind::kLists;
    pp.lists.resize(static_cast<std::size_t>(count));
    if (pooled) {
      for (auto& pl : pp.lists) pl = sc->take_list();
    }
  }
}

/// Returns a walk plan's pooled slot lists to the Workspace pool (capacity
/// retained for the next run).
void recycle_walk_lists(RunCtx& ctx) {
  if (ctx.plan.visited_slot == kNoSlot) return;
  WalkScratch& sc = ctx.ws->walk_scratch();
  for (RowState& r : ctx.rows) {
    for (const SlotId s :
         {ctx.plan.frontier_slot, ctx.plan.visited_slot, ctx.plan.prev_slot}) {
      if (s == kNoSlot) continue;
      PlanValue& v = r.slots[static_cast<std::size_t>(s)];
      if (v.kind != PlanValue::Kind::kLists) continue;
      for (auto& l : v.lists) sc.put_list(std::move(l));
      v.lists.clear();
    }
  }
}

void run_rounds(RunCtx& ctx, std::map<std::string, PlanOpStats>& stats) {
  const index_t rounds = ctx.plan.rounds_from_fanouts
                             ? ctx.config.num_layers()
                             : ctx.plan.explicit_rounds;
  auto run_ops = [&](const std::vector<PlanOp>& ops, index_t round) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const PlanOp& op = ops[i];
      if (i + 1 < ops.size() && fusable_masked_union(ctx, op, ops[i + 1])) {
        const PlanOp& next = ops[i + 1];
        double mask_s = 0.0, union_s = 0.0;
        exec_masked_union_fused(ctx, op, &mask_s, &union_s);
        PlanOpStats& ms = stats[ctx.plan.name + "/" + op.label];
        ms.seconds += mask_s;
        ++ms.calls;
        PlanOpStats& us = stats[ctx.plan.name + "/" + next.label];
        us.seconds += union_s;
        ++us.calls;
        ++i;
        continue;
      }
      Timer t;
      exec_op(ctx, op, round);
      PlanOpStats& s = stats[ctx.plan.name + "/" + op.label];
      s.seconds += t.seconds();
      ++s.calls;
    }
  };
  if (ctx.walk_engine != nullptr) {
    // Fused walk path (DESIGN.md §11): the engine runs every body round in
    // one per-walker pass over its cache-bucketed adjacency copy —
    // bit-identical to the op-by-op rounds, so only the time attribution
    // changes (one "fused_walk" entry instead of the five body ops).
    Timer t;
    for (RowState& r : ctx.rows) {
      auto& walker =
          r.slots[static_cast<std::size_t>(ctx.plan.frontier_slot)].lists;
      auto& visited =
          r.slots[static_cast<std::size_t>(ctx.plan.visited_slot)].lists;
      auto* prev =
          ctx.plan.prev_slot == kNoSlot
              ? nullptr
              : &r.slots[static_cast<std::size_t>(ctx.plan.prev_slot)].lists;
      ctx.walk_engine->run(walker, visited, prev, *ctx.batch_ids,
                           r.first_batch, ctx.epoch_seed, rounds,
                           *ctx.walk_shape, *ctx.ws, ctx.walk_steps);
    }
    PlanOpStats& s = stats[ctx.plan.name + "/fused_walk"];
    s.seconds += t.seconds();
    ++s.calls;
    run_ops(ctx.plan.epilogue, rounds == 0 ? 0 : rounds - 1);
    return;
  }
  for (index_t l = 0; l < rounds; ++l) {
    bool any_live = false;
    for (const RowState& r : ctx.rows) any_live = any_live || !r.stopped;
    if (!any_live) break;
    run_ops(ctx.plan.body, l);
  }
  // The epilogue runs for every row, including walk plans whose frontier
  // emptied early (the visited set is still the sample).
  for (RowState& r : ctx.rows) r.stopped = false;
  run_ops(ctx.plan.epilogue, rounds == 0 ? 0 : rounds - 1);
}

}  // namespace

std::vector<MinibatchSample> PlanExecutor::run(
    const Graph& graph, const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed,
    Workspace* ws, const std::vector<value_t>* global_weights) const {
  check(batches.size() == batch_ids.size(),
        "PlanExecutor::run: ids/batches mismatch");
  // Serving's empty-coalescing-window case: a bulk of zero batches is a
  // no-op, not an error (the stacked-frontier path otherwise accepts
  // heterogeneous per-batch sizes — one-seed requests stack next to
  // training-sized batches).
  if (batches.empty()) return {};
  check(!plan_->distributed,
        "PlanExecutor::run: plan '" + plan_->name +
            "' is dist-lowered; use run_partitioned");
  check(ws != nullptr, "PlanExecutor::run: workspace required");
  check(!plan_->needs_global_weights || global_weights != nullptr,
        "PlanExecutor::run: plan '" + plan_->name +
            "' needs bound global weights");
  RunCtx ctx{*plan_, config_};
  ctx.n = graph.num_vertices();
  ctx.adj = &graph.adjacency();
  ctx.batch_ids = &batch_ids;
  ctx.epoch_seed = epoch_seed;
  ctx.ws = ws;
  ctx.weights = global_weights;
  ctx.walk_steps = &walk_steps_;
  if (walk_shape_.matched && walk_opts_.fused) {
    // Build (or reuse) the fused engine for the bound adjacency; the cache
    // key is the matrix identity, so switching graphs rebuilds.
    if (engine_ == nullptr || engine_adj_ != ctx.adj) {
      engine_ = std::make_unique<WalkEngine>(*ctx.adj, walk_opts_);
      engine_adj_ = ctx.adj;
    }
    ctx.walk_engine = engine_.get();
    ctx.walk_shape = &walk_shape_;
  }
  ctx.rows.resize(1);
  init_row(ctx, ctx.rows[0], 0, batches, static_cast<index_t>(batches.size()));
  run_rounds(ctx, stats_);
  recycle_walk_lists(ctx);
  return std::move(ctx.rows[0].out);
}

std::vector<std::vector<MinibatchSample>> PlanExecutor::run_partitioned(
    Cluster& cluster, const DistBlockRowMatrix& adj, const BlockPartition& assign,
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed,
    Workspace* ws, const SpgemmOptions& local_spgemm, bool sparsity_aware,
    const std::vector<value_t>* global_weights) const {
  check(batches.size() == batch_ids.size(),
        "PlanExecutor::run_partitioned: ids/batches mismatch");
  check(plan_->distributed,
        "PlanExecutor::run_partitioned: plan '" + plan_->name +
            "' is not dist-lowered (lower_to_dist)");
  check(ws != nullptr, "PlanExecutor::run_partitioned: workspace required");
  check(!plan_->needs_global_weights || global_weights != nullptr,
        "PlanExecutor::run_partitioned: plan '" + plan_->name +
            "' needs bound global weights");
  RunCtx ctx{*plan_, config_};
  ctx.n = adj.rows();
  ctx.dadj = &adj;
  ctx.cluster = &cluster;
  ctx.batch_ids = &batch_ids;
  ctx.epoch_seed = epoch_seed;
  ctx.ws = ws;
  ctx.weights = global_weights;
  ctx.local = local_spgemm;
  ctx.sparsity_aware = sparsity_aware;
  ctx.walk_steps = &walk_steps_;
  ctx.rows.resize(static_cast<std::size_t>(assign.parts()));
  for (index_t i = 0; i < assign.parts(); ++i) {
    init_row(ctx, ctx.rows[static_cast<std::size_t>(i)], assign.begin(i),
             batches, assign.end(i) - assign.begin(i));
  }
  run_rounds(ctx, stats_);
  recycle_walk_lists(ctx);
  std::vector<std::vector<MinibatchSample>> out;
  out.reserve(ctx.rows.size());
  for (RowState& r : ctx.rows) out.push_back(std::move(r.out));
  return out;
}

}  // namespace dms
