// Plan optimizer pass pipeline (DESIGN.md §12): runs between plan
// construction and execution, by default for every PlanExecutor.
//
// Passes, in order:
//  1. normalize fusion  — an adjacent kSpgemm → kNormalize pair collapses
//     into one kSpgemm with fused_norm set. Replicated execution then runs
//     the normalization as the SpGEMM engine's per-block epilogue (in
//     parallel, on cache-resident rows) instead of a separate serial pass
//     over the stitched product; the 1.5D form normalizes after its
//     all-reduce. Skipped on unlowered walk-shaped plans — the fused walk
//     engine (§11) matches the exact unfused op sequence.
//  2. slice fusion      — an adjacent kSlice → kMaskedExtract pair collapses
//     into one kMaskedExtract with slice_fused set: the op reads its
//     sampled sets straight from the sampled-columns matrix and writes them
//     to the absorbed slice's output slot for downstream readers.
//  3. kernel dispatch   — stamps each spgemm op's SpgemmCostModel
//     (OptimizeOptions::cost), replacing the engine's hard-coded
//     dense-vs-hash threshold with per-row FLOP-estimate costing threaded
//     through SpgemmOptions. Kernel choice never affects result bits.
//  4. dead-slot elimination — drops slots no op or persistent binding
//     references and renumbers the survivors compactly.
//  5. analysis stamping — precomputes sole_reader_of_input per matrix op so
//     the executor's move-vs-copy decision is free at run time.
//
// Every pass preserves results bit-for-bit: fusions reorder no arithmetic
// (adjacency means nothing observes the intermediate state), kernel choice
// is covered by the engine's bit-identity contract, and renumbering touches
// only symbolic ids. The golden-hash suite of tests/test_plan.cpp holds
// over optimized plans unchanged.
//
// Cross-batch plan caching: PlanCache::global() keys the optimized form by
// the full structural signature of the input plan plus the fanouts, so
// every sampler/serving engine constructed over the same plan shape shares
// one immutable optimized plan (and its stamped analyses) — training
// epochs, coalesced serving batches, and replica engines pay the
// optimization once.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/sampler.hpp"  // SamplerConfig
#include "plan/plan.hpp"

namespace dms {

struct OptimizeOptions {
  bool fuse_normalize = true;
  bool fuse_slice = true;
  bool dead_slot_elim = true;
  /// Cost model stamped onto every spgemm op (pass 3).
  SpgemmCostModel cost{};
};

/// Runs the pass pipeline over a validated plan and returns the optimized
/// (revalidated) copy. Deterministic: equal inputs yield equal outputs.
SamplePlan optimize(const SamplePlan& plan, const OptimizeOptions& opts = {});

/// Exhaustive structural signature: every op field plus the plan's slot and
/// loop structure. Two plans with equal signatures execute identically, so
/// the signature (plus fanouts) is the PlanCache key.
std::string plan_signature(const SamplePlan& plan);

/// Unified-style listing diff of two plans' describe() output: unchanged
/// lines indented, removed lines prefixed "-", added lines "+". The
/// --dump-plan tool prints optimize() before/after through this.
std::string describe_diff(const SamplePlan& before, const SamplePlan& after);

/// Process-wide cache of optimized plans, keyed by plan signature + fanouts
/// + optimizer options. Values are immutable shared plans: a PlanExecutor
/// holds the shared_ptr, so two samplers with the same plan shape and
/// fanouts literally share one SamplePlan object.
class PlanCache {
 public:
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t entries = 0;
  };

  static PlanCache& global();

  /// Returns the cached optimized form of `plan` (optimizing and inserting
  /// on first sight). `plan` must already be validated. Thread-safe.
  std::shared_ptr<const SamplePlan> get_or_optimize(
      const SamplePlan& plan, const SamplerConfig& config,
      const OptimizeOptions& opts = {});

  Stats stats() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const SamplePlan>> map_;
  Stats stats_;
};

}  // namespace dms
