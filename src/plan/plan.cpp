#include "plan/plan.hpp"

#include <set>
#include <sstream>

#include "common/types.hpp"  // DmsError / check

namespace dms {

namespace {

struct OpShape {
  bool needs_in = false;
  bool needs_in2 = false;
  bool needs_out = false;
  bool needs_out2 = false;
};

OpShape op_shape(const PlanOp& op) {
  switch (op.kind) {
    case PlanOpKind::kBuildQ:
      return {true, false, true, op.qmode == QMode::kOnePerVertex};
    case PlanOpKind::kSpgemm:
    case PlanOpKind::kSpgemm15d:
      return {true, false, true, false};
    case PlanOpKind::kNormalize:
      return {true, false, false, false};
    case PlanOpKind::kItsSample:
      // kMatrixRows reads P (in) and optionally a stack (in2); kGlobalWeights
      // reads nothing from the slot space.
      return {op.source == SampleSource::kMatrixRows, false, true, false};
    case PlanOpKind::kPoissonThin:
      return {true, true, true, false};
    case PlanOpKind::kSlice:
      return {true, false, true, false};
    case PlanOpKind::kMaskedExtract:
    case PlanOpKind::kMaskedExtract15d:
      // in = sampled sets (or the sampled-columns matrix when a kSlice was
      // fused in, which then also writes the sets to out2); rows = frontier.
      return {true, false, true, op.slice_fused};
    case PlanOpKind::kFrontierUnion:
      return {true, true, false, false};
    case PlanOpKind::kWalkAdvance:
      return {true, true, false, false};
    case PlanOpKind::kWalkBias:
      return {true, true, false, false};  // in-place on `in`; reads prev slot
    case PlanOpKind::kInducedLayers:
      return {false, false, false, false};  // reads the visited slot
  }
  return {};
}

bool is_dist_only(PlanOpKind kind) {
  return kind == PlanOpKind::kSpgemm15d || kind == PlanOpKind::kMaskedExtract15d;
}

void validate_ops(const SamplePlan& plan, const std::vector<PlanOp>& ops,
                  std::set<SlotId>& defined, const char* section) {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const PlanOp& op = ops[i];
    const std::string where = "SamplePlan '" + plan.name + "' " + section +
                              " op " + std::to_string(i) + " (" +
                              to_string(op.kind) + " '" + op.label + "')";
    check(op.phase != nullptr, where + ": missing phase tag");
    const OpShape shape = op_shape(op);
    auto check_slot = [&](SlotId s, const char* role, bool required) {
      if (s == kNoSlot) {
        check(!required, where + ": missing operand (" + role + ")");
        return;
      }
      check(s >= 0 && s < plan.num_slots,
            where + ": slot " + std::to_string(s) + " out of range");
    };
    check_slot(op.in, "in", shape.needs_in);
    check_slot(op.in2, "in2", shape.needs_in2);
    check_slot(op.out, "out", shape.needs_out);
    check_slot(op.out2, "out2", shape.needs_out2);
    for (const SlotId s : {op.in, op.in2}) {
      if (s == kNoSlot) continue;
      check(defined.count(s) > 0,
            where + ": unbound slot " + std::to_string(s) +
                " (read before any write)");
    }
    check(!op.fused_norm || op.kind == PlanOpKind::kSpgemm ||
              op.kind == PlanOpKind::kSpgemm15d,
          where + ": fused_norm is only valid on spgemm ops");
    check(!op.slice_fused || op.kind == PlanOpKind::kMaskedExtract ||
              op.kind == PlanOpKind::kMaskedExtract15d,
          where + ": slice_fused is only valid on masked-extraction ops");
    check(plan.distributed || !is_dist_only(op.kind),
          where + ": distributed op in an unlowered plan");
    check(!plan.distributed ||
              (op.kind != PlanOpKind::kSpgemm &&
               op.kind != PlanOpKind::kMaskedExtract),
          where + ": unlowered op in a distributed plan");
    if (op.kind == PlanOpKind::kFrontierUnion ||
        op.kind == PlanOpKind::kWalkAdvance) {
      check(plan.frontier_slot != kNoSlot, where + ": plan has no frontier slot");
    }
    if (op.kind == PlanOpKind::kWalkAdvance ||
        op.kind == PlanOpKind::kInducedLayers) {
      check(plan.visited_slot != kNoSlot, where + ": plan has no visited slot");
    }
    if (op.kind == PlanOpKind::kWalkBias) {
      check(plan.prev_slot != kNoSlot, where + ": plan has no prev slot");
      check(op.bias_p > 0.0 && op.bias_q > 0.0,
            where + ": bias parameters p and q must be positive");
    }
    if (op.out != kNoSlot) defined.insert(op.out);
    if (op.out2 != kNoSlot) defined.insert(op.out2);
  }
}

}  // namespace

void validate_plan(const SamplePlan& plan) {
  check(!plan.name.empty(), "SamplePlan: missing name");
  check(plan.frontier_slot != kNoSlot || plan.body.empty(),
        "SamplePlan '" + plan.name + "': missing frontier slot");
  check(plan.rounds_from_fanouts || plan.explicit_rounds > 0,
        "SamplePlan '" + plan.name + "': explicit_rounds must be positive");
  auto check_bound = [&](SlotId s, const char* what) {
    if (s == kNoSlot) return;
    check(s >= 0 && s < plan.num_slots,
          "SamplePlan '" + plan.name + "': " + what + " slot out of range");
  };
  check_bound(plan.frontier_slot, "frontier");
  check_bound(plan.visited_slot, "visited");
  check_bound(plan.prev_slot, "prev");

  // Only the frontier / visited / prev slots persist across rounds; every
  // other slot must be written before it is read, in program order.
  std::set<SlotId> defined;
  if (plan.frontier_slot != kNoSlot) defined.insert(plan.frontier_slot);
  if (plan.visited_slot != kNoSlot) defined.insert(plan.visited_slot);
  if (plan.prev_slot != kNoSlot) defined.insert(plan.prev_slot);
  validate_ops(plan, plan.body, defined, "body");
  validate_ops(plan, plan.epilogue, defined, "epilogue");
}

SamplePlan lower_to_dist(const SamplePlan& plan) {
  check(!plan.distributed,
        "lower_to_dist: plan '" + plan.name + "' is already lowered");
  SamplePlan lowered = plan;
  lowered.distributed = true;
  auto lower_ops = [&](std::vector<PlanOp>& ops) {
    for (PlanOp& op : ops) {
      switch (op.kind) {
        case PlanOpKind::kSpgemm:
          op.kind = PlanOpKind::kSpgemm15d;
          break;
        case PlanOpKind::kMaskedExtract:
          op.kind = PlanOpKind::kMaskedExtract15d;
          break;
        default:
          break;  // row-local ops run unchanged on each process row
                  // (kWalkBias / kInducedLayers fetch the adjacency rows
                  // they need from the owner blocks at execution time)
      }
    }
  };
  lower_ops(lowered.body);
  lower_ops(lowered.epilogue);
  validate_plan(lowered);
  return lowered;
}

std::string to_string(PlanOpKind kind) {
  switch (kind) {
    case PlanOpKind::kBuildQ: return "build_q";
    case PlanOpKind::kSpgemm: return "spgemm";
    case PlanOpKind::kNormalize: return "normalize";
    case PlanOpKind::kItsSample: return "its_sample";
    case PlanOpKind::kPoissonThin: return "poisson_thin";
    case PlanOpKind::kSlice: return "slice";
    case PlanOpKind::kMaskedExtract: return "masked_extract";
    case PlanOpKind::kFrontierUnion: return "frontier_union";
    case PlanOpKind::kWalkAdvance: return "walk_advance";
    case PlanOpKind::kWalkBias: return "walk_bias";
    case PlanOpKind::kInducedLayers: return "induced_layers";
    case PlanOpKind::kSpgemm15d: return "spgemm_15d";
    case PlanOpKind::kMaskedExtract15d: return "masked_extract_15d";
  }
  return "unknown";
}

bool sole_reader_of_input(const SamplePlan& plan, const PlanOp& op) {
  int readers = 0;
  for (const auto* ops : {&plan.body, &plan.epilogue}) {
    for (const PlanOp& other : *ops) {
      readers += (other.in == op.in) + (other.in2 == op.in);
    }
  }
  return readers == 1;
}

std::string describe(const SamplePlan& plan) {
  std::ostringstream os;
  os << "plan " << plan.name << (plan.distributed ? " [dist]" : "") << ": "
     << (plan.rounds_from_fanouts ? std::string("rounds=|fanouts|")
                                  : "rounds=" + std::to_string(plan.explicit_rounds))
     << ", slots=" << plan.num_slots << "\n";
  auto dump = [&](const std::vector<PlanOp>& ops, const char* section) {
    for (const PlanOp& op : ops) {
      os << "  [" << section << "] " << to_string(op.kind) << " '" << op.label
         << "' phase=" << op.phase;
      if (op.in != kNoSlot) os << " in=s" << op.in;
      if (op.in2 != kNoSlot) os << " in2=s" << op.in2;
      if (op.out != kNoSlot) os << " out=s" << op.out;
      if (op.out2 != kNoSlot) os << " out2=s" << op.out2;
      if (op.fixed_s >= 0) os << " s=" << op.fixed_s;
      if (op.fused_norm) {
        os << " +norm(" << (op.norm == NormMode::kRow ? "row" : "ladies") << ")";
      }
      if (op.slice_fused) os << " +slice";
      os << "\n";
    }
  };
  dump(plan.body, "body");
  dump(plan.epilogue, "epi");
  return os.str();
}

}  // namespace dms
