#include "plan/optimize.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "walk/walk_engine.hpp"  // match_walk_plan (pass 1 guard)

namespace dms {

namespace {

bool is_spgemm(PlanOpKind k) {
  return k == PlanOpKind::kSpgemm || k == PlanOpKind::kSpgemm15d;
}

bool is_masked_extract(PlanOpKind k) {
  return k == PlanOpKind::kMaskedExtract || k == PlanOpKind::kMaskedExtract15d;
}

/// Pass 1: collapse adjacent kSpgemm → kNormalize (normalize.in == the
/// product slot) into one spgemm op with fused_norm. Adjacency is the
/// legality argument: no op observes the unnormalized product, so applying
/// the identical normalization inside the producing op reorders nothing.
void fuse_normalize(std::vector<PlanOp>& ops) {
  for (std::size_t i = 0; i + 1 < ops.size();) {
    PlanOp& op = ops[i];
    const PlanOp& next = ops[i + 1];
    if (is_spgemm(op.kind) && !op.fused_norm &&
        next.kind == PlanOpKind::kNormalize && next.in == op.out) {
      op.fused_norm = true;
      op.norm = next.norm;
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      continue;  // re-check i against its new successor
    }
    ++i;
  }
}

/// Pass 2: collapse adjacent kSlice → kMaskedExtract (extract.in == the
/// sliced sets) into one masked extraction with slice_fused: it reads the
/// sets from the slice's input matrix rows and writes them to the slice's
/// old output slot, so downstream readers (kFrontierUnion's in2) are
/// untouched. The set materialization is bit-for-bit the slice's own.
void fuse_slice(std::vector<PlanOp>& ops) {
  for (std::size_t i = 0; i + 1 < ops.size();) {
    const PlanOp& op = ops[i];
    PlanOp& next = ops[i + 1];
    if (op.kind == PlanOpKind::kSlice && is_masked_extract(next.kind) &&
        !next.slice_fused && next.in == op.out) {
      next.slice_fused = true;
      next.out2 = op.out;  // the sets still land where the slice put them
      next.in = op.in;     // ... but are read off the matrix rows directly
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    ++i;
  }
}

/// Pass 4: drop slots nothing references and renumber compactly. The
/// persistent bindings (frontier / visited / prev) always stay live — the
/// executor binds them before the first op runs.
void eliminate_dead_slots(SamplePlan& plan) {
  std::vector<bool> used(static_cast<std::size_t>(plan.num_slots), false);
  auto mark = [&](SlotId s) {
    if (s != kNoSlot) used[static_cast<std::size_t>(s)] = true;
  };
  mark(plan.frontier_slot);
  mark(plan.visited_slot);
  mark(plan.prev_slot);
  for (const auto* ops : {&plan.body, &plan.epilogue}) {
    for (const PlanOp& op : *ops) {
      mark(op.in);
      mark(op.in2);
      mark(op.out);
      mark(op.out2);
    }
  }
  std::vector<SlotId> remap(static_cast<std::size_t>(plan.num_slots), kNoSlot);
  SlotId next = 0;
  for (SlotId s = 0; s < plan.num_slots; ++s) {
    if (used[static_cast<std::size_t>(s)]) remap[static_cast<std::size_t>(s)] = next++;
  }
  if (next == plan.num_slots) return;  // nothing dead
  auto apply = [&](SlotId& s) {
    if (s != kNoSlot) s = remap[static_cast<std::size_t>(s)];
  };
  apply(plan.frontier_slot);
  apply(plan.visited_slot);
  apply(plan.prev_slot);
  for (auto* ops : {&plan.body, &plan.epilogue}) {
    for (PlanOp& op : *ops) {
      apply(op.in);
      apply(op.in2);
      apply(op.out);
      apply(op.out2);
    }
  }
  plan.num_slots = next;
}

}  // namespace

SamplePlan optimize(const SamplePlan& plan, const OptimizeOptions& opts) {
  validate_plan(plan);
  SamplePlan out = plan;
  // Unlowered walk-shaped plans must keep the exact op sequence the fused
  // walk engine recognizes (its ~100x path outweighs any fusion here);
  // lowered walk plans never take that path and fuse freely.
  const bool keep_walk_shape = match_walk_plan(out).matched;
  if (opts.fuse_normalize && !keep_walk_shape) {
    fuse_normalize(out.body);
    fuse_normalize(out.epilogue);
  }
  if (opts.fuse_slice) {
    fuse_slice(out.body);
    fuse_slice(out.epilogue);
  }
  for (auto* ops : {&out.body, &out.epilogue}) {
    for (PlanOp& op : *ops) {
      if (is_spgemm(op.kind)) op.cost = opts.cost;
    }
  }
  if (opts.dead_slot_elim) eliminate_dead_slots(out);
  for (auto* ops : {&out.body, &out.epilogue}) {
    for (PlanOp& op : *ops) {
      if (is_spgemm(op.kind) || is_masked_extract(op.kind)) {
        op.sole_reader_in = sole_reader_of_input(out, op);
      }
    }
  }
  validate_plan(out);
  return out;
}

std::string plan_signature(const SamplePlan& plan) {
  std::ostringstream os;
  os << plan.name << '|' << plan.num_slots << '|' << plan.frontier_slot << '|'
     << plan.visited_slot << '|' << plan.prev_slot << '|'
     << plan.rounds_from_fanouts << '|' << plan.explicit_rounds << '|'
     << plan.stop_on_empty_frontier << '|' << plan.needs_global_weights << '|'
     << plan.distributed;
  auto dump = [&](const std::vector<PlanOp>& ops) {
    for (const PlanOp& op : ops) {
      os << ';' << static_cast<int>(op.kind) << ',' << op.label << ','
         << op.phase << ',' << op.in << ',' << op.in2 << ',' << op.out << ','
         << op.out2 << ',' << static_cast<int>(op.qmode) << ','
         << static_cast<int>(op.norm) << ',' << static_cast<int>(op.source)
         << ',' << op.seed.layer_salt << ',' << static_cast<int>(op.seed.row)
         << ',' << static_cast<int>(op.assemble) << ',' << op.fixed_s << ','
         << op.copies << ',' << op.bias_p << ',' << op.bias_q << ','
         << op.fused_norm << op.slice_fused << op.sole_reader_in << ','
         << op.cost.dense_col_cost << ',' << op.cost.dense_flop_cost << ','
         << op.cost.hash_flop_cost;
    }
  };
  dump(plan.body);
  os << "|epi";
  dump(plan.epilogue);
  return os.str();
}

std::string describe_diff(const SamplePlan& before, const SamplePlan& after) {
  auto split = [](const std::string& s) {
    std::vector<std::string> lines;
    std::istringstream is(s);
    for (std::string line; std::getline(is, line);) lines.push_back(line);
    return lines;
  };
  const std::vector<std::string> a = split(describe(before));
  const std::vector<std::string> b = split(describe(after));
  // Longest common subsequence over listing lines (plans are tiny).
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::vector<std::size_t>> lcs(n + 1, std::vector<std::size_t>(m + 1, 0));
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = m; j-- > 0;) {
      lcs[i][j] = a[i] == b[j] ? lcs[i + 1][j + 1] + 1
                               : std::max(lcs[i + 1][j], lcs[i][j + 1]);
    }
  }
  std::ostringstream os;
  std::size_t i = 0, j = 0;
  while (i < n || j < m) {
    if (i < n && j < m && a[i] == b[j]) {
      os << "  " << a[i] << "\n";
      ++i, ++j;
    } else if (j < m && (i == n || lcs[i][j + 1] >= lcs[i + 1][j])) {
      os << "+ " << b[j] << "\n";
      ++j;
    } else {
      os << "- " << a[i] << "\n";
      ++i;
    }
  }
  return os.str();
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

std::shared_ptr<const SamplePlan> PlanCache::get_or_optimize(
    const SamplePlan& plan, const SamplerConfig& config,
    const OptimizeOptions& opts) {
  std::ostringstream key;
  key << plan_signature(plan) << "|fanouts=";
  for (const index_t f : config.fanouts) key << f << ',';
  key << "|opt=" << opts.fuse_normalize << opts.fuse_slice << opts.dead_slot_elim
      << ',' << opts.cost.dense_col_cost << ',' << opts.cost.dense_flop_cost
      << ',' << opts.cost.hash_flop_cost;
  const std::string k = key.str();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lookups;
    const auto it = map_.find(k);
    if (it != map_.end()) {
      ++stats_.hits;
      return it->second;
    }
  }
  // Optimize outside the lock (pure function of the inputs: a racing
  // constructor computes the same plan and the first insert wins).
  auto optimized = std::make_shared<const SamplePlan>(optimize(plan, opts));
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = map_.emplace(k, std::move(optimized));
  stats_.entries = map_.size();
  return it->second;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  stats_ = Stats{};
}

}  // namespace dms
