#include "sparse/csr.hpp"

#include <algorithm>
#include <string>

#include "sparse/coo.hpp"

namespace dms {

CsrMatrix::CsrMatrix(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
  check(rows >= 0 && cols >= 0, "CsrMatrix: negative dimensions");
  rowptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
}

CsrMatrix::CsrMatrix(index_t rows, index_t cols, std::vector<nnz_t> rowptr,
                     std::vector<index_t> colidx, std::vector<value_t> vals)
    : rows_(rows),
      cols_(cols),
      rowptr_(std::move(rowptr)),
      colidx_(std::move(colidx)),
      vals_(std::move(vals)) {}

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo_in) {
  CooMatrix coo = coo_in;  // sort_and_combine mutates
  coo.sort_and_combine();
  CsrMatrix out(coo.rows, coo.cols);
  const nnz_t nnz = coo.nnz();
  out.colidx_.resize(static_cast<std::size_t>(nnz));
  out.vals_.resize(static_cast<std::size_t>(nnz));
  for (nnz_t i = 0; i < nnz; ++i) {
    check(coo.row_idx[static_cast<std::size_t>(i)] >= 0 &&
              coo.row_idx[static_cast<std::size_t>(i)] < coo.rows,
          "from_coo: row index out of range");
    check(coo.col_idx[static_cast<std::size_t>(i)] >= 0 &&
              coo.col_idx[static_cast<std::size_t>(i)] < coo.cols,
          "from_coo: col index out of range");
    ++out.rowptr_[static_cast<std::size_t>(coo.row_idx[static_cast<std::size_t>(i)]) + 1];
  }
  for (index_t r = 0; r < coo.rows; ++r) {
    out.rowptr_[static_cast<std::size_t>(r) + 1] += out.rowptr_[static_cast<std::size_t>(r)];
  }
  // COO is sorted, so a sequential fill preserves per-row column order.
  std::vector<nnz_t> cursor(out.rowptr_.begin(), out.rowptr_.end() - 1);
  for (nnz_t i = 0; i < nnz; ++i) {
    const auto r = static_cast<std::size_t>(coo.row_idx[static_cast<std::size_t>(i)]);
    const nnz_t dst = cursor[r]++;
    out.colidx_[static_cast<std::size_t>(dst)] = coo.col_idx[static_cast<std::size_t>(i)];
    out.vals_[static_cast<std::size_t>(dst)] = coo.vals[static_cast<std::size_t>(i)];
  }
  return out;
}

CsrMatrix CsrMatrix::from_triplets(index_t rows, index_t cols,
                                   const std::vector<index_t>& ri,
                                   const std::vector<index_t>& ci,
                                   const std::vector<value_t>& vals) {
  check(ri.size() == ci.size() && ci.size() == vals.size(),
        "from_triplets: array length mismatch");
  CooMatrix coo(rows, cols);
  coo.row_idx = ri;
  coo.col_idx = ci;
  coo.vals = vals;
  return from_coo(coo);
}

CsrMatrix CsrMatrix::one_nonzero_per_row(index_t cols,
                                         const std::vector<index_t>& cols_of_row) {
  const auto rows = static_cast<index_t>(cols_of_row.size());
  CsrMatrix out(rows, cols);
  out.colidx_.resize(cols_of_row.size());
  out.vals_.assign(cols_of_row.size(), 1.0);
  for (index_t r = 0; r < rows; ++r) {
    const index_t c = cols_of_row[static_cast<std::size_t>(r)];
    check(c >= 0 && c < cols, "one_nonzero_per_row: column out of range");
    out.rowptr_[static_cast<std::size_t>(r) + 1] = r + 1;
    out.colidx_[static_cast<std::size_t>(r)] = c;
  }
  return out;
}

value_t CsrMatrix::at(index_t r, index_t c) const {
  check(r >= 0 && r < rows_ && c >= 0 && c < cols_, "at: index out of range");
  const auto cols = row_cols(r);
  const auto it = std::lower_bound(cols.begin(), cols.end(), c);
  if (it == cols.end() || *it != c) return 0.0;
  return vals_[static_cast<std::size_t>(rowptr_[r] + (it - cols.begin()))];
}

void CsrMatrix::validate() const {
  check(rows_ >= 0 && cols_ >= 0, "validate: negative dims");
  check(rowptr_.size() == static_cast<std::size_t>(rows_) + 1,
        "validate: rowptr size != rows+1");
  check(rowptr_.front() == 0, "validate: rowptr[0] != 0");
  for (index_t r = 0; r < rows_; ++r) {
    check(rowptr_[static_cast<std::size_t>(r)] <= rowptr_[static_cast<std::size_t>(r) + 1],
          "validate: rowptr not nondecreasing at row " + std::to_string(r));
  }
  check(colidx_.size() == static_cast<std::size_t>(rowptr_.back()),
        "validate: colidx size != nnz");
  check(vals_.size() == colidx_.size(), "validate: vals size != nnz");
  for (index_t r = 0; r < rows_; ++r) {
    for (nnz_t i = rowptr_[static_cast<std::size_t>(r)];
         i < rowptr_[static_cast<std::size_t>(r) + 1]; ++i) {
      const index_t c = colidx_[static_cast<std::size_t>(i)];
      check(c >= 0 && c < cols_,
            "validate: column out of range in row " + std::to_string(r));
      if (i > rowptr_[static_cast<std::size_t>(r)]) {
        check(colidx_[static_cast<std::size_t>(i) - 1] < c,
              "validate: columns not strictly increasing in row " + std::to_string(r));
      }
    }
  }
}

bool CsrMatrix::operator==(const CsrMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && rowptr_ == other.rowptr_ &&
         colidx_ == other.colidx_ && vals_ == other.vals_;
}

}  // namespace dms
