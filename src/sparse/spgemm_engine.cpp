#include "sparse/spgemm_engine.hpp"

#include <algorithm>
#include <bit>
#include <span>
#include <vector>

#include "common/threadpool.hpp"

namespace dms {

namespace {

// ---------------------------------------------------------------------------
// Symbolic phase: per-row FLOP bounds and a flop-balanced block decomposition.
// All symbolic buffers live in the Workspace (a call-local one when the
// caller didn't supply an arena), so steady-state products allocate only
// their results.
// ---------------------------------------------------------------------------

/// prefix[r] = multiply-adds of rows [0, r). prefix.back() is the total.
void flop_prefix(const CsrMatrix& a, const CsrMatrix& b,
                 std::vector<nnz_t>& prefix) {
  prefix.assign(static_cast<std::size_t>(a.rows()) + 1, 0);
  for (index_t r = 0; r < a.rows(); ++r) {
    nnz_t f = 0;
    for (const index_t k : a.row_cols(r)) f += b.row_nnz(k);
    prefix[static_cast<std::size_t>(r) + 1] = prefix[static_cast<std::size_t>(r)] + f;
  }
}

/// Row-count prefix for the masked extraction (one "flop" per nonzero).
void nnz_prefix(const CsrMatrix& a, std::vector<nnz_t>& prefix) {
  prefix.assign(static_cast<std::size_t>(a.rows()) + 1, 0);
  for (index_t r = 0; r < a.rows(); ++r) {
    prefix[static_cast<std::size_t>(r) + 1] =
        prefix[static_cast<std::size_t>(r)] + a.row_nnz(r);
  }
}

}  // namespace

/// Contiguous row-range boundaries with ~equal flops per block. Every block
/// is non-empty by construction, so no worker ever allocates workspace for
/// an empty range (the old ceil_div split could produce trailing empty
/// blocks when m was not a multiple of the thread count).
std::vector<index_t> work_balanced_bounds(const std::vector<nnz_t>& prefix,
                                          index_t m, index_t max_blocks) {
  std::vector<index_t> bounds{0};
  if (m == 0) {
    bounds.push_back(0);
    return bounds;
  }
  const nnz_t total = prefix[static_cast<std::size_t>(m)];
  const index_t nblocks = std::max<index_t>(1, std::min<index_t>(m, max_blocks));
  for (index_t i = 1; i < nblocks; ++i) {
    // First row whose flop prefix exceeds the i-th equal-share target.
    const nnz_t target = total / nblocks * i;
    const auto it = std::upper_bound(prefix.begin(), prefix.end(), target);
    const auto r = static_cast<index_t>(it - prefix.begin()) - 1;
    if (r > bounds.back() && r < m) bounds.push_back(r);
  }
  bounds.push_back(m);
  return bounds;
}

namespace {

// ---------------------------------------------------------------------------
// Numeric phase kernels. All three accumulate each output entry's
// contributions in the order the A row traverses its B rows and emit sorted
// rows, so their results are bitwise interchangeable. Each accumulator
// borrows its buffers from the block's workspace slot and re-establishes the
// state it needs on construction, so slots can be reused across calls and
// kernels in any order.
// ---------------------------------------------------------------------------

/// Staged per-block output (stitched into the result CSR afterwards).
struct BlockOut {
  explicit BlockOut(WorkspaceSlot& s)
      : row_nnz(s.row_nnz), colidx(s.colidx), vals(s.vals) {
    colidx.clear();
    vals.clear();
  }
  std::vector<nnz_t>& row_nnz;
  std::vector<index_t>& colidx;
  std::vector<value_t>& vals;
};

/// Dense accumulator with generation marking: O(1) reset between rows.
/// Marks are re-initialized per block invocation (stale marks from a
/// previous product could collide with this product's row ids).
struct DenseAcc {
  DenseAcc(WorkspaceSlot& s, index_t cols)
      : mark(s.mark), acc(s.acc), touched(s.touched) {
    mark.assign(static_cast<std::size_t>(cols), -1);
    acc.resize(static_cast<std::size_t>(cols));
    touched.clear();
  }

  std::vector<index_t>& mark;  // last row id that touched this column
  std::vector<value_t>& acc;
  std::vector<index_t>& touched;  // columns touched by the current row
};

void dense_block(const CsrMatrix& a, const CsrMatrix& b, index_t r0, index_t r1,
                 WorkspaceSlot& slot) {
  DenseAcc ws(slot, b.cols());
  BlockOut out(slot);
  out.row_nnz.assign(static_cast<std::size_t>(r1 - r0), 0);
  for (index_t r = r0; r < r1; ++r) {
    ws.touched.clear();
    const auto acols = a.row_cols(r);
    const auto avals = a.row_vals(r);
    for (std::size_t i = 0; i < acols.size(); ++i) {
      const index_t k = acols[i];
      const value_t av = avals[i];
      const auto bcols = b.row_cols(k);
      const auto bvals = b.row_vals(k);
      for (std::size_t j = 0; j < bcols.size(); ++j) {
        const index_t c = bcols[j];
        if (ws.mark[static_cast<std::size_t>(c)] != r) {
          ws.mark[static_cast<std::size_t>(c)] = r;
          ws.acc[static_cast<std::size_t>(c)] = av * bvals[j];
          ws.touched.push_back(c);
        } else {
          ws.acc[static_cast<std::size_t>(c)] += av * bvals[j];
        }
      }
    }
    std::sort(ws.touched.begin(), ws.touched.end());
    out.row_nnz[static_cast<std::size_t>(r - r0)] =
        static_cast<nnz_t>(ws.touched.size());
    for (const index_t c : ws.touched) {
      out.colidx.push_back(c);
      out.vals.push_back(ws.acc[static_cast<std::size_t>(c)]);
    }
  }
}

/// Open-addressing accumulator for one output row (nsparse-style), on the
/// slot's dedicated hash buffers. Invariant across invocations: every key
/// slot is empty on entry and on exit (the destructor sweeps the last row's
/// fill), so reuse never pays a full table clear.
class HashRow {
 public:
  explicit HashRow(WorkspaceSlot& s)
      : keys_(s.hash_keys), vals_(s.hash_vals), used_(s.hash_used) {
    clear_used();
    mask_ = keys_.empty() ? 0 : keys_.size() - 1;
  }
  ~HashRow() { clear_used(); }

  void reset(std::size_t upper_bound_fill) {
    // Load factor 1/2, minimum 8 slots.
    std::size_t want = std::max<std::size_t>(8, std::bit_ceil(2 * upper_bound_fill + 1));
    if (want > keys_.size()) {
      keys_.assign(want, kEmpty);
      vals_.assign(want, 0.0);
    } else {
      clear_used();
      want = keys_.size();
    }
    mask_ = want - 1;
    used_.clear();
  }

  void add(index_t col, value_t v) {
    std::size_t slot = (static_cast<std::size_t>(col) * 0x9e3779b97f4a7c15ULL) & mask_;
    while (true) {
      if (keys_[slot] == kEmpty) {
        keys_[slot] = col;
        vals_[slot] = v;
        used_.push_back(static_cast<index_t>(slot));
        return;
      }
      if (keys_[slot] == col) {
        vals_[slot] += v;
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }

  /// Emits (col, val) pairs sorted by column id.
  void emit(std::vector<index_t>* cols, std::vector<value_t>* vals) {
    std::sort(used_.begin(), used_.end(), [&](index_t a, index_t b) {
      return keys_[static_cast<std::size_t>(a)] < keys_[static_cast<std::size_t>(b)];
    });
    for (const index_t slot : used_) {
      cols->push_back(keys_[static_cast<std::size_t>(slot)]);
      vals->push_back(vals_[static_cast<std::size_t>(slot)]);
    }
  }

  std::size_t fill() const { return used_.size(); }

 private:
  void clear_used() {
    for (const index_t k : used_) {
      keys_[static_cast<std::size_t>(k)] = kEmpty;
    }
    used_.clear();
  }

  static constexpr index_t kEmpty = -1;
  std::vector<index_t>& keys_;
  std::vector<value_t>& vals_;
  std::vector<index_t>& used_;
  std::size_t mask_ = 0;
};

void hash_block(const CsrMatrix& a, const CsrMatrix& b, index_t r0, index_t r1,
                std::span<const nnz_t> prefix, WorkspaceSlot& slot) {
  HashRow acc(slot);
  BlockOut out(slot);
  out.row_nnz.assign(static_cast<std::size_t>(r1 - r0), 0);
  for (index_t r = r0; r < r1; ++r) {
    acc.reset(static_cast<std::size_t>(prefix[static_cast<std::size_t>(r) + 1] -
                                       prefix[static_cast<std::size_t>(r)]));
    const auto acols = a.row_cols(r);
    const auto avals = a.row_vals(r);
    for (std::size_t i = 0; i < acols.size(); ++i) {
      const index_t k = acols[i];
      const value_t av = avals[i];
      const auto bcols = b.row_cols(k);
      const auto bvals = b.row_vals(k);
      for (std::size_t j = 0; j < bcols.size(); ++j) {
        acc.add(bcols[j], av * bvals[j]);
      }
    }
    out.row_nnz[static_cast<std::size_t>(r - r0)] = static_cast<nnz_t>(acc.fill());
    acc.emit(&out.colidx, &out.vals);
  }
}

/// Dense accumulator over mask positions (|mask| ≪ cols, so the workspace is
/// tiny) plus a sorted-list intersection of each B row against the mask.
struct MaskedAcc {
  MaskedAcc(WorkspaceSlot& s, std::size_t size)
      : mark(s.mark), acc(s.acc), touched(s.touched) {
    mark.assign(size, -1);
    acc.resize(size);
    touched.clear();
  }

  std::vector<index_t>& mark;
  std::vector<value_t>& acc;
  std::vector<index_t>& touched;  // mask positions touched by the current row

  void add(index_t row, index_t pos, value_t v) {
    if (mark[static_cast<std::size_t>(pos)] != row) {
      mark[static_cast<std::size_t>(pos)] = row;
      acc[static_cast<std::size_t>(pos)] = v;
      touched.push_back(pos);
    } else {
      acc[static_cast<std::size_t>(pos)] += v;
    }
  }
};

/// Feeds fn(mask_pos, b_index) for every column shared by the sorted B row
/// and the sorted mask. Chooses between two-pointer merge and binary-search
/// galloping based on the length ratio, so the cost is O(min + log max)
/// rather than O(d) per B row.
template <typename Fn>
void intersect_sorted(std::span<const index_t> bcols,
                      const std::vector<index_t>& mask, Fn&& fn) {
  const std::size_t d = bcols.size();
  const std::size_t s = mask.size();
  if (d == 0 || s == 0) return;
  if (s * 8 < d) {
    // Mask-driven: binary-search each masked column in the B row.
    auto lo = bcols.begin();
    for (std::size_t mi = 0; mi < s; ++mi) {
      lo = std::lower_bound(lo, bcols.end(), mask[mi]);
      if (lo == bcols.end()) return;
      if (*lo == mask[mi]) {
        fn(static_cast<index_t>(mi), static_cast<std::size_t>(lo - bcols.begin()));
        ++lo;
      }
    }
    return;
  }
  if (d * 8 < s) {
    // Row-driven: binary-search each B column in the mask.
    auto lo = mask.begin();
    for (std::size_t j = 0; j < d; ++j) {
      lo = std::lower_bound(lo, mask.end(), bcols[j]);
      if (lo == mask.end()) return;
      if (*lo == bcols[j]) {
        fn(static_cast<index_t>(lo - mask.begin()), j);
        ++lo;
      }
    }
    return;
  }
  // Comparable lengths: linear two-pointer merge.
  std::size_t j = 0, mi = 0;
  while (j < d && mi < s) {
    if (bcols[j] < mask[mi]) {
      ++j;
    } else if (bcols[j] > mask[mi]) {
      ++mi;
    } else {
      fn(static_cast<index_t>(mi), j);
      ++j;
      ++mi;
    }
  }
}

/// Dense column→mask-position lookup (-1 when unmasked), built into the
/// workspace's shared buffer. O(cols) — built once per call and shared
/// read-only across all blocks when the product's flop volume amortizes the
/// build; small products use intersect_sorted instead and never pay the
/// O(cols) setup.
void mask_lookup(const std::vector<index_t>& mask, index_t cols,
                 std::vector<index_t>& pos) {
  pos.assign(static_cast<std::size_t>(cols), -1);
  for (std::size_t i = 0; i < mask.size(); ++i) {
    pos[static_cast<std::size_t>(mask[i])] = static_cast<index_t>(i);
  }
}

void masked_block(const CsrMatrix& a, const CsrMatrix& b,
                  const std::vector<index_t>& mask,
                  const std::vector<index_t>* lookup, index_t r0, index_t r1,
                  WorkspaceSlot& slot) {
  MaskedAcc ws(slot, mask.size());
  BlockOut out(slot);
  out.row_nnz.assign(static_cast<std::size_t>(r1 - r0), 0);
  for (index_t r = r0; r < r1; ++r) {
    ws.touched.clear();
    const auto acols = a.row_cols(r);
    const auto avals = a.row_vals(r);
    for (std::size_t i = 0; i < acols.size(); ++i) {
      const index_t k = acols[i];
      const value_t av = avals[i];
      const auto bcols = b.row_cols(k);
      const auto bvals = b.row_vals(k);
      if (lookup != nullptr) {
        for (std::size_t j = 0; j < bcols.size(); ++j) {
          const index_t pos = (*lookup)[static_cast<std::size_t>(bcols[j])];
          if (pos >= 0) ws.add(r, pos, av * bvals[j]);
        }
      } else {
        intersect_sorted(bcols, mask, [&](index_t pos, std::size_t j) {
          ws.add(r, pos, av * bvals[j]);
        });
      }
    }
    std::sort(ws.touched.begin(), ws.touched.end());
    out.row_nnz[static_cast<std::size_t>(r - r0)] =
        static_cast<nnz_t>(ws.touched.size());
    for (const index_t pos : ws.touched) {
      out.colidx.push_back(pos);
      out.vals.push_back(ws.acc[static_cast<std::size_t>(pos)]);
    }
  }
}

/// Stitches the per-block staged outputs into one CSR matrix.
CsrMatrix stitch(index_t m, index_t n, const std::vector<index_t>& bounds,
                 Workspace& ws) {
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(m) + 1, 0);
  nnz_t total = 0;
  for (std::size_t blk = 0; blk + 1 < bounds.size(); ++blk) {
    const index_t r0 = bounds[blk];
    const WorkspaceSlot& slot = ws.slot(blk);
    for (std::size_t i = 0; i < slot.row_nnz.size(); ++i) {
      rowptr[static_cast<std::size_t>(r0) + i + 1] = slot.row_nnz[i];
    }
    total += static_cast<nnz_t>(slot.colidx.size());
  }
  for (index_t r = 0; r < m; ++r) {
    rowptr[static_cast<std::size_t>(r) + 1] += rowptr[static_cast<std::size_t>(r)];
  }

  std::vector<index_t> colidx(static_cast<std::size_t>(total));
  std::vector<value_t> vals(static_cast<std::size_t>(total));
  nnz_t cursor = 0;
  for (std::size_t blk = 0; blk + 1 < bounds.size(); ++blk) {
    const WorkspaceSlot& slot = ws.slot(blk);
    std::copy(slot.colidx.begin(), slot.colidx.end(),
              colidx.begin() + static_cast<std::ptrdiff_t>(cursor));
    std::copy(slot.vals.begin(), slot.vals.end(),
              vals.begin() + static_cast<std::ptrdiff_t>(cursor));
    cursor += static_cast<nnz_t>(slot.colidx.size());
  }
  return CsrMatrix(m, n, std::move(rowptr), std::move(colidx), std::move(vals));
}

void check_mask(const std::vector<index_t>& mask, index_t cols, const char* who) {
  for (std::size_t i = 0; i < mask.size(); ++i) {
    check(mask[i] >= 0 && mask[i] < cols,
          std::string(who) + ": mask column id out of range");
    check(i == 0 || mask[i - 1] < mask[i],
          std::string(who) + ": mask must be sorted and duplicate-free");
  }
}

/// Applies the fused normalization epilogue to one block's staged rows
/// (slot.vals holds the block's rows contiguously, in row order, lengths in
/// slot.row_nnz). Entry order per row matches ladies_norm/normalize_rows on
/// the stitched matrix exactly, so the fused product stays bit-identical to
/// product-then-normalize — the block just does the work while its rows are
/// still cache-resident, in parallel with the other blocks.
void apply_epilogue(WorkspaceSlot& slot, SpgemmEpilogue epilogue) {
  if (epilogue == SpgemmEpilogue::kNone) return;
  auto& vals = slot.vals;
  if (epilogue == SpgemmEpilogue::kLadiesNormalize) {
    for (auto& v : vals) v = v * v;
  }
  std::size_t k = 0;
  for (const nnz_t len : slot.row_nnz) {
    value_t s = 0.0;
    for (nnz_t i = 0; i < len; ++i) s += vals[k + static_cast<std::size_t>(i)];
    if (s != 0.0) {
      const value_t inv = 1.0 / s;
      for (nnz_t i = 0; i < len; ++i) {
        vals[k + static_cast<std::size_t>(i)] *= inv;
      }
    }
    k += static_cast<std::size_t>(len);
  }
}

/// Runs body(blk) for every block, in parallel when there is more than one.
template <typename Fn>
void for_blocks(const std::vector<index_t>& bounds, Fn&& body) {
  const auto nblocks = static_cast<index_t>(bounds.size()) - 1;
  if (nblocks <= 1) {
    if (nblocks == 1) body(0);
    return;
  }
  ThreadPool::global().parallel_for(nblocks, body);
}

}  // namespace

SpgemmKernel spgemm_pick_kernel(nnz_t block_flops, index_t out_cols) {
  // The default cost model's boundary is exactly the engine's historical
  // hard-coded crossover (dense iff 4·flops >= out_cols); see
  // sparse/spgemm_cost.hpp for the model the threshold generalizes to.
  return SpgemmCostModel{}.pick(block_flops, out_cols);
}

CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b, const SpgemmOptions& opts) {
  check(a.cols() == b.rows(), "spgemm: inner dimension mismatch");
  const index_t m = a.rows();
  const index_t n = b.cols();

  const bool masked = opts.column_mask != nullptr;
  check(!(opts.kernel == SpgemmKernel::kMasked && !masked),
        "spgemm: kMasked requires a column_mask");
  if (masked) check_mask(*opts.column_mask, n, "spgemm");

  Workspace local_ws;
  Workspace& ws = opts.workspace != nullptr ? *opts.workspace : local_ws;

  // Symbolic phase: row FLOP bounds, flop-balanced blocks, per-block kernel.
  std::vector<nnz_t>& prefix = ws.shared_prefix();
  flop_prefix(a, b, prefix);
  const index_t max_blocks = opts.parallel ? ThreadPool::global().size() : 1;
  const std::vector<index_t> bounds = work_balanced_bounds(prefix, m, max_blocks);
  ws.ensure_slots(bounds.size() - 1);

  // For flop-heavy masked products, an O(n) column→position table beats
  // per-row sorted intersection; tiny per-minibatch extractions skip the
  // setup entirely. Either path yields the same bits (identical
  // contribution order), so this is a pure speed knob.
  std::vector<index_t>* lookup = nullptr;
  if (masked && !opts.column_mask->empty() &&
      prefix[static_cast<std::size_t>(m)] * 2 >= n) {
    mask_lookup(*opts.column_mask, n, ws.shared_lookup());
    lookup = &ws.shared_lookup();
  }

  // Numeric phase.
  for_blocks(bounds, [&](index_t blk) {
    const index_t r0 = bounds[static_cast<std::size_t>(blk)];
    const index_t r1 = bounds[static_cast<std::size_t>(blk) + 1];
    WorkspaceSlot& slot = ws.slot(static_cast<std::size_t>(blk));
    const nnz_t block_flops = prefix[static_cast<std::size_t>(r1)] -
                              prefix[static_cast<std::size_t>(r0)];
    if (block_flops == 0) {
      // All rows in the range are structurally empty: no workspace needed.
      BlockOut out(slot);
      out.row_nnz.assign(static_cast<std::size_t>(r1 - r0), 0);
      return;
    }
    if (masked) {
      masked_block(a, b, *opts.column_mask, lookup, r0, r1, slot);
    } else {
      SpgemmKernel kernel = opts.kernel;
      if (kernel == SpgemmKernel::kAuto) kernel = opts.cost.pick(block_flops, n);
      if (kernel == SpgemmKernel::kHash) {
        hash_block(a, b, r0, r1, prefix, slot);
      } else {
        dense_block(a, b, r0, r1, slot);
      }
    }
    apply_epilogue(slot, opts.epilogue);
  });

  const index_t out_cols =
      masked ? static_cast<index_t>(opts.column_mask->size()) : n;
  return stitch(m, out_cols, bounds, ws);
}

CsrMatrix spgemm_masked(const CsrMatrix& a, const std::vector<index_t>& mask,
                        const SpgemmOptions& opts) {
  check_mask(mask, a.cols(), "spgemm_masked");
  const index_t m = a.rows();

  Workspace local_ws;
  Workspace& ws = opts.workspace != nullptr ? *opts.workspace : local_ws;

  std::vector<nnz_t>& prefix = ws.shared_prefix();
  nnz_prefix(a, prefix);
  const index_t max_blocks = opts.parallel ? ThreadPool::global().size() : 1;
  const std::vector<index_t> bounds = work_balanced_bounds(prefix, m, max_blocks);
  ws.ensure_slots(bounds.size() - 1);

  for_blocks(bounds, [&](index_t blk) {
    const index_t r0 = bounds[static_cast<std::size_t>(blk)];
    const index_t r1 = bounds[static_cast<std::size_t>(blk) + 1];
    BlockOut out(ws.slot(static_cast<std::size_t>(blk)));
    out.row_nnz.assign(static_cast<std::size_t>(r1 - r0), 0);
    for (index_t r = r0; r < r1; ++r) {
      const auto avals = a.row_vals(r);
      nnz_t kept = 0;
      // Row columns are sorted and unique, so the intersection needs no
      // accumulator: values pass through and positions emerge ascending.
      intersect_sorted(a.row_cols(r), mask, [&](index_t pos, std::size_t j) {
        out.colidx.push_back(pos);
        out.vals.push_back(avals[j]);
        ++kept;
      });
      out.row_nnz[static_cast<std::size_t>(r - r0)] = kept;
    }
  });

  return stitch(m, static_cast<index_t>(mask.size()), bounds, ws);
}

nnz_t spgemm_flops(const CsrMatrix& a, const CsrMatrix& b) {
  check(a.cols() == b.rows(), "spgemm_flops: inner dimension mismatch");
  nnz_t flops = 0;
  for (index_t r = 0; r < a.rows(); ++r) {
    for (const index_t k : a.row_cols(r)) flops += b.row_nnz(k);
  }
  return flops;
}

}  // namespace dms
