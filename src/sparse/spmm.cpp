#include "sparse/spmm.hpp"

#include "common/threadpool.hpp"

namespace dms {

template <typename T>
Dense<T> spmm(const CsrMatrix& a, const Dense<T>& b) {
  check(a.cols() == b.rows(), "spmm: inner dimension mismatch");
  const index_t f = b.cols();
  Dense<T> c(a.rows(), f);
  ThreadPool::global().parallel_for(a.rows(), [&](index_t r) {
    T* crow = c.row(r);
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const T* brow = b.row(cols[i]);
      const T av = static_cast<T>(vals[i]);
      for (index_t j = 0; j < f; ++j) crow[j] += av * brow[j];
    }
  });
  return c;
}

template <typename T>
Dense<T> spmm_transposed(const CsrMatrix& a, const Dense<T>& b) {
  check(a.rows() == b.rows(), "spmm_transposed: inner dimension mismatch");
  const index_t f = b.cols();
  // Scatter pattern: serial over rows of A to stay deterministic and safe.
  Dense<T> c(a.cols(), f);
  for (index_t r = 0; r < a.rows(); ++r) {
    const T* brow = b.row(r);
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      T* crow = c.row(cols[i]);
      const T av = static_cast<T>(vals[i]);
      for (index_t j = 0; j < f; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

template Dense<float> spmm(const CsrMatrix&, const Dense<float>&);
template Dense<double> spmm(const CsrMatrix&, const Dense<double>&);
template Dense<float> spmm_transposed(const CsrMatrix&, const Dense<float>&);
template Dense<double> spmm_transposed(const CsrMatrix&, const Dense<double>&);

}  // namespace dms
