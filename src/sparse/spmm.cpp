#include "sparse/spmm.hpp"

#include "common/threadpool.hpp"
#include "sparse/ops.hpp"

namespace dms {

template <typename T>
Dense<T> spmm(const CsrMatrix& a, const Dense<T>& b) {
  check(a.cols() == b.rows(), "spmm: inner dimension mismatch");
  const index_t f = b.cols();
  Dense<T> c(a.rows(), f);
  ThreadPool::global().parallel_for(a.rows(), [&](index_t r) {
    T* crow = c.row(r);
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const T* brow = b.row(cols[i]);
      const T av = static_cast<T>(vals[i]);
      for (index_t j = 0; j < f; ++j) crow[j] += av * brow[j];
    }
  });
  return c;
}

template <typename T>
Dense<T> spmm_transposed(const CsrMatrix& a, const Dense<T>& b) {
  check(a.rows() == b.rows(), "spmm_transposed: inner dimension mismatch");
  // Gather form: C = Aᵀ·B through an explicit O(nnz) counting transpose, so
  // every output row is owned by exactly one parallel_for task (no scatter
  // races, no atomics). The counting transpose lists each output row's
  // contributions in ascending source-row order — the exact order the old
  // serial scatter loop accumulated them — so the result is bit-identical
  // to the serial version for every thread count.
  const CsrMatrix at = transpose(a);
  const index_t f = b.cols();
  Dense<T> c(at.rows(), f);
  ThreadPool::global().parallel_for(at.rows(), [&](index_t r) {
    T* crow = c.row(r);
    const auto cols = at.row_cols(r);
    const auto vals = at.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const T* brow = b.row(cols[i]);
      const T av = static_cast<T>(vals[i]);
      for (index_t j = 0; j < f; ++j) crow[j] += av * brow[j];
    }
  });
  return c;
}

template Dense<float> spmm(const CsrMatrix&, const Dense<float>&);
template Dense<double> spmm(const CsrMatrix&, const Dense<double>&);
template Dense<float> spmm_transposed(const CsrMatrix&, const Dense<float>&);
template Dense<double> spmm_transposed(const CsrMatrix&, const Dense<double>&);

}  // namespace dms
