// Compatibility shim: the SpGEMM entry point now lives in the unified
// adaptive engine (sparse/spgemm_engine.hpp), which split the old dense
// accumulator into symbolic/numeric phases and added hash and masked
// kernels behind the same spgemm() signature. Include the engine header
// directly in new code.
#pragma once

#include "sparse/spgemm_engine.hpp"
