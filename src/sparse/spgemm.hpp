// Sparse × sparse matrix multiplication (SpGEMM).
//
// Gustavson's row-wise algorithm with a dense "generation-marked"
// accumulator: the CPU stand-in for the cuSPARSE/nsparse CSR SpGEMM the
// paper uses for P ← QˡA and the LADIES extraction products (§4, §8.2.2).
#pragma once

#include "sparse/csr.hpp"

namespace dms {

/// Options controlling the SpGEMM kernel.
struct SpgemmOptions {
  /// Parallelize over row blocks using the global thread pool.
  bool parallel = true;
};

/// C = A * B. A is (m × k), B is (k × n), C is (m × n).
/// Per-row column ids of C are sorted; numerically exact summation order is
/// deterministic (ascending column id within each row).
CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b,
                 const SpgemmOptions& opts = {});

/// Number of scalar multiply-adds Gustavson performs for A*B:
/// sum over nonzeros (i,k) of A of nnz(B row k). Used by the simulator's
/// compute accounting and by tests.
nnz_t spgemm_flops(const CsrMatrix& a, const CsrMatrix& b);

}  // namespace dms
