// Hash-accumulator SpGEMM (nsparse-style).
//
// The dense generation-marked accumulator of spgemm.cpp allocates O(cols)
// per worker — fine on a host CPU, wasteful when the output row count is
// tiny relative to the column dimension (exactly the Qˡ·A products of the
// sampling pipeline, where rows ≪ n). This variant uses per-row open
// addressing sized to the row's upper-bound fill, mirroring the hash
// kernels of nsparse/cuSPARSE that the paper builds on (§7.3).
//
// Semantically identical to spgemm(); selected via SpgemmAlgorithm.
#pragma once

#include "sparse/csr.hpp"

namespace dms {

/// C = A·B using per-row hash accumulation. Output rows sorted.
CsrMatrix spgemm_hash(const CsrMatrix& a, const CsrMatrix& b);

enum class SpgemmAlgorithm { kDenseAccumulator, kHash };

/// Dispatch helper used by benches/ablations to compare kernels.
CsrMatrix spgemm_with(SpgemmAlgorithm algo, const CsrMatrix& a, const CsrMatrix& b);

}  // namespace dms
