// Row-major dense matrix, templated on scalar. double for linear-algebra
// reference paths, float for feature/embedding matrices (fp32 per §7.1).
#pragma once

#include <cmath>
#include <cstring>
#include <vector>

#include "common/types.hpp"

namespace dms {

template <typename T>
class Dense {
 public:
  Dense() = default;
  Dense(index_t rows, index_t cols, T fill = T{0})
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), fill) {
    check(rows >= 0 && cols >= 0, "Dense: negative dimensions");
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* row(index_t r) { return data_.data() + static_cast<std::size_t>(r) * cols_; }
  const T* row(index_t r) const {
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }

  T& operator()(index_t r, index_t c) {
    return data_[static_cast<std::size_t>(r) * cols_ + static_cast<std::size_t>(c)];
  }
  T operator()(index_t r, index_t c) const {
    return data_[static_cast<std::size_t>(r) * cols_ + static_cast<std::size_t>(c)];
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(T{0}); }

  /// Reshapes to rows × cols, reusing the existing storage capacity
  /// (vector::resize never shrinks capacity) — the steady-state serving
  /// gather buffer (§10) relies on this to stay allocation-free once grown
  /// to its high-water mark. Element values are unspecified after a resize;
  /// callers overwrite every row.
  void resize(index_t rows, index_t cols) {
    check(rows >= 0 && cols >= 0, "Dense::resize: negative dimensions");
    rows_ = rows;
    cols_ = cols;
    data_.resize(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
  }

  /// Frobenius norm.
  double norm() const {
    double s = 0;
    for (const T v : data_) s += static_cast<double>(v) * static_cast<double>(v);
    return std::sqrt(s);
  }

  /// Max absolute elementwise difference; matrices must be the same shape.
  static double max_abs_diff(const Dense& a, const Dense& b) {
    check(a.rows_ == b.rows_ && a.cols_ == b.cols_, "max_abs_diff: shape mismatch");
    double m = 0;
    for (std::size_t i = 0; i < a.data_.size(); ++i) {
      m = std::max(m, std::abs(static_cast<double>(a.data_[i]) -
                               static_cast<double>(b.data_[i])));
    }
    return m;
  }

  std::size_t bytes() const { return data_.size() * sizeof(T); }

  bool operator==(const Dense& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<T> data_;
};

using DenseD = Dense<double>;
using DenseF = Dense<float>;

}  // namespace dms
