// Compressed Sparse Row matrix — the core storage format of the library.
//
// The paper's framework (§4) expresses every sampling step as operations on
// CSR matrices, mirroring the cuSPARSE/nsparse constraint that SpGEMM is
// CSR-only (§8.2.2). Values are doubles (probabilities / edge indicators).
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace dms {

struct CooMatrix;  // forward declaration (coo.hpp)

/// CSR sparse matrix with 64-bit indices.
///
/// Invariants (checked by validate()):
///  - rowptr.size() == rows + 1, rowptr.front() == 0, rowptr is nondecreasing
///  - colidx/vals have rowptr.back() entries; column ids are in [0, cols)
///  - column ids within each row are strictly increasing (sorted, no dups)
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Empty matrix of the given shape (no nonzeros).
  CsrMatrix(index_t rows, index_t cols);

  /// Takes ownership of pre-built CSR arrays. Call validate() afterwards if
  /// the arrays come from untrusted construction code.
  CsrMatrix(index_t rows, index_t cols, std::vector<nnz_t> rowptr,
            std::vector<index_t> colidx, std::vector<value_t> vals);

  /// Builds a CSR matrix from (possibly unsorted, possibly duplicated) COO
  /// triplets. Duplicates are summed.
  static CsrMatrix from_coo(const CooMatrix& coo);

  /// Builds from explicit triplet arrays (convenience for tests).
  static CsrMatrix from_triplets(index_t rows, index_t cols,
                                 const std::vector<index_t>& ri,
                                 const std::vector<index_t>& ci,
                                 const std::vector<value_t>& vals);

  /// Identity-like matrix with one given nonzero per row:
  /// row i has value 1 at column cols_of_row[i]. This is exactly the
  /// GraphSAGE Q^L construction of §4.1.1.
  static CsrMatrix one_nonzero_per_row(index_t cols,
                                       const std::vector<index_t>& cols_of_row);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  nnz_t nnz() const { return rowptr_.empty() ? 0 : rowptr_.back(); }

  const std::vector<nnz_t>& rowptr() const { return rowptr_; }
  const std::vector<index_t>& colidx() const { return colidx_; }
  const std::vector<value_t>& vals() const { return vals_; }
  std::vector<nnz_t>& mutable_rowptr() { return rowptr_; }
  std::vector<index_t>& mutable_colidx() { return colidx_; }
  std::vector<value_t>& mutable_vals() { return vals_; }

  nnz_t row_begin(index_t r) const { return rowptr_[r]; }
  nnz_t row_end(index_t r) const { return rowptr_[r + 1]; }
  nnz_t row_nnz(index_t r) const { return rowptr_[r + 1] - rowptr_[r]; }

  std::span<const index_t> row_cols(index_t r) const {
    return {colidx_.data() + rowptr_[r], static_cast<std::size_t>(row_nnz(r))};
  }
  std::span<const value_t> row_vals(index_t r) const {
    return {vals_.data() + rowptr_[r], static_cast<std::size_t>(row_nnz(r))};
  }

  /// Value at (r, c), or 0 if absent. O(log row_nnz).
  value_t at(index_t r, index_t c) const;

  /// Verifies all invariants; throws DmsError with a description on failure.
  void validate() const;

  /// Approximate heap footprint in bytes (used by memory-cap logic that
  /// mirrors the paper's per-GPU memory constraints on c and k).
  std::size_t bytes() const {
    return rowptr_.size() * sizeof(nnz_t) + colidx_.size() * sizeof(index_t) +
           vals_.size() * sizeof(value_t);
  }

  bool operator==(const CsrMatrix& other) const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<nnz_t> rowptr_{0};
  std::vector<index_t> colidx_;
  std::vector<value_t> vals_;
};

}  // namespace dms
