// Coordinate-format sparse matrix: the assembly format for generators and
// for the hypersparse LADIES column-extraction matrices (§8.2.2), which are
// too row-sparse to store efficiently in CSR.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace dms {

struct CooMatrix {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_idx;
  std::vector<index_t> col_idx;
  std::vector<value_t> vals;

  CooMatrix() = default;
  CooMatrix(index_t r, index_t c) : rows(r), cols(c) {}

  nnz_t nnz() const { return static_cast<nnz_t>(row_idx.size()); }

  void push(index_t r, index_t c, value_t v) {
    row_idx.push_back(r);
    col_idx.push_back(c);
    vals.push_back(v);
  }

  void reserve(nnz_t n) {
    row_idx.reserve(static_cast<std::size_t>(n));
    col_idx.reserve(static_cast<std::size_t>(n));
    vals.reserve(static_cast<std::size_t>(n));
  }

  /// Sorts triplets by (row, col) and sums duplicates in place.
  void sort_and_combine();
};

}  // namespace dms
