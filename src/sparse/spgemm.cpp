#include "sparse/spgemm.hpp"

#include <algorithm>
#include <vector>

#include "common/threadpool.hpp"

namespace dms {

namespace {

/// Dense accumulator with generation marking: O(1) reset between rows.
struct Accumulator {
  explicit Accumulator(index_t cols)
      : mark(static_cast<std::size_t>(cols), -1),
        acc(static_cast<std::size_t>(cols), 0.0) {}

  std::vector<index_t> mark;  // last row id that touched this column
  std::vector<value_t> acc;
  std::vector<index_t> touched;  // columns touched by the current row
};

/// Computes one output row of C = A*B into the accumulator, returning the
/// sorted column list in ws.touched.
void compute_row(const CsrMatrix& a, const CsrMatrix& b, index_t row,
                 Accumulator& ws) {
  ws.touched.clear();
  const auto acols = a.row_cols(row);
  const auto avals = a.row_vals(row);
  for (std::size_t i = 0; i < acols.size(); ++i) {
    const index_t k = acols[i];
    const value_t av = avals[i];
    const auto bcols = b.row_cols(k);
    const auto bvals = b.row_vals(k);
    for (std::size_t j = 0; j < bcols.size(); ++j) {
      const index_t c = bcols[j];
      if (ws.mark[static_cast<std::size_t>(c)] != row) {
        ws.mark[static_cast<std::size_t>(c)] = row;
        ws.acc[static_cast<std::size_t>(c)] = av * bvals[j];
        ws.touched.push_back(c);
      } else {
        ws.acc[static_cast<std::size_t>(c)] += av * bvals[j];
      }
    }
  }
  std::sort(ws.touched.begin(), ws.touched.end());
}

}  // namespace

CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b, const SpgemmOptions& opts) {
  check(a.cols() == b.rows(), "spgemm: inner dimension mismatch");
  const index_t m = a.rows();
  const index_t n = b.cols();

  // Choose a block decomposition; each block owns a contiguous row range and
  // a private accumulator, then results are stitched together.
  const int pool_threads = opts.parallel ? ThreadPool::global().size() : 1;
  const index_t nblocks = std::max<index_t>(
      1, std::min<index_t>(m, opts.parallel ? pool_threads : 1));
  const index_t rows_per_block = ceil_div(m, nblocks);

  struct BlockOut {
    std::vector<nnz_t> row_nnz;
    std::vector<index_t> colidx;
    std::vector<value_t> vals;
  };
  std::vector<BlockOut> blocks(static_cast<std::size_t>(nblocks));

  auto body = [&](index_t blk) {
    const index_t r0 = blk * rows_per_block;
    const index_t r1 = std::min<index_t>(m, r0 + rows_per_block);
    if (r0 >= r1) return;
    Accumulator ws(n);
    BlockOut& out = blocks[static_cast<std::size_t>(blk)];
    out.row_nnz.assign(static_cast<std::size_t>(r1 - r0), 0);
    for (index_t r = r0; r < r1; ++r) {
      compute_row(a, b, r, ws);
      out.row_nnz[static_cast<std::size_t>(r - r0)] =
          static_cast<nnz_t>(ws.touched.size());
      for (const index_t c : ws.touched) {
        out.colidx.push_back(c);
        out.vals.push_back(ws.acc[static_cast<std::size_t>(c)]);
      }
    }
  };

  if (nblocks == 1) {
    body(0);
  } else {
    ThreadPool::global().parallel_for(nblocks, body);
  }

  // Stitch blocks into one CSR.
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(m) + 1, 0);
  nnz_t total = 0;
  for (index_t blk = 0; blk < nblocks; ++blk) {
    const index_t r0 = blk * rows_per_block;
    const auto& out = blocks[static_cast<std::size_t>(blk)];
    for (std::size_t i = 0; i < out.row_nnz.size(); ++i) {
      rowptr[static_cast<std::size_t>(r0) + i + 1] = out.row_nnz[i];
    }
    total += static_cast<nnz_t>(out.colidx.size());
  }
  for (index_t r = 0; r < m; ++r) {
    rowptr[static_cast<std::size_t>(r) + 1] += rowptr[static_cast<std::size_t>(r)];
  }

  std::vector<index_t> colidx(static_cast<std::size_t>(total));
  std::vector<value_t> vals(static_cast<std::size_t>(total));
  nnz_t cursor = 0;
  for (index_t blk = 0; blk < nblocks; ++blk) {
    const auto& out = blocks[static_cast<std::size_t>(blk)];
    std::copy(out.colidx.begin(), out.colidx.end(),
              colidx.begin() + static_cast<std::ptrdiff_t>(cursor));
    std::copy(out.vals.begin(), out.vals.end(),
              vals.begin() + static_cast<std::ptrdiff_t>(cursor));
    cursor += static_cast<nnz_t>(out.colidx.size());
  }

  return CsrMatrix(m, n, std::move(rowptr), std::move(colidx), std::move(vals));
}

nnz_t spgemm_flops(const CsrMatrix& a, const CsrMatrix& b) {
  check(a.cols() == b.rows(), "spgemm_flops: inner dimension mismatch");
  nnz_t flops = 0;
  for (index_t r = 0; r < a.rows(); ++r) {
    for (const index_t k : a.row_cols(r)) flops += b.row_nnz(k);
  }
  return flops;
}

}  // namespace dms
