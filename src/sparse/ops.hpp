// Structural sparse-matrix operations used by the sampling framework:
// stacking (bulk sampling, Eq. 1), row/column extraction (§4.1.3, §4.2.3),
// block-diagonal expansion (§4.2.4), transpose, normalization (NORM).
#pragma once

#include <vector>

#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace dms {

/// Bᵀ. O(nnz) counting transpose; output rows sorted.
CsrMatrix transpose(const CsrMatrix& a);

/// Vertical stack [A1; A2; ...]: all blocks must share the column count.
/// This is the bulk-sampling stacking of Equation 1.
CsrMatrix vstack(const std::vector<CsrMatrix>& blocks);

/// Block-diagonal matrix diag(A1, ..., Ak) (§4.2.4 column extraction).
CsrMatrix block_diag(const std::vector<CsrMatrix>& blocks);

/// Rows [r0, r1) of A as a new (r1-r0) × cols matrix.
CsrMatrix row_slice(const CsrMatrix& a, index_t r0, index_t r1);

/// Gathers the given rows (with repetition allowed) into a new matrix whose
/// row i equals A[rows[i], :]. Equivalent to the row-extraction SpGEMM
/// Q_R · A but implemented directly.
CsrMatrix extract_rows(const CsrMatrix& a, const std::vector<index_t>& rows);

/// Keeps only the listed columns (which must be sorted and unique),
/// renumbering them 0..k-1 in order. Equivalent to the column-extraction
/// SpGEMM A · Q_C.
CsrMatrix extract_columns(const CsrMatrix& a, const std::vector<index_t>& cols);

/// Removes columns that contain no nonzeros, renumbering the survivors and
/// reporting the old column id of each kept column. This is the GraphSAGE
/// extraction step (§4.1.3: "remove empty columns in Q^{l-1}").
CsrMatrix drop_empty_columns(const CsrMatrix& a, std::vector<index_t>* kept_cols);

/// Sum of each row's values.
std::vector<value_t> row_sums(const CsrMatrix& a);

/// Divides each row by its sum (rows with zero sum are left untouched):
/// the NORM step of Algorithm 1.
void normalize_rows(CsrMatrix& a);

/// Columns that contain at least one nonzero, ascending. This is
/// NnzCols(Qˡ_ik) of Algorithm 2 line 4 (the sparsity-aware fetch list).
std::vector<index_t> nonzero_columns(const CsrMatrix& a);

/// Dense copy (small matrices / tests only).
DenseD to_dense(const CsrMatrix& a);

/// Sparse copy of a dense matrix, dropping exact zeros.
CsrMatrix from_dense(const DenseD& d);

/// Max |A - B| over all entries (shape must match). Test helper.
double max_abs_diff(const CsrMatrix& a, const CsrMatrix& b);

/// All values set to 1 (pattern matrix). LADIES probability construction
/// uses the *pattern* of Qˡ with the values of A being 0/1.
CsrMatrix ones_like(const CsrMatrix& a);

/// C = A + B (same shape). The reduction operator of the 1.5D SpGEMM's
/// all-reduce over partial products (Algorithm 2 line 14).
CsrMatrix csr_add(const CsrMatrix& a, const CsrMatrix& b);

/// Restricts A to columns [c0, c1), shifting surviving column ids down by
/// c0. Used to select the Qˡ_ik panel of the 1.5D algorithm.
CsrMatrix column_window(const CsrMatrix& a, index_t c0, index_t c1);

}  // namespace dms
