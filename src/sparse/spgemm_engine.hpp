// Unified adaptive SpGEMM engine — the single entry point for every sparse ×
// sparse product in the library.
//
// The paper's central claim is that minibatch sampling *is* SpGEMM (§4), so
// this kernel is the hot path of every sampler. The engine splits each
// multiply into a symbolic and a numeric phase:
//
//  - SYMBOLIC: one O(nnz(A)) pass computes the Gustavson FLOP count of every
//    output row (sum of B-row lengths the row touches), a flop-balanced
//    block decomposition of the rows, and a kernel choice per block.
//  - NUMERIC: each block runs the kernel the estimator picked:
//      * dense  — generation-marked dense accumulator, O(cols) workspace per
//                 block. Wins when the block's flop volume amortizes the
//                 workspace (wide, dense row blocks).
//      * hash   — nsparse-style open addressing sized to each row's
//                 upper-bound fill. Wins for sparse rows over wide matrices
//                 (the Qˡ·A probability products, rows ≪ n).
//      * masked — computes only the output columns listed in an explicit
//                 column mask, via sorted-list intersection against each
//                 B row. Turns the LADIES/FastGCN column-extraction pattern
//                 (compute AᵣB in full, keep s columns) into work
//                 proportional to the surviving nonzeros (§4.1.3, §8.2.2).
//
// Bit-identity contract: all kernels emit rows in sorted column order and
// accumulate each output entry's contributions in the same order (the order
// the A row traverses its B rows), so dense, hash, auto and masked products
// are bit-identical — not merely close. This is what lets the samplers
// dispatch adaptively while preserving the PR-1 single-node/partitioned
// equivalence contract, and what makes the distributed 1.5D SpGEMM's results
// independent of the per-panel kernel choice.
#pragma once

#include <vector>

#include "common/workspace.hpp"
#include "sparse/csr.hpp"
#include "sparse/spgemm_cost.hpp"  // SpgemmKernel, SpgemmCostModel

namespace dms {

/// Row-wise normalization fused into the numeric phase: each block
/// normalizes its staged rows while they are still cache-resident (and in
/// parallel with the other blocks), instead of a separate serial pass over
/// the stitched product. kRowNormalize divides every row by its sum;
/// kLadiesNormalize squares entries first (p_v ∝ e_v², Zou et al. 2019).
/// Both are per-row and applied in the exact entry order of the post-hoc
/// normalize_rows/ladies_norm passes, so fused products are bit-identical
/// to product-then-normalize.
enum class SpgemmEpilogue { kNone, kRowNormalize, kLadiesNormalize };

/// Options controlling the SpGEMM engine.
struct SpgemmOptions {
  /// Parallelize over flop-balanced row blocks using the global thread pool.
  bool parallel = true;
  /// Kernel override; kAuto dispatches per row block.
  SpgemmKernel kernel = SpgemmKernel::kAuto;
  /// kAuto's per-block dense-vs-hash decision (sparse/spgemm_cost.hpp). The
  /// default model reproduces the historical threshold; the plan optimizer
  /// threads per-op models through here. Never affects result bits.
  SpgemmCostModel cost{};
  /// Fused row normalization applied per block before stitching.
  SpgemmEpilogue epilogue = SpgemmEpilogue::kNone;
  /// When non-null: compute only these columns of the product (must be
  /// sorted and duplicate-free; ids index the product's column space), and
  /// renumber them 0..mask.size()-1 in order. Forces the masked kernel.
  /// The pointee must outlive the call.
  const std::vector<index_t>* column_mask = nullptr;
  /// Reusable scratch arena (DESIGN.md §7). When non-null, every symbolic
  /// prefix, block accumulator, and staging buffer comes from (and stays
  /// in) the workspace, so repeated products allocate only their results.
  /// One kernel invocation at a time per Workspace; results are bitwise
  /// independent of whether (or which) workspace is supplied.
  Workspace* workspace = nullptr;
};

/// C = A * B. A is (m × k), B is (k × n); C is (m × n), or (m × |mask|)
/// when opts.column_mask is set. Per-row column ids of C are sorted and the
/// result is bitwise independent of the kernel choice, the block
/// decomposition, and the thread count.
CsrMatrix spgemm(const CsrMatrix& a, const CsrMatrix& b,
                 const SpgemmOptions& opts = {});

/// Masked column extraction A[:, mask] with the kept columns renumbered
/// 0..mask.size()-1: the fused form of the extraction SpGEMM A·Q_C where
/// Q_C has one nonzero per sampled column (§4.1.3). `mask` must be sorted
/// and duplicate-free. Values are passed through unchanged (Q_C's nonzeros
/// are exactly 1), so the result is bit-identical to the two-step
/// product-then-slice it replaces.
CsrMatrix spgemm_masked(const CsrMatrix& a, const std::vector<index_t>& mask,
                        const SpgemmOptions& opts = {});

/// Kernel the kAuto estimator picks for a row block performing `block_flops`
/// multiply-adds into `out_cols` output columns under the DEFAULT cost
/// model (SpgemmCostModel{}.pick). Exposed so tests and the
/// kernel-comparison bench can pin down the dispatch boundary.
SpgemmKernel spgemm_pick_kernel(nnz_t block_flops, index_t out_cols);

/// Number of scalar multiply-adds Gustavson performs for A*B:
/// sum over nonzeros (i,k) of A of nnz(B row k). This is exactly what the
/// symbolic phase computes per row; used by the simulator's compute
/// accounting and by tests.
nnz_t spgemm_flops(const CsrMatrix& a, const CsrMatrix& b);

/// The symbolic phase's work-balanced block decomposition, exposed for
/// other row-parallel kernels (ITS balances on the CSR rowptr, which is
/// exactly a per-row work prefix). Given prefix[r] = work of rows [0, r)
/// (size m+1), returns contiguous row bounds b_0=0 < b_1 < ... < b_k=m
/// with ~equal work per block; every block is non-empty and k never
/// exceeds max_blocks.
std::vector<index_t> work_balanced_bounds(const std::vector<nnz_t>& prefix,
                                          index_t m, index_t max_blocks);

}  // namespace dms
