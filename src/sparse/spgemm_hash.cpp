#include "sparse/spgemm_hash.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/threadpool.hpp"
#include "sparse/spgemm.hpp"

namespace dms {

namespace {

/// Open-addressing accumulator for one output row.
class HashRow {
 public:
  void reset(std::size_t upper_bound_fill) {
    // Load factor 1/2, minimum 8 slots.
    std::size_t want = std::max<std::size_t>(8, std::bit_ceil(2 * upper_bound_fill + 1));
    if (want > keys_.size()) {
      keys_.assign(want, kEmpty);
      vals_.assign(want, 0.0);
    } else {
      for (const index_t k : used_) {
        keys_[static_cast<std::size_t>(k)] = kEmpty;
      }
      want = keys_.size();
    }
    mask_ = want - 1;
    used_.clear();
  }

  void add(index_t col, value_t v) {
    std::size_t slot = (static_cast<std::size_t>(col) * 0x9e3779b97f4a7c15ULL) & mask_;
    while (true) {
      if (keys_[slot] == kEmpty) {
        keys_[slot] = col;
        vals_[slot] = v;
        used_.push_back(static_cast<index_t>(slot));
        return;
      }
      if (keys_[slot] == col) {
        vals_[slot] += v;
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }

  /// Emits (col, val) pairs sorted by column id.
  void emit(std::vector<index_t>* cols, std::vector<value_t>* vals) {
    std::sort(used_.begin(), used_.end(), [&](index_t a, index_t b) {
      return keys_[static_cast<std::size_t>(a)] < keys_[static_cast<std::size_t>(b)];
    });
    for (const index_t slot : used_) {
      cols->push_back(keys_[static_cast<std::size_t>(slot)]);
      vals->push_back(vals_[static_cast<std::size_t>(slot)]);
    }
  }

  std::size_t fill() const { return used_.size(); }

 private:
  static constexpr index_t kEmpty = -1;
  std::vector<index_t> keys_;
  std::vector<value_t> vals_;
  std::vector<index_t> used_;
  std::size_t mask_ = 0;
};

}  // namespace

CsrMatrix spgemm_hash(const CsrMatrix& a, const CsrMatrix& b) {
  check(a.cols() == b.rows(), "spgemm_hash: inner dimension mismatch");
  const index_t m = a.rows();

  const int nblocks = std::max(1, std::min<int>(static_cast<int>(m),
                                                ThreadPool::global().size()));
  const index_t rows_per_block = ceil_div(m, nblocks);

  struct BlockOut {
    std::vector<nnz_t> row_nnz;
    std::vector<index_t> colidx;
    std::vector<value_t> vals;
  };
  std::vector<BlockOut> blocks(static_cast<std::size_t>(nblocks));

  ThreadPool::global().parallel_for(nblocks, [&](index_t blk) {
    const index_t r0 = blk * rows_per_block;
    const index_t r1 = std::min<index_t>(m, r0 + rows_per_block);
    if (r0 >= r1) return;
    HashRow acc;
    BlockOut& out = blocks[static_cast<std::size_t>(blk)];
    out.row_nnz.assign(static_cast<std::size_t>(r1 - r0), 0);
    for (index_t r = r0; r < r1; ++r) {
      // Upper bound on the row's fill: sum of B-row lengths it touches.
      std::size_t bound = 0;
      for (const index_t k : a.row_cols(r)) {
        bound += static_cast<std::size_t>(b.row_nnz(k));
      }
      acc.reset(bound);
      const auto acols = a.row_cols(r);
      const auto avals = a.row_vals(r);
      for (std::size_t i = 0; i < acols.size(); ++i) {
        const index_t k = acols[i];
        const value_t av = avals[i];
        const auto bcols = b.row_cols(k);
        const auto bvals = b.row_vals(k);
        for (std::size_t j = 0; j < bcols.size(); ++j) {
          acc.add(bcols[j], av * bvals[j]);
        }
      }
      out.row_nnz[static_cast<std::size_t>(r - r0)] = static_cast<nnz_t>(acc.fill());
      acc.emit(&out.colidx, &out.vals);
    }
  });

  std::vector<nnz_t> rowptr(static_cast<std::size_t>(m) + 1, 0);
  nnz_t total = 0;
  for (int blk = 0; blk < nblocks; ++blk) {
    const index_t r0 = blk * rows_per_block;
    const auto& out = blocks[static_cast<std::size_t>(blk)];
    for (std::size_t i = 0; i < out.row_nnz.size(); ++i) {
      rowptr[static_cast<std::size_t>(r0) + i + 1] = out.row_nnz[i];
    }
    total += static_cast<nnz_t>(out.colidx.size());
  }
  for (index_t r = 0; r < m; ++r) {
    rowptr[static_cast<std::size_t>(r) + 1] += rowptr[static_cast<std::size_t>(r)];
  }
  std::vector<index_t> colidx;
  std::vector<value_t> vals;
  colidx.reserve(static_cast<std::size_t>(total));
  vals.reserve(static_cast<std::size_t>(total));
  for (const auto& out : blocks) {
    colidx.insert(colidx.end(), out.colidx.begin(), out.colidx.end());
    vals.insert(vals.end(), out.vals.begin(), out.vals.end());
  }
  return CsrMatrix(m, b.cols(), std::move(rowptr), std::move(colidx), std::move(vals));
}

CsrMatrix spgemm_with(SpgemmAlgorithm algo, const CsrMatrix& a, const CsrMatrix& b) {
  switch (algo) {
    case SpgemmAlgorithm::kDenseAccumulator:
      return spgemm(a, b);
    case SpgemmAlgorithm::kHash:
      return spgemm_hash(a, b);
  }
  throw DmsError("spgemm_with: unknown algorithm");
}

}  // namespace dms
