#include "sparse/ops.hpp"

#include <algorithm>
#include <cmath>

namespace dms {

CsrMatrix transpose(const CsrMatrix& a) {
  const index_t m = a.rows();
  const index_t n = a.cols();
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(n) + 1, 0);
  for (const index_t c : a.colidx()) ++rowptr[static_cast<std::size_t>(c) + 1];
  for (index_t c = 0; c < n; ++c) {
    rowptr[static_cast<std::size_t>(c) + 1] += rowptr[static_cast<std::size_t>(c)];
  }
  std::vector<index_t> colidx(a.colidx().size());
  std::vector<value_t> vals(a.vals().size());
  std::vector<nnz_t> cursor(rowptr.begin(), rowptr.end() - 1);
  for (index_t r = 0; r < m; ++r) {
    const auto cols = a.row_cols(r);
    const auto v = a.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const nnz_t dst = cursor[static_cast<std::size_t>(cols[i])]++;
      colidx[static_cast<std::size_t>(dst)] = r;
      vals[static_cast<std::size_t>(dst)] = v[i];
    }
  }
  return CsrMatrix(n, m, std::move(rowptr), std::move(colidx), std::move(vals));
}

CsrMatrix vstack(const std::vector<CsrMatrix>& blocks) {
  check(!blocks.empty(), "vstack: no blocks");
  const index_t cols = blocks.front().cols();
  index_t rows = 0;
  nnz_t nnz = 0;
  for (const auto& b : blocks) {
    check(b.cols() == cols, "vstack: column count mismatch");
    rows += b.rows();
    nnz += b.nnz();
  }
  std::vector<nnz_t> rowptr;
  std::vector<index_t> colidx;
  std::vector<value_t> vals;
  rowptr.reserve(static_cast<std::size_t>(rows) + 1);
  colidx.reserve(static_cast<std::size_t>(nnz));
  vals.reserve(static_cast<std::size_t>(nnz));
  rowptr.push_back(0);
  nnz_t offset = 0;
  for (const auto& b : blocks) {
    for (index_t r = 0; r < b.rows(); ++r) {
      rowptr.push_back(offset + b.row_end(r));
    }
    colidx.insert(colidx.end(), b.colidx().begin(), b.colidx().end());
    vals.insert(vals.end(), b.vals().begin(), b.vals().end());
    offset += b.nnz();
  }
  return CsrMatrix(rows, cols, std::move(rowptr), std::move(colidx), std::move(vals));
}

CsrMatrix block_diag(const std::vector<CsrMatrix>& blocks) {
  check(!blocks.empty(), "block_diag: no blocks");
  index_t rows = 0, cols = 0;
  nnz_t nnz = 0;
  for (const auto& b : blocks) {
    rows += b.rows();
    cols += b.cols();
    nnz += b.nnz();
  }
  std::vector<nnz_t> rowptr;
  std::vector<index_t> colidx;
  std::vector<value_t> vals;
  rowptr.reserve(static_cast<std::size_t>(rows) + 1);
  colidx.reserve(static_cast<std::size_t>(nnz));
  vals.reserve(static_cast<std::size_t>(nnz));
  rowptr.push_back(0);
  nnz_t nnz_offset = 0;
  index_t col_offset = 0;
  for (const auto& b : blocks) {
    for (index_t r = 0; r < b.rows(); ++r) {
      rowptr.push_back(nnz_offset + b.row_end(r));
      for (const index_t c : b.row_cols(r)) colidx.push_back(c + col_offset);
    }
    vals.insert(vals.end(), b.vals().begin(), b.vals().end());
    nnz_offset += b.nnz();
    col_offset += b.cols();
  }
  return CsrMatrix(rows, cols, std::move(rowptr), std::move(colidx), std::move(vals));
}

CsrMatrix row_slice(const CsrMatrix& a, index_t r0, index_t r1) {
  check(0 <= r0 && r0 <= r1 && r1 <= a.rows(), "row_slice: bad range");
  const nnz_t base = a.row_begin(r0);
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(r1 - r0) + 1);
  for (index_t r = r0; r <= r1; ++r) {
    rowptr[static_cast<std::size_t>(r - r0)] = a.rowptr()[static_cast<std::size_t>(r)] - base;
  }
  std::vector<index_t> colidx(a.colidx().begin() + static_cast<std::ptrdiff_t>(base),
                              a.colidx().begin() + static_cast<std::ptrdiff_t>(a.row_begin(r1)));
  std::vector<value_t> vals(a.vals().begin() + static_cast<std::ptrdiff_t>(base),
                            a.vals().begin() + static_cast<std::ptrdiff_t>(a.row_begin(r1)));
  return CsrMatrix(r1 - r0, a.cols(), std::move(rowptr), std::move(colidx), std::move(vals));
}

CsrMatrix extract_rows(const CsrMatrix& a, const std::vector<index_t>& rows) {
  const auto m = static_cast<index_t>(rows.size());
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(m) + 1, 0);
  for (index_t i = 0; i < m; ++i) {
    const index_t r = rows[static_cast<std::size_t>(i)];
    check(r >= 0 && r < a.rows(), "extract_rows: row out of range");
    rowptr[static_cast<std::size_t>(i) + 1] = rowptr[static_cast<std::size_t>(i)] + a.row_nnz(r);
  }
  std::vector<index_t> colidx(static_cast<std::size_t>(rowptr.back()));
  std::vector<value_t> vals(static_cast<std::size_t>(rowptr.back()));
  for (index_t i = 0; i < m; ++i) {
    const index_t r = rows[static_cast<std::size_t>(i)];
    const auto cols = a.row_cols(r);
    const auto v = a.row_vals(r);
    std::copy(cols.begin(), cols.end(),
              colidx.begin() + static_cast<std::ptrdiff_t>(rowptr[static_cast<std::size_t>(i)]));
    std::copy(v.begin(), v.end(),
              vals.begin() + static_cast<std::ptrdiff_t>(rowptr[static_cast<std::size_t>(i)]));
  }
  return CsrMatrix(m, a.cols(), std::move(rowptr), std::move(colidx), std::move(vals));
}

CsrMatrix extract_columns(const CsrMatrix& a, const std::vector<index_t>& cols) {
  // Build old-col -> new-col map; cols must be sorted unique.
  for (std::size_t i = 0; i + 1 < cols.size(); ++i) {
    check(cols[i] < cols[i + 1], "extract_columns: cols not sorted/unique");
  }
  std::vector<index_t> remap(static_cast<std::size_t>(a.cols()), -1);
  for (std::size_t i = 0; i < cols.size(); ++i) {
    check(cols[i] >= 0 && cols[i] < a.cols(), "extract_columns: col out of range");
    remap[static_cast<std::size_t>(cols[i])] = static_cast<index_t>(i);
  }
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index_t> colidx;
  std::vector<value_t> vals;
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto rc = a.row_cols(r);
    const auto rv = a.row_vals(r);
    for (std::size_t i = 0; i < rc.size(); ++i) {
      const index_t nc = remap[static_cast<std::size_t>(rc[i])];
      if (nc >= 0) {
        colidx.push_back(nc);
        vals.push_back(rv[i]);
      }
    }
    rowptr[static_cast<std::size_t>(r) + 1] = static_cast<nnz_t>(colidx.size());
  }
  return CsrMatrix(a.rows(), static_cast<index_t>(cols.size()), std::move(rowptr),
                   std::move(colidx), std::move(vals));
}

CsrMatrix drop_empty_columns(const CsrMatrix& a, std::vector<index_t>* kept_cols) {
  std::vector<index_t> kept = nonzero_columns(a);
  CsrMatrix out = extract_columns(a, kept);
  if (kept_cols != nullptr) *kept_cols = std::move(kept);
  return out;
}

std::vector<value_t> row_sums(const CsrMatrix& a) {
  std::vector<value_t> sums(static_cast<std::size_t>(a.rows()), 0.0);
  for (index_t r = 0; r < a.rows(); ++r) {
    for (const value_t v : a.row_vals(r)) sums[static_cast<std::size_t>(r)] += v;
  }
  return sums;
}

void normalize_rows(CsrMatrix& a) {
  auto& vals = a.mutable_vals();
  for (index_t r = 0; r < a.rows(); ++r) {
    value_t s = 0.0;
    for (nnz_t i = a.row_begin(r); i < a.row_end(r); ++i) s += vals[static_cast<std::size_t>(i)];
    if (s == 0.0) continue;
    const value_t inv = 1.0 / s;
    for (nnz_t i = a.row_begin(r); i < a.row_end(r); ++i) vals[static_cast<std::size_t>(i)] *= inv;
  }
}

std::vector<index_t> nonzero_columns(const CsrMatrix& a) {
  std::vector<char> seen(static_cast<std::size_t>(a.cols()), 0);
  for (const index_t c : a.colidx()) seen[static_cast<std::size_t>(c)] = 1;
  std::vector<index_t> cols;
  for (index_t c = 0; c < a.cols(); ++c) {
    if (seen[static_cast<std::size_t>(c)]) cols.push_back(c);
  }
  return cols;
}

DenseD to_dense(const CsrMatrix& a) {
  DenseD d(a.rows(), a.cols());
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) d(r, cols[i]) = vals[i];
  }
  return d;
}

CsrMatrix from_dense(const DenseD& d) {
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(d.rows()) + 1, 0);
  std::vector<index_t> colidx;
  std::vector<value_t> vals;
  for (index_t r = 0; r < d.rows(); ++r) {
    for (index_t c = 0; c < d.cols(); ++c) {
      if (d(r, c) != 0.0) {
        colidx.push_back(c);
        vals.push_back(d(r, c));
      }
    }
    rowptr[static_cast<std::size_t>(r) + 1] = static_cast<nnz_t>(colidx.size());
  }
  return CsrMatrix(d.rows(), d.cols(), std::move(rowptr), std::move(colidx), std::move(vals));
}

double max_abs_diff(const CsrMatrix& a, const CsrMatrix& b) {
  check(a.rows() == b.rows() && a.cols() == b.cols(), "max_abs_diff: shape mismatch");
  const DenseD da = to_dense(a);
  const DenseD db = to_dense(b);
  return DenseD::max_abs_diff(da, db);
}

CsrMatrix ones_like(const CsrMatrix& a) {
  CsrMatrix out = a;
  std::fill(out.mutable_vals().begin(), out.mutable_vals().end(), 1.0);
  return out;
}

CsrMatrix csr_add(const CsrMatrix& a, const CsrMatrix& b) {
  check(a.rows() == b.rows() && a.cols() == b.cols(), "csr_add: shape mismatch");
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index_t> colidx;
  std::vector<value_t> vals;
  colidx.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  vals.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto ac = a.row_cols(r);
    const auto av = a.row_vals(r);
    const auto bc = b.row_cols(r);
    const auto bv = b.row_vals(r);
    std::size_t i = 0, j = 0;
    while (i < ac.size() || j < bc.size()) {
      if (j >= bc.size() || (i < ac.size() && ac[i] < bc[j])) {
        colidx.push_back(ac[i]);
        vals.push_back(av[i]);
        ++i;
      } else if (i >= ac.size() || bc[j] < ac[i]) {
        colidx.push_back(bc[j]);
        vals.push_back(bv[j]);
        ++j;
      } else {
        colidx.push_back(ac[i]);
        vals.push_back(av[i] + bv[j]);
        ++i;
        ++j;
      }
    }
    rowptr[static_cast<std::size_t>(r) + 1] = static_cast<nnz_t>(colidx.size());
  }
  return CsrMatrix(a.rows(), a.cols(), std::move(rowptr), std::move(colidx),
                   std::move(vals));
}

CsrMatrix column_window(const CsrMatrix& a, index_t c0, index_t c1) {
  check(0 <= c0 && c0 <= c1 && c1 <= a.cols(), "column_window: bad range");
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(a.rows()) + 1, 0);
  std::vector<index_t> colidx;
  std::vector<value_t> vals;
  for (index_t r = 0; r < a.rows(); ++r) {
    const auto rc = a.row_cols(r);
    const auto rv = a.row_vals(r);
    const auto lo = std::lower_bound(rc.begin(), rc.end(), c0);
    const auto hi = std::lower_bound(rc.begin(), rc.end(), c1);
    for (auto it = lo; it != hi; ++it) {
      colidx.push_back(*it - c0);
      vals.push_back(rv[static_cast<std::size_t>(it - rc.begin())]);
    }
    rowptr[static_cast<std::size_t>(r) + 1] = static_cast<nnz_t>(colidx.size());
  }
  return CsrMatrix(a.rows(), c1 - c0, std::move(rowptr), std::move(colidx),
                   std::move(vals));
}

}  // namespace dms
