#include "sparse/coo.hpp"

#include <algorithm>
#include <numeric>

namespace dms {

void CooMatrix::sort_and_combine() {
  const std::size_t n = row_idx.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (row_idx[a] != row_idx[b]) return row_idx[a] < row_idx[b];
    return col_idx[a] < col_idx[b];
  });

  std::vector<index_t> r2, c2;
  std::vector<value_t> v2;
  r2.reserve(n);
  c2.reserve(n);
  v2.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = order[k];
    if (!r2.empty() && r2.back() == row_idx[i] && c2.back() == col_idx[i]) {
      v2.back() += vals[i];
    } else {
      r2.push_back(row_idx[i]);
      c2.push_back(col_idx[i]);
      v2.push_back(vals[i]);
    }
  }
  row_idx = std::move(r2);
  col_idx = std::move(c2);
  vals = std::move(v2);
}

}  // namespace dms
