// Kernel-choice cost model for the adaptive SpGEMM engine (DESIGN.md §5,
// §12). The symbolic phase knows each row block's exact Gustavson FLOP count
// before any numeric work runs; the model turns that estimate plus the
// output width into a dense-vs-hash decision:
//
//   cost(dense) = dense_col_cost · out_cols + dense_flop_cost · flops
//   cost(hash)  =                             hash_flop_cost  · flops
//
// The O(out_cols) term is the dense accumulator's workspace initialization /
// scan; the hash kernel pays a constant-factor per-flop overhead (open-
// addressing probes plus the per-row sort). The defaults reproduce the
// engine's historical hard-coded threshold exactly (dense iff
// 4·flops >= out_cols), so a default-constructed model changes nothing —
// tuned models are threaded per plan op by the plan optimizer
// (plan/optimize.hpp) through SpgemmOptions.
//
// Kernel choice never affects results: every kernel obeys the engine's
// bit-identity contract, so any cost model is a pure speed knob.
#pragma once

#include "common/types.hpp"

namespace dms {

/// Kernel selector. kAuto lets the symbolic-phase estimator pick per block.
enum class SpgemmKernel { kAuto, kDense, kHash, kMasked };

struct SpgemmCostModel {
  /// Per output column: dense accumulator init + result scan.
  double dense_col_cost = 1.0;
  /// Per multiply-add in the dense kernel (direct-indexed accumulate).
  double dense_flop_cost = 1.0;
  /// Per multiply-add in the hash kernel (probe + per-row sort overhead).
  double hash_flop_cost = 5.0;

  /// Kernel for a row block performing `block_flops` multiply-adds into
  /// `out_cols` output columns: whichever modeled cost is lower (ties go
  /// dense, matching the historical `4·flops >= cols` boundary).
  SpgemmKernel pick(nnz_t block_flops, index_t out_cols) const {
    const double flops = static_cast<double>(block_flops);
    const double dense =
        dense_col_cost * static_cast<double>(out_cols) + dense_flop_cost * flops;
    const double hash = hash_flop_cost * flops;
    return dense <= hash ? SpgemmKernel::kDense : SpgemmKernel::kHash;
  }

  bool operator==(const SpgemmCostModel& o) const {
    return dense_col_cost == o.dense_col_cost &&
           dense_flop_cost == o.dense_flop_cost &&
           hash_flop_cost == o.hash_flop_cost;
  }
};

}  // namespace dms
