// Sparse × dense multiplication (SpMM) — the neighborhood-aggregation kernel
// of forward/backward propagation (§6.2: H_out = A_s · H_in).
#pragma once

#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace dms {

/// C = A * B with A sparse (m × k) and B dense (k × f). Row-parallel.
template <typename T>
Dense<T> spmm(const CsrMatrix& a, const Dense<T>& b);

/// C = Aᵀ * B without materializing Aᵀ (used by the backward pass).
template <typename T>
Dense<T> spmm_transposed(const CsrMatrix& a, const Dense<T>& b);

extern template Dense<float> spmm(const CsrMatrix&, const Dense<float>&);
extern template Dense<double> spmm(const CsrMatrix&, const Dense<double>&);
extern template Dense<float> spmm_transposed(const CsrMatrix&, const Dense<float>&);
extern template Dense<double> spmm_transposed(const CsrMatrix&, const Dense<double>&);

}  // namespace dms
