// Sparse × dense multiplication (SpMM) — the neighborhood-aggregation kernel
// of forward/backward propagation (§6.2: H_out = A_s · H_in).
#pragma once

#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace dms {

/// C = A * B with A sparse (m × k) and B dense (k × f). Row-parallel.
template <typename T>
Dense<T> spmm(const CsrMatrix& a, const Dense<T>& b);

/// C = Aᵀ * B (used by the backward pass). Row-parallel over the output via
/// an O(nnz) counting transpose of A; bit-identical to the serial scatter
/// formulation for every thread count (see spmm.cpp).
template <typename T>
Dense<T> spmm_transposed(const CsrMatrix& a, const Dense<T>& b);

extern template Dense<float> spmm(const CsrMatrix&, const Dense<float>&);
extern template Dense<double> spmm(const CsrMatrix&, const Dense<double>&);
extern template Dense<float> spmm_transposed(const CsrMatrix&, const Dense<float>&);
extern template Dense<double> spmm_transposed(const CsrMatrix&, const Dense<double>&);

}  // namespace dms
