// Fused random-walk engine (DESIGN.md §11): a dedicated executor for
// walk-shaped sampling plans.
//
// A walk round in the plan IR is kBuildQ → kSpgemm → kNormalize →
// kItsSample(s = 1) → kWalkAdvance: materialize one sparse row per walker,
// row-normalize it, draw a single ITS sample, keep the survivor. Every one
// of those matrices is rebuilt per round just to pick one neighbor per
// walker — the FlashMob observation is that the whole round collapses to a
// per-walker loop over the CSR adjacency row of its current vertex. The
// engine recognizes that shape (match_walk_plan) and advances walkers
// directly, replicating the matrix path's floating-point operations and
// RNG draw order exactly, so GraphSAINT / node2vec minibatches stay
// bit-identical to the unfused plan (the golden hashes of tests/test_plan
// do not move).
//
// Locality (FlashMob, Yang et al. 2021, adapted):
//  - the engine keeps a private copy of the adjacency renumbered by
//    descending out-degree (graph/relabel.hpp) so the hub rows that walks
//    visit most often share a compact cache-resident prefix. The copy is
//    *position-preserving*: each row keeps its original column order (new
//    ids stored in old-id ascending order), so "the k-th neighbor" means
//    the same logical edge in both id spaces and the ITS pick index maps
//    1:1 — bit-identity survives the relabeling;
//  - walker state is bucketed by the CSR byte range of the current vertex:
//    each round processes walkers one cache-sized bucket at a time
//    (counting sort, stable), then merges survivors back in walker order.
//    Processing order only changes memory locality, never results — every
//    walker's draw is seeded by (epoch, batch, round, local row).
//
// Walker state lives in the sampler Workspace's WalkScratch, so
// steady-state walk epochs (and frozen serving arenas) allocate nothing on
// this path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/workspace.hpp"
#include "graph/relabel.hpp"
#include "plan/plan.hpp"
#include "sparse/csr.hpp"

namespace dms {

struct WalkEngineOptions {
  /// Recognize walk-shaped plans and run their rounds fused (replicated
  /// execution only; lowered plans always take the collective matrix path).
  bool fused = true;
  /// Relabel the engine's adjacency copy by descending out-degree.
  bool relabel = true;
  /// Graphs smaller than this skip the relabeling pass (they fit in cache
  /// under any numbering).
  index_t relabel_min_vertices = 1024;
  /// Target CSR bytes per walker bucket (~an L2 slice). <= 0 disables
  /// bucketing.
  std::size_t bucket_bytes = 2u << 20;
};

/// Result of matching a plan body against the fusable walk-round shape.
struct WalkPlanShape {
  bool matched = false;
  bool biased = false;  ///< body carries a kWalkBias op (node2vec)
  std::uint64_t layer_salt = 0;
  value_t bias_p = 1.0;
  value_t bias_q = 1.0;
};

/// Matches `plan`'s body against kBuildQ(kOnePerVertex) → kSpgemm →
/// [kWalkBias] → kNormalize(kRow) → kItsSample(kMatrixRows, s = 1,
/// kLocalRow, stacked) → kWalkAdvance with matching slot wiring. Only
/// unlowered explicit-round stop-on-empty plans match; the epilogue is
/// unconstrained (it runs through the regular op path).
WalkPlanShape match_walk_plan(const SamplePlan& plan);

/// node2vec (Grover & Leskovec 2016) second-order bias: candidate == the
/// previous vertex → 1/p (return), a neighbor of it → 1 (BFS-like), else
/// 1/q (DFS-like). `prev_row` is the previous vertex's sorted neighbor
/// list; all ids must share one id space.
inline value_t node2vec_bias_factor(index_t cand, index_t prev,
                                    std::span<const index_t> prev_row,
                                    value_t p, value_t q) {
  if (cand == prev) return static_cast<value_t>(1.0) / p;
  if (std::binary_search(prev_row.begin(), prev_row.end(), cand)) {
    return static_cast<value_t>(1.0);
  }
  return static_cast<value_t>(1.0) / q;
}

class WalkEngine {
 public:
  /// Builds the engine's (optionally relabeled) adjacency copy. `adj` is
  /// borrowed and must outlive the engine (second-order bias reads the
  /// original rows for the sorted-neighbor membership test).
  WalkEngine(const CsrMatrix& adj, const WalkEngineOptions& opts);

  bool relabeled() const { return !identity_; }
  index_t num_buckets() const { return num_buckets_; }
  const VertexRelabeling& relabeling() const { return relab_; }

  /// Runs all walk rounds fused. `walkers` / `visited` are the plan's
  /// per-batch frontier / visited lists in original vertex ids (walkers in,
  /// final positions out; visited appended per survivor in walker order —
  /// exactly the matrix path's kWalkAdvance contract). `prev` is the plan's
  /// previous-vertex slot for biased plans (nullptr otherwise). `steps`, if
  /// non-null, is incremented once per surviving walker per round (the
  /// edges/s numerator of bench/micro_walk).
  void run(std::vector<std::vector<index_t>>& walkers,
           std::vector<std::vector<index_t>>& visited,
           std::vector<std::vector<index_t>>* prev,
           const std::vector<index_t>& batch_ids, index_t first_batch,
           std::uint64_t epoch_seed, index_t rounds, const WalkPlanShape& shape,
           Workspace& ws, std::uint64_t* steps) const;

 private:
  index_t map_v(index_t old_id) const {
    return identity_ ? old_id : relab_.map(old_id);
  }
  index_t unmap_v(index_t new_id) const {
    return identity_ ? new_id : relab_.unmap(new_id);
  }
  value_t unit_total(index_t deg) const;
  const std::vector<value_t>& unit_prefix(index_t deg) const;

  const CsrMatrix* orig_ = nullptr;
  VertexRelabeling relab_;
  bool identity_ = true;
  /// Every adjacency value is exactly 1.0 (the unweighted common case):
  /// normalized rows are the constant 1/deg, so the per-pick scan needs no
  /// memory traffic beyond the drawn prefix.
  bool unit_weights_ = false;
  // Position-preserving engine CSR (see header comment).
  std::vector<nnz_t> rowptr_;
  std::vector<index_t> cols_;
  std::vector<value_t> vals_;
  // Cache bucketing: bucket id per (new) vertex, by CSR byte ranges.
  std::vector<index_t> vbucket_;
  index_t num_buckets_ = 1;
  /// Memoized fl-accumulated total of a normalized unit-weight row per
  /// degree (0.0 = not yet computed; totals are always positive). Lazily
  /// filled; the engine is driven serially (the Workspace contract).
  mutable std::vector<value_t> unit_total_;
  /// Memoized fl-accumulated prefixes of a normalized unit-weight row per
  /// degree: unit_prefix_[d][k] is 1/d added (k+1) times with intermediate
  /// rounding — the exact values the matrix path's linear ITS scan compares
  /// against. Binary-searching them picks the identical index in O(log d)
  /// instead of a serially-dependent O(pick) float-add chain, which on hub
  /// rows is the difference between a cache fight and an FP-latency wall.
  mutable std::vector<std::vector<value_t>> unit_prefix_;
};

}  // namespace dms
