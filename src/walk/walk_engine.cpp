#include "walk/walk_engine.hpp"

#include "common/rng.hpp"

namespace dms {

WalkPlanShape match_walk_plan(const SamplePlan& plan) {
  WalkPlanShape shape;
  if (plan.distributed || plan.rounds_from_fanouts ||
      !plan.stop_on_empty_frontier) {
    return shape;
  }
  if (plan.frontier_slot == kNoSlot || plan.visited_slot == kNoSlot) return shape;
  const auto& ops = plan.body;
  if (ops.size() != 5 && ops.size() != 6) return shape;
  std::size_t i = 0;
  const PlanOp& build = ops[i++];
  if (build.kind != PlanOpKind::kBuildQ || build.qmode != QMode::kOnePerVertex ||
      build.in != plan.frontier_slot) {
    return shape;
  }
  const PlanOp& mul = ops[i++];
  if (mul.kind != PlanOpKind::kSpgemm || mul.in != build.out) return shape;
  bool biased = false;
  value_t p = 1.0, q = 1.0;
  if (ops[i].kind == PlanOpKind::kWalkBias) {
    const PlanOp& bias = ops[i++];
    if (bias.in != mul.out || bias.in2 != build.out2 ||
        plan.prev_slot == kNoSlot) {
      return shape;
    }
    biased = true;
    p = bias.bias_p;
    q = bias.bias_q;
  }
  if (i + 3 != ops.size()) return shape;
  const PlanOp& norm = ops[i++];
  if (norm.kind != PlanOpKind::kNormalize || norm.norm != NormMode::kRow ||
      norm.in != mul.out) {
    return shape;
  }
  const PlanOp& its = ops[i++];
  if (its.kind != PlanOpKind::kItsSample ||
      its.source != SampleSource::kMatrixRows || its.fixed_s != 1 ||
      its.seed.row != SeedRowTerm::kLocalRow || its.in != mul.out ||
      its.in2 != build.out2) {
    return shape;
  }
  const PlanOp& adv = ops[i++];
  if (adv.kind != PlanOpKind::kWalkAdvance || adv.in != its.out ||
      adv.in2 != build.out2) {
    return shape;
  }
  shape.matched = true;
  shape.biased = biased;
  shape.layer_salt = its.seed.layer_salt;
  shape.bias_p = p;
  shape.bias_q = q;
  return shape;
}

WalkEngine::WalkEngine(const CsrMatrix& adj, const WalkEngineOptions& opts)
    : orig_(&adj) {
  check(adj.rows() == adj.cols(), "WalkEngine: adjacency not square");
  const index_t n = adj.rows();
  identity_ = !opts.relabel || n < opts.relabel_min_vertices;
  if (!identity_) relab_ = degree_sorted_relabeling(adj);

  // Position-preserving engine copy: row `nu` is the adjacency row of
  // unmap(nu) with every column replaced by its new id but kept in the
  // original (old-id ascending) order — so entry k is the same logical
  // neighbor in both id spaces and the ITS pick index carries over.
  rowptr_.assign(static_cast<std::size_t>(n) + 1, 0);
  cols_.resize(static_cast<std::size_t>(adj.nnz()));
  vals_.resize(static_cast<std::size_t>(adj.nnz()));
  unit_weights_ = true;
  index_t max_deg = 0;
  std::size_t out = 0;
  for (index_t nu = 0; nu < n; ++nu) {
    const index_t v = unmap_v(nu);
    const auto rcols = adj.row_cols(v);
    const auto rvals = adj.row_vals(v);
    for (std::size_t k = 0; k < rcols.size(); ++k) {
      cols_[out + k] = map_v(rcols[k]);
      vals_[out + k] = rvals[k];
      unit_weights_ = unit_weights_ && rvals[k] == 1.0;
    }
    out += rcols.size();
    rowptr_[static_cast<std::size_t>(nu) + 1] = static_cast<nnz_t>(out);
    max_deg = std::max(max_deg, static_cast<index_t>(rcols.size()));
  }
  unit_total_.assign(static_cast<std::size_t>(max_deg) + 1, 0.0);
  unit_prefix_.resize(static_cast<std::size_t>(max_deg) + 1);

  // Bucket vertices by contiguous CSR byte ranges: processing a bucket's
  // walkers together keeps its adjacency slice cache-resident. After the
  // degree sort the hottest rows land in bucket 0.
  vbucket_.assign(static_cast<std::size_t>(n), 0);
  num_buckets_ = 1;
  if (opts.bucket_bytes > 0 && n > 0) {
    const std::size_t per_edge = sizeof(index_t) + sizeof(value_t);
    index_t b = 0;
    std::size_t start = 0;
    for (index_t nu = 0; nu < n; ++nu) {
      const std::size_t begin_bytes =
          static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(nu)]) *
          per_edge;
      if (begin_bytes - start >= opts.bucket_bytes) {
        ++b;
        start = begin_bytes;
      }
      vbucket_[static_cast<std::size_t>(nu)] = b;
    }
    num_buckets_ = b + 1;
  }
}

value_t WalkEngine::unit_total(index_t deg) const {
  value_t& t = unit_total_[static_cast<std::size_t>(deg)];
  if (t == 0.0) {
    // The fl-accumulated total of a normalized unit row depends only on the
    // degree: deg additions of 1/deg, exactly the prefix build of the
    // matrix path.
    const value_t inv = 1.0 / static_cast<value_t>(deg);
    value_t acc = 0.0;
    for (index_t k = 0; k < deg; ++k) acc += inv;
    t = acc;
  }
  return t;
}

const std::vector<value_t>& WalkEngine::unit_prefix(index_t deg) const {
  std::vector<value_t>& pre = unit_prefix_[static_cast<std::size_t>(deg)];
  if (pre.empty()) {
    // prefix[k] = 1/deg added (k+1) times, rounding after every addition —
    // the running sums the linear scan would compare against u. Only the
    // first deg-1 entries are ever compared (no match falls through to the
    // last index), so that's all we store.
    pre.resize(static_cast<std::size_t>(deg) - 1);
    const value_t inv = 1.0 / static_cast<value_t>(deg);
    value_t acc = 0.0;
    for (index_t k = 0; k + 1 < deg; ++k) {
      acc += inv;
      pre[static_cast<std::size_t>(k)] = acc;
    }
  }
  return pre;
}

void WalkEngine::run(std::vector<std::vector<index_t>>& walkers,
                     std::vector<std::vector<index_t>>& visited,
                     std::vector<std::vector<index_t>>* prev,
                     const std::vector<index_t>& batch_ids, index_t first_batch,
                     std::uint64_t epoch_seed, index_t rounds,
                     const WalkPlanShape& shape, Workspace& ws,
                     std::uint64_t* steps) const {
  check(walkers.size() == visited.size(), "WalkEngine: walker/visited mismatch");
  WalkScratch& sc = ws.walk_scratch();
  const std::size_t nb = walkers.size();

  // Flatten the per-batch walker lists into batch-grouped flat state
  // (engine id space). prev = -1: no previous step yet, so the first round
  // of a biased plan draws unbiased — the matrix path's empty prev lists.
  sc.cur.clear();
  sc.bof.clear();
  sc.prev.clear();
  for (std::size_t b = 0; b < nb; ++b) {
    for (const index_t v : walkers[b]) {
      sc.cur.push_back(map_v(v));
      sc.bof.push_back(static_cast<index_t>(b));
      sc.prev.push_back(-1);
    }
  }
  std::size_t live = sc.cur.size();
  sc.nxt.resize(live);

  for (index_t round = 0; round < rounds && live > 0; ++round) {
    const std::uint64_t round_term =
        static_cast<std::uint64_t>(round) + shape.layer_salt;
    // Per-batch walker offsets: the ITS local-row seed term is the walker's
    // position within its batch's stack (walkers stay batch-grouped).
    sc.off.assign(nb + 1, 0);
    for (std::size_t w = 0; w < live; ++w) {
      ++sc.off[static_cast<std::size_t>(sc.bof[w]) + 1];
    }
    for (std::size_t b = 0; b < nb; ++b) sc.off[b + 1] += sc.off[b];

    // Stable counting sort of walkers into vertex-bucket order. Only the
    // processing order changes — each walker's draw is fully determined by
    // its seed, so results are independent of the bucketing.
    const bool bucketed = num_buckets_ > 1;
    if (bucketed) {
      sc.bucket_start.assign(static_cast<std::size_t>(num_buckets_) + 1, 0);
      for (std::size_t w = 0; w < live; ++w) {
        ++sc.bucket_start[static_cast<std::size_t>(
            vbucket_[static_cast<std::size_t>(sc.cur[w])]) + 1];
      }
      for (index_t b = 0; b < num_buckets_; ++b) {
        sc.bucket_start[static_cast<std::size_t>(b) + 1] +=
            sc.bucket_start[static_cast<std::size_t>(b)];
      }
      // Placement pass doubles as a gather: walker state lands in
      // bucket-ordered arrays (sequential reads, one streaming write head
      // per bucket), so the pick loop below never chases sc.cur/bof/off
      // through the processing order — its only random traffic is the
      // adjacency rows that bucketing keeps cache-resident.
      sc.order.resize(live);
      sc.gcur.resize(live);
      sc.gbof.resize(live);
      sc.glrow.resize(live);
      if (shape.biased) sc.gprev.resize(live);
      for (std::size_t w = 0; w < live; ++w) {
        const auto b = static_cast<std::size_t>(
            vbucket_[static_cast<std::size_t>(sc.cur[w])]);
        const auto slot = static_cast<std::size_t>(sc.bucket_start[b]++);
        sc.order[slot] = static_cast<index_t>(w);
        sc.gcur[slot] = sc.cur[w];
        sc.gbof[slot] = sc.bof[w];
        sc.glrow[slot] = static_cast<index_t>(w) -
                         sc.off[static_cast<std::size_t>(sc.bof[w])];
        if (shape.biased) sc.gprev[slot] = sc.prev[w];
      }
    }

    for (std::size_t pos = 0; pos < live; ++pos) {
      const auto w = bucketed ? static_cast<std::size_t>(sc.order[pos]) : pos;
      const index_t r = bucketed ? sc.gcur[pos] : sc.cur[pos];
      const nnz_t rb = rowptr_[static_cast<std::size_t>(r)];
      const auto deg = static_cast<index_t>(
          rowptr_[static_cast<std::size_t>(r) + 1] - rb);
      if (deg == 0) {  // sink vertex: the walk terminates
        sc.nxt[w] = -1;
        continue;
      }
      const auto b =
          static_cast<std::size_t>(bucketed ? sc.gbof[pos] : sc.bof[pos]);
      const auto bid = static_cast<std::uint64_t>(
          batch_ids[static_cast<std::size_t>(first_batch) + b]);
      const auto lrow = static_cast<std::uint64_t>(
          bucketed ? sc.glrow[pos] : static_cast<index_t>(pos) - sc.off[b]);
      const std::uint64_t seed = derive_seed(epoch_seed, bid, round_term, lrow);

      const index_t prev_new =
          !shape.biased ? -1 : (bucketed ? sc.gprev[pos] : sc.prev[pos]);
      if (shape.biased && prev_new >= 0) {
        // Second-order pick: bias each candidate, then replicate the
        // normalize + single-draw float ops over the biased values. The
        // membership test runs in the original id space, where the
        // previous vertex's neighbor list is sorted.
        const auto orig_cols = orig_->row_cols(unmap_v(r));
        const auto prev_row = orig_->row_cols(unmap_v(prev_new));
        sc.raw.resize(static_cast<std::size_t>(deg));
        for (index_t k = 0; k < deg; ++k) {
          sc.raw[static_cast<std::size_t>(k)] =
              vals_[static_cast<std::size_t>(rb) + static_cast<std::size_t>(k)] *
              node2vec_bias_factor(orig_cols[static_cast<std::size_t>(k)],
                                   unmap_v(prev_new), prev_row, shape.bias_p,
                                   shape.bias_q);
        }
        value_t ssum = 0.0;
        for (index_t k = 0; k < deg; ++k) ssum += sc.raw[static_cast<std::size_t>(k)];
        // normalize_rows leaves an all-zero-sum row unchanged.
        const value_t inv = ssum == 0.0 ? 1.0 : 1.0 / ssum;
        const bool scale = ssum != 0.0;
        value_t total = 0.0;
        for (index_t k = 0; k < deg; ++k) {
          const value_t raw = sc.raw[static_cast<std::size_t>(k)];
          total += std::max(scale ? raw * inv : raw, static_cast<value_t>(0.0));
        }
        if (total <= 0.0) {
          sc.nxt[w] = -1;
          continue;
        }
        if (deg == 1) {
          sc.nxt[w] = cols_[static_cast<std::size_t>(rb)];
          continue;
        }
        Pcg32 rng(seed, 0x175);
        const value_t u = static_cast<value_t>(rng.uniform()) * total;
        value_t acc = 0.0;
        index_t idx = deg - 1;
        for (index_t k = 0; k < deg; ++k) {
          const value_t raw = sc.raw[static_cast<std::size_t>(k)];
          acc += std::max(scale ? raw * inv : raw, static_cast<value_t>(0.0));
          if (acc > u) {
            idx = k;
            break;
          }
        }
        sc.nxt[w] =
            cols_[static_cast<std::size_t>(rb) + static_cast<std::size_t>(idx)];
        continue;
      }

      if (unit_weights_) {
        // Unit-weight fast path: the normalized row is the constant 1/deg,
        // and the running sums the matrix path's linear scan compares
        // against u depend only on the degree — binary-searching the
        // memoized prefix finds the first sum > u, the identical index,
        // without the O(pick) serially-dependent float-add chain.
        if (deg == 1) {  // single neighbor: taken without consuming a draw
          sc.nxt[w] = cols_[static_cast<std::size_t>(rb)];
          continue;
        }
        const value_t total = unit_total(deg);
        Pcg32 rng(seed, 0x175);
        const value_t u = static_cast<value_t>(rng.uniform()) * total;
        const std::vector<value_t>& pre = unit_prefix(deg);
        const auto it = std::upper_bound(pre.begin(), pre.end(), u);
        const auto idx = it == pre.end()
                             ? static_cast<std::size_t>(deg) - 1
                             : static_cast<std::size_t>(it - pre.begin());
        sc.nxt[w] = cols_[static_cast<std::size_t>(rb) + idx];
        continue;
      }

      // Weighted unbiased pick: same float ops as normalize + the ITS
      // single-draw fast path, streamed off the engine row.
      value_t ssum = 0.0;
      for (index_t k = 0; k < deg; ++k) {
        ssum += vals_[static_cast<std::size_t>(rb) + static_cast<std::size_t>(k)];
      }
      const value_t inv = ssum == 0.0 ? 1.0 : 1.0 / ssum;
      const bool scale = ssum != 0.0;
      value_t total = 0.0;
      for (index_t k = 0; k < deg; ++k) {
        const value_t v =
            vals_[static_cast<std::size_t>(rb) + static_cast<std::size_t>(k)];
        total += std::max(scale ? v * inv : v, static_cast<value_t>(0.0));
      }
      if (total <= 0.0) {
        sc.nxt[w] = -1;
        continue;
      }
      if (deg == 1) {
        sc.nxt[w] = cols_[static_cast<std::size_t>(rb)];
        continue;
      }
      Pcg32 rng(seed, 0x175);
      const value_t u = static_cast<value_t>(rng.uniform()) * total;
      value_t acc = 0.0;
      index_t idx = deg - 1;
      for (index_t k = 0; k < deg; ++k) {
        const value_t v =
            vals_[static_cast<std::size_t>(rb) + static_cast<std::size_t>(k)];
        acc += std::max(scale ? v * inv : v, static_cast<value_t>(0.0));
        if (acc > u) {
          idx = k;
          break;
        }
      }
      sc.nxt[w] =
          cols_[static_cast<std::size_t>(rb) + static_cast<std::size_t>(idx)];
    }

    // Merge survivors back in walker order (forward compaction, j <= w):
    // visited appends match the matrix path's per-batch row order exactly.
    std::size_t j = 0;
    for (std::size_t w = 0; w < live; ++w) {
      if (sc.nxt[w] < 0) continue;
      visited[static_cast<std::size_t>(sc.bof[w])].push_back(unmap_v(sc.nxt[w]));
      if (steps != nullptr) ++*steps;
      const index_t from = sc.cur[w];
      sc.cur[j] = sc.nxt[w];
      sc.prev[j] = from;
      sc.bof[j] = sc.bof[w];
      ++j;
    }
    live = j;
  }

  // Write the surviving walkers (and their previous vertices) back to the
  // plan's per-batch lists, in original ids.
  for (std::size_t b = 0; b < nb; ++b) {
    walkers[b].clear();
    if (prev != nullptr) (*prev)[b].clear();
  }
  for (std::size_t w = 0; w < live; ++w) {
    const auto b = static_cast<std::size_t>(sc.bof[w]);
    walkers[b].push_back(unmap_v(sc.cur[w]));
    if (prev != nullptr) (*prev)[b].push_back(unmap_v(sc.prev[w]));
  }
}

}  // namespace dms
