#include "common/log.hpp"

namespace dms {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

void log_message(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  const char* tag = "";
  switch (level) {
    case LogLevel::kDebug: tag = "DEBUG"; break;
    case LogLevel::kInfo: tag = "INFO "; break;
    case LogLevel::kWarn: tag = "WARN "; break;
    case LogLevel::kError: tag = "ERROR"; break;
    case LogLevel::kOff: return;
  }
  std::fprintf(stderr, "[dms %s] %s\n", tag, msg.c_str());
}

}  // namespace dms
