// Deterministic, splittable random number generation.
//
// Distributed sampling must be reproducible across process counts: a p-rank
// run derives independent per-rank/per-minibatch streams from one root seed
// via SplitMix64, so tests can compare a 1-rank and a p-rank execution of the
// same logical sampler.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace dms {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used both as a stream
/// splitter and as the seeding function for Pcg32.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// PCG32 (O'Neill): small fast PRNG with good statistical quality.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    next();
    state_ += splitmix64(seed);
    next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next()) * (1.0 / 4294967296.0);
  }

  /// Uniform double in [0, hi).
  double uniform(double hi) { return uniform() * hi; }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint32_t bounded(std::uint32_t n) {
    std::uint64_t m = static_cast<std::uint64_t>(next()) * n;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < n) {
      std::uint32_t t = -n % n;
      while (lo < t) {
        m = static_cast<std::uint64_t>(next()) * n;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  /// Uniform index in [0, n). n must be positive and fit in 32 bits for the
  /// fast path; larger ranges use rejection over 64 bits.
  index_t bounded64(index_t n) {
    if (n <= 0) return 0;
    if (n <= 0xffffffffLL) return static_cast<index_t>(bounded(static_cast<std::uint32_t>(n)));
    // 64-bit rejection sampling.
    const auto un = static_cast<std::uint64_t>(n);
    const std::uint64_t lim = ~0ULL - (~0ULL % un);
    std::uint64_t v;
    do {
      v = (static_cast<std::uint64_t>(next()) << 32) | next();
    } while (v >= lim);
    return static_cast<index_t>(v % un);
  }

  /// Standard normal via Box-Muller (used for synthetic feature generation).
  double normal() {
    double u1 = 0.0;
    while (u1 <= 1e-12) u1 = uniform();
    return box_muller(u1, uniform());
  }

 private:
  static double box_muller(double u1, double u2);

  std::uint32_t next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
  }

  std::uint64_t state_;
  std::uint64_t inc_;
};

/// Derives a child seed for a named logical stream (rank, batch, layer, ...).
inline std::uint64_t derive_seed(std::uint64_t root, std::uint64_t a,
                                 std::uint64_t b = 0, std::uint64_t c = 0) {
  return splitmix64(splitmix64(splitmix64(root ^ a) + b) ^ (c * 0x9e3779b97f4a7c15ULL));
}

}  // namespace dms
