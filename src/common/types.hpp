// Fundamental scalar/index types and small helpers shared by every module.
#pragma once

#include <cstdint>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace dms {

/// Vertex / row / column index. Signed 64-bit so that Papers-scale graphs
/// (1.6B edges in the paper) index safely and differences are well-defined.
using index_t = std::int64_t;

/// Nonzero-count type (same width as index_t; kept distinct for readability).
using nnz_t = std::int64_t;

/// Value type used for probabilities and sparse values.
using value_t = double;

/// Feature/embedding scalar. fp32 as in the paper (§7.1).
using feat_t = float;

/// Error thrown on contract violations in public APIs.
class DmsError : public std::runtime_error {
 public:
  explicit DmsError(const std::string& what) : std::runtime_error(what) {}
};

/// Checks a precondition on a public API boundary; throws DmsError on failure.
inline void check(bool cond, const std::string& msg) {
  if (!cond) throw DmsError(msg);
}

/// Integer ceiling division for non-negative values.
constexpr index_t ceil_div(index_t a, index_t b) { return (a + b - 1) / b; }

}  // namespace dms
