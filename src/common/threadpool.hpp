// Simple fork-join thread pool used to execute simulated ranks in parallel.
//
// The simulator's supersteps are embarrassingly parallel across ranks
// (bulk-synchronous SPMD), so the only primitive needed is parallel_for.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace dms {

/// Fixed-size pool executing parallel_for loops. Construction spawns the
/// workers; destruction joins them. A pool with 0 or 1 threads degrades to
/// serial execution (useful for deterministic timing runs).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for i in [0, n), statically chunked across the pool plus the
  /// calling thread. Blocks until all iterations complete. Exceptions from
  /// fn propagate to the caller (first one wins).
  void parallel_for(index_t n, const std::function<void(index_t)>& fn);

  /// Shared process-wide pool sized to the hardware.
  static ThreadPool& global();

  /// Resolves the pool size from a DMS_THREADS-style value: a fully-numeric
  /// positive integer pins the size; anything else (null, empty, zero,
  /// negative, trailing garbage, overflow) logs a warning and falls back to
  /// `hardware` (itself clamped to >= 1). Exposed for the regression tests —
  /// global() feeds it getenv("DMS_THREADS").
  static int resolve_pool_size(const char* env, int hardware);

 private:
  struct Task {
    const std::function<void(index_t)>* fn = nullptr;
    index_t begin = 0;
    index_t end = 0;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<Task> tasks_;
  int pending_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
};

}  // namespace dms
