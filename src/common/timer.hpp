// Wall-clock timing utilities used by the simulator to measure per-rank
// local compute inside bulk-synchronous supersteps.
#pragma once

#include <chrono>

namespace dms {

/// Monotonic stopwatch measuring seconds.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across multiple start/stop windows (e.g. the per-phase
/// breakdowns of Figure 7: probability / sampling / extraction).
class Stopwatch {
 public:
  void start() { timer_.reset(); running_ = true; }
  void stop() {
    if (running_) total_ += timer_.seconds();
    running_ = false;
  }
  void add(double sec) { total_ += sec; }
  double total() const { return total_; }
  void reset() { total_ = 0.0; running_ = false; }

 private:
  Timer timer_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace dms
