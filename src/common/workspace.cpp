#include "common/workspace.hpp"

#include <string>

namespace dms {

namespace {

template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

std::vector<index_t> WalkScratch::take_list() {
  if (list_pool_.empty()) return {};
  std::vector<index_t> v = std::move(list_pool_.back());
  list_pool_.pop_back();
  v.clear();
  return v;
}

void WalkScratch::put_list(std::vector<index_t>&& v) {
  list_pool_.push_back(std::move(v));
}

std::size_t WalkScratch::bytes() const {
  std::size_t b = vec_bytes(cur) + vec_bytes(nxt) + vec_bytes(prev) +
                  vec_bytes(bof) + vec_bytes(off) + vec_bytes(order) +
                  vec_bytes(bucket_start) + vec_bytes(gcur) + vec_bytes(gbof) +
                  vec_bytes(glrow) + vec_bytes(gprev) + vec_bytes(raw) +
                  vec_bytes(list_pool_);
  for (const auto& l : list_pool_) b += vec_bytes(l);
  return b;
}

std::size_t WorkspaceSlot::bytes() const {
  return vec_bytes(row_nnz) + vec_bytes(colidx) + vec_bytes(vals) +
         vec_bytes(mark) + vec_bytes(touched) + vec_bytes(acc) +
         vec_bytes(hash_keys) + vec_bytes(hash_used) + vec_bytes(hash_vals) +
         vec_bytes(flags);
}

void Workspace::ensure_slots(std::size_t n) {
#ifndef NDEBUG
  check(!frozen_ || n <= slots_.size(),
        "Workspace: steady-state violation — ensure_slots(" + std::to_string(n) +
            ") would grow a frozen arena of " + std::to_string(slots_.size()) +
            " slots (warm up with a representative workload before freezing)");
#endif
  while (slots_.size() < n) {
    slots_.push_back(std::make_unique<WorkspaceSlot>());
  }
}

void Workspace::freeze() {
  frozen_ = true;
  frozen_bytes_ = bytes_held();
  frozen_slots_ = slots_.size();
}

void Workspace::thaw() { frozen_ = false; }

void Workspace::check_steady([[maybe_unused]] const char* where) const {
#ifndef NDEBUG
  if (!frozen_) return;
  check(slots_.size() == frozen_slots_ && bytes_held() <= frozen_bytes_,
        std::string(where) +
            ": steady-state violation — frozen workspace grew from " +
            std::to_string(frozen_bytes_) + " to " +
            std::to_string(bytes_held()) + " bytes (slots " +
            std::to_string(frozen_slots_) + " -> " +
            std::to_string(slots_.size()) +
            "); warm up with a representative workload before freezing");
#endif
}

std::size_t Workspace::bytes_held() const {
  std::size_t b = vec_bytes(shared_prefix_) + vec_bytes(shared_lookup_) +
                  walk_.bytes();
  for (const auto& s : slots_) b += s->bytes();
  return b;
}

}  // namespace dms
