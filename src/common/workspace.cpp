#include "common/workspace.hpp"

namespace dms {

namespace {

template <typename T>
std::size_t vec_bytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

}  // namespace

std::size_t WorkspaceSlot::bytes() const {
  return vec_bytes(row_nnz) + vec_bytes(colidx) + vec_bytes(vals) +
         vec_bytes(mark) + vec_bytes(touched) + vec_bytes(acc) +
         vec_bytes(hash_keys) + vec_bytes(hash_used) + vec_bytes(hash_vals) +
         vec_bytes(flags);
}

void Workspace::ensure_slots(std::size_t n) {
  while (slots_.size() < n) {
    slots_.push_back(std::make_unique<WorkspaceSlot>());
  }
}

std::size_t Workspace::bytes_held() const {
  std::size_t b = vec_bytes(shared_prefix_) + vec_bytes(shared_lookup_);
  for (const auto& s : slots_) b += s->bytes();
  return b;
}

}  // namespace dms
