#include "common/threadpool.hpp"

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>

#include "common/log.hpp"

namespace dms {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(0, num_threads - 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || (!tasks_.empty() && epoch_ != seen_epoch); });
      if (stop_ && tasks_.empty()) return;
      if (tasks_.empty()) { seen_epoch = epoch_; continue; }
      task = tasks_.back();
      tasks_.pop_back();
    }
    try {
      for (index_t i = task.begin; i < task.end; ++i) (*task.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(index_t n, const std::function<void(index_t)>& fn) {
  if (n <= 0) return;
  const int threads = size();
  if (threads <= 1 || n == 1) {
    for (index_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const index_t chunks = std::min<index_t>(n, threads);
  const index_t chunk_size = ceil_div(n, chunks);
  // The caller executes chunk 0; the pool executes the rest.
  {
    std::lock_guard<std::mutex> lock(mu_);
    error_ = nullptr;
    for (index_t c = 1; c < chunks; ++c) {
      Task t;
      t.fn = &fn;
      t.begin = c * chunk_size;
      t.end = std::min<index_t>(n, (c + 1) * chunk_size);
      if (t.begin < t.end) {
        tasks_.push_back(t);
        ++pending_;
      }
    }
    ++epoch_;
  }
  cv_.notify_all();
  std::exception_ptr local_error;
  try {
    for (index_t i = 0; i < std::min<index_t>(chunk_size, n); ++i) fn(i);
  } catch (...) {
    local_error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
    if (!local_error && error_) local_error = error_;
  }
  if (local_error) std::rethrow_exception(local_error);
}

int ThreadPool::resolve_pool_size(const char* env, int hardware) {
  const int fallback = std::max(1, hardware);
  if (env == nullptr) return fallback;
  // A silently-accepted typo ("4x", "O4") used to atoi to a nonsensical pool
  // size or fall through without a trace; parse strictly and say what
  // happened instead.
  errno = 0;
  char* end = nullptr;
  const long n = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') {
    DMS_LOG_WARN("DMS_THREADS='" + std::string(env) +
                 "' is not an integer; using " + std::to_string(fallback) +
                 " threads");
    return fallback;
  }
  if (errno == ERANGE || n <= 0 || n > INT_MAX) {
    DMS_LOG_WARN("DMS_THREADS='" + std::string(env) +
                 "' is out of range (need a positive int); using " +
                 std::to_string(fallback) + " threads");
    return fallback;
  }
  return static_cast<int>(n);
}

ThreadPool& ThreadPool::global() {
  // DMS_THREADS pins the pool size (CI runs the pipeline suites at 1 and 4
  // to lock in thread-count determinism); default is the hardware size.
  static ThreadPool pool(resolve_pool_size(
      std::getenv("DMS_THREADS"),
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()))));
  return pool;
}

}  // namespace dms
