// Minimal leveled logging. Benchmarks print structured tables themselves;
// this logger is for diagnostics and progress lines.
#pragma once

#include <cstdio>
#include <string>

namespace dms {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold (default Info). Not thread-synchronized by design:
/// set once at startup.
LogLevel& log_level();

void log_message(LogLevel level, const std::string& msg);

#define DMS_LOG_DEBUG(msg) ::dms::log_message(::dms::LogLevel::kDebug, (msg))
#define DMS_LOG_INFO(msg) ::dms::log_message(::dms::LogLevel::kInfo, (msg))
#define DMS_LOG_WARN(msg) ::dms::log_message(::dms::LogLevel::kWarn, (msg))
#define DMS_LOG_ERROR(msg) ::dms::log_message(::dms::LogLevel::kError, (msg))

}  // namespace dms
