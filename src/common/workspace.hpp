// Reusable scratch arena for the sampling/training hot path (DESIGN.md §7).
//
// Every hot kernel of the sampling loop — the SpGEMM engine's symbolic
// prefixes and per-block accumulators, ITS's per-row prefix/picked/chosen
// scratch — needs the same few temporary buffers on every invocation. A
// Workspace keeps those buffers alive between calls so steady-state epochs
// pay no scratch allocations: buffers grow to the high-water mark of the
// workload on the first epoch and are reused (vector::assign / clear keep
// capacity) from then on.
//
// Layout: one Workspace holds
//  - a few *shared* buffers used serially before/after a kernel's parallel
//    region (flop prefixes, block bounds, the masked-kernel column lookup);
//  - an array of *slots*, one per parallel block. Slot i is touched only by
//    the worker executing block i, so slots need no synchronization; the
//    kernel calls ensure_slots(nblocks) serially before fanning out.
//
// Ownership & thread-safety contract: a Workspace may serve ONE kernel
// invocation at a time (kernels on the same Workspace must be sequenced).
// Samplers own a private Workspace and pass it to every kernel they call;
// nested kernel calls (e.g. the 1.5D SpGEMM's per-panel products) are
// sequential, so sharing one Workspace across them is safe. Slot buffer
// *contents* are undefined between invocations — each user re-establishes
// its own state (see the hash-table invariant in spgemm_engine.cpp for the
// one deliberate exception).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace dms {

/// Per-parallel-block scratch bundle. Members are named for their primary
/// user but deliberately generic: sequential kernels may reuse any buffer
/// whose element type fits (ITS uses `vals` for row prefix sums, `touched`
/// for picked indices, `colidx` for staged output columns).
/// Walk-engine scratch (DESIGN.md §11): the flat walker-state arrays of the
/// fused walk kernel plus a pool of per-batch id-list buffers that the plan
/// executor swaps into a walk plan's persistent slots (frontier / visited /
/// prev) for the duration of a run. Both live in the sampler's Workspace so
/// steady-state walk epochs — and frozen serving — allocate only results:
/// the flats grow to the walker high-water mark once, and the list pool
/// retains each per-batch vector's capacity between runs.
struct WalkScratch {
  // Flat per-walker state, compacted every round (fused engine).
  std::vector<index_t> cur;    ///< current vertex (engine id space)
  std::vector<index_t> nxt;    ///< picked next vertex or -1 (dead)
  std::vector<index_t> prev;   ///< previous vertex (second-order walks)
  std::vector<index_t> bof;    ///< owning batch of each walker
  std::vector<index_t> off;    ///< per-batch walker offsets (batches + 1)
  std::vector<index_t> order;  ///< bucket-sorted processing order
  std::vector<index_t> bucket_start;  ///< counting-sort bucket cursors
  // Walker state gathered into bucket order (cur / batch / seed row / prev):
  // the bucketed pick loop streams these sequentially so its only random
  // memory traffic is the adjacency rows the bucketing keeps cache-resident.
  std::vector<index_t> gcur;
  std::vector<index_t> gbof;
  std::vector<index_t> glrow;
  std::vector<index_t> gprev;
  std::vector<value_t> raw;    ///< biased/weighted per-candidate row values

  /// Checks out a cleared list buffer (pool hit keeps its capacity).
  std::vector<index_t> take_list();
  /// Returns a list buffer to the pool, retaining its capacity.
  void put_list(std::vector<index_t>&& v);

  /// Bytes currently reserved (flats + pooled lists).
  std::size_t bytes() const;

 private:
  std::vector<std::vector<index_t>> list_pool_;
};

struct WorkspaceSlot {
  // Staged per-block output (SpGEMM numeric phase, ITS fill pass).
  std::vector<nnz_t> row_nnz;
  std::vector<index_t> colidx;
  std::vector<value_t> vals;
  // Dense / masked accumulator state (mark + value + touched list).
  std::vector<index_t> mark;
  std::vector<index_t> touched;
  std::vector<value_t> acc;
  // Hash accumulator state. Invariant maintained by its user: every key
  // slot is empty outside a hash-kernel block (so reuse never rehashes).
  std::vector<index_t> hash_keys;
  std::vector<index_t> hash_used;
  std::vector<value_t> hash_vals;
  // Byte flags (ITS `chosen` scratch).
  std::vector<char> flags;

  /// Bytes currently reserved by this slot's buffers.
  std::size_t bytes() const;
};

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Grows the slot array to at least n slots. Must be called serially
  /// (before a parallel region); existing slots keep their buffers.
  void ensure_slots(std::size_t n);

  // --- steady-state mode (DESIGN.md §10) ------------------------------------
  // Online serving warms the arena on a few representative requests, then
  // freezes it: freeze() records the high-water mark (held bytes + slot
  // count), and from then on the arena is expected never to grow — request
  // handling after warmup is allocation-free. Debug builds enforce the
  // contract: ensure_slots beyond the frozen count throws immediately, and
  // check_steady() (called by the serve engine after each coalesced batch)
  // throws if any buffer grew past the mark. Release builds skip the checks
  // (an under-warmed arena degrades to growing silently, never to wrong
  // results); callers can still compare bytes_held() against frozen_bytes().

  /// Enters steady-state mode, recording the current high-water mark.
  void freeze();
  /// Leaves steady-state mode (e.g. before a reconfiguration).
  void thaw();
  bool frozen() const { return frozen_; }
  /// Bytes held when freeze() was called (0 when never frozen).
  std::size_t frozen_bytes() const { return frozen_bytes_; }

  /// Debug-asserts the steady-state contract: no slot growth and no buffer
  /// growth since freeze(). No-op when not frozen or in release builds.
  void check_steady(const char* where) const;

  /// Slot i (i < num_slots()). Distinct slots may be used concurrently;
  /// references stay valid across ensure_slots growth.
  WorkspaceSlot& slot(std::size_t i) { return *slots_[i]; }

  std::size_t num_slots() const { return slots_.size(); }

  /// Shared serial-phase buffers (one kernel invocation at a time).
  std::vector<nnz_t>& shared_prefix() { return shared_prefix_; }
  std::vector<index_t>& shared_lookup() { return shared_lookup_; }

  /// Walk-engine scratch (same one-invocation-at-a-time contract; the walk
  /// kernel is serial, so no per-slot isolation is needed).
  WalkScratch& walk_scratch() { return walk_; }

  /// Total bytes held across shared buffers and all slots (observability;
  /// the steady-state value is the workload's scratch high-water mark).
  std::size_t bytes_held() const;

 private:
  std::vector<std::unique_ptr<WorkspaceSlot>> slots_;
  std::vector<nnz_t> shared_prefix_;
  std::vector<index_t> shared_lookup_;
  WalkScratch walk_;
  bool frozen_ = false;
  std::size_t frozen_bytes_ = 0;
  std::size_t frozen_slots_ = 0;
};

}  // namespace dms
