// Dense float GEMM kernels for the propagation step (§6.2) — the CPU
// stand-in for cuBLAS.
//
// The product kernels are register-/cache-blocked panel kernels (DESIGN.md
// §7): the output is cut into fixed-size row panels (parallelized over the
// global thread pool) and each panel into MR×NR register tiles whose
// accumulators live in vector registers across the whole k loop. The k loop
// is strictly serial and ascending for every output element, so the blocked
// kernels are bit-identical to the scalar reference kernels below and to
// each other across tile shapes, instruction sets, and thread counts.
// On x86-64 the tile microkernel is dispatched at runtime (AVX-512 → AVX2 →
// scalar reference); elsewhere the reference kernels run as-is.
//
// The elementwise epilogues (axpy / relu / bias) parallelize over fixed
// element ranges — trivially bit-identical at any thread count. column_sums
// reduces fixed 128-row blocks serially combined in ascending block order:
// deterministic and thread-count-independent (see DESIGN.md §7 for why this
// fixed order, not the thread decomposition, defines the result).
#pragma once

#include "sparse/dense.hpp"

namespace dms {

/// C = A·B, A (m×k), B (k×n).
DenseF matmul(const DenseF& a, const DenseF& b);

/// C = Aᵀ·B, A (k×m), B (k×n) → (m×n). Used for weight gradients.
DenseF matmul_tn(const DenseF& a, const DenseF& b);

/// C = A·Bᵀ, A (m×k), B (n×k) → (m×n). Used for input gradients.
DenseF matmul_nt(const DenseF& a, const DenseF& b);

/// Scalar serial reference kernels (the pre-blocking implementations).
/// The blocked kernels above are bit-identical to these by construction;
/// tests and bench/micro_gemm pin that contract down and measure the gap.
DenseF matmul_reference(const DenseF& a, const DenseF& b);
DenseF matmul_tn_reference(const DenseF& a, const DenseF& b);
DenseF matmul_nt_reference(const DenseF& a, const DenseF& b);

/// Name of the tile microkernel the runtime dispatcher selected
/// ("avx512" / "avx2" / "scalar") — bench/test observability.
const char* matmul_kernel_name();

/// C += alpha * A (same shape).
void axpy(DenseF& c, const DenseF& a, float alpha);

/// In-place ReLU; returns nothing. Backward masks via the *output*.
void relu_inplace(DenseF& a);

/// dX = dY ∘ [Y > 0] in place on dy, given the forward output y.
void relu_backward_inplace(DenseF& dy, const DenseF& y);

/// Adds a row vector bias (1×n) to every row of a (m×n).
void add_bias_inplace(DenseF& a, const DenseF& bias);

/// Column sums of a (m×n) → (1×n). Bias gradient. Deterministic fixed-order
/// block reduction: rows are summed in 128-row blocks and the block partials
/// combined in ascending block order, independent of the thread count.
DenseF column_sums(const DenseF& a);

/// Approximate FLOP count of matmul (2·m·k·n) — simulator accounting.
double matmul_flops(index_t m, index_t k, index_t n);

}  // namespace dms
