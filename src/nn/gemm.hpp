// Dense float GEMM kernels for the propagation step (§6.2). Row-parallel
// straightforward loops — the CPU stand-in for cuBLAS.
#pragma once

#include "sparse/dense.hpp"

namespace dms {

/// C = A·B, A (m×k), B (k×n).
DenseF matmul(const DenseF& a, const DenseF& b);

/// C = Aᵀ·B, A (k×m), B (k×n) → (m×n). Used for weight gradients.
DenseF matmul_tn(const DenseF& a, const DenseF& b);

/// C = A·Bᵀ, A (m×k), B (n×k) → (m×n). Used for input gradients.
DenseF matmul_nt(const DenseF& a, const DenseF& b);

/// C += alpha * A (same shape).
void axpy(DenseF& c, const DenseF& a, float alpha);

/// In-place ReLU; returns nothing. Backward masks via the *output*.
void relu_inplace(DenseF& a);

/// dX = dY ∘ [Y > 0] in place on dy, given the forward output y.
void relu_backward_inplace(DenseF& dy, const DenseF& y);

/// Adds a row vector bias (1×n) to every row of a (m×n).
void add_bias_inplace(DenseF& a, const DenseF& bias);

/// Column sums of a (m×n) → (1×n). Bias gradient.
DenseF column_sums(const DenseF& a);

/// Approximate FLOP count of matmul (2·m·k·n) — simulator accounting.
double matmul_flops(index_t m, index_t k, index_t n);

}  // namespace dms
