// Optimizers operating on flat lists of (param, grad) tensor pairs.
#pragma once

#include <vector>

#include "sparse/dense.hpp"

namespace dms {

struct ParamGrad {
  DenseF* param = nullptr;
  DenseF* grad = nullptr;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(const std::vector<ParamGrad>& params) = 0;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f) : lr_(lr), momentum_(momentum) {}
  void step(const std::vector<ParamGrad>& params) override;

 private:
  float lr_;
  float momentum_;
  std::vector<DenseF> velocity_;
};

/// Adam (Kingma & Ba 2015) — the optimizer used by the OGB GraphSAGE
/// reference configurations.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void step(const std::vector<ParamGrad>& params) override;

 private:
  float lr_, beta1_, beta2_, eps_;
  int t_ = 0;
  std::vector<DenseF> m_, v_;
};

}  // namespace dms
