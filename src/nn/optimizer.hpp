// Optimizers operating on flat lists of (param, grad) tensor pairs.
#pragma once

#include <iosfwd>
#include <vector>

#include "sparse/dense.hpp"

namespace dms {

struct ParamGrad {
  DenseF* param = nullptr;
  DenseF* grad = nullptr;
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual void step(const std::vector<ParamGrad>& params) = 0;
  /// Stable identifier of the concrete optimizer, recorded in checkpoints so
  /// a restore into a differently-configured pipeline is rejected.
  virtual const char* kind() const = 0;
  /// Serializes the mutable state (moment tensors, step counter) so a
  /// restored optimizer continues bit-identically. Hyperparameters are NOT
  /// saved — they come from the pipeline config the restore validates.
  virtual void save_state(std::ostream& os) const = 0;
  virtual void load_state(std::istream& is) = 0;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(float lr, float momentum = 0.0f) : lr_(lr), momentum_(momentum) {}
  void step(const std::vector<ParamGrad>& params) override;
  const char* kind() const override { return "sgd"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  float lr_;
  float momentum_;
  std::vector<DenseF> velocity_;
};

/// Adam (Kingma & Ba 2015) — the optimizer used by the OGB GraphSAGE
/// reference configurations.
class Adam : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}
  void step(const std::vector<ParamGrad>& params) override;
  const char* kind() const override { return "adam"; }
  void save_state(std::ostream& os) const override;
  void load_state(std::istream& is) override;

 private:
  float lr_, beta1_, beta2_, eps_;
  int t_ = 0;
  std::vector<DenseF> m_, v_;
};

}  // namespace dms
