// Softmax cross-entropy loss for node classification.
#pragma once

#include <vector>

#include "sparse/dense.hpp"

namespace dms {

struct LossResult {
  double loss = 0.0;       ///< mean negative log-likelihood
  DenseF dlogits;          ///< gradient w.r.t. logits (already divided by N)
  index_t correct = 0;     ///< argmax == label count
};

/// logits: (N × C); labels: N class ids in [0, C).
LossResult softmax_cross_entropy(const DenseF& logits, const std::vector<int>& labels);

}  // namespace dms
