#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

namespace dms {

LossResult softmax_cross_entropy(const DenseF& logits, const std::vector<int>& labels) {
  check(static_cast<std::size_t>(logits.rows()) == labels.size(),
        "softmax_cross_entropy: label count mismatch");
  const index_t n = logits.rows();
  const index_t c = logits.cols();
  LossResult res;
  res.dlogits = DenseF(n, c);
  if (n == 0) return res;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (index_t i = 0; i < n; ++i) {
    const float* row = logits.row(i);
    const int label = labels[static_cast<std::size_t>(i)];
    check(label >= 0 && label < c, "softmax_cross_entropy: label out of range");
    float mx = row[0];
    index_t arg = 0;
    for (index_t j = 1; j < c; ++j) {
      if (row[j] > mx) {
        mx = row[j];
        arg = j;
      }
    }
    if (arg == label) ++res.correct;
    double denom = 0.0;
    for (index_t j = 0; j < c; ++j) denom += std::exp(static_cast<double>(row[j] - mx));
    const double logp = static_cast<double>(row[label] - mx) - std::log(denom);
    res.loss -= logp;
    float* drow = res.dlogits.row(i);
    for (index_t j = 0; j < c; ++j) {
      const auto p = static_cast<float>(std::exp(static_cast<double>(row[j] - mx)) / denom);
      drow[j] = (p - (j == label ? 1.0f : 0.0f)) * inv_n;
    }
  }
  res.loss /= static_cast<double>(n);
  return res;
}

}  // namespace dms
