// Multi-layer GraphSAGE model over sampled minibatches (the §6.2 propagation
// step; paper architecture in Table 4).
#pragma once

#include <cstdint>
#include <vector>

#include "core/sampler.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/sage_layer.hpp"

namespace dms {

struct ModelConfig {
  index_t in_dim = 32;
  index_t hidden = 32;    ///< paper: 256
  index_t num_classes = 16;
  index_t num_layers = 3; ///< must match the sampler's layer count
  std::uint64_t seed = 11;
};

class SageModel {
 public:
  explicit SageModel(const ModelConfig& config);

  /// Forward over a sampled minibatch. h_input holds the input features of
  /// sample.input_vertices() (last frontier × in_dim). Returns batch logits.
  /// caches (optional) retains activations for backward().
  DenseF forward(const MinibatchSample& sample, const DenseF& h_input,
                 std::vector<SageLayerCache>* caches) const;

  /// Backpropagates dlogits through the cached activations, accumulating
  /// parameter gradients.
  void backward(const MinibatchSample& sample, const DenseF& dlogits,
                const std::vector<SageLayerCache>& caches);

  /// Convenience: forward + loss + backward. Gradients accumulate; call
  /// zero_grads() between steps.
  LossResult train_step(const MinibatchSample& sample, const DenseF& h_input,
                        const std::vector<int>& batch_labels);

  void zero_grads();

  /// Scales all gradients by 1/d (data-parallel averaging across d ranks).
  void scale_grads(float inv_d);

  /// Adds another model's gradients into this one (the all-reduce sum).
  void accumulate_grads_from(const SageModel& other);

  std::vector<ParamGrad> params();
  std::size_t param_bytes() const;

  const ModelConfig& config() const { return config_; }
  std::vector<SageLayer>& layers() { return layers_; }

 private:
  ModelConfig config_;
  std::vector<SageLayer> layers_;
};

}  // namespace dms
