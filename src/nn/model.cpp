#include "nn/model.hpp"

#include "common/rng.hpp"
#include "nn/gemm.hpp"

namespace dms {

SageModel::SageModel(const ModelConfig& config) : config_(config) {
  check(config.num_layers >= 1, "SageModel: need at least one layer");
  for (index_t l = 0; l < config.num_layers; ++l) {
    const index_t in = l == 0 ? config.in_dim : config.hidden;
    const index_t out = l == config.num_layers - 1 ? config.num_classes : config.hidden;
    layers_.emplace_back(in, out, derive_seed(config.seed, static_cast<std::uint64_t>(l)));
  }
}

DenseF SageModel::forward(const MinibatchSample& sample, const DenseF& h_input,
                          std::vector<SageLayerCache>* caches) const {
  check(sample.num_layers() == config_.num_layers,
        "SageModel::forward: sample depth != model depth");
  check(h_input.rows() ==
            static_cast<index_t>(sample.input_vertices().size()),
        "SageModel::forward: input feature row mismatch");
  if (caches != nullptr) caches->resize(layers_.size());

  // Model layer m consumes sampled adjacency layers[L-1-m]: the deepest
  // sampled layer feeds the first weight layer.
  DenseF h = h_input;
  for (std::size_t m = 0; m < layers_.size(); ++m) {
    const LayerSample& ls = sample.layers[layers_.size() - 1 - m];
    const bool is_last = m + 1 == layers_.size();
    SageLayerCache* cache = caches != nullptr ? &(*caches)[m] : nullptr;
    SageLayerCache local;
    h = layers_[m].forward(ls.adj, h, /*relu=*/!is_last,
                           cache != nullptr ? cache : &local);
  }
  return h;
}

void SageModel::backward(const MinibatchSample& sample, const DenseF& dlogits,
                         const std::vector<SageLayerCache>& caches) {
  check(caches.size() == layers_.size(), "SageModel::backward: cache mismatch");
  (void)sample;
  DenseF d = dlogits;
  for (std::size_t m = layers_.size(); m-- > 0;) {
    d = layers_[m].backward(d, caches[m]);
  }
}

LossResult SageModel::train_step(const MinibatchSample& sample, const DenseF& h_input,
                                 const std::vector<int>& batch_labels) {
  std::vector<SageLayerCache> caches;
  const DenseF logits = forward(sample, h_input, &caches);
  LossResult res = softmax_cross_entropy(logits, batch_labels);
  backward(sample, res.dlogits, caches);
  return res;
}

void SageModel::zero_grads() {
  for (auto& l : layers_) l.zero_grads();
}

void SageModel::scale_grads(float inv_d) {
  for (auto& l : layers_) {
    for (DenseF* g : {&l.grad_w_self(), &l.grad_w_neigh(), &l.grad_bias()}) {
      float* d = g->data();
      for (std::size_t i = 0; i < g->size(); ++i) d[i] *= inv_d;
    }
  }
}

void SageModel::accumulate_grads_from(const SageModel& other) {
  check(other.layers_.size() == layers_.size(), "accumulate_grads: depth mismatch");
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    auto& mine = layers_[l];
    auto& theirs = const_cast<SageModel&>(other).layers_[l];
    axpy(mine.grad_w_self(), theirs.grad_w_self(), 1.0f);
    axpy(mine.grad_w_neigh(), theirs.grad_w_neigh(), 1.0f);
    axpy(mine.grad_bias(), theirs.grad_bias(), 1.0f);
  }
}

std::vector<ParamGrad> SageModel::params() {
  std::vector<ParamGrad> out;
  for (auto& l : layers_) {
    out.push_back({&l.w_self(), &l.grad_w_self()});
    out.push_back({&l.w_neigh(), &l.grad_w_neigh()});
    out.push_back({&l.bias(), &l.grad_bias()});
  }
  return out;
}

std::size_t SageModel::param_bytes() const {
  std::size_t b = 0;
  for (const auto& l : layers_) b += l.param_bytes();
  return b;
}

}  // namespace dms
