// GraphSAGE-mean layer with manual forward/backward (the propagation step of
// §6.2, replacing PyG's SAGEConv).
//
//   Z = ReLU( H_self · W_self  +  mean_agg(A_s, H_in) · W_neigh  +  bias )
//
// H_in holds embeddings for the layer's frontier (column space of the
// sampled adjacency A_s). By the frontier convention (core/sampler.hpp) the
// first R frontier entries are the output ("self") vertices, so
// H_self = H_in[0:R). mean_agg row-normalizes A_s and multiplies (SpMM).
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace dms {

/// Per-call activations retained for the backward pass.
struct SageLayerCache {
  CsrMatrix norm_adj;  ///< row-normalized sampled adjacency
  DenseF h_in;         ///< layer input (frontier × in_dim)
  DenseF h_neigh;      ///< aggregated neighborhood (rows × in_dim)
  DenseF out;          ///< layer output after activation (rows × out_dim)
  bool relu = true;
};

class SageLayer {
 public:
  SageLayer(index_t in_dim, index_t out_dim, std::uint64_t seed);

  /// adj: (rows × frontier) sampled adjacency; h_in: (frontier × in_dim).
  /// Returns (rows × out_dim); fills cache for backward().
  DenseF forward(const CsrMatrix& adj, const DenseF& h_in, bool relu,
                 SageLayerCache* cache) const;

  /// d_out: gradient w.r.t. this layer's output. Accumulates parameter
  /// gradients and returns the gradient w.r.t. h_in (frontier × in_dim).
  DenseF backward(const DenseF& d_out, const SageLayerCache& cache);

  index_t in_dim() const { return w_self_.rows(); }
  index_t out_dim() const { return w_self_.cols(); }

  // Parameters and accumulated gradients (exposed for the optimizer and the
  // data-parallel gradient all-reduce).
  DenseF& w_self() { return w_self_; }
  DenseF& w_neigh() { return w_neigh_; }
  DenseF& bias() { return bias_; }
  DenseF& grad_w_self() { return g_w_self_; }
  DenseF& grad_w_neigh() { return g_w_neigh_; }
  DenseF& grad_bias() { return g_bias_; }

  void zero_grads();

  /// Bytes of all parameters (for the gradient all-reduce cost).
  std::size_t param_bytes() const {
    return (w_self_.size() + w_neigh_.size() + bias_.size()) * sizeof(float);
  }

 private:
  DenseF w_self_, w_neigh_, bias_;
  DenseF g_w_self_, g_w_neigh_, g_bias_;
};

}  // namespace dms
