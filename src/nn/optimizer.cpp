#include "nn/optimizer.hpp"

#include <cmath>

namespace dms {

void Sgd::step(const std::vector<ParamGrad>& params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const auto& pg : params) {
      velocity_.emplace_back(pg.param->rows(), pg.param->cols());
    }
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    DenseF& p = *params[k].param;
    const DenseF& g = *params[k].grad;
    DenseF& v = velocity_[k];
    float* pd = p.data();
    const float* gd = g.data();
    float* vd = v.data();
    for (std::size_t i = 0; i < p.size(); ++i) {
      vd[i] = momentum_ * vd[i] + gd[i];
      pd[i] -= lr_ * vd[i];
    }
  }
}

void Adam::step(const std::vector<ParamGrad>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const auto& pg : params) {
      m_.emplace_back(pg.param->rows(), pg.param->cols());
      v_.emplace_back(pg.param->rows(), pg.param->cols());
    }
    t_ = 0;
  }
  ++t_;
  const auto t = static_cast<float>(t_);
  const float bc1 = 1.0f - std::pow(beta1_, t);
  const float bc2 = 1.0f - std::pow(beta2_, t);
  for (std::size_t k = 0; k < params.size(); ++k) {
    DenseF& p = *params[k].param;
    const DenseF& g = *params[k].grad;
    float* pd = p.data();
    const float* gd = g.data();
    float* md = m_[k].data();
    float* vd = v_[k].data();
    for (std::size_t i = 0; i < p.size(); ++i) {
      md[i] = beta1_ * md[i] + (1.0f - beta1_) * gd[i];
      vd[i] = beta2_ * vd[i] + (1.0f - beta2_) * gd[i] * gd[i];
      const float mhat = md[i] / bc1;
      const float vhat = vd[i] / bc2;
      pd[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace dms
