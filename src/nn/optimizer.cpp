#include "nn/optimizer.hpp"

#include <cmath>
#include <cstdint>
#include <istream>
#include <ostream>

#include "common/types.hpp"

namespace dms {

namespace {

// Optimizer-state tensors serialize as [rows i64][cols i64][raw float bits],
// the same little-endian raw-bits idiom as graph/io.cpp; float bits round-trip
// exactly, which the bit-identical-resume guarantee depends on.
void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::int64_t read_i64(std::istream& is, const char* what) {
  std::int64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  check(static_cast<bool>(is), std::string("optimizer state: truncated ") + what);
  return v;
}

void write_tensor(std::ostream& os, const DenseF& t) {
  write_i64(os, t.rows());
  write_i64(os, t.cols());
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
}

DenseF read_tensor(std::istream& is) {
  const std::int64_t rows = read_i64(is, "tensor rows");
  const std::int64_t cols = read_i64(is, "tensor cols");
  check(rows >= 0 && cols >= 0, "optimizer state: negative tensor shape");
  DenseF t(static_cast<index_t>(rows), static_cast<index_t>(cols));
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  check(static_cast<bool>(is), "optimizer state: truncated tensor data");
  return t;
}

void write_tensors(std::ostream& os, const std::vector<DenseF>& ts) {
  write_i64(os, static_cast<std::int64_t>(ts.size()));
  for (const DenseF& t : ts) write_tensor(os, t);
}

std::vector<DenseF> read_tensors(std::istream& is) {
  const std::int64_t n = read_i64(is, "tensor count");
  check(n >= 0, "optimizer state: negative tensor count");
  std::vector<DenseF> ts;
  ts.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) ts.push_back(read_tensor(is));
  return ts;
}

}  // namespace

void Sgd::step(const std::vector<ParamGrad>& params) {
  if (velocity_.size() != params.size()) {
    velocity_.clear();
    for (const auto& pg : params) {
      velocity_.emplace_back(pg.param->rows(), pg.param->cols());
    }
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    DenseF& p = *params[k].param;
    const DenseF& g = *params[k].grad;
    DenseF& v = velocity_[k];
    float* pd = p.data();
    const float* gd = g.data();
    float* vd = v.data();
    for (std::size_t i = 0; i < p.size(); ++i) {
      vd[i] = momentum_ * vd[i] + gd[i];
      pd[i] -= lr_ * vd[i];
    }
  }
}

void Sgd::save_state(std::ostream& os) const { write_tensors(os, velocity_); }

void Sgd::load_state(std::istream& is) { velocity_ = read_tensors(is); }

void Adam::step(const std::vector<ParamGrad>& params) {
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (const auto& pg : params) {
      m_.emplace_back(pg.param->rows(), pg.param->cols());
      v_.emplace_back(pg.param->rows(), pg.param->cols());
    }
    t_ = 0;
  }
  ++t_;
  const auto t = static_cast<float>(t_);
  const float bc1 = 1.0f - std::pow(beta1_, t);
  const float bc2 = 1.0f - std::pow(beta2_, t);
  for (std::size_t k = 0; k < params.size(); ++k) {
    DenseF& p = *params[k].param;
    const DenseF& g = *params[k].grad;
    float* pd = p.data();
    const float* gd = g.data();
    float* md = m_[k].data();
    float* vd = v_[k].data();
    for (std::size_t i = 0; i < p.size(); ++i) {
      md[i] = beta1_ * md[i] + (1.0f - beta1_) * gd[i];
      vd[i] = beta2_ * vd[i] + (1.0f - beta2_) * gd[i] * gd[i];
      const float mhat = md[i] / bc1;
      const float vhat = vd[i] / bc2;
      pd[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::save_state(std::ostream& os) const {
  write_i64(os, t_);
  write_tensors(os, m_);
  write_tensors(os, v_);
}

void Adam::load_state(std::istream& is) {
  const std::int64_t t = read_i64(is, "adam step counter");
  check(t >= 0, "optimizer state: negative adam step counter");
  t_ = static_cast<int>(t);
  m_ = read_tensors(is);
  v_ = read_tensors(is);
  check(m_.size() == v_.size(), "optimizer state: adam moment count mismatch");
}

}  // namespace dms
