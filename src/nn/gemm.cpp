#include "nn/gemm.hpp"

#include "common/threadpool.hpp"

namespace dms {

DenseF matmul(const DenseF& a, const DenseF& b) {
  check(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  DenseF c(a.rows(), b.cols());
  const index_t k = a.cols();
  const index_t n = b.cols();
  ThreadPool::global().parallel_for(a.rows(), [&](index_t i) {
    float* crow = c.row(i);
    const float* arow = a.row(i);
    for (index_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.row(kk);
      for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
  return c;
}

DenseF matmul_tn(const DenseF& a, const DenseF& b) {
  check(a.rows() == b.rows(), "matmul_tn: inner dimension mismatch");
  DenseF c(a.cols(), b.cols());
  const index_t m = a.cols();
  const index_t n = b.cols();
  // Serial over the contraction dimension (deterministic accumulation),
  // parallel over output rows.
  ThreadPool::global().parallel_for(m, [&](index_t i) {
    float* crow = c.row(i);
    for (index_t kk = 0; kk < a.rows(); ++kk) {
      const float av = a(kk, i);
      if (av == 0.0f) continue;
      const float* brow = b.row(kk);
      for (index_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  });
  return c;
}

DenseF matmul_nt(const DenseF& a, const DenseF& b) {
  check(a.cols() == b.cols(), "matmul_nt: inner dimension mismatch");
  DenseF c(a.rows(), b.rows());
  const index_t n = b.rows();
  const index_t k = a.cols();
  ThreadPool::global().parallel_for(a.rows(), [&](index_t i) {
    float* crow = c.row(i);
    const float* arow = a.row(i);
    for (index_t j = 0; j < n; ++j) {
      const float* brow = b.row(j);
      float s = 0.0f;
      for (index_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      crow[j] = s;
    }
  });
  return c;
}

void axpy(DenseF& c, const DenseF& a, float alpha) {
  check(c.rows() == a.rows() && c.cols() == a.cols(), "axpy: shape mismatch");
  float* cd = c.data();
  const float* ad = a.data();
  for (std::size_t i = 0; i < c.size(); ++i) cd[i] += alpha * ad[i];
}

void relu_inplace(DenseF& a) {
  float* d = a.data();
  for (std::size_t i = 0; i < a.size(); ++i) d[i] = d[i] > 0.0f ? d[i] : 0.0f;
}

void relu_backward_inplace(DenseF& dy, const DenseF& y) {
  check(dy.rows() == y.rows() && dy.cols() == y.cols(), "relu_backward: shape mismatch");
  float* dd = dy.data();
  const float* yd = y.data();
  for (std::size_t i = 0; i < dy.size(); ++i) {
    if (yd[i] <= 0.0f) dd[i] = 0.0f;
  }
}

void add_bias_inplace(DenseF& a, const DenseF& bias) {
  check(bias.rows() == 1 && bias.cols() == a.cols(), "add_bias: shape mismatch");
  const float* b = bias.row(0);
  for (index_t i = 0; i < a.rows(); ++i) {
    float* row = a.row(i);
    for (index_t j = 0; j < a.cols(); ++j) row[j] += b[j];
  }
}

DenseF column_sums(const DenseF& a) {
  DenseF s(1, a.cols());
  float* sd = s.row(0);
  for (index_t i = 0; i < a.rows(); ++i) {
    const float* row = a.row(i);
    for (index_t j = 0; j < a.cols(); ++j) sd[j] += row[j];
  }
  return s;
}

double matmul_flops(index_t m, index_t k, index_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) * static_cast<double>(n);
}

}  // namespace dms
