#include "nn/gemm.hpp"

#include <algorithm>

#include "common/threadpool.hpp"

// Blocked panel kernels (DESIGN.md §7). Determinism contract: every output
// element accumulates its k contributions strictly in ascending k order, in
// every kernel variant, tile shape, and remainder path below. IEEE float
// add/mul are exact operations, so fixing the order fixes the bits: the
// blocked kernels are bit-identical to the scalar references and to each
// other. The build sets -ffp-contract=off so no compiler may fuse a*b+c
// into an FMA (which rounds once instead of twice and would change bits
// between ISAs).
//
// The references skip a==0.0f contributions (cheap for ReLU-sparse
// activations); the vector tiles add them. This cannot change bits either:
// accumulators start at +0.0f, and x + (±0) == x for every x reachable here
// except x == -0.0f, which no accumulation chain can produce (the first
// nonzero contribution makes x nonzero, and (+0) + (−0) == +0).

namespace dms {

namespace {

/// Rows per parallel panel. Fixed — the decomposition (and therefore the
/// work split, though not the results, which are split-independent) does not
/// depend on the thread count.
constexpr index_t kPanelRows = 64;

// ---------------------------------------------------------------------------
// Scalar kernels (the pre-blocking implementations), restricted to a column
// range so the blocked kernels can reuse them for tile remainders.
// ---------------------------------------------------------------------------

/// c[0..m)[j0..j1) += a·b, k ascending. c must be zero-initialized.
void nn_scalar(const float* a, index_t lda, const float* b, index_t ldb,
               float* c, index_t ldc, index_t m, index_t k, index_t j0,
               index_t j1) {
  for (index_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    const float* arow = a + i * lda;
    for (index_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b + kk * ldb;
      for (index_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
    }
  }
}

/// c[0..m)[j0..j1) += aᵀ·b: a is (k × m-panel), av = a[kk][i].
void tn_scalar(const float* a, index_t lda, const float* b, index_t ldb,
               float* c, index_t ldc, index_t m, index_t k, index_t j0,
               index_t j1) {
  for (index_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    for (index_t kk = 0; kk < k; ++kk) {
      const float av = a[kk * lda + i];
      if (av == 0.0f) continue;
      const float* brow = b + kk * ldb;
      for (index_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
    }
  }
}

/// c[0..m)[j0..j1) = a·bᵀ: serial dot products, k ascending.
void nt_scalar(const float* a, index_t lda, const float* b, index_t ldb,
               float* c, index_t ldc, index_t m, index_t k, index_t j0,
               index_t j1) {
  for (index_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    const float* arow = a + i * lda;
    for (index_t j = j0; j < j1; ++j) {
      const float* brow = b + j * ldb;
      float s = 0.0f;
      for (index_t kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      crow[j] = s;
    }
  }
}

// ---------------------------------------------------------------------------
// Vector-register tile microkernels (x86-64 GCC/Clang). One shared body,
// stamped per ISA through target attributes; runtime dispatch picks the
// widest supported variant, falling back to the scalar kernels.
// ---------------------------------------------------------------------------

#if (defined(__GNUC__) || defined(__clang__)) && defined(__x86_64__)
#define DMS_GEMM_TILE_DISPATCH 1

// 8-lane float vector with element alignment only: dereferencing through
// this type emits unaligned moves (vmovups), which row strides require.
// Wider (64-byte) vector types are deliberately not used — GCC does not
// reliably honor the reduced-alignment typedef for them and can emit
// aligned zmm moves that fault on odd strides.
typedef float v8sf __attribute__((vector_size(32), aligned(4)));

/// MR × (NV·8) register tile over a row panel: the C tile lives in vector
/// registers across the whole k loop (the naive kernel's per-k C row
/// store/load traffic is what caps it at ~half of machine peak). TA selects
/// the Aᵀ·B addressing. Remainders (m % MR rows, n % NR columns) run the
/// scalar kernels over their sub-range — same k order, so same bits.
template <int MR, int NV, bool TA>
__attribute__((always_inline)) inline void mm_tile_body(
    const float* a, index_t lda, const float* b, index_t ldb, float* c,
    index_t ldc, index_t m, index_t k, index_t n) {
  constexpr index_t NR = NV * 8;
  // Column panel outer, row tile inner: the k×NR panel of B stays
  // cache-resident while every row tile of this (≤ kPanelRows-row) panel
  // sweeps it, so B's memory traffic shrinks by the row-tile count — the
  // difference between ~L1 streaming and DRAM once B outgrows L2. Loop
  // interchange cannot change bits: each C element still accumulates its
  // own k chain in ascending order.
  const index_t m_tiled = m - m % MR;
  index_t j0 = 0;
  for (; j0 + NR <= n; j0 += NR) {
    for (index_t i0 = 0; i0 < m_tiled; i0 += MR) {
      v8sf acc[MR][NV];
      for (int mi = 0; mi < MR; ++mi)
        for (int nv = 0; nv < NV; ++nv) acc[mi][nv] = (v8sf){};
      const float* bp = b + j0;
      for (index_t kk = 0; kk < k; ++kk, bp += ldb) {
        v8sf bv[NV];
        for (int nv = 0; nv < NV; ++nv)
          bv[nv] = *reinterpret_cast<const v8sf*>(bp + 8 * nv);
        for (int mi = 0; mi < MR; ++mi) {
          const float s =
              TA ? a[kk * lda + (i0 + mi)] : a[(i0 + mi) * lda + kk];
          const v8sf av = {s, s, s, s, s, s, s, s};
          for (int nv = 0; nv < NV; ++nv) acc[mi][nv] += av * bv[nv];
        }
      }
      for (int mi = 0; mi < MR; ++mi)
        for (int nv = 0; nv < NV; ++nv)
          *reinterpret_cast<v8sf*>(c + (i0 + mi) * ldc + j0 + 8 * nv) =
              acc[mi][nv];
    }
  }
  if (j0 < n && m_tiled > 0) {  // column remainder of the tiled rows
    if (TA) {
      tn_scalar(a, lda, b, ldb, c, ldc, m_tiled, k, j0, n);
    } else {
      nn_scalar(a, lda, b, ldb, c, ldc, m_tiled, k, j0, n);
    }
  }
  if (m_tiled < m) {  // row remainder
    if (TA) {
      tn_scalar(a + m_tiled, lda, b, ldb, c + m_tiled * ldc, ldc, m - m_tiled,
                k, 0, n);
    } else {
      nn_scalar(a + m_tiled * lda, lda, b, ldb, c + m_tiled * ldc, ldc,
                m - m_tiled, k, 0, n);
    }
  }
}

#define DMS_GEMM_ARGS                                                    \
  const float *a, index_t lda, const float *b, index_t ldb, float *c,    \
      index_t ldc, index_t m, index_t k, index_t n
#define DMS_GEMM_PASS a, lda, b, ldb, c, ldc, m, k, n

__attribute__((target("avx2"))) void nn_avx2(DMS_GEMM_ARGS) {
  mm_tile_body<4, 2, false>(DMS_GEMM_PASS);
}
__attribute__((target("avx512f"))) void nn_avx512(DMS_GEMM_ARGS) {
  // MR = 8 divides kPanelRows, so full panels never hit the scalar row
  // remainder (AVX-512 doubles the register file; the 16 ymm accumulators
  // still fit).
  mm_tile_body<8, 2, false>(DMS_GEMM_PASS);
}
__attribute__((target("avx2"))) void tn_avx2(DMS_GEMM_ARGS) {
  mm_tile_body<4, 2, true>(DMS_GEMM_PASS);
}
__attribute__((target("avx512f"))) void tn_avx512(DMS_GEMM_ARGS) {
  mm_tile_body<8, 2, true>(DMS_GEMM_PASS);
}
#endif  // DMS_GEMM_TILE_DISPATCH

void nn_panel_scalar(const float* a, index_t lda, const float* b, index_t ldb,
                     float* c, index_t ldc, index_t m, index_t k, index_t n) {
  nn_scalar(a, lda, b, ldb, c, ldc, m, k, 0, n);
}
void tn_panel_scalar(const float* a, index_t lda, const float* b, index_t ldb,
                     float* c, index_t ldc, index_t m, index_t k, index_t n) {
  tn_scalar(a, lda, b, ldb, c, ldc, m, k, 0, n);
}

using PanelFn = void (*)(const float*, index_t, const float*, index_t, float*,
                         index_t, index_t, index_t, index_t);

struct TileKernels {
  PanelFn nn;
  PanelFn tn;
  const char* name;
};

const TileKernels& tile_kernels() {
  static const TileKernels k = [] {
#ifdef DMS_GEMM_TILE_DISPATCH
    if (__builtin_cpu_supports("avx512f")) {
      return TileKernels{nn_avx512, tn_avx512, "avx512"};
    }
    if (__builtin_cpu_supports("avx2")) {
      return TileKernels{nn_avx2, tn_avx2, "avx2"};
    }
#endif
    return TileKernels{nn_panel_scalar, tn_panel_scalar, "scalar"};
  }();
  return k;
}

/// A·Bᵀ register tile: dot products stay serial over k (the reference
/// order), so no vector accumulation is possible — the win is register
/// reuse: each k step loads MR + NR scalars for MR·NR multiply-adds.
template <int MR, int NR>
void nt_tile(const float* a, index_t lda, const float* b, index_t ldb, float* c,
             index_t ldc, index_t m, index_t k, index_t n) {
  index_t i0 = 0;
  for (; i0 + MR <= m; i0 += MR) {
    index_t j0 = 0;
    for (; j0 + NR <= n; j0 += NR) {
      float acc[MR][NR] = {};
      const float* ar[MR];
      const float* br[NR];
      for (int mi = 0; mi < MR; ++mi) ar[mi] = a + (i0 + mi) * lda;
      for (int nj = 0; nj < NR; ++nj) br[nj] = b + (j0 + nj) * ldb;
      for (index_t kk = 0; kk < k; ++kk) {
        for (int mi = 0; mi < MR; ++mi) {
          const float av = ar[mi][kk];
          for (int nj = 0; nj < NR; ++nj) acc[mi][nj] += av * br[nj][kk];
        }
      }
      for (int mi = 0; mi < MR; ++mi)
        for (int nj = 0; nj < NR; ++nj) c[(i0 + mi) * ldc + j0 + nj] = acc[mi][nj];
    }
    if (j0 < n) nt_scalar(a + i0 * lda, lda, b, ldb, c + i0 * ldc, ldc, MR, k, j0, n);
  }
  if (i0 < m) nt_scalar(a + i0 * lda, lda, b, ldb, c + i0 * ldc, ldc, m - i0, k, 0, n);
}

/// Runs panel_fn over fixed kPanelRows row panels of the m output rows,
/// in parallel when there is more than one panel.
template <typename Fn>
void for_panels(index_t m, Fn&& panel_fn) {
  const index_t panels = m > 0 ? ceil_div(m, kPanelRows) : 0;
  if (panels <= 1) {
    if (panels == 1) panel_fn(0, m);
    return;
  }
  ThreadPool::global().parallel_for(panels, [&](index_t p) {
    const index_t r0 = p * kPanelRows;
    panel_fn(r0, std::min<index_t>(m, r0 + kPanelRows));
  });
}

/// Fixed-size element-range parallelization for the epilogues. Elementwise
/// updates are order-free, so any split is bit-identical; small tensors stay
/// serial to skip the fork-join overhead.
constexpr std::size_t kEpilogueBlock = std::size_t{1} << 15;

template <typename Fn>
void for_ranges(std::size_t total, Fn&& body) {
  if (total == 0) return;
  if (total <= kEpilogueBlock) {
    body(std::size_t{0}, total);
    return;
  }
  const auto nblocks =
      static_cast<index_t>((total + kEpilogueBlock - 1) / kEpilogueBlock);
  ThreadPool::global().parallel_for(nblocks, [&](index_t blk) {
    const std::size_t lo = static_cast<std::size_t>(blk) * kEpilogueBlock;
    body(lo, std::min(total, lo + kEpilogueBlock));
  });
}

}  // namespace

DenseF matmul(const DenseF& a, const DenseF& b) {
  check(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  DenseF c(a.rows(), b.cols());
  const index_t k = a.cols();
  const index_t n = b.cols();
  const PanelFn fn = tile_kernels().nn;
  for_panels(a.rows(), [&](index_t r0, index_t r1) {
    fn(a.row(r0), k, b.data(), n, c.row(r0), n, r1 - r0, k, n);
  });
  return c;
}

DenseF matmul_tn(const DenseF& a, const DenseF& b) {
  check(a.rows() == b.rows(), "matmul_tn: inner dimension mismatch");
  DenseF c(a.cols(), b.cols());
  const index_t k = a.rows();
  const index_t n = b.cols();
  const PanelFn fn = tile_kernels().tn;
  for_panels(a.cols(), [&](index_t r0, index_t r1) {
    // Panel rows are columns of A: offset the base pointer, keep the stride.
    fn(a.data() + r0, a.cols(), b.data(), n, c.row(r0), n, r1 - r0, k, n);
  });
  return c;
}

DenseF matmul_nt(const DenseF& a, const DenseF& b) {
  check(a.cols() == b.cols(), "matmul_nt: inner dimension mismatch");
  DenseF c(a.rows(), b.rows());
  const index_t k = a.cols();
  const index_t n = b.rows();
  for_panels(a.rows(), [&](index_t r0, index_t r1) {
    nt_tile<4, 4>(a.row(r0), k, b.data(), k, c.row(r0), n, r1 - r0, k, n);
  });
  return c;
}

DenseF matmul_reference(const DenseF& a, const DenseF& b) {
  check(a.cols() == b.rows(), "matmul_reference: inner dimension mismatch");
  DenseF c(a.rows(), b.cols());
  nn_scalar(a.data(), a.cols(), b.data(), b.cols(), c.data(), b.cols(),
            a.rows(), a.cols(), 0, b.cols());
  return c;
}

DenseF matmul_tn_reference(const DenseF& a, const DenseF& b) {
  check(a.rows() == b.rows(), "matmul_tn_reference: inner dimension mismatch");
  DenseF c(a.cols(), b.cols());
  tn_scalar(a.data(), a.cols(), b.data(), b.cols(), c.data(), b.cols(),
            a.cols(), a.rows(), 0, b.cols());
  return c;
}

DenseF matmul_nt_reference(const DenseF& a, const DenseF& b) {
  check(a.cols() == b.cols(), "matmul_nt_reference: inner dimension mismatch");
  DenseF c(a.rows(), b.rows());
  nt_scalar(a.data(), a.cols(), b.data(), b.cols(), c.data(), b.rows(),
            a.rows(), a.cols(), 0, b.rows());
  return c;
}

const char* matmul_kernel_name() { return tile_kernels().name; }

void axpy(DenseF& c, const DenseF& a, float alpha) {
  check(c.rows() == a.rows() && c.cols() == a.cols(), "axpy: shape mismatch");
  float* cd = c.data();
  const float* ad = a.data();
  for_ranges(c.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) cd[i] += alpha * ad[i];
  });
}

void relu_inplace(DenseF& a) {
  float* d = a.data();
  for_ranges(a.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) d[i] = d[i] > 0.0f ? d[i] : 0.0f;
  });
}

void relu_backward_inplace(DenseF& dy, const DenseF& y) {
  check(dy.rows() == y.rows() && dy.cols() == y.cols(), "relu_backward: shape mismatch");
  float* dd = dy.data();
  const float* yd = y.data();
  for_ranges(dy.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (yd[i] <= 0.0f) dd[i] = 0.0f;
    }
  });
}

void add_bias_inplace(DenseF& a, const DenseF& bias) {
  check(bias.rows() == 1 && bias.cols() == a.cols(), "add_bias: shape mismatch");
  const float* b = bias.row(0);
  const index_t cols = a.cols();
  for_panels(a.rows(), [&](index_t r0, index_t r1) {
    for (index_t i = r0; i < r1; ++i) {
      float* row = a.row(i);
      for (index_t j = 0; j < cols; ++j) row[j] += b[j];
    }
  });
}

DenseF column_sums(const DenseF& a) {
  // Fixed 128-row reduction blocks, partials combined in ascending block
  // order: the result is defined by this fixed order, not by the thread
  // count. A single block reduces serially (identical to the pre-blocking
  // row-ascending sum); above one block the summation order — and hence
  // the bias-gradient bits — is deliberately redefined (DESIGN.md §7).
  constexpr index_t kBlockRows = 128;
  const index_t cols = a.cols();
  DenseF s(1, cols);
  float* sd = s.row(0);
  if (a.rows() <= kBlockRows) {
    for (index_t i = 0; i < a.rows(); ++i) {
      const float* row = a.row(i);
      for (index_t j = 0; j < cols; ++j) sd[j] += row[j];
    }
    return s;
  }
  const index_t nblocks = ceil_div(a.rows(), kBlockRows);
  DenseF partial(nblocks, cols);
  ThreadPool::global().parallel_for(nblocks, [&](index_t blk) {
    float* pd = partial.row(blk);
    const index_t r1 = std::min<index_t>(a.rows(), (blk + 1) * kBlockRows);
    for (index_t i = blk * kBlockRows; i < r1; ++i) {
      const float* row = a.row(i);
      for (index_t j = 0; j < cols; ++j) pd[j] += row[j];
    }
  });
  for (index_t blk = 0; blk < nblocks; ++blk) {
    const float* pd = partial.row(blk);
    for (index_t j = 0; j < cols; ++j) sd[j] += pd[j];
  }
  return s;
}

double matmul_flops(index_t m, index_t k, index_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) * static_cast<double>(n);
}

}  // namespace dms
