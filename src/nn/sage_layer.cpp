#include "nn/sage_layer.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "nn/gemm.hpp"
#include "sparse/ops.hpp"
#include "sparse/spmm.hpp"

namespace dms {

namespace {

DenseF glorot(index_t rows, index_t cols, std::uint64_t seed) {
  DenseF w(rows, cols);
  Pcg32 rng(seed, 0x9143);
  const double scale = std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (index_t i = 0; i < rows; ++i) {
    float* row = w.row(i);
    for (index_t j = 0; j < cols; ++j) {
      row[j] = static_cast<float>((2.0 * rng.uniform() - 1.0) * scale);
    }
  }
  return w;
}

}  // namespace

SageLayer::SageLayer(index_t in_dim, index_t out_dim, std::uint64_t seed)
    : w_self_(glorot(in_dim, out_dim, derive_seed(seed, 1))),
      w_neigh_(glorot(in_dim, out_dim, derive_seed(seed, 2))),
      bias_(1, out_dim),
      g_w_self_(in_dim, out_dim),
      g_w_neigh_(in_dim, out_dim),
      g_bias_(1, out_dim) {}

DenseF SageLayer::forward(const CsrMatrix& adj, const DenseF& h_in, bool relu,
                          SageLayerCache* cache) const {
  check(adj.cols() == h_in.rows(), "SageLayer::forward: frontier mismatch");
  check(h_in.cols() == in_dim(), "SageLayer::forward: feature dim mismatch");
  check(adj.rows() <= h_in.rows(),
        "SageLayer::forward: rows must be a prefix of the frontier");

  CsrMatrix norm_adj = adj;
  normalize_rows(norm_adj);  // mean aggregation
  DenseF h_neigh = spmm(norm_adj, h_in);

  // H_self = first R rows of h_in (frontier convention).
  DenseF h_self(adj.rows(), in_dim());
  for (index_t r = 0; r < adj.rows(); ++r) {
    std::copy(h_in.row(r), h_in.row(r) + in_dim(), h_self.row(r));
  }

  DenseF z = matmul(h_self, w_self_);
  axpy(z, matmul(h_neigh, w_neigh_), 1.0f);
  add_bias_inplace(z, bias_);
  if (relu) relu_inplace(z);

  if (cache != nullptr) {
    cache->norm_adj = std::move(norm_adj);
    cache->h_in = h_in;
    cache->h_neigh = std::move(h_neigh);
    cache->out = z;
    cache->relu = relu;
  }
  return z;
}

DenseF SageLayer::backward(const DenseF& d_out, const SageLayerCache& cache) {
  DenseF dz = d_out;
  if (cache.relu) relu_backward_inplace(dz, cache.out);

  const index_t rows = dz.rows();

  // Parameter gradients.
  DenseF h_self(rows, in_dim());
  for (index_t r = 0; r < rows; ++r) {
    std::copy(cache.h_in.row(r), cache.h_in.row(r) + in_dim(), h_self.row(r));
  }
  axpy(g_w_self_, matmul_tn(h_self, dz), 1.0f);
  axpy(g_w_neigh_, matmul_tn(cache.h_neigh, dz), 1.0f);
  axpy(g_bias_, column_sums(dz), 1.0f);

  // Input gradient: self path into the leading rows, neighbor path through
  // the transposed aggregation.
  DenseF dh_in(cache.h_in.rows(), in_dim());
  const DenseF d_self = matmul_nt(dz, w_self_);
  for (index_t r = 0; r < rows; ++r) {
    float* dst = dh_in.row(r);
    const float* src = d_self.row(r);
    for (index_t j = 0; j < in_dim(); ++j) dst[j] += src[j];
  }
  const DenseF d_neigh = matmul_nt(dz, w_neigh_);
  axpy(dh_in, spmm_transposed(cache.norm_adj, d_neigh), 1.0f);
  return dh_in;
}

void SageLayer::zero_grads() {
  g_w_self_.zero();
  g_w_neigh_.zero();
  g_bias_.zero();
}

}  // namespace dms
