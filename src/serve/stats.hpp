// Per-request latency accounting for the serving subsystem (DESIGN.md §10),
// layered on the phase conventions of EpochStats: the engine times each
// coalesced batch's sampling / fetch / inference phases (host wall-clock,
// like the plan executor's per-op table) and attributes to every request in
// the batch its queue wait (arrival → batch service start) plus the full
// batch service time — requests in one bulk complete together, so the
// batch's service time IS each member's service latency. Percentiles are
// computed over the completed-request records of a run.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dms {

/// One completed request's latency breakdown (seconds).
struct RequestRecord {
  index_t request_id = 0;
  std::size_t batch_size = 0;  ///< how many requests shared its bulk
  double queue_wait = 0.0;     ///< arrival → batch service start
  double service = 0.0;        ///< its batch's sampling + fetch + inference
  double total() const { return queue_wait + service; }
};

/// One coalesced batch's phase breakdown (host wall-clock seconds).
struct BatchRecord {
  std::size_t requests = 0;
  double sampling = 0.0;   ///< bulk plan execution (sample_bulk)
  double fetch = 0.0;      ///< feature-row gather through the store
  double inference = 0.0;  ///< forward passes + demux
  double service() const { return sampling + fetch + inference; }
};

/// Why a request was dropped instead of served (DESIGN.md §13 graceful
/// degradation): the two shedding decisions are made at opposite ends of the
/// queue — kQueueFull rejects an arrival into a full bounded queue,
/// kDeadlineExceeded drops a queued request whose deadline passed before its
/// batch formed (serving it would waste a bulk slot on an answer the client
/// already gave up on).
enum class ShedReason { kQueueFull, kDeadlineExceeded };

/// One shed request. shed_at - arrival is the time the request spent queued
/// before the drop decision (0 for admission-time rejections).
struct ShedRecord {
  index_t request_id = 0;
  double arrival = 0.0;
  double shed_at = 0.0;
  ShedReason reason = ShedReason::kQueueFull;
};

/// Aggregates a serving run. The engine records one BatchRecord per
/// coalesced bulk and one RequestRecord per member request; accessors
/// summarize latency percentiles and phase totals.
class ServeStats {
 public:
  void record(const BatchRecord& batch, const std::vector<RequestRecord>& reqs);
  /// Records a dropped request (admission rejection or deadline shed).
  void record_shed(const ShedRecord& shed);
  void reset();

  std::size_t num_requests() const { return requests_.size(); }
  std::size_t num_batches() const { return batches_.size(); }
  std::size_t num_shed() const { return sheds_.size(); }
  std::size_t num_shed(ShedReason reason) const;
  const std::vector<RequestRecord>& requests() const { return requests_; }
  const std::vector<BatchRecord>& batches() const { return batches_; }
  const std::vector<ShedRecord>& sheds() const { return sheds_; }

  /// Cumulative phase seconds across all batches (the EpochStats-style
  /// coarse breakdown: sampling / fetch / inference).
  double sampling_seconds() const { return sampling_; }
  double fetch_seconds() const { return fetch_; }
  double inference_seconds() const { return inference_; }
  double queue_wait_seconds() const { return queue_wait_; }
  /// Total service seconds (the server-busy time of the run).
  double service_seconds() const { return sampling_ + fetch_ + inference_; }

  /// Mean coalesced batch size (requests per bulk); 0 with no batches.
  double mean_batch_size() const;

  /// Nearest-rank percentile (q in [0, 100]) of end-to-end request latency
  /// (queue wait + service). 0 with no recorded requests.
  double latency_percentile(double q) const;
  /// Nearest-rank percentile of queue wait alone.
  double queue_wait_percentile(double q) const;

  double p50() const { return latency_percentile(50.0); }
  double p95() const { return latency_percentile(95.0); }
  double p99() const { return latency_percentile(99.0); }

 private:
  std::vector<RequestRecord> requests_;
  std::vector<BatchRecord> batches_;
  std::vector<ShedRecord> sheds_;
  double sampling_ = 0.0;
  double fetch_ = 0.0;
  double inference_ = 0.0;
  double queue_wait_ = 0.0;
};

/// Nearest-rank percentile over an unsorted sample (q in [0, 100]); exposed
/// for the bench's throughput tables. 0 on an empty sample (summary paths
/// may run before any request completes).
double percentile(std::vector<double> sample, double q);

}  // namespace dms
