// Serving health-state machine (DESIGN.md §13): graceful degradation under
// overload.
//
// The monitor watches queue pressure — pending requests as a fraction of the
// configured capacity — and walks a three-state machine:
//
//   kHealthy   every arrival admitted, every queued request served;
//   kDegraded  arrivals still admitted, but requests whose deadline passed
//              while queued are shed at batch formation
//              (CoalescerConfig::shed_overdue semantics);
//   kShedding  new arrivals are rejected outright (ShedReason::kQueueFull)
//              until the backlog drains.
//
// Transitions use hysteresis (enter thresholds above exit thresholds) so a
// queue oscillating around one level doesn't flap between policies: pressure
// must fall well below where degradation began before the monitor recovers.
// Like the Coalescer, the monitor is clock-free and deterministic — state is
// a pure function of the observation sequence, so a replayed arrival trace
// reproduces identical admission decisions.
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace dms {

enum class HealthState { kHealthy, kDegraded, kShedding };

const char* to_string(HealthState state);

struct HealthConfig {
  /// Pending-request depth that counts as 100% pressure (typically the
  /// coalescer's max_pending). >= 1.
  std::size_t queue_capacity = 64;
  /// Enter kDegraded at >= degraded_enter pressure; leave it (back to
  /// kHealthy) only at <= degraded_exit. exit < enter.
  double degraded_enter = 0.5;
  double degraded_exit = 0.25;
  /// Enter kShedding at >= shed_enter pressure; step back down to kDegraded
  /// only at <= shed_exit. exit < enter, degraded_enter <= shed_enter.
  double shed_enter = 0.9;
  double shed_exit = 0.5;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig cfg);

  /// Feeds one queue-depth observation; returns the (possibly changed)
  /// state. Call on every arrival and every batch formation.
  HealthState observe(std::size_t pending);

  HealthState state() const { return state_; }
  /// The last observed pressure (pending / capacity).
  double pressure() const { return pressure_; }
  const HealthConfig& config() const { return cfg_; }

  /// Policy the current state implies for the serving loop.
  bool admit_arrivals() const { return state_ != HealthState::kShedding; }
  bool shed_overdue() const { return state_ != HealthState::kHealthy; }

  /// State-change count (observability: a flapping monitor means the
  /// hysteresis band is too narrow for the workload).
  std::size_t transitions() const { return transitions_; }

 private:
  HealthConfig cfg_;
  HealthState state_ = HealthState::kHealthy;
  double pressure_ = 0.0;
  std::size_t transitions_ = 0;
};

}  // namespace dms
