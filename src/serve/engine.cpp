#include "serve/engine.hpp"

#include <algorithm>
#include <utility>

#include "common/timer.hpp"
#include "common/workspace.hpp"
#include "nn/model.hpp"
#include "plan/optimize.hpp"

namespace dms {

ServeEngine::ServeEngine(const Graph& graph, FeatureStore& features,
                         const SageModel& model, ServeEngineConfig config,
                         const ProcessGrid* grid, Cluster* cluster)
    : graph_(graph), features_(features), model_(model), cfg_(std::move(config)) {
  check(!cfg_.fanouts.empty(), "ServeEngine: fanouts must be non-empty");
  check(static_cast<index_t>(cfg_.fanouts.size()) == model.config().num_layers,
        "ServeEngine: fanout count " + std::to_string(cfg_.fanouts.size()) +
            " does not match the model's " +
            std::to_string(model.config().num_layers) + " layers");
  check(model.config().in_dim == features.dim(),
        "ServeEngine: model in_dim " + std::to_string(model.config().in_dim) +
            " does not match the feature store's dim " +
            std::to_string(features.dim()));
  check(cfg_.warmup_rounds >= 1, "ServeEngine: warmup_rounds must be >= 1");
  SamplerContext ctx;
  ctx.config = SamplerConfig{cfg_.fanouts, cfg_.sampler_seed};
  ctx.grid = grid;
  ctx.part_opts = cfg_.part_opts;
  ctx.cluster = cluster;
  const std::uint64_t hits_before = PlanCache::global().stats().hits;
  sampler_ = make_sampler(cfg_.sampler, cfg_.mode, graph, ctx);
  plan_cache_hit_ = PlanCache::global().stats().hits > hits_before;
  check(sampler_->scratch_workspace() != nullptr,
        "ServeEngine: sampler exposes no scratch arena (steady-state serving "
        "requires a plan-backed sampler)");
}

ServeBatchResult ServeEngine::serve(const CoalescedBatch& batch) {
  check(!batch.empty(), "ServeEngine::serve: empty coalesced batch");
  const std::size_t n = batch.size();
  batch_seeds_.resize(n);
  batch_ids_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ServeRequest& r = batch.requests[i];
    check(!r.seeds.empty(), "ServeEngine::serve: request " +
                                std::to_string(r.id) + " has no seed vertices");
    check(r.arrival <= batch.formed_at + 1e-12,
          "ServeEngine::serve: request " + std::to_string(r.id) +
              " arrives after the batch formed");
    batch_seeds_[i].assign(r.seeds.begin(), r.seeds.end());
    batch_ids_[i] = r.id;
  }

  ServeBatchResult res;
  res.timing.requests = n;

  // (1) One stacked-frontier bulk plan execution covers every request.
  Timer ts;
  const std::vector<MinibatchSample> samples =
      sampler_->sample_bulk(batch_seeds_, batch_ids_, cfg_.serve_seed);
  res.timing.sampling = ts.seconds();

  // (2)+(3) Per request: gather input features through the store's cache,
  // forward, demux. The gather buffer is engine-owned and reused.
  res.logits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Timer tf;
    features_.gather_rows(cfg_.serve_rank, samples[i].input_vertices(),
                          &h_input_);
    res.timing.fetch += tf.seconds();
    Timer ti;
    res.logits.push_back(model_.forward(samples[i], h_input_, nullptr));
    res.timing.inference += ti.seconds();
  }

  if (warmed_) {
    sampler_->scratch_workspace()->check_steady("ServeEngine::serve");
  }

  std::vector<RequestRecord> records(n);
  for (std::size_t i = 0; i < n; ++i) {
    records[i].request_id = batch.requests[i].id;
    records[i].batch_size = n;
    records[i].queue_wait =
        std::max(0.0, batch.formed_at - batch.requests[i].arrival);
    records[i].service = res.timing.service();
  }
  stats_.record(res.timing, records);
  return res;
}

DenseF ServeEngine::serve_one(const ServeRequest& request) {
  CoalescedBatch single;
  single.requests.push_back(request);
  single.formed_at = request.arrival;
  ServeBatchResult res = serve(single);
  return std::move(res.logits.front());
}

void ServeEngine::warmup(const std::vector<std::vector<index_t>>& seed_sets) {
  check(!seed_sets.empty(), "ServeEngine::warmup: seed sets required");
  Workspace* ws = sampler_->scratch_workspace();
  ws->thaw();
  warmed_ = false;
  // Warmup requests replay the representative seed sets as one coalesced
  // batch per round, growing every scratch buffer (plan executor, SpGEMM
  // engine, ITS, gather buffer) to the workload's high-water mark.
  for (int round = 0; round < cfg_.warmup_rounds; ++round) {
    CoalescedBatch batch;
    for (std::size_t i = 0; i < seed_sets.size(); ++i) {
      ServeRequest r;
      // Ids outside the live request space keep warmup reproducible without
      // colliding with traffic; randomness still varies per round.
      r.id = static_cast<index_t>(i + seed_sets.size() * static_cast<std::size_t>(round));
      r.seeds = seed_sets[i];
      batch.requests.push_back(std::move(r));
    }
    serve(batch);
  }
  freeze();
  stats_.reset();  // warmup traffic is not part of the serving run
}

void ServeEngine::freeze() {
  sampler_->scratch_workspace()->freeze();
  warmed_ = true;
}

}  // namespace dms
