// Request admission and coalescing for online serving (DESIGN.md §10).
//
// A serving request is a small seed set (the user vertices) that needs a
// sampled neighborhood plus a forward pass at low latency. The paper's bulk
// formulation makes N concurrent requests exactly as cheap to sample as one
// stacked-frontier plan execution (Eq. 1 stacks per-batch frontiers of any
// size), so the serving layer's whole job is deciding *which* requests share
// a bulk: the Coalescer buffers arrivals in a RequestQueue and closes a
// CoalescedBatch when either (a) `max_requests` are waiting (the batch cap)
// or (b) the oldest request has waited `window` seconds (the latency
// deadline). window = 0 degrades to serve-on-arrival (only simultaneous
// arrivals and backlog accumulated behind a busy server coalesce);
// max_requests = 1 degrades to strict batch-size-1 serving.
//
// The coalescer is clock-driven, not thread-driven: requests carry arrival
// timestamps on the caller's serve clock and pop(now) is a pure function of
// the queue contents and `now`. That keeps admission deterministic — the
// bench's open-loop arrival process and the tests replay identical batching
// decisions on every run — in the same spirit as the simulated-cluster
// clock (§2).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "common/types.hpp"
#include "serve/stats.hpp"

namespace dms {

/// One online inference request.
struct ServeRequest {
  /// Global request id; seeds the request's sampling randomness exactly as
  /// a global batch id does in training, which is what makes a coalesced
  /// request bit-identical to the same request served alone.
  index_t id = 0;
  /// Seed vertices needing predictions (heterogeneous sizes coalesce).
  std::vector<index_t> seeds;
  /// Arrival timestamp on the serve clock, seconds.
  double arrival = 0.0;
  /// Absolute latest useful completion instant on the serve clock; 0 = no
  /// deadline. Under degraded health a request still queued past its
  /// deadline is shed at batch formation instead of served.
  double deadline = 0.0;
};

/// Admission policy knobs.
struct CoalescerConfig {
  /// Maximum time the oldest queued request may wait before its batch is
  /// closed (the deadline). 0 = close as soon as the oldest request could
  /// be served.
  double window = 0.0;
  /// Batch cap: a batch closes immediately once this many requests are
  /// queued; overflow beyond the cap splits into further batches. >= 1.
  index_t max_requests = 1;
  /// Bounded-queue capacity for try_push: arrivals beyond this many pending
  /// requests are rejected (ShedReason::kQueueFull). 0 = unbounded. push()
  /// ignores the bound (the unguarded legacy path).
  index_t max_pending = 0;
  /// When set, pop(now) drops queued requests whose deadline already passed
  /// (ShedReason::kDeadlineExceeded) instead of batching them — the
  /// degraded-health load-shedding mode. Requests without a deadline are
  /// never dropped.
  bool shed_overdue = false;
};

/// One admission decision: the requests that will share a bulk execution,
/// plus any requests dropped while forming it.
struct CoalescedBatch {
  std::vector<ServeRequest> requests;
  /// Requests shed at formation (only with CoalescerConfig::shed_overdue):
  /// their deadline passed while they queued. The caller forwards these to
  /// ServeStats::record_shed.
  std::vector<ShedRecord> shed;
  /// The instant the batch was closed (the pop(now) argument); per-request
  /// queue wait is measured from arrival to the batch's service start.
  double formed_at = 0.0;

  bool empty() const { return requests.empty(); }
  std::size_t size() const { return requests.size(); }
};

/// FIFO arrival buffer. Arrivals must be pushed in non-decreasing arrival
/// order (the serve clock is monotonic); each request needs at least one
/// in-range seed checked by the engine at service time.
class RequestQueue {
 public:
  void push(ServeRequest r);
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  const ServeRequest& front() const;
  /// The i-th oldest queued request (i < size()).
  const ServeRequest& at(std::size_t i) const;
  ServeRequest pop_front();

 private:
  std::deque<ServeRequest> q_;
  double last_arrival_ = 0.0;
};

class Coalescer {
 public:
  explicit Coalescer(CoalescerConfig cfg);

  const CoalescerConfig& config() const { return cfg_; }

  /// Enqueues an arrival (non-decreasing arrival order), ignoring any
  /// max_pending bound — the legacy unguarded path.
  void push(ServeRequest r);

  /// Bounded admission: enqueues unless max_pending > 0 and the queue is
  /// already at capacity, in which case the request is dropped and false
  /// returned (the caller records a ShedReason::kQueueFull shed).
  bool try_push(ServeRequest r);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Earliest instant the admission policy closes the next batch: the
  /// oldest request's deadline (arrival + window), pulled earlier to the
  /// cap-th queued request's arrival when the cap fills before the deadline
  /// — filling the cap can only hasten a batch, never delay one past the
  /// deadline. Requires a non-empty queue. A caller whose server frees
  /// later than ready_at() simply pops then — backlog coalesces naturally.
  double ready_at() const;

  /// Closes a batch at `now`: up to max_requests requests with
  /// arrival <= now, oldest first. Requires now >= ready_at(). Requests
  /// arriving after `now` stay queued for the next batch. With
  /// shed_overdue, queued requests whose deadline passed are moved to the
  /// batch's `shed` list instead of its `requests` (they do not count
  /// against the cap — shedding frees the slot for a servable request).
  CoalescedBatch pop(double now);

 private:
  CoalescerConfig cfg_;
  RequestQueue queue_;
};

}  // namespace dms
