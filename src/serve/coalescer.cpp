#include "serve/coalescer.hpp"

#include <algorithm>
#include <string>

namespace dms {

void RequestQueue::push(ServeRequest r) {
  check(r.arrival >= last_arrival_ || q_.empty(),
        "RequestQueue::push: arrivals must be non-decreasing (got " +
            std::to_string(r.arrival) + " after " +
            std::to_string(last_arrival_) + ")");
  last_arrival_ = r.arrival;
  q_.push_back(std::move(r));
}

const ServeRequest& RequestQueue::front() const {
  check(!q_.empty(), "RequestQueue::front: queue is empty");
  return q_.front();
}

const ServeRequest& RequestQueue::at(std::size_t i) const {
  check(i < q_.size(), "RequestQueue::at: index out of range");
  return q_[i];
}

ServeRequest RequestQueue::pop_front() {
  check(!q_.empty(), "RequestQueue::pop_front: queue is empty");
  ServeRequest r = std::move(q_.front());
  q_.pop_front();
  return r;
}

Coalescer::Coalescer(CoalescerConfig cfg) : cfg_(cfg) {
  check(cfg_.max_requests >= 1, "Coalescer: max_requests must be >= 1");
  check(cfg_.window >= 0.0, "Coalescer: window must be non-negative");
  check(cfg_.max_pending >= 0, "Coalescer: max_pending must be non-negative");
}

void Coalescer::push(ServeRequest r) { queue_.push(std::move(r)); }

bool Coalescer::try_push(ServeRequest r) {
  if (cfg_.max_pending > 0 &&
      queue_.size() >= static_cast<std::size_t>(cfg_.max_pending)) {
    return false;
  }
  queue_.push(std::move(r));
  return true;
}

double Coalescer::ready_at() const {
  check(!queue_.empty(), "Coalescer::ready_at: no pending requests");
  // The oldest request's deadline bounds the wait; a met cap closes the
  // batch the instant the cap-th request arrived, but only ever earlier —
  // a cap filled by a far-future arrival must not delay requests whose
  // deadline already passed (the server-busy backlog case).
  const double deadline = queue_.front().arrival + cfg_.window;
  if (queue_.size() >= static_cast<std::size_t>(cfg_.max_requests)) {
    return std::min(
        deadline,
        queue_.at(static_cast<std::size_t>(cfg_.max_requests) - 1).arrival);
  }
  return deadline;
}

CoalescedBatch Coalescer::pop(double now) {
  check(!queue_.empty(), "Coalescer::pop: no pending requests");
  check(now >= ready_at() - 1e-12,
        "Coalescer::pop: batch not ready (now " + std::to_string(now) +
            " < ready_at " + std::to_string(ready_at()) + ")");
  CoalescedBatch batch;
  batch.formed_at = now;
  while (!queue_.empty() &&
         batch.requests.size() < static_cast<std::size_t>(cfg_.max_requests) &&
         queue_.front().arrival <= now) {
    ServeRequest r = queue_.pop_front();
    if (cfg_.shed_overdue && r.deadline > 0.0 && r.deadline < now) {
      // Its client gave up before the batch formed; spending a bulk slot on
      // it would only push the deadline of everything behind it.
      batch.shed.push_back(
          {r.id, r.arrival, now, ShedReason::kDeadlineExceeded});
      continue;
    }
    batch.requests.push_back(std::move(r));
  }
  return batch;
}

}  // namespace dms
