#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dms {

double percentile(std::vector<double> sample, double q) {
  check(q >= 0.0 && q <= 100.0, "percentile: q must be in [0, 100]");
  // An empty sample reports 0 rather than throwing: percentile feeds
  // summary paths (stats dumps, bench tables) that legitimately run before
  // any request completes — a reset-then-report sequence used to crash.
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  // Nearest-rank: the smallest value with at least q% of the sample at or
  // below it.
  const auto n = sample.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(n)));
  return sample[rank == 0 ? 0 : rank - 1];
}

void ServeStats::record(const BatchRecord& batch,
                        const std::vector<RequestRecord>& reqs) {
  check(batch.requests == reqs.size(),
        "ServeStats::record: batch size does not match request records");
  batches_.push_back(batch);
  sampling_ += batch.sampling;
  fetch_ += batch.fetch;
  inference_ += batch.inference;
  for (const RequestRecord& r : reqs) {
    queue_wait_ += r.queue_wait;
    requests_.push_back(r);
  }
}

void ServeStats::record_shed(const ShedRecord& shed) {
  check(shed.shed_at >= shed.arrival,
        "ServeStats::record_shed: shed before arrival");
  sheds_.push_back(shed);
}

std::size_t ServeStats::num_shed(ShedReason reason) const {
  std::size_t n = 0;
  for (const ShedRecord& s : sheds_) n += s.reason == reason ? 1 : 0;
  return n;
}

void ServeStats::reset() {
  requests_.clear();
  batches_.clear();
  sheds_.clear();
  sampling_ = fetch_ = inference_ = queue_wait_ = 0.0;
}

double ServeStats::mean_batch_size() const {
  if (batches_.empty()) return 0.0;
  return static_cast<double>(requests_.size()) /
         static_cast<double>(batches_.size());
}

double ServeStats::latency_percentile(double q) const {
  std::vector<double> lat;
  lat.reserve(requests_.size());
  for (const RequestRecord& r : requests_) lat.push_back(r.total());
  return percentile(std::move(lat), q);
}

double ServeStats::queue_wait_percentile(double q) const {
  std::vector<double> w;
  w.reserve(requests_.size());
  for (const RequestRecord& r : requests_) w.push_back(r.queue_wait);
  return percentile(std::move(w), q);
}

}  // namespace dms
