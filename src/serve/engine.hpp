// Online inference engine (DESIGN.md §10): executes coalesced request
// batches through the bulk sampling machinery and de-multiplexes per-request
// predictions back out.
//
// One coalesced batch = one stacked-frontier bulk: the N requests' seed sets
// become the N per-batch frontiers of a single sample_bulk call (Eq. 1
// stacks them regardless of size), with each request's global id seeding its
// randomness exactly as a global batch id does in training. The determinism
// contract therefore guarantees the serving identity this subsystem is
// built on: a request's prediction is bit-identical whether it was served
// alone or coalesced with any other requests — batching is purely a
// throughput decision, never a results decision (test_serve locks this
// across SamplerKind × DistMode × thread counts).
//
// Steady-state contract: the engine owns its sampler (and thereby the
// sampler's Workspace arena) plus a reusable feature-gather buffer. warmup()
// drives representative requests through the full path to grow every scratch
// buffer to its high-water mark, then freezes the arena — from then on,
// request handling allocates only results (samples, logits), and debug
// builds assert the frozen arena never grows (Workspace::check_steady after
// every batch).
//
// Accounting: each batch's sampling / fetch / inference phases are
// host-wall-clock timed (the plan executor's convention) into a ServeStats
// ledger holding per-request queue-wait + service records; the sampler's
// per-op table is surfaced unchanged through op_time_breakdown().
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sampler.hpp"
#include "dist/sampler_factory.hpp"
#include "serve/coalescer.hpp"
#include "serve/stats.hpp"
#include "sparse/dense.hpp"
#include "train/feature_store.hpp"

namespace dms {

class SageModel;

struct ServeEngineConfig {
  SamplerKind sampler = SamplerKind::kGraphSage;
  DistMode mode = DistMode::kReplicated;
  /// Per-layer sample counts, sampling order (must match the model depth).
  std::vector<index_t> fanouts = {10, 5};
  /// Sampler construction seed.
  std::uint64_t sampler_seed = 1;
  /// Serve-time epoch seed: request randomness derives from
  /// (serve_seed, request id, round, row) — requests are reproducible
  /// across runs and independent of batching.
  std::uint64_t serve_seed = 0x5e12e;
  /// The rank this serving replica plays against the feature store's block
  /// layout (remote rows classify through this rank's cache).
  int serve_rank = 0;
  /// warmup() rounds over its seed sets before freezing the arena.
  int warmup_rounds = 2;
  /// Partitioned mode options (grid comes through the constructor).
  PartitionedSamplerOptions part_opts;
};

/// One served batch: per-request logits (request order preserved) plus the
/// batch's phase timing.
struct ServeBatchResult {
  std::vector<DenseF> logits;
  BatchRecord timing;
};

class ServeEngine {
 public:
  /// graph, features and model must outlive the engine. `grid` is required
  /// for DistMode::kPartitioned (the sampler's process grid); `cluster`
  /// optionally binds partitioned sampling's phase accounting to a
  /// long-lived cluster (ephemeral otherwise).
  ServeEngine(const Graph& graph, FeatureStore& features, const SageModel& model,
              ServeEngineConfig config, const ProcessGrid* grid = nullptr,
              Cluster* cluster = nullptr);

  /// Serves one coalesced batch: bulk-samples all requests' neighborhoods in
  /// one stacked plan execution, gathers each request's input features
  /// through the store, runs the forward pass, and de-multiplexes logits
  /// back per request (logits[i](r, c) = class-c score of requests[i]'s r-th
  /// seed vertex). Records per-request latency into stats() using
  /// batch.formed_at as the service start.
  ServeBatchResult serve(const CoalescedBatch& batch);

  /// Convenience: a batch of one request formed the instant it arrived
  /// (zero queue wait) — the sequential-serving reference path.
  DenseF serve_one(const ServeRequest& request);

  /// Drives `seed_sets` through the full path warmup_rounds times (stats
  /// suppressed), then freezes the workspace arena: subsequent requests
  /// whose scratch needs stay within the warmed high-water mark are handled
  /// allocation-free (debug-asserted). Call once before serving traffic,
  /// with seed sets at least as large as the expected worst case — or
  /// replay a representative trace through serve() and call freeze()
  /// directly, which bounds the mark by the trace's exact demands.
  void warmup(const std::vector<std::vector<index_t>>& seed_sets);

  /// Enters steady state at the arena's current high-water mark (the
  /// trace-replay warmup path; warmup() is "representative pass + freeze()").
  void freeze();

  bool warmed() const { return warmed_; }

  /// Whether this engine's sampler reused an already-optimized plan from the
  /// process-wide PlanCache (replica engines and engines sharing a sampler
  /// shape with training hit; the first engine of a shape misses and pays
  /// the one-time optimization).
  bool plan_cache_hit() const { return plan_cache_hit_; }

  const ServeStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// The sampler's cumulative per-op table ("<plan>/<label>", §9).
  std::map<std::string, double> op_time_breakdown() const {
    return sampler_->op_time_breakdown();
  }

  /// The engine-owned scratch arena (steady-state observability: its
  /// bytes_held must not grow past frozen_bytes after warmup).
  const Workspace* workspace() const { return sampler_->scratch_workspace(); }

  const ServeEngineConfig& config() const { return cfg_; }

 private:
  const Graph& graph_;
  FeatureStore& features_;
  const SageModel& model_;
  ServeEngineConfig cfg_;
  std::unique_ptr<MatrixSampler> sampler_;
  ServeStats stats_;
  /// Reusable per-request feature gather buffer (capacity persists across
  /// requests; steady-state requests re-fill it without allocating).
  DenseF h_input_;
  /// Reusable request-shape scratch for serve() (seed lists + ids).
  std::vector<std::vector<index_t>> batch_seeds_;
  std::vector<index_t> batch_ids_;
  bool warmed_ = false;
  bool plan_cache_hit_ = false;
};

}  // namespace dms
