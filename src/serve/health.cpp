#include "serve/health.hpp"

namespace dms {

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kShedding:
      return "shedding";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthConfig cfg) : cfg_(cfg) {
  check(cfg_.queue_capacity >= 1, "HealthMonitor: queue_capacity must be >= 1");
  check(cfg_.degraded_enter > 0.0 && cfg_.degraded_enter <= 1.0 &&
            cfg_.shed_enter > 0.0 && cfg_.shed_enter <= 1.0,
        "HealthMonitor: enter thresholds must be in (0, 1]");
  check(cfg_.degraded_exit >= 0.0 && cfg_.degraded_exit < cfg_.degraded_enter,
        "HealthMonitor: degraded_exit must be below degraded_enter");
  check(cfg_.shed_exit >= 0.0 && cfg_.shed_exit < cfg_.shed_enter,
        "HealthMonitor: shed_exit must be below shed_enter");
  check(cfg_.degraded_enter <= cfg_.shed_enter,
        "HealthMonitor: degraded must enter at or below the shedding "
        "threshold");
}

HealthState HealthMonitor::observe(std::size_t pending) {
  pressure_ = static_cast<double>(pending) /
              static_cast<double>(cfg_.queue_capacity);
  const HealthState before = state_;
  switch (state_) {
    case HealthState::kHealthy:
      if (pressure_ >= cfg_.shed_enter) {
        state_ = HealthState::kShedding;
      } else if (pressure_ >= cfg_.degraded_enter) {
        state_ = HealthState::kDegraded;
      }
      break;
    case HealthState::kDegraded:
      if (pressure_ >= cfg_.shed_enter) {
        state_ = HealthState::kShedding;
      } else if (pressure_ <= cfg_.degraded_exit) {
        state_ = HealthState::kHealthy;
      }
      break;
    case HealthState::kShedding:
      // Recovery steps down one level at a time: even a briefly empty queue
      // passes through kDegraded first, so the shed→admit flip and the
      // resume of deadline service never happen on the same observation.
      if (pressure_ <= cfg_.shed_exit) {
        state_ = HealthState::kDegraded;
      }
      break;
  }
  if (state_ != before) ++transitions_;
  return state_;
}

}  // namespace dms
