// A custom sampler defined purely as a plan (DESIGN.md §9): a "two-hop"
// layer sampler — per layer, each frontier vertex samples s vertices
// proportional to the number of 2-paths reaching them (P = Q·A·A, NORM,
// ITS). No sampler class, no distributed code: the plan is ~25 lines, the
// replicated executor runs it as-is, and PartitionedSamplerBase runs the
// dist-lowered copy on a 1.5D grid — both modes bit-identical.
#include <cstdio>

#include "dist/dist_sampler.hpp"
#include "graph/dataset.hpp"
#include "plan/executor.hpp"

using namespace dms;

namespace {

/// The entire algorithm: one plan.
SamplePlan two_hop_plan() {
  SamplePlan p;
  p.name = "two_hop";
  const SlotId frontier = p.frontier_slot = p.add_slot();
  const SlotId q = p.add_slot();
  const SlotId stack = p.add_slot();
  const SlotId hop1 = p.add_slot();
  const SlotId hop2 = p.add_slot();
  const SlotId qs = p.add_slot();

  PlanOp build;
  build.kind = PlanOpKind::kBuildQ;
  build.label = "build_q";
  build.phase = kPhaseProbability;
  build.qmode = QMode::kOnePerVertex;
  build.in = frontier;
  build.out = q;
  build.out2 = stack;
  p.body.push_back(build);

  PlanOp first_hop;
  first_hop.kind = PlanOpKind::kSpgemm;
  first_hop.label = "spgemm_hop1";
  first_hop.phase = kPhaseProbability;
  first_hop.in = q;
  first_hop.out = hop1;
  p.body.push_back(first_hop);

  PlanOp second_hop = first_hop;  // P(v, u) = number of 2-paths v → u
  second_hop.label = "spgemm_hop2";
  second_hop.in = hop1;
  second_hop.out = hop2;
  p.body.push_back(second_hop);

  PlanOp norm;
  norm.kind = PlanOpKind::kNormalize;
  norm.label = "normalize";
  norm.phase = kPhaseProbability;
  norm.norm = NormMode::kRow;
  norm.in = hop2;
  p.body.push_back(norm);

  PlanOp its;
  its.kind = PlanOpKind::kItsSample;
  its.label = "its_sample";
  its.phase = kPhaseSampling;
  its.in = hop2;
  its.in2 = stack;
  its.out = qs;
  its.seed = {/*layer_salt=*/0x2409, SeedRowTerm::kLocalRow};
  p.body.push_back(its);

  PlanOp extract;
  extract.kind = PlanOpKind::kFrontierUnion;
  extract.label = "extract";
  extract.phase = kPhaseExtraction;
  extract.assemble = AssembleMode::kNeighborRows;
  extract.in = qs;
  extract.in2 = stack;
  p.body.push_back(extract);
  return p;
}

std::size_t total_edges(const std::vector<MinibatchSample>& samples) {
  std::size_t edges = 0;
  for (const auto& ms : samples) {
    for (const auto& layer : ms.layers) {
      edges += static_cast<std::size_t>(layer.adj.nnz());
    }
  }
  return edges;
}

}  // namespace

int main() {
  StandInConfig dcfg;
  dcfg.scale_shift = -2;
  const Dataset ds = make_products_sim(dcfg);
  std::printf("%s\n", ds.graph.summary(ds.name).c_str());

  const SamplePlan plan = two_hop_plan();
  std::printf("\n%s\n", describe(plan).c_str());

  const SamplerConfig cfg{{6, 4}, /*seed=*/1};
  std::vector<std::vector<index_t>> batches = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  const std::vector<index_t> ids = {0, 1};

  // Replicated: bind the plan to an executor and run.
  PlanExecutor exec(plan, cfg);
  Workspace ws;
  const auto replicated = exec.run(ds.graph, batches, ids, /*epoch_seed=*/7, &ws);
  std::printf("replicated:  %zu minibatches, %zu sampled edges\n",
              replicated.size(), total_edges(replicated));

  // Partitioned: the same plan, dist-lowered by PartitionedSamplerBase onto
  // a 4×2 process grid. Bit-identical by the determinism contract.
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  PartitionedSamplerBase part(ds.graph, cluster.grid(), cfg, {}, plan,
                              "two_hop");
  const auto partitioned = part.sample_bulk(batches, ids, /*epoch_seed=*/7);
  std::printf("partitioned: %zu minibatches, %zu sampled edges\n",
              partitioned.size(), total_edges(partitioned));

  bool identical = replicated.size() == partitioned.size();
  for (std::size_t i = 0; identical && i < replicated.size(); ++i) {
    identical = replicated[i].batch_vertices == partitioned[i].batch_vertices &&
                replicated[i].layers.size() == partitioned[i].layers.size();
    for (std::size_t l = 0; identical && l < replicated[i].layers.size(); ++l) {
      identical =
          replicated[i].layers[l].adj == partitioned[i].layers[l].adj &&
          replicated[i].layers[l].col_vertices ==
              partitioned[i].layers[l].col_vertices;
    }
  }
  std::printf("bit-identical across modes: %s\n", identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
