// Compares the three sampling algorithms expressed in the matrix framework
// (GraphSAGE node-wise, LADIES layer-wise, FastGCN layer-wise) on the same
// minibatches: frontier growth, edges kept, and sampling time — the §2.2
// taxonomy, quantified.
#include <cstdio>

#include "common/timer.hpp"
#include "core/graphsaint.hpp"
#include "core/minibatch.hpp"
#include "dist/sampler_factory.hpp"
#include "graph/dataset.hpp"

using namespace dms;

namespace {

void report(const char* name, const MatrixSampler& sampler,
            const std::vector<std::vector<index_t>>& batches) {
  std::vector<index_t> ids(batches.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<index_t>(i);
  Timer t;
  const auto samples = sampler.sample_bulk(batches, ids, /*epoch_seed=*/9);
  const double sec = t.seconds();

  double frontier = 0.0, edges = 0.0, input = 0.0;
  for (const auto& ms : samples) {
    input += static_cast<double>(ms.input_vertices().size());
    for (const auto& layer : ms.layers) {
      frontier += static_cast<double>(layer.col_vertices.size());
      edges += static_cast<double>(layer.adj.nnz());
    }
  }
  const auto k = static_cast<double>(samples.size());
  std::printf("%-10s %-8zu %-14.1f %-12.1f %-14.1f %-10.4f\n", name,
              sampler.config().fanouts.size(), frontier / k, edges / k, input / k, sec);
}

}  // namespace

int main() {
  StandInConfig dcfg;
  dcfg.scale_shift = -1;
  const Dataset ds = make_products_sim(dcfg);
  std::printf("%s\n\n", ds.graph.summary(ds.name).c_str());

  auto batches = make_epoch_batches(ds.train_idx, 64, 1);
  batches.resize(32);  // 32 minibatches is plenty for averages

  std::printf("%-10s %-8s %-14s %-12s %-14s %-10s\n", "sampler", "layers",
              "frontier/bat", "edges/bat", "inputs/bat", "time(s)");
  report("SAGE", *make_sampler(SamplerKind::kGraphSage, ds.graph, {{8, 4, 4}, 1}),
         batches);
  report("LADIES", *make_sampler(SamplerKind::kLadies, ds.graph, {{64}, 1}), batches);
  report("FastGCN", *make_sampler(SamplerKind::kFastGcn, ds.graph, {{64}, 1}), batches);
  report("LABOR", *make_sampler(SamplerKind::kLabor, ds.graph, {{8, 4, 4}, 1}),
         batches);
  GraphSaintConfig saint_cfg;
  saint_cfg.walk_length = 3;
  saint_cfg.model_layers = 3;
  GraphSaintSampler saint(ds.graph, saint_cfg);
  report("SAINT-RW", saint, batches);

  std::printf("\nNode-wise SAGE grows the frontier multiplicatively per layer\n"
              "(neighborhood explosion, capped by fanout); layer-wise LADIES and\n"
              "FastGCN bound every layer at s vertices; graph-wise SAINT-RW trains\n"
              "on one induced subgraph reused across layers. LABOR matches SAGE's\n"
              "expected fanout but shares per-vertex randomness within a batch, so\n"
              "its input frontier (the feature-fetch volume) is smaller. LADIES\n"
              "restricts samples to the aggregated neighborhood; FastGCN may sample\n"
              "disconnected vertices (the accuracy trade-off of §2.2.2).\n");
  return 0;
}
