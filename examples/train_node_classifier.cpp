// End-to-end distributed training (Figure 3 pipeline): trains a 3-layer
// GraphSAGE node classifier on a planted-partition dataset with a simulated
// 8-GPU (c=2) cluster, printing the per-epoch time breakdown and final
// accuracy — the §8.1.3 experiment at example scale. Runs through the
// staged overlapped executor (DESIGN.md §6) with an LRU feature cache:
// `saved` is the simulated time hidden by prefetching, `hit%` the fraction
// of remote feature rows served from the cache instead of the wire.
#include <cstdio>

#include "graph/dataset.hpp"
#include "train/pipeline.hpp"

using namespace dms;

int main() {
  const Dataset ds = make_planted_dataset(/*n=*/4096, /*classes=*/8,
                                          /*feature_dim=*/32, /*avg_degree=*/10.0,
                                          /*p_intra=*/0.85, /*seed=*/17);
  std::printf("%s\n", ds.graph.summary(ds.name).c_str());

  LinkParams links;  // Perlmutter-like defaults (§7.2)
  Cluster cluster(ProcessGrid(/*p=*/8, /*c=*/2), CostModel(links));

  PipelineConfig cfg;
  cfg.sampler = SamplerKind::kGraphSage;
  cfg.mode = DistMode::kReplicated;  // graph fits on device (§5.1)
  cfg.batch_size = 128;
  cfg.fanouts = {8, 4, 4};
  cfg.hidden = 32;
  cfg.lr = 5e-3f;
  cfg.bulk_k = 0;       // sample every minibatch of the epoch in one bulk...
  cfg.overlap = true;   // ...which the staged executor slices into
                        // prefetch_rounds rounds to overlap with training
  cfg.feature_cache = {CachePolicy::kLru, ds.num_vertices() / 8};
  Pipeline pipe(cluster, ds, cfg);

  std::printf("%-7s %-9s %-10s %-10s %-10s %-9s %-9s %-9s %-7s\n", "epoch",
              "loss", "train-acc", "sampling", "fetch", "prop", "saved",
              "total(s)", "hit%");
  for (int epoch = 0; epoch < 10; ++epoch) {
    const EpochStats s = pipe.run_epoch(epoch);
    const double hit_pct = cache_hit_pct(s.cache_hits, s.cache_misses);
    std::printf("%-7d %-9.4f %-10.4f %-10.4f %-10.4f %-9.4f %-9.4f %-9.4f %-7.1f\n",
                epoch, s.loss, s.train_acc, s.sampling, s.fetch, s.propagation,
                s.overlap_saved, s.total, hit_pct);
  }

  const double val = pipe.evaluate(ds.val_idx, {12, 12, 12});
  const double test = pipe.evaluate(ds.test_idx, {12, 12, 12});
  std::printf("\nfinal accuracy: val %.4f, test %.4f (chance = %.4f)\n", val, test,
              1.0 / ds.num_classes);
  return test > 2.0 / ds.num_classes ? 0 : 1;
}
