// Disaggregated sampler/trainer ranks (DESIGN.md §14): trains the same
// GraphSAGE classifier twice on identical 8-rank clusters — once colocated
// (DistMode::kReplicated, every rank samples and trains) and once
// disaggregated (DistMode::kDisaggregated, ranks [0, s) sample, ranks
// [s, p) train, completed bulk rounds streaming between the roles as the
// modeled "handoff" phase). Both runs use the kPreSample hotness cache.
//
// The logical schedule is inherited unchanged across the split, so the two
// runs must produce bit-identical losses; this example exits nonzero if
// they ever diverge.
#include <cstdio>

#include "graph/dataset.hpp"
#include "train/pipeline.hpp"

using namespace dms;

int main() {
  const Dataset ds = make_planted_dataset(/*n=*/4096, /*classes=*/8,
                                          /*feature_dim=*/32, /*avg_degree=*/10.0,
                                          /*p_intra=*/0.85, /*seed=*/17);
  std::printf("%s\n", ds.graph.summary(ds.name).c_str());

  PipelineConfig cfg;
  cfg.sampler = SamplerKind::kGraphSage;
  cfg.batch_size = 128;
  cfg.fanouts = {8, 4, 4};
  cfg.hidden = 32;
  cfg.lr = 5e-3f;
  cfg.feature_cache = {CachePolicy::kPreSample, ds.num_vertices() / 8};
  cfg.presample_rounds = 4;

  LinkParams links;  // Perlmutter-like defaults (§7.2)
  Cluster colo_cluster(ProcessGrid(/*p=*/8, /*c=*/2), CostModel(links));
  cfg.mode = DistMode::kReplicated;
  Pipeline colocated(colo_cluster, ds, cfg);

  Cluster dis_cluster(ProcessGrid(/*p=*/8, /*c=*/2), CostModel(links));
  cfg.mode = DistMode::kDisaggregated;
  cfg.disagg.sampler_ranks = 2;  // 2 samplers feed 6 trainers
  Pipeline disaggregated(dis_cluster, ds, cfg);

  std::printf("%-7s %-12s %-12s %-10s %-10s %-8s\n", "epoch", "colo-loss",
              "disagg-loss", "handoff(s)", "warmup(s)", "hit%");
  bool identical = true;
  for (int epoch = 0; epoch < 6; ++epoch) {
    const EpochStats a = colocated.run_epoch(epoch);
    const EpochStats b = disaggregated.run_epoch(epoch);
    const double handoff =
        b.comm_phases.count("handoff") ? b.comm_phases.at("handoff") : 0.0;
    std::printf("%-7d %-12.6f %-12.6f %-10.6f %-10.4f %-8.1f\n", epoch, a.loss,
                b.loss, handoff, b.warmup,
                cache_hit_pct(b.cache_hits, b.cache_misses));
    if (a.loss != b.loss) identical = false;
  }

  if (!identical) {
    std::printf("\nFAIL: colocated and disaggregated losses diverged — the "
                "schedule inheritance contract is broken\n");
    return 1;
  }
  std::printf("\ncolocated and disaggregated losses bit-identical across "
              "all epochs\n");
  return 0;
}
