// node2vec sampling through the fused walk engine (DESIGN.md §11).
//
// The node2vec sampler compiles to a walk-shaped plan — GraphSAINT-RW plus
// one kWalkBias op applying the second-order p/q reweighting — and the
// plan executor recognizes that shape and runs every round fused: one pass
// over each walker's adjacency row instead of materializing per-round
// sparse matrices. The fusion is an execution detail, not a semantic one:
// this example runs the same epoch with the engine forced off (the op-by-op
// matrix path) and fully on (degree-sorted relabeling + cache bucketing)
// and exits nonzero if the minibatches are not bit-identical.
#include <cstdio>

#include "core/node2vec.hpp"
#include "graph/dataset.hpp"

using namespace dms;

namespace {

bool identical(const std::vector<MinibatchSample>& a,
               const std::vector<MinibatchSample>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].batch_vertices != b[i].batch_vertices) return false;
    if (a[i].layers.size() != b[i].layers.size()) return false;
    for (std::size_t l = 0; l < a[i].layers.size(); ++l) {
      if (!(a[i].layers[l].adj == b[i].layers[l].adj)) return false;
      if (a[i].layers[l].row_vertices != b[i].layers[l].row_vertices ||
          a[i].layers[l].col_vertices != b[i].layers[l].col_vertices) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main() {
  StandInConfig dcfg;
  dcfg.scale_shift = -2;
  const Dataset ds = make_products_sim(dcfg);
  std::printf("%s\n", ds.graph.summary(ds.name).c_str());

  Node2VecConfig cfg;
  cfg.walk_length = 6;
  cfg.model_layers = 2;
  cfg.p = 0.5;  // discourage backtracking…
  cfg.q = 2.0;  // …and favor staying near the previous vertex (BFS-like)
  const Node2VecSampler sampler(ds.graph, cfg);
  std::printf("\n%s\n", describe(sampler.plan()).c_str());

  std::vector<std::vector<index_t>> batches = {{0, 1, 2, 3, 4, 5},
                                               {6, 7, 8, 9, 10, 11}};
  const std::vector<index_t> ids = {0, 1};

  // Matrix path: the same plan with fusion forced off — every round builds
  // Q, multiplies, biases, normalizes, and ITS-samples as sparse-matrix ops.
  Node2VecSampler reference(ds.graph, cfg);
  reference.set_walk_options({.fused = false});
  const auto matrix = reference.sample_bulk(batches, ids, /*epoch_seed=*/3);

  // Fused path (the default): per-walker advance over the relabeled,
  // cache-bucketed adjacency copy.
  const auto fused = sampler.sample_bulk(batches, ids, /*epoch_seed=*/3);

  for (std::size_t i = 0; i < fused.size(); ++i) {
    std::printf("batch %zu: %zu induced walk vertices, %lld sampled edges\n",
                i, fused[i].batch_vertices.size(),
                static_cast<long long>(fused[i].layers[0].adj.nnz()));
  }
  const bool ok = identical(matrix, fused);
  std::printf("fused engine bit-identical to matrix path: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
