// Graph Partitioned sampling (§5.2): when the graph does not fit on one
// device, partition it across a 1.5D process grid and sample through the
// sparsity-aware 1.5D SpGEMM of Algorithm 2. This example samples a full
// epoch of minibatches on papers-sim at p=16 for several replication
// factors and prints the probability/sampling/extraction breakdown —
// a miniature of Figure 7.
#include <cstdio>

#include "core/minibatch.hpp"
#include "dist/sampler_factory.hpp"
#include "graph/dataset.hpp"

using namespace dms;

int main() {
  StandInConfig dcfg;
  dcfg.scale_shift = -2;  // quarter-size papers-sim for a fast example
  const Dataset ds = make_papers_sim(dcfg);
  std::printf("%s\n\n", ds.graph.summary(ds.name).c_str());

  const auto batches = make_epoch_batches(ds.train_idx, /*batch_size=*/64, 1);
  std::vector<index_t> ids(batches.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<index_t>(i);
  std::printf("sampling %zu minibatches in one bulk, 3-layer fanout (8,4,4)\n\n",
              batches.size());

  std::printf("%-4s %-4s %-12s %-12s %-12s %-12s %-10s %-10s\n", "p", "c", "total(s)",
              "probability", "sampling", "extraction", "compute", "comm");
  for (const int c : {1, 2, 4}) {
    Cluster cluster(ProcessGrid(16, c), CostModel(LinkParams{}));
    SamplerContext ctx;
    ctx.config = SamplerConfig{{8, 4, 4}, 1};
    ctx.grid = &cluster.grid();
    const auto sampler =
        make_sampler(SamplerKind::kGraphSage, DistMode::kPartitioned, ds.graph, ctx);
    const auto per_row =
        as_partitioned(*sampler).sample_bulk(cluster, batches, ids, /*epoch_seed=*/5);

    std::size_t total_samples = 0;
    for (const auto& row : per_row) total_samples += row.size();
    std::printf("%-4d %-4d %-12.4f %-12.4f %-12.4f %-12.4f %-10.4f %-10.4f\n", 16, c,
                cluster.total_time(), cluster.phase_time(kPhaseProbability),
                cluster.phase_time(kPhaseSampling), cluster.phase_time(kPhaseExtraction),
                cluster.total_compute(), cluster.total_comm());
    if (total_samples != batches.size()) {
      std::fprintf(stderr, "lost minibatches!\n");
      return 1;
    }
  }
  std::printf("\nHigher c replicates block rows -> less row-data traffic in the 1.5D\n"
              "SpGEMM (Algorithm 2) at the cost of per-rank memory; communication\n"
              "scales with c, matching the T_prob analysis of §5.2.1.\n");
  return 0;
}
