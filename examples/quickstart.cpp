// Quickstart: the paper's §4 worked example, live.
//
// Builds the 6-vertex graph of Figure 1, then runs the matrix-based
// GraphSAGE and LADIES samplers on the minibatch {1, 5} with s = 2,
// printing every intermediate matrix of Algorithm 1 (Q, P = NORM(QA),
// the ITS sample, and the extracted adjacency).
#include <cstdio>

#include "core/graphsage.hpp"
#include "core/ladies.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

using namespace dms;

namespace {

void print_matrix(const char* name, const CsrMatrix& m) {
  std::printf("%s (%lld x %lld):\n", name, static_cast<long long>(m.rows()),
              static_cast<long long>(m.cols()));
  const DenseD d = to_dense(m);
  for (index_t i = 0; i < d.rows(); ++i) {
    std::printf("  ");
    for (index_t j = 0; j < d.cols(); ++j) std::printf("%5.2f ", d(i, j));
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // Figure 1's example graph: N(1) = {0,2,4}, N(5) = {3,4}.
  const Graph graph{CsrMatrix::from_triplets(
      6, 6,
      {0, 1, 1, 1, 2, 3, 3, 4, 4, 4, 5, 5},
      {1, 0, 2, 4, 1, 4, 5, 1, 3, 5, 3, 4},
      std::vector<value_t>(12, 1.0))};
  const std::vector<index_t> batch = {1, 5};

  std::printf("=== GraphSAGE, batch {1,5}, s=2 (Figure 2a) ===\n");
  const CsrMatrix q = CsrMatrix::one_nonzero_per_row(6, batch);
  print_matrix("Q^L", q);
  CsrMatrix p = spgemm(q, graph.adjacency());
  normalize_rows(p);
  print_matrix("P = NORM(Q^L A)", p);

  GraphSageSampler sage(graph, {{2}, /*seed=*/1});
  const MinibatchSample sage_sample = sage.sample_one(batch, 0, /*epoch_seed=*/3);
  print_matrix("A^L_S (sampled adjacency, frontier columns)", sage_sample.layers[0].adj);
  std::printf("frontier vertices:");
  for (const index_t v : sage_sample.layers[0].col_vertices) {
    std::printf(" %lld", static_cast<long long>(v));
  }
  std::printf("\n\n=== LADIES, batch {1,5}, s=2 (Figure 2b) ===\n");

  LadiesSampler ladies(graph, {{2}, /*seed=*/1});
  const auto prob = ladies.probability_vector(batch);
  std::printf("probability vector (paper: [1/7 0 1/7 1/7 4/7 0]):\n  ");
  for (const value_t v : prob) std::printf("%5.3f ", v);
  std::printf("\n");
  const MinibatchSample ladies_sample = ladies.sample_one(batch, 0, 3);
  print_matrix("A_S = Q_R A Q_C (frontier columns)", ladies_sample.layers[0].adj);
  std::printf("frontier vertices:");
  for (const index_t v : ladies_sample.layers[0].col_vertices) {
    std::printf(" %lld", static_cast<long long>(v));
  }
  std::printf("\n\nDone. See examples/train_node_classifier.cpp for end-to-end training.\n");
  return 0;
}
