// Online serving quickstart (DESIGN.md §10): stand up a ServeEngine over a
// small dataset, warm it into its allocation-free steady state, coalesce a
// burst of concurrent requests into one bulk plan execution, and verify the
// serving identity live — each coalesced prediction is bit-identical to the
// same request served alone.
#include <cstdio>

#include "graph/dataset.hpp"
#include "nn/model.hpp"
#include "serve/engine.hpp"

using namespace dms;

int main() {
  // A small planted-partition dataset: 2000 vertices, 4 classes.
  const Dataset ds =
      make_planted_dataset(2000, 4, /*feature_dim=*/16, /*avg_degree=*/12,
                           /*p_intra=*/0.85, /*seed=*/7);
  std::printf("dataset: %s\n", ds.graph.summary("planted").c_str());

  // Serving reuses the training stack read-only: the 1.5D feature store
  // (with this replica's row cache) and a trained-or-initialized model.
  const ProcessGrid grid(4, 2);
  FeatureStore store(grid, ds.features);
  ModelConfig mc;
  mc.in_dim = 16;
  mc.hidden = 32;
  mc.num_classes = ds.num_classes;
  mc.num_layers = 2;
  const SageModel model(mc);

  ServeEngineConfig cfg;
  cfg.sampler = SamplerKind::kGraphSage;
  cfg.fanouts = {10, 5};
  ServeEngine engine(ds.graph, store, model, cfg, &grid);

  // Warm the scratch arena to its high-water mark, then freeze it: from here
  // on, request handling allocates only results (debug builds assert it).
  engine.warmup({{0, 1, 2, 3, 4, 5, 6, 7}});
  std::printf("warmed: frozen arena holds %zu bytes\n",
              engine.workspace()->frozen_bytes());

  // Three concurrent requests arrive within a 5 ms coalescing window; the
  // coalescer closes one batch for all of them (cap 8 not reached, so the
  // oldest request's deadline closes it at t = 5 ms).
  Coalescer coalescer({/*window=*/0.005, /*max_requests=*/8});
  coalescer.push({/*id=*/0, /*seeds=*/{42}, /*arrival=*/0.000});
  coalescer.push({/*id=*/1, /*seeds=*/{7, 8, 9}, /*arrival=*/0.001});
  coalescer.push({/*id=*/2, /*seeds=*/{100, 200}, /*arrival=*/0.004});
  const CoalescedBatch batch = coalescer.pop(coalescer.ready_at());
  std::printf("coalesced %zu requests at t=%.3fs into one bulk\n",
              batch.size(), batch.formed_at);

  // One stacked-frontier bulk samples all three neighborhoods; predictions
  // come back de-multiplexed per request.
  const ServeBatchResult res = engine.serve(batch);
  for (std::size_t i = 0; i < res.logits.size(); ++i) {
    std::printf("request %lld: %lld seed vertices -> logits %lld x %lld\n",
                static_cast<long long>(batch.requests[i].id),
                static_cast<long long>(batch.requests[i].seeds.size()),
                static_cast<long long>(res.logits[i].rows()),
                static_cast<long long>(res.logits[i].cols()));
  }

  // The serving identity: request 1 served alone is bit-identical to its
  // coalesced prediction (its randomness derives from its request id, not
  // from the batch it rode in).
  const DenseF alone = engine.serve_one(batch.requests[1]);
  bool identical = alone.rows() == res.logits[1].rows();
  for (index_t r = 0; identical && r < alone.rows(); ++r) {
    for (index_t c = 0; c < alone.cols(); ++c) {
      if (alone(r, c) != res.logits[1](r, c)) {
        identical = false;
        break;
      }
    }
  }
  std::printf("coalesced == served-alone: %s\n", identical ? "yes" : "NO");

  // The per-request ledger: queue wait (arrival -> batch formation) plus the
  // batch's sampling/fetch/inference service time.
  const ServeStats& stats = engine.stats();
  std::printf("served %zu requests in %zu batches (mean batch %.1f)\n",
              stats.num_requests(), stats.num_batches(),
              stats.mean_batch_size());
  std::printf("latency p50 %.3f ms (sampling %.3f ms, fetch %.3f ms, "
              "inference %.3f ms total)\n",
              stats.p50() * 1e3, stats.sampling_seconds() * 1e3,
              stats.fetch_seconds() * 1e3, stats.inference_seconds() * 1e3);
  std::printf("\nDone. bench/serve_latency sweeps window x cap x sampler.\n");
  return identical ? 0 : 1;
}
