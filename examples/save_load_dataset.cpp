// Dataset persistence: generate a Table-3 stand-in once, save it in the
// binary format, reload, and verify that sampling on the reloaded dataset
// is bit-identical — the preprocessing workflow of production systems
// (DistDGL/Quiver ship partitioned binary formats for the same reason).
#include <cstdio>
#include <filesystem>

#include "core/graphsage.hpp"
#include "graph/dataset.hpp"
#include "graph/io.hpp"

using namespace dms;

int main() {
  StandInConfig cfg;
  cfg.scale_shift = -3;  // small products-sim for a fast example
  const Dataset original = make_products_sim(cfg);
  std::printf("generated: %s\n", original.graph.summary(original.name).c_str());

  const std::string path =
      (std::filesystem::temp_directory_path() / "dms_example_products.bin").string();
  save_dataset(original, path);
  std::printf("saved to %s (%ju bytes)\n", path.c_str(),
              static_cast<std::uintmax_t>(std::filesystem::file_size(path)));

  const Dataset loaded = load_dataset(path);
  std::printf("loaded:    %s\n", loaded.graph.summary(loaded.name).c_str());

  // Same seeds on the same topology -> identical samples.
  GraphSageSampler s1(original.graph, {{4, 4}, 1});
  GraphSageSampler s2(loaded.graph, {{4, 4}, 1});
  const std::vector<index_t> batch(original.train_idx.begin(),
                                   original.train_idx.begin() + 32);
  const auto a = s1.sample_one(batch, 0, 99);
  const auto b = s2.sample_one(batch, 0, 99);
  bool identical = a.layers.size() == b.layers.size();
  for (std::size_t l = 0; identical && l < a.layers.size(); ++l) {
    identical = a.layers[l].adj == b.layers[l].adj &&
                a.layers[l].col_vertices == b.layers[l].col_vertices;
  }
  std::printf("sampling on reloaded dataset bit-identical: %s\n",
              identical ? "yes" : "NO");

  // MatrixMarket export of a sampled minibatch adjacency for inspection.
  const std::string mm =
      (std::filesystem::temp_directory_path() / "dms_example_sample.mtx").string();
  write_matrix_market(a.layers[0].adj, mm);
  std::printf("wrote sampled adjacency pattern to %s\n", mm.c_str());

  std::filesystem::remove(path);
  std::filesystem::remove(mm);
  return identical ? 0 : 1;
}
