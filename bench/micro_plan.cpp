// Plan-executor overhead + optimizer microbench (plain main, no Google
// Benchmark). Two comparisons:
//  (a) plan executor vs a hand-rolled "direct" loop replaying the pre-IR
//      GraphSAGE/LADIES call sequence — the IR abstraction must stay free;
//  (b) optimized vs unoptimized plan execution (the DESIGN.md §12 pass
//      pipeline) on the LADIES and FastGCN shapes — the optimizer must be
//      bit-identical and must not lose to the unfused plans it replaced.
// --smoke exits nonzero if any output pair is not bit-identical, executor
// overhead exceeds 3%, or optimized plans regress past noise; --json=PATH
// appends rows to the BENCH_micro.json trajectory; --dump-plan prints each
// builtin plan's listing and its optimize() diff, then exits.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/fastgcn.hpp"
#include "core/frontier.hpp"
#include "core/graphsage.hpp"
#include "core/its.hpp"
#include "core/ladies.hpp"
#include "core/minibatch.hpp"
#include "plan/builders.hpp"
#include "plan/executor.hpp"
#include "plan/optimize.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {
namespace {

// --- direct references: the pre-IR sampler bodies, inlined -----------------

std::vector<MinibatchSample> direct_sage(
    const Graph& graph, const SamplerConfig& cfg,
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed,
    Workspace& ws) {
  const auto k = static_cast<index_t>(batches.size());
  const index_t n = graph.num_vertices();
  std::vector<MinibatchSample> out(static_cast<std::size_t>(k));
  std::vector<std::vector<index_t>> frontier(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    out[static_cast<std::size_t>(i)].batch_vertices = batches[static_cast<std::size_t>(i)];
    frontier[static_cast<std::size_t>(i)] = batches[static_cast<std::size_t>(i)];
  }
  for (index_t l = 0; l < cfg.num_layers(); ++l) {
    const index_t s = cfg.fanouts[static_cast<std::size_t>(l)];
    const FrontierStack stack = stack_frontiers(frontier);
    const CsrMatrix q = CsrMatrix::one_nonzero_per_row(n, stack.vertices);
    SpgemmOptions sopts;
    sopts.workspace = &ws;
    CsrMatrix p = spgemm(q, graph.adjacency(), sopts);
    normalize_rows(p);
    const CsrMatrix qs = its_sample_rows(
        p, s, sage_row_seed_fn(stack, batch_ids, 0, l, epoch_seed), &ws);
    for (index_t i = 0; i < k; ++i) {
      LayerSample layer = sage_extract_layer(qs, stack, static_cast<std::size_t>(i),
                                             frontier[static_cast<std::size_t>(i)]);
      frontier[static_cast<std::size_t>(i)] = layer.col_vertices;
      out[static_cast<std::size_t>(i)].layers.push_back(std::move(layer));
    }
  }
  return out;
}

std::vector<MinibatchSample> direct_ladies(
    const Graph& graph, const SamplerConfig& cfg,
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed,
    Workspace& ws) {
  const auto k = static_cast<index_t>(batches.size());
  const index_t n = graph.num_vertices();
  std::vector<MinibatchSample> out(static_cast<std::size_t>(k));
  std::vector<std::vector<index_t>> current(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    out[static_cast<std::size_t>(i)].batch_vertices = batches[static_cast<std::size_t>(i)];
    current[static_cast<std::size_t>(i)] = batches[static_cast<std::size_t>(i)];
  }
  for (index_t l = 0; l < cfg.num_layers(); ++l) {
    const index_t s = cfg.fanouts[static_cast<std::size_t>(l)];
    const CsrMatrix q = ladies_indicator_rows(n, current);
    SpgemmOptions popts;
    popts.workspace = &ws;
    CsrMatrix p = spgemm(q, graph.adjacency(), popts);
    ladies_norm(p);
    const CsrMatrix qs = its_sample_rows(
        p, s,
        [&](index_t row) {
          return derive_seed(
              epoch_seed,
              static_cast<std::uint64_t>(batch_ids[static_cast<std::size_t>(row)]),
              static_cast<std::uint64_t>(l), 0);
        },
        &ws);
    for (index_t i = 0; i < k; ++i) {
      const auto& rows = current[static_cast<std::size_t>(i)];
      std::vector<index_t> sampled(qs.row_cols(i).begin(), qs.row_cols(i).end());
      const CsrMatrix qr = CsrMatrix::one_nonzero_per_row(n, rows);
      SpgemmOptions mopts;
      mopts.column_mask = &sampled;
      mopts.workspace = &ws;
      const CsrMatrix a_s = spgemm(qr, graph.adjacency(), mopts);
      LayerSample layer = ladies_assemble_layer(rows, sampled, a_s);
      current[static_cast<std::size_t>(i)] = layer.col_vertices;
      out[static_cast<std::size_t>(i)].layers.push_back(std::move(layer));
    }
  }
  return out;
}

bool identical(const std::vector<MinibatchSample>& a,
               const std::vector<MinibatchSample>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].batch_vertices != b[i].batch_vertices) return false;
    if (a[i].layers.size() != b[i].layers.size()) return false;
    for (std::size_t l = 0; l < a[i].layers.size(); ++l) {
      if (!(a[i].layers[l].adj == b[i].layers[l].adj)) return false;
      if (a[i].layers[l].row_vertices != b[i].layers[l].row_vertices) return false;
      if (a[i].layers[l].col_vertices != b[i].layers[l].col_vertices) return false;
    }
  }
  return true;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t m = v.size() / 2;
  return v.size() % 2 == 1 ? v[m] : 0.5 * (v[m - 1] + v[m]);
}

struct CaseResult {
  std::vector<double> direct_reps;  // seconds per rep, paired with plan_reps
  std::vector<double> plan_reps;
  bool bit_identical = false;
  double direct_s() const { return median(direct_reps); }
  double plan_s() const { return median(plan_reps); }
  /// Median of the per-rep paired ratios: each rep measures both paths
  /// back-to-back, so the ratio cancels frequency/contention drift and the
  /// median discards outlier reps.
  double overhead() const {
    std::vector<double> ratios(direct_reps.size());
    for (std::size_t i = 0; i < ratios.size(); ++i) {
      ratios[i] = plan_reps[i] / direct_reps[i] - 1.0;
    }
    return median(ratios);
  }
};

template <typename DirectFn>
CaseResult run_case(const MatrixSampler& plan_sampler, DirectFn&& direct,
                    const Graph& graph, const SamplerConfig& cfg,
                    const std::vector<std::vector<index_t>>& batches, int reps,
                    int inner) {
  std::vector<index_t> ids(batches.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<index_t>(i);
  Workspace direct_ws;
  CaseResult r;
  r.bit_identical = true;
  // One warm-up epoch per path populates both workspaces, then alternating
  // paired measurements summarized by medians (pairing cancels drift
  // between the paths, the median discards outlier reps). `inner` epochs
  // per measurement keep each sample long enough for the clock to resolve
  // the small LADIES workload.
  (void)direct(graph, cfg, batches, ids, 0, direct_ws);
  (void)plan_sampler.sample_bulk(batches, ids, 0);
  for (int rep = 1; rep <= reps; ++rep) {
    // Correctness first, outside the timed region.
    const auto check_seed = static_cast<std::uint64_t>(rep);
    r.bit_identical =
        r.bit_identical &&
        identical(direct(graph, cfg, batches, ids, check_seed, direct_ws),
                  plan_sampler.sample_bulk(batches, ids, check_seed));
    Timer td;
    for (int e = 0; e < inner; ++e) {
      (void)direct(graph, cfg, batches, ids,
                   static_cast<std::uint64_t>(rep * inner + e), direct_ws);
    }
    r.direct_reps.push_back(td.seconds());
    Timer tp;
    for (int e = 0; e < inner; ++e) {
      (void)plan_sampler.sample_bulk(
          batches, ids, static_cast<std::uint64_t>(rep * inner + e));
    }
    r.plan_reps.push_back(tp.seconds());
  }
  return r;
}

// --- optimizer: optimized vs unoptimized execution of the same plan --------

/// Reuses CaseResult with direct_reps = the unoptimized plan and plan_reps =
/// the optimized one, so overhead() is the optimizer's cost (negative = the
/// optimizer wins).
CaseResult run_opt_case(const SamplePlan& plan, const Graph& graph,
                        const SamplerConfig& cfg,
                        const std::vector<std::vector<index_t>>& batches,
                        int reps, int inner,
                        const std::vector<value_t>* weights) {
  std::vector<index_t> ids(batches.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<index_t>(i);
  const PlanExecutor unopt(plan, cfg, {/*optimize=*/false});
  const PlanExecutor opt(plan, cfg);
  Workspace wu, wo;
  CaseResult r;
  r.bit_identical = true;
  (void)unopt.run(graph, batches, ids, 0, &wu, weights);
  (void)opt.run(graph, batches, ids, 0, &wo, weights);
  for (int rep = 1; rep <= reps; ++rep) {
    const auto check_seed = static_cast<std::uint64_t>(rep);
    r.bit_identical =
        r.bit_identical &&
        identical(unopt.run(graph, batches, ids, check_seed, &wu, weights),
                  opt.run(graph, batches, ids, check_seed, &wo, weights));
    Timer tu;
    for (int e = 0; e < inner; ++e) {
      (void)unopt.run(graph, batches, ids,
                      static_cast<std::uint64_t>(rep * inner + e), &wu, weights);
    }
    r.direct_reps.push_back(tu.seconds());
    Timer to;
    for (int e = 0; e < inner; ++e) {
      (void)opt.run(graph, batches, ids,
                    static_cast<std::uint64_t>(rep * inner + e), &wo, weights);
    }
    r.plan_reps.push_back(to.seconds());
  }
  return r;
}

std::size_t op_count(const SamplePlan& p) {
  return p.body.size() + p.epilogue.size();
}

// --- --dump-plan: listings and optimize() diffs for the builtin plans ------

int dump_plans() {
  const std::vector<std::pair<const char*, SamplePlan>> plans = {
      {"sage", build_sage_plan()},
      {"ladies", build_ladies_plan()},
      {"fastgcn", build_fastgcn_plan()},
      {"labor", build_labor_plan()},
      {"saint_rw", build_saint_plan(3, 2)},
      {"ladies (lowered)", lower_to_dist(build_ladies_plan())},
  };
  for (const auto& [name, plan] : plans) {
    const SamplePlan after = optimize(plan);
    std::printf("=== %s: %zu ops -> %zu ops ===\n%s", name, op_count(plan),
                op_count(after), describe(plan).c_str());
    std::printf("--- optimize() diff ---\n%s\n",
                describe_diff(plan, after).c_str());
  }
  return 0;
}

int run(bool smoke, const std::string& json_path) {
  const Dataset& ds = bench::dataset("products");
  const int reps = smoke ? 7 : 11;
  auto batches = make_epoch_batches(ds.train_idx, bench::arch().sage_batch, 1);
  batches.resize(std::min<std::size_t>(batches.size(), smoke ? 16 : 64));

  const SamplerConfig sage_cfg{bench::arch().sage_fanout, 1};
  const SamplerConfig ladies_cfg{{bench::arch().ladies_s}, 1};
  GraphSageSampler sage(ds.graph, sage_cfg);
  LadiesSampler ladies(ds.graph, ladies_cfg);

  // LADIES epochs are milliseconds at bench scale; loop them so each timed
  // sample is long enough for a stable min.
  const CaseResult sage_r =
      run_case(sage, direct_sage, ds.graph, sage_cfg, batches, reps, 1);
  const CaseResult ladies_r =
      run_case(ladies, direct_ladies, ds.graph, ladies_cfg, batches, reps, 24);

  std::printf("Plan-executor overhead vs direct kernel calls (%s, %zu "
              "minibatches, median of %d paired reps):\n",
              ds.name.c_str(), batches.size(), reps);
  std::printf("  %-8s direct %.4fs  plan %.4fs  overhead %+.2f%%  bits %s\n",
              "sage", sage_r.direct_s(), sage_r.plan_s(), 100.0 * sage_r.overhead(),
              sage_r.bit_identical ? "identical" : "DIFFER");
  std::printf("  %-8s direct %.4fs  plan %.4fs  overhead %+.2f%%  bits %s\n",
              "ladies", ladies_r.direct_s(), ladies_r.plan_s(),
              100.0 * ladies_r.overhead(),
              ladies_r.bit_identical ? "identical" : "DIFFER");

  // The gate is the combined workload: per-case numbers on millisecond
  // epochs swing a few percent with allocator/cache state, but the summed
  // min-of-reps is stable and is what a training epoch actually pays.
  const double combined =
      (sage_r.plan_s() + ladies_r.plan_s()) /
          (sage_r.direct_s() + ladies_r.direct_s()) -
      1.0;
  std::printf("  combined overhead %+.2f%%\n", 100.0 * combined);

  // Optimized vs unoptimized plans (the DESIGN.md §12 pass pipeline).
  // LADIES is the shape the optimizer was built for (normalize + slice
  // fusion drop its body from 7 to 5 ops and move the row normalization
  // into the engine's parallel per-block epilogue); FastGCN has nothing to
  // fuse, so it measures the pipeline's no-op cost (stamping only).
  const SamplePlan ladies_plan = build_ladies_plan();
  const SamplePlan fastgcn_plan = build_fastgcn_plan();
  const std::vector<value_t> fg_weights = fastgcn_importance_prefix(ds.graph);
  const CaseResult opt_ladies =
      run_opt_case(ladies_plan, ds.graph, ladies_cfg, batches, reps, 24, nullptr);
  const CaseResult opt_fastgcn = run_opt_case(fastgcn_plan, ds.graph, ladies_cfg,
                                              batches, reps, 24, &fg_weights);
  const std::size_t ladies_ops_saved =
      op_count(ladies_plan) - op_count(optimize(ladies_plan));

  std::printf("Optimized vs unoptimized plan execution (median of %d paired "
              "reps):\n", reps);
  std::printf("  %-8s unopt %.4fs  opt %.4fs  speedup %+.2f%%  bits %s\n",
              "ladies", opt_ladies.direct_s(), opt_ladies.plan_s(),
              -100.0 * opt_ladies.overhead(),
              opt_ladies.bit_identical ? "identical" : "DIFFER");
  std::printf("  %-8s unopt %.4fs  opt %.4fs  speedup %+.2f%%  bits %s\n",
              "fastgcn", opt_fastgcn.direct_s(), opt_fastgcn.plan_s(),
              -100.0 * opt_fastgcn.overhead(),
              opt_fastgcn.bit_identical ? "identical" : "DIFFER");
  const double opt_combined =
      (opt_ladies.plan_s() + opt_fastgcn.plan_s()) /
          (opt_ladies.direct_s() + opt_fastgcn.direct_s()) -
      1.0;
  std::printf("  combined speedup %+.2f%% (ladies body: %zu ops fused away)\n",
              -100.0 * opt_combined, ladies_ops_saved);

  if (!json_path.empty()) {
    bench::JsonWriter json(json_path, /*append=*/true);
    if (!json.ok()) {
      std::fprintf(stderr, "micro_plan: cannot open %s\n", json_path.c_str());
      return 1;
    }
    const std::string bench_id =
        std::string("micro_plan/overhead") + (smoke ? " (smoke)" : "");
    for (const auto& [name, r] :
         {std::pair<const char*, const CaseResult&>{"sage", sage_r},
          std::pair<const char*, const CaseResult&>{"ladies", ladies_r}}) {
      json.row({{"bench", bench_id},
                {"case", name},
                {"direct_s", r.direct_s()},
                {"plan_s", r.plan_s()},
                {"overhead_pct", 100.0 * r.overhead()},
                {"bit_identical", r.bit_identical ? "yes" : "no"}});
    }
    json.row({{"bench", bench_id},
              {"case", "combined"},
              {"direct_s", sage_r.direct_s() + ladies_r.direct_s()},
              {"plan_s", sage_r.plan_s() + ladies_r.plan_s()},
              {"overhead_pct", 100.0 * combined},
              {"bit_identical",
               sage_r.bit_identical && ladies_r.bit_identical ? "yes" : "no"}});
    const std::string opt_id =
        std::string("micro_plan/optimize") + (smoke ? " (smoke)" : "");
    for (const auto& [name, r] :
         {std::pair<const char*, const CaseResult&>{"ladies", opt_ladies},
          std::pair<const char*, const CaseResult&>{"fastgcn", opt_fastgcn}}) {
      json.row({{"bench", opt_id},
                {"case", name},
                {"unopt_s", r.direct_s()},
                {"opt_s", r.plan_s()},
                {"speedup_pct", -100.0 * r.overhead()},
                {"bit_identical", r.bit_identical ? "yes" : "no"}});
    }
    json.row({{"bench", opt_id},
              {"case", "combined"},
              {"unopt_s", opt_ladies.direct_s() + opt_fastgcn.direct_s()},
              {"opt_s", opt_ladies.plan_s() + opt_fastgcn.plan_s()},
              {"speedup_pct", -100.0 * opt_combined},
              {"bit_identical",
               opt_ladies.bit_identical && opt_fastgcn.bit_identical ? "yes"
                                                                     : "no"}});
    std::printf("JSON appended to %s\n", json_path.c_str());
  }

  if (smoke) {
    // The IR must stay free: combined overhead under 3%, and neither case
    // may regress badly on its own (the per-case numbers swing a few
    // percent with allocator/cache state on millisecond epochs, so the
    // per-case bound is looser — it catches structural regressions, not
    // noise, which the combined gate would otherwise hide behind the
    // larger SAGE workload).
    constexpr double kMaxCombined = 0.03;
    constexpr double kMaxPerCase = 0.10;
    if (!sage_r.bit_identical || !ladies_r.bit_identical) {
      std::fprintf(stderr, "FAIL: plan outputs diverge from direct outputs\n");
      return 1;
    }
    if (combined > kMaxCombined) {
      std::fprintf(stderr, "FAIL: combined executor overhead %.2f%% above %.0f%%\n",
                   100.0 * combined, 100.0 * kMaxCombined);
      return 1;
    }
    if (sage_r.overhead() > kMaxPerCase || ladies_r.overhead() > kMaxPerCase) {
      std::fprintf(stderr, "FAIL: per-case executor overhead above %.0f%%\n",
                   100.0 * kMaxPerCase);
      return 1;
    }
    // The optimizer must earn its keep: bit-identical always; the shape it
    // fuses (LADIES) must not lose to the unoptimized PR-5 plan it
    // replaced, and must actually have fused ops; the shape it cannot fuse
    // (FastGCN) may only cost noise. Bounds mirror the executor gate above:
    // per-case numbers on millisecond epochs swing several percent with
    // machine state (FastGCN's optimized plan is structurally identical to
    // its unoptimized one, so its case is pure noise floor), while the
    // combined number is stable; a real regression shows up far past both.
    constexpr double kMaxOptRegress = 0.03;
    constexpr double kMaxOptRegressPerCase = 0.10;
    if (!opt_ladies.bit_identical || !opt_fastgcn.bit_identical) {
      std::fprintf(stderr,
                   "FAIL: optimized plan outputs diverge from unoptimized\n");
      return 1;
    }
    if (ladies_ops_saved < 2) {
      std::fprintf(stderr, "FAIL: optimizer fused %zu LADIES ops, expected 2\n",
                   ladies_ops_saved);
      return 1;
    }
    if (opt_ladies.overhead() > kMaxOptRegressPerCase ||
        opt_fastgcn.overhead() > kMaxOptRegressPerCase ||
        opt_combined > kMaxOptRegress) {
      std::fprintf(stderr,
                   "FAIL: optimized plans slower than unoptimized "
                   "(ladies %+.2f%%, fastgcn %+.2f%%, combined %+.2f%%, "
                   "allowed %.0f%%)\n",
                   100.0 * opt_ladies.overhead(), 100.0 * opt_fastgcn.overhead(),
                   100.0 * opt_combined, 100.0 * kMaxOptRegressPerCase);
      return 1;
    }
    std::printf("SMOKE OK: bit-identical, combined overhead under %.0f%%, "
                "per-case under %.0f%%, optimized plans no worse than "
                "unoptimized\n",
                100.0 * kMaxCombined, 100.0 * kMaxPerCase);
  }
  return 0;
}

}  // namespace
}  // namespace dms

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--dump-plan") {
      return dms::dump_plans();
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }
  return dms::run(smoke, json_path);
}
