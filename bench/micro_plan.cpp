// Plan-executor overhead microbench (plain main, no Google Benchmark):
// runs the same sampling workload through (a) the plan executor — the
// production path of every sampler since the IR refactor — and (b) a
// hand-rolled "direct" loop that replays the pre-IR GraphSAGE/LADIES call
// sequence against the kernels with no IR in between, then reports the
// relative overhead. --smoke exits nonzero if outputs are not bit-identical
// or the executor overhead exceeds 3% (the abstraction must stay free);
// --json=PATH appends rows to the BENCH_micro.json trajectory.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/frontier.hpp"
#include "core/graphsage.hpp"
#include "core/its.hpp"
#include "core/ladies.hpp"
#include "core/minibatch.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace dms {
namespace {

// --- direct references: the pre-IR sampler bodies, inlined -----------------

std::vector<MinibatchSample> direct_sage(
    const Graph& graph, const SamplerConfig& cfg,
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed,
    Workspace& ws) {
  const auto k = static_cast<index_t>(batches.size());
  const index_t n = graph.num_vertices();
  std::vector<MinibatchSample> out(static_cast<std::size_t>(k));
  std::vector<std::vector<index_t>> frontier(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    out[static_cast<std::size_t>(i)].batch_vertices = batches[static_cast<std::size_t>(i)];
    frontier[static_cast<std::size_t>(i)] = batches[static_cast<std::size_t>(i)];
  }
  for (index_t l = 0; l < cfg.num_layers(); ++l) {
    const index_t s = cfg.fanouts[static_cast<std::size_t>(l)];
    const FrontierStack stack = stack_frontiers(frontier);
    const CsrMatrix q = CsrMatrix::one_nonzero_per_row(n, stack.vertices);
    SpgemmOptions sopts;
    sopts.workspace = &ws;
    CsrMatrix p = spgemm(q, graph.adjacency(), sopts);
    normalize_rows(p);
    const CsrMatrix qs = its_sample_rows(
        p, s, sage_row_seed_fn(stack, batch_ids, 0, l, epoch_seed), &ws);
    for (index_t i = 0; i < k; ++i) {
      LayerSample layer = sage_extract_layer(qs, stack, static_cast<std::size_t>(i),
                                             frontier[static_cast<std::size_t>(i)]);
      frontier[static_cast<std::size_t>(i)] = layer.col_vertices;
      out[static_cast<std::size_t>(i)].layers.push_back(std::move(layer));
    }
  }
  return out;
}

std::vector<MinibatchSample> direct_ladies(
    const Graph& graph, const SamplerConfig& cfg,
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& batch_ids, std::uint64_t epoch_seed,
    Workspace& ws) {
  const auto k = static_cast<index_t>(batches.size());
  const index_t n = graph.num_vertices();
  std::vector<MinibatchSample> out(static_cast<std::size_t>(k));
  std::vector<std::vector<index_t>> current(static_cast<std::size_t>(k));
  for (index_t i = 0; i < k; ++i) {
    out[static_cast<std::size_t>(i)].batch_vertices = batches[static_cast<std::size_t>(i)];
    current[static_cast<std::size_t>(i)] = batches[static_cast<std::size_t>(i)];
  }
  for (index_t l = 0; l < cfg.num_layers(); ++l) {
    const index_t s = cfg.fanouts[static_cast<std::size_t>(l)];
    const CsrMatrix q = ladies_indicator_rows(n, current);
    SpgemmOptions popts;
    popts.workspace = &ws;
    CsrMatrix p = spgemm(q, graph.adjacency(), popts);
    ladies_norm(p);
    const CsrMatrix qs = its_sample_rows(
        p, s,
        [&](index_t row) {
          return derive_seed(
              epoch_seed,
              static_cast<std::uint64_t>(batch_ids[static_cast<std::size_t>(row)]),
              static_cast<std::uint64_t>(l), 0);
        },
        &ws);
    for (index_t i = 0; i < k; ++i) {
      const auto& rows = current[static_cast<std::size_t>(i)];
      std::vector<index_t> sampled(qs.row_cols(i).begin(), qs.row_cols(i).end());
      const CsrMatrix qr = CsrMatrix::one_nonzero_per_row(n, rows);
      SpgemmOptions mopts;
      mopts.column_mask = &sampled;
      mopts.workspace = &ws;
      const CsrMatrix a_s = spgemm(qr, graph.adjacency(), mopts);
      LayerSample layer = ladies_assemble_layer(rows, sampled, a_s);
      current[static_cast<std::size_t>(i)] = layer.col_vertices;
      out[static_cast<std::size_t>(i)].layers.push_back(std::move(layer));
    }
  }
  return out;
}

bool identical(const std::vector<MinibatchSample>& a,
               const std::vector<MinibatchSample>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].batch_vertices != b[i].batch_vertices) return false;
    if (a[i].layers.size() != b[i].layers.size()) return false;
    for (std::size_t l = 0; l < a[i].layers.size(); ++l) {
      if (!(a[i].layers[l].adj == b[i].layers[l].adj)) return false;
      if (a[i].layers[l].row_vertices != b[i].layers[l].row_vertices) return false;
      if (a[i].layers[l].col_vertices != b[i].layers[l].col_vertices) return false;
    }
  }
  return true;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t m = v.size() / 2;
  return v.size() % 2 == 1 ? v[m] : 0.5 * (v[m - 1] + v[m]);
}

struct CaseResult {
  std::vector<double> direct_reps;  // seconds per rep, paired with plan_reps
  std::vector<double> plan_reps;
  bool bit_identical = false;
  double direct_s() const { return median(direct_reps); }
  double plan_s() const { return median(plan_reps); }
  /// Median of the per-rep paired ratios: each rep measures both paths
  /// back-to-back, so the ratio cancels frequency/contention drift and the
  /// median discards outlier reps.
  double overhead() const {
    std::vector<double> ratios(direct_reps.size());
    for (std::size_t i = 0; i < ratios.size(); ++i) {
      ratios[i] = plan_reps[i] / direct_reps[i] - 1.0;
    }
    return median(ratios);
  }
};

template <typename DirectFn>
CaseResult run_case(const MatrixSampler& plan_sampler, DirectFn&& direct,
                    const Graph& graph, const SamplerConfig& cfg,
                    const std::vector<std::vector<index_t>>& batches, int reps,
                    int inner) {
  std::vector<index_t> ids(batches.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<index_t>(i);
  Workspace direct_ws;
  CaseResult r;
  r.bit_identical = true;
  // One warm-up epoch per path populates both workspaces, then alternating
  // paired measurements summarized by medians (pairing cancels drift
  // between the paths, the median discards outlier reps). `inner` epochs
  // per measurement keep each sample long enough for the clock to resolve
  // the small LADIES workload.
  (void)direct(graph, cfg, batches, ids, 0, direct_ws);
  (void)plan_sampler.sample_bulk(batches, ids, 0);
  for (int rep = 1; rep <= reps; ++rep) {
    // Correctness first, outside the timed region.
    const auto check_seed = static_cast<std::uint64_t>(rep);
    r.bit_identical =
        r.bit_identical &&
        identical(direct(graph, cfg, batches, ids, check_seed, direct_ws),
                  plan_sampler.sample_bulk(batches, ids, check_seed));
    Timer td;
    for (int e = 0; e < inner; ++e) {
      (void)direct(graph, cfg, batches, ids,
                   static_cast<std::uint64_t>(rep * inner + e), direct_ws);
    }
    r.direct_reps.push_back(td.seconds());
    Timer tp;
    for (int e = 0; e < inner; ++e) {
      (void)plan_sampler.sample_bulk(
          batches, ids, static_cast<std::uint64_t>(rep * inner + e));
    }
    r.plan_reps.push_back(tp.seconds());
  }
  return r;
}

int run(bool smoke, const std::string& json_path) {
  const Dataset& ds = bench::dataset("products");
  const int reps = smoke ? 7 : 11;
  auto batches = make_epoch_batches(ds.train_idx, bench::arch().sage_batch, 1);
  batches.resize(std::min<std::size_t>(batches.size(), smoke ? 16 : 64));

  const SamplerConfig sage_cfg{bench::arch().sage_fanout, 1};
  const SamplerConfig ladies_cfg{{bench::arch().ladies_s}, 1};
  GraphSageSampler sage(ds.graph, sage_cfg);
  LadiesSampler ladies(ds.graph, ladies_cfg);

  // LADIES epochs are milliseconds at bench scale; loop them so each timed
  // sample is long enough for a stable min.
  const CaseResult sage_r =
      run_case(sage, direct_sage, ds.graph, sage_cfg, batches, reps, 1);
  const CaseResult ladies_r =
      run_case(ladies, direct_ladies, ds.graph, ladies_cfg, batches, reps, 24);

  std::printf("Plan-executor overhead vs direct kernel calls (%s, %zu "
              "minibatches, median of %d paired reps):\n",
              ds.name.c_str(), batches.size(), reps);
  std::printf("  %-8s direct %.4fs  plan %.4fs  overhead %+.2f%%  bits %s\n",
              "sage", sage_r.direct_s(), sage_r.plan_s(), 100.0 * sage_r.overhead(),
              sage_r.bit_identical ? "identical" : "DIFFER");
  std::printf("  %-8s direct %.4fs  plan %.4fs  overhead %+.2f%%  bits %s\n",
              "ladies", ladies_r.direct_s(), ladies_r.plan_s(),
              100.0 * ladies_r.overhead(),
              ladies_r.bit_identical ? "identical" : "DIFFER");

  // The gate is the combined workload: per-case numbers on millisecond
  // epochs swing a few percent with allocator/cache state, but the summed
  // min-of-reps is stable and is what a training epoch actually pays.
  const double combined =
      (sage_r.plan_s() + ladies_r.plan_s()) /
          (sage_r.direct_s() + ladies_r.direct_s()) -
      1.0;
  std::printf("  combined overhead %+.2f%%\n", 100.0 * combined);

  if (!json_path.empty()) {
    bench::JsonWriter json(json_path, /*append=*/true);
    if (!json.ok()) {
      std::fprintf(stderr, "micro_plan: cannot open %s\n", json_path.c_str());
      return 1;
    }
    const std::string bench_id =
        std::string("micro_plan/overhead") + (smoke ? " (smoke)" : "");
    for (const auto& [name, r] :
         {std::pair<const char*, const CaseResult&>{"sage", sage_r},
          std::pair<const char*, const CaseResult&>{"ladies", ladies_r}}) {
      json.row({{"bench", bench_id},
                {"case", name},
                {"direct_s", r.direct_s()},
                {"plan_s", r.plan_s()},
                {"overhead_pct", 100.0 * r.overhead()},
                {"bit_identical", r.bit_identical ? "yes" : "no"}});
    }
    json.row({{"bench", bench_id},
              {"case", "combined"},
              {"direct_s", sage_r.direct_s() + ladies_r.direct_s()},
              {"plan_s", sage_r.plan_s() + ladies_r.plan_s()},
              {"overhead_pct", 100.0 * combined},
              {"bit_identical",
               sage_r.bit_identical && ladies_r.bit_identical ? "yes" : "no"}});
    std::printf("JSON appended to %s\n", json_path.c_str());
  }

  if (smoke) {
    // The IR must stay free: combined overhead under 3%, and neither case
    // may regress badly on its own (the per-case numbers swing a few
    // percent with allocator/cache state on millisecond epochs, so the
    // per-case bound is looser — it catches structural regressions, not
    // noise, which the combined gate would otherwise hide behind the
    // larger SAGE workload).
    constexpr double kMaxCombined = 0.03;
    constexpr double kMaxPerCase = 0.10;
    if (!sage_r.bit_identical || !ladies_r.bit_identical) {
      std::fprintf(stderr, "FAIL: plan outputs diverge from direct outputs\n");
      return 1;
    }
    if (combined > kMaxCombined) {
      std::fprintf(stderr, "FAIL: combined executor overhead %.2f%% above %.0f%%\n",
                   100.0 * combined, 100.0 * kMaxCombined);
      return 1;
    }
    if (sage_r.overhead() > kMaxPerCase || ladies_r.overhead() > kMaxPerCase) {
      std::fprintf(stderr, "FAIL: per-case executor overhead above %.0f%%\n",
                   100.0 * kMaxPerCase);
      return 1;
    }
    std::printf("SMOKE OK: bit-identical, combined overhead under %.0f%%, "
                "per-case under %.0f%%\n",
                100.0 * kMaxCombined, 100.0 * kMaxPerCase);
  }
  return 0;
}

}  // namespace
}  // namespace dms

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }
  return dms::run(smoke, json_path);
}
