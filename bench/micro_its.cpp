// Micro-benchmarks of inverse transform sampling (the SAMPLE step), showing
// the prefix-sum cost is negligible relative to SpGEMM (§2.3's claim).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/its.hpp"
#include "sparse/coo.hpp"

namespace {

using namespace dms;

CsrMatrix make_p(index_t rows, index_t row_nnz, index_t cols) {
  CooMatrix coo(rows, cols);
  Pcg32 rng(9);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t i = 0; i < row_nnz; ++i) {
      coo.push(r, rng.bounded64(cols), rng.uniform() + 0.01);
    }
  }
  return CsrMatrix::from_coo(coo);
}

void BM_ItsSampleRows(benchmark::State& state) {
  const auto rows = static_cast<index_t>(state.range(0));
  const auto s = static_cast<index_t>(state.range(1));
  const CsrMatrix p = make_p(rows, 64, 1 << 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(its_sample_rows(p, s, std::uint64_t{7}));
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ItsSampleRows)
    ->Args({1024, 5})
    ->Args({1024, 15})
    ->Args({16384, 5})
    ->Args({16384, 15})
    ->Unit(benchmark::kMillisecond);

void BM_ItsWideRow(benchmark::State& state) {
  // One LADIES-style row spanning many columns.
  const auto nnz = static_cast<index_t>(state.range(0));
  const CsrMatrix p = make_p(1, nnz, 1 << 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(its_sample_rows(p, 512, std::uint64_t{11}));
  }
}
BENCHMARK(BM_ItsWideRow)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17)->Unit(benchmark::kMillisecond);

}  // namespace
