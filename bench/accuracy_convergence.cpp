// §8.1.3 model-accuracy experiment: the optimizations (matrix-based bulk
// sampling, distribution) must not affect accuracy.
//
// The paper reports 77.8% on OGB products (within 1% of the OGB GraphSAGE
// baseline). Products' true labels are unavailable offline, so accuracy is
// checked on the planted-partition dataset where the Bayes-optimal labels
// are known by construction: a 3-layer SAGE must reach high test accuracy,
// and the result must be identical for any bulk size k and unaffected by
// the process count used for sampling.
#include "bench_util.hpp"

using namespace dms;
using namespace dms::bench;

namespace {

double train_and_eval(const Dataset& ds, int p, int c, index_t bulk_k, int epochs,
                      double* final_loss) {
  Cluster cluster(ProcessGrid(p, c), CostModel(perlmutter_links()));
  PipelineConfig cfg;
  cfg.sampler = SamplerKind::kGraphSage;
  cfg.batch_size = 128;
  cfg.fanouts = {8, 4, 4};
  cfg.hidden = 32;
  cfg.lr = 5e-3f;
  cfg.bulk_k = bulk_k;
  Pipeline pipe(cluster, ds, cfg);
  double loss = 0.0;
  for (int e = 0; e < epochs; ++e) loss = pipe.run_epoch(e).loss;
  if (final_loss != nullptr) *final_loss = loss;
  return pipe.evaluate(ds.test_idx, {12, 12, 12});  // larger eval fanout (§8.1.3)
}

}  // namespace

int main() {
  print_header("§8.1.3 Accuracy: bulk sampling does not change what is learned");
  const Dataset ds =
      make_planted_dataset(/*n=*/8192, /*classes=*/8, /*f=*/32,
                           /*avg_degree=*/10.0, /*p_intra=*/0.85, /*seed=*/21);
  std::printf("dataset: %s\n", ds.graph.summary(ds.name).c_str());

  print_row({"config", "test-acc", "final-loss"}, 22);
  double loss_a = 0, loss_b = 0, loss_c = 0;
  const double acc_bulk_all = train_and_eval(ds, 4, 2, 0, 10, &loss_a);
  print_row({"p=4 c=2 k=all", fmt(acc_bulk_all, 4), fmt(loss_a, 4)}, 22);
  const double acc_bulk_small = train_and_eval(ds, 4, 2, 8, 10, &loss_b);
  print_row({"p=4 c=2 k=8", fmt(acc_bulk_small, 4), fmt(loss_b, 4)}, 22);
  const double acc_single = train_and_eval(ds, 1, 1, 0, 10, &loss_c);
  print_row({"p=1 (serial)", fmt(acc_single, 4), fmt(loss_c, 4)}, 22);

  const bool bulk_invariant = loss_a == loss_b;
  std::printf("\nbulk-k invariance (identical loss trajectory): %s\n",
              bulk_invariant ? "PASS" : "FAIL");
  std::printf("8-class chance accuracy = 0.125; achieved %.3f (paper analog:\n"
              "77.8%% on products, within 1%% of the OGB reference).\n",
              acc_bulk_all);
  return bulk_invariant && acc_bulk_all > 0.7 ? 0 : 1;
}
