// Table 4: architecture parameters — paper values and the proportionally
// scaled bench values used throughout this harness.
#include "bench_util.hpp"

int main() {
  using namespace dms::bench;
  print_header("Table 4: Architecture parameters");
  print_row({"GNN", "BatchSize", "Fanout", "Hidden", "Layers"});
  print_row({"SAGE(paper)", "1024", "(15,10,5)", "256", "3"});
  print_row({"LADIES(paper)", "512", "512", "256", "1"});
  const auto& a = arch();
  std::string fan = "(";
  for (std::size_t i = 0; i < a.sage_fanout.size(); ++i) {
    fan += std::to_string(a.sage_fanout[i]) + (i + 1 < a.sage_fanout.size() ? "," : ")");
  }
  print_row({"SAGE(bench)", std::to_string(a.sage_batch), fan,
             std::to_string(a.hidden), std::to_string(a.sage_fanout.size())});
  print_row({"LADIES(bench)", std::to_string(a.ladies_batch),
             std::to_string(a.ladies_s), std::to_string(a.hidden), "1"});
  std::printf("\nBench dims are uniformly ~8-16x smaller (CPU-feasible); the structural\n"
              "ratios the experiments depend on (3 SAGE layers, descending fanout,\n"
              "LADIES batch == s, 1 LADIES layer) are preserved.\n");
  return 0;
}
