// Micro-benchmarks of the dense GEMM kernels behind the propagation step
// (§6.2) — the first bench whose headline number is measured wall-clock.
//
// Two modes:
//  - default: the Google Benchmark suite below (BM_*);
//  - --compare [--smoke] [--json=PATH]: a self-contained harness that times
//    the blocked matmul / matmul_tn / matmul_nt kernels against the scalar
//    reference implementations they replaced, cross-checks bit-identity
//    (nonzero exit on any mismatch), and enforces the perf gate: the blocked
//    matmul must beat the reference at every square size d >= 128 (nonzero
//    exit otherwise — the Release CI smoke job gates on this). With --json
//    the measurements are written in the BENCH_micro.json trajectory
//    conventions of bench_util.hpp (appending, so micro_spgemm can share
//    the file).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "nn/gemm.hpp"

namespace {

using namespace dms;

/// Random matrix in [-0.5, 0.5); zero_frac of entries forced to exactly
/// 0.0f (the ReLU-sparse activation pattern the reference kernels skip).
DenseF random_dense(index_t rows, index_t cols, std::uint64_t seed,
                    double zero_frac = 0.0) {
  DenseF m(rows, cols);
  Pcg32 rng(seed);
  float* d = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    d[i] = static_cast<float>(rng.uniform() - 0.5);
    if (zero_frac > 0.0 && rng.uniform() < zero_frac) d[i] = 0.0f;
  }
  return m;
}

void BM_Matmul(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const DenseF a = random_dense(d, d, 11, 0.3);
  const DenseF b = random_dense(d, d, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(matmul_flops(d, d, d)));
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_MatmulTn(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const DenseF a = random_dense(d, d, 17, 0.3);
  const DenseF b = random_dense(d, d, 19);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_tn(a, b));
  }
}
BENCHMARK(BM_MatmulTn)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_MatmulNt(benchmark::State& state) {
  const auto d = static_cast<index_t>(state.range(0));
  const DenseF a = random_dense(d, d, 23, 0.3);
  const DenseF b = random_dense(d, d, 29);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_nt(a, b));
  }
}
BENCHMARK(BM_MatmulNt)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --compare mode
// ---------------------------------------------------------------------------

/// Minimum of `reps` timed runs of fn(), in milliseconds.
template <typename Fn>
double time_min_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.seconds() * 1e3);
  }
  return best;
}

struct CompareCase {
  std::string name;
  index_t m, k, n;
  bool gated;        ///< blocked must beat the reference here (the CI gate)
  double a_zero_frac;  ///< exact-zero fraction of A (ReLU-sparse activations)
};

int run_compare(bool smoke, const std::string& json_path) {
  const int reps = smoke ? 3 : 7;
  bool identical = true;
  bool gate_ok = true;

  // Square dense sizes carry the gate (the d >= 128 acceptance shapes, pure
  // GEMM throughput). The extra cases are the training pipeline's real
  // shapes — forward (batch×features × features×hidden), the narrow
  // classifier layer whose n < one vector tile exercises the
  // scalar-remainder path, and a ReLU-sparse A (30% exact zeros) where the
  // reference's zero-skip shrinks its work; reported, not gated.
  std::vector<CompareCase> cases;
  for (const index_t d : smoke ? std::vector<index_t>{64, 128}
                               : std::vector<index_t>{64, 128, 256, 512}) {
    cases.push_back({"d" + std::to_string(d), d, d, d, d >= 128, 0.0});
  }
  if (!smoke) {
    cases.push_back({"sage_fwd_2048x128x128", 2048, 128, 128, true, 0.0});
    cases.push_back({"classifier_2048x128x16", 2048, 128, 16, false, 0.3});
    cases.push_back({"relu30_d256", 256, 256, 256, false, 0.3});
  }

  // Truncating writer: micro_gemm (re)creates the trajectory file, then
  // micro_spgemm --kernel-compare appends its rows. Regenerating the
  // checked-in BENCH_micro.json means running the two in that order;
  // starting fresh here is what keeps re-runs from accumulating duplicate
  // rows in the baseline.
  bench::JsonWriter json(json_path.empty() ? "/dev/null" : json_path);
  if (!json_path.empty() && !json.ok()) {
    std::fprintf(stderr, "FAIL: cannot open JSON output path %s\n",
                 json_path.c_str());
    return 1;
  }
  const std::string bench_id = "micro_gemm.compare";

  bench::print_header(std::string("Dense GEMM kernel comparison (tile kernel: ") +
                      matmul_kernel_name() + (smoke ? ", smoke)" : ")"));
  const int w = 26;
  bench::print_row({"case", "kernel", "time_ms", "Gflop/s", "speedup"}, w);

  auto report = [&](const std::string& cs, const std::string& kernel, double ms,
                    double flops, double speedup) {
    bench::print_row({cs, kernel, bench::fmt(ms), bench::fmt(flops / ms / 1e6, 2),
                      bench::fmt(speedup, 2)},
                     w);
    json.row({{"bench", bench_id},
              {"case", cs},
              {"kernel", kernel},
              {"tile", matmul_kernel_name()},
              {"time_ms", ms},
              {"flops_per_sec", flops / (ms / 1e3)},
              {"speedup_vs_baseline", speedup}});
  };

  struct Op {
    const char* name;
    DenseF (*blocked)(const DenseF&, const DenseF&);
    DenseF (*reference)(const DenseF&, const DenseF&);
  };
  const Op ops[] = {
      {"matmul", matmul, matmul_reference},
      {"matmul_tn", matmul_tn, matmul_tn_reference},
      {"matmul_nt", matmul_nt, matmul_nt_reference},
  };

  for (const CompareCase& c : cases) {
    for (const Op& op : ops) {
      // Operand shapes per op: matmul A (m×k); tn contracts over rows, so A
      // is (k×m); nt contracts over columns of both, so B is (n×k).
      const bool tn = std::string(op.name) == "matmul_tn";
      const bool nt = std::string(op.name) == "matmul_nt";
      const DenseF a = random_dense(tn ? c.k : c.m, tn ? c.m : c.k,
                                    101 + c.m + c.n, c.a_zero_frac);
      const DenseF b =
          random_dense(nt ? c.n : c.k, nt ? c.k : c.n, 103 + c.k + c.n);
      const DenseF ref = op.reference(a, b);
      const DenseF out = op.blocked(a, b);
      if (!(out == ref)) {
        std::fprintf(stderr, "FAIL: %s/%s blocked kernel differs from reference\n",
                     op.name, c.name.c_str());
        identical = false;
      }
      const double ref_ms =
          time_min_ms(reps, [&] { benchmark::DoNotOptimize(op.reference(a, b)); });
      const double blk_ms =
          time_min_ms(reps, [&] { benchmark::DoNotOptimize(op.blocked(a, b)); });
      const double flops = matmul_flops(c.m, c.k, c.n);
      const std::string cs = std::string(op.name) + "_" + c.name;
      report(cs, "naive", ref_ms, flops, 1.0);
      report(cs, "blocked", blk_ms, flops, ref_ms / blk_ms);
      // The gate rides matmul, the kernel the acceptance criterion names;
      // tn/nt are reported for the trajectory but (nt especially — its
      // reference order forbids vector accumulation) not gated.
      if (c.gated && !tn && !nt && blk_ms >= ref_ms) {
        std::fprintf(stderr,
                     "FAIL: blocked matmul (%s) does not beat the naive "
                     "reference (%.3fms vs %.3fms)\n",
                     c.name.c_str(), blk_ms, ref_ms);
        gate_ok = false;
      }
    }
  }

  if (!json_path.empty()) std::printf("\nJSON appended to %s\n", json_path.c_str());
  std::printf("\nbit-identity: %s; perf gate (matmul, d >= 128): %s\n",
              identical ? "all identical" : "MISMATCH",
              gate_ok ? "pass" : "FAIL");
  return identical && gate_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool compare = false;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--compare") {
      compare = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }
  if (compare) return run_compare(smoke, json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
