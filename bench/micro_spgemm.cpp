// Micro-benchmarks of the SpGEMM engine (the workhorse of Algorithm 1) on
// shapes representative of the sampling pipeline.
//
// Two modes:
//  - default: the Google Benchmark suite below (BM_*);
//  - --kernel-compare [--smoke] [--csv=PATH]: a self-contained comparison
//    harness that times the dense / hash / auto kernels on the sampler
//    shapes, times the masked kernel against the full-product-then-slice
//    LADIES column extraction it replaces (s ≪ n), cross-checks that every
//    kernel produces bit-identical results (nonzero exit on mismatch, which
//    is what the CI smoke job gates on), and optionally writes a CSV in the
//    bench_util.hpp conventions so BENCH_*.json trajectories can track
//    SpGEMM throughput.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <unordered_set>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/ladies.hpp"
#include "graph/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"

namespace {

using namespace dms;

const Graph& bench_graph() {
  static const Graph g = [] {
    RmatParams p;
    p.scale = 14;
    p.edge_factor = 32.0;
    return generate_rmat(p);
  }();
  return g;
}

/// P ← Q·A with Q one-nonzero-per-row (the GraphSAGE probability step).
void BM_SpgemmQA(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto rows = static_cast<index_t>(state.range(0));
  std::vector<index_t> frontier;
  Pcg32 rng(3);
  for (index_t i = 0; i < rows; ++i) frontier.push_back(rng.bounded64(g.num_vertices()));
  const CsrMatrix q = CsrMatrix::one_nonzero_per_row(g.num_vertices(), frontier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spgemm(q, g.adjacency()));
  }
  state.SetItemsProcessed(state.iterations() * spgemm_flops(q, g.adjacency()));
}
BENCHMARK(BM_SpgemmQA)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

/// Indicator-row Q (LADIES probability step): few rows, many nonzeros each.
void BM_SpgemmLadiesQA(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto batch = static_cast<index_t>(state.range(0));
  CooMatrix coo(8, g.num_vertices());
  Pcg32 rng(4);
  for (index_t r = 0; r < 8; ++r) {
    for (index_t i = 0; i < batch; ++i) coo.push(r, rng.bounded64(g.num_vertices()), 1.0);
  }
  const CsrMatrix q = CsrMatrix::from_coo(coo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spgemm(q, g.adjacency()));
  }
  state.SetItemsProcessed(state.iterations() * spgemm_flops(q, g.adjacency()));
}
BENCHMARK(BM_SpgemmLadiesQA)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

/// Forced dense vs hash vs auto-dispatched kernel on the Q·A shape.
void BM_SpgemmKernels(benchmark::State& state) {
  const Graph& g = bench_graph();
  std::vector<index_t> frontier;
  Pcg32 rng(6);
  for (index_t i = 0; i < 1024; ++i) frontier.push_back(rng.bounded64(g.num_vertices()));
  const CsrMatrix q = CsrMatrix::one_nonzero_per_row(g.num_vertices(), frontier);
  SpgemmOptions opts;
  opts.kernel = static_cast<SpgemmKernel>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spgemm(q, g.adjacency(), opts));
  }
}
BENCHMARK(BM_SpgemmKernels)
    ->Arg(static_cast<int>(SpgemmKernel::kAuto))
    ->Arg(static_cast<int>(SpgemmKernel::kDense))
    ->Arg(static_cast<int>(SpgemmKernel::kHash))
    ->Unit(benchmark::kMillisecond);

/// Serial vs parallel engine.
void BM_SpgemmSerial(benchmark::State& state) {
  const Graph& g = bench_graph();
  std::vector<index_t> frontier;
  Pcg32 rng(5);
  for (index_t i = 0; i < 2048; ++i) frontier.push_back(rng.bounded64(g.num_vertices()));
  const CsrMatrix q = CsrMatrix::one_nonzero_per_row(g.num_vertices(), frontier);
  SpgemmOptions opts;
  opts.parallel = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spgemm(q, g.adjacency(), opts));
  }
}
BENCHMARK(BM_SpgemmSerial)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --kernel-compare mode
// ---------------------------------------------------------------------------

/// Minimum of `reps` timed runs of fn(), in milliseconds.
template <typename Fn>
double time_min_ms(int reps, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.seconds() * 1e3);
  }
  return best;
}

std::vector<index_t> random_frontier(const Graph& g, index_t count, std::uint64_t seed) {
  std::vector<index_t> frontier;
  Pcg32 rng(seed);
  for (index_t i = 0; i < count; ++i) frontier.push_back(rng.bounded64(g.num_vertices()));
  return frontier;
}

/// s distinct vertex ids, sorted ascending (the masked-kernel contract).
std::vector<index_t> random_mask(const Graph& g, index_t s, std::uint64_t seed) {
  std::unordered_set<index_t> picked;
  Pcg32 rng(seed);
  while (static_cast<index_t>(picked.size()) < s) {
    picked.insert(rng.bounded64(g.num_vertices()));
  }
  std::vector<index_t> mask(picked.begin(), picked.end());
  std::sort(mask.begin(), mask.end());
  return mask;
}

int run_kernel_compare(bool smoke, const std::string& csv_path,
                       const std::string& json_path) {
  RmatParams params;
  params.scale = smoke ? 10 : 14;
  params.edge_factor = smoke ? 16.0 : 32.0;
  const Graph g = generate_rmat(params);
  const index_t n = g.num_vertices();
  const int reps = smoke ? 3 : 7;
  bool ok = true;

  bench::CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path,
                       {"bench", "case", "kernel", "time_ms", "flops_per_sec",
                        "speedup_vs_baseline"});
  if (!csv_path.empty() && !csv.ok()) {
    std::fprintf(stderr, "FAIL: cannot open CSV output path %s\n", csv_path.c_str());
    return 1;
  }
  // Appending writer: shares BENCH_micro.json with micro_gemm --compare,
  // which truncates — regenerate the file by running micro_gemm first,
  // then this harness (re-running only this harness appends duplicates).
  bench::JsonWriter json(json_path.empty() ? "/dev/null" : json_path,
                         /*append=*/true);
  if (!json_path.empty() && !json.ok()) {
    std::fprintf(stderr, "FAIL: cannot open JSON output path %s\n",
                 json_path.c_str());
    return 1;
  }
  const std::string bench_id = "micro_spgemm.kernel_compare";

  bench::print_header("SpGEMM kernel comparison (n = " + std::to_string(n) +
                      (smoke ? ", smoke)" : ")"));
  const int w = 22;
  bench::print_row({"case", "kernel", "time_ms", "Gflop/s", "speedup"}, w);

  auto report = [&](const std::string& cs, const std::string& kernel, double ms,
                    nnz_t flops, double speedup) {
    bench::print_row({cs, kernel, bench::fmt(ms), bench::fmt(flops / ms / 1e6, 3),
                      bench::fmt(speedup, 2)}, w);
    csv.row({bench_id, cs, kernel, bench::fmt(ms, 6),
             bench::fmt(flops / (ms / 1e3), 0), bench::fmt(speedup, 4)});
    json.row({{"bench", bench_id},
              {"case", cs},
              {"kernel", kernel},
              {"time_ms", ms},
              {"flops_per_sec", static_cast<double>(flops) / (ms / 1e3)},
              {"speedup_vs_baseline", speedup}});
  };

  // --- Per-kernel times on the probability-generation shapes Qˡ·A. ---
  for (const index_t rows : smoke ? std::vector<index_t>{64, 256}
                                  : std::vector<index_t>{256, 1024, 4096}) {
    const CsrMatrix q =
        CsrMatrix::one_nonzero_per_row(n, random_frontier(g, rows, 11 + rows));
    const nnz_t flops = spgemm_flops(q, g.adjacency());
    const std::string cs = "sage_qa_rows" + std::to_string(rows);

    CsrMatrix ref;
    double dense_ms = 0.0;
    for (const auto kernel :
         {SpgemmKernel::kDense, SpgemmKernel::kHash, SpgemmKernel::kAuto}) {
      SpgemmOptions opts;
      opts.kernel = kernel;
      const CsrMatrix out = spgemm(q, g.adjacency(), opts);
      const double ms = time_min_ms(reps, [&] {
        benchmark::DoNotOptimize(spgemm(q, g.adjacency(), opts));
      });
      const char* name = kernel == SpgemmKernel::kDense  ? "dense"
                         : kernel == SpgemmKernel::kHash ? "hash"
                                                         : "auto";
      if (kernel == SpgemmKernel::kDense) {
        ref = out;
        dense_ms = ms;
      } else if (!(out == ref)) {
        std::fprintf(stderr, "FAIL: %s/%s differs from dense kernel\n", cs.c_str(),
                     name);
        ok = false;
      }
      report(cs, name, ms, flops, dense_ms / ms);
    }
  }

  // --- Masked extraction vs full-product-then-slice (LADIES §4.2.4: keep
  // only s sampled columns of the row-extraction product, s ≪ n). ---
  for (const index_t s : smoke ? std::vector<index_t>{16, 64}
                               : std::vector<index_t>{32, 128, 512}) {
    const index_t batch = smoke ? 128 : 512;
    const CsrMatrix qr =
        CsrMatrix::one_nonzero_per_row(n, random_frontier(g, batch, 23 + s));
    const std::vector<index_t> mask = random_mask(g, s, 29 + s);
    const std::string cs = "ladies_extract_s" + std::to_string(s);

    SpgemmOptions dense_opts;
    dense_opts.kernel = SpgemmKernel::kDense;
    const CsrMatrix ar = spgemm(qr, g.adjacency(), dense_opts);
    const CsrMatrix qc = ladies_column_extractor(n, mask);
    // Actual multiply-adds per variant: the two-step path performs the full
    // row-extraction product plus the slice; the masked kernel performs
    // only the contributions that land in masked columns.
    const nnz_t masked_flops = spgemm_flops(ar, qc);
    const nnz_t full_flops = spgemm_flops(qr, g.adjacency()) + masked_flops;
    const CsrMatrix sliced = spgemm(ar, qc, dense_opts);
    const double full_ms = time_min_ms(reps, [&] {
      const CsrMatrix a_r = spgemm(qr, g.adjacency(), dense_opts);
      benchmark::DoNotOptimize(spgemm(a_r, qc, dense_opts));
    });

    SpgemmOptions mopts;
    mopts.column_mask = &mask;
    const CsrMatrix masked = spgemm(qr, g.adjacency(), mopts);
    const double masked_ms = time_min_ms(reps, [&] {
      benchmark::DoNotOptimize(spgemm(qr, g.adjacency(), mopts));
    });

    if (!(masked == sliced)) {
      std::fprintf(stderr, "FAIL: %s masked kernel differs from product-then-slice\n",
                   cs.c_str());
      ok = false;
    }
    report(cs, "full_then_slice", full_ms, full_flops, 1.0);
    report(cs, "masked", masked_ms, masked_flops, full_ms / masked_ms);
  }

  if (!csv_path.empty()) {
    std::printf("\nCSV written to %s\n", csv_path.c_str());
  }
  if (!json_path.empty()) {
    std::printf("JSON appended to %s\n", json_path.c_str());
  }
  std::printf("\nkernel cross-check: %s\n", ok ? "all bit-identical" : "MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool compare = false;
  bool smoke = false;
  std::string csv_path;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--kernel-compare") {
      compare = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--csv=", 0) == 0) {
      csv_path = arg.substr(6);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }
  if (compare) return run_kernel_compare(smoke, csv_path, json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
