// Micro-benchmarks of the SpGEMM kernel (the workhorse of Algorithm 1) on
// shapes representative of the sampling pipeline.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "sparse/coo.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/spgemm_hash.hpp"

namespace {

using namespace dms;

const Graph& bench_graph() {
  static const Graph g = [] {
    RmatParams p;
    p.scale = 14;
    p.edge_factor = 32.0;
    return generate_rmat(p);
  }();
  return g;
}

/// P ← Q·A with Q one-nonzero-per-row (the GraphSAGE probability step).
void BM_SpgemmQA(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto rows = static_cast<index_t>(state.range(0));
  std::vector<index_t> frontier;
  Pcg32 rng(3);
  for (index_t i = 0; i < rows; ++i) frontier.push_back(rng.bounded64(g.num_vertices()));
  const CsrMatrix q = CsrMatrix::one_nonzero_per_row(g.num_vertices(), frontier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spgemm(q, g.adjacency()));
  }
  state.SetItemsProcessed(state.iterations() * spgemm_flops(q, g.adjacency()));
}
BENCHMARK(BM_SpgemmQA)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

/// Indicator-row Q (LADIES probability step): few rows, many nonzeros each.
void BM_SpgemmLadiesQA(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto batch = static_cast<index_t>(state.range(0));
  CooMatrix coo(8, g.num_vertices());
  Pcg32 rng(4);
  for (index_t r = 0; r < 8; ++r) {
    for (index_t i = 0; i < batch; ++i) coo.push(r, rng.bounded64(g.num_vertices()), 1.0);
  }
  const CsrMatrix q = CsrMatrix::from_coo(coo);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spgemm(q, g.adjacency()));
  }
  state.SetItemsProcessed(state.iterations() * spgemm_flops(q, g.adjacency()));
}
BENCHMARK(BM_SpgemmLadiesQA)->Arg(64)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

/// Dense-accumulator vs hash-accumulator kernel (nsparse-style) on the
/// Q·A shape: hash wins when rows ≪ columns.
void BM_SpgemmKernels(benchmark::State& state) {
  const Graph& g = bench_graph();
  std::vector<index_t> frontier;
  Pcg32 rng(6);
  for (index_t i = 0; i < 1024; ++i) frontier.push_back(rng.bounded64(g.num_vertices()));
  const CsrMatrix q = CsrMatrix::one_nonzero_per_row(g.num_vertices(), frontier);
  const auto algo = static_cast<SpgemmAlgorithm>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(spgemm_with(algo, q, g.adjacency()));
  }
}
BENCHMARK(BM_SpgemmKernels)
    ->Arg(static_cast<int>(SpgemmAlgorithm::kDenseAccumulator))
    ->Arg(static_cast<int>(SpgemmAlgorithm::kHash))
    ->Unit(benchmark::kMillisecond);

/// Serial vs parallel kernel.
void BM_SpgemmSerial(benchmark::State& state) {
  const Graph& g = bench_graph();
  std::vector<index_t> frontier;
  Pcg32 rng(5);
  for (index_t i = 0; i < 2048; ++i) frontier.push_back(rng.bounded64(g.num_vertices()));
  const CsrMatrix q = CsrMatrix::one_nonzero_per_row(g.num_vertices(), frontier);
  SpgemmOptions opts;
  opts.parallel = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spgemm(q, g.adjacency(), opts));
  }
}
BENCHMARK(BM_SpgemmSerial)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
