// Ablation for the §4 claim "amortizes the overheads of sampling a
// minibatch": sampling-step time vs bulk size k on products-sim.
//
// Two views are reported:
//  - "overhead(s)": the fixed per-bulk-round costs (kernel launches,
//    host/device synchronization) that shrink as k grows — the effect the
//    paper's bulk sampling amortizes. This is the column the claim is
//    about, and it is monotone in k by construction of the mechanism.
//  - "kernel(s)": measured host-CPU kernel time. NOTE: on a CPU, *larger*
//    stacked matrices run slower per row (cache working set), which is the
//    opposite of a GPU, where larger launches improve utilization. The raw
//    column is reported for transparency; see EXPERIMENTS.md.
#include "bench_util.hpp"

using namespace dms;
using namespace dms::bench;

int main() {
  print_header("Ablation: bulk size k vs sampling-step overheads (products-sim, p=8 c=2)");
  const Dataset& ds = dataset("products");
  const index_t nbatches = ds.num_batches(arch().sage_batch);
  print_row({"k", "rounds/rank", "overhead(s)", "kernel(s)", "total(s)"}, 14);

  double prev_overhead = -1.0;
  bool monotone = true;
  for (const index_t k :
       {nbatches, nbatches / 2, nbatches / 4, nbatches / 8, nbatches / 16,
        static_cast<index_t>(8)}) {
    // Isolate modeled overheads with an "infinitely fast device"...
    LinkParams overhead_only = perlmutter_links();
    overhead_only.compute_scale = 1e12;
    Cluster c_ovh(ProcessGrid(8, 2), CostModel(overhead_only));
    // ...and measure raw kernel time with overheads turned off.
    LinkParams kernel_only = perlmutter_links();
    kernel_only.launch_overhead = 0.0;
    Cluster c_ker(ProcessGrid(8, 2), CostModel(kernel_only));

    PipelineConfig cfg;
    cfg.sampler = SamplerKind::kGraphSage;
    cfg.batch_size = arch().sage_batch;
    cfg.fanouts = arch().sage_fanout;
    cfg.hidden = arch().hidden;
    cfg.bulk_k = k == nbatches ? 0 : k;
    // This ablation isolates the §4 bulk-amortization mechanism itself; the
    // staged executor would re-slice k=all into prefetch rounds (and hide
    // overheads it adds), confounding the per-round overhead column.
    cfg.overlap = false;

    Pipeline p_ovh(c_ovh, ds, cfg);
    const double overhead = p_ovh.run_epoch(0).sampling;
    Pipeline p_ker(c_ker, ds, cfg);
    const double kernel = p_ker.run_epoch(0).sampling;

    const index_t per_rank = std::max<index_t>(1, ceil_div(k, 8));
    const index_t rounds = ceil_div(ceil_div(nbatches, 8), per_rank);
    print_row({k == nbatches ? "all" : std::to_string(k), std::to_string(rounds),
               fmt(overhead, 5), fmt(kernel, 4), fmt(overhead + kernel, 4)},
              14);
    if (prev_overhead >= 0.0 && overhead < prev_overhead * 0.999) monotone = false;
    prev_overhead = overhead;
  }
  std::printf("\noverhead column monotone in 1/k (the amortization claim): %s\n",
              monotone ? "PASS" : "FAIL");
  return monotone ? 0 : 1;
}
