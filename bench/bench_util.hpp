// Shared helpers for the benchmark harness: scaled-down dataset registry,
// bench-scale architecture parameters (Table 4 analog), and table printing.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "graph/dataset.hpp"
#include "train/pipeline.hpp"

namespace dms::bench {

/// Bench-scale analog of the paper's Table 4 architecture. The paper trains
/// SAGE with b=1024, fanout (15,10,5), hidden 256 on 100-128 features;
/// benches shrink every dimension ~8-16× so a 128-rank epoch simulates in
/// seconds on a host CPU. All ratios (L=3, fanout shape, LADIES b=s) are
/// preserved.
struct BenchArch {
  index_t sage_batch = 64;                    // paper: 1024
  std::vector<index_t> sage_fanout = {8, 4, 4};  // paper: (15,10,5)
  index_t ladies_batch = 32;                  // paper: 512
  index_t ladies_s = 32;                      // paper: 512
  index_t hidden = 32;                        // paper: 256
  int features = 32;                          // paper: 100-128
};

inline const BenchArch& arch() {
  static const BenchArch a;
  return a;
}

/// Dataset cache so multiple sections of one bench reuse the generated
/// graphs (generation is seconds at bench scale).
inline const Dataset& dataset(const std::string& name) {
  static std::map<std::string, Dataset> cache;
  auto it = cache.find(name);
  if (it == cache.end()) {
    StandInConfig cfg;
    cfg.feature_dim = arch().features;
    it = cache.emplace(name, make_standin_by_name(name, cfg)).first;
    std::fprintf(stderr, "[bench] generated %s\n",
                 it->second.graph.summary(name).c_str());
  }
  return it->second;
}

/// Scaled-Perlmutter link parameters (§7.2). The bench workload's
/// per-minibatch communication volumes are ~64× smaller than the paper's
/// (batch 1024→64 ×16, features 128→32 ×4), so link bandwidths are divided
/// by the same factor: this keeps the communication:computation balance of
/// the real system, which is what Figures 4-7 measure (DESIGN.md §2).
inline constexpr double kVolumeScale = 64.0;

inline LinkParams perlmutter_links() {
  LinkParams l;
  l.alpha = 5e-6;
  l.beta_intra = kVolumeScale / 100e9;  // NVLink 3.0
  l.beta_inter = kVolumeScale / 25e9;   // Slingshot 11
  l.beta_pcie = kVolumeScale / 20e9;    // PCIe 4.0 (UVA mode)
  l.ranks_per_node = 4;
  // Host-CPU compute stands in for an A100. Bulk matrix kernels (our
  // pipeline) saturate the device; irregular per-vertex sampling kernels
  // (Quiver's per-minibatch sampler) do not — the paper's core motivation.
  l.compute_scale = 8.0;
  l.irregular_compute_scale = 2.0;
  l.launch_overhead = 30e-6;
  return l;
}

/// The paper's per-GPU-count replication/bulk choices (Figure 4
/// annotations), expressed as (c, fraction of all minibatches per bulk).
struct RunPoint {
  int p;
  int c;
  double k_fraction;  // 1.0 = "k=all"
};

inline std::vector<RunPoint> fig4_points(const std::string& ds) {
  if (ds == "products") {
    return {{4, 1, 0.41}, {8, 2, 1.0}, {16, 4, 1.0}};
  }
  if (ds == "papers") {
    return {{4, 1, 0.5}, {8, 2, 1.0}, {16, 4, 1.0},
            {32, 4, 1.0}, {64, 8, 1.0}, {128, 8, 1.0}};
  }
  // protein: memory-capped small k at low p (§8.1.1)
  return {{4, 1, 0.03}, {8, 2, 0.06}, {16, 2, 0.12},
          {32, 2, 0.25}, {64, 4, 0.5}, {128, 8, 1.0}};
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 13) {
  for (const auto& c : cells) std::printf("%-*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

// --- CSV output conventions -------------------------------------------------
// Machine-readable bench output feeding the BENCH_*.json trajectories: a
// bench mode that wants its numbers tracked writes one CSV file with a fixed
// header row and one data row per (case, kernel) measurement. Conventions:
//  - the first two columns are `bench` (binary + mode, e.g.
//    "micro_spgemm.kernel_compare") and `case` (workload shape id);
//  - times are reported in milliseconds as `*_ms` columns, throughput as
//    multiply-adds per second in `flops_per_sec`, speedups as plain ratios;
//  - downstream tooling keys rows on (bench, case, kernel), so those values
//    must be stable across runs and machines.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, const std::vector<std::string>& header)
      : f_(std::fopen(path.c_str(), "w")) {
    if (f_ != nullptr) row(header);
  }
  ~CsvWriter() {
    if (f_ != nullptr) std::fclose(f_);
  }
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return f_ != nullptr; }

  void row(const std::vector<std::string>& cells) {
    if (f_ == nullptr) return;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::fprintf(f_, "%s%s", i == 0 ? "" : ",", cells[i].c_str());
    }
    std::fprintf(f_, "\n");
  }

 private:
  std::FILE* f_;
};

// --- JSON output ------------------------------------------------------------
// The BENCH_*.json perf-trajectory files: one flat JSON array of row objects
// per file, one row per (bench, case, kernel) measurement, with the same
// stable-key conventions as the CSV output. Rows carry string or number
// fields only. A writer opened with append=true splices its rows into an
// existing array written by a previous (possibly different) bench binary —
// this is how micro_gemm and micro_spgemm share BENCH_micro.json.
/// Renders `s` as a JSON string literal (quotes included): escapes quote,
/// backslash, the named control characters, and any other byte < 0x20 as
/// \u00XX. Case ids are normally tame, but a stray newline or tab in a
/// generated label must not corrupt the whole BENCH_*.json array.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

class JsonWriter {
 public:
  /// One rendered key/value pair of a row object.
  struct Field {
    Field(const char* k, const std::string& v)
        : key(k), rendered(json_escape(v)) {}
    Field(const char* k, const char* v) : Field(k, std::string(v)) {}
    Field(const char* k, double v) : key(k) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9g", v);
      rendered = buf;
    }
    Field(const char* k, index_t v) : key(k) {
      rendered = std::to_string(v);
    }
    Field(const char* k, int v) : Field(k, static_cast<index_t>(v)) {}

    std::string key;
    std::string rendered;
  };

  explicit JsonWriter(const std::string& path, bool append = false) {
    if (append) {
      f_ = std::fopen(path.c_str(), "r+");
      if (f_ != nullptr) {
        // Splice into the existing array: our files always end "\n]\n", so
        // repositioning onto that terminator lets new rows continue the
        // array. Anything else (including an empty "[]\n") is rewritten.
        std::fseek(f_, 0, SEEK_END);
        const long size = std::ftell(f_);
        char tail[3] = {0, 0, 0};
        if (size >= 4) {
          std::fseek(f_, size - 3, SEEK_SET);
          if (std::fread(tail, 1, 3, f_) == 3 && tail[0] == '\n' &&
              tail[1] == ']' && tail[2] == '\n') {
            std::fseek(f_, size - 3, SEEK_SET);
            continuing_ = true;
          }
        }
        if (!continuing_) {
          std::fclose(f_);
          f_ = nullptr;
        }
      }
    }
    if (f_ == nullptr) f_ = std::fopen(path.c_str(), "w");
  }

  ~JsonWriter() {
    if (f_ == nullptr) return;
    if (rows_ > 0 || continuing_) {
      std::fprintf(f_, "\n]\n");
    } else {
      std::fprintf(f_, "[]\n");
    }
    std::fclose(f_);
  }

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  bool ok() const { return f_ != nullptr; }

  void row(const std::vector<Field>& fields) {
    if (f_ == nullptr) return;
    if (rows_ == 0 && !continuing_) {
      std::fprintf(f_, "[\n");
    } else {
      std::fprintf(f_, ",\n");
    }
    std::fprintf(f_, "  {");
    for (std::size_t i = 0; i < fields.size(); ++i) {
      std::fprintf(f_, "%s%s: %s", i == 0 ? "" : ", ",
                   json_escape(fields[i].key).c_str(),
                   fields[i].rendered.c_str());
    }
    std::fprintf(f_, "}");
    ++rows_;
  }

 private:
  std::FILE* f_ = nullptr;
  bool continuing_ = false;
  std::size_t rows_ = 0;
};

}  // namespace dms::bench
