// Figure 6: the Graph Replicated pipeline with the paper's per-p replication
// factors vs no feature replication (c=1, bulk size capped as at p=4).
//
// Expected shape (§8.1.2): >2x degradation without replication on Papers
// (both sampling-overhead and feature-fetch phases grow); smaller effect on
// Protein, whose Figure 4 runs never exceeded c=2 anyway.
#include "bench_util.hpp"

using namespace dms;
using namespace dms::bench;

namespace {

EpochStats run_point(const Dataset& ds, int p, int c, double k_fraction) {
  Cluster cluster(ProcessGrid(p, c), CostModel(perlmutter_links()));
  PipelineConfig cfg;
  cfg.sampler = SamplerKind::kGraphSage;
  cfg.mode = DistMode::kReplicated;
  cfg.batch_size = arch().sage_batch;
  cfg.fanouts = arch().sage_fanout;
  cfg.hidden = arch().hidden;
  const index_t nbatches = ds.num_batches(cfg.batch_size);
  cfg.bulk_k = k_fraction >= 1.0
                   ? 0
                   : std::max<index_t>(p, static_cast<index_t>(k_fraction * nbatches));
  // Bulk-synchronous accounting: this figure isolates the fetch phase's
  // c-scaling, which overlap crediting would partially hide.
  cfg.overlap = false;
  Pipeline pipe(cluster, ds, cfg);
  return pipe.run_epoch(0);
}

}  // namespace

int main() {
  print_header("Figure 6: pipeline with vs without feature replication (per-epoch s)");
  for (const std::string name : {"papers", "protein"}) {
    const Dataset& ds = dataset(name);
    std::printf("\n--- %s ---\n", ds.name.c_str());
    print_row({"p", "rep(c)", "total", "fetch", "norep", "fetch", "slowdown"}, 11);
    for (const RunPoint& pt : fig4_points(name)) {
      if (pt.p < 8) continue;  // c=1 is the baseline itself at p=4
      const EpochStats rep = run_point(ds, pt.p, pt.c, pt.k_fraction);
      // No replication: c=1 and the bulk size stays capped at the p=4 level
      // (no aggregate-memory growth to exploit).
      const EpochStats norep = run_point(ds, pt.p, 1, fig4_points(name)[0].k_fraction);
      print_row({std::to_string(pt.p), std::to_string(pt.c), fmt(rep.total),
                 fmt(rep.fetch), fmt(norep.total), fmt(norep.fetch),
                 fmt(norep.total / rep.total, 2) + "x"},
                11);
    }
  }
  std::printf("\nPaper reference: >2x degradation without replication on Papers.\n");
  return 0;
}
