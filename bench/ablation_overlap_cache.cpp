// Ablation: staged-executor overlap × feature-cache policy × rank
// architecture (DESIGN.md §6, §14).
//
// Crosses the executor schedule {sync, overlap} and the feature-row cache
// {none, LRU, degree-pinned, pre-sample} with the rank architecture
// {colocated, disaggregated} on the Figure 4 SAGE workload, under two link
// scenarios:
//
//  - balanced:    the scaled-Perlmutter links of bench_util.hpp — sampling
//                 compute and feature movement are comparable (the regime of
//                 Figures 4-7). Colocation wins here: splitting the ranks
//                 into roles serializes sampling onto fewer ranks while the
//                 sampling phase still costs as much as training hides.
//  - fetch-bound: the same interconnect driving an accelerator generation
//                 whose bulk kernels are ~256x faster and whose launches
//                 are CUDA-graph-amortized (5us), so epoch time is bound by
//                 the feature all-to-allv — the asymptotic regime Figure
//                 4's trend points at and the one disaggregation targets
//                 (DESIGN.md §14): trainers spend their freed adjacency
//                 memory on a cache big enough to starve the fetch phase,
//                 and the sampler→trainer handoff ships compact sampled
//                 topology (fanout-bounded edges) instead of wide feature
//                 rows.
//
// Every disaggregated variant runs at the *same rank count and per-rank
// byte budget* as the colocated ones: the budget is the colocated
// footprint (full adjacency + feature block + cache + model), and the
// trainer cache capacity is whatever that budget buys once the adjacency
// is gone. The training arithmetic is identical in every variant — epoch
// losses must match bit-for-bit across schedules, policies, and
// architectures, and the harness exits nonzero if they diverge. The CI
// smoke gate (`--smoke`) additionally locks in that the pre-sample policy
// hits at least as often as the degree-pinned proxy, that the overlapped
// executor beats the synchronous one, and that the disaggregated split
// beats colocation on at least one swept scenario.
//
//   ./ablation_overlap_cache [--smoke] [--csv=PATH] [--json=PATH]
//
// --smoke shrinks the dataset (seconds, CI-friendly); --csv emits the
// bench_util.hpp CSV conventions; --json appends one row per
// (scenario, variant, epoch) to a BENCH_*.json trajectory file.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace dms;
using namespace dms::bench;

namespace {

struct Variant {
  const char* name;
  DistMode mode;
  bool overlap;
  CachePolicy policy;
};

constexpr Variant kVariants[] = {
    {"sync/none", DistMode::kReplicated, false, CachePolicy::kNone},
    {"colo/none", DistMode::kReplicated, true, CachePolicy::kNone},
    {"colo/lru", DistMode::kReplicated, true, CachePolicy::kLru},
    {"colo/pinned", DistMode::kReplicated, true, CachePolicy::kDegreePinned},
    {"colo/presample", DistMode::kReplicated, true, CachePolicy::kPreSample},
    {"disagg/none", DistMode::kDisaggregated, true, CachePolicy::kNone},
    {"disagg/lru", DistMode::kDisaggregated, true, CachePolicy::kLru},
    {"disagg/pinned", DistMode::kDisaggregated, true, CachePolicy::kDegreePinned},
    {"disagg/presample", DistMode::kDisaggregated, true, CachePolicy::kPreSample},
};

struct Scenario {
  const char* name;
  LinkParams links;
};

/// Per-variant epoch-level results a scenario's gates compare.
struct VariantResult {
  std::string name;
  std::vector<double> loss;
  std::vector<double> total;
  std::size_t hits = 0;    // summed over epochs
  std::size_t misses = 0;
  std::size_t pinned_hits = 0;
};

LinkParams fetch_bound_links() {
  LinkParams l = perlmutter_links();
  l.compute_scale *= 1024.0;            // next-gen accelerator ...
  l.irregular_compute_scale *= 1024.0;  // ... same interconnect generation,
  l.launch_overhead = 5e-6;            // CUDA-graph-captured sampling plans
  return l;
}

const VariantResult& find(const std::vector<VariantResult>& rs, const char* name) {
  for (const auto& r : rs) {
    if (r.name == name) return r;
  }
  std::fprintf(stderr, "internal: variant %s missing\n", name);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string csv_path, json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      csv_path = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--csv=PATH] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  print_header(
      "Ablation: overlap x cache policy x rank architecture (SAGE, per-epoch)");
  StandInConfig dcfg;
  // papers100M at its real feature width (f=128, Table 3) rather than the
  // CPU-scaled arch().features: this ablation is about where feature bytes
  // go, so the fetch:handoff byte ratio should match the paper's.
  dcfg.feature_dim = 128;
  if (smoke) dcfg.scale_shift = -2;
  const Dataset ds = make_standin_by_name("papers", dcfg);
  std::fprintf(stderr, "[bench] generated %s\n", ds.graph.summary(ds.name).c_str());

  // One dedicated sampler rank (FGNN-style asymmetric provisioning at
  // p=8): the sampler holds the whole adjacency (a (1,1) sub-grid), so
  // sampling runs comm-free and the seven trainers split the freed bytes.
  const int p = 8, c = 2, samplers = 1;
  const index_t n = ds.num_vertices();
  const index_t nbatches = ds.num_batches(arch().sage_batch);
  const index_t bulk_k = std::max<index_t>(p, nbatches / 4);
  const index_t colo_cache_rows = n / 8;
  const std::size_t row_bytes =
      static_cast<std::size_t>(ds.feature_dim()) * sizeof(float);
  const int epochs = 2;

  const Scenario scenarios[] = {
      {"balanced", perlmutter_links()},
      {"fetch_bound", fetch_bound_links()},
  };

  auto make_cfg = [&](const Variant& v, index_t capacity) {
    PipelineConfig cfg;
    cfg.sampler = SamplerKind::kGraphSage;
    cfg.mode = v.mode;
    cfg.batch_size = arch().sage_batch;
    cfg.fanouts = arch().sage_fanout;
    cfg.hidden = arch().hidden;
    cfg.bulk_k = bulk_k;
    cfg.overlap = v.overlap;
    cfg.feature_cache = {v.policy, v.policy == CachePolicy::kNone ? 0 : capacity};
    cfg.presample_rounds = 4;
    cfg.disagg.sampler_ranks = samplers;
    return cfg;
  };

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path,
                {"bench", "case", "epoch", "total_ms", "sampling_ms", "fetch_ms",
                 "prop_ms", "warmup_ms", "saved_ms", "stall_ms", "hit_rate",
                 "pinned_hits", "bytes_moved"});
  JsonWriter json(json_path.empty() ? "/dev/null" : json_path, /*append=*/true);

  bool ok = true;
  bool disagg_won_somewhere = false;

  for (const Scenario& sc : scenarios) {
    // --- Per-rank byte budget: what one colocated rank holds (full
    // adjacency + feature block + cache + model). The disaggregated trainer
    // cache gets whatever the same budget buys once the adjacency is gone.
    std::size_t budget = 0;
    {
      Cluster probe_cl(ProcessGrid(p, c), CostModel(sc.links));
      Pipeline probe(probe_cl, ds,
                     make_cfg(kVariants[3] /*colo/pinned*/, colo_cache_rows));
      for (int r = 0; r < p; ++r) budget = std::max(budget, probe.per_rank_bytes(r));
    }
    std::size_t trainer_base = 0, sampler_peak = 0;
    {
      Cluster probe_cl(ProcessGrid(p, c), CostModel(sc.links));
      Pipeline probe(probe_cl, ds, make_cfg(kVariants[5] /*disagg/none*/, 0));
      for (int r = 0; r < p; ++r) {
        auto& peak = r < samplers ? sampler_peak : trainer_base;
        peak = std::max(peak, probe.per_rank_bytes(r));
      }
    }
    const index_t disagg_cache_rows = std::min<index_t>(
        n, budget > trainer_base
               ? static_cast<index_t>((budget - trainer_base) / row_bytes)
               : 0);

    print_header(std::string("scenario: ") + sc.name);
    std::printf(
        "p=%d c=%d (disagg: %d samplers / %d trainers), bulk k=%lld of %lld "
        "minibatches\nper-rank budget %.1f MB -> cache rows: colo %lld, "
        "disagg trainer %lld (of %lld total; sampler peak %.1f MB)\n\n",
        p, c, samplers, p - samplers, static_cast<long long>(bulk_k),
        static_cast<long long>(nbatches), static_cast<double>(budget) / 1e6,
        static_cast<long long>(colo_cache_rows),
        static_cast<long long>(disagg_cache_rows), static_cast<long long>(n),
        static_cast<double>(sampler_peak) / 1e6);
    print_row({"variant", "ep", "total_ms", "samp_ms", "fetch_ms", "prop_ms",
               "warm_ms", "saved_ms", "stall_ms", "hit%", "pinhit", "loss"},
              11);

    std::vector<VariantResult> results;
    for (const Variant& v : kVariants) {
      const bool disagg = v.mode == DistMode::kDisaggregated;
      const index_t capacity = disagg ? disagg_cache_rows : colo_cache_rows;
      Cluster cluster(ProcessGrid(p, c), CostModel(sc.links));
      Pipeline pipe(cluster, ds, make_cfg(v, capacity));
      VariantResult res;
      res.name = v.name;
      for (int e = 0; e < epochs; ++e) {
        const EpochStats s = pipe.run_epoch(e);
        res.loss.push_back(s.loss);
        res.total.push_back(s.total);
        res.hits += s.cache_hits;
        res.misses += s.cache_misses;
        res.pinned_hits += s.cache_pinned_hits;
        const double hit_pct = cache_hit_pct(s.cache_hits, s.cache_misses);
        print_row({v.name, std::to_string(e), fmt(s.total * 1e3),
                   fmt(s.sampling * 1e3), fmt(s.fetch * 1e3),
                   fmt(s.propagation * 1e3), fmt(s.warmup * 1e3),
                   fmt(s.overlap_saved * 1e3), fmt(s.stall * 1e3),
                   fmt(hit_pct, 1), std::to_string(s.cache_pinned_hits),
                   fmt(s.loss, 6)},
                  11);
        const std::string case_id = std::string(sc.name) + "/" + v.name;
        csv.row({"ablation_overlap_cache", case_id, std::to_string(e),
                 fmt(s.total * 1e3), fmt(s.sampling * 1e3), fmt(s.fetch * 1e3),
                 fmt(s.propagation * 1e3), fmt(s.warmup * 1e3),
                 fmt(s.overlap_saved * 1e3), fmt(s.stall * 1e3), fmt(hit_pct, 1),
                 std::to_string(s.cache_pinned_hits),
                 std::to_string(s.fetch_bytes)});
        json.row({{"bench", "ablation_overlap_cache"},
                  {"case", case_id},
                  {"epoch", e},
                  {"p", p},
                  {"c", c},
                  {"samplers", disagg ? samplers : 0},
                  {"cache_rows", capacity},
                  {"total_sim_s", s.total},
                  {"sampling_sim_s", s.sampling},
                  {"fetch_sim_s", s.fetch},
                  {"prop_sim_s", s.propagation},
                  {"warmup_sim_s", s.warmup},
                  {"overlap_saved_sim_s", s.overlap_saved},
                  {"stall_sim_s", s.stall},
                  {"cache_hit_pct", hit_pct},
                  {"pinned_hits", static_cast<index_t>(s.cache_pinned_hits)},
                  {"loss", s.loss}});
      }
      results.push_back(std::move(res));
    }

    // --- Gate 1: bit-identical losses across every variant, every epoch.
    for (const VariantResult& r : results) {
      for (int e = 0; e < epochs; ++e) {
        if (r.loss[static_cast<std::size_t>(e)] !=
            results[0].loss[static_cast<std::size_t>(e)]) {
          std::fprintf(stderr,
                       "FAIL(%s): epoch %d loss of %s diverges from %s "
                       "(%.17g vs %.17g)\n",
                       sc.name, e, r.name.c_str(), results[0].name.c_str(),
                       r.loss[static_cast<std::size_t>(e)],
                       results[0].loss[static_cast<std::size_t>(e)]);
          ok = false;
        }
      }
    }

    // --- Gate 2: the pre-sample pins hit at least as often as the
    // degree-pinned proxy (same requested rows, same local set — comparing
    // raw hit counts compares hit rates).
    for (const char* a : {"colo", "disagg"}) {
      const VariantResult& pre = find(results, (std::string(a) + "/presample").c_str());
      const VariantResult& deg = find(results, (std::string(a) + "/pinned").c_str());
      if (pre.hits < deg.hits) {
        std::fprintf(stderr,
                     "FAIL(%s): %s presample hits %zu < degree-pinned %zu\n",
                     sc.name, a, pre.hits, deg.hits);
        ok = false;
      }
    }

    // --- Gate 3: the overlapped executor beats the synchronous schedule.
    const double sync_total = find(results, "sync/none").total[0] +
                              find(results, "sync/none").total[1];
    const double ovl_total = find(results, "colo/none").total[0] +
                             find(results, "colo/none").total[1];
    if (ovl_total >= sync_total) {
      std::fprintf(stderr, "FAIL(%s): overlap (%.4g s) did not beat sync (%.4g s)\n",
                   sc.name, ovl_total, sync_total);
      ok = false;
    }

    // --- Disagg vs colo, warm epoch (steady state; epoch 0 carries the
    // one-time warmup/cold-cache costs). The gate only requires a win on
    // >= 1 scenario: "balanced" is expected to favor colocation.
    double best_colo = 1e300, best_disagg = 1e300;
    std::string colo_name, disagg_name;
    for (const VariantResult& r : results) {
      const bool disagg = r.name.rfind("disagg/", 0) == 0;
      if (r.name == "sync/none") continue;
      auto& best = disagg ? best_disagg : best_colo;
      auto& name = disagg ? disagg_name : colo_name;
      if (r.total[1] < best) {
        best = r.total[1];
        name = r.name;
      }
    }
    const double gain = 1.0 - best_disagg / best_colo;
    std::printf(
        "\n%s: overlap vs sync %+.1f%%; best warm epoch: %s %.3f ms vs %s "
        "%.3f ms (disagg %+.1f%%)\n",
        sc.name, 100.0 * (1.0 - ovl_total / sync_total), disagg_name.c_str(),
        best_disagg * 1e3, colo_name.c_str(), best_colo * 1e3, 100.0 * gain);
    if (best_disagg < best_colo) disagg_won_somewhere = true;
  }

  std::printf("\nlosses bit-identical across all %zu variants in every "
              "scenario: %s\n",
              std::size(kVariants), ok ? "yes" : "NO");
  if (!disagg_won_somewhere) {
    std::fprintf(stderr,
                 "FAIL: disaggregated ranks never beat colocated ranks on any "
                 "swept scenario\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
