// Ablation: staged-executor overlap × feature-cache policy (DESIGN.md §6).
//
// Crosses the executor schedule {sync, overlap} with the feature-row cache
// {none, LRU, degree-pinned} on the Figure 4 replicated SAGE workload and
// reports the per-epoch breakdown: total / fetch / overlap-saved / stall /
// cache hit rate / bytes moved. Two epochs per variant show the cold → warm
// cache transition. The training arithmetic is identical in every variant —
// the epoch losses must match bit-for-bit, and the harness exits nonzero if
// they (or the overlap win) ever diverge, which is what the CI smoke gate
// (`--smoke`) locks in.
//
//   ./ablation_overlap_cache [--smoke] [--csv=PATH]
//
// --smoke shrinks the dataset (seconds, CI-friendly); --csv emits the
// bench_util.hpp CSV conventions keyed on (bench, case, epoch).
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"

using namespace dms;
using namespace dms::bench;

namespace {

struct Variant {
  const char* name;
  bool overlap;
  CachePolicy policy;
};

constexpr Variant kVariants[] = {
    {"sync/none", false, CachePolicy::kNone},
    {"sync/lru", false, CachePolicy::kLru},
    {"ovl/none", true, CachePolicy::kNone},
    {"ovl/lru", true, CachePolicy::kLru},
    {"ovl/pinned", true, CachePolicy::kDegreePinned},
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string csv_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      csv_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--csv=PATH]\n", argv[0]);
      return 2;
    }
  }

  print_header("Ablation: staged overlap x feature cache (replicated SAGE, per-epoch)");
  StandInConfig dcfg;
  dcfg.feature_dim = arch().features;
  if (smoke) dcfg.scale_shift = -2;
  const Dataset ds = make_standin_by_name("products", dcfg);
  std::fprintf(stderr, "[bench] generated %s\n", ds.graph.summary(ds.name).c_str());

  const LinkParams links = perlmutter_links();
  const int p = 8, c = 2;
  const index_t nbatches = ds.num_batches(arch().sage_batch);
  const index_t cache_rows = ds.num_vertices() / 8;
  const int epochs = 2;

  std::printf("p=%d c=%d, bulk k=%lld of %lld minibatches, cache capacity %lld rows/rank\n\n",
              p, c, static_cast<long long>(std::max<index_t>(p, nbatches / 4)),
              static_cast<long long>(nbatches), static_cast<long long>(cache_rows));
  print_row({"variant", "epoch", "total", "sampling", "fetch", "prop", "saved",
             "stall", "hit%", "MB moved", "loss"},
            11);

  CsvWriter csv(csv_path.empty() ? "/dev/null" : csv_path,
                {"bench", "case", "epoch", "total_ms", "sampling_ms", "fetch_ms",
                 "prop_ms", "saved_ms", "stall_ms", "hit_rate", "bytes_moved"});

  // losses[e] per variant must agree bit-for-bit.
  std::vector<std::vector<double>> losses(static_cast<std::size_t>(epochs));
  double sync_total = 0.0, overlap_cached_total = 0.0;

  for (const Variant& v : kVariants) {
    PipelineConfig cfg;
    cfg.sampler = SamplerKind::kGraphSage;
    cfg.mode = DistMode::kReplicated;
    cfg.batch_size = arch().sage_batch;
    cfg.fanouts = arch().sage_fanout;
    cfg.hidden = arch().hidden;
    cfg.bulk_k = std::max<index_t>(p, nbatches / 4);
    cfg.overlap = v.overlap;
    cfg.feature_cache = {v.policy, v.policy == CachePolicy::kNone ? 0 : cache_rows};

    Cluster cluster(ProcessGrid(p, c), CostModel(links));
    Pipeline pipe(cluster, ds, cfg);
    double total_sum = 0.0;
    for (int e = 0; e < epochs; ++e) {
      const EpochStats s = pipe.run_epoch(e);
      total_sum += s.total;
      losses[static_cast<std::size_t>(e)].push_back(s.loss);
      const double hit_pct = cache_hit_pct(s.cache_hits, s.cache_misses);
      print_row({v.name, std::to_string(e), fmt(s.total), fmt(s.sampling),
                 fmt(s.fetch), fmt(s.propagation), fmt(s.overlap_saved),
                 fmt(s.stall), fmt(hit_pct, 1),
                 fmt(static_cast<double>(s.fetch_bytes) / 1e6, 2), fmt(s.loss, 6)},
                11);
      csv.row({"ablation_overlap_cache", v.name, std::to_string(e),
               fmt(s.total * 1e3), fmt(s.sampling * 1e3), fmt(s.fetch * 1e3),
               fmt(s.propagation * 1e3), fmt(s.overlap_saved * 1e3),
               fmt(s.stall * 1e3), fmt(hit_pct, 1),
               std::to_string(s.fetch_bytes)});
    }
    if (std::strcmp(v.name, "sync/none") == 0) sync_total = total_sum;
    if (std::strcmp(v.name, "ovl/lru") == 0) overlap_cached_total = total_sum;
  }

  // --- Gate: bit-identical losses across every variant, overlap+cache wins.
  bool ok = true;
  for (int e = 0; e < epochs; ++e) {
    for (const double l : losses[static_cast<std::size_t>(e)]) {
      if (l != losses[static_cast<std::size_t>(e)][0]) {
        std::fprintf(stderr,
                     "FAIL: epoch %d losses diverge across variants (%.17g vs %.17g)\n",
                     e, l, losses[static_cast<std::size_t>(e)][0]);
        ok = false;
      }
    }
  }
  const double gain = sync_total > 0.0 ? 1.0 - overlap_cached_total / sync_total : 0.0;
  std::printf("\noverlap/lru vs sync/none: %.1f%% lower simulated epoch time "
              "(losses bit-identical across all %zu variants)\n",
              100.0 * gain, std::size(kVariants));
  if (gain <= 0.0) {
    std::fprintf(stderr, "FAIL: staged executor did not beat the sync path\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
