// Figure 7 (bottom row): Graph Partitioned LADIES — sampling-time breakdown
// across p, plus the §8.2.2 comparison against the reference CPU LADIES
// implementation (which took 43.9 s on Papers / 3.12 s on Protein; the
// distributed runs begin to beat it at 64 GPUs).
//
// Expected shapes: column extraction dominates (chunked CSR SpGEMMs);
// scaling across p; crossover vs the CPU reference at large p.
#include "baselines/ladies_cpu.hpp"
#include "bench_util.hpp"
#include "core/minibatch.hpp"
#include "dist/sampler_factory.hpp"

using namespace dms;
using namespace dms::bench;

int main() {
  print_header("Figure 7 (bottom): Graph Partitioned LADIES sampling time (s, simulated)");
  const LinkParams links = perlmutter_links();

  const std::map<std::string, std::vector<std::pair<int, int>>> points = {
      {"protein", {{16, 1}, {32, 2}, {64, 4}}},
      {"papers", {{16, 1}, {32, 2}, {64, 4}}},
  };

  for (const auto& [name, pts] : points) {
    const Dataset& ds = dataset(name);
    const auto batches =
        make_epoch_batches(ds.train_idx, arch().ladies_batch, /*epoch_seed=*/1);
    std::vector<index_t> ids(batches.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<index_t>(i);

    // Reference CPU implementation sampling all minibatches serially.
    const auto cpu = ladies_cpu_reference(ds.graph, batches, arch().ladies_s, 3);

    std::printf("\n--- %s (%zu minibatches; CPU reference: %.3f s) ---\n",
                ds.name.c_str(), batches.size(), cpu.seconds);
    print_row({"p", "c", "total", "probability", "sampling", "extraction",
               "comp", "comm", "vs-CPU"},
              12);
    for (const auto& [p, c] : pts) {
      Cluster cluster(ProcessGrid(p, c), CostModel(links));
      SamplerContext ctx;
      ctx.config = SamplerConfig{{arch().ladies_s}, 1};
      ctx.grid = &cluster.grid();
      const auto sampler =
          make_sampler(SamplerKind::kLadies, DistMode::kPartitioned, ds.graph, ctx);
      as_partitioned(*sampler).sample_bulk(cluster, batches, ids, /*epoch_seed=*/7);
      print_row({std::to_string(p), std::to_string(c), fmt(cluster.total_time()),
                 fmt(cluster.phase_time(kPhaseProbability)),
                 fmt(cluster.phase_time(kPhaseSampling)),
                 fmt(cluster.phase_time(kPhaseExtraction)),
                 fmt(cluster.total_compute()), fmt(cluster.total_comm()),
                 fmt(cpu.seconds / cluster.total_time(), 2) + "x"},
                12);
    }
  }
  std::printf("\nPaper reference: distributed LADIES exceeds the CPU reference at 64\n"
              "GPUs; column extraction dominates the breakdown.\n");
  return 0;
}
