// Table 2: capability matrix of distributed minibatch GNN systems.
// Static content from the paper, with the row for this work verified
// against what the library actually implements.
#include "bench_util.hpp"

int main() {
  using namespace dms::bench;
  print_header("Table 2: Existing distributed minibatch GNN systems");
  print_row({"System", "GPU-sampling", "Multi-node*", "Multi-sampler"}, 16);
  print_row({"DistDGL", "no", "yes", "yes"}, 16);
  print_row({"Quiver", "yes", "no", "no"}, 16);
  print_row({"GNNLab", "yes", "no", "no"}, 16);
  print_row({"WholeGraph", "yes", "no", "no"}, 16);
  print_row({"DSP", "yes", "yes", "no"}, 16);
  print_row({"PGLBox", "yes", "no", "no"}, 16);
  print_row({"SALIENT++", "no", "yes", "no"}, 16);
  print_row({"NextDoor", "yes", "no", "yes"}, 16);
  print_row({"P3", "no", "yes", "no"}, 16);
  print_row({"This work", "yes", "yes", "yes"}, 16);
  std::printf("\n* excludes systems that replicate graph AND features per node.\n");
  std::printf("This repo: GPU sampling -> simulated-device bulk sampling (src/core,\n"
              "src/dist); multi-node -> Graph Partitioned 1.5D algorithm (§5.2);\n"
              "multi-sampler -> GraphSAGE + LADIES + FastGCN in one framework.\n");
  return 0;
}
