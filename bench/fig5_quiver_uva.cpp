// Figure 5: Quiver with GPU-resident sampling vs UVA sampling (graph in
// host DRAM, 80% of features in DRAM / 20% cached on device by degree).
//
// Expected shape (§8.1.1): GPU sampling wins everywhere; the gap shrinks as
// p grows because sampling becomes a smaller fraction of epoch time.
#include "baselines/quiver_sim.hpp"
#include "bench_util.hpp"

using namespace dms;
using namespace dms::bench;

int main() {
  print_header("Figure 5: Quiver GPU vs UVA sampling (per-epoch seconds, simulated)");
  const LinkParams links = perlmutter_links();

  for (const std::string name : {"papers", "protein"}) {
    const Dataset& ds = dataset(name);
    std::printf("\n--- %s ---\n", ds.name.c_str());
    print_row({"p", "quiver-GPU", "quiver-UVA", "UVA/GPU"}, 12);
    double prev_ratio = -1.0;
    bool gap_shrinks = true;
    for (const int p : {4, 8, 16, 32, 64}) {
      QuiverConfig cfg;
      cfg.batch_size = arch().sage_batch;
      cfg.fanouts = arch().sage_fanout;
      cfg.hidden = arch().hidden;

      Cluster c_gpu(ProcessGrid(p, 1), CostModel(links));
      QuiverSim gpu(c_gpu, ds, cfg);
      const double t_gpu = gpu.run_epoch(0).total;

      cfg.uva = true;
      Cluster c_uva(ProcessGrid(p, 1), CostModel(links));
      QuiverSim uva(c_uva, ds, cfg);
      const double t_uva = uva.run_epoch(0).total;

      const double ratio = t_uva / t_gpu;
      print_row({std::to_string(p), fmt(t_gpu), fmt(t_uva), fmt(ratio, 2) + "x"}, 12);
      if (prev_ratio > 0 && ratio > prev_ratio * 1.15) gap_shrinks = false;
      prev_ratio = ratio;
    }
    std::printf("gap %s as p grows (paper: shrinking gap)\n",
                gap_shrinks ? "shrinks/holds" : "GREW (unexpected)");
  }
  return 0;
}
