// Chaos/recovery bench (DESIGN.md §13): quantifies what the fault-injection
// layer costs and what the recovery machinery buys, in three sections.
//
//  A. Training under chaos: a products-scale epoch on an 8-rank 1.5D grid
//     sweeping transient loss rate x retry budget and straggler rate, plus a
//     mid-epoch permanent rank crash. Faults only stretch the simulated
//     clock — losses must stay bit-identical to the healthy run (crashes
//     excepted: survivors re-partition, so only completion is gated).
//  B. Checkpoint kill-and-resume: an epoch killed at a bulk-round boundary
//     and resumed from its DMSK checkpoint must reproduce the uninterrupted
//     epoch's loss bit-for-bit while replaying only the remaining rounds
//     (recovery strictly beats restarting the epoch).
//  C. Serving degradation: a deterministic discrete-event single-server loop
//     at 2x overload, ungoverned (unbounded queue, serve everything) vs
//     governed (bounded queue + health monitor + deadline shedding). The
//     governed server sheds real load and keeps admitted queue waits
//     bounded; the ungoverned tail grows with the run length.
//
// --smoke exits nonzero unless every section's gate holds; --json=PATH
// appends one row per measurement cell to BENCH_chaos.json.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "serve/coalescer.hpp"
#include "serve/health.hpp"
#include "serve/stats.hpp"
#include "train/checkpoint.hpp"
#include "train/pipeline.hpp"

namespace dms {
namespace {

// 8 ranks as a 4x2 (rows x replication) 1.5D grid — the paper's p=8, c=2
// products point. bulk_k = 16 gives ~7 bulk rounds per epoch, so the crash
// scheduled for superstep 2 fires mid-epoch with rounds left to recover in.
constexpr int kRanks = 8;
constexpr int kReplication = 2;
constexpr index_t kBulkK = 16;
constexpr index_t kCrashRank = 1;       // (row 1, col 0): an owner rank
constexpr index_t kCrashSuperstep = 2;

PipelineConfig train_config(SamplerKind kind) {
  PipelineConfig cfg;
  cfg.sampler = kind;
  cfg.mode = DistMode::kPartitioned;
  if (kind == SamplerKind::kGraphSage) {
    cfg.batch_size = bench::arch().sage_batch;
    cfg.fanouts = bench::arch().sage_fanout;
  } else {
    cfg.batch_size = bench::arch().ladies_batch;
    cfg.fanouts = {bench::arch().ladies_s};
  }
  cfg.hidden = bench::arch().hidden;
  cfg.bulk_k = kBulkK;
  return cfg;
}

/// One cell of the training chaos sweep: a fault configuration, the epoch it
/// produced, and the healthy epoch's total for the slowdown ratio.
struct ChaosCell {
  std::string sampler;
  std::string name;  ///< stable case key ("healthy", "loss5_r4", ...)
  FaultPlanConfig faults;
  RecoveryPolicy policy;
  bool has_plan = false;
  EpochStats stats;
  double slowdown = 1.0;  ///< total / healthy total, same sampler
};

EpochStats run_chaos_epoch(const Dataset& ds, const PipelineConfig& cfg,
                           const ChaosCell& cell) {
  Cluster cluster(ProcessGrid(kRanks, kReplication),
                  CostModel(bench::perlmutter_links()));
  std::unique_ptr<FaultPlan> plan;
  if (cell.has_plan) {
    plan = std::make_unique<FaultPlan>(cell.faults);
    cluster.install_faults(plan.get(), cell.policy);
  }
  Pipeline pipe(cluster, ds, cfg);
  return pipe.run_epoch(0);
}

std::vector<ChaosCell> chaos_cells(bool smoke) {
  std::vector<ChaosCell> cells;
  const auto add = [&](const std::string& name, double loss, int attempts,
                       double strag_rate, double strag_factor, bool crash) {
    ChaosCell c;
    c.name = name;
    c.has_plan = loss > 0.0 || strag_rate > 0.0 || crash;
    c.faults.seed = 2024;
    c.faults.loss_rate = loss;
    c.faults.straggler_rate = strag_rate;
    c.faults.straggler_factor = strag_factor;
    if (crash) c.faults.crashes = {{kCrashRank, kCrashSuperstep}};
    c.policy.max_attempts = attempts;
    cells.push_back(std::move(c));
  };
  add("healthy", 0.0, 4, 0.0, 1.0, false);
  add("loss5_r4", 0.05, 4, 0.0, 1.0, false);
  if (!smoke) add("loss20_r2", 0.20, 2, 0.0, 1.0, false);
  add("straggle20_x4", 0.0, 4, 0.20, 4.0, false);
  if (!smoke) add("straggle10_x2", 0.0, 4, 0.10, 2.0, false);
  // The combined-failure cell mirrors tests/test_faults.cpp: a rank dies at
  // superstep 2 while messages also drop and ranks straggle.
  add("crash+loss5", 0.05, 4, 0.10, 2.0, true);
  return cells;
}

// --- Section B: checkpoint kill-and-resume ---------------------------------

struct CheckpointResult {
  EpochStats full;     ///< the uninterrupted epoch 1
  EpochStats resumed;  ///< the resumed segment (whole-epoch loss, tail time)
  index_t stop_round = 0;
  index_t total_rounds = 0;
  double ckpt_bytes = 0.0;
  bool bisected = false;
};

CheckpointResult run_checkpoint(const Dataset& ds, const PipelineConfig& cfg) {
  const std::string path = "chaos_recovery_ckpt.bin";
  CheckpointResult out;

  // Uninterrupted reference: epoch 0 then the epoch we will later bisect.
  Cluster c_ref(ProcessGrid(kRanks, kReplication),
                CostModel(bench::perlmutter_links()));
  Pipeline ref(c_ref, ds, cfg);
  ref.run_epoch(0);
  out.full = ref.run_epoch(1);

  // Killed run: stop epoch 1 at the round-3 boundary, checkpoint, "die".
  {
    Cluster c_kill(ProcessGrid(kRanks, kReplication),
                   CostModel(bench::perlmutter_links()));
    Pipeline killed(c_kill, ds, cfg);
    killed.run_epoch(0);
    const TrainCursor cur = killed.run_epoch_partial(1, 3);
    out.stop_round = cur.next_round;
    out.total_rounds = cur.total_rounds;
    out.bisected = !cur.finished();
    save_checkpoint(killed, cur, path);
  }
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (in) out.ckpt_bytes = static_cast<double>(in.tellg());
  }

  // Fresh process: restore and finish the epoch.
  Cluster c_res(ProcessGrid(kRanks, kReplication),
                CostModel(bench::perlmutter_links()));
  Pipeline resumed(c_res, ds, cfg);
  const TrainCursor cur = load_checkpoint(resumed, path);
  out.resumed = resumed.run_epoch_resumed(cur);
  std::remove(path.c_str());
  return out;
}

// --- Section C: serving degradation under overload -------------------------

struct ServeCell {
  std::string policy;  ///< "ungoverned" / "governed"
  std::size_t served = 0;
  std::size_t shed_queue_full = 0;
  std::size_t shed_deadline = 0;
  double queue_p99 = 0.0;
  double makespan = 0.0;
  std::size_t health_transitions = 0;
};

/// Deterministic discrete-event single-server overload run (the modeled-time
/// analog of serve_latency's simulation): bulks of up to `cap` requests take
/// `service` seconds against arrivals every `interval` seconds. With
/// service/cap = 0.1 s per request and interval 0.05 s this is 2x overload.
ServeCell run_serving(bool governed, index_t n) {
  const double service = 0.2;
  const double interval = 0.05;
  const double deadline_after = 0.5;

  CoalescerConfig ccfg;
  ccfg.window = 0.02;
  ccfg.max_requests = 2;
  if (governed) {
    ccfg.max_pending = 8;
    ccfg.shed_overdue = true;
  }
  Coalescer coal(ccfg);
  HealthConfig hcfg;
  hcfg.queue_capacity = 8;
  HealthMonitor mon(hcfg);
  ServeStats stats;

  double server_free = 0.0;
  index_t next_arrival = 0;
  while (next_arrival < n || !coal.empty()) {
    // The next batch cannot start before the server frees, so every arrival
    // due by then reaches admission control first.
    const double now =
        coal.empty() ? std::max(static_cast<double>(next_arrival) * interval,
                                server_free)
                     : std::max(coal.ready_at(), server_free);
    while (next_arrival < n &&
           static_cast<double>(next_arrival) * interval <= now) {
      ServeRequest r;
      r.id = next_arrival;
      r.seeds = {next_arrival % 100};
      r.arrival = static_cast<double>(next_arrival) * interval;
      r.deadline = r.arrival + deadline_after;
      ++next_arrival;
      if (governed) {
        mon.observe(coal.pending());
        if (!mon.admit_arrivals() || !coal.try_push(r)) {
          stats.record_shed({r.id, r.arrival, r.arrival,
                             ShedReason::kQueueFull});
          continue;
        }
      } else {
        coal.push(r);
      }
    }
    if (coal.empty()) continue;
    const double start = std::max(coal.ready_at(), server_free);
    const CoalescedBatch b = coal.pop(start);
    for (const ShedRecord& s : b.shed) stats.record_shed(s);
    if (governed) mon.observe(coal.pending());
    if (b.empty()) continue;
    BatchRecord br;
    br.requests = b.size();
    br.inference = service;
    std::vector<RequestRecord> rr;
    rr.reserve(b.size());
    for (const ServeRequest& r : b.requests) {
      rr.push_back({r.id, b.size(), start - r.arrival, service});
    }
    stats.record(br, rr);
    server_free = start + service;
  }

  ServeCell cell;
  cell.policy = governed ? "governed" : "ungoverned";
  cell.served = stats.num_requests();
  cell.shed_queue_full = stats.num_shed(ShedReason::kQueueFull);
  cell.shed_deadline = stats.num_shed(ShedReason::kDeadlineExceeded);
  cell.queue_p99 = stats.queue_wait_percentile(99.0);
  cell.makespan = server_free;
  cell.health_transitions = mon.transitions();
  return cell;
}

int run(bool smoke, const std::string& json_path) {
  const Dataset& ds = bench::dataset("products");
  int failures = 0;
  const auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what);
      ++failures;
    }
  };

  // --- Section A: training under chaos -------------------------------------
  const std::vector<SamplerKind> kinds =
      smoke ? std::vector<SamplerKind>{SamplerKind::kGraphSage}
            : std::vector<SamplerKind>{SamplerKind::kGraphSage,
                                       SamplerKind::kLadies};
  std::vector<ChaosCell> cells;
  for (const SamplerKind kind : kinds) {
    const PipelineConfig cfg = train_config(kind);
    const std::string sampler =
        kind == SamplerKind::kGraphSage ? "sage" : "ladies";
    double healthy_total = 0.0;
    double healthy_loss = 0.0;
    for (ChaosCell cell : chaos_cells(smoke)) {
      cell.sampler = sampler;
      cell.stats = run_chaos_epoch(ds, cfg, cell);
      if (cell.name == "healthy") {
        healthy_total = cell.stats.total;
        healthy_loss = cell.stats.loss;
      }
      cell.slowdown =
          healthy_total > 0.0 ? cell.stats.total / healthy_total : 1.0;
      const bool crash = !cell.faults.crashes.empty();
      gate(std::isfinite(cell.stats.loss) && cell.stats.loss > 0.0,
           (sampler + "/" + cell.name + ": epoch did not complete sanely")
               .c_str());
      // Faults delay but never change the arithmetic; crash cells re-partition
      // onto survivors, so only completion + accounting are gated there.
      if (!crash && cell.name != "healthy") {
        gate(cell.stats.loss == healthy_loss,
             (sampler + "/" + cell.name +
              ": faulty loss not bit-identical to healthy")
                 .c_str());
      }
      if (cell.faults.loss_rate > 0.0) {
        gate(cell.stats.fault_retry > 0.0 && cell.stats.retry_messages > 0,
             (sampler + "/" + cell.name + ": no retries recorded").c_str());
      }
      if (cell.faults.straggler_rate > 0.0 && !crash) {
        gate(cell.stats.fault_straggler > 0.0,
             (sampler + "/" + cell.name + ": no straggler time").c_str());
        gate(cell.stats.total > healthy_total,
             (sampler + "/" + cell.name +
              ": straggling epoch not slower than healthy")
                 .c_str());
      }
      if (crash) {
        gate(cell.stats.crashed_ranks == 1,
             (sampler + "/" + cell.name + ": crash did not fire").c_str());
        gate(cell.stats.fault_redistribution > 0.0,
             (sampler + "/" + cell.name + ": no survivor redistribution")
                 .c_str());
      }
      cells.push_back(std::move(cell));
    }
  }

  bench::print_header(
      "Training under chaos: loss rate x retry budget, stragglers, rank "
      "crash (products, p=" +
      std::to_string(kRanks) + " c=" + std::to_string(kReplication) + ")");
  bench::print_row({"sampler", "cell", "loss", "epoch_s", "slowdown",
                    "straggle_s", "retry_s", "redist_s", "crashed"});
  for (const ChaosCell& c : cells) {
    bench::print_row({c.sampler, c.name, bench::fmt(c.stats.loss, 4),
                      bench::fmt(c.stats.total, 3), bench::fmt(c.slowdown, 2),
                      bench::fmt(c.stats.fault_straggler, 3),
                      bench::fmt(c.stats.fault_retry, 3),
                      bench::fmt(c.stats.fault_redistribution, 3),
                      std::to_string(c.stats.crashed_ranks)});
  }

  // --- Section B: checkpoint kill-and-resume --------------------------------
  const CheckpointResult ck =
      run_checkpoint(ds, train_config(SamplerKind::kGraphSage));
  gate(ck.bisected, "checkpoint: epoch too small to bisect");
  gate(ck.resumed.loss == ck.full.loss,
       "checkpoint: resumed loss not bit-identical to uninterrupted epoch");
  gate(ck.resumed.train_acc == ck.full.train_acc,
       "checkpoint: resumed accuracy not bit-identical");
  gate(ck.resumed.total < ck.full.total,
       "checkpoint: resuming not cheaper than restarting the epoch");

  bench::print_header("Checkpoint kill-and-resume (sage/partitioned)");
  bench::print_row({"stop_round", "rounds", "full_s", "resumed_s", "ratio",
                    "ckpt_kb"});
  bench::print_row({std::to_string(ck.stop_round),
                    std::to_string(ck.total_rounds),
                    bench::fmt(ck.full.total, 3),
                    bench::fmt(ck.resumed.total, 3),
                    bench::fmt(ck.full.total > 0.0
                                   ? ck.resumed.total / ck.full.total
                                   : 0.0,
                               2),
                    bench::fmt(ck.ckpt_bytes / 1024.0, 1)});

  // --- Section C: serving degradation under overload ------------------------
  const index_t n_requests = smoke ? 200 : 800;
  const ServeCell ungov = run_serving(/*governed=*/false, n_requests);
  const ServeCell gov = run_serving(/*governed=*/true, n_requests);
  gate(gov.shed_queue_full + gov.shed_deadline > 0,
       "serving: governed server shed nothing under 2x overload");
  gate(gov.served + gov.shed_queue_full + gov.shed_deadline ==
           static_cast<std::size_t>(n_requests),
       "serving: governed served+shed does not conserve requests");
  gate(gov.health_transitions > 0,
       "serving: health monitor never changed state under overload");
  gate(gov.queue_p99 < ungov.queue_p99 / 2.0,
       "serving: governed p99 queue wait not well below ungoverned");

  bench::print_header("Serving under 2x overload: ungoverned vs governed");
  bench::print_row({"policy", "served", "shed_full", "shed_ddl", "q_p99_s",
                    "makespan_s", "hlth_trans"});
  for (const ServeCell& c : {ungov, gov}) {
    bench::print_row({c.policy, std::to_string(c.served),
                      std::to_string(c.shed_queue_full),
                      std::to_string(c.shed_deadline),
                      bench::fmt(c.queue_p99, 3), bench::fmt(c.makespan, 2),
                      std::to_string(c.health_transitions)});
  }

  if (!json_path.empty()) {
    bench::JsonWriter json(json_path, /*append=*/true);
    if (!json.ok()) {
      std::fprintf(stderr, "chaos_recovery: cannot open %s\n",
                   json_path.c_str());
      return 1;
    }
    const std::string suffix = smoke ? " (smoke)" : "";
    for (const ChaosCell& c : cells) {
      json.row({{"bench", "chaos_recovery/train" + suffix},
                {"case", c.sampler + " " + c.name},
                {"sampler", c.sampler},
                {"loss_rate", c.faults.loss_rate},
                {"straggler_rate", c.faults.straggler_rate},
                {"max_attempts", c.policy.max_attempts},
                {"crash", static_cast<int>(!c.faults.crashes.empty())},
                {"loss", c.stats.loss},
                {"epoch_s", c.stats.total},
                {"slowdown", c.slowdown},
                {"straggler_s", c.stats.fault_straggler},
                {"retry_s", c.stats.fault_retry},
                {"redistribution_s", c.stats.fault_redistribution},
                {"retry_messages", static_cast<index_t>(c.stats.retry_messages)},
                {"crashed_ranks", static_cast<index_t>(c.stats.crashed_ranks)}});
    }
    json.row({{"bench", "chaos_recovery/checkpoint" + suffix},
              {"case", "sage partitioned"},
              {"stop_round", ck.stop_round},
              {"total_rounds", ck.total_rounds},
              {"full_s", ck.full.total},
              {"resumed_s", ck.resumed.total},
              {"resume_ratio",
               ck.full.total > 0.0 ? ck.resumed.total / ck.full.total : 0.0},
              {"ckpt_bytes", ck.ckpt_bytes}});
    for (const ServeCell& c : {ungov, gov}) {
      json.row({{"bench", "chaos_recovery/serve" + suffix},
                {"case", c.policy},
                {"served", static_cast<index_t>(c.served)},
                {"shed_queue_full", static_cast<index_t>(c.shed_queue_full)},
                {"shed_deadline", static_cast<index_t>(c.shed_deadline)},
                {"queue_p99_s", c.queue_p99},
                {"makespan_s", c.makespan},
                {"health_transitions",
                 static_cast<index_t>(c.health_transitions)}});
    }
    std::printf("JSON appended to %s\n", json_path.c_str());
  }

  if (smoke) {
    if (failures > 0) {
      std::fprintf(stderr, "chaos_recovery: %d smoke gate(s) failed\n",
                   failures);
      return 1;
    }
    std::printf(
        "SMOKE OK: faulty losses bit-identical, crash recovered "
        "(redistribution %.3fs), resume at %.0f%% of a full epoch, governed "
        "serving shed %zu and cut p99 queue wait %.2fs -> %.2fs\n",
        cells.back().stats.fault_redistribution,
        100.0 * (ck.full.total > 0.0 ? ck.resumed.total / ck.full.total : 0.0),
        gov.shed_queue_full + gov.shed_deadline, ungov.queue_p99,
        gov.queue_p99);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dms

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }
  return dms::run(smoke, json_path);
}
