// Table 3: dataset statistics — the paper's datasets next to the generated
// stand-ins this reproduction trains on (see DESIGN.md §2 for the
// substitution argument: average degree and skew are the load-bearing
// properties).
#include "bench_util.hpp"

int main() {
  using namespace dms::bench;
  print_header("Table 3: Datasets (paper) vs generated stand-ins (this repo)");
  print_row({"Name", "Vertices", "Edges", "AvgDeg", "Batches", "Features"});
  print_row({"Products", "2.4M", "126M", "53", "196", "100"});
  print_row({"Protein", "8.7M", "1.3B", "150*", "1024", "128"});
  print_row({"Papers", "111M", "1.6B", "29*", "1172", "128"});
  std::printf("  (*§8.1.1 quotes avg degrees 241 / 29; Table 3 ratios differ slightly)\n\n");

  print_row({"Name", "Vertices", "Edges", "AvgDeg", "Batches", "Features"});
  for (const std::string name : {"products", "papers", "protein"}) {
    const auto& ds = dataset(name);
    const dms::index_t batch =
        name == "products" || name == "papers" || name == "protein"
            ? arch().sage_batch
            : 64;
    print_row({ds.name, std::to_string(ds.num_vertices()),
               std::to_string(ds.graph.num_edges()),
               fmt(ds.graph.avg_degree(), 1),
               std::to_string(ds.num_batches(batch)),
               std::to_string(ds.feature_dim())});
  }
  std::printf("\nDensity ordering preserved: protein-sim > products-sim > papers-sim,\n"
              "papers-sim has the most vertices/batches — the properties §8.1.1 uses\n"
              "to explain Quiver's scaling behavior.\n");
  return 0;
}
