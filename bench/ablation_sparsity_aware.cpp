// Ablation for the §5.2.1 design choice: sparsity-aware (Ballard et al.)
// vs sparsity-oblivious (Koanantakool et al.) 1.5D SpGEMM in the
// probability-generation step. The aware variant ships only the A-rows that
// nonzero columns of Q actually touch.
#include "bench_util.hpp"
#include "core/minibatch.hpp"
#include "dist/sampler_factory.hpp"

using namespace dms;
using namespace dms::bench;

int main() {
  print_header("Ablation: sparsity-aware vs oblivious 1.5D SpGEMM (papers-sim, SAGE)");
  const Dataset& ds = dataset("papers");
  const auto batches = make_epoch_batches(ds.train_idx, arch().sage_batch, 1);
  std::vector<index_t> ids(batches.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<index_t>(i);

  print_row({"p", "c", "variant", "prob-time(s)", "comm(s)", "row-bytes(MB)"}, 14);
  for (const auto& [p, c] : std::vector<std::pair<int, int>>{{16, 2}, {32, 2}, {64, 4}}) {
    for (const bool aware : {true, false}) {
      Cluster cluster(ProcessGrid(p, c), CostModel(perlmutter_links()));
      SamplerContext ctx;
      ctx.config = SamplerConfig{arch().sage_fanout, 1};
      ctx.grid = &cluster.grid();
      ctx.part_opts.sparsity_aware = aware;
      const auto sampler =
          make_sampler(SamplerKind::kGraphSage, DistMode::kPartitioned, ds.graph, ctx);
      as_partitioned(*sampler).sample_bulk(cluster, batches, ids, 7);
      const auto& comm = cluster.comm_stats().at(kPhaseProbability);
      print_row({std::to_string(p), std::to_string(c), aware ? "aware" : "oblivious",
                 fmt(cluster.phase_time(kPhaseProbability)), fmt(comm.seconds),
                 fmt(static_cast<double>(comm.bytes) / 1e6, 1)},
                14);
    }
  }
  std::printf("\nExpected: the aware variant ships a fraction of the oblivious row\n"
              "bytes whenever Q is sparse relative to the A panels it touches.\n");
  return 0;
}
