// Online serving latency bench (DESIGN.md §10): drives a seeded open-loop
// arrival process through the Coalescer + ServeEngine stack as a
// discrete-event single-server simulation, sweeping coalescing window ×
// batch cap × sampler, and reports per-request p50/p95/p99 latency plus
// throughput. The arrival clock is real seconds: the mean single-request
// service time is calibrated first and the arrival rate / windows are set as
// multiples of it, so every machine runs at the same relative load (the
// window labels w0/w2/w8 are service-time multiples — stable trajectory
// keys).
//
// --smoke exits nonzero unless (a) coalesced predictions are bit-identical
// to the same requests served alone on a fresh engine, (b) steady-state
// serving is allocation-free (trace-replay: run a trace, freeze the arena,
// replay the identical trace, the frozen arena must not grow), and (c) a
// coalescing config beats strict batch-size-1 serving on server-busy
// throughput. --json=PATH appends one row per sweep cell to BENCH_serve.json.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "nn/model.hpp"
#include "serve/engine.hpp"

namespace dms {
namespace {

ServeEngineConfig engine_config(SamplerKind kind) {
  ServeEngineConfig cfg;
  cfg.sampler = kind;
  cfg.mode = DistMode::kReplicated;
  cfg.fanouts = {8, 4};  // 2-layer serving slice of the bench architecture
  return cfg;
}

/// Seeded request trace: `n` requests with 1-4 distinct seed vertices drawn
/// from the train split and exponential interarrivals of mean
/// `mean_interarrival` seconds (open-loop: arrivals ignore the server).
std::vector<ServeRequest> make_trace(const Dataset& ds, std::size_t n,
                                     double mean_interarrival,
                                     std::uint64_t seed) {
  std::vector<ServeRequest> reqs(n);
  Pcg32 rng(seed, 0x5e12e);
  double clock = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    reqs[i].id = static_cast<index_t>(i);
    const std::size_t k = 1 + static_cast<std::size_t>(rng.bounded(4));
    while (reqs[i].seeds.size() < k) {
      const index_t v = ds.train_idx[static_cast<std::size_t>(rng.bounded(
          static_cast<std::uint32_t>(ds.train_idx.size())))];
      if (std::find(reqs[i].seeds.begin(), reqs[i].seeds.end(), v) ==
          reqs[i].seeds.end()) {
        reqs[i].seeds.push_back(v);
      }
    }
    reqs[i].arrival = clock;
    // Inverse-CDF exponential draw; 1-u keeps the log argument positive.
    clock += -mean_interarrival * std::log(1.0 - rng.uniform());
  }
  return reqs;
}

struct SimResult {
  double makespan = 0.0;  ///< last batch completion on the serve clock
  std::vector<CoalescedBatch> batches;   ///< admission decisions, in order
  std::map<index_t, DenseF> logits;      ///< per request id
};

/// Discrete-event single-server loop: the coalescer decides admission on the
/// arrival clock, the server's busy time is the measured host wall-clock of
/// each engine.serve call, and a batch starts at max(ready_at, server_free)
/// — backlog behind a busy server coalesces naturally.
SimResult run_sim(ServeEngine& engine, const std::vector<ServeRequest>& reqs,
                  const CoalescerConfig& cfg, bool keep_logits) {
  engine.reset_stats();
  Coalescer coal(cfg);
  for (const ServeRequest& r : reqs) coal.push(r);
  SimResult sim;
  double server_free = 0.0;
  while (!coal.empty()) {
    const double start = std::max(coal.ready_at(), server_free);
    CoalescedBatch batch = coal.pop(start);
    Timer t;
    ServeBatchResult res = engine.serve(batch);
    server_free = start + t.seconds();
    if (keep_logits) {
      for (std::size_t i = 0; i < batch.requests.size(); ++i) {
        sim.logits.emplace(batch.requests[i].id, std::move(res.logits[i]));
      }
    }
    sim.batches.push_back(std::move(batch));
  }
  sim.makespan = server_free;
  return sim;
}

bool bits_equal(const DenseF& a, const DenseF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      if (a(i, j) != b(i, j)) return false;
    }
  }
  return true;
}

struct Cell {
  std::string sampler;
  std::string window_label;  ///< w0/w2/w8: window in mean-service multiples
  index_t cap = 1;
  std::size_t requests = 0;
  double mean_batch = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  double queue_p99 = 0.0;
  double service_s = 0.0;   ///< server-busy seconds across the run
  double makespan_s = 0.0;
  double sampling_s = 0.0, fetch_s = 0.0, inference_s = 0.0;
  double throughput() const {
    return makespan_s > 0.0 ? static_cast<double>(requests) / makespan_s : 0.0;
  }
};

Cell summarize(const std::string& sampler, const std::string& wlabel,
               index_t cap, const ServeEngine& engine, const SimResult& sim) {
  const ServeStats& s = engine.stats();
  Cell c;
  c.sampler = sampler;
  c.window_label = wlabel;
  c.cap = cap;
  c.requests = s.num_requests();
  c.mean_batch = s.mean_batch_size();
  c.p50 = s.p50();
  c.p95 = s.p95();
  c.p99 = s.p99();
  c.queue_p99 = s.queue_wait_percentile(99.0);
  c.service_s = s.service_seconds();
  c.makespan_s = sim.makespan;
  c.sampling_s = s.sampling_seconds();
  c.fetch_s = s.fetch_seconds();
  c.inference_s = s.inference_seconds();
  return c;
}

/// Mean single-request service time (doubles as engine warmup): the unit the
/// arrival rate and coalescing windows are expressed in.
double calibrate(ServeEngine& engine, const Dataset& ds) {
  Pcg32 rng(99, 0xca1);
  const int m = 8;
  for (int i = 0; i < m; ++i) {
    ServeRequest r;
    r.id = static_cast<index_t>(1'000'000 + i);  // off the trace's id space
    for (int k = 0; k < 4; ++k) {
      r.seeds.push_back(ds.train_idx[static_cast<std::size_t>(rng.bounded(
          static_cast<std::uint32_t>(ds.train_idx.size())))]);
    }
    std::sort(r.seeds.begin(), r.seeds.end());
    r.seeds.erase(std::unique(r.seeds.begin(), r.seeds.end()), r.seeds.end());
    engine.serve_one(r);
  }
  const double mean = engine.stats().service_seconds() / m;
  engine.reset_stats();
  return mean;
}

int run(bool smoke, const std::string& json_path) {
  const Dataset& ds = bench::dataset("products");
  const ProcessGrid grid(4, 2);
  FeatureStore store(grid, ds.features);
  ModelConfig mc;
  mc.in_dim = static_cast<index_t>(bench::arch().features);
  mc.hidden = bench::arch().hidden;
  mc.num_classes = ds.num_classes;
  mc.num_layers = 2;
  mc.seed = 11;
  const SageModel model(mc);

  const std::size_t n_requests = smoke ? 64 : 256;
  // Load 2: arrivals come twice as fast as batch-size-1 service drains them,
  // so the no-coalescing baseline saturates and backlog exists to coalesce.
  const double load = 2.0;
  const std::vector<double> window_mults = smoke
                                               ? std::vector<double>{0.0, 2.0}
                                               : std::vector<double>{0.0, 2.0, 8.0};
  const std::vector<index_t> caps =
      smoke ? std::vector<index_t>{1, 16} : std::vector<index_t>{1, 8, 32};

  std::vector<Cell> cells;
  bool bits_ok = true;
  bool alloc_ok = true;
  std::size_t frozen_bytes = 0;
  // Server-busy seconds of the smoke gate's two sage configs (min of trials).
  double busy_cap1 = 0.0, busy_coalesced = 0.0;

  for (const SamplerKind kind : {SamplerKind::kGraphSage, SamplerKind::kLadies}) {
    const std::string name = kind == SamplerKind::kGraphSage ? "sage" : "ladies";
    ServeEngine engine(ds.graph, store, model, engine_config(kind), &grid);
    const double mean_service = calibrate(engine, ds);
    const std::vector<ServeRequest> trace =
        make_trace(ds, n_requests, mean_service / load, /*seed=*/42);

    for (const double wm : window_mults) {
      for (const index_t cap : caps) {
        if (cap == 1 && wm > 0.0) continue;  // window is moot at cap 1
        const CoalescerConfig ccfg{wm * mean_service, cap};
        const bool gate_cell =
            kind == SamplerKind::kGraphSage &&
            ((cap == 1 && wm == 0.0) || (cap == caps.back() && wm > 0.0));
        const int trials = smoke && gate_cell ? 3 : 1;
        SimResult sim;
        double best_busy = 0.0;
        for (int t = 0; t < trials; ++t) {
          sim = run_sim(engine, trace, ccfg, /*keep_logits=*/gate_cell);
          const double busy = engine.stats().service_seconds();
          if (t == 0 || busy < best_busy) best_busy = busy;
        }
        char wlabel[16];
        std::snprintf(wlabel, sizeof(wlabel), "w%g", wm);
        cells.push_back(summarize(name, wlabel, cap, engine, sim));

        if (smoke && gate_cell) {
          if (cap == 1) {
            busy_cap1 = best_busy;
          } else {
            busy_coalesced = best_busy;
            // Gate (a): every prediction of the coalesced run matches the
            // same request served alone on a fresh engine, bit for bit.
            ServeEngine fresh(ds.graph, store, model, engine_config(kind),
                              &grid);
            for (std::size_t i = 0; i < std::min<std::size_t>(trace.size(), 12);
                 ++i) {
              if (!bits_equal(sim.logits.at(trace[i].id),
                              fresh.serve_one(trace[i]))) {
                bits_ok = false;
              }
            }
            // Gate (b): trace-replay steady state. A fresh engine runs the
            // recorded admission decisions once to reach its high-water
            // mark, freezes, then replays the identical batches — frozen
            // arena growth means a hot-path allocation leaked back in.
            ServeEngine replay(ds.graph, store, model, engine_config(kind),
                               &grid);
            for (const CoalescedBatch& b : sim.batches) replay.serve(b);
            replay.freeze();
            frozen_bytes = replay.workspace()->frozen_bytes();
            for (const CoalescedBatch& b : sim.batches) replay.serve(b);
            alloc_ok = replay.workspace()->bytes_held() <= frozen_bytes;
          }
        }
      }
    }
  }

  bench::print_header(
      "Online serving: coalescing window x batch cap x sampler (load " +
      bench::fmt(load, 1) + ", " + std::to_string(n_requests) + " requests)");
  bench::print_row({"sampler", "window", "cap", "mean_b", "p50_ms", "p95_ms",
                    "p99_ms", "req_per_s"});
  for (const Cell& c : cells) {
    bench::print_row({c.sampler, c.window_label, std::to_string(c.cap),
                      bench::fmt(c.mean_batch, 2), bench::fmt(c.p50 * 1e3, 3),
                      bench::fmt(c.p95 * 1e3, 3), bench::fmt(c.p99 * 1e3, 3),
                      bench::fmt(c.throughput(), 1)});
  }

  if (!json_path.empty()) {
    bench::JsonWriter json(json_path, /*append=*/true);
    if (!json.ok()) {
      std::fprintf(stderr, "serve_latency: cannot open %s\n", json_path.c_str());
      return 1;
    }
    const std::string bench_id =
        std::string("serve_latency/sweep") + (smoke ? " (smoke)" : "");
    for (const Cell& c : cells) {
      json.row({{"bench", bench_id},
                {"case", c.sampler + " " + c.window_label + " cap" +
                             std::to_string(c.cap)},
                {"sampler", c.sampler},
                {"window", c.window_label},
                {"cap", c.cap},
                {"requests", static_cast<index_t>(c.requests)},
                {"mean_batch", c.mean_batch},
                {"p50_ms", c.p50 * 1e3},
                {"p95_ms", c.p95 * 1e3},
                {"p99_ms", c.p99 * 1e3},
                {"queue_p99_ms", c.queue_p99 * 1e3},
                {"throughput_rps", c.throughput()},
                {"sampling_ms", c.sampling_s * 1e3},
                {"fetch_ms", c.fetch_s * 1e3},
                {"inference_ms", c.inference_s * 1e3}});
    }
    std::printf("JSON appended to %s\n", json_path.c_str());
  }

  if (smoke) {
    if (!bits_ok) {
      std::fprintf(stderr,
                   "FAIL: coalesced predictions differ from serve-alone\n");
      return 1;
    }
    if (!alloc_ok) {
      std::fprintf(stderr,
                   "FAIL: frozen workspace grew during trace replay\n");
      return 1;
    }
    if (!(busy_coalesced < busy_cap1)) {
      std::fprintf(stderr,
                   "FAIL: coalescing (%.4fs busy) does not beat batch-size-1 "
                   "(%.4fs busy) on server-busy throughput\n",
                   busy_coalesced, busy_cap1);
      return 1;
    }
    std::printf(
        "SMOKE OK: bit-identical to serve-alone, steady state allocation-free "
        "(frozen arena %zu bytes), coalescing %.4fs busy vs batch-1 %.4fs\n",
        frozen_bytes, busy_coalesced, busy_cap1);
  }
  return 0;
}

}  // namespace
}  // namespace dms

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }
  return dms::run(smoke, json_path);
}
