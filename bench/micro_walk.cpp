// Fused walk-engine microbench (plain main, no Google Benchmark): runs the
// same GraphSAINT-RW walk workload through (a) the op-by-op matrix path,
// (b) the fused per-walker engine in original vertex order, and (c) the
// fused engine with degree-sorted relabeling and cache bucketing
// (DESIGN.md §11), then reports walk throughput (surviving-walker edge
// traversals per second, PlanExecutor::walk_steps over the walk-phase op
// seconds — the induced-subgraph epilogue is identical across variants and
// excluded).
//
// Two sections, two workload sizes: the fused-vs-matrix ratio runs a
// modest walker count (the matrix path materializes every walker's full
// adjacency row per round, so it is orders of magnitude slower), while the
// locality ratios compare the fused variants against each other at a
// walker count high enough that per-round adjacency reuse — the thing
// bucketing concentrates — actually exists.
//
// --smoke exits nonzero if the fused outputs are not bit-identical to the
// matrix path or fused throughput falls below the matrix path; --compare
// prints the fused/matrix and relabel[+bucket]/direct ratios on the
// full-size power-law graph; --json=PATH appends rows to the
// BENCH_micro.json trajectory.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <utility>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/graphsaint.hpp"
#include "graph/generators.hpp"
#include "graph/relabel.hpp"

namespace dms {
namespace {

bool identical(const std::vector<MinibatchSample>& a,
               const std::vector<MinibatchSample>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].batch_vertices != b[i].batch_vertices) return false;
    if (a[i].layers.size() != b[i].layers.size()) return false;
    for (std::size_t l = 0; l < a[i].layers.size(); ++l) {
      if (!(a[i].layers[l].adj == b[i].layers[l].adj)) return false;
      if (a[i].layers[l].row_vertices != b[i].layers[l].row_vertices) return false;
      if (a[i].layers[l].col_vertices != b[i].layers[l].col_vertices) return false;
    }
  }
  return true;
}

struct VariantResult {
  std::string name;
  double walk_s = 0.0;
  std::uint64_t steps = 0;
  double edges_per_s() const { return walk_s > 0.0 ? steps / walk_s : 0.0; }
};

/// Walk-phase seconds from the executor's op accounting: the fused engine
/// records one "<plan>/fused_walk" entry; the matrix path spreads the same
/// work over the body ops. Epilogue ("induced") time is excluded from both.
double walk_seconds(const PlanExecutor& exec) {
  const auto ops = exec.op_seconds();
  double s = 0.0;
  for (const char* label :
       {"fused_walk", "build_q", "spgemm", "normalize", "its_sample",
        "walk_advance"}) {
    const auto it = ops.find(std::string(exec.plan().name) + "/" + label);
    if (it != ops.end()) s += it->second;
  }
  return s;
}

/// Runs every variant's epochs interleaved (variant A epoch e, variant B
/// epoch e, ...) so frequency/contention drift hits all variants equally —
/// the throughput ratios are what the bench reports.
std::vector<VariantResult> run_variants(
    const std::vector<std::pair<std::string, WalkEngineOptions>>& variants,
    const Graph& graph, const GraphSaintConfig& cfg,
    const std::vector<std::vector<index_t>>& batches,
    const std::vector<index_t>& ids, int epochs) {
  std::vector<std::unique_ptr<GraphSaintSampler>> samplers;
  for (const auto& [name, opts] : variants) {
    samplers.push_back(std::make_unique<GraphSaintSampler>(graph, cfg));
    samplers.back()->set_walk_options(opts);
    (void)samplers.back()->sample_bulk(batches, ids, 0);  // warm
    samplers.back()->executor().reset_stats();
  }
  for (int e = 1; e <= epochs; ++e) {
    for (auto& s : samplers) {
      (void)s->sample_bulk(batches, ids, static_cast<std::uint64_t>(e));
    }
  }
  std::vector<VariantResult> out;
  for (std::size_t i = 0; i < samplers.size(); ++i) {
    VariantResult r;
    r.name = variants[i].first;
    r.walk_s = walk_seconds(samplers[i]->executor());
    r.steps = samplers[i]->executor().walk_steps();
    out.push_back(r);
  }
  return out;
}

int run(bool smoke, bool compare, const std::string& json_path) {
  // Full size must exceed the last-level cache (the relabeling win is a
  // cache effect); smoke keeps CI fast — there the gate is correctness plus
  // fused >= matrix, not the locality ratio.
  RmatParams params;
  params.scale = smoke ? 12 : 18;
  params.edge_factor = 16.0;
  // Heavier-than-default skew: the hub rows a walk revisits are what the
  // degree-sorted layout keeps cache-resident.
  params.a = 0.7;
  params.b = 0.12;
  params.c = 0.12;
  params.seed = 5;
  const Graph raw = generate_rmat(params);
  // R-MAT places its hubs at low vertex ids by construction, which is the
  // degree-sorted layout already — scatter the ids like a real graph's
  // arbitrary numbering so the relabeling variants measure the layout, not
  // the generator.
  VertexRelabeling shuffle;
  shuffle.to_old.resize(static_cast<std::size_t>(raw.num_vertices()));
  std::iota(shuffle.to_old.begin(), shuffle.to_old.end(), 0);
  {
    Pcg32 sr(params.seed, 0x5f);
    for (index_t i = raw.num_vertices() - 1; i > 0; --i) {
      std::swap(shuffle.to_old[static_cast<std::size_t>(i)],
                shuffle.to_old[static_cast<std::size_t>(sr.bounded64(i + 1))]);
    }
  }
  shuffle.to_new.resize(shuffle.to_old.size());
  for (index_t i = 0; i < raw.num_vertices(); ++i) {
    shuffle.to_new[static_cast<std::size_t>(
        shuffle.to_old[static_cast<std::size_t>(i)])] = i;
  }
  const Graph graph(relabel_adjacency(raw.adjacency(), shuffle));
  const index_t n = graph.num_vertices();
  std::printf("micro_walk: R-MAT scale %d, %lld vertices, %lld edges\n",
              params.scale, static_cast<long long>(n),
              static_cast<long long>(graph.num_edges()));

  const GraphSaintConfig cfg{/*walk_length=*/8, /*model_layers=*/1, 1};
  const int num_batches = smoke ? 32 : 64;
  const index_t roots_per_batch = smoke ? 64 : 512;
  // The locality section runs fused-only, so it can afford the walker count
  // (~1M at full size) that makes per-round adjacency reuse measurable.
  const index_t locality_roots_per_batch = smoke ? 256 : 16384;
  const int epochs = smoke ? 3 : 3;
  const int locality_epochs = smoke ? 2 : 5;
  const auto make_batches = [&](index_t roots, std::uint64_t salt) {
    std::vector<std::vector<index_t>> batches(
        static_cast<std::size_t>(num_batches));
    Pcg32 rng(params.seed, salt);
    for (auto& batch : batches) {
      for (index_t i = 0; i < roots; ++i) batch.push_back(rng.bounded64(n));
    }
    return batches;
  };
  std::vector<index_t> ids(static_cast<std::size_t>(num_batches));
  std::iota(ids.begin(), ids.end(), 0);
  const auto batches = make_batches(roots_per_batch, 0xb57);
  const auto locality_batches =
      make_batches(locality_roots_per_batch, 0xb58);

  const WalkEngineOptions matrix_opts{.fused = false};
  const WalkEngineOptions direct_opts{
      .fused = true, .relabel = false, .bucket_bytes = 0};
  const WalkEngineOptions relabel_opts{
      .fused = true, .relabel = true, .relabel_min_vertices = 1024,
      .bucket_bytes = 0};
  const WalkEngineOptions full_opts{
      .fused = true, .relabel = true, .relabel_min_vertices = 1024};

  // Bit-identity first, outside the timed region: the fully-optimized
  // engine must reproduce the matrix path's minibatches exactly.
  bool bit_identical = true;
  {
    GraphSaintSampler ref(graph, cfg);
    ref.set_walk_options(matrix_opts);
    GraphSaintSampler fused(graph, cfg);
    fused.set_walk_options(full_opts);
    bit_identical = identical(ref.sample_bulk(batches, ids, 7),
                              fused.sample_bulk(batches, ids, 7));
  }

  const std::vector<VariantResult> fm_results = run_variants(
      {{"matrix", matrix_opts}, {"fused+relabel+bucket", full_opts}}, graph,
      cfg, batches, ids, epochs);
  const VariantResult& matrix = fm_results[0];
  const VariantResult& fused_full = fm_results[1];

  const std::vector<VariantResult> loc_results =
      run_variants({{"fused", direct_opts},
                    {"fused+relabel", relabel_opts},
                    {"fused+relabel+bucket", full_opts}},
                   graph, cfg, locality_batches, ids, locality_epochs);
  const VariantResult& direct = loc_results[0];
  const VariantResult& relabeled = loc_results[1];
  const VariantResult& full = loc_results[2];

  std::printf("Fused vs matrix (%d epochs x %d batches x %lld roots, walk "
              "length %lld):\n",
              epochs, num_batches, static_cast<long long>(roots_per_batch),
              static_cast<long long>(cfg.walk_length));
  for (const VariantResult* r : {&matrix, &fused_full}) {
    std::printf("  %-22s %12.3e edges/s  (%llu steps in %.4fs)\n",
                r->name.c_str(), r->edges_per_s(),
                static_cast<unsigned long long>(r->steps), r->walk_s);
  }
  std::printf("Locality, fused variants (%d epochs x %d batches x %lld "
              "roots):\n",
              locality_epochs, num_batches,
              static_cast<long long>(locality_roots_per_batch));
  for (const VariantResult* r : {&direct, &relabeled, &full}) {
    std::printf("  %-22s %12.3e edges/s  (%llu steps in %.4fs)\n",
                r->name.c_str(), r->edges_per_s(),
                static_cast<unsigned long long>(r->steps), r->walk_s);
  }
  const double fused_vs_matrix =
      fused_full.edges_per_s() / matrix.edges_per_s();
  const double relabel_vs_direct =
      relabeled.edges_per_s() / direct.edges_per_s();
  const double locality_vs_direct = full.edges_per_s() / direct.edges_per_s();
  std::printf("  fused vs matrix          %.2fx\n", fused_vs_matrix);
  std::printf("  relabel vs direct        %.2fx\n", relabel_vs_direct);
  std::printf("  relabel+bucket vs direct %.2fx\n", locality_vs_direct);
  std::printf("  bits %s\n", bit_identical ? "identical" : "DIFFER");
  if (compare) {
    std::printf("compare: fused/matrix %.2fx (target >= 3x), "
                "relabel+bucket/direct %.2fx (target > 1x)\n",
                fused_vs_matrix, locality_vs_direct);
  }

  if (!json_path.empty()) {
    bench::JsonWriter json(json_path, /*append=*/true);
    if (!json.ok()) {
      std::fprintf(stderr, "micro_walk: cannot open %s\n", json_path.c_str());
      return 1;
    }
    const std::string bench_id =
        std::string("micro_walk/edges_per_s") + (smoke ? " (smoke)" : "");
    for (const VariantResult* r : {&matrix, &fused_full}) {
      json.row({{"bench", bench_id},
                {"case", r->name},
                {"edges_per_s", r->edges_per_s()},
                {"walk_s", r->walk_s},
                {"steps", static_cast<double>(r->steps)},
                {"bit_identical", bit_identical ? "yes" : "no"}});
    }
    for (const VariantResult* r : {&direct, &relabeled, &full}) {
      json.row({{"bench", bench_id},
                {"case", "locality/" + r->name},
                {"edges_per_s", r->edges_per_s()},
                {"walk_s", r->walk_s},
                {"steps", static_cast<double>(r->steps)},
                {"bit_identical", bit_identical ? "yes" : "no"}});
    }
    json.row({{"bench", bench_id},
              {"case", "ratios"},
              {"fused_vs_matrix", fused_vs_matrix},
              {"relabel_vs_direct", relabel_vs_direct},
              {"locality_vs_direct", locality_vs_direct},
              {"bit_identical", bit_identical ? "yes" : "no"}});
    std::printf("JSON appended to %s\n", json_path.c_str());
  }

  if (smoke) {
    if (!bit_identical) {
      std::fprintf(stderr, "FAIL: fused outputs diverge from matrix path\n");
      return 1;
    }
    // The fused engine must never lose to the matrix path it replaces; the
    // >= 3x headline ratio is measured at full scale (--compare), where the
    // matrix path's per-round materialization costs dominate.
    if (fused_full.edges_per_s() < matrix.edges_per_s()) {
      std::fprintf(stderr, "FAIL: fused %.3e edges/s below matrix %.3e\n",
                   fused_full.edges_per_s(), matrix.edges_per_s());
      return 1;
    }
    std::printf("SMOKE OK: bit-identical, fused %.2fx matrix throughput\n",
                fused_vs_matrix);
  }
  return 0;
}

}  // namespace
}  // namespace dms

int main(int argc, char** argv) {
  bool smoke = false;
  bool compare = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    }
  }
  return dms::run(smoke, compare, json_path);
}
