// Figure 7 (top row): Graph Partitioned GraphSAGE — bulk sampling time
// broken into probability generation / sampling / extraction, and into
// computation vs communication, across p with the paper's per-p best c.
//
// Expected shapes (§8.2.1): probability generation (the 1.5D SpGEMM)
// dominates; communication scales when c grows and stalls when c is fixed;
// computation scales with p.
#include "bench_util.hpp"
#include "core/minibatch.hpp"
#include "dist/sampler_factory.hpp"

using namespace dms;
using namespace dms::bench;

namespace {

struct Point {
  int p, c;
};

}  // namespace

int main() {
  print_header("Figure 7 (top): Graph Partitioned GraphSAGE sampling time (s, simulated)");
  const LinkParams links = perlmutter_links();

  const std::map<std::string, std::vector<Point>> points = {
      {"protein", {{16, 2}, {32, 4}, {64, 4}}},
      {"papers", {{16, 1}, {32, 2}, {64, 4}}},
  };

  for (const auto& [name, pts] : points) {
    const Dataset& ds = dataset(name);
    const auto batches =
        make_epoch_batches(ds.train_idx, arch().sage_batch, /*epoch_seed=*/1);
    std::vector<index_t> ids(batches.size());
    for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<index_t>(i);

    std::printf("\n--- %s (%zu minibatches, all sampled in one bulk) ---\n",
                ds.name.c_str(), batches.size());
    print_row({"p", "c", "total", "probability", "sampling", "extraction",
               "comp", "comm"},
              12);
    for (const Point& pt : pts) {
      Cluster cluster(ProcessGrid(pt.p, pt.c), CostModel(links));
      SamplerContext ctx;
      ctx.config = SamplerConfig{arch().sage_fanout, 1};
      ctx.grid = &cluster.grid();
      const auto sampler =
          make_sampler(SamplerKind::kGraphSage, DistMode::kPartitioned, ds.graph, ctx);
      as_partitioned(*sampler).sample_bulk(cluster, batches, ids, /*epoch_seed=*/7);
      print_row({std::to_string(pt.p), std::to_string(pt.c),
                 fmt(cluster.total_time()),
                 fmt(cluster.phase_time(kPhaseProbability)),
                 fmt(cluster.phase_time(kPhaseSampling)),
                 fmt(cluster.phase_time(kPhaseExtraction)),
                 fmt(cluster.total_compute()), fmt(cluster.total_comm())},
                12);
    }
  }
  std::printf("\nPaper reference: Protein 1.75x speedup 16->64, Papers 1.43x; time\n"
              "dominated by the sparsity-aware 1.5D SpGEMM probability step.\n");
  return 0;
}
