// Figure 4: per-epoch time of the Graph Replicated pipeline (GraphSAGE,
// Table 4 architecture) vs the Quiver baseline, broken into sampling /
// feature fetching / propagation, across GPU counts. Per-p (c, k) choices
// mirror the paper's annotations (memory-capped at low p).
//
// "sync" is the bulk-synchronous pipeline (overlap off, no cache); "ours"
// is the staged executor with prefetch overlap plus an LRU feature cache of
// n/8 rows per rank — the before/after of DESIGN.md §6. Losses are
// bit-identical between the two (overlap changes only the clock, the cache
// only the bytes moved); `gain` is the simulated epoch-time reduction.
//
// Expected shapes (§8.1.1-§8.1.2): our pipeline scales with p and beats
// Quiver at large p with the largest gap on the densest graph (protein);
// Quiver stalls on dense graphs because feature-fetch volume grows with p;
// our sampling step scales near-linearly (it is communication-free).
#include <string>
#include <vector>

#include "baselines/quiver_sim.hpp"
#include "bench_util.hpp"
#include "common/timer.hpp"

using namespace dms;
using namespace dms::bench;

int main(int argc, char** argv) {
  // --json=PATH writes the BENCH_fig4.json trajectory rows (simulated
  // seconds AND host wall-clock per epoch); --smoke runs one dataset's
  // first two points (the CI artifact job).
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }
  JsonWriter json(json_path.empty() ? "/dev/null" : json_path);
  if (!json_path.empty() && !json.ok()) {
    std::fprintf(stderr, "FAIL: cannot open JSON output path %s\n",
                 json_path.c_str());
    return 1;
  }

  print_header("Figure 4: Graph Replicated pipeline vs Quiver (per-epoch seconds, simulated)");
  const LinkParams links = perlmutter_links();

  const std::vector<std::string> datasets =
      smoke ? std::vector<std::string>{"products"}
            : std::vector<std::string>{"products", "papers", "protein"};
  for (const std::string& name : datasets) {
    const Dataset& ds = dataset(name);
    const index_t nbatches = ds.num_batches(arch().sage_batch);
    std::printf("\n--- %s (%lld minibatches/epoch) ---\n", ds.name.c_str(),
                static_cast<long long>(nbatches));
    print_row({"p", "c", "k", "quiver", "sync", "ours", "sampling", "fetch",
               "prop", "saved", "hit%", "speedup", "gain%"},
              9);

    double first_total = 0.0;
    int first_p = 0;
    double first_sampling = 0.0;
    double last_total = 0.0, last_sampling = 0.0;
    int last_p = 0;
    double gain_sum = 0.0;
    double wall_sum_ms = 0.0;
    int points = 0;

    std::vector<RunPoint> run_points = fig4_points(name);
    if (smoke && run_points.size() > 2) run_points.resize(2);
    for (const RunPoint& pt : run_points) {
      // Quiver baseline (GPU-only sampling, fully replicated topology).
      // The paper could not run Quiver on Papers at 128 GPUs (preprocessing
      // OOM) — mirror that gap.
      double quiver_total = -1.0;
      if (!(name == "papers" && pt.p == 128)) {
        Cluster qc(ProcessGrid(pt.p, 1), CostModel(links));
        QuiverConfig qcfg;
        qcfg.batch_size = arch().sage_batch;
        qcfg.fanouts = arch().sage_fanout;
        qcfg.hidden = arch().hidden;
        QuiverSim quiver(qc, ds, qcfg);
        quiver_total = quiver.run_epoch(0).total;
      }

      PipelineConfig cfg;
      cfg.sampler = SamplerKind::kGraphSage;
      cfg.mode = DistMode::kReplicated;
      cfg.batch_size = arch().sage_batch;
      cfg.fanouts = arch().sage_fanout;
      cfg.hidden = arch().hidden;
      cfg.bulk_k = pt.k_fraction >= 1.0
                       ? 0
                       : std::max<index_t>(pt.p, static_cast<index_t>(
                                                     pt.k_fraction * nbatches));

      // Bulk-synchronous baseline: strict sample → fetch → propagate.
      cfg.overlap = false;
      Cluster c_sync(ProcessGrid(pt.p, pt.c), CostModel(links));
      Pipeline sync(c_sync, ds, cfg);
      Timer wall_sync;
      const EpochStats b = sync.run_epoch(0);
      const double wall_sync_ms = wall_sync.seconds() * 1e3;

      // Staged executor: prefetch overlap + LRU feature cache.
      cfg.overlap = true;
      cfg.feature_cache = {CachePolicy::kLru, ds.num_vertices() / 8};
      Cluster cluster(ProcessGrid(pt.p, pt.c), CostModel(links));
      Pipeline pipe(cluster, ds, cfg);
      Timer wall_ours;
      const EpochStats s = pipe.run_epoch(0);
      const double wall_ours_ms = wall_ours.seconds() * 1e3;

      const double hit_pct = cache_hit_pct(s.cache_hits, s.cache_misses);
      const double gain = b.total > 0.0 ? 100.0 * (1.0 - s.total / b.total) : 0.0;
      gain_sum += gain;
      wall_sum_ms += wall_ours_ms;
      ++points;

      const std::string kstr =
          pt.k_fraction >= 1.0 ? "all" : std::to_string(cfg.bulk_k);
      print_row({std::to_string(pt.p), std::to_string(pt.c), kstr,
                 quiver_total < 0 ? "OOM" : fmt(quiver_total), fmt(b.total),
                 fmt(s.total), fmt(s.sampling), fmt(s.fetch), fmt(s.propagation),
                 fmt(s.overlap_saved),
                 fmt(hit_pct, 1),
                 quiver_total < 0 ? "-" : fmt(quiver_total / s.total, 2) + "x",
                 fmt(gain, 1)},
                9);
      json.row({{"bench", "fig4_replicated_pipeline"},
                {"case", name + "_p" + std::to_string(pt.p)},
                {"dataset", name},
                {"p", pt.p},
                {"c", pt.c},
                {"k", kstr},
                {"quiver_sim_s", quiver_total},
                {"sync_sim_s", b.total},
                {"ours_sim_s", s.total},
                {"sampling_sim_s", s.sampling},
                {"fetch_sim_s", s.fetch},
                {"prop_sim_s", s.propagation},
                {"overlap_saved_sim_s", s.overlap_saved},
                {"cache_hit_pct", hit_pct},
                {"gain_pct", gain},
                {"wall_sync_ms", wall_sync_ms},
                {"wall_ours_ms", wall_ours_ms}});

      if (first_p == 0) {
        first_p = pt.p;
        first_total = s.total;
        first_sampling = s.sampling;
      }
      last_p = pt.p;
      last_total = s.total;
      last_sampling = s.sampling;
    }

    const double ratio = static_cast<double>(last_p) / first_p;
    std::printf("scaling %d->%d ranks: total %.2fx (parallel efficiency %.0f%%), "
                "sampling %.2fx; mean staged-executor gain %.1f%% over sync; "
                "mean host wall-clock %.0f ms/epoch\n",
                first_p, last_p, first_total / last_total,
                100.0 * first_total / last_total / ratio,
                first_sampling / last_sampling, gain_sum / points,
                wall_sum_ms / points);
  }
  if (!json_path.empty()) std::printf("\nJSON written to %s\n", json_path.c_str());
  std::printf("\nPaper reference points: 2.5x over Quiver on Products@16, 3.4x on\n"
              "Papers@64, 8.5x on Protein@128; sampling ~15.8x from 4->64 ranks.\n");
  return 0;
}
