// Online serving subsystem (DESIGN.md §10): clock-driven coalescing policy,
// the serving identity (a coalesced request's prediction is bit-identical to
// the same request served alone, across every sampler kind and execution
// mode), steady-state workspace stability after warmup, and the per-request
// latency ledger.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "nn/model.hpp"
#include "plan/optimize.hpp"
#include "serve/engine.hpp"
#include "serve/health.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

Graph serve_graph() { return generate_erdos_renyi(120, 8.0, 41); }

DenseF random_features(index_t rows, index_t dim, std::uint64_t seed) {
  DenseF f(rows, dim);
  Pcg32 rng(seed, 0xfea7);
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < dim; ++j) {
      f(i, j) = static_cast<float>(rng.uniform() - 0.5);
    }
  }
  return f;
}

ModelConfig serve_model_config() {
  ModelConfig mc;
  mc.in_dim = 8;
  mc.hidden = 16;
  mc.num_classes = 4;
  mc.num_layers = 2;
  mc.seed = 11;
  return mc;
}

ServeEngineConfig engine_config(SamplerKind kind, DistMode mode) {
  ServeEngineConfig cfg;
  cfg.sampler = kind;
  cfg.mode = mode;
  cfg.fanouts = {4, 3};
  return cfg;
}

ServeRequest make_request(index_t id, std::vector<index_t> seeds,
                          double arrival) {
  ServeRequest r;
  r.id = id;
  r.seeds = std::move(seeds);
  r.arrival = arrival;
  return r;
}

/// Exact (bit-level) equality — the serving identity is not approximate.
void expect_bit_identical(const DenseF& a, const DenseF& b,
                          const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      ASSERT_EQ(a(i, j), b(i, j)) << what << " at (" << i << ", " << j << ")";
    }
  }
}

// ---------------------------------------------------------------------------
// Coalescing policy.

TEST(RequestQueue, FifoAndMonotonicArrivals) {
  RequestQueue q;
  q.push(make_request(7, {0}, 1.0));
  q.push(make_request(3, {1}, 1.0));  // equal arrivals are fine
  q.push(make_request(9, {2}, 2.5));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.front().id, 7);
  EXPECT_EQ(q.at(2).id, 9);
  EXPECT_THROW(q.push(make_request(1, {3}, 2.0)), DmsError);  // clock ran back
  EXPECT_EQ(q.pop_front().id, 7);
  EXPECT_EQ(q.pop_front().id, 3);
  EXPECT_EQ(q.pop_front().id, 9);
  EXPECT_TRUE(q.empty());
  EXPECT_THROW(q.pop_front(), DmsError);
}

TEST(Coalescer, EmptyWindowServesOnArrival) {
  Coalescer c({/*window=*/0.0, /*max_requests=*/4});
  c.push(make_request(0, {5}, 1.0));
  EXPECT_DOUBLE_EQ(c.ready_at(), 1.0);  // no deadline slack: ready immediately
  const CoalescedBatch b = c.pop(1.0);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_DOUBLE_EQ(b.formed_at, 1.0);
  EXPECT_TRUE(c.empty());
  // Simultaneous arrivals still share a bulk even with window = 0.
  c.push(make_request(1, {6}, 2.0));
  c.push(make_request(2, {7}, 2.0));
  EXPECT_EQ(c.pop(2.0).size(), 2u);
}

TEST(Coalescer, SingleRequestWaitsForItsDeadline) {
  Coalescer c({/*window=*/0.5, /*max_requests=*/8});
  c.push(make_request(4, {9}, 2.0));
  EXPECT_DOUBLE_EQ(c.ready_at(), 2.5);
  EXPECT_THROW(c.pop(2.2), DmsError);  // deadline not reached, cap not met
  const CoalescedBatch b = c.pop(2.5);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.requests[0].id, 4);
  EXPECT_DOUBLE_EQ(b.formed_at, 2.5);
}

TEST(Coalescer, CapOverflowSplitsIntoTwoBatches) {
  Coalescer c({/*window=*/10.0, /*max_requests=*/2});
  c.push(make_request(0, {1}, 0.0));
  c.push(make_request(1, {2}, 0.1));
  c.push(make_request(2, {3}, 0.2));
  // Cap met at the second arrival; the batch closes there, not at the
  // deadline.
  EXPECT_DOUBLE_EQ(c.ready_at(), 0.1);
  const CoalescedBatch first = c.pop(0.1);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first.requests[0].id, 0);
  EXPECT_EQ(first.requests[1].id, 1);
  // The overflow request runs in a second bulk round on its own deadline.
  EXPECT_EQ(c.pending(), 1u);
  EXPECT_DOUBLE_EQ(c.ready_at(), 10.2);
  const CoalescedBatch second = c.pop(10.2);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second.requests[0].id, 2);
}

TEST(Coalescer, FutureArrivalsStayQueued) {
  // pop(now) must not reach past the clock even when the cap allows it.
  Coalescer c({/*window=*/0.0, /*max_requests=*/4});
  c.push(make_request(0, {1}, 0.0));
  c.push(make_request(1, {2}, 5.0));
  EXPECT_DOUBLE_EQ(c.ready_at(), 0.0);
  const CoalescedBatch b = c.pop(0.0);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.requests[0].id, 0);
  EXPECT_EQ(c.pending(), 1u);
}

TEST(Coalescer, ServerBusyDrainAdmitsFifoPrefixUpToCap) {
  // Regression for the server-busy drain: when the clock has run far past
  // several deadlines (the server was busy with a previous bulk), pop(now)
  // must admit exactly the first max_requests FIFO arrivals with
  // arrival <= now — not every overdue request, and never out of order.
  const auto fill = [](Coalescer& c) {
    for (index_t i = 0; i < 5; ++i) {
      c.push(make_request(i, {i}, 0.1 * static_cast<double>(i)));
    }
  };
  Coalescer c({/*window=*/0.05, /*max_requests=*/3});
  fill(c);
  const CoalescedBatch first = c.pop(10.0);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first.requests[0].id, 0);
  EXPECT_EQ(first.requests[1].id, 1);
  EXPECT_EQ(first.requests[2].id, 2);
  EXPECT_DOUBLE_EQ(first.formed_at, 10.0);
  EXPECT_EQ(c.pending(), 2u);
  const CoalescedBatch second = c.pop(10.0);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second.requests[0].id, 3);
  EXPECT_EQ(second.requests[1].id, 4);
  EXPECT_EQ(c.pending(), 0u);
  // pop is a pure function of (queue, clock): replaying the same arrivals
  // against the same clock reproduces the same batch composition.
  Coalescer replay({/*window=*/0.05, /*max_requests=*/3});
  fill(replay);
  const CoalescedBatch again = replay.pop(10.0);
  ASSERT_EQ(again.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(again.requests[i].id, first.requests[i].id);
  }
  // A request still in the future stays queued even under a stale clock.
  replay.push(make_request(9, {1}, 20.0));
  const CoalescedBatch drained = replay.pop(10.0);
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(replay.pending(), 1u);
}

TEST(Coalescer, RejectsDegenerateConfigs) {
  EXPECT_THROW(Coalescer({0.0, 0}), DmsError);
  EXPECT_THROW(Coalescer({-1.0, 1}), DmsError);
  Coalescer ok({0.0, 1});
  EXPECT_THROW(ok.ready_at(), DmsError);  // empty queue has no next batch
  EXPECT_THROW(ok.pop(0.0), DmsError);
}

TEST(Coalescer, DuplicateTimestampsDrainInFifoOrder) {
  // Many requests arriving at the same instant must batch in push order,
  // split cleanly at the cap, and never starve the tail.
  Coalescer c({/*window=*/0.2, /*max_requests=*/3});
  for (index_t i = 0; i < 7; ++i) c.push(make_request(i, {i}, 1.0));
  EXPECT_DOUBLE_EQ(c.ready_at(), 1.0);  // cap met by the 3rd identical stamp
  index_t next = 0;
  while (!c.empty()) {
    // The final partial batch (1 request < cap) waits out its window.
    const CoalescedBatch b = c.pop(std::max(1.0, c.ready_at()));
    ASSERT_FALSE(b.empty());
    for (const ServeRequest& r : b.requests) EXPECT_EQ(r.id, next++);
  }
  EXPECT_EQ(next, 7);  // every request served exactly once
}

TEST(Coalescer, ZeroWidthWindowWithCapOnePreservesFifoWithoutStarvation) {
  // The doubly-degenerate config: serve-on-arrival, one request per bulk.
  Coalescer c({/*window=*/0.0, /*max_requests=*/1});
  for (index_t i = 0; i < 4; ++i) {
    c.push(make_request(i, {i}, 0.5));  // identical stamps
  }
  c.push(make_request(4, {4}, 0.7));
  for (index_t expect = 0; expect < 5; ++expect) {
    ASSERT_FALSE(c.empty());
    const CoalescedBatch b = c.pop(std::max(0.7, c.ready_at()));
    ASSERT_EQ(b.size(), 1u) << "cap=1 must never coalesce";
    EXPECT_EQ(b.requests[0].id, expect);
  }
  EXPECT_TRUE(c.empty());
}

TEST(Coalescer, CapOneReadyAtIsTheFrontArrivalPlusWindow) {
  Coalescer c({/*window=*/0.3, /*max_requests=*/1});
  c.push(make_request(0, {1}, 2.0));
  c.push(make_request(1, {2}, 2.1));
  // Cap 1 is met by the front request itself: ready the instant it arrived.
  EXPECT_DOUBLE_EQ(c.ready_at(), 2.0);
  EXPECT_EQ(c.pop(2.0).requests[0].id, 0);
  EXPECT_DOUBLE_EQ(c.ready_at(), 2.1);
}

// ---------------------------------------------------------------------------
// Graceful degradation: bounded admission, deadline shedding, health machine.

TEST(Coalescer, TryPushBoundsTheQueue) {
  CoalescerConfig cfg;
  cfg.window = 1.0;
  cfg.max_requests = 4;
  cfg.max_pending = 2;
  Coalescer c(cfg);
  EXPECT_TRUE(c.try_push(make_request(0, {1}, 0.0)));
  EXPECT_TRUE(c.try_push(make_request(1, {2}, 0.1)));
  EXPECT_FALSE(c.try_push(make_request(2, {3}, 0.2)));  // full
  EXPECT_EQ(c.pending(), 2u);
  c.pop(1.0);
  EXPECT_TRUE(c.try_push(make_request(3, {4}, 1.5)));  // drained -> admits
  // push() ignores the bound (legacy unguarded path).
  Coalescer unguarded(cfg);
  for (index_t i = 0; i < 5; ++i) unguarded.push(make_request(i, {i}, 0.0));
  EXPECT_EQ(unguarded.pending(), 5u);
}

TEST(Coalescer, ShedOverdueDropsExpiredRequestsAtFormation) {
  CoalescerConfig cfg;
  cfg.window = 0.1;
  cfg.max_requests = 4;
  cfg.shed_overdue = true;
  Coalescer c(cfg);
  ServeRequest dead = make_request(0, {1}, 0.0);
  dead.deadline = 1.0;  // will be long gone by the time the server frees
  ServeRequest live = make_request(1, {2}, 0.05);
  live.deadline = 99.0;
  ServeRequest no_deadline = make_request(2, {3}, 0.06);
  c.push(dead);
  c.push(live);
  c.push(no_deadline);
  const CoalescedBatch b = c.pop(5.0);  // server was busy for 5 s
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.requests[0].id, 1);
  EXPECT_EQ(b.requests[1].id, 2);  // deadline-less requests are never shed
  ASSERT_EQ(b.shed.size(), 1u);
  EXPECT_EQ(b.shed[0].request_id, 0);
  EXPECT_EQ(b.shed[0].reason, ShedReason::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(b.shed[0].shed_at, 5.0);

  // Without the flag the same sequence serves everything (legacy behavior).
  cfg.shed_overdue = false;
  Coalescer keep(cfg);
  keep.push(dead);
  keep.push(live);
  keep.push(no_deadline);
  const CoalescedBatch all = keep.pop(5.0);
  EXPECT_EQ(all.size(), 3u);
  EXPECT_TRUE(all.shed.empty());
}

TEST(Coalescer, ShedRequestsDoNotConsumeCapSlots) {
  CoalescerConfig cfg;
  cfg.window = 0.0;
  cfg.max_requests = 2;
  cfg.shed_overdue = true;
  Coalescer c(cfg);
  for (index_t i = 0; i < 2; ++i) {
    ServeRequest r = make_request(i, {i}, 0.0);
    r.deadline = 0.5;
    c.push(r);
  }
  c.push(make_request(2, {2}, 0.1));
  c.push(make_request(3, {3}, 0.2));
  const CoalescedBatch b = c.pop(2.0);
  // Both overdue requests shed; the cap still admits two servable ones.
  ASSERT_EQ(b.shed.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.requests[0].id, 2);
  EXPECT_EQ(b.requests[1].id, 3);
}

TEST(ServeStats, ShedAccountingByReason) {
  ServeStats stats;
  stats.record_shed({7, 1.0, 1.0, ShedReason::kQueueFull});
  stats.record_shed({8, 1.0, 2.5, ShedReason::kDeadlineExceeded});
  stats.record_shed({9, 2.0, 3.0, ShedReason::kDeadlineExceeded});
  EXPECT_EQ(stats.num_shed(), 3u);
  EXPECT_EQ(stats.num_shed(ShedReason::kQueueFull), 1u);
  EXPECT_EQ(stats.num_shed(ShedReason::kDeadlineExceeded), 2u);
  EXPECT_THROW(stats.record_shed({1, 5.0, 4.0, ShedReason::kQueueFull}),
               DmsError);  // shed before arrival
  stats.reset();
  EXPECT_EQ(stats.num_shed(), 0u);
}

TEST(HealthMonitor, WalksTheStateMachineWithHysteresis) {
  HealthConfig cfg;
  cfg.queue_capacity = 10;
  cfg.degraded_enter = 0.5;
  cfg.degraded_exit = 0.2;
  cfg.shed_enter = 0.9;
  cfg.shed_exit = 0.5;
  HealthMonitor m(cfg);
  EXPECT_EQ(m.state(), HealthState::kHealthy);
  EXPECT_TRUE(m.admit_arrivals());
  EXPECT_FALSE(m.shed_overdue());

  EXPECT_EQ(m.observe(4), HealthState::kHealthy);   // 0.4 < enter
  EXPECT_EQ(m.observe(5), HealthState::kDegraded);  // 0.5 enters
  EXPECT_TRUE(m.shed_overdue());
  EXPECT_TRUE(m.admit_arrivals());
  EXPECT_EQ(m.observe(4), HealthState::kDegraded);  // hysteresis: 0.2 < 0.4
  EXPECT_EQ(m.observe(9), HealthState::kShedding);
  EXPECT_FALSE(m.admit_arrivals());
  EXPECT_EQ(m.observe(6), HealthState::kShedding);  // 0.6 > shed_exit
  EXPECT_EQ(m.observe(5), HealthState::kDegraded);  // steps down one level
  EXPECT_EQ(m.observe(1), HealthState::kHealthy);
  EXPECT_FALSE(m.shed_overdue());
  EXPECT_EQ(m.transitions(), 4u);
  EXPECT_STREQ(to_string(m.state()), "healthy");
}

TEST(HealthMonitor, EmptyQueueFromSheddingPassesThroughDegraded) {
  HealthConfig cfg;
  cfg.queue_capacity = 4;
  HealthMonitor m(cfg);
  m.observe(4);  // 1.0 -> shedding directly from healthy
  EXPECT_EQ(m.state(), HealthState::kShedding);
  EXPECT_EQ(m.observe(0), HealthState::kDegraded);  // one level per tick
  EXPECT_EQ(m.observe(0), HealthState::kHealthy);
}

TEST(HealthMonitor, RejectsInvertedThresholds) {
  HealthConfig bad;
  bad.degraded_exit = bad.degraded_enter;  // exit must be strictly below
  EXPECT_THROW(HealthMonitor{bad}, DmsError);
  bad = {};
  bad.queue_capacity = 0;
  EXPECT_THROW(HealthMonitor{bad}, DmsError);
  bad = {};
  bad.degraded_enter = 0.95;  // above shed_enter
  EXPECT_THROW(HealthMonitor{bad}, DmsError);
}

TEST(HealthMonitor, GovernedOverloadKeepsAdmittedQueueWaitBounded) {
  // A miniature closed-form overload: arrivals at twice the service rate.
  // Ungoverned, the backlog (and thus admitted queue wait) grows linearly
  // with the run; governed by the monitor + bounded queue + deadline
  // shedding, admitted requests wait at most roughly cap * service time.
  // Each bulk serves at most 2 requests in 0.2 s (10 requests/s of
  // capacity) against arrivals every 0.05 s (20 requests/s): 2x overload.
  const double service = 0.2;
  const double interval = 0.05;
  const index_t n = 200;

  ServeStats governed, ungoverned;
  {
    // Ungoverned: unbounded queue, everything served.
    CoalescerConfig ccfg;
    ccfg.window = 0.02;
    ccfg.max_requests = 2;
    Coalescer coal(ccfg);
    double server_free = 0.0;
    for (index_t i = 0; i < n; ++i) {
      coal.push(make_request(i, {i % 100}, static_cast<double>(i) * interval));
    }
    while (!coal.empty()) {
      const double start = std::max(coal.ready_at(), server_free);
      const CoalescedBatch b = coal.pop(start);
      ASSERT_FALSE(b.empty());
      BatchRecord br;
      br.requests = b.size();
      br.inference = service;
      std::vector<RequestRecord> rr;
      for (const ServeRequest& r : b.requests) {
        rr.push_back({r.id, b.size(), start - r.arrival, service});
      }
      ungoverned.record(br, rr);
      server_free = start + service;
    }
  }
  {
    // Governed: bounded queue + health monitor + deadline shedding.
    CoalescerConfig ccfg;
    ccfg.window = 0.02;
    ccfg.max_requests = 2;
    ccfg.max_pending = 8;
    ccfg.shed_overdue = true;
    Coalescer coal(ccfg);
    HealthConfig hcfg;
    hcfg.queue_capacity = 8;
    HealthMonitor mon(hcfg);
    double server_free = 0.0;
    index_t next_arrival = 0;
    while (next_arrival < n || !coal.empty()) {
      // The next batch cannot start before the server frees, so every
      // arrival due by then reaches admission control first.
      const double now =
          coal.empty() ? std::max(static_cast<double>(next_arrival) * interval,
                                  server_free)
                       : std::max(coal.ready_at(), server_free);
      while (next_arrival < n &&
             static_cast<double>(next_arrival) * interval <= now) {
        ServeRequest r = make_request(next_arrival, {next_arrival % 100},
                                      static_cast<double>(next_arrival) * interval);
        r.deadline = r.arrival + 0.5;
        ++next_arrival;
        mon.observe(coal.pending());
        if (!mon.admit_arrivals() || !coal.try_push(r)) {
          governed.record_shed(
              {r.id, r.arrival, r.arrival, ShedReason::kQueueFull});
        }
      }
      if (coal.empty()) continue;
      const double start = std::max(coal.ready_at(), server_free);
      const CoalescedBatch b = coal.pop(start);
      for (const ShedRecord& s : b.shed) governed.record_shed(s);
      mon.observe(coal.pending());
      if (b.empty()) continue;
      BatchRecord br;
      br.requests = b.size();
      br.inference = service;
      std::vector<RequestRecord> rr;
      for (const ServeRequest& r : b.requests) {
        rr.push_back({r.id, b.size(), start - r.arrival, service});
      }
      governed.record(br, rr);
      server_free = start + service;
    }
    EXPECT_GT(mon.transitions(), 0u);
  }

  // Under 2x overload the governed server sheds real load...
  EXPECT_GT(governed.num_shed(), 0u);
  EXPECT_EQ(governed.num_requests() + governed.num_shed(),
            static_cast<std::size_t>(n));
  // ...and what it admits waits a bounded time, far below the ungoverned
  // tail (which grows linearly with the run length).
  EXPECT_LT(governed.queue_wait_percentile(99.0),
            ungoverned.queue_wait_percentile(99.0) / 2.0);
}

// ---------------------------------------------------------------------------
// Latency accounting.

TEST(ServeStats, NearestRankPercentile) {
  std::vector<double> sample;
  for (int i = 10; i >= 1; --i) sample.push_back(i);  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(sample, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 95.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 99.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({3.5}, 99.0), 3.5);
  EXPECT_THROW(percentile({1.0}, -1.0), DmsError);
  EXPECT_THROW(percentile({1.0}, 100.5), DmsError);
}

TEST(ServeStats, EmptySampleReportsZeroInsteadOfThrowing) {
  // Regression: summary paths run before any request completes (or right
  // after reset_stats) used to crash on "percentile: empty sample".
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  ServeStats s;
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
  EXPECT_DOUBLE_EQ(s.p99(), 0.0);
  EXPECT_DOUBLE_EQ(s.queue_wait_percentile(95.0), 0.0);
  BatchRecord b;
  b.requests = 1;
  b.sampling = 0.1;
  s.record(b, {RequestRecord{0, 1, 0.0, b.service()}});
  EXPECT_GT(s.p50(), 0.0);
  s.reset();  // reset-then-report is the sequence that crashed
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
}

TEST(ServeStats, AggregatesBatchesAndRequests) {
  ServeStats s;
  BatchRecord b1;
  b1.requests = 2;
  b1.sampling = 0.10;
  b1.fetch = 0.02;
  b1.inference = 0.03;
  RequestRecord r1{/*id=*/0, /*batch=*/2, /*wait=*/0.4, b1.service()};
  RequestRecord r2{/*id=*/1, /*batch=*/2, /*wait=*/0.1, b1.service()};
  s.record(b1, {r1, r2});
  BatchRecord b2;
  b2.requests = 1;
  b2.sampling = 0.20;
  RequestRecord r3{/*id=*/2, /*batch=*/1, /*wait=*/0.0, b2.service()};
  s.record(b2, {r3});
  EXPECT_EQ(s.num_batches(), 2u);
  EXPECT_EQ(s.num_requests(), 3u);
  EXPECT_DOUBLE_EQ(s.sampling_seconds(), 0.30);
  EXPECT_DOUBLE_EQ(s.fetch_seconds(), 0.02);
  EXPECT_DOUBLE_EQ(s.inference_seconds(), 0.03);
  EXPECT_DOUBLE_EQ(s.queue_wait_seconds(), 0.5);
  EXPECT_DOUBLE_EQ(s.service_seconds(), 0.35);
  EXPECT_DOUBLE_EQ(s.mean_batch_size(), 1.5);
  // Totals: r1 = 0.55, r2 = 0.25, r3 = 0.20 → p50 is the 2nd smallest.
  EXPECT_DOUBLE_EQ(s.latency_percentile(50.0), 0.25);
  EXPECT_DOUBLE_EQ(s.queue_wait_percentile(100.0), 0.4);
  // A batch whose request-record count disagrees is a ledger bug.
  EXPECT_THROW(s.record(b1, {r1}), DmsError);
  s.reset();
  EXPECT_EQ(s.num_requests(), 0u);
  EXPECT_DOUBLE_EQ(s.service_seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// The serving identity: coalesced == individual, bit for bit, for every
// sampler kind × execution mode. Request randomness derives from the request
// id exactly as training batch randomness derives from the global batch id,
// so batching composition cannot change any request's prediction.

TEST(ServeEngine, CoalescedPredictionsMatchIndividualAcrossKindsAndModes) {
  const Graph g = serve_graph();
  const ProcessGrid grid(4, 2);
  const DenseF feats = random_features(g.num_vertices(), 8, 77);
  FeatureStore store(grid, feats);
  const SageModel model(serve_model_config());

  const std::vector<ServeRequest> requests = {
      make_request(100, {3}, 0.0),                  // singleton seed
      make_request(101, {10, 11, 12, 13, 14}, 0.2), // mid-size
      make_request(102, {55, 99}, 0.4),             // heterogeneous sizes mix
  };
  for (const SamplerKind kind :
       {SamplerKind::kGraphSage, SamplerKind::kLadies, SamplerKind::kFastGcn,
        SamplerKind::kLabor}) {
    for (const DistMode mode :
         {DistMode::kReplicated, DistMode::kPartitioned}) {
      ServeEngine engine(g, store, model, engine_config(kind, mode), &grid);
      CoalescedBatch batch;
      batch.requests = requests;
      batch.formed_at = 0.4;
      const ServeBatchResult coalesced = engine.serve(batch);
      ASSERT_EQ(coalesced.logits.size(), requests.size());
      for (std::size_t i = 0; i < requests.size(); ++i) {
        ASSERT_EQ(coalesced.logits[i].rows(),
                  static_cast<index_t>(requests[i].seeds.size()));
        const DenseF alone = engine.serve_one(requests[i]);
        expect_bit_identical(coalesced.logits[i], alone,
                             std::string(to_string(kind)) + "/" +
                                 to_string(mode) + " request " +
                                 std::to_string(requests[i].id));
      }
    }
  }
}

TEST(ServeEngine, BatchCompositionDoesNotChangePredictions) {
  // The same request served inside two differently-composed batches (and by
  // a freshly built engine) yields identical bits: batching is purely a
  // throughput decision.
  const Graph g = serve_graph();
  const ProcessGrid grid(4, 2);
  const DenseF feats = random_features(g.num_vertices(), 8, 78);
  FeatureStore store(grid, feats);
  const SageModel model(serve_model_config());
  const auto cfg = engine_config(SamplerKind::kLadies, DistMode::kReplicated);

  const ServeRequest probe = make_request(500, {7, 8, 9}, 1.0);
  ServeEngine a(g, store, model, cfg, &grid);
  CoalescedBatch mixed;
  mixed.requests = {make_request(1, {0, 1}, 0.9), probe,
                    make_request(2, {2}, 1.0)};
  mixed.formed_at = 1.0;
  const DenseF in_mixed = a.serve(mixed).logits[1];

  ServeEngine b(g, store, model, cfg, &grid);
  const DenseF alone = b.serve_one(probe);
  expect_bit_identical(in_mixed, alone, "probe across batch compositions");
}

// ---------------------------------------------------------------------------
// Steady-state workspace contract.

TEST(ServeEngine, TraceReplayIsAllocationFreeAfterFreeze) {
  const Graph g = serve_graph();
  const ProcessGrid grid(4, 2);
  const DenseF feats = random_features(g.num_vertices(), 8, 79);
  FeatureStore store(grid, feats);
  const SageModel model(serve_model_config());
  ServeEngine engine(
      g, store, model,
      engine_config(SamplerKind::kGraphSage, DistMode::kReplicated), &grid);

  // A short trace of coalesced batches (the replay-warmup pattern: run the
  // trace once unfrozen to reach the high-water mark, freeze, replay).
  std::vector<CoalescedBatch> trace;
  {
    CoalescedBatch b1;
    b1.requests = {make_request(0, {1, 2, 3}, 0.0), make_request(1, {40}, 0.0)};
    CoalescedBatch b2;
    b2.requests = {make_request(2, {5, 6, 7, 8, 9, 10}, 0.1)};
    b2.formed_at = 0.1;
    CoalescedBatch b3;
    b3.requests = {make_request(3, {60, 61}, 0.2),
                   make_request(4, {70, 71, 72}, 0.2)};
    b3.formed_at = 0.2;
    trace = {b1, b2, b3};
  }
  std::vector<std::vector<DenseF>> warm_logits;
  for (const CoalescedBatch& b : trace) {
    warm_logits.push_back(engine.serve(b).logits);
  }
  engine.freeze();
  EXPECT_TRUE(engine.warmed());
  const Workspace* ws = engine.workspace();
  ASSERT_NE(ws, nullptr);
  EXPECT_TRUE(ws->frozen());
  const std::size_t frozen_bytes = ws->frozen_bytes();
  EXPECT_EQ(ws->bytes_held(), frozen_bytes);

  // Replaying the identical trace makes bit-identical kernel calls, so the
  // frozen arena must not grow — and the predictions must not change.
  for (std::size_t t = 0; t < trace.size(); ++t) {
    const ServeBatchResult replay = engine.serve(trace[t]);
    ASSERT_EQ(replay.logits.size(), warm_logits[t].size());
    for (std::size_t i = 0; i < replay.logits.size(); ++i) {
      expect_bit_identical(replay.logits[i], warm_logits[t][i],
                           "replay batch " + std::to_string(t));
    }
    EXPECT_LE(ws->bytes_held(), frozen_bytes) << "batch " << t;
  }
}

TEST(ServeEngine, WarmupFreezesAndClearsStats) {
  const Graph g = serve_graph();
  const ProcessGrid grid(4, 2);
  const DenseF feats = random_features(g.num_vertices(), 8, 80);
  FeatureStore store(grid, feats);
  const SageModel model(serve_model_config());
  ServeEngine engine(
      g, store, model,
      engine_config(SamplerKind::kFastGcn, DistMode::kReplicated), &grid);
  EXPECT_FALSE(engine.warmed());
  engine.warmup({{0, 1, 2, 3}, {10, 11}});
  EXPECT_TRUE(engine.warmed());
  EXPECT_TRUE(engine.workspace()->frozen());
  // Warmup traffic never leaks into the serving ledger.
  EXPECT_EQ(engine.stats().num_requests(), 0u);
  engine.serve_one(make_request(0, {2, 3}, 0.0));
  EXPECT_EQ(engine.stats().num_requests(), 1u);
  EXPECT_EQ(engine.stats().num_batches(), 1u);
}

// ---------------------------------------------------------------------------
// Engine accounting and validation.

TEST(ServeEngine, RecordsQueueWaitFromArrivalToBatchFormation) {
  const Graph g = serve_graph();
  const ProcessGrid grid(4, 2);
  const DenseF feats = random_features(g.num_vertices(), 8, 81);
  FeatureStore store(grid, feats);
  const SageModel model(serve_model_config());
  ServeEngine engine(
      g, store, model,
      engine_config(SamplerKind::kGraphSage, DistMode::kReplicated), &grid);
  CoalescedBatch batch;
  batch.requests = {make_request(0, {1}, 1.0), make_request(1, {2}, 2.5)};
  batch.formed_at = 3.0;
  engine.serve(batch);
  const auto& recs = engine.stats().requests();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_NEAR(recs[0].queue_wait, 2.0, 1e-12);
  EXPECT_NEAR(recs[1].queue_wait, 0.5, 1e-12);
  EXPECT_EQ(recs[0].batch_size, 2u);
  // Requests in one bulk complete together: same service latency, and the
  // batch's phase times compose it exactly.
  EXPECT_DOUBLE_EQ(recs[0].service, recs[1].service);
  const auto& batches = engine.stats().batches();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_DOUBLE_EQ(batches[0].service(), recs[0].service);
  EXPECT_GT(engine.stats().p50(), 0.0);
  EXPECT_GE(engine.stats().p99(), engine.stats().p50());
}

TEST(ServeEngine, ReplicaEnginesShareOneOptimizedPlan) {
  // Serving replicas (and engines sharing a sampler shape with training)
  // reuse the process-wide optimized plan instead of re-running the
  // optimizer per engine — and the shared plan changes no prediction.
  PlanCache::global().clear();
  const Graph g = serve_graph();
  const ProcessGrid grid(4, 2);
  const DenseF feats = random_features(g.num_vertices(), 8, 77);
  FeatureStore store(grid, feats);
  const SageModel model(serve_model_config());
  const auto cfg = engine_config(SamplerKind::kLadies, DistMode::kReplicated);
  ServeEngine first(g, store, model, cfg);
  EXPECT_FALSE(first.plan_cache_hit());
  ServeEngine replica(g, store, model, cfg);
  EXPECT_TRUE(replica.plan_cache_hit());
  const ServeRequest req = make_request(42, {5, 17, 30}, 0.0);
  expect_bit_identical(first.serve_one(req), replica.serve_one(req),
                       "replica engines");
}

TEST(ServeEngine, RejectsMalformedBatchesAndConfigs) {
  const Graph g = serve_graph();
  const ProcessGrid grid(4, 2);
  const DenseF feats = random_features(g.num_vertices(), 8, 82);
  FeatureStore store(grid, feats);
  const SageModel model(serve_model_config());
  ServeEngine engine(
      g, store, model,
      engine_config(SamplerKind::kGraphSage, DistMode::kReplicated), &grid);
  EXPECT_THROW(engine.serve(CoalescedBatch{}), DmsError);
  CoalescedBatch no_seeds;
  no_seeds.requests = {make_request(0, {}, 0.0)};
  EXPECT_THROW(engine.serve(no_seeds), DmsError);
  CoalescedBatch time_travel;
  time_travel.requests = {make_request(0, {1}, 5.0)};
  time_travel.formed_at = 1.0;  // formed before its member arrived
  EXPECT_THROW(engine.serve(time_travel), DmsError);
  EXPECT_THROW(engine.warmup({}), DmsError);

  // Fanout depth must match the model; feature dim must match in_dim.
  auto cfg = engine_config(SamplerKind::kGraphSage, DistMode::kReplicated);
  cfg.fanouts = {4, 3, 2};
  EXPECT_THROW(ServeEngine(g, store, model, cfg, &grid), DmsError);
}

}  // namespace
}  // namespace dms
