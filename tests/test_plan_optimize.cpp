// The plan optimizer pass pipeline (DESIGN.md §12): fusion shapes per
// builtin plan, walk-plan shape preservation, dead-slot elimination,
// cost-model dispatch equivalence, optimized-vs-unoptimized bit identity in
// both execution modes, PlanCache sharing, and the --dump-plan diff surface.
#include <gtest/gtest.h>

#include "core/fastgcn.hpp"
#include "core/graphsage.hpp"
#include "core/ladies.hpp"
#include "graph/generators.hpp"
#include "plan/builders.hpp"
#include "plan/executor.hpp"
#include "plan/optimize.hpp"
#include "test_util.hpp"
#include "walk/walk_engine.hpp"

namespace dms {
namespace {

const SamplerConfig kConfig{{4, 3}, /*seed=*/9};
const std::vector<index_t> kIds = {0, 1, 2, 3, 4};

std::vector<std::vector<index_t>> small_batches(index_t n) {
  std::vector<std::vector<index_t>> batches(5);
  for (index_t i = 0; i < 5; ++i) {
    for (index_t j = 0; j < 8; ++j) {
      batches[static_cast<std::size_t>(i)].push_back((i * 37 + j * 11) % n);
    }
  }
  return batches;
}

bool samples_equal(const MinibatchSample& a, const MinibatchSample& b) {
  if (a.batch_vertices != b.batch_vertices) return false;
  if (a.layers.size() != b.layers.size()) return false;
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    if (!(a.layers[l].adj == b.layers[l].adj)) return false;
    if (a.layers[l].row_vertices != b.layers[l].row_vertices) return false;
    if (a.layers[l].col_vertices != b.layers[l].col_vertices) return false;
  }
  return true;
}

int count_kind(const SamplePlan& p, PlanOpKind kind) {
  int n = 0;
  for (const auto* ops : {&p.body, &p.epilogue}) {
    for (const PlanOp& op : *ops) n += op.kind == kind ? 1 : 0;
  }
  return n;
}

// --- fusion shapes ----------------------------------------------------------

TEST(PlanOptimize, SageFusesNormalizeIntoSpgemm) {
  const SamplePlan before = build_sage_plan();
  const SamplePlan after = optimize(before);
  EXPECT_EQ(count_kind(before, PlanOpKind::kNormalize), 1);
  EXPECT_EQ(count_kind(after, PlanOpKind::kNormalize), 0);
  ASSERT_EQ(after.body.size(), before.body.size() - 1);
  bool fused = false;
  for (const PlanOp& op : after.body) {
    if (op.kind == PlanOpKind::kSpgemm) {
      EXPECT_TRUE(op.fused_norm);
      EXPECT_EQ(op.norm, NormMode::kRow);
      fused = true;
    }
  }
  EXPECT_TRUE(fused);
}

TEST(PlanOptimize, LadiesFusesNormalizeAndSlice) {
  const SamplePlan before = build_ladies_plan();
  const SamplePlan after = optimize(before);
  // 7-op body drops to 5: normalize into the spgemm, slice into the
  // masked extraction.
  EXPECT_EQ(after.body.size(), before.body.size() - 2);
  EXPECT_EQ(count_kind(after, PlanOpKind::kNormalize), 0);
  EXPECT_EQ(count_kind(after, PlanOpKind::kSlice), 0);
  for (const PlanOp& op : after.body) {
    if (op.kind == PlanOpKind::kSpgemm) {
      EXPECT_TRUE(op.fused_norm);
      EXPECT_EQ(op.norm, NormMode::kLadies);
    }
    if (op.kind == PlanOpKind::kMaskedExtract) {
      EXPECT_TRUE(op.slice_fused);
      EXPECT_NE(op.out2, kNoSlot);
    }
  }
}

TEST(PlanOptimize, FastGcnHasNothingToFuse) {
  // FastGCN samples from global weights: no probability spgemm, no
  // normalize, no slice — the optimizer must leave the op sequence alone.
  const SamplePlan before = build_fastgcn_plan();
  const SamplePlan after = optimize(before);
  ASSERT_EQ(after.body.size(), before.body.size());
  for (std::size_t i = 0; i < before.body.size(); ++i) {
    EXPECT_EQ(after.body[i].kind, before.body[i].kind);
  }
}

TEST(PlanOptimize, LoweredPlansFuseToo) {
  const SamplePlan after = optimize(lower_to_dist(build_ladies_plan()));
  EXPECT_EQ(count_kind(after, PlanOpKind::kNormalize), 0);
  EXPECT_EQ(count_kind(after, PlanOpKind::kSlice), 0);
  for (const PlanOp& op : after.body) {
    if (op.kind == PlanOpKind::kSpgemm15d) {
      EXPECT_TRUE(op.fused_norm);
    }
    if (op.kind == PlanOpKind::kMaskedExtract15d) {
      EXPECT_TRUE(op.slice_fused);
    }
  }
}

TEST(PlanOptimize, WalkPlanShapePreserved) {
  // The fused walk engine matches the exact unfused op sequence; fusing
  // normalize into an unlowered walk plan would silently drop execution off
  // the ~100x path. The optimizer must keep the shape matchable.
  for (const SamplePlan& before :
       {build_saint_plan(3, 2), build_node2vec_plan(3, 2, 0.5, 2.0)}) {
    ASSERT_TRUE(match_walk_plan(before).matched) << before.name;
    const SamplePlan after = optimize(before);
    EXPECT_TRUE(match_walk_plan(after).matched) << before.name;
    EXPECT_EQ(count_kind(after, PlanOpKind::kNormalize), 1) << before.name;
  }
}

TEST(PlanOptimize, DeadSlotsEliminatedAndRenumbered) {
  SamplePlan p = build_sage_plan();
  p.add_slot();  // never referenced
  p.add_slot();
  const index_t padded = p.num_slots;
  const SamplePlan after = optimize(p);
  EXPECT_LT(after.num_slots, padded);
  // Renumbering stays dense: every op slot is within the new bound.
  for (const auto* ops : {&after.body, &after.epilogue}) {
    for (const PlanOp& op : *ops) {
      for (const SlotId s : {op.in, op.in2, op.out, op.out2}) {
        EXPECT_TRUE(s == kNoSlot || (s >= 0 && s < after.num_slots));
      }
    }
  }
  EXPECT_NO_THROW(validate_plan(after));
}

TEST(PlanOptimize, CostModelDefaultsMatchHistoricalThreshold) {
  // The historical dispatch was `4·flops >= out_cols ? dense : hash`
  // (ties dense). The default cost model must reproduce it exactly.
  const SpgemmCostModel cm{};
  const struct {
    nnz_t flops;
    index_t cols;
  } cases[] = {{25, 100}, {24, 100}, {26, 100}, {0, 1}, {1, 4}, {1, 5}};
  for (const auto& c : cases) {
    const SpgemmKernel expect = c.flops * 4 >= c.cols ? SpgemmKernel::kDense
                                                      : SpgemmKernel::kHash;
    EXPECT_EQ(cm.pick(c.flops, c.cols), expect)
        << c.flops << " flops, " << c.cols << " cols";
  }
  // A model that prices hash lower flips the decision.
  const SpgemmCostModel cheap_hash{1.0, 1.0, 0.5};
  EXPECT_EQ(cheap_hash.pick(25, 100), SpgemmKernel::kHash);
}

// --- bit identity -----------------------------------------------------------

TEST(PlanOptimize, OptimizedPlansBitIdenticalReplicated) {
  const Graph g = generate_erdos_renyi(220, 9.0, 42);
  const auto batches = small_batches(g.num_vertices());
  const std::vector<value_t> prefix = fastgcn_importance_prefix(g);
  for (const SamplePlan& plan :
       {build_sage_plan(), build_ladies_plan(), build_fastgcn_plan(),
        build_labor_plan()}) {
    const auto* weights = plan.needs_global_weights ? &prefix : nullptr;
    PlanExecutor plain(plan, kConfig, {.optimize = false});
    PlanExecutor opt(plan, kConfig);
    Workspace ws_a, ws_b;
    const auto ref = plain.run(g, batches, kIds, 0xfeed, &ws_a, weights);
    const auto got = opt.run(g, batches, kIds, 0xfeed, &ws_b, weights);
    ASSERT_EQ(got.size(), ref.size()) << plan.name;
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_TRUE(samples_equal(got[i], ref[i]))
          << plan.name << " batch " << i;
    }
  }
}

TEST(PlanOptimize, OptimizedPlansBitIdenticalPartitioned) {
  const Graph g = generate_erdos_renyi(180, 10.0, 51);
  const auto batches = small_batches(g.num_vertices());
  const std::vector<value_t> prefix = fastgcn_importance_prefix(g);
  for (const SamplePlan& plan :
       {build_sage_plan(), build_ladies_plan(), build_fastgcn_plan(),
        build_labor_plan()}) {
    const auto* weights = plan.needs_global_weights ? &prefix : nullptr;
    const SamplePlan lowered = lower_to_dist(plan);
    PlanExecutor plain(lowered, kConfig, {.optimize = false});
    PlanExecutor opt(lowered, kConfig);
    Cluster ca(ProcessGrid(4, 2), CostModel(LinkParams{}));
    Cluster cb(ProcessGrid(4, 2), CostModel(LinkParams{}));
    const DistBlockRowMatrix da(ca.grid(), g.adjacency());
    const DistBlockRowMatrix db(cb.grid(), g.adjacency());
    const BlockPartition assign(static_cast<index_t>(batches.size()),
                                ca.grid().rows());
    Workspace ws_a, ws_b;
    const auto ref = plain.run_partitioned(ca, da, assign, batches, kIds,
                                           0xfeed, &ws_a, SpgemmOptions{},
                                           true, weights);
    const auto got = opt.run_partitioned(cb, db, assign, batches, kIds,
                                         0xfeed, &ws_b, SpgemmOptions{}, true,
                                         weights);
    ASSERT_EQ(got.size(), ref.size()) << plan.name;
    for (std::size_t r = 0; r < ref.size(); ++r) {
      ASSERT_EQ(got[r].size(), ref[r].size()) << plan.name;
      for (std::size_t i = 0; i < ref[r].size(); ++i) {
        EXPECT_TRUE(samples_equal(got[r][i], ref[r][i]))
            << plan.name << " row " << r << " batch " << i;
      }
    }
  }
}

// --- the plan cache ---------------------------------------------------------

TEST(PlanOptimize, PlanCacheSharesOneOptimizedPlan) {
  PlanCache::global().clear();
  const Graph g = generate_erdos_renyi(120, 6.0, 7);
  GraphSageSampler s1(g, kConfig);
  const auto after_first = PlanCache::global().stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_EQ(after_first.entries, 1u);
  GraphSageSampler s2(g, kConfig);
  const auto after_second = PlanCache::global().stats();
  EXPECT_EQ(after_second.hits, 1u);
  EXPECT_EQ(after_second.entries, 1u);
  // Not just an equal plan — the same object.
  EXPECT_EQ(&s1.plan(), &s2.plan());
  // Different fanouts are a different key (round counts change sampling).
  GraphSageSampler s3(g, SamplerConfig{{2, 2}, 9});
  EXPECT_EQ(PlanCache::global().stats().entries, 2u);
  EXPECT_NE(&s1.plan(), &s3.plan());
}

// --- describe_diff / --dump-plan surface ------------------------------------

TEST(PlanOptimize, DescribeDiffShowsFusions) {
  const SamplePlan before = build_ladies_plan();
  const std::string diff = describe_diff(before, optimize(before));
  EXPECT_NE(diff.find("- "), std::string::npos);
  EXPECT_NE(diff.find("+ "), std::string::npos);
  EXPECT_NE(diff.find("+norm(ladies)"), std::string::npos);
  EXPECT_NE(diff.find("+slice"), std::string::npos);
  // Identical plans diff to all-unchanged lines.
  const std::string same = describe_diff(before, before);
  EXPECT_EQ(same.find("- "), std::string::npos);
  EXPECT_EQ(same.find("+ "), std::string::npos);
}

TEST(PlanOptimize, SignatureDistinguishesStampedPlans) {
  const SamplePlan before = build_ladies_plan();
  const SamplePlan after = optimize(before);
  EXPECT_EQ(plan_signature(before), plan_signature(build_ladies_plan()));
  EXPECT_NE(plan_signature(before), plan_signature(after));
}

}  // namespace
}  // namespace dms
