// NN substrate: GEMM kernels, loss, SAGE layer + model gradient checks
// against finite differences, optimizer convergence.
#include <gtest/gtest.h>

#include <cmath>

#include "core/graphsage.hpp"
#include "graph/generators.hpp"
#include "nn/gemm.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

DenseF random_densef(index_t rows, index_t cols, std::uint64_t seed) {
  DenseF d(rows, cols);
  Pcg32 rng(seed, 0xf);
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      d(i, j) = static_cast<float>(rng.uniform() - 0.5);
    }
  }
  return d;
}

TEST(Gemm, MatmulMatchesManual) {
  DenseF a(2, 3), b(3, 2);
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  const DenseF c = matmul(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 58);
  EXPECT_FLOAT_EQ(c(0, 1), 64);
  EXPECT_FLOAT_EQ(c(1, 0), 139);
  EXPECT_FLOAT_EQ(c(1, 1), 154);
}

TEST(Gemm, TransposedVariantsAgree) {
  const DenseF a = random_densef(7, 5, 1);
  const DenseF b = random_densef(7, 4, 2);
  // Aᵀ·B via matmul_tn vs explicit transpose.
  DenseF at(5, 7);
  for (index_t i = 0; i < 7; ++i) {
    for (index_t j = 0; j < 5; ++j) at(j, i) = a(i, j);
  }
  EXPECT_LT(DenseF::max_abs_diff(matmul_tn(a, b), matmul(at, b)), 1e-5);

  const DenseF x = random_densef(6, 5, 3);
  const DenseF y = random_densef(8, 5, 4);
  DenseF yt(5, 8);
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 5; ++j) yt(j, i) = y(i, j);
  }
  EXPECT_LT(DenseF::max_abs_diff(matmul_nt(x, y), matmul(x, yt)), 1e-5);
}

TEST(Gemm, ReluAndBackward) {
  DenseF a(1, 4);
  a(0, 0) = -1;
  a(0, 1) = 2;
  a(0, 2) = 0;
  a(0, 3) = 5;
  DenseF y = a;
  relu_inplace(y);
  EXPECT_FLOAT_EQ(y(0, 0), 0);
  EXPECT_FLOAT_EQ(y(0, 1), 2);
  DenseF dy(1, 4, 1.0f);
  relu_backward_inplace(dy, y);
  EXPECT_FLOAT_EQ(dy(0, 0), 0);
  EXPECT_FLOAT_EQ(dy(0, 1), 1);
  EXPECT_FLOAT_EQ(dy(0, 2), 0);
  EXPECT_FLOAT_EQ(dy(0, 3), 1);
}

TEST(Loss, PerfectPredictionHasLowLoss) {
  DenseF logits(2, 3);
  logits(0, 1) = 20.0f;
  logits(1, 2) = 20.0f;
  const LossResult r = softmax_cross_entropy(logits, {1, 2});
  EXPECT_LT(r.loss, 1e-4);
  EXPECT_EQ(r.correct, 2);
}

TEST(Loss, UniformLogitsGiveLogC) {
  const DenseF logits(4, 8);
  const LossResult r = softmax_cross_entropy(logits, {0, 1, 2, 3});
  EXPECT_NEAR(r.loss, std::log(8.0), 1e-6);
}

TEST(Loss, GradientRowsSumToZero) {
  const DenseF logits = random_densef(5, 6, 7);
  const LossResult r = softmax_cross_entropy(logits, {0, 1, 2, 3, 4});
  for (index_t i = 0; i < 5; ++i) {
    float s = 0;
    for (index_t j = 0; j < 6; ++j) s += r.dlogits(i, j);
    EXPECT_NEAR(s, 0.0f, 1e-6);
  }
}

TEST(Loss, LabelOutOfRangeThrows) {
  const DenseF logits(1, 3);
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), DmsError);
}

/// Finite-difference gradient check of the full model loss w.r.t. every
/// parameter of the first layer (float precision → loose tolerance).
TEST(ModelGradcheck, MatchesFiniteDifferences) {
  const Graph g = generate_erdos_renyi(40, 6.0, 51);
  GraphSageSampler sampler(g, {{3, 2}, 1});
  const MinibatchSample sample = sampler.sample_one({1, 2, 3, 4}, 0, 1);

  ModelConfig mc;
  mc.in_dim = 5;
  mc.hidden = 4;
  mc.num_classes = 3;
  mc.num_layers = 2;
  mc.seed = 3;
  SageModel model(mc);
  const DenseF h = random_densef(
      static_cast<index_t>(sample.input_vertices().size()), 5, 13);
  const std::vector<int> labels = {0, 1, 2, 0};

  model.zero_grads();
  const LossResult base = model.train_step(sample, h, labels);
  (void)base;

  auto loss_at = [&]() {
    std::vector<SageLayerCache> caches;
    const DenseF logits = model.forward(sample, h, &caches);
    return softmax_cross_entropy(logits, labels).loss;
  };

  const float eps = 1e-3f;
  auto params = model.params();
  int checked = 0;
  for (std::size_t pi = 0; pi < params.size() && checked < 40; ++pi) {
    DenseF& w = *params[pi].param;
    const DenseF& grad = *params[pi].grad;
    for (std::size_t i = 0; i < std::min<std::size_t>(w.size(), 5); ++i, ++checked) {
      const float orig = w.data()[i];
      w.data()[i] = orig + eps;
      const double lp = loss_at();
      w.data()[i] = orig - eps;
      const double lm = loss_at();
      w.data()[i] = orig;
      const double numeric = (lp - lm) / (2.0 * eps);
      const double analytic = grad.data()[i];
      EXPECT_NEAR(analytic, numeric, 5e-3 + 0.05 * std::abs(numeric))
          << "param " << pi << " element " << i;
    }
  }
  // 6 tensors, ≤5 elements each (biases are shorter): 27 comparisons.
  EXPECT_GE(checked, 25);
}

TEST(Optimizer, SgdDescendsQuadratic) {
  // Minimize f(w) = ||w - 3||² with gradient 2(w-3).
  DenseF w(1, 4, 0.0f), g(1, 4);
  Sgd opt(0.1f);
  for (int it = 0; it < 200; ++it) {
    for (index_t j = 0; j < 4; ++j) g(0, j) = 2.0f * (w(0, j) - 3.0f);
    opt.step({{&w, &g}});
  }
  for (index_t j = 0; j < 4; ++j) EXPECT_NEAR(w(0, j), 3.0f, 1e-3);
}

TEST(Optimizer, AdamDescendsQuadratic) {
  DenseF w(1, 4, 0.0f), g(1, 4);
  Adam opt(0.05f);
  for (int it = 0; it < 500; ++it) {
    for (index_t j = 0; j < 4; ++j) g(0, j) = 2.0f * (w(0, j) - 3.0f);
    opt.step({{&w, &g}});
  }
  for (index_t j = 0; j < 4; ++j) EXPECT_NEAR(w(0, j), 3.0f, 1e-2);
}

TEST(SageModel, ForwardShapesAndDeterminism) {
  const Graph g = generate_erdos_renyi(64, 8.0, 52);
  GraphSageSampler sampler(g, {{4, 3, 2}, 1});
  const MinibatchSample sample = sampler.sample_one({5, 6, 7}, 0, 2);
  ModelConfig mc;
  mc.in_dim = 6;
  mc.hidden = 8;
  mc.num_classes = 4;
  mc.num_layers = 3;
  SageModel model(mc);
  const DenseF h = random_densef(
      static_cast<index_t>(sample.input_vertices().size()), 6, 14);
  const DenseF l1 = model.forward(sample, h, nullptr);
  const DenseF l2 = model.forward(sample, h, nullptr);
  EXPECT_EQ(l1.rows(), 3);
  EXPECT_EQ(l1.cols(), 4);
  EXPECT_TRUE(l1 == l2);
}

TEST(SageModel, DepthMismatchThrows) {
  const Graph g = generate_erdos_renyi(32, 5.0, 53);
  GraphSageSampler sampler(g, {{2}, 1});
  const MinibatchSample sample = sampler.sample_one({1}, 0, 1);
  ModelConfig mc;
  mc.num_layers = 2;
  mc.in_dim = 4;
  SageModel model(mc);
  const DenseF h(static_cast<index_t>(sample.input_vertices().size()), 4);
  EXPECT_THROW(model.forward(sample, h, nullptr), DmsError);
}

TEST(SageModel, GradScalingAndAccumulation) {
  ModelConfig mc;
  mc.in_dim = 3;
  mc.hidden = 3;
  mc.num_classes = 2;
  mc.num_layers = 1;
  SageModel a(mc), b(mc);
  a.layers()[0].grad_bias()(0, 0) = 2.0f;
  b.layers()[0].grad_bias()(0, 0) = 4.0f;
  a.accumulate_grads_from(b);
  EXPECT_FLOAT_EQ(a.layers()[0].grad_bias()(0, 0), 6.0f);
  a.scale_grads(0.5f);
  EXPECT_FLOAT_EQ(a.layers()[0].grad_bias()(0, 0), 3.0f);
}

TEST(SageModel, ParamBytesCoversAllLayers) {
  ModelConfig mc;
  mc.in_dim = 10;
  mc.hidden = 8;
  mc.num_classes = 4;
  mc.num_layers = 2;
  SageModel model(mc);
  // Layer 0: 2×(10×8) + 8; layer 1: 2×(8×4) + 4 floats.
  const std::size_t expect = (2 * 80 + 8 + 2 * 32 + 4) * sizeof(float);
  EXPECT_EQ(model.param_bytes(), expect);
}

}  // namespace
}  // namespace dms
