// End-to-end pipeline: epoch mechanics, phase accounting, bulk-k and
// sampler invariance, and learning on the planted dataset.
#include <gtest/gtest.h>

#include "graph/dataset.hpp"
#include "test_util.hpp"
#include "train/pipeline.hpp"

namespace dms {
namespace {

Dataset small_planted() {
  return make_planted_dataset(/*n=*/512, /*classes=*/4, /*f=*/8,
                              /*avg_degree=*/8.0, /*p_intra=*/0.85, /*seed=*/5);
}

PipelineConfig small_config() {
  PipelineConfig cfg;
  cfg.batch_size = 32;
  cfg.fanouts = {4, 4};
  cfg.hidden = 16;
  cfg.lr = 5e-3f;
  return cfg;
}

TEST(Pipeline, ReplicatedEpochProducesAllPhases) {
  const Dataset ds = small_planted();
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Pipeline pipe(cluster, ds, small_config());
  const EpochStats stats = pipe.run_epoch(0);
  EXPECT_GT(stats.sampling, 0.0);
  EXPECT_GT(stats.fetch, 0.0);
  EXPECT_GT(stats.propagation, 0.0);
  EXPECT_NEAR(stats.total, cluster.total_time(), 1e-12);
  EXPECT_GT(stats.loss, 0.0);
  EXPECT_GE(stats.train_acc, 0.0);
  testutil::expect_epoch_stats_consistent(stats);
}

TEST(Pipeline, PartitionedEpochProducesBreakdownPhases) {
  const Dataset ds = small_planted();
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  PipelineConfig cfg = small_config();
  cfg.mode = DistMode::kPartitioned;
  Pipeline pipe(cluster, ds, cfg);
  const EpochStats stats = pipe.run_epoch(0);
  EXPECT_GT(stats.compute_phases.at(kPhaseProbability), 0.0);
  EXPECT_GT(stats.compute_phases.at(kPhaseSampling), 0.0);
  EXPECT_GT(stats.compute_phases.at(kPhaseExtraction), 0.0);
  EXPECT_GT(stats.sampling, 0.0);
  testutil::expect_epoch_stats_consistent(stats);
}

TEST(Pipeline, LossDecreasesOverEpochs) {
  const Dataset ds = small_planted();
  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  Pipeline pipe(cluster, ds, small_config());
  const double first = pipe.run_epoch(0).loss;
  double last = first;
  for (int e = 1; e < 5; ++e) last = pipe.run_epoch(e).loss;
  EXPECT_LT(last, first * 0.9);
}

TEST(Pipeline, LearnsPlantedClassesAboveChance) {
  const Dataset ds = small_planted();
  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  PipelineConfig cfg = small_config();
  cfg.lr = 1e-2f;
  Pipeline pipe(cluster, ds, cfg);
  for (int e = 0; e < 8; ++e) pipe.run_epoch(e);
  const double acc = pipe.evaluate(ds.test_idx, {8, 8});
  EXPECT_GT(acc, 0.6) << "planted 4-class dataset should be well above 0.25 chance";
}

TEST(Pipeline, BulkKDoesNotChangeSamplesOrLoss) {
  // §4: bulk size is a performance knob; the samples (and thus training) are
  // identical for any k (verified here via loss equality).
  const Dataset ds = small_planted();
  PipelineConfig cfg = small_config();
  Cluster c1(ProcessGrid(2, 1), CostModel(LinkParams{}));
  cfg.bulk_k = 0;  // all at once
  Pipeline p1(c1, ds, cfg);
  const double l1 = p1.run_epoch(0).loss;

  Cluster c2(ProcessGrid(2, 1), CostModel(LinkParams{}));
  cfg.bulk_k = 2;  // one minibatch per rank per round
  Pipeline p2(c2, ds, cfg);
  const double l2 = p2.run_epoch(0).loss;
  EXPECT_DOUBLE_EQ(l1, l2);
}

TEST(Pipeline, SmallerBulkMeansMoreSamplingOverhead) {
  const Dataset ds = small_planted();
  PipelineConfig cfg = small_config();
  // Sync accounting: the overlapped executor slices k=all into prefetch
  // rounds, which would blur the single-bulk vs tiny-bulk overhead contrast.
  cfg.overlap = false;
  LinkParams link;
  link.launch_overhead = 1e-3;  // exaggerate to dominate measured noise
  Cluster c1(ProcessGrid(2, 1), CostModel(link));
  cfg.bulk_k = 0;
  Pipeline p1(c1, ds, cfg);
  const double bulk_sampling = p1.run_epoch(0).sampling;

  Cluster c2(ProcessGrid(2, 1), CostModel(link));
  cfg.bulk_k = 2;
  Pipeline p2(c2, ds, cfg);
  const double tiny_sampling = p2.run_epoch(0).sampling;
  EXPECT_GT(tiny_sampling, bulk_sampling);
}

TEST(Pipeline, LadiesModeRunsEndToEnd) {
  const Dataset ds = small_planted();
  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  PipelineConfig cfg;
  cfg.sampler = SamplerKind::kLadies;
  cfg.batch_size = 32;
  cfg.fanouts = {32};
  cfg.hidden = 16;
  Pipeline pipe(cluster, ds, cfg);
  const EpochStats stats = pipe.run_epoch(0);
  EXPECT_GT(stats.total, 0.0);
  EXPECT_GT(stats.loss, 0.0);
}

TEST(Pipeline, FastGcnModeRunsEndToEnd) {
  const Dataset ds = small_planted();
  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  PipelineConfig cfg;
  cfg.sampler = SamplerKind::kFastGcn;
  cfg.batch_size = 32;
  cfg.fanouts = {32};
  cfg.hidden = 16;
  Pipeline pipe(cluster, ds, cfg);
  EXPECT_GT(pipe.run_epoch(0).loss, 0.0);
}

TEST(Pipeline, PartitionedLadiesRunsEndToEnd) {
  const Dataset ds = small_planted();
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  PipelineConfig cfg;
  cfg.sampler = SamplerKind::kLadies;
  cfg.mode = DistMode::kPartitioned;
  cfg.batch_size = 32;
  cfg.fanouts = {32};
  cfg.hidden = 16;
  Pipeline pipe(cluster, ds, cfg);
  EXPECT_GT(pipe.run_epoch(0).total, 0.0);
}

TEST(Pipeline, PartitionedFastGcnRunsEndToEnd) {
  // Historically rejected; the plan IR's dist lowering gave FastGCN its
  // partitioned form for free (row-local sampling; only the masked
  // extraction lowers to the 1.5D collective).
  const Dataset ds = small_planted();
  Cluster cluster(ProcessGrid(2, 1), CostModel(LinkParams{}));
  PipelineConfig cfg;
  cfg.sampler = SamplerKind::kFastGcn;
  cfg.mode = DistMode::kPartitioned;
  cfg.fanouts = {8};
  Pipeline pipe(cluster, ds, cfg);
  EXPECT_GT(pipe.run_epoch(0).total, 0.0);
}

TEST(Pipeline, PartitionedLaborRunsEndToEnd) {
  const Dataset ds = small_planted();
  Cluster cluster(ProcessGrid(4, 2), CostModel(LinkParams{}));
  PipelineConfig cfg;
  cfg.sampler = SamplerKind::kLabor;
  cfg.mode = DistMode::kPartitioned;
  cfg.batch_size = 32;
  cfg.fanouts = {6, 4};
  cfg.hidden = 16;
  Pipeline pipe(cluster, ds, cfg);
  EXPECT_GT(pipe.run_epoch(0).total, 0.0);
}

TEST(Pipeline, PerRankBytesLargerWhenReplicated) {
  const Dataset ds = small_planted();
  Cluster c1(ProcessGrid(4, 1), CostModel(LinkParams{}));
  PipelineConfig cfg = small_config();
  Pipeline replicated(c1, ds, cfg);
  cfg.mode = DistMode::kPartitioned;
  Cluster c2(ProcessGrid(4, 1), CostModel(LinkParams{}));
  Pipeline partitioned(c2, ds, cfg);
  EXPECT_GT(replicated.per_rank_bytes(0), partitioned.per_rank_bytes(0));
}

TEST(Pipeline, EvaluateRejectsWrongDepth) {
  const Dataset ds = small_planted();
  Cluster cluster(ProcessGrid(1, 1), CostModel(LinkParams{}));
  Pipeline pipe(cluster, ds, small_config());
  EXPECT_THROW(pipe.evaluate(ds.val_idx, {8}), DmsError);
}

}  // namespace
}  // namespace dms
