// Hash-kernel path of the SpGEMM engine: equivalence with the dense kernel.
#include <gtest/gtest.h>

#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

using testutil::random_csr;

CsrMatrix spgemm_hash(const CsrMatrix& a, const CsrMatrix& b) {
  SpgemmOptions opts;
  opts.kernel = SpgemmKernel::kHash;
  return spgemm(a, b, opts);
}

CsrMatrix spgemm_dense(const CsrMatrix& a, const CsrMatrix& b) {
  SpgemmOptions opts;
  opts.kernel = SpgemmKernel::kDense;
  return spgemm(a, b, opts);
}

TEST(SpgemmHash, MatchesDenseAccumulatorKernel) {
  const CsrMatrix a = random_csr(40, 60, 0.1, 201);
  const CsrMatrix b = random_csr(60, 50, 0.15, 202);
  const CsrMatrix h = spgemm_hash(a, b);
  h.validate();
  // The engine's bit-identity contract: not merely close, the same bits.
  EXPECT_TRUE(h == spgemm_dense(a, b));
}

TEST(SpgemmHash, DimensionMismatchThrows) {
  EXPECT_THROW(spgemm_hash(CsrMatrix(2, 3), CsrMatrix(4, 2)), DmsError);
}

TEST(SpgemmHash, EmptyRowsAndMatrices) {
  const CsrMatrix a(5, 5);
  const CsrMatrix b = random_csr(5, 5, 0.5, 203);
  const CsrMatrix c = spgemm_hash(a, b);
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_EQ(c.rows(), 5);
}

TEST(SpgemmHash, CollisionHeavyColumns) {
  // Many A rows hitting the same few B columns stresses probing/merging.
  CooMatrix acoo(32, 8);
  CooMatrix bcoo(8, 4);
  Pcg32 rng(7);
  for (index_t r = 0; r < 32; ++r) {
    for (index_t k = 0; k < 8; ++k) acoo.push(r, k, rng.uniform() + 0.1);
  }
  for (index_t k = 0; k < 8; ++k) {
    for (index_t c = 0; c < 4; ++c) bcoo.push(k, c, rng.uniform() + 0.1);
  }
  const CsrMatrix a = CsrMatrix::from_coo(acoo);
  const CsrMatrix b = CsrMatrix::from_coo(bcoo);
  EXPECT_TRUE(spgemm_hash(a, b) == spgemm_dense(a, b));
}

struct HashSweep {
  index_t m, k, n;
  double da, db;
};

class SpgemmHashSweep : public ::testing::TestWithParam<HashSweep> {};

TEST_P(SpgemmHashSweep, AgreesWithReference) {
  const auto p = GetParam();
  const CsrMatrix a = random_csr(p.m, p.k, p.da, 211 + p.m);
  const CsrMatrix b = random_csr(p.k, p.n, p.db, 213 + p.n);
  const CsrMatrix h = spgemm_hash(a, b);
  h.validate();
  EXPECT_TRUE(h == spgemm_dense(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpgemmHashSweep,
    ::testing::Values(HashSweep{1, 1, 1, 1.0, 1.0}, HashSweep{7, 5, 9, 0.4, 0.4},
                      HashSweep{64, 64, 64, 0.05, 0.05},
                      HashSweep{16, 128, 16, 0.3, 0.02},
                      HashSweep{100, 40, 100, 0.1, 0.1},
                      HashSweep{33, 77, 55, 0.02, 0.5}));

TEST(SpgemmDispatch, AutoMatchesForcedKernels) {
  const CsrMatrix a = random_csr(10, 10, 0.4, 220);
  const CsrMatrix b = random_csr(10, 10, 0.4, 221);
  EXPECT_TRUE(spgemm(a, b) == spgemm_dense(a, b));
  EXPECT_TRUE(spgemm(a, b) == spgemm_hash(a, b));
}

TEST(SpgemmDispatch, EstimatorPrefersHashForSparseRowsOverWideOutput) {
  // Tiny flop volume into a huge column space → the dense accumulator's
  // O(cols) workspace cannot amortize.
  EXPECT_EQ(spgemm_pick_kernel(16, 1 << 20), SpgemmKernel::kHash);
  // Dense row blocks over a modest column space → dense wins.
  EXPECT_EQ(spgemm_pick_kernel(1 << 20, 1024), SpgemmKernel::kDense);
}

}  // namespace
}  // namespace dms
