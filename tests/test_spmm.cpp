// SpMM (sparse × dense) against dense references.
#include <gtest/gtest.h>

#include "sparse/ops.hpp"
#include "sparse/spmm.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

using testutil::dense_matmul;
using testutil::random_csr;

DenseD random_dense(index_t rows, index_t cols, std::uint64_t seed) {
  DenseD d(rows, cols);
  Pcg32 rng(seed, 0xd);
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) d(i, j) = 2.0 * rng.uniform() - 1.0;
  }
  return d;
}

TEST(Spmm, MatchesDenseReference) {
  const CsrMatrix a = random_csr(12, 9, 0.4, 41);
  const DenseD b = random_dense(9, 5, 42);
  const DenseD c = spmm(a, b);
  const DenseD ref = dense_matmul(to_dense(a), b);
  EXPECT_LT(DenseD::max_abs_diff(c, ref), 1e-12);
}

TEST(Spmm, DimensionMismatchThrows) {
  const CsrMatrix a = random_csr(3, 4, 0.5, 43);
  EXPECT_THROW(spmm(a, DenseD(5, 2)), DmsError);
}

TEST(Spmm, FloatVariantWorks) {
  const CsrMatrix a = random_csr(6, 6, 0.5, 44);
  DenseF b(6, 3);
  for (index_t i = 0; i < 6; ++i) {
    for (index_t j = 0; j < 3; ++j) b(i, j) = static_cast<float>(i + j);
  }
  const DenseF c = spmm(a, b);
  EXPECT_EQ(c.rows(), 6);
  EXPECT_EQ(c.cols(), 3);
}

TEST(SpmmTransposed, MatchesExplicitTranspose) {
  const CsrMatrix a = random_csr(10, 7, 0.3, 45);
  const DenseD b = random_dense(10, 4, 46);
  const DenseD c1 = spmm_transposed(a, b);
  const DenseD c2 = spmm(transpose(a), b);
  EXPECT_LT(DenseD::max_abs_diff(c1, c2), 1e-12);
}

TEST(SpmmTransposed, DimensionMismatchThrows) {
  const CsrMatrix a = random_csr(3, 4, 0.5, 47);
  EXPECT_THROW(spmm_transposed(a, DenseD(4, 2)), DmsError);
}

class SpmmSweep : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {};

TEST_P(SpmmSweep, ForwardAndTransposedAgreeWithDense) {
  const auto [m, k, f] = GetParam();
  const CsrMatrix a = random_csr(m, k, 0.25, 48 + m);
  const DenseD b = random_dense(k, f, 49 + f);
  EXPECT_LT(DenseD::max_abs_diff(spmm(a, b), dense_matmul(to_dense(a), b)), 1e-12);
  const DenseD bt = random_dense(m, f, 50 + f);
  EXPECT_LT(DenseD::max_abs_diff(spmm_transposed(a, bt),
                                 dense_matmul(to_dense(transpose(a)), bt)),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SpmmSweep,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(8, 3, 16),
                                           std::make_tuple(3, 8, 2),
                                           std::make_tuple(32, 32, 8),
                                           std::make_tuple(64, 16, 4)));

}  // namespace
}  // namespace dms
