// Matrix-based GraphSAGE sampler: paper worked example, structural
// invariants, and bulk/k-invariance.
#include <gtest/gtest.h>

#include <set>

#include "core/graphsage.hpp"
#include "graph/generators.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

Graph paper_graph() { return Graph(testutil::paper_example_adjacency()); }

TEST(GraphSageProbability, MatchesFigure2a) {
  // P ← Q^L·A then NORM: row of batch vertex 1 is 1/3 on {0,2,4}; row of
  // batch vertex 5 is 1/2 on {3,4}.
  const Graph g = paper_graph();
  const CsrMatrix q = CsrMatrix::one_nonzero_per_row(6, {1, 5});
  CsrMatrix p = spgemm(q, g.adjacency());
  normalize_rows(p);
  EXPECT_DOUBLE_EQ(p.at(0, 0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p.at(0, 2), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p.at(0, 4), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(p.at(1, 3), 0.5);
  EXPECT_DOUBLE_EQ(p.at(1, 4), 0.5);
  EXPECT_EQ(p.row_nnz(0), 3);
  EXPECT_EQ(p.row_nnz(1), 2);
}

TEST(GraphSageSampler, SampleCountsMatchFanout) {
  // Each batch vertex samples exactly min(s, deg) neighbors (§4.1.2).
  const Graph g = paper_graph();
  GraphSageSampler sampler(g, {{2}, 1});
  const MinibatchSample ms = sampler.sample_one({1, 5}, 0, 123);
  ASSERT_EQ(ms.layers.size(), 1u);
  const LayerSample& layer = ms.layers[0];
  EXPECT_EQ(layer.adj.rows(), 2);
  EXPECT_EQ(layer.adj.row_nnz(0), 2);  // deg(1)=3 > s=2
  EXPECT_EQ(layer.adj.row_nnz(1), 2);  // deg(5)=2 == s=2 → both
}

TEST(GraphSageSampler, SampledEdgesExistInGraph) {
  const Graph g = paper_graph();
  GraphSageSampler sampler(g, {{2, 2}, 1});
  const MinibatchSample ms = sampler.sample_one({1, 5}, 0, 5);
  for (const auto& layer : ms.layers) {
    for (index_t r = 0; r < layer.adj.rows(); ++r) {
      const index_t u = layer.row_vertices[static_cast<std::size_t>(r)];
      for (const index_t c : layer.adj.row_cols(r)) {
        const index_t v = layer.col_vertices[static_cast<std::size_t>(c)];
        EXPECT_DOUBLE_EQ(g.adjacency().at(u, v), 1.0)
            << "sampled edge (" << u << "," << v << ") not in graph";
      }
    }
  }
}

TEST(GraphSageSampler, FrontierChainsAcrossLayers) {
  // layers[l].row_vertices must equal layers[l-1].col_vertices, and layer 0
  // rows are the batch (sampler.hpp conventions).
  const Graph g = paper_graph();
  GraphSageSampler sampler(g, {{2, 2, 1}, 1});
  const MinibatchSample ms = sampler.sample_one({1, 5}, 3, 17);
  ASSERT_EQ(ms.layers.size(), 3u);
  EXPECT_EQ(ms.layers[0].row_vertices, ms.batch_vertices);
  for (std::size_t l = 1; l < ms.layers.size(); ++l) {
    EXPECT_EQ(ms.layers[l].row_vertices, ms.layers[l - 1].col_vertices);
  }
}

TEST(GraphSageSampler, FrontierLeadsWithRowVertices) {
  const Graph g = paper_graph();
  GraphSageSampler sampler(g, {{2}, 1});
  const MinibatchSample ms = sampler.sample_one({1, 5}, 0, 9);
  const auto& f = ms.layers[0].col_vertices;
  ASSERT_GE(f.size(), 2u);
  EXPECT_EQ(f[0], 1);
  EXPECT_EQ(f[1], 5);
  // Frontier has no duplicates.
  std::set<index_t> uniq(f.begin(), f.end());
  EXPECT_EQ(uniq.size(), f.size());
}

TEST(GraphSageSampler, BulkStackingIsInvariantToK) {
  // Sampling 4 batches in one bulk call must give the same per-batch result
  // as 4 separate calls (Eq. 1 stacking changes nothing semantically).
  const Graph g = Graph(generate_erdos_renyi(64, 8.0, 3).adjacency());
  GraphSageSampler sampler(g, {{3, 2}, 1});
  std::vector<std::vector<index_t>> batches = {
      {0, 1, 2}, {10, 11}, {20, 21, 22, 23}, {40}};
  std::vector<index_t> ids = {0, 1, 2, 3};
  const auto bulk = sampler.sample_bulk(batches, ids, 777);
  ASSERT_EQ(bulk.size(), 4u);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const auto single = sampler.sample_one(batches[i], ids[i], 777);
    ASSERT_EQ(single.layers.size(), bulk[i].layers.size());
    for (std::size_t l = 0; l < single.layers.size(); ++l) {
      EXPECT_TRUE(single.layers[l].adj == bulk[i].layers[l].adj);
      EXPECT_EQ(single.layers[l].col_vertices, bulk[i].layers[l].col_vertices);
    }
  }
}

TEST(GraphSageSampler, DifferentEpochsGiveDifferentSamples) {
  const Graph g = Graph(generate_erdos_renyi(128, 16.0, 4).adjacency());
  GraphSageSampler sampler(g, {{4}, 1});
  const auto a = sampler.sample_one({5, 6, 7, 8}, 0, 1);
  const auto b = sampler.sample_one({5, 6, 7, 8}, 0, 2);
  EXPECT_FALSE(a.layers[0].adj == b.layers[0].adj);
}

TEST(GraphSageSampler, SameSeedReproduces) {
  const Graph g = Graph(generate_erdos_renyi(128, 16.0, 5).adjacency());
  GraphSageSampler sampler(g, {{4, 3}, 1});
  const auto a = sampler.sample_one({1, 2, 3}, 7, 42);
  const auto b = sampler.sample_one({1, 2, 3}, 7, 42);
  for (std::size_t l = 0; l < a.layers.size(); ++l) {
    EXPECT_TRUE(a.layers[l].adj == b.layers[l].adj);
  }
}

TEST(GraphSageSampler, IsolatedVertexSamplesNothing) {
  // Vertex with no out-neighbors: empty P row → zero samples, no crash.
  CooMatrix coo(4, 4);
  coo.push(0, 1, 1.0);
  const Graph g{CsrMatrix::from_coo(coo)};
  GraphSageSampler sampler(g, {{2}, 1});
  const MinibatchSample ms = sampler.sample_one({2}, 0, 1);
  EXPECT_EQ(ms.layers[0].adj.row_nnz(0), 0);
}

TEST(GraphSageSampler, RejectsEmptyOrNonPositiveFanouts) {
  const Graph g = paper_graph();
  EXPECT_THROW(GraphSageSampler(g, {{}, 1}), DmsError);
  EXPECT_THROW(GraphSageSampler(g, {{2, 0}, 1}), DmsError);
}

TEST(GraphSageSampler, InputVerticesAreLastFrontier) {
  const Graph g = paper_graph();
  GraphSageSampler sampler(g, {{2, 2}, 1});
  const MinibatchSample ms = sampler.sample_one({1}, 0, 11);
  EXPECT_EQ(ms.input_vertices(), ms.layers.back().col_vertices);
}

class SageFanoutSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(SageFanoutSweep, EveryRowRespectsFanoutOnRandomGraph) {
  const index_t s = GetParam();
  const Graph g = Graph(generate_erdos_renyi(200, 12.0, 6).adjacency());
  GraphSageSampler sampler(g, {{s}, 1});
  std::vector<index_t> batch;
  for (index_t v = 0; v < 40; v += 2) batch.push_back(v);
  const MinibatchSample ms = sampler.sample_one(batch, 0, 3);
  for (index_t r = 0; r < ms.layers[0].adj.rows(); ++r) {
    const index_t v = ms.layers[0].row_vertices[static_cast<std::size_t>(r)];
    EXPECT_EQ(ms.layers[0].adj.row_nnz(r), std::min<nnz_t>(s, g.out_degree(v)));
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, SageFanoutSweep, ::testing::Values(1, 2, 4, 8, 16, 64));

}  // namespace
}  // namespace dms
