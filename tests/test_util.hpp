// Shared helpers for the test suite: random sparse matrices, dense
// reference implementations, and the EpochStats accounting invariants.
#pragma once

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "train/pipeline.hpp"

namespace dms::testutil {

/// Checks the clock-composition invariants every epoch must satisfy
/// (DESIGN.md §6): all phases non-negative; the total is the max-composition
/// of the phase times (sum of every recorded phase minus the overlapped
/// credit); the credit never exceeds the prefetchable work; and when the
/// staged executor ran overlapped, every prefetchable second is accounted
/// exactly once as hidden (overlap_saved) or exposed (stall).
inline void expect_epoch_stats_consistent(const EpochStats& s) {
  EXPECT_GE(s.sampling, 0.0);
  EXPECT_GE(s.fetch, 0.0);
  EXPECT_GE(s.propagation, 0.0);
  EXPECT_GE(s.overlap_saved, 0.0);
  EXPECT_GE(s.stall, 0.0);
  for (const auto& [phase, sec] : s.compute_phases) {
    EXPECT_GE(sec, 0.0) << "compute phase " << phase;
  }
  for (const auto& [phase, sec] : s.comm_phases) {
    EXPECT_GE(sec, 0.0) << "comm phase " << phase;
  }
  double phase_sum = 0.0;
  for (const auto& [phase, sec] : s.compute_phases) phase_sum += sec;
  for (const auto& [phase, sec] : s.comm_phases) phase_sum += sec;
  const double tol = 1e-12 + 1e-6 * phase_sum;
  EXPECT_NEAR(s.total, phase_sum - s.overlap_saved, tol);
  EXPECT_LE(s.overlap_saved, s.sampling + s.fetch + tol);
  if (s.overlap_saved > 0.0 || s.stall > 0.0) {
    EXPECT_NEAR(s.overlap_saved + s.stall, s.sampling + s.fetch, tol);
  }
}

/// Random sparse matrix with expected density `density` and values in (0,1].
inline CsrMatrix random_csr(index_t rows, index_t cols, double density,
                            std::uint64_t seed) {
  CooMatrix coo(rows, cols);
  Pcg32 rng(seed, 0x7e57);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      if (rng.uniform() < density) coo.push(r, c, rng.uniform() + 1e-3);
    }
  }
  return CsrMatrix::from_coo(coo);
}

/// Random 0/1 pattern matrix.
inline CsrMatrix random_pattern(index_t rows, index_t cols, double density,
                                std::uint64_t seed) {
  CsrMatrix m = random_csr(rows, cols, density, seed);
  for (auto& v : m.mutable_vals()) v = 1.0;
  return m;
}

/// The 6-vertex example graph of the paper's Figure 1 (symmetric). It is
/// consistent with both worked examples in §4: for batch {1, 5},
/// GraphSAGE's P is [[⅓,0,⅓,0,⅓,0],[0,0,0,½,½,0]] (N(1)={0,2,4},
/// N(5)={3,4}) and LADIES' probability vector is [1/7,0,1/7,1/7,4/7,0].
inline CsrMatrix paper_example_adjacency() {
  return CsrMatrix::from_triplets(
      6, 6,
      {0, 1, 1, 1, 2, 3, 3, 4, 4, 4, 5, 5},
      {1, 0, 2, 4, 1, 4, 5, 1, 3, 5, 3, 4},
      std::vector<value_t>(12, 1.0));
}

/// Dense reference multiply.
inline DenseD dense_matmul(const DenseD& a, const DenseD& b) {
  DenseD c(a.rows(), b.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = 0; k < a.cols(); ++k) {
      const double av = a(i, k);
      if (av == 0.0) continue;
      for (index_t j = 0; j < b.cols(); ++j) c(i, j) += av * b(k, j);
    }
  }
  return c;
}

}  // namespace dms::testutil
