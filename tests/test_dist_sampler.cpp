// Graph Partitioned samplers: bit-identical results to the single-node
// samplers across grid shapes (the determinism contract that makes the
// distributed algorithms testable), plus phase accounting.
#include <gtest/gtest.h>

#include "core/graphsage.hpp"
#include "core/ladies.hpp"
#include "core/minibatch.hpp"
#include "dist/dist_sampler.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

Cluster make_cluster(int p, int c) {
  return Cluster(ProcessGrid(p, c), CostModel(LinkParams{}));
}

std::vector<std::vector<index_t>> make_batches(index_t n, index_t k, index_t b) {
  std::vector<index_t> train;
  for (index_t v = 0; v < k * b; ++v) train.push_back(v % n);
  auto batches = make_epoch_batches(train, b, 42);
  batches.resize(static_cast<std::size_t>(k));
  return batches;
}

struct GridParam {
  int p, c;
};

class PartitionedSageSweep : public ::testing::TestWithParam<GridParam> {};

TEST_P(PartitionedSageSweep, MatchesSingleNodeSampler) {
  const auto [p, c] = GetParam();
  Cluster cluster = make_cluster(p, c);
  const Graph g = generate_erdos_renyi(256, 10.0, 31);
  const SamplerConfig cfg{{3, 2}, 1};
  const auto batches = make_batches(256, 8, 4);
  std::vector<index_t> ids = {0, 1, 2, 3, 4, 5, 6, 7};

  PartitionedSageSampler dist(g, cluster.grid(), cfg);
  const auto per_row = dist.sample_bulk(cluster, batches, ids, 2024);

  GraphSageSampler local(g, cfg);
  const auto ref = local.sample_bulk(batches, ids, 2024);

  std::size_t seen = 0;
  for (const auto& row : per_row) {
    for (const auto& ms : row) {
      const auto& expect = ref[seen++];
      ASSERT_EQ(ms.layers.size(), expect.layers.size());
      EXPECT_EQ(ms.batch_vertices, expect.batch_vertices);
      for (std::size_t l = 0; l < ms.layers.size(); ++l) {
        EXPECT_TRUE(ms.layers[l].adj == expect.layers[l].adj);
        EXPECT_EQ(ms.layers[l].col_vertices, expect.layers[l].col_vertices);
      }
    }
  }
  EXPECT_EQ(seen, ref.size());
}

INSTANTIATE_TEST_SUITE_P(Grids, PartitionedSageSweep,
                         ::testing::Values(GridParam{1, 1}, GridParam{2, 1},
                                           GridParam{4, 2}, GridParam{8, 2},
                                           GridParam{16, 4}));

class PartitionedLadiesSweep : public ::testing::TestWithParam<GridParam> {};

TEST_P(PartitionedLadiesSweep, MatchesSingleNodeSampler) {
  const auto [p, c] = GetParam();
  Cluster cluster = make_cluster(p, c);
  const Graph g = generate_erdos_renyi(200, 12.0, 32);
  const SamplerConfig cfg{{16}, 1};
  const auto batches = make_batches(200, 8, 8);
  std::vector<index_t> ids = {0, 1, 2, 3, 4, 5, 6, 7};

  PartitionedLadiesSampler dist(g, cluster.grid(), cfg);
  const auto per_row = dist.sample_bulk(cluster, batches, ids, 77);

  LadiesSampler local(g, cfg);
  const auto ref = local.sample_bulk(batches, ids, 77);

  std::size_t seen = 0;
  for (const auto& row : per_row) {
    for (const auto& ms : row) {
      const auto& expect = ref[seen++];
      for (std::size_t l = 0; l < ms.layers.size(); ++l) {
        EXPECT_TRUE(ms.layers[l].adj == expect.layers[l].adj);
        EXPECT_EQ(ms.layers[l].col_vertices, expect.layers[l].col_vertices);
      }
    }
  }
  EXPECT_EQ(seen, ref.size());
}

INSTANTIATE_TEST_SUITE_P(Grids, PartitionedLadiesSweep,
                         ::testing::Values(GridParam{1, 1}, GridParam{2, 1},
                                           GridParam{4, 2}, GridParam{8, 2},
                                           GridParam{16, 4}));

TEST(PartitionedSage, RecordsAllThreePhases) {
  Cluster cluster = make_cluster(4, 2);
  const Graph g = generate_erdos_renyi(128, 8.0, 34);
  PartitionedSageSampler dist(g, cluster.grid(), {{3}, 1});
  const auto batches = make_batches(128, 4, 4);
  dist.sample_bulk(cluster, batches, {0, 1, 2, 3}, 9);
  EXPECT_GT(cluster.phase_time(kPhaseProbability), 0.0);
  EXPECT_GT(cluster.phase_time(kPhaseSampling), 0.0);
  EXPECT_GT(cluster.phase_time(kPhaseExtraction), 0.0);
}

TEST(PartitionedSage, SparsityObliviousSameSamples) {
  Cluster c1 = make_cluster(8, 2);
  Cluster c2 = make_cluster(8, 2);
  const Graph g = generate_erdos_renyi(128, 8.0, 35);
  PartitionedSamplerOptions aware;
  aware.sparsity_aware = true;
  PartitionedSamplerOptions oblivious;
  oblivious.sparsity_aware = false;
  PartitionedSageSampler s1(g, c1.grid(), {{4, 2}, 1}, aware);
  PartitionedSageSampler s2(g, c2.grid(), {{4, 2}, 1}, oblivious);
  const auto batches = make_batches(128, 8, 4);
  std::vector<index_t> ids = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto r1 = s1.sample_bulk(c1, batches, ids, 3);
  const auto r2 = s2.sample_bulk(c2, batches, ids, 3);
  for (std::size_t i = 0; i < r1.size(); ++i) {
    for (std::size_t b = 0; b < r1[i].size(); ++b) {
      for (std::size_t l = 0; l < r1[i][b].layers.size(); ++l) {
        EXPECT_TRUE(r1[i][b].layers[l].adj == r2[i][b].layers[l].adj);
      }
    }
  }
  // Oblivious ships more bytes.
  EXPECT_LT(c1.comm_stats().at(kPhaseProbability).bytes,
            c2.comm_stats().at(kPhaseProbability).bytes);
}

}  // namespace
}  // namespace dms
