// FastGCN sampler (framework extension): importance distribution and
// layer-wise extraction semantics.
#include <gtest/gtest.h>

#include <set>

#include "core/fastgcn.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

TEST(FastGcn, ImportanceIsSquaredInDegree) {
  const Graph g(testutil::paper_example_adjacency());
  FastGcnSampler sampler(g, {{2}, 1});
  // In-degrees on the symmetric example equal out-degrees:
  // deg = {1, 3, 1, 2, 3, 2}.
  const auto& q = sampler.importance();
  EXPECT_DOUBLE_EQ(q[0], 1.0);
  EXPECT_DOUBLE_EQ(q[1], 9.0);
  EXPECT_DOUBLE_EQ(q[2], 1.0);
  EXPECT_DOUBLE_EQ(q[3], 4.0);
  EXPECT_DOUBLE_EQ(q[4], 9.0);
  EXPECT_DOUBLE_EQ(q[5], 4.0);
}

TEST(FastGcn, SamplesAreIndependentOfBatch) {
  // FastGCN's distribution is batch-independent: two different batches at
  // the same (batch_id, layer) stream sample the same vertex set.
  const Graph g = Graph(generate_erdos_renyi(100, 10.0, 21).adjacency());
  FastGcnSampler sampler(g, {{8}, 1});
  const auto a = sampler.sample_one({1, 2, 3}, 5, 7);
  const auto b = sampler.sample_one({50, 60}, 5, 7);
  std::set<index_t> sa(a.layers[0].col_vertices.begin() + 3, a.layers[0].col_vertices.end());
  std::set<index_t> sb(b.layers[0].col_vertices.begin() + 2, b.layers[0].col_vertices.end());
  // The *new* sampled vertices agree up to overlap with the batch itself.
  const std::set<index_t> batch_union = {1, 2, 3, 50, 60};
  for (const index_t v : sa) {
    if (sb.count(v) == 0) {
      const bool is_batch_vertex = batch_union.count(v) > 0;
      EXPECT_TRUE(is_batch_vertex);
    }
  }
}

TEST(FastGcn, EdgesExistAndConnectBatchToSample) {
  const Graph g = Graph(generate_erdos_renyi(80, 9.0, 22).adjacency());
  FastGcnSampler sampler(g, {{16}, 1});
  const auto ms = sampler.sample_one({4, 8, 12}, 0, 3);
  const auto& layer = ms.layers[0];
  EXPECT_EQ(layer.adj.rows(), 3);
  for (index_t r = 0; r < layer.adj.rows(); ++r) {
    const index_t u = layer.row_vertices[static_cast<std::size_t>(r)];
    for (const index_t c : layer.adj.row_cols(r)) {
      EXPECT_DOUBLE_EQ(
          g.adjacency().at(u, layer.col_vertices[static_cast<std::size_t>(c)]), 1.0);
    }
  }
}

TEST(FastGcn, CanSampleVerticesOutsideNeighborhood) {
  // Unlike LADIES, FastGCN may sample vertices with no edge to the batch
  // (§2.2.2 points out this hurts accuracy). With a tiny batch on a large
  // graph this is overwhelmingly likely.
  const Graph g = Graph(generate_erdos_renyi(500, 4.0, 23).adjacency());
  FastGcnSampler sampler(g, {{64}, 1});
  const auto ms = sampler.sample_one({0}, 0, 9);
  std::set<index_t> neighborhood;
  for (const index_t v : g.adjacency().row_cols(0)) neighborhood.insert(v);
  const auto& f = ms.layers[0].col_vertices;
  bool outside = false;
  for (std::size_t i = 1; i < f.size(); ++i) {
    if (neighborhood.count(f[i]) == 0) outside = true;
  }
  EXPECT_TRUE(outside);
}

TEST(FastGcn, BulkMatchesSingle) {
  const Graph g = Graph(generate_erdos_renyi(90, 7.0, 24).adjacency());
  FastGcnSampler sampler(g, {{8, 8}, 1});
  std::vector<std::vector<index_t>> batches = {{0, 1}, {2, 3}};
  const auto bulk = sampler.sample_bulk(batches, {0, 1}, 55);
  for (std::size_t i = 0; i < 2; ++i) {
    const auto single = sampler.sample_one(batches[i], static_cast<index_t>(i), 55);
    for (std::size_t l = 0; l < 2; ++l) {
      EXPECT_TRUE(single.layers[l].adj == bulk[i].layers[l].adj);
    }
  }
}

}  // namespace
}  // namespace dms
