// Unit tests for the CSR/COO core types.
#include <gtest/gtest.h>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace dms {
namespace {

CsrMatrix example_paper_graph() {
  // The 6-vertex graph of Figure 1 (adjacency of Figure 2a).
  return CsrMatrix::from_triplets(
      6, 6,
      {0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 3, 4, 4, 5, 5},
      {1, 3, 5, 0, 2, 4, 1, 3, 4, 0, 1, 2, 3, 3, 4, 2, 3},
      std::vector<value_t>(17, 1.0));
}

TEST(CsrMatrix, EmptyConstruction) {
  CsrMatrix m(4, 7);
  EXPECT_EQ(m.rows(), 4);
  EXPECT_EQ(m.cols(), 7);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_NO_THROW(m.validate());
}

TEST(CsrMatrix, NegativeDimensionsThrow) {
  EXPECT_THROW(CsrMatrix(-1, 3), DmsError);
}

TEST(CsrMatrix, FromCooSortsWithinRows) {
  CooMatrix coo(2, 5);
  coo.push(0, 4, 1.0);
  coo.push(0, 1, 2.0);
  coo.push(1, 3, 3.0);
  coo.push(1, 0, 4.0);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  m.validate();
  EXPECT_EQ(m.at(0, 1), 2.0);
  EXPECT_EQ(m.at(0, 4), 1.0);
  EXPECT_EQ(m.at(1, 0), 4.0);
  EXPECT_EQ(m.at(1, 3), 3.0);
}

TEST(CsrMatrix, FromCooSumsDuplicates) {
  CooMatrix coo(1, 3);
  coo.push(0, 2, 1.5);
  coo.push(0, 2, 2.5);
  const CsrMatrix m = CsrMatrix::from_coo(coo);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 4.0);
}

TEST(CsrMatrix, FromCooRejectsOutOfRange) {
  CooMatrix coo(2, 2);
  coo.push(0, 2, 1.0);
  EXPECT_THROW(CsrMatrix::from_coo(coo), DmsError);
}

TEST(CsrMatrix, FromTripletsLengthMismatchThrows) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {0}, {0, 1}, {1.0, 2.0}), DmsError);
}

TEST(CsrMatrix, OneNonzeroPerRowBuildsQMatrix) {
  // The GraphSAGE Q^L construction of §4.1.1: batch {1, 5}.
  const CsrMatrix q = CsrMatrix::one_nonzero_per_row(6, {1, 5});
  q.validate();
  EXPECT_EQ(q.rows(), 2);
  EXPECT_EQ(q.cols(), 6);
  EXPECT_EQ(q.nnz(), 2);
  EXPECT_DOUBLE_EQ(q.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(q.at(1, 5), 1.0);
}

TEST(CsrMatrix, OneNonzeroPerRowRejectsBadColumn) {
  EXPECT_THROW(CsrMatrix::one_nonzero_per_row(3, {0, 3}), DmsError);
}

TEST(CsrMatrix, AtReturnsZeroForAbsentEntries) {
  const CsrMatrix m = example_paper_graph();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);
  EXPECT_THROW(m.at(6, 0), DmsError);
}

TEST(CsrMatrix, RowAccessors) {
  const CsrMatrix m = example_paper_graph();
  EXPECT_EQ(m.row_nnz(0), 3);
  const auto cols = m.row_cols(0);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 1);
  EXPECT_EQ(cols[1], 3);
  EXPECT_EQ(cols[2], 5);
}

TEST(CsrMatrix, ValidateCatchesUnsortedColumns) {
  CsrMatrix bad(2, 3, {0, 2, 2}, {2, 1}, {1.0, 1.0});
  EXPECT_THROW(bad.validate(), DmsError);
}

TEST(CsrMatrix, ValidateCatchesBadRowptr) {
  CsrMatrix bad(2, 3, {0, 2, 1}, {0, 1}, {1.0, 1.0});
  EXPECT_THROW(bad.validate(), DmsError);
}

TEST(CsrMatrix, ValidateCatchesColumnOutOfRange) {
  CsrMatrix bad(1, 2, {0, 1}, {2}, {1.0});
  EXPECT_THROW(bad.validate(), DmsError);
}

TEST(CsrMatrix, EqualityIsStructuralAndNumeric) {
  const CsrMatrix a = example_paper_graph();
  CsrMatrix b = example_paper_graph();
  EXPECT_TRUE(a == b);
  b.mutable_vals()[0] = 2.0;
  EXPECT_FALSE(a == b);
}

TEST(CsrMatrix, BytesAccountsForAllArrays) {
  const CsrMatrix m = example_paper_graph();
  EXPECT_EQ(m.bytes(), 7 * sizeof(nnz_t) + 17 * (sizeof(index_t) + sizeof(value_t)));
}

TEST(CooMatrix, SortAndCombine) {
  CooMatrix coo(3, 3);
  coo.push(2, 0, 1.0);
  coo.push(0, 1, 2.0);
  coo.push(2, 0, 3.0);
  coo.push(0, 0, 4.0);
  coo.sort_and_combine();
  EXPECT_EQ(coo.nnz(), 3);
  EXPECT_EQ(coo.row_idx[0], 0);
  EXPECT_EQ(coo.col_idx[0], 0);
  EXPECT_DOUBLE_EQ(coo.vals[2], 4.0);  // merged 1+3 at (2,0)
}

}  // namespace
}  // namespace dms
