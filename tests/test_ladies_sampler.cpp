// Matrix-based LADIES sampler: the paper's probability example, extraction
// semantics (every batch→sampled edge kept), and bulk invariance.
#include <gtest/gtest.h>

#include <set>

#include "core/ladies.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

Graph paper_graph() { return Graph(testutil::paper_example_adjacency()); }

TEST(LadiesProbability, MatchesPaperSection22) {
  // §2.2.2: for batch {1,5} on the Figure 1 graph the probability array is
  // [1/7, 0, 1/7, 1/7, 4/7, 0].
  const Graph g = paper_graph();
  LadiesSampler sampler(g, {{2}, 1});
  const auto p = sampler.probability_vector({1, 5});
  ASSERT_EQ(p.size(), 6u);
  EXPECT_DOUBLE_EQ(p[0], 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[2], 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(p[3], 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(p[4], 4.0 / 7.0);
  EXPECT_DOUBLE_EQ(p[5], 0.0);
}

TEST(LadiesProbability, SquaredCountsNormalization) {
  // p_v = e_v² / Σ e_u² — verify on a different batch ({1} alone: all of
  // N(1) has e=1 → uniform 1/3).
  const Graph g = paper_graph();
  LadiesSampler sampler(g, {{2}, 1});
  const auto p = sampler.probability_vector({1});
  EXPECT_DOUBLE_EQ(p[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p[2], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(p[4], 1.0 / 3.0);
}

TEST(LadiesSampler, SamplesSVerticesPerBatch) {
  const Graph g = paper_graph();
  LadiesSampler sampler(g, {{2}, 1});
  const MinibatchSample ms = sampler.sample_one({1, 5}, 0, 7);
  ASSERT_EQ(ms.layers.size(), 1u);
  // Frontier = batch (2) + sampled (2, unless a sampled vertex is a batch
  // vertex — impossible here since neither 1 nor 5 has positive probability).
  EXPECT_EQ(ms.layers[0].col_vertices.size(), 4u);
}

TEST(LadiesSampler, KeepsEveryEdgeBetweenBatchAndSample) {
  // §4.2: "the sample for LADIES includes every edge between {batch} and
  // {sampled}" — unlike GraphSAGE which keeps s per vertex.
  const Graph g = Graph(generate_erdos_renyi(80, 10.0, 11).adjacency());
  LadiesSampler sampler(g, {{12}, 1});
  std::vector<index_t> batch = {3, 9, 27, 45, 61};
  const MinibatchSample ms = sampler.sample_one(batch, 0, 13);
  const LayerSample& layer = ms.layers[0];
  // Identify the sampled set = frontier minus leading batch vertices.
  std::set<index_t> sampled(layer.col_vertices.begin() + static_cast<std::ptrdiff_t>(batch.size()),
                            layer.col_vertices.end());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (const index_t v : g.adjacency().row_cols(batch[i])) {
      if (sampled.count(v) > 0) {
        // Edge batch[i]→v must be present in the sampled adjacency.
        bool found = false;
        for (const index_t c : layer.adj.row_cols(static_cast<index_t>(i))) {
          if (layer.col_vertices[static_cast<std::size_t>(c)] == v) found = true;
        }
        EXPECT_TRUE(found) << "missing edge " << batch[i] << "->" << v;
      }
    }
  }
}

TEST(LadiesSampler, SampledAdjacencyEdgesExistInGraph) {
  const Graph g = Graph(generate_erdos_renyi(60, 8.0, 12).adjacency());
  LadiesSampler sampler(g, {{8}, 1});
  const MinibatchSample ms = sampler.sample_one({1, 2, 3, 4}, 0, 5);
  const LayerSample& layer = ms.layers[0];
  for (index_t r = 0; r < layer.adj.rows(); ++r) {
    const index_t u = layer.row_vertices[static_cast<std::size_t>(r)];
    for (const index_t c : layer.adj.row_cols(r)) {
      EXPECT_DOUBLE_EQ(
          g.adjacency().at(u, layer.col_vertices[static_cast<std::size_t>(c)]), 1.0);
    }
  }
}

TEST(LadiesSampler, BulkStackingIsInvariantToK) {
  const Graph g = Graph(generate_erdos_renyi(100, 10.0, 13).adjacency());
  LadiesSampler sampler(g, {{6}, 1});
  std::vector<std::vector<index_t>> batches = {{0, 1, 2}, {10, 20, 30}, {50, 51}};
  std::vector<index_t> ids = {0, 1, 2};
  const auto bulk = sampler.sample_bulk(batches, ids, 99);
  for (std::size_t i = 0; i < batches.size(); ++i) {
    const auto single = sampler.sample_one(batches[i], ids[i], 99);
    EXPECT_TRUE(single.layers[0].adj == bulk[i].layers[0].adj);
    EXPECT_EQ(single.layers[0].col_vertices, bulk[i].layers[0].col_vertices);
  }
}

TEST(LadiesSampler, MultiLayerChainsFrontiers) {
  const Graph g = Graph(generate_erdos_renyi(100, 12.0, 14).adjacency());
  LadiesSampler sampler(g, {{8, 8}, 1});
  const MinibatchSample ms = sampler.sample_one({2, 4, 6}, 0, 21);
  ASSERT_EQ(ms.layers.size(), 2u);
  EXPECT_EQ(ms.layers[1].row_vertices, ms.layers[0].col_vertices);
}

TEST(LadiesSampler, SameSeedReproduces) {
  const Graph g = Graph(generate_erdos_renyi(100, 10.0, 15).adjacency());
  LadiesSampler sampler(g, {{5}, 1});
  const auto a = sampler.sample_one({7, 8, 9}, 2, 5);
  const auto b = sampler.sample_one({7, 8, 9}, 2, 5);
  EXPECT_TRUE(a.layers[0].adj == b.layers[0].adj);
  const auto c = sampler.sample_one({7, 8, 9}, 2, 6);
  EXPECT_FALSE(a.layers[0].col_vertices == c.layers[0].col_vertices);
}

TEST(LadiesSampler, SampledVerticesComeFromAggregatedNeighborhood) {
  // LADIES only samples vertices with a neighbor in the batch (§2.2.2) —
  // the fix over FastGCN.
  const Graph g = Graph(generate_erdos_renyi(120, 6.0, 16).adjacency());
  LadiesSampler sampler(g, {{10}, 1});
  std::vector<index_t> batch = {0, 5, 10};
  std::set<index_t> neighborhood;
  for (const index_t u : batch) {
    for (const index_t v : g.adjacency().row_cols(u)) neighborhood.insert(v);
  }
  const MinibatchSample ms = sampler.sample_one(batch, 0, 31);
  const auto& f = ms.layers[0].col_vertices;
  for (std::size_t i = batch.size(); i < f.size(); ++i) {
    EXPECT_TRUE(neighborhood.count(f[i]) > 0)
        << "vertex " << f[i] << " sampled outside the aggregated neighborhood";
  }
}

class LadiesSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(LadiesSweep, SampleSizeNeverExceedsS) {
  const index_t s = GetParam();
  const Graph g = Graph(generate_erdos_renyi(150, 8.0, 17).adjacency());
  LadiesSampler sampler(g, {{s}, 1});
  const MinibatchSample ms = sampler.sample_one({1, 2, 3, 4, 5}, 0, 1);
  EXPECT_LE(static_cast<index_t>(ms.layers[0].col_vertices.size()), 5 + s);
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, LadiesSweep, ::testing::Values(1, 2, 4, 16, 64, 256));

}  // namespace
}  // namespace dms
