// Binary serialization round trips for matrices and datasets.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/io.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("dms_test_" + name)).string();
}

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : created_) std::filesystem::remove(p);
  }
  std::string track(const std::string& p) {
    created_.push_back(p);
    return p;
  }
  std::vector<std::string> created_;
};

TEST_F(IoTest, CsrRoundTrip) {
  const CsrMatrix m = testutil::random_csr(37, 23, 0.2, 301);
  const std::string path = track(temp_path("csr.bin"));
  save_csr(m, path);
  EXPECT_TRUE(load_csr(path) == m);
}

TEST_F(IoTest, EmptyCsrRoundTrip) {
  const CsrMatrix m(5, 9);
  const std::string path = track(temp_path("csr_empty.bin"));
  save_csr(m, path);
  const CsrMatrix loaded = load_csr(path);
  EXPECT_EQ(loaded.rows(), 5);
  EXPECT_EQ(loaded.cols(), 9);
  EXPECT_EQ(loaded.nnz(), 0);
}

TEST_F(IoTest, LoadRejectsBadMagic) {
  const std::string path = track(temp_path("bad_magic.bin"));
  std::ofstream os(path, std::ios::binary);
  os << "garbage data that is not a dms file";
  os.close();
  EXPECT_THROW(load_csr(path), DmsError);
}

TEST_F(IoTest, LoadRejectsTruncatedFile) {
  const CsrMatrix m = testutil::random_csr(20, 20, 0.3, 302);
  const std::string path = track(temp_path("trunc.bin"));
  save_csr(m, path);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW(load_csr(path), DmsError);
}

TEST_F(IoTest, LoadRejectsMissingFile) {
  EXPECT_THROW(load_csr(temp_path("does_not_exist.bin")), DmsError);
}

TEST_F(IoTest, DatasetRoundTrip) {
  const Dataset ds = make_planted_dataset(128, 4, 8, 6.0, 0.8, 5);
  const std::string path = track(temp_path("dataset.bin"));
  save_dataset(ds, path);
  const Dataset loaded = load_dataset(path);
  EXPECT_EQ(loaded.name, ds.name);
  EXPECT_TRUE(loaded.graph.adjacency() == ds.graph.adjacency());
  EXPECT_TRUE(loaded.features == ds.features);
  EXPECT_EQ(loaded.labels, ds.labels);
  EXPECT_EQ(loaded.num_classes, ds.num_classes);
  EXPECT_EQ(loaded.train_idx, ds.train_idx);
  EXPECT_EQ(loaded.val_idx, ds.val_idx);
  EXPECT_EQ(loaded.test_idx, ds.test_idx);
}

TEST_F(IoTest, MatrixMarketExportIsParseable) {
  const CsrMatrix m = CsrMatrix::from_triplets(2, 3, {0, 1}, {2, 0}, {1.5, -2.0});
  const std::string path = track(temp_path("mm.mtx"));
  write_matrix_market(m, path);
  std::ifstream is(path);
  std::string header;
  std::getline(is, header);
  EXPECT_NE(header.find("MatrixMarket"), std::string::npos);
  index_t rows = 0, cols = 0;
  nnz_t nnz = 0;
  is >> rows >> cols >> nnz;
  EXPECT_EQ(rows, 2);
  EXPECT_EQ(cols, 3);
  EXPECT_EQ(nnz, 2);
  index_t r = 0, c = 0;
  double v = 0;
  is >> r >> c >> v;  // 1-indexed
  EXPECT_EQ(r, 1);
  EXPECT_EQ(c, 3);
  EXPECT_DOUBLE_EQ(v, 1.5);
}

}  // namespace
}  // namespace dms
