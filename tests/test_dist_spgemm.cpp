// 1.5D distributed SpGEMM (Algorithm 2): exact agreement with the
// single-node product across grid shapes, plus sparsity-aware vs oblivious
// volume comparisons.
#include <gtest/gtest.h>

#include "dist/spgemm_15d.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

using testutil::random_csr;

Cluster make_cluster(int p, int c) {
  return Cluster(ProcessGrid(p, c), CostModel(LinkParams{}));
}

/// Splits a global Q into per-process-row blocks.
std::vector<CsrMatrix> split_rows(const CsrMatrix& q, int parts) {
  BlockPartition part(q.rows(), parts);
  std::vector<CsrMatrix> blocks;
  for (index_t i = 0; i < parts; ++i) {
    blocks.push_back(row_slice(q, part.begin(i), part.end(i)));
  }
  return blocks;
}

struct GridParam {
  int p, c;
};

class Spgemm15dGridSweep : public ::testing::TestWithParam<GridParam> {};

TEST_P(Spgemm15dGridSweep, MatchesSingleNodeProduct) {
  const auto [p, c] = GetParam();
  Cluster cluster = make_cluster(p, c);
  const CsrMatrix a_global = random_csr(96, 96, 0.08, 101);
  const CsrMatrix q_global = random_csr(40, 96, 0.05, 102);
  const DistBlockRowMatrix a(cluster.grid(), a_global);
  const auto q_blocks = split_rows(q_global, cluster.grid().rows());

  const auto p_blocks = spgemm_15d(cluster, q_blocks, a);
  const CsrMatrix p_dist = vstack(p_blocks);
  const CsrMatrix p_ref = spgemm(q_global, a_global);
  EXPECT_LT(max_abs_diff(p_dist, p_ref), 1e-12)
      << "grid p=" << p << " c=" << c;
}

INSTANTIATE_TEST_SUITE_P(Grids, Spgemm15dGridSweep,
                         ::testing::Values(GridParam{1, 1}, GridParam{2, 1},
                                           GridParam{4, 1}, GridParam{4, 2},
                                           GridParam{8, 2}, GridParam{16, 4},
                                           GridParam{16, 2}, GridParam{8, 1}));

TEST(Spgemm15d, ObliviousVariantGivesSameProduct) {
  Cluster cluster = make_cluster(8, 2);
  const CsrMatrix a_global = random_csr(64, 64, 0.1, 103);
  const CsrMatrix q_global = random_csr(24, 64, 0.06, 104);
  const DistBlockRowMatrix a(cluster.grid(), a_global);
  const auto q_blocks = split_rows(q_global, cluster.grid().rows());

  Spgemm15dOptions aware;
  aware.sparsity_aware = true;
  Spgemm15dOptions oblivious;
  oblivious.sparsity_aware = false;
  const CsrMatrix pa = vstack(spgemm_15d(cluster, q_blocks, a, aware));
  const CsrMatrix po = vstack(spgemm_15d(cluster, q_blocks, a, oblivious));
  EXPECT_TRUE(pa == po);
}

TEST(Spgemm15d, SparsityAwareSendsFewerRowBytes) {
  // With a very sparse Q, the sparsity-aware variant (Ballard et al.) must
  // ship far less A-row data than broadcasting whole block rows.
  Cluster c1 = make_cluster(8, 2);
  Cluster c2 = make_cluster(8, 2);
  const CsrMatrix a_global = random_csr(128, 128, 0.1, 105);
  const CsrMatrix q_global = random_csr(16, 128, 0.01, 106);
  const DistBlockRowMatrix a1(c1.grid(), a_global);
  const auto q_blocks = split_rows(q_global, 4);

  Spgemm15dStats aware_stats, obl_stats;
  Spgemm15dOptions aware;
  aware.sparsity_aware = true;
  Spgemm15dOptions oblivious;
  oblivious.sparsity_aware = false;
  spgemm_15d(c1, q_blocks, a1, aware, &aware_stats);
  spgemm_15d(c2, q_blocks, a1, oblivious, &obl_stats);
  EXPECT_LT(aware_stats.row_data_bytes, obl_stats.row_data_bytes / 2);
  EXPECT_GT(aware_stats.id_bytes, 0u);
  EXPECT_EQ(obl_stats.id_bytes, 0u);
}

TEST(Spgemm15d, RecordsComputeAndCommPhases) {
  Cluster cluster = make_cluster(4, 2);
  const CsrMatrix a_global = random_csr(40, 40, 0.2, 107);
  const DistBlockRowMatrix a(cluster.grid(), a_global);
  const auto q_blocks = split_rows(random_csr(12, 40, 0.1, 108), 2);
  Spgemm15dOptions opts;
  opts.phase = "probability";
  spgemm_15d(cluster, q_blocks, a, opts);
  EXPECT_GT(cluster.compute_time().at("probability"), 0.0);
  EXPECT_GT(cluster.comm_stats().at("probability").seconds, 0.0);
  EXPECT_GT(cluster.comm_stats().at("probability").bytes, 0u);
}

TEST(Spgemm15d, SingleRankNeedsNoCommunication) {
  Cluster cluster = make_cluster(1, 1);
  const CsrMatrix a_global = random_csr(30, 30, 0.2, 109);
  const DistBlockRowMatrix a(cluster.grid(), a_global);
  const auto q_blocks = split_rows(random_csr(10, 30, 0.2, 110), 1);
  spgemm_15d(cluster, q_blocks, a);
  EXPECT_DOUBLE_EQ(cluster.total_comm(), 0.0);
}

TEST(Spgemm15d, RejectsMismatchedBlocks) {
  Cluster cluster = make_cluster(4, 2);
  const DistBlockRowMatrix a(cluster.grid(), random_csr(20, 20, 0.3, 111));
  std::vector<CsrMatrix> wrong_count = {CsrMatrix(2, 20)};
  EXPECT_THROW(spgemm_15d(cluster, wrong_count, a), DmsError);
  std::vector<CsrMatrix> wrong_dims = {CsrMatrix(2, 19), CsrMatrix(2, 19)};
  EXPECT_THROW(spgemm_15d(cluster, wrong_dims, a), DmsError);
}

TEST(DistBlockRowMatrix, GatherReassembles) {
  Cluster cluster = make_cluster(4, 1);
  const CsrMatrix a_global = random_csr(21, 17, 0.3, 112);  // non-divisible rows
  const DistBlockRowMatrix a(cluster.grid(), a_global);
  EXPECT_TRUE(a.gather() == a_global);
  EXPECT_EQ(a.num_blocks(), 4);
  EXPECT_EQ(a.partition().size(0), 6);  // 21 = 6+5+5+5
}

}  // namespace
}  // namespace dms
