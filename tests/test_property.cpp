// Cross-cutting statistical and structural property tests.
//
// These check the *distributional* contracts the paper's correctness rests
// on: the matrix-based samplers draw from the same distributions as the
// classic loop-based implementations, sampling probabilities follow the
// algorithm definitions, and distribution invariants survive stacking and
// partitioning.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "baselines/classic_sage.hpp"
#include "core/graphsage.hpp"
#include "core/ladies.hpp"
#include "graph/generators.hpp"
#include "sparse/ops.hpp"
#include "sparse/spgemm_engine.hpp"
#include "test_util.hpp"

namespace dms {
namespace {

/// Chi-square statistic of observed counts vs expected probabilities.
double chi_square(const std::map<index_t, int>& counts,
                  const std::map<index_t, double>& probs, int trials) {
  double stat = 0.0;
  for (const auto& [v, p] : probs) {
    const double expected = p * trials;
    const auto it = counts.find(v);
    const double observed = it == counts.end() ? 0.0 : it->second;
    if (expected > 1e-9) stat += (observed - expected) * (observed - expected) / expected;
  }
  return stat;
}

TEST(PropertyMatrixVsClassic, GraphSageMarginalsAgree) {
  // One vertex of degree 6 sampling s=2: every neighbor should appear with
  // probability 2/6 in both the matrix-based and the classic sampler.
  CooMatrix coo(8, 8);
  for (index_t j = 1; j <= 6; ++j) coo.push(0, j, 1.0);
  const Graph g{CsrMatrix::from_coo(coo)};
  GraphSageSampler matrix_sampler(g, {{2}, 1});

  const int trials = 6000;
  std::map<index_t, int> matrix_counts, classic_counts;
  for (int t = 0; t < trials; ++t) {
    const auto m = matrix_sampler.sample_one({0}, 0, static_cast<std::uint64_t>(t));
    for (const index_t c : m.layers[0].adj.row_cols(0)) {
      matrix_counts[m.layers[0].col_vertices[static_cast<std::size_t>(c)]]++;
    }
    const auto cl = classic_sage_sample(g, {0}, {2}, 0, static_cast<std::uint64_t>(t));
    for (const index_t c : cl.layers[0].adj.row_cols(0)) {
      classic_counts[cl.layers[0].col_vertices[static_cast<std::size_t>(c)]]++;
    }
  }
  std::map<index_t, double> expected;
  for (index_t j = 1; j <= 6; ++j) expected[j] = 2.0 / 6.0;
  // 5 degrees of freedom; chi-square 99.9th percentile ≈ 20.5.
  EXPECT_LT(chi_square(matrix_counts, expected, trials), 21.0);
  EXPECT_LT(chi_square(classic_counts, expected, trials), 21.0);
}

TEST(PropertyLadies, SamplingFollowsSquaredCountDistribution) {
  // Figure 1 example: probabilities [1/7,0,1/7,1/7,4/7,0] with s=1.
  const Graph g(testutil::paper_example_adjacency());
  LadiesSampler sampler(g, {{1}, 1});
  const int trials = 14000;
  std::map<index_t, int> counts;
  for (int t = 0; t < trials; ++t) {
    const auto ms = sampler.sample_one({1, 5}, 0, static_cast<std::uint64_t>(t));
    // The sampled vertex is the frontier entry after the two batch vertices.
    ASSERT_EQ(ms.layers[0].col_vertices.size(), 3u);
    counts[ms.layers[0].col_vertices[2]]++;
  }
  const std::map<index_t, double> expected = {
      {0, 1.0 / 7.0}, {2, 1.0 / 7.0}, {3, 1.0 / 7.0}, {4, 4.0 / 7.0}};
  EXPECT_LT(chi_square(counts, expected, trials), 16.3);  // df=3, 99.9th pct
}

TEST(PropertyNorm, GraphSageRowsAreUniformOverNeighbors) {
  const Graph g = generate_erdos_renyi(64, 8.0, 81);
  const CsrMatrix q = CsrMatrix::one_nonzero_per_row(
      64, {0, 1, 2, 3, 4, 5, 6, 7});
  CsrMatrix p = spgemm(q, g.adjacency());
  normalize_rows(p);
  for (index_t r = 0; r < p.rows(); ++r) {
    const auto vals = p.row_vals(r);
    if (vals.empty()) continue;
    for (const value_t v : vals) {
      EXPECT_NEAR(v, 1.0 / static_cast<double>(vals.size()), 1e-12);
    }
  }
}

TEST(PropertyStacking, ProbabilityMatrixIsPermutationInvariant) {
  // Stacking order must not change per-batch P rows (Eq. 1).
  const Graph g = generate_erdos_renyi(64, 6.0, 82);
  GraphSageSampler sampler(g, {{3}, 1});
  std::vector<std::vector<index_t>> batches = {{1, 2}, {3, 4}, {5, 6}};
  const auto abc = sampler.sample_bulk(batches, {0, 1, 2}, 9);
  std::vector<std::vector<index_t>> reversed = {{5, 6}, {3, 4}, {1, 2}};
  const auto cba = sampler.sample_bulk(reversed, {2, 1, 0}, 9);
  EXPECT_TRUE(abc[0].layers[0].adj == cba[2].layers[0].adj);
  EXPECT_TRUE(abc[2].layers[0].adj == cba[0].layers[0].adj);
}

TEST(PropertySamplers, LayerAdjacencyAlwaysPattern) {
  // All sampled adjacencies are 0/1 matrices with sorted unique columns.
  const Graph g = generate_erdos_renyi(128, 10.0, 83);
  GraphSageSampler sage(g, {{4, 3}, 1});
  LadiesSampler ladies(g, {{16}, 1});
  for (const MatrixSampler* s :
       std::initializer_list<const MatrixSampler*>{&sage, &ladies}) {
    const auto ms = s->sample_one({1, 2, 3, 4, 5}, 0, 77);
    for (const auto& layer : ms.layers) {
      layer.adj.validate();
      for (const value_t v : layer.adj.vals()) EXPECT_DOUBLE_EQ(v, 1.0);
      EXPECT_EQ(layer.adj.rows(), static_cast<index_t>(layer.row_vertices.size()));
      EXPECT_EQ(layer.adj.cols(), static_cast<index_t>(layer.col_vertices.size()));
    }
  }
}

class EpochSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EpochSeedSweep, SamplesAlwaysWithinNeighborhoods) {
  const std::uint64_t seed = GetParam();
  const Graph g = generate_erdos_renyi(96, 7.0, 84);
  GraphSageSampler sampler(g, {{3, 2}, 1});
  const auto ms = sampler.sample_one({10, 20, 30}, 0, seed);
  for (const auto& layer : ms.layers) {
    for (index_t r = 0; r < layer.adj.rows(); ++r) {
      const index_t u = layer.row_vertices[static_cast<std::size_t>(r)];
      for (const index_t c : layer.adj.row_cols(r)) {
        EXPECT_DOUBLE_EQ(
            g.adjacency().at(u, layer.col_vertices[static_cast<std::size_t>(c)]),
            1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace dms
