// Fused walk engine (DESIGN.md §11): the fused per-walker path must be
// bit-identical to the op-by-op matrix path for every graph shape, engine
// option, and walk sampler; degree-sorted relabeling must round-trip; and
// steady-state walk epochs must not grow the workspace arena.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/graphsaint.hpp"
#include "core/node2vec.hpp"
#include "dist/dist_sampler.hpp"
#include "graph/generators.hpp"
#include "graph/relabel.hpp"
#include "plan/builders.hpp"
#include "test_util.hpp"
#include "walk/walk_engine.hpp"

namespace dms {
namespace {

Graph er_graph() { return generate_erdos_renyi(300, 6.0, 7); }

Graph rmat_graph() {
  RmatParams params;
  params.scale = 10;
  params.edge_factor = 8.0;
  params.seed = 3;
  return generate_rmat(params);
}

/// Directed graph with sinks (3 and 9 have no out-edges), a 2-cycle (6/7),
/// and a chain feeding a sink — walks die at different rounds per walker.
Graph sink_graph() {
  return Graph(CsrMatrix::from_triplets(
      10, 10, {0, 0, 1, 2, 4, 5, 6, 7, 8}, {1, 4, 2, 3, 5, 3, 7, 6, 3},
      std::vector<value_t>(9, 1.0)));
}

const std::vector<std::vector<index_t>> kBatches = {{0, 1, 2}, {3, 4}, {5, 6, 7}};
const std::vector<index_t> kIds = {0, 1, 2};

bool samples_equal(const std::vector<MinibatchSample>& a,
                   const std::vector<MinibatchSample>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].batch_vertices != b[i].batch_vertices) return false;
    if (a[i].layers.size() != b[i].layers.size()) return false;
    for (std::size_t l = 0; l < a[i].layers.size(); ++l) {
      if (!(a[i].layers[l].adj == b[i].layers[l].adj)) return false;
      if (a[i].layers[l].row_vertices != b[i].layers[l].row_vertices) return false;
      if (a[i].layers[l].col_vertices != b[i].layers[l].col_vertices) return false;
    }
  }
  return true;
}

// --- fused == matrix bit-identity ------------------------------------------

TEST(WalkEngine, FusedMatchesMatrixAcrossGraphs) {
  for (const Graph& g : {er_graph(), rmat_graph(), sink_graph()}) {
    GraphSaintSampler fused(g, {/*walk_length=*/4, /*model_layers=*/2, 9});
    GraphSaintSampler matrix(g, {/*walk_length=*/4, /*model_layers=*/2, 9});
    matrix.set_walk_options({.fused = false});
    ASSERT_TRUE(fused.executor().walk_fusable());
    ASSERT_FALSE(matrix.executor().walk_fusable());
    for (std::uint64_t epoch : {0ull, 17ull}) {
      const auto rf = fused.sample_bulk(kBatches, kIds, epoch);
      const auto rm = matrix.sample_bulk(kBatches, kIds, epoch);
      EXPECT_TRUE(samples_equal(rf, rm))
          << g.num_vertices() << " vertices, epoch " << epoch;
    }
    // Both paths count the same surviving-walker steps (the edges/s
    // numerator of bench/micro_walk).
    EXPECT_GT(fused.executor().walk_steps(), 0u);
    EXPECT_EQ(fused.executor().walk_steps(), matrix.executor().walk_steps());
  }
}

TEST(WalkEngine, EngineOptionVariantsAreBitIdentical) {
  const Graph g = rmat_graph();
  GraphSaintSampler matrix(g, {3, 1, 21});
  matrix.set_walk_options({.fused = false});
  const auto reference = matrix.sample_bulk(kBatches, kIds, 5);
  const WalkEngineOptions variants[] = {
      {},                                         // default: relabel + bucket
      {.fused = true, .relabel = false},          // original vertex order
      {.fused = true, .relabel = true, .relabel_min_vertices = 1,
       .bucket_bytes = 0},                        // relabel, no bucketing
      {.fused = true, .relabel = true, .relabel_min_vertices = 1,
       .bucket_bytes = 4096},                     // many small buckets
  };
  for (const WalkEngineOptions& opts : variants) {
    GraphSaintSampler s(g, {3, 1, 21});
    s.set_walk_options(opts);
    EXPECT_TRUE(samples_equal(reference, s.sample_bulk(kBatches, kIds, 5)))
        << "relabel=" << opts.relabel << " bucket_bytes=" << opts.bucket_bytes;
  }
}

TEST(WalkEngine, SinkWalkersTerminate) {
  // All-sink graph: every walk dies in round one, so the induced subgraph
  // is exactly the roots with an empty adjacency — on both paths.
  const Graph g(CsrMatrix(4, 4));
  GraphSaintSampler fused(g, {3, 1, 2});
  GraphSaintSampler matrix(g, {3, 1, 2});
  matrix.set_walk_options({.fused = false});
  const std::vector<std::vector<index_t>> batches = {{0, 1}, {2}};
  const auto rf = fused.sample_bulk(batches, {0, 1}, 1);
  const auto rm = matrix.sample_bulk(batches, {0, 1}, 1);
  EXPECT_TRUE(samples_equal(rf, rm));
  ASSERT_EQ(rf.size(), 2u);
  EXPECT_EQ(rf[0].batch_vertices, (std::vector<index_t>{0, 1}));
  EXPECT_EQ(rf[1].batch_vertices, (std::vector<index_t>{2}));
  ASSERT_EQ(rf[0].layers.size(), 1u);
  EXPECT_EQ(rf[0].layers[0].adj.nnz(), 0);
  EXPECT_EQ(fused.executor().walk_steps(), 0u);
}

// --- node2vec ---------------------------------------------------------------

TEST(Node2Vec, UnityParametersReproduceSaint) {
  // p = q = 1 makes every bias factor exactly 1.0, and the node2vec plan
  // shares saint_rw's layer salt, so the walks are bit-for-bit GraphSAINT's.
  const Graph g = er_graph();
  GraphSaintSampler saint(g, {3, 2, 5});
  for (const bool fuse : {true, false}) {
    Node2VecSampler n2v(g, {3, 2, /*p=*/1.0, /*q=*/1.0, 5});
    n2v.set_walk_options({.fused = fuse});
    EXPECT_TRUE(samples_equal(saint.sample_bulk(kBatches, kIds, 11),
                              n2v.sample_bulk(kBatches, kIds, 11)))
        << "fused=" << fuse;
  }
}

TEST(Node2Vec, BiasedFusedMatchesMatrix) {
  for (const Graph& g : {er_graph(), rmat_graph()}) {
    Node2VecSampler fused(g, {4, 1, /*p=*/0.25, /*q=*/4.0, 13});
    fused.set_walk_options(
        {.fused = true, .relabel = true, .relabel_min_vertices = 1});
    Node2VecSampler matrix(g, {4, 1, /*p=*/0.25, /*q=*/4.0, 13});
    matrix.set_walk_options({.fused = false});
    ASSERT_TRUE(fused.executor().walk_fusable());
    EXPECT_TRUE(samples_equal(fused.sample_bulk(kBatches, kIds, 3),
                              matrix.sample_bulk(kBatches, kIds, 3)));
  }
}

TEST(Node2Vec, BiasFactor) {
  const std::vector<index_t> prev_row = {2, 5, 9};
  const std::span<const index_t> row(prev_row);
  // Returning to the previous vertex → 1/p.
  EXPECT_DOUBLE_EQ(node2vec_bias_factor(7, 7, row, 0.5, 4.0), 2.0);
  // A neighbor of the previous vertex → 1 (even if it is also in prev_row).
  EXPECT_DOUBLE_EQ(node2vec_bias_factor(5, 7, row, 0.5, 4.0), 1.0);
  // Anything else → 1/q.
  EXPECT_DOUBLE_EQ(node2vec_bias_factor(3, 7, row, 0.5, 4.0), 0.25);
  // p = q = 1 is exactly unbiased.
  EXPECT_DOUBLE_EQ(node2vec_bias_factor(3, 7, row, 1.0, 1.0), 1.0);
}

TEST(Node2Vec, PartitionedMatchesReplicatedBiased) {
  const Graph g = er_graph();
  const Node2VecConfig cfg{3, 2, /*p=*/0.5, /*q=*/2.0, 19};
  Node2VecSampler rep(g, cfg);  // fused by default
  const ProcessGrid grid(4, 2);
  PartitionedNode2VecSampler part(g, grid, cfg);
  EXPECT_TRUE(samples_equal(rep.sample_bulk(kBatches, kIds, 23),
                            part.sample_bulk(kBatches, kIds, 23)));
}

// --- plan matching ----------------------------------------------------------

TEST(MatchWalkPlan, RecognizesWalkShapes) {
  const WalkPlanShape saint = match_walk_plan(build_saint_plan(3, 2));
  EXPECT_TRUE(saint.matched);
  EXPECT_FALSE(saint.biased);

  const WalkPlanShape n2v = match_walk_plan(build_node2vec_plan(3, 2, 0.5, 2.0));
  EXPECT_TRUE(n2v.matched);
  EXPECT_TRUE(n2v.biased);
  EXPECT_EQ(n2v.layer_salt, saint.layer_salt);
  EXPECT_DOUBLE_EQ(n2v.bias_p, 0.5);
  EXPECT_DOUBLE_EQ(n2v.bias_q, 2.0);
}

TEST(MatchWalkPlan, RejectsNonWalkShapes) {
  EXPECT_FALSE(match_walk_plan(build_sage_plan()).matched);
  EXPECT_FALSE(match_walk_plan(build_ladies_plan()).matched);
  EXPECT_FALSE(match_walk_plan(build_fastgcn_plan()).matched);
  EXPECT_FALSE(match_walk_plan(build_pinsage_plan()).matched);
  // Lowered plans always take the collective matrix path.
  EXPECT_FALSE(match_walk_plan(lower_to_dist(build_saint_plan(3, 2))).matched);
}

// --- relabeling -------------------------------------------------------------

TEST(Relabel, DegreeSortedPermutationRoundTrips) {
  const Graph g = rmat_graph();
  const CsrMatrix& adj = g.adjacency();
  const VertexRelabeling r = degree_sorted_relabeling(adj);
  ASSERT_EQ(r.size(), adj.rows());

  // A bijection: map then unmap is the identity.
  std::vector<char> seen(static_cast<std::size_t>(r.size()), 0);
  for (index_t v = 0; v < r.size(); ++v) {
    const index_t nv = r.map(v);
    ASSERT_GE(nv, 0);
    ASSERT_LT(nv, r.size());
    EXPECT_EQ(r.unmap(nv), v);
    EXPECT_EQ(seen[static_cast<std::size_t>(nv)], 0);
    seen[static_cast<std::size_t>(nv)] = 1;
  }

  // Out-degrees are non-increasing in the new id space.
  const CsrMatrix relabeled = relabel_adjacency(adj, r);
  for (index_t v = 1; v < relabeled.rows(); ++v) {
    EXPECT_LE(relabeled.row_nnz(v), relabeled.row_nnz(v - 1)) << "vertex " << v;
  }

  // Applying the inverse permutation restores the original adjacency.
  VertexRelabeling inverse;
  inverse.to_new = r.to_old;
  inverse.to_old = r.to_new;
  EXPECT_TRUE(relabel_adjacency(relabeled, inverse) == adj);

  // Id-list mapping round-trips too.
  std::vector<index_t> ids = {0, 5, 17, 123};
  const std::vector<index_t> original = ids;
  r.map_inplace(ids);
  r.unmap_inplace(ids);
  EXPECT_EQ(ids, original);
}

TEST(WalkEngine, RelabelAndBucketFlags) {
  const Graph g = rmat_graph();
  const CsrMatrix& adj = g.adjacency();
  WalkEngine plain(adj, {.fused = true, .relabel = false});
  EXPECT_FALSE(plain.relabeled());

  const Graph small = er_graph();
  WalkEngine small_graph(small.adjacency(), {});
  // Below relabel_min_vertices the pass is skipped.
  EXPECT_FALSE(small_graph.relabeled());

  WalkEngine bucketed(adj, {.fused = true, .relabel = true,
                            .relabel_min_vertices = 1, .bucket_bytes = 4096});
  EXPECT_TRUE(bucketed.relabeled());
  EXPECT_GT(bucketed.num_buckets(), 1);

  WalkEngine unbucketed(adj, {.fused = true, .relabel = true,
                              .relabel_min_vertices = 1, .bucket_bytes = 0});
  EXPECT_EQ(unbucketed.num_buckets(), 1);
}

// --- steady-state workspace -------------------------------------------------

TEST(WalkWorkspace, SteadyStateEpochsDoNotGrowArena) {
  const Graph g = er_graph();
  for (const bool fuse : {true, false}) {
    GraphSaintSampler saint(g, {4, 2, 31});
    saint.set_walk_options({.fused = fuse});
    Workspace* ws = saint.scratch_workspace();
    // Two warm runs reach the arena's high-water mark for this epoch (the
    // list pool is LIFO, so one run can leave buffers in role-mismatched
    // slots); the frozen rerun of the same epoch must then allocate only
    // results. (Different epochs walk different frontiers, so their scratch
    // high-water marks legitimately differ.)
    (void)saint.sample_bulk(kBatches, kIds, 3);
    (void)saint.sample_bulk(kBatches, kIds, 3);
    ws->freeze();
    (void)saint.sample_bulk(kBatches, kIds, 3);
    ws->check_steady("test_walk saint epoch");
    EXPECT_EQ(ws->bytes_held(), ws->frozen_bytes()) << "fused=" << fuse;
    ws->thaw();
  }
  // The biased plan adds the prev slot and raw value scratch; same contract.
  Node2VecSampler n2v(g, {4, 1, 0.5, 2.0, 31});
  Workspace* ws = n2v.scratch_workspace();
  (void)n2v.sample_bulk(kBatches, kIds, 3);
  (void)n2v.sample_bulk(kBatches, kIds, 3);
  ws->freeze();
  (void)n2v.sample_bulk(kBatches, kIds, 3);
  ws->check_steady("test_walk node2vec epoch");
  EXPECT_EQ(ws->bytes_held(), ws->frozen_bytes());
  ws->thaw();
}

}  // namespace
}  // namespace dms
