// DistMode::kDisaggregated (DESIGN.md §14): sampler/trainer rank roles.
// Layout construction and validation, the bit-identity contract against
// kReplicated across sampler kinds and splits, the handoff comm phase,
// fault behavior (transient loss retries transparently, crashes are
// rejected), and checkpoint/resume mid-epoch.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "comm/faults.hpp"
#include "dist/disagg.hpp"
#include "graph/dataset.hpp"
#include "test_util.hpp"
#include "train/checkpoint.hpp"
#include "train/pipeline.hpp"

namespace dms {
namespace {

Dataset small_planted() {
  return make_planted_dataset(/*n=*/512, /*classes=*/4, /*f=*/8,
                              /*avg_degree=*/8.0, /*p_intra=*/0.85, /*seed=*/5);
}

PipelineConfig config_for(SamplerKind kind, DistMode mode) {
  PipelineConfig cfg;
  cfg.sampler = kind;
  cfg.mode = mode;
  cfg.batch_size = 16;
  // Layer-wise multi-hop kinds sample per-layer fanouts; the subgraph kinds
  // (LADIES/FastGCN) take one layer-wide sample budget.
  cfg.fanouts =
      (kind == SamplerKind::kLadies || kind == SamplerKind::kFastGcn)
          ? std::vector<index_t>{32}
          : std::vector<index_t>{4, 4};
  cfg.hidden = 16;
  return cfg;
}

TEST(DisaggLayout, AutoSplitFollowsTheDocumentedDefaults) {
  const DisaggLayout l = make_disagg_layout(ProcessGrid(8, 2));
  EXPECT_EQ(l.total, 8);
  EXPECT_EQ(l.samplers, 2);  // auto: max(1, p/4)
  EXPECT_EQ(l.trainers, 6);
  EXPECT_EQ(l.sampler_grid.rows(), 2);
  EXPECT_EQ(l.sampler_grid.replication(), 1);  // auto c_s: 1
  EXPECT_EQ(l.trainer_grid.rows(), 3);
  EXPECT_EQ(l.trainer_grid.replication(), 2);  // largest divisor of 6 <= c
  // Global rank mapping: samplers first, then trainers.
  EXPECT_EQ(l.sampler_rank(1), 1);
  EXPECT_EQ(l.trainer_rank(0), 2);
  EXPECT_EQ(l.trainer_rank(5), 7);
  // Slots dealt in waves of t keep per-step trainer load balanced.
  EXPECT_EQ(l.trainer_of_slot(0), 0);
  EXPECT_EQ(l.trainer_of_slot(5), 5);
  EXPECT_EQ(l.trainer_of_slot(6), 0);

  const DisaggLayout tiny = make_disagg_layout(ProcessGrid(4, 2));
  EXPECT_EQ(tiny.samplers, 1);
  EXPECT_EQ(tiny.trainers, 3);
  EXPECT_EQ(tiny.trainer_grid.replication(), 1);  // 2 does not divide 3
}

TEST(DisaggLayout, RejectsInvalidSplits) {
  const ProcessGrid full(8, 2);
  DisaggOptions opts;
  opts.sampler_ranks = 8;  // s must leave at least one trainer
  EXPECT_THROW(make_disagg_layout(full, opts), DmsError);
  opts.sampler_ranks = 9;
  EXPECT_THROW(make_disagg_layout(full, opts), DmsError);
  opts.sampler_ranks = -3;  // negative is an error, not auto (0 is auto)
  EXPECT_THROW(make_disagg_layout(full, opts), DmsError);
  opts = {};
  opts.sampler_ranks = 2;
  opts.sampler_c = 3;  // c_s must divide s
  EXPECT_THROW(make_disagg_layout(full, opts), DmsError);
  opts = {};
  opts.sampler_ranks = 2;
  opts.trainer_c = 4;  // c_t must divide t = 6
  EXPECT_THROW(make_disagg_layout(full, opts), DmsError);
}

TEST(Disagg, LossesBitIdenticalToReplicatedForEverySamplerKind) {
  const Dataset ds = small_planted();
  for (const SamplerKind kind :
       {SamplerKind::kGraphSage, SamplerKind::kLadies, SamplerKind::kFastGcn,
        SamplerKind::kLabor, SamplerKind::kGraphSaint, SamplerKind::kNode2Vec,
        SamplerKind::kPinSage}) {
    Cluster c_rep(ProcessGrid(8, 2), CostModel(LinkParams{}));
    Cluster c_dis(ProcessGrid(8, 2), CostModel(LinkParams{}));
    Pipeline rep(c_rep, ds, config_for(kind, DistMode::kReplicated));
    Pipeline dis(c_dis, ds, config_for(kind, DistMode::kDisaggregated));
    for (int e = 0; e < 2; ++e) {
      const EpochStats a = rep.run_epoch(e);
      const EpochStats b = dis.run_epoch(e);
      EXPECT_DOUBLE_EQ(a.loss, b.loss) << to_string(kind) << " epoch " << e;
      EXPECT_DOUBLE_EQ(a.train_acc, b.train_acc) << to_string(kind);
      testutil::expect_epoch_stats_consistent(b);
    }
  }
}

TEST(Disagg, ExplicitSplitPreservesBitIdentity) {
  const Dataset ds = small_planted();
  Cluster c_rep(ProcessGrid(8, 2), CostModel(LinkParams{}));
  Cluster c_dis(ProcessGrid(8, 2), CostModel(LinkParams{}));
  Pipeline rep(c_rep, ds, config_for(SamplerKind::kGraphSage,
                                     DistMode::kReplicated));
  PipelineConfig cfg = config_for(SamplerKind::kGraphSage,
                                  DistMode::kDisaggregated);
  cfg.disagg.sampler_ranks = 4;  // an even split, far from the auto default
  cfg.disagg.sampler_c = 2;
  cfg.disagg.trainer_c = 2;
  Pipeline dis(c_dis, ds, cfg);
  for (int e = 0; e < 2; ++e) {
    EXPECT_DOUBLE_EQ(rep.run_epoch(e).loss, dis.run_epoch(e).loss)
        << "epoch " << e;
  }
}

TEST(Disagg, HandoffPhaseIsRecorded) {
  const Dataset ds = small_planted();
  Cluster c_rep(ProcessGrid(8, 2), CostModel(LinkParams{}));
  Cluster c_dis(ProcessGrid(8, 2), CostModel(LinkParams{}));
  Pipeline rep(c_rep, ds, config_for(SamplerKind::kGraphSage,
                                     DistMode::kReplicated));
  Pipeline dis(c_dis, ds, config_for(SamplerKind::kGraphSage,
                                     DistMode::kDisaggregated));
  const EpochStats a = rep.run_epoch(0);
  const EpochStats b = dis.run_epoch(0);
  ASSERT_TRUE(b.comm_phases.count("handoff"));
  EXPECT_GT(b.comm_phases.at("handoff"), 0.0);
  EXPECT_FALSE(a.comm_phases.count("handoff"));
}

TEST(Disagg, TransientLossRetriesWithoutChangingLosses) {
  // The sampler -> trainer handoff goes through Cluster::record_comm, so a
  // lossy transport retries it (and every other message) transparently: the
  // clock pays for retransmits + backoff, the arithmetic never changes.
  const Dataset ds = small_planted();
  const PipelineConfig cfg =
      config_for(SamplerKind::kGraphSage, DistMode::kDisaggregated);
  Cluster healthy(ProcessGrid(8, 2), CostModel(LinkParams{}));
  Cluster lossy(ProcessGrid(8, 2), CostModel(LinkParams{}));
  FaultPlanConfig fc;
  fc.seed = 17;
  fc.loss_rate = 0.4;  // high enough that some comm event certainly loses
  const FaultPlan plan(fc);
  lossy.install_faults(&plan);
  Pipeline p_healthy(healthy, ds, cfg);
  Pipeline p_lossy(lossy, ds, cfg);
  for (int e = 0; e < 2; ++e) {
    const EpochStats a = p_healthy.run_epoch(e);
    const EpochStats b = p_lossy.run_epoch(e);
    EXPECT_DOUBLE_EQ(a.loss, b.loss) << "epoch " << e;
    EXPECT_GT(b.retry_messages, 0u);
    EXPECT_GT(b.fault_retry, 0.0);
    testutil::expect_epoch_stats_consistent(b);
  }
}

TEST(Disagg, RankCrashIsRejectedNotSilentlyWrong) {
  // Crash recovery redistributes work over survivors in the colocated
  // modes; the disaggregated schedule does not support it yet, and a crash
  // must fail loudly instead of training a diverged schedule.
  const Dataset ds = small_planted();
  Cluster cluster(ProcessGrid(8, 2), CostModel(LinkParams{}));
  FaultPlanConfig fc;
  fc.crashes = {{/*rank=*/5, /*superstep=*/1}};
  const FaultPlan plan(fc);
  cluster.install_faults(&plan);
  Pipeline pipe(cluster, ds,
                config_for(SamplerKind::kGraphSage, DistMode::kDisaggregated));
  EXPECT_THROW(
      {
        for (int e = 0; e < 4; ++e) pipe.run_epoch(e);
      },
      DmsError);
}

TEST(Disagg, CheckpointResumeMidEpochIsBitIdentical) {
  const Dataset ds = small_planted();
  PipelineConfig cfg =
      config_for(SamplerKind::kGraphSage, DistMode::kDisaggregated);
  cfg.batch_size = 8;  // 256 train vertices -> 32 batches
  cfg.bulk_k = 8;      // -> 4 bulk rounds: stopping at 2 bisects the epoch
  Cluster c_ref(ProcessGrid(8, 2), CostModel(LinkParams{}));
  Pipeline ref(c_ref, ds, cfg);
  const double uninterrupted = ref.run_epoch(0).loss;

  const std::string path = ::testing::TempDir() +
                           std::to_string(::getpid()) + "_disagg_ckpt.bin";
  Cluster c_a(ProcessGrid(8, 2), CostModel(LinkParams{}));
  Pipeline a(c_a, ds, cfg);
  const TrainCursor cursor = a.run_epoch_partial(0, /*stop_round=*/2);
  ASSERT_FALSE(cursor.finished());
  save_checkpoint(a, cursor, path);

  Cluster c_b(ProcessGrid(8, 2), CostModel(LinkParams{}));
  Pipeline b(c_b, ds, cfg);
  const TrainCursor restored = load_checkpoint(b, path);
  const EpochStats resumed = b.run_epoch_resumed(restored);
  std::remove(path.c_str());
  EXPECT_DOUBLE_EQ(resumed.loss, uninterrupted);
}

}  // namespace
}  // namespace dms
