// Checkpoint/restore (DESIGN.md §13): a run killed at a bulk-round boundary
// and resumed from its checkpoint must be bit-identical — same per-epoch
// losses, same final weights — to the uninterrupted run, across sampler
// kinds and distribution modes. Restores into a mismatched pipeline config
// or from a corrupt file are rejected.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/dataset.hpp"
#include "test_util.hpp"
#include "train/checkpoint.hpp"
#include "train/pipeline.hpp"

namespace dms {
namespace {

Dataset small_planted() {
  return make_planted_dataset(/*n=*/512, /*classes=*/4, /*f=*/8,
                              /*avg_degree=*/8.0, /*p_intra=*/0.85, /*seed=*/5);
}

PipelineConfig config_for(SamplerKind kind, DistMode mode) {
  PipelineConfig cfg;
  cfg.sampler = kind;
  cfg.mode = mode;
  // 512 planted vertices -> 256 training -> 32 batches: with bulk_k = 8 on
  // the 8-rank grids below every epoch spans >= 4 bulk rounds, so stopping
  // at round 2 really bisects the epoch.
  cfg.batch_size = 8;
  cfg.fanouts = kind == SamplerKind::kGraphSage ? std::vector<index_t>{4, 4}
                                                : std::vector<index_t>{32};
  cfg.hidden = 16;
  cfg.bulk_k = 8;  // several bulk rounds per epoch -> mid-epoch boundaries
  return cfg;
}

/// RAII temp file path (removed on destruction). PID-suffixed so concurrent
/// suite runs (e.g. a sanitizer build testing alongside the plain one) never
/// collide on the same checkpoint file.
struct TempPath {
  std::string path;
  explicit TempPath(const std::string& name)
      : path(::testing::TempDir() + std::to_string(::getpid()) + "_" + name) {}
  ~TempPath() { std::remove(path.c_str()); }
};

void expect_same_weights(Pipeline& a, Pipeline& b, const std::string& ctx) {
  auto& la = a.model().layers();
  auto& lb = b.model().layers();
  ASSERT_EQ(la.size(), lb.size()) << ctx;
  for (std::size_t l = 0; l < la.size(); ++l) {
    const auto eq = [&](DenseF& x, DenseF& y, const char* name) {
      ASSERT_EQ(x.size(), y.size()) << ctx;
      for (std::size_t i = 0; i < x.size(); ++i) {
        ASSERT_EQ(x.data()[i], y.data()[i])
            << ctx << " layer " << l << " " << name << " elem " << i;
      }
    };
    eq(la[l].w_self(), lb[l].w_self(), "w_self");
    eq(la[l].w_neigh(), lb[l].w_neigh(), "w_neigh");
    eq(la[l].bias(), lb[l].bias(), "bias");
  }
}

TEST(Checkpoint, KillAndResumeIsBitIdenticalAcrossKindsAndModes) {
  const Dataset ds = small_planted();
  for (const SamplerKind kind :
       {SamplerKind::kGraphSage, SamplerKind::kLadies}) {
    for (const DistMode mode :
         {DistMode::kReplicated, DistMode::kPartitioned}) {
      const std::string ctx = to_string(kind) + "/" + to_string(mode);
      const PipelineConfig cfg = config_for(kind, mode);

      // Uninterrupted reference: three epochs straight through.
      Cluster c_ref(ProcessGrid(4, 2), CostModel(LinkParams{}));
      Pipeline ref(c_ref, ds, cfg);
      std::vector<EpochStats> base;
      for (int e = 0; e < 3; ++e) base.push_back(ref.run_epoch(e));

      // Killed run: epoch 0 full, epoch 1 only to the second round boundary,
      // checkpoint, then the process "dies".
      TempPath ckpt("dms_ckpt_" + to_string(kind) + "_" + to_string(mode) +
                    ".bin");
      {
        Cluster c_kill(ProcessGrid(4, 2), CostModel(LinkParams{}));
        Pipeline killed(c_kill, ds, cfg);
        killed.run_epoch(0);
        const TrainCursor cur = killed.run_epoch_partial(1, 2);
        ASSERT_FALSE(cur.finished()) << ctx << ": epoch too small to bisect";
        ASSERT_EQ(cur.next_round, 2) << ctx;
        save_checkpoint(killed, cur, ckpt.path);
      }

      // Fresh process: restore and finish epoch 1, then run epoch 2.
      Cluster c_res(ProcessGrid(4, 2), CostModel(LinkParams{}));
      Pipeline resumed(c_res, ds, cfg);
      const TrainCursor cur = load_checkpoint(resumed, ckpt.path);
      EXPECT_EQ(cur.epoch, 1) << ctx;
      const EpochStats e1 = resumed.run_epoch_resumed(cur);
      EXPECT_EQ(base[1].loss, e1.loss) << ctx;
      EXPECT_EQ(base[1].train_acc, e1.train_acc) << ctx;
      const EpochStats e2 = resumed.run_epoch(2);
      EXPECT_EQ(base[2].loss, e2.loss) << ctx;
      EXPECT_EQ(base[2].train_acc, e2.train_acc) << ctx;
      expect_same_weights(ref, resumed, ctx);
    }
  }
}

TEST(Checkpoint, SgdStateAlsoRoundTrips) {
  const Dataset ds = small_planted();
  PipelineConfig cfg = config_for(SamplerKind::kGraphSage, DistMode::kReplicated);
  cfg.use_adam = false;  // momentum velocity goes through the Sgd path

  Cluster c_ref(ProcessGrid(2, 1), CostModel(LinkParams{}));
  Pipeline ref(c_ref, ds, cfg);
  const EpochStats b0 = ref.run_epoch(0);
  const EpochStats b1 = ref.run_epoch(1);
  (void)b0;

  TempPath ckpt("dms_ckpt_sgd.bin");
  {
    Cluster c_kill(ProcessGrid(2, 1), CostModel(LinkParams{}));
    Pipeline killed(c_kill, ds, cfg);
    killed.run_epoch(0);
    const TrainCursor cur = killed.run_epoch_partial(1, 1);
    ASSERT_FALSE(cur.finished());
    save_checkpoint(killed, cur, ckpt.path);
  }
  Cluster c_res(ProcessGrid(2, 1), CostModel(LinkParams{}));
  Pipeline resumed(c_res, ds, cfg);
  const EpochStats e1 = resumed.run_epoch_resumed(load_checkpoint(resumed, ckpt.path));
  EXPECT_EQ(b1.loss, e1.loss);
}

TEST(Checkpoint, ResumeSegmentIsCheaperThanTheFullEpoch) {
  // The point of resuming: the resumed segment replays only the remaining
  // rounds, so its simulated time is strictly below restarting the epoch.
  const Dataset ds = small_planted();
  const PipelineConfig cfg =
      config_for(SamplerKind::kGraphSage, DistMode::kPartitioned);

  Cluster c_ref(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Pipeline ref(c_ref, ds, cfg);
  ref.run_epoch(0);
  const EpochStats full = ref.run_epoch(1);

  TempPath ckpt("dms_ckpt_cost.bin");
  Cluster c_kill(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Pipeline killed(c_kill, ds, cfg);
  killed.run_epoch(0);
  const TrainCursor cur = killed.run_epoch_partial(1, 2);
  ASSERT_FALSE(cur.finished());
  save_checkpoint(killed, cur, ckpt.path);

  Cluster c_res(ProcessGrid(4, 2), CostModel(LinkParams{}));
  Pipeline resumed(c_res, ds, cfg);
  const EpochStats seg = resumed.run_epoch_resumed(load_checkpoint(resumed, ckpt.path));
  EXPECT_EQ(full.loss, seg.loss);
  EXPECT_LT(seg.total, full.total);
}

TEST(Checkpoint, RejectsConfigMismatch) {
  const Dataset ds = small_planted();
  const PipelineConfig cfg =
      config_for(SamplerKind::kGraphSage, DistMode::kReplicated);
  TempPath ckpt("dms_ckpt_mismatch.bin");
  Cluster c1(ProcessGrid(2, 1), CostModel(LinkParams{}));
  Pipeline saver(c1, ds, cfg);
  const TrainCursor cur = saver.run_epoch_partial(0, 1);
  save_checkpoint(saver, cur, ckpt.path);

  PipelineConfig other = cfg;
  other.batch_size = 64;  // different schedule -> different fingerprint
  Cluster c2(ProcessGrid(2, 1), CostModel(LinkParams{}));
  Pipeline loader(c2, ds, other);
  EXPECT_THROW(load_checkpoint(loader, ckpt.path), DmsError);

  PipelineConfig sgd = cfg;
  sgd.use_adam = false;
  Cluster c3(ProcessGrid(2, 1), CostModel(LinkParams{}));
  Pipeline sgd_loader(c3, ds, sgd);
  EXPECT_THROW(load_checkpoint(sgd_loader, ckpt.path), DmsError);
}

TEST(Checkpoint, RejectsCorruptAndMissingFiles) {
  const Dataset ds = small_planted();
  const PipelineConfig cfg =
      config_for(SamplerKind::kGraphSage, DistMode::kReplicated);
  Cluster c1(ProcessGrid(2, 1), CostModel(LinkParams{}));
  Pipeline pipe(c1, ds, cfg);
  EXPECT_THROW(load_checkpoint(pipe, ::testing::TempDir() + "nope.bin"),
               DmsError);

  // Truncated file: write a valid checkpoint, chop off the tail.
  TempPath ckpt("dms_ckpt_trunc.bin");
  const TrainCursor cur = pipe.run_epoch_partial(0, 1);
  save_checkpoint(pipe, cur, ckpt.path);
  std::string bytes;
  {
    std::ifstream in(ckpt.path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  {
    std::ofstream out(ckpt.path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(load_checkpoint(pipe, ckpt.path), DmsError);

  // Wrong magic.
  {
    std::ofstream out(ckpt.path, std::ios::binary | std::ios::trunc);
    out << "not a checkpoint at all";
  }
  EXPECT_THROW(load_checkpoint(pipe, ckpt.path), DmsError);
}

TEST(Checkpoint, PartialPastTheScheduleTrainsTheWholeEpoch) {
  const Dataset ds = small_planted();
  const PipelineConfig cfg =
      config_for(SamplerKind::kGraphSage, DistMode::kReplicated);
  Cluster c1(ProcessGrid(2, 1), CostModel(LinkParams{}));
  Pipeline full(c1, ds, cfg);
  const EpochStats s = full.run_epoch(0);

  Cluster c2(ProcessGrid(2, 1), CostModel(LinkParams{}));
  Pipeline partial(c2, ds, cfg);
  const TrainCursor cur = partial.run_epoch_partial(0, 1 << 20);
  EXPECT_TRUE(cur.finished());
  EXPECT_EQ(cur.seen > 0 ? cur.loss_sum / static_cast<double>(cur.seen) : 0.0,
            s.loss);
}

}  // namespace
}  // namespace dms
